exception Exhausted

module type NODE = sig
  type t

  val create : unit -> t
  val get_state : t -> Node_state.t
  val set_state : t -> Node_state.t -> unit
  val bump_birth : t -> unit
end

module Make (N : NODE) = struct
  type t = {
    capacity : int option;
    (* Shared outstanding counter, maintained by every [alloc]/[free].
       The capacity check used to fold [allocations - frees] over ALL
       per-process handles on every single allocation whenever a capacity
       was configured — O(n_processes) of cross-process cache traffic on
       the allocation hot path. One fetch-and-add per alloc/free keeps the
       same value (allocs and real frees commute with the counter updates)
       at O(1). *)
    outstanding_now : int Atomic.t;
    (* Blank slot for the free-list vectors: never handed out, only keeps
       [Vec] from retaining dropped nodes. *)
    dummy : N.t;
    mutable handles : handle array;
  }

  and handle = {
    owner : t;
    (* Vector, not a list: [free] used to cons a cell per freed node, so a
       recycling workload allocated on every free even though the whole
       point of the free list is to avoid allocation. [Vec.push]/[Vec.pop]
       are allocation-free once the vector has reached steady-state
       capacity. *)
    free_list : N.t Qs_util.Vec.t;
    mutable allocations : int;
    mutable frees : int;
    mutable fresh : int;
    mutable violations : int;
    mutable double_frees : int;
  }

  let create ?capacity ~n_processes () =
    let dummy = N.create () in
    let t = { capacity; outstanding_now = Atomic.make 0; dummy; handles = [||] } in
    let mk _ =
      { owner = t;
        free_list = Qs_util.Vec.create dummy;
        allocations = 0;
        frees = 0;
        fresh = 0;
        violations = 0;
        double_frees = 0 }
    in
    t.handles <- Array.init (max 1 n_processes) mk;
    t

  let register t ~pid = t.handles.(pid)

  let sum t f = Array.fold_left (fun acc h -> acc + f h) 0 t.handles

  let outstanding t = Atomic.get t.outstanding_now

  let alloc h =
    let n =
      if not (Qs_util.Vec.is_empty h.free_list) then
        Qs_util.Vec.pop h.free_list
      else begin
        (match h.owner.capacity with
        | Some cap when outstanding h.owner >= cap -> raise Exhausted
        | _ -> ());
        h.fresh <- h.fresh + 1;
        N.create ()
      end
    in
    h.allocations <- h.allocations + 1;
    ignore (Atomic.fetch_and_add h.owner.outstanding_now 1);
    N.set_state n Node_state.Allocated;
    N.bump_birth n;
    n

  let free h n =
    if Node_state.equal (N.get_state n) Node_state.Free then
      h.double_frees <- h.double_frees + 1
    else begin
      N.set_state n Node_state.Free;
      h.frees <- h.frees + 1;
      ignore (Atomic.fetch_and_add h.owner.outstanding_now (-1));
      Qs_util.Vec.push h.free_list n
    end

  (* Bulk return for the batched-bag reclamation path: free the first
     [count] elements of [data] with ONE update of the shared outstanding
     counter instead of one per node. The per-node oracle work (double-free
     detection, state stamping, free-list push) is kept — it is exactly
     what the node-state checks test against. *)
  let free_many h data count =
    let freed = ref 0 in
    for i = 0 to count - 1 do
      let n = data.(i) in
      if Node_state.equal (N.get_state n) Node_state.Free then
        h.double_frees <- h.double_frees + 1
      else begin
        N.set_state n Node_state.Free;
        incr freed;
        Qs_util.Vec.push h.free_list n
      end
    done;
    if !freed > 0 then begin
      h.frees <- h.frees + !freed;
      ignore (Atomic.fetch_and_add h.owner.outstanding_now (- !freed))
    end

  let touch h n =
    if Node_state.equal (N.get_state n) Node_state.Free then
      h.violations <- h.violations + 1

  let allocations t = sum t (fun h -> h.allocations)
  let frees t = sum t (fun h -> h.frees)
  let fresh_nodes t = sum t (fun h -> h.fresh)
  let violations t = sum t (fun h -> h.violations)
  let double_frees t = sum t (fun h -> h.double_frees)
  let capacity t = t.capacity

  let reuse_ratio t =
    let a = allocations t in
    if a = 0 then 0.
    else float_of_int (a - fresh_nodes t) /. float_of_int a
end
