(** Explicit allocator for data-structure nodes.

    OCaml has a garbage collector, so to reproduce a manual-reclamation
    paper the act of "freeing" must be made explicit and observable. The
    arena provides that: [alloc] hands out nodes (recycling previously freed
    ones through per-process free lists, like the ssmem allocator used by
    ASCYLIB), [free] returns them, and the arena tracks the node-state
    oracle — detecting use-after-free ([touch] on a Free node), double-free,
    and memory exhaustion (the [outstanding] node count exceeding an
    optional capacity, which models the paper's "the system runs out of
    memory and eventually fails" behaviour of blocked QSBR).

    Per-process handles make the hot path free of shared-memory traffic:
    counters are plain fields owned by one process, aggregated only when
    statistics are read. *)

exception Exhausted
(** Raised by [alloc] when [capacity] outstanding nodes already exist and
    the caller's free list is empty. *)

module type NODE = sig
  type t

  val create : unit -> t
  (** A brand-new node; field initialisation is the caller's business. *)

  val get_state : t -> Node_state.t
  val set_state : t -> Node_state.t -> unit
  val bump_birth : t -> unit
  (** Increment the node's birth stamp; called at every [alloc] so that
      stale references can detect recycling. *)
end

module Make (N : NODE) : sig
  type t
  type handle

  val create : ?capacity:int -> n_processes:int -> unit -> t
  (** [capacity] bounds the number of outstanding (allocated-but-not-freed)
      nodes; omitted means unbounded. *)

  val register : t -> pid:int -> handle

  val alloc : handle -> N.t
  (** Pop the caller's free list, or create a fresh node if the capacity
      allows. The node comes back in state [Allocated] with a new birth
      stamp. Raises {!Exhausted} at capacity. *)

  val free : handle -> N.t -> unit
  (** Return a node to the caller's free list and mark it [Free]. A node
      already [Free] increments the double-free counter instead. *)

  val free_many : handle -> N.t array -> int -> unit
  (** [free_many h data count] frees [data.(0 .. count-1)] as {!free} does
      — per-node double-free detection, state stamping and free-list push
      included — but updates the shared outstanding counter once for the
      whole batch. This is the bulk-return path for whole limbo bags. The
      array is not retained. *)

  val touch : handle -> N.t -> unit
  (** Record a traversal access to the node: if its state is [Free], the
      access is a use-after-free and increments the violation counter. *)

  val outstanding : t -> int
  (** Allocated-but-not-freed nodes, across all processes. O(1): a shared
      counter maintained by [alloc]/[free], not a fold over handles. *)

  val allocations : t -> int
  val frees : t -> int
  val fresh_nodes : t -> int
  (** Nodes created anew (not recycled). *)

  val reuse_ratio : t -> float
  (** Fraction of allocations served by recycling a freed node instead of
      creating a fresh one: [(allocations - fresh_nodes) / allocations],
      or [0.] before the first allocation. A steady-state workload under a
      working reclamation scheme approaches 1. *)

  val violations : t -> int
  (** Use-after-free accesses detected by [touch]. *)

  val double_frees : t -> int

  val capacity : t -> int option
end
