(* Pre-generated deterministic KV request streams, the service-layer
   analogue of {!Generator}: the same logical request sequence (operation
   AND open-loop arrival time) replayable against different schemes, so
   per-request latencies are comparable across runs.

   Arrival times are materialised as absolute schedule offsets: request
   [i] of a stream is due at [arrival i] ticks after the stream starts.
   An open-loop worker that falls behind does not stretch the schedule —
   queueing delay lands in the measured latency instead, which is what
   turns a reclamation pause into a visible p999 spike. *)

type t = {
  spec : Kv_spec.t;
  streams : Kv_spec.op array array;  (* ops.(pid).(i) *)
  arrivals : int array array;  (* due time of request i, ticks from start *)
}

let make spec ~n_processes ~ops_per_process ~seed =
  if n_processes <= 0 then invalid_arg "Kv_gen.make: n_processes";
  if ops_per_process <= 0 then
    invalid_arg "Kv_gen.make: ops_per_process must be positive";
  let master = Qs_util.Prng.create ~seed in
  let streams =
    Array.init n_processes (fun _ ->
        let prng = Qs_util.Prng.split master in
        Array.init ops_per_process (fun _ -> Kv_spec.pick prng spec))
  in
  let arrivals =
    Array.init n_processes (fun _ ->
        let due = ref 0 in
        Array.init ops_per_process (fun i ->
            due := !due + Kv_spec.gap spec ~i;
            !due))
  in
  { spec; streams; arrivals }

let spec t = t.spec

let stream t ~pid = t.streams.(pid)

(* Cyclic access: workers that outlive their pre-generated stream wrap
   around, keeping the sequence deterministic without bounding the run. *)
let op t ~pid ~i =
  let s = t.streams.(pid) in
  s.(i mod Array.length s)

(* Due time of request [i], extended periodically past the stream end:
   wrap k adds k times the full stream duration. *)
let arrival t ~pid ~i =
  let a = t.arrivals.(pid) in
  let n = Array.length a in
  let span = a.(n - 1) in
  (i / n * span) + a.(i mod n)

let length t = Array.length t.streams.(0)

let n_processes t = Array.length t.streams
