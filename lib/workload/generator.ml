(* Pre-generated deterministic operation streams.

   Drawing operations lazily from a per-process PRNG (as Spec.pick does) is
   enough for throughput runs, but some experiments want the *same* logical
   operation sequence replayed against different schemes or structures —
   e.g. per-operation latency comparisons, where the i-th operation must be
   identical across runs. A generator materialises those streams up front. *)

type t = { streams : Spec.op array array }

let make spec ~n_processes ~ops_per_process ~seed =
  if n_processes <= 0 then invalid_arg "Generator.make: n_processes";
  (* 0 would make the cyclic [op] accessor divide by zero ([i mod 0]). *)
  if ops_per_process <= 0 then
    invalid_arg "Generator.make: ops_per_process must be positive";
  let master = Qs_util.Prng.create ~seed in
  let streams =
    Array.init n_processes (fun _ ->
        let prng = Qs_util.Prng.split master in
        Array.init ops_per_process (fun _ -> Spec.pick prng spec))
  in
  { streams }

let stream t ~pid = t.streams.(pid)

(* Cyclic access: workers that outlive their pre-generated stream wrap
   around, keeping the sequence deterministic without bounding the run. *)
let op t ~pid ~i =
  let s = t.streams.(pid) in
  s.(i mod Array.length s)

let length t = Array.length t.streams.(0)

let n_processes t = Array.length t.streams

(* Mix statistics of one stream — used by tests to sanity-check that the
   generator honours the spec's distribution. *)
let census ops =
  Array.fold_left
    (fun (s, i, d) op ->
      match op with
      | Spec.Search _ -> (s + 1, i, d)
      | Spec.Insert _ -> (s, i + 1, d)
      | Spec.Delete _ -> (s, i, d + 1))
    (0, 0, 0) ops
