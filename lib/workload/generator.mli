(** Pre-generated deterministic operation streams: the same logical
    sequence of operations, replayable against different schemes or
    structures (needed when comparing per-operation latencies, where the
    i-th operation must be identical across runs). *)

type t

val make : Spec.t -> n_processes:int -> ops_per_process:int -> seed:int -> t

val stream : t -> pid:int -> Spec.op array
(** Process [pid]'s operations, in execution order. *)

val op : t -> pid:int -> i:int -> Spec.op
(** The [i]-th operation of process [pid], cycling past the end of the
    pre-generated stream (workers that outlive it stay deterministic). *)

val length : t -> int
val n_processes : t -> int

val census : Spec.op array -> int * int * int
(** (searches, inserts, deletes) in a stream. *)
