(** Workload specification, matching the paper's §7.1: each operation is
    chosen at random according to a probability distribution, with a
    randomly chosen key; an update percentage of [u] means [u/2]% inserts
    and [u/2]% deletes; the structure is pre-filled to half the key range. *)

type op = Search of int | Insert of int | Delete of int

type t = {
  key_range : int;
  update_pct : int;  (** 0..100; split evenly between inserts and deletes *)
}

let make ~key_range ~update_pct =
  if key_range <= 0 then invalid_arg "Spec.make: key_range must be positive";
  if update_pct < 0 || update_pct > 100 then
    invalid_arg "Spec.make: update_pct must be in [0, 100]";
  { key_range; update_pct }

(** The paper's scalability setting: 50% updates (25% ins / 25% del). *)
let updates_50 ~key_range = make ~key_range ~update_pct:50

(** The paper's Figure 3 setting: 10% updates. *)
let updates_10 ~key_range = make ~key_range ~update_pct:10

(** Operation kinds as a dense index space, for per-kind accounting
    (e.g. one latency histogram per {process × kind}). *)
let n_kinds = 3

let kind_index = function Search _ -> 0 | Insert _ -> 1 | Delete _ -> 2

let kind_name = function
  | 0 -> "search"
  | 1 -> "insert"
  | 2 -> "delete"
  | k -> invalid_arg (Printf.sprintf "Spec.kind_name: %d" k)

let pick prng t =
  let key = Qs_util.Prng.int prng t.key_range in
  let pct = Qs_util.Prng.percent prng in
  if pct < t.update_pct / 2 then Insert key
  else if pct < t.update_pct then Delete key
  else Search key

(** Keys used to pre-fill the structure to half the key range (every other
    key, so both hits and misses occur for all operation types). *)
let initial_keys t = List.init (t.key_range / 2) (fun i -> 2 * i)
