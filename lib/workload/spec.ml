(** Workload specification, matching the paper's §7.1: each operation is
    chosen at random according to a probability distribution, with a
    randomly chosen key; an update percentage of [u] means [u/2]% inserts
    and [u/2]% deletes; the structure is pre-filled to half the key range. *)

type op = Search of int | Insert of int | Delete of int

type t = {
  key_range : int;
  update_pct : int;
      (** 0..100; split evenly between inserts and deletes (odd values
          assign the leftover percent by fair coin, see {!pick}) *)
}

let make ~key_range ~update_pct =
  if key_range <= 0 then invalid_arg "Spec.make: key_range must be positive";
  if update_pct < 0 || update_pct > 100 then
    invalid_arg "Spec.make: update_pct must be in [0, 100]";
  { key_range; update_pct }

(** The paper's scalability setting: 50% updates (25% ins / 25% del). *)
let updates_50 ~key_range = make ~key_range ~update_pct:50

(** The paper's Figure 3 setting: 10% updates. *)
let updates_10 ~key_range = make ~key_range ~update_pct:10

(** Operation kinds as a dense index space, for per-kind accounting
    (e.g. one latency histogram per {process × kind}). *)
let n_kinds = 3

let kind_index = function Search _ -> 0 | Insert _ -> 1 | Delete _ -> 2

let kind_name = function
  | 0 -> "search"
  | 1 -> "insert"
  | 2 -> "delete"
  | k -> invalid_arg (Printf.sprintf "Spec.kind_name: %d" k)

(* An update percentage [u] must split evenly: u/2% inserts, u/2% deletes.
   With integer thresholds alone an odd [u] is asymmetric — the old code
   gave [u / 2] percent to inserts and [u - u / 2] to deletes, so
   [update_pct = 1] produced 0% inserts but 1% deletes. The even part of
   [u] is split by threshold exactly as before (bit-identical draws for
   even [u]); the odd leftover percent is assigned by a fair coin, making
   both masses exactly [u/2]% in expectation while keeping the total update
   probability exactly [u]%. *)
let pick prng t =
  let key = Qs_util.Prng.int prng t.key_range in
  let pct = Qs_util.Prng.percent prng in
  let u = t.update_pct in
  if pct < u / 2 then Insert key
  else if pct < u - (u land 1) then Delete key
  else if pct < u then
    if Qs_util.Prng.bool prng then Insert key else Delete key
  else Search key

(** Keys used to pre-fill the structure to half the key range (every other
    key, so both hits and misses occur for all operation types). *)
let initial_keys t = List.init (t.key_range / 2) (fun i -> 2 * i)
