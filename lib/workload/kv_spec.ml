(* KV-service workload specification: the richer cousin of {!Spec} for the
   sharded key-value service. Four operation kinds (point get/put/delete
   plus range scan), Zipfian hot keys, multi-tenant key spaces (tenant id
   in the high bits, local key below) and open-loop bursty arrivals.

   Zipfian sampling uses the rejection-free approximation of Gray et al.
   ("Quickly generating billion-record synthetic databases", SIGMOD '94),
   the same one YCSB ships: all the expensive terms (zeta(n, theta), eta)
   are precomputed in [make], so a draw is two PRNG words and a [**]. Rank
   r is mapped to local key r directly — the hot keys are the low local
   keys of every tenant, which keeps the hot-key mass analytically
   checkable: P(local < K) = zeta(K, theta) / zeta(n, theta). *)

type op =
  | Get of int
  | Put of int
  | Del of int
  | Scan of int * int  (** [Scan (lo, hi)]: count keys in [lo, hi] *)

type dist = Uniform | Zipfian of float  (** theta in (0, 1) *)

type mix = { get_pct : int; put_pct : int; del_pct : int; scan_pct : int }

(* Open-loop arrival bursts: every [every] requests, the next [len]
   requests arrive with their gap divided by [factor]. *)
type burst = { every : int; len : int; factor : int }

type zipf = { theta : float; alpha : float; zetan : float; eta : float }

type t = {
  tenants : int;
  keys_per_tenant : int;
  tenant_shift : int;  (* local keys live in the low [tenant_shift] bits *)
  dist : dist;
  zipf : zipf option;  (* precomputed iff [dist] is [Zipfian] *)
  mix : mix;
  scan_span : int;  (* scan covers [lo, lo + scan_span - 1], tenant-clamped *)
  base_gap : int;  (* open-loop inter-arrival gap (sim ticks / ns) *)
  burst : burst option;
}

let zeta n theta =
  let acc = ref 0. in
  for i = 1 to n do
    acc := !acc +. (1. /. Float.pow (float_of_int i) theta)
  done;
  !acc

let make ?(tenants = 1) ?(dist = Uniform) ?(scan_span = 16) ?(base_gap = 0)
    ?burst ~keys_per_tenant ~mix () =
  if tenants <= 0 then invalid_arg "Kv_spec.make: tenants must be positive";
  if keys_per_tenant < 2 then
    invalid_arg "Kv_spec.make: keys_per_tenant must be at least 2";
  if scan_span <= 0 then invalid_arg "Kv_spec.make: scan_span must be positive";
  if base_gap < 0 then invalid_arg "Kv_spec.make: base_gap must be non-negative";
  let { get_pct; put_pct; del_pct; scan_pct } = mix in
  if get_pct < 0 || put_pct < 0 || del_pct < 0 || scan_pct < 0 then
    invalid_arg "Kv_spec.make: negative mix percentage";
  if get_pct + put_pct + del_pct + scan_pct <> 100 then
    invalid_arg "Kv_spec.make: mix percentages must sum to 100";
  (match burst with
  | Some { every; len; factor } when every <= 0 || len < 0 || factor <= 0 ->
    invalid_arg "Kv_spec.make: bad burst"
  | _ -> ());
  let zipf =
    match dist with
    | Uniform -> None
    | Zipfian theta ->
      if theta <= 0. || theta >= 1. then
        invalid_arg "Kv_spec.make: Zipfian theta must be in (0, 1)";
      let n = keys_per_tenant in
      let zetan = zeta n theta in
      let zeta2 = zeta 2 theta in
      let alpha = 1. /. (1. -. theta) in
      let eta =
        (1. -. Float.pow (2. /. float_of_int n) (1. -. theta))
        /. (1. -. (zeta2 /. zetan))
      in
      Some { theta; alpha; zetan; eta }
  in
  let tenant_shift =
    let s = ref 1 in
    while 1 lsl !s < keys_per_tenant do incr s done;
    !s
  in
  { tenants;
    keys_per_tenant;
    tenant_shift;
    dist;
    zipf;
    mix;
    scan_span;
    base_gap;
    burst }

(* Tenant-prefixed keys: tenant id in the high bits, local key below.
   Adjacent local keys of different tenants differ only above
   [tenant_shift] — exactly the key shape that exposed the hash table's
   low-bits bucket reduction. *)
let key_of t ~tenant ~local = (tenant lsl t.tenant_shift) lor local

let tenant_of t key = key lsr t.tenant_shift

let local_of t key = key land ((1 lsl t.tenant_shift) - 1)

let key_space t = t.tenants lsl t.tenant_shift

(* Gray et al. approximation; [zetan]/[eta]/[alpha] precomputed. *)
let sample_local prng t =
  match t.zipf with
  | None -> Qs_util.Prng.int prng t.keys_per_tenant
  | Some z ->
    let u = Qs_util.Prng.float prng 1.0 in
    let uz = u *. z.zetan in
    if uz < 1. then 0
    else if uz < 1. +. Float.pow 0.5 z.theta then 1
    else begin
      let r =
        float_of_int t.keys_per_tenant
        *. Float.pow ((z.eta *. u) -. z.eta +. 1.) z.alpha
      in
      let r = int_of_float r in
      if r >= t.keys_per_tenant then t.keys_per_tenant - 1 else r
    end

let pick prng t =
  let tenant = if t.tenants = 1 then 0 else Qs_util.Prng.int prng t.tenants in
  let local = sample_local prng t in
  let key = key_of t ~tenant ~local in
  let pct = Qs_util.Prng.percent prng in
  let m = t.mix in
  if pct < m.get_pct then Get key
  else if pct < m.get_pct + m.put_pct then Put key
  else if pct < m.get_pct + m.put_pct + m.del_pct then Del key
  else begin
    let hi_local = min (local + t.scan_span - 1) (t.keys_per_tenant - 1) in
    Scan (key, key_of t ~tenant ~local:hi_local)
  end

(* Open-loop inter-arrival gap before the [i]-th request of a stream. *)
let gap t ~i =
  match t.burst with
  | Some b when i mod b.every < b.len -> t.base_gap / b.factor
  | _ -> t.base_gap

(* Keys used to pre-fill the service to half of every tenant's key space
   (every other local key, so hits and misses occur for all op kinds). *)
let initial_keys t =
  List.concat
    (List.init t.tenants (fun tenant ->
         List.init (t.keys_per_tenant / 2) (fun i ->
             key_of t ~tenant ~local:(2 * i))))

(* Operation kinds as a dense index space (per-{process × kind} latency
   histograms). *)
let n_kinds = 4

let kind_index = function Get _ -> 0 | Put _ -> 1 | Del _ -> 2 | Scan _ -> 3

let kind_name = function
  | 0 -> "get"
  | 1 -> "put"
  | 2 -> "del"
  | 3 -> "scan"
  | k -> invalid_arg (Printf.sprintf "Kv_spec.kind_name: %d" k)

(* Mix statistics of one stream: ops per kind, indexed by [kind_index]. *)
let census ops =
  let counts = Array.make n_kinds 0 in
  Array.iter
    (fun op ->
      let k = kind_index op in
      counts.(k) <- counts.(k) + 1)
    ops;
  counts

(* Fraction of key touches that land on a tenant's [k] hottest local keys
   (scans touch their low endpoint). Under [Zipfian theta] this must
   approach zeta(k, theta) / zeta(n, theta). *)
let hot_mass t ops ~k =
  let total = ref 0 and hot = ref 0 in
  Array.iter
    (fun op ->
      let key = match op with Get x | Put x | Del x | Scan (x, _) -> x in
      incr total;
      if local_of t key < k then incr hot)
    ops;
  if !total = 0 then 0. else float_of_int !hot /. float_of_int !total

(* Predicted hot-key mass for the spec's distribution. *)
let expected_hot_mass t ~k =
  match t.zipf with
  | None -> float_of_int k /. float_of_int t.keys_per_tenant
  | Some z -> zeta k z.theta /. z.zetan
