(** KV-service experiment runner over the deterministic simulator.

    Workers replay a pre-generated {!Qs_workload.Kv_gen} trace against a
    sharded {!Kv} service with open-loop arrivals: a request's latency
    runs from its scheduled arrival to completion, so queueing behind a
    reclamation pause lands in the tail percentiles. Latency recording
    uses meta-level clock reads and never perturbs the schedule. *)

module K : module type of Kv.Make (Qs_sim.Sim_runtime)
(** The service instantiated on the simulator (shared with tests). *)

type churn = { every_ops : int; downtime : int }

type setup = {
  scheme : Qs_smr.Scheme.kind;
  n_processes : int;
  gen : Qs_workload.Kv_gen.t;
  duration : int;
  ops_limit : int option;
      (** stop each worker after this many completed requests — every
          scheme executes the identical logical trace (differentials) *)
  seed : int;
  n_shards : int;
  capacity : int option;
  churn : churn option;
  latency : Qs_obs.Latency.recorder option;
  faults : Qs_sim.Scheduler.fault list;
  sink : Qs_intf.Runtime_intf.sink option;
  smr_tweak : Qs_smr.Smr_intf.config -> Qs_smr.Smr_intf.config;
  sched_tweak : Qs_sim.Scheduler.config -> Qs_sim.Scheduler.config;
}

val default_setup :
  scheme:Qs_smr.Scheme.kind ->
  n_processes:int ->
  gen:Qs_workload.Kv_gen.t ->
  setup

type result = {
  ops_total : int;
  per_worker_ops : int array;
  per_kind_ops : int array;
  throughput : float;  (** requests per million virtual ticks *)
  failed_at : int option;
  violations : int;
  report : Qs_ds.Set_intf.report;
  rooster_fires : int;
  final_size : int;
  index_size : int;
  contents : int list;  (** final authoritative contents (differentials) *)
  churn_events : int;
  leak_check : [ `Ok | `Leaked of int | `Skipped ];
}

val run : setup -> result
