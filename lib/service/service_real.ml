(** KV-service runner over real OCaml 5 domains — the service analogue of
    {!Qs_harness.Real_exp}, for wall-clock Mops numbers and smoke tests.

    Workers replay their pre-generated request streams cyclically, as
    fast as the machine allows (closed loop: on the real runtime the
    point is throughput; the simulator owns exact open-loop latency).
    Per-run totals are also published to the process-global metrics
    registry ({!Qs_obs.Registry.global}) under [service_*] names, so a
    scrape after a run exports the service's view of itself. *)

type churn = { generations : int; downtime_ms : int }

type setup = {
  scheme : Qs_smr.Scheme.kind;
  n_domains : int;
  gen : Qs_workload.Kv_gen.t;
  duration_ms : int;
  seed : int;
  n_shards : int;
  capacity : int option;
  churn : churn option;
  latency : Qs_obs.Latency.recorder option;
      (** coarse-clock histograms (quantized to the rooster interval);
          forces rooster domains on *)
  smr_tweak : Qs_smr.Smr_intf.config -> Qs_smr.Smr_intf.config;
}

let default_setup ~scheme ~n_domains ~gen =
  { scheme;
    n_domains;
    gen;
    duration_ms = 200;
    seed = 1;
    n_shards = 4;
    capacity = None;
    churn = None;
    latency = None;
    smr_tweak = Fun.id }

type result = {
  ops_total : int;
  per_kind_ops : int array;
  throughput_mops : float;
  violations : int;
  failed : bool;
  churn_events : int;
  final_size : int;
  report : Qs_ds.Set_intf.report;
}

let rooster_interval_ns = 2_000_000 (* 2 ms, as in {!Qs_harness.Real_exp} *)

module K = Kv.Make (Qs_real.Real_runtime)

let run (setup : setup) : result =
  let n = setup.n_domains in
  let spec = Qs_workload.Kv_gen.spec setup.gen in
  let base = Qs_ds.Set_intf.default_config ~n_processes:n ~scheme:setup.scheme in
  let cfg =
    { base with
      capacity = setup.capacity;
      smr =
        setup.smr_tweak
          { base.smr with
            rooster_interval = rooster_interval_ns;
            epsilon = rooster_interval_ns / 2 } }
  in
  let service = K.create ~n_shards:setup.n_shards cfg in
  let ctxs = Array.init n (fun pid -> K.register service ~pid) in
  Qs_real.Real_runtime.register_self 0;
  let keys = Array.of_list (Qs_workload.Kv_spec.initial_keys spec) in
  Qs_util.Prng.shuffle (Qs_util.Prng.create ~seed:setup.seed) keys;
  Array.iter (fun k -> ignore (K.put ctxs.(0) k)) keys;
  let roosters =
    if Qs_smr.Scheme.needs_roosters setup.scheme || setup.latency <> None then
      Some (Qs_real.Roosters.start ~interval_ns:rooster_interval_ns ~n:1)
    else None
  in
  let stop = Atomic.make false in
  let failed = Atomic.make false in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. (float_of_int setup.duration_ms /. 1000.) in
  let kind_counts =
    Array.init n (fun _ -> Array.make Qs_workload.Kv_spec.n_kinds 0)
  in
  (* Deadline checks are syscall-priced: poll every 64 requests, as in
     {!Qs_harness.Real_exp}. *)
  let worker_loop ~pid ~ctx ~until_ =
    let counts = kind_counts.(pid) in
    let count = ref 0 in
    let running = ref true in
    (try
       while !running do
         if !count land 63 = 0 then
           if Atomic.get stop || Unix.gettimeofday () >= until_ then
             running := false;
         if !running then begin
           try
             let op = Qs_workload.Kv_gen.op setup.gen ~pid ~i:!count in
             let ls =
               match setup.latency with
               | Some _ -> Qs_real.Real_runtime.now_coarse ()
               | None -> 0
             in
             (match op with
             | Qs_workload.Kv_spec.Get k -> ignore (K.get ctx k)
             | Qs_workload.Kv_spec.Put k -> ignore (K.put ctx k)
             | Qs_workload.Kv_spec.Del k -> ignore (K.del ctx k)
             | Qs_workload.Kv_spec.Scan (lo, hi) ->
               ignore (K.scan ctx ~lo ~hi));
             (match setup.latency with
             | Some r ->
               Qs_obs.Latency.observe r ~pid
                 ~kind:(Qs_workload.Kv_spec.kind_index op)
                 ~start:ls
                 ~dur:(Qs_real.Real_runtime.now_coarse () - ls)
             | None -> ());
             let k = Qs_workload.Kv_spec.kind_index op in
             counts.(k) <- counts.(k) + 1;
             incr count
           with Qs_intf.Runtime_intf.Neutralized -> ()
         end
       done
     with Qs_arena.Arena.Exhausted ->
       Atomic.set failed true;
       Atomic.set stop true);
    !count
  in
  let churn_events = ref 0 in
  let ops =
    match setup.churn with
    | None | Some { generations = 1; _ } ->
      Qs_real.Domain_pool.run ~n (fun pid ->
          worker_loop ~pid ~ctx:ctxs.(pid) ~until_:deadline)
    | Some { generations; downtime_ms } ->
      let generations = max 2 generations in
      let slice_s =
        float_of_int setup.duration_ms /. 1000. /. float_of_int generations
      in
      let per_slot =
        Qs_real.Domain_pool.run_generations ~n ~generations
          ~downtime_s:(float_of_int downtime_ms /. 1000.)
          (fun ~pid ~gen ->
            let ctx = if gen = 0 then ctxs.(pid) else K.register service ~pid in
            let until_ =
              Float.min deadline (t0 +. (slice_s *. float_of_int (gen + 1)))
            in
            let count = worker_loop ~pid ~ctx ~until_ in
            if gen < generations - 1 then K.unregister ctx
            else ctxs.(pid) <- ctx;
            count)
      in
      Array.iter
        (fun counts ->
          churn_events := !churn_events + max 0 (List.length counts - 1))
        per_slot;
      Array.map (fun counts -> List.fold_left ( + ) 0 counts) per_slot
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  (match roosters with Some r -> Qs_real.Roosters.stop r | None -> ());
  let report = K.report service in
  let ops_total = Array.fold_left ( + ) 0 ops in
  let per_kind_ops = Array.make Qs_workload.Kv_spec.n_kinds 0 in
  Array.iter
    (Array.iteri (fun k c -> per_kind_ops.(k) <- per_kind_ops.(k) + c))
    kind_counts;
  let throughput_mops = float_of_int ops_total /. elapsed /. 1e6 in
  (* Publish this run's view to the global registry (Prometheus/JSON
     scrape after the run exports it). *)
  let reg = Qs_obs.Registry.global in
  for k = 0 to Qs_workload.Kv_spec.n_kinds - 1 do
    Qs_obs.Registry.add
      (Qs_obs.Registry.counter reg
         ("service_requests_total_" ^ Qs_workload.Kv_spec.kind_name k))
      per_kind_ops.(k)
  done;
  Qs_obs.Registry.set_gauge
    (Qs_obs.Registry.gauge reg "service_throughput_ops_per_sec")
    (int_of_float (float_of_int ops_total /. elapsed));
  { ops_total;
    per_kind_ops;
    throughput_mops;
    violations = K.violations service;
    failed = Atomic.get failed;
    churn_events = !churn_events;
    final_size = K.size ctxs.(0);
    report }
