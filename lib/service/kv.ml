(* Sharded, SMR-backed key-value service: point gets/puts/deletes on an
   array of hash-table shards plus a skip-list index for range scans —
   the composite the paper's robustness story is about (a long-lived
   service where one stalled or slow handler must not wedge reclamation
   for everyone), modelled on Folk's epoch-under-live-DB embedding.

   Layout. Each shard is an independent {!Qs_ds.Hashtable} and the index
   an independent {!Qs_ds.Skiplist}; every structure owns its own arena
   and its own reclamation-scheme instance, so the service runs
   [n_shards + 1] instances of the scheme under test side by side —
   retired nodes never cross shards, exactly like a sharded store whose
   partitions reclaim independently.

   Routing. The shard index comes from the same Fibonacci hash the table
   uses for buckets, but from the bit range just *below* the table's top
   byte: shard = bits [54-k, 54) for 2^k shards, buckets = bits [54, 62).
   Using disjoint well-mixed regions of the one multiplicative product
   keeps shard choice and bucket choice independent — carving both from
   the top bits would leave each shard's table using only a fraction of
   its buckets.

   Index consistency. The index is a secondary structure maintained
   *after* the authoritative table op commits (insert into the index only
   when the table insert won; same for deletes). Concurrent put/del races
   on the same key can therefore leave the index briefly — or, in a
   pathological interleaving, durably — out of sync with the table
   (a real-world secondary index, not a transactional one): scans are
   advisory counts, the table is the source of truth for membership, and
   the differential tests compare table contents. Ghost index entries
   are still live, protected nodes, so leak accounting is unaffected.

   Quiescence. A worker whose traffic never touches some shard would
   leave that shard's epoch-based scheme instance waiting on its
   quiescence announcement forever — a registered-but-silent process is
   indistinguishable from a stalled one (the exact failure mode the
   paper's fallback handles). Every [heartbeat_interval] requests the
   handle runs one round of {!Qs_ds.Hashtable.heartbeat} /
   {!Qs_ds.Skiplist.heartbeat} across all structures — the service
   analogue of Folk's sysmon epoch ticks. *)

module Make (R : Qs_intf.Runtime_intf.RUNTIME) = struct
  module Table = Qs_ds.Hashtable.Make (R)
  module Index = Qs_ds.Skiplist.Make (R)

  type t = {
    shards : Table.t array;
    index : Index.t;
    shard_shift : int;  (* hash bits below this position are dropped *)
    shard_mask : int;  (* n_shards - 1 *)
  }

  type ctx = {
    service : t;
    shard_ctxs : Table.ctx array;
    index_ctx : Index.ctx;
    mutable since_heartbeat : int;
  }

  let default_shards = 8

  let heartbeat_interval = 64

  (* Buckets per shard: the shards together provide the table's default
     bucket budget, with a floor so tiny services still hash. *)
  let buckets_per_shard ~n_shards =
    max 16 (Table.default_buckets * 4 / n_shards)

  let create ?(n_shards = default_shards) (cfg : Qs_ds.Set_intf.config) =
    if n_shards <= 0 || n_shards land (n_shards - 1) <> 0 then
      invalid_arg "Kv.create: n_shards must be a positive power of two";
    let k =
      let b = ref 0 and m = ref n_shards in
      while !m > 1 do incr b; m := !m lsr 1 done;
      !b
    in
    (* buckets take hash bits [54, 62); shards the [k] bits below *)
    let shard_shift = Qs_util.Fib_hash.hash_bits - 8 - k in
    if shard_shift < 0 then invalid_arg "Kv.create: too many shards";
    { shards =
        Array.init n_shards (fun _ ->
            Table.create_sized ~n_buckets:(buckets_per_shard ~n_shards) cfg);
      index = Index.create cfg;
      shard_shift;
      shard_mask = n_shards - 1 }

  let n_shards t = Array.length t.shards

  let shard_index t key =
    (Qs_util.Fib_hash.hash key lsr t.shard_shift) land t.shard_mask

  let register t ~pid =
    { service = t;
      shard_ctxs = Array.map (fun s -> Table.register s ~pid) t.shards;
      index_ctx = Index.register t.index ~pid;
      since_heartbeat = 0 }

  (* One bookkeeping round across every structure, every
     [heartbeat_interval] requests (counting is branch-plus-increment on
     the hot path; the round itself is off the common path). *)
  let maybe_heartbeat ctx =
    ctx.since_heartbeat <- ctx.since_heartbeat + 1;
    if ctx.since_heartbeat >= heartbeat_interval then begin
      ctx.since_heartbeat <- 0;
      Array.iter Table.heartbeat ctx.shard_ctxs;
      Index.heartbeat ctx.index_ctx
    end

  (* Gets take the read-only bucket probe: same answer as [Table.search]
     but allocation-free, so the bench can pin the service's dominant
     path at zero heap words per request. *)
  let get ctx key =
    maybe_heartbeat ctx;
    Table.search_ro ctx.shard_ctxs.(shard_index ctx.service key) key

  (* The table op is authoritative; the index is maintained only when the
     table op commits (see the consistency note above). *)
  let put ctx key =
    maybe_heartbeat ctx;
    let added = Table.insert ctx.shard_ctxs.(shard_index ctx.service key) key in
    if added then ignore (Index.insert ctx.index_ctx key);
    added

  let del ctx key =
    maybe_heartbeat ctx;
    let removed =
      Table.delete ctx.shard_ctxs.(shard_index ctx.service key) key
    in
    if removed then ignore (Index.delete ctx.index_ctx key);
    removed

  let scan ctx ~lo ~hi =
    maybe_heartbeat ctx;
    Index.range_count ctx.index_ctx ~lo ~hi

  (* Handler churn: a service worker leaving retires its SMR pid slot in
     every structure (limbo lists go to each instance's orphan pool);
     re-registering builds a fresh handle under the same pid. *)
  let unregister ctx =
    Array.iter Table.unregister ctx.shard_ctxs;
    Index.unregister ctx.index_ctx

  let flush ctx =
    Array.iter Table.flush ctx.shard_ctxs;
    Index.flush ctx.index_ctx

  (* Sequential-context inspection. *)

  let to_list ctx =
    Array.to_list ctx.shard_ctxs
    |> List.concat_map Table.to_list
    |> List.sort compare

  let size ctx = Array.fold_left (fun a c -> a + Table.size c) 0 ctx.shard_ctxs

  let index_size ctx = Index.size ctx.index_ctx

  (* Live nodes across all structures — the leak-accounting baseline
     (index ghosts are live nodes, so each structure counts its own). *)
  let live_nodes ctx = size ctx + index_size ctx

  let validate ctx =
    Array.iter Table.validate ctx.shard_ctxs;
    Index.validate ctx.index_ctx

  (* Aggregates over all scheme instances / arenas. *)

  let sum f_table f_index t =
    Array.fold_left (fun a s -> a + f_table s) (f_index t.index) t.shards

  let violations t = sum Table.violations Index.violations t
  let outstanding t = sum Table.outstanding Index.outstanding t
  let retired_count t = sum Table.retired_count Index.retired_count t

  let report t : Qs_ds.Set_intf.report =
    let add (a : Qs_ds.Set_intf.report) (b : Qs_ds.Set_intf.report) =
      { a with
        allocations = a.allocations + b.allocations;
        frees = a.frees + b.frees;
        outstanding = a.outstanding + b.outstanding;
        fresh_nodes = a.fresh_nodes + b.fresh_nodes;
        violations = a.violations + b.violations;
        double_frees = a.double_frees + b.double_frees }
    in
    Array.fold_left
      (fun acc s -> add acc (Table.report s))
      (Index.report t.index) t.shards

  let scheme_name t = Index.scheme_name t.index
end
