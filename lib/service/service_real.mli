(** KV-service runner over real OCaml 5 domains: wall-clock Mops, with
    per-run totals published to {!Qs_obs.Registry.global} under
    [service_*] metric names. *)

module K : module type of Kv.Make (Qs_real.Real_runtime)
(** The service instantiated on the real runtime (shared with callers so
    bench pins and tests drive the same instantiation). *)

type churn = { generations : int; downtime_ms : int }

type setup = {
  scheme : Qs_smr.Scheme.kind;
  n_domains : int;
  gen : Qs_workload.Kv_gen.t;
  duration_ms : int;
  seed : int;
  n_shards : int;
  capacity : int option;
  churn : churn option;
  latency : Qs_obs.Latency.recorder option;
  smr_tweak : Qs_smr.Smr_intf.config -> Qs_smr.Smr_intf.config;
}

val default_setup :
  scheme:Qs_smr.Scheme.kind ->
  n_domains:int ->
  gen:Qs_workload.Kv_gen.t ->
  setup

type result = {
  ops_total : int;
  per_kind_ops : int array;
  throughput_mops : float;
  violations : int;
  failed : bool;
  churn_events : int;
  final_size : int;
  report : Qs_ds.Set_intf.report;
}

val run : setup -> result
