(** Sharded, SMR-backed key-value service: point get/put/delete on
    hash-table shards, range scans on a skip-list index, every structure
    running its own instance of the reclamation scheme under test. The
    table is authoritative; the index is a secondary structure maintained
    after the table op commits (scans are advisory counts). A periodic
    heartbeat runs scheme bookkeeping across all structures so that
    epoch-based schemes never see a registered-but-silent process. *)

module Make (R : Qs_intf.Runtime_intf.RUNTIME) : sig
  type t
  type ctx

  val default_shards : int

  val heartbeat_interval : int
  (** Requests between bookkeeping rounds across all structures. *)

  val create : ?n_shards:int -> Qs_ds.Set_intf.config -> t
  (** [n_shards] must be a positive power of two (default
      {!default_shards}). *)

  val n_shards : t -> int

  val shard_index : t -> int -> int
  (** The shard a key routes to (Fibonacci hash bits disjoint from the
      per-shard bucket bits). Exposed for distribution tests. *)

  val register : t -> pid:int -> ctx

  val get : ctx -> int -> bool
  val put : ctx -> int -> bool
  val del : ctx -> int -> bool

  val scan : ctx -> lo:int -> hi:int -> int
  (** Number of index keys currently in [lo, hi] (inclusive). *)

  val unregister : ctx -> unit
  (** Handler churn: retire this pid's SMR slot in every structure
      (limbo lists go to each instance's orphan pool); re-register to
      rejoin under the same pid. Process context, between requests. *)

  val flush : ctx -> unit

  (** {1 Inspection — sequential context} *)

  val to_list : ctx -> int list
  (** Authoritative contents: union of the shard tables, sorted. *)

  val size : ctx -> int
  val index_size : ctx -> int

  val live_nodes : ctx -> int
  (** Total live nodes across shards and index (leak baseline). *)

  val validate : ctx -> unit

  (** {1 Aggregates over all scheme instances} *)

  val violations : t -> int
  val outstanding : t -> int
  val retired_count : t -> int
  val report : t -> Qs_ds.Set_intf.report
  val scheme_name : t -> string
end
