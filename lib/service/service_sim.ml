(** KV-service experiment runner over the deterministic simulator — the
    service analogue of {!Qs_harness.Sim_exp}.

    Workers replay a pre-generated {!Qs_workload.Kv_gen} trace against a
    sharded {!Kv} service. Arrivals are open-loop: request [i] of a
    stream is due at a fixed virtual time, a worker that falls behind
    does not stretch the schedule, and a request's latency is measured
    from its *scheduled arrival* to completion — so queueing delay
    behind a reclamation pause lands in the tail percentiles, which is
    precisely how QSBR's blocking and QSense's fallback dwell become
    visible p999 spikes. (Specs with [base_gap = 0] degrade to
    closed-loop service-time measurement.)

    Latency is recorded via meta-level clock reads
    ([Scheduler.clock_of]), so schedules are byte-identical with the
    recorder on or off. *)

open Qs_sim

type churn = { every_ops : int; downtime : int }

type setup = {
  scheme : Qs_smr.Scheme.kind;
  n_processes : int;
  gen : Qs_workload.Kv_gen.t;
      (** pre-generated request streams + open-loop arrival times *)
  duration : int;
  ops_limit : int option;
      (** stop each worker after this many completed requests (with a
          [duration] comfortably past the end): every scheme then executes
          the identical logical trace, so final contents are comparable —
          the differential-test mode. [None] = duration-bounded. *)
  seed : int;
  n_shards : int;
  capacity : int option;
  churn : churn option;
      (** handler churn: every [every_ops] completed requests, each worker
          with pid > 0 unregisters from every structure, sits out
          [downtime] ticks, and re-registers under the same pid *)
  latency : Qs_obs.Latency.recorder option;
  faults : Scheduler.fault list;
  sink : Qs_intf.Runtime_intf.sink option;
  smr_tweak : Qs_smr.Smr_intf.config -> Qs_smr.Smr_intf.config;
  sched_tweak : Scheduler.config -> Scheduler.config;
}

let default_setup ~scheme ~n_processes ~gen =
  { scheme;
    n_processes;
    gen;
    duration = 300_000;
    ops_limit = None;
    seed = 1;
    n_shards = 4;
    capacity = None;
    churn = None;
    latency = None;
    faults = [];
    sink = None;
    smr_tweak = Fun.id;
    sched_tweak = Fun.id }

type result = {
  ops_total : int;
  per_worker_ops : int array;
  per_kind_ops : int array;  (** indexed by {!Qs_workload.Kv_spec.kind_index} *)
  throughput : float;  (** requests per million virtual ticks *)
  failed_at : int option;
  violations : int;
  report : Qs_ds.Set_intf.report;
  rooster_fires : int;
  final_size : int;  (** authoritative table contents *)
  index_size : int;
  contents : int list;  (** final table contents, sorted (differentials) *)
  churn_events : int;
  leak_check : [ `Ok | `Leaked of int | `Skipped ];
}

module K = Kv.Make (Sim_runtime)

let run (setup : setup) : result =
  let n = setup.n_processes in
  let spec = Qs_workload.Kv_gen.spec setup.gen in
  let sched_cfg =
    setup.sched_tweak
      { (Scheduler.default_config ~n_cores:n ~seed:setup.seed) with
        rooster_interval =
          (if Qs_smr.Scheme.needs_roosters setup.scheme then
             Some Qs_harness.Sim_exp.default_rooster_interval
           else None);
        rooster_oversleep = Qs_harness.Sim_exp.default_epsilon / 2 }
  in
  let sched = Scheduler.create sched_cfg in
  let cfg =
    { Qs_ds.Set_intf.scheme = setup.scheme;
      smr =
        setup.smr_tweak
          (Qs_harness.Sim_exp.base_smr_config ~n_processes:n);
      capacity = setup.capacity;
      debug_checks = true }
  in
  let service = K.create ~n_shards:setup.n_shards cfg in
  let ctxs = Array.init n (fun pid -> K.register service ~pid) in
  (* Pre-fill every tenant's key space to half from a single process. *)
  Scheduler.exec sched ~pid:0 (fun () ->
      let keys = Array.of_list (Qs_workload.Kv_spec.initial_keys spec) in
      Qs_util.Prng.shuffle (Qs_util.Prng.create ~seed:setup.seed) keys;
      Array.iter (fun k -> ignore (K.put ctxs.(0) k)) keys);
  if setup.faults <> [] then Scheduler.inject sched setup.faults;
  Scheduler.reset_clocks sched;
  Scheduler.set_sink sched setup.sink;
  let per_worker_ops = Array.make n 0 in
  let per_kind_ops = Array.make Qs_workload.Kv_spec.n_kinds 0 in
  let failed_at = ref None in
  let churn_counts = Array.make n 0 in
  let open_loop =
    (* arrival times are all 0 when the spec has no inter-arrival gap *)
    Qs_workload.Kv_gen.arrival setup.gen ~pid:0 ~i:1 > 0
  in
  for pid = 0 to n - 1 do
    Scheduler.spawn sched ~pid (fun () ->
        let ctx = ref ctxs.(pid) in
        let next_churn =
          match setup.churn with
          | Some c when pid > 0 && c.every_ops > 0 ->
            ref (c.every_ops + (pid * c.every_ops / n))
          | _ -> ref max_int
        in
        let rec loop () =
          (match setup.churn with
          | Some c when per_worker_ops.(pid) >= !next_churn ->
            K.unregister !ctx;
            Sim_runtime.sleep_until (Sim_runtime.now () + c.downtime);
            ctx := K.register service ~pid;
            ctxs.(pid) <- !ctx;
            churn_counts.(pid) <- churn_counts.(pid) + 1;
            next_churn := !next_churn + c.every_ops
          | _ -> ());
          let i = per_worker_ops.(pid) in
          let due = Qs_workload.Kv_gen.arrival setup.gen ~pid ~i in
          let t = Sim_runtime.now () in
          (* open loop: wait for the request's scheduled arrival (an early
             worker idles; a late one starts immediately and the backlog
             shows up as queueing latency) *)
          let t =
            if open_loop && due > t then begin
              Sim_runtime.sleep_until due;
              due
            end
            else t
          in
          let under_limit =
            match setup.ops_limit with None -> true | Some l -> i < l
          in
          if t < setup.duration && under_limit && !failed_at = None then begin
            let start = if open_loop then due else t in
            Scheduler.set_neutralizable sched ~pid true;
            (try
               (* index streams by *completed* requests so a neutralized
                  request is retried, keeping the trace identical across
                  schemes *)
               let op = Qs_workload.Kv_gen.op setup.gen ~pid ~i in
               (match op with
               | Qs_workload.Kv_spec.Get k -> ignore (K.get !ctx k)
               | Qs_workload.Kv_spec.Put k -> ignore (K.put !ctx k)
               | Qs_workload.Kv_spec.Del k -> ignore (K.del !ctx k)
               | Qs_workload.Kv_spec.Scan (lo, hi) ->
                 ignore (K.scan !ctx ~lo ~hi));
               (match setup.latency with
               | Some r ->
                 (* meta-level clock read: recording cannot shift the
                    seeded schedule *)
                 let t1 = Scheduler.clock_of sched ~pid in
                 Qs_obs.Latency.observe r ~pid
                   ~kind:(Qs_workload.Kv_spec.kind_index op)
                   ~start ~dur:(t1 - start)
               | None -> ());
               per_worker_ops.(pid) <- i + 1;
               per_kind_ops.(Qs_workload.Kv_spec.kind_index op) <-
                 per_kind_ops.(Qs_workload.Kv_spec.kind_index op) + 1
             with
            | Qs_arena.Arena.Exhausted ->
              if !failed_at = None then failed_at := Some t
            | Qs_intf.Runtime_intf.Neutralized -> ());
            Scheduler.set_neutralizable sched ~pid false;
            loop ()
          end
        in
        loop ())
  done;
  Scheduler.run_all sched;
  (match Scheduler.failures sched with
  | [] -> ()
  | (pid, e) :: _ ->
    failwith
      (Printf.sprintf "service worker %d died: %s" pid (Printexc.to_string e)));
  let ops_total = Array.fold_left ( + ) 0 per_worker_ops in
  let throughput = float_of_int ops_total /. float_of_int setup.duration *. 1e6 in
  let violations = K.violations service in
  let final_size, index_size, contents =
    Scheduler.exec sched ~pid:0 (fun () ->
        (K.size ctxs.(0), K.index_size ctxs.(0), K.to_list ctxs.(0)))
  in
  let report = K.report service in
  let leak_check =
    if setup.scheme = Qs_smr.Scheme.None_ then `Skipped
    else begin
      Scheduler.exec sched ~pid:0 (fun () -> Array.iter K.flush ctxs);
      let live = Scheduler.exec sched ~pid:0 (fun () -> K.live_nodes ctxs.(0)) in
      let leaked = K.outstanding service - live in
      if leaked = 0 then `Ok else `Leaked leaked
    end
  in
  { ops_total;
    per_worker_ops;
    per_kind_ops;
    throughput;
    failed_at = !failed_at;
    violations;
    report;
    rooster_fires = Scheduler.rooster_fires sched;
    final_size;
    index_size;
    contents;
    churn_events = Array.fold_left ( + ) 0 churn_counts;
    leak_check }
