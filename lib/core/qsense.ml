(* QSense (§4, §5.2): the hybrid scheme.

   Fast path = QSBR over three per-process limbo lists; fallback path =
   Cadence-style hazard-pointer scans over those same limbo lists (the
   paper: "QSBR's limbo_list becomes the removed_nodes_list scanned by
   Cadence"). Two pieces of state are maintained at ALL times, regardless
   of mode, because a switch can happen at any moment:

   - hazard pointers: published on every traversal with a plain store and
     NO fence (visibility bounded by the rooster interval T);
   - retire timestamps: every retired node is recorded with its removal time
     (Algorithm 5's free_node_later) — in a parallel array, not a wrapper
     record, and taken from the coarse rooster clock, so [retire] performs
     no allocation and no syscall.

   Mode is a shared fallback flag. A process whose limbo lists exceed the
   threshold C flips it to fallback (quiescence has evidently stalled); a
   process that observes every worker's presence flag set flips it back.

   Extension beyond the paper (its §5.2 "future work"): optional eviction.
   Without it, a crashed process leaves QSense in fallback mode forever.
   With [eviction_timeout = Some dt], a process silent for dt while the
   system is in fallback mode is evicted: it no longer counts for presence
   or epoch agreement, so the survivors return to the fast path. Safety is
   preserved because (a) the evicted process's hazard pointers are visible
   (it has been off-CPU far longer than T) and (b) while any process is
   evicted — and for the first epoch cycle after it rejoins — quiescent
   freeing filters through the hazard-pointer + age check instead of freeing
   unconditionally.

   Hot-path discipline: limbo lists are timestamped bags by default
   ({!Qs_util.Bag.Ts} via the {!Qs_util.Limbo.Ts} switch; the vec
   reference behind [config.limbo_bags = false]). The QSBR fast path
   frees a whole expired epoch bag-by-bag in bulk arena calls; fallback
   scans walk sealed bags oldest-first against a reusable sorted-id
   hazard-pointer snapshot, paying one age check per bag and filtering
   survivors into fresh bags — the fallback HP scan shrinks to bag
   granularity. Eviction seizes a victim's bag chains intact (donation is
   pointer splicing). The per-process cells written by their owner and
   read by everyone (epoch slots, presence and eviction flags) are
   cache-line padded. *)

module Limbo = Qs_util.Limbo

module type PUBLICATION = sig
  val scheme_name : string

  val always_publish : bool
  (** true = the sound QSense design: hazard pointers maintained in BOTH
      modes, fence-free. false = the naive hybrid of §4.1: hazard pointers
      only published (with a fence, even) while the fallback flag is up —
      references taken before a switch are unprotected, which is exactly
      why the paper rejects this design. *)
end

module Make_gen (P : PUBLICATION) (R : Qs_intf.Runtime_intf.RUNTIME) (N : Smr_intf.NODE) = struct
  type node = N.t

  module Hp = Hp_array.Make (R) (N)

  type t = {
    cfg : Smr_intf.config;
    c_threshold : int;
    scan_threshold_eff : int; (* adaptive: max(R, ceil(scan_factor * N * K)) *)
    hp : Hp.t;
    free : node -> unit;
    free_bulk : node array -> int -> unit;
    global : int R.atomic;
    locals : int R.atomic array;
    fallback_flag : int R.atomic; (* 0 = fast path, 1 = fallback path *)
    presence : int R.atomic array;
    evicted : int R.atomic array;
    evicted_count : int R.atomic;
    fallback_since : int R.atomic;
    mutable mode_shadow : Smr_intf.mode; (* effect-free mirror for stats *)
    mutable fallback_since_shadow : int;
        (* effect-free mirror of [fallback_since] for stats — [stats] runs
           outside process context, where runtime effects are illegal *)
    mutable fallback_ticks_acc : int;
        (* total time spent in completed fallback episodes (stats only;
           written exclusively by the process that wins the
           [enter_fastpath] CAS, so there is no lost-update race) *)
    dummy : node;
    handles : handle option array;
    orphans : node Limbo.Ts.t array Orphan_pool.t;
        (* each entry is an arbitrary-length array of timestamped limbo
           lists: the three epochs (+ adopted list) of a departed or
           evicted process; bag chains travel intact *)
    mutable legacy_retires : int;
    mutable legacy_frees : int;
    mutable legacy_scans : int;
    mutable legacy_epoch_advances : int;
    mutable legacy_fallback_switches : int;
    mutable legacy_fastpath_switches : int;
    mutable legacy_evictions : int;
    mutable legacy_retired_peak : int;
        (* counters folded out of handles destroyed by {!unregister} *)
  }

  and handle = {
    owner : t;
    pid : int;
    mutable lsrc : node Limbo.Ts.source;
    mutable limbo : node Limbo.Ts.Triple.t;
        (* one limbo list per epoch, as in QSBR; replaced wholesale (with
           a fresh block source) when the lists are donated (unregister)
           or seized (eviction) *)
    mutable adopted : node Limbo.Ts.t;
        (* orphaned nodes adopted from the pool. NEVER freed by the
           unconditional grace-period path: Lemma 3 does not apply to
           orphans (we know nothing about when their donor retired them
           relative to our epochs), so this list is reclaimed exclusively
           through the Cadence-style HP + age filter. *)
    seized : bool Atomic.t;
        (* [Stdlib.Atomic], deliberately outside the simulated memory
           model (same reasoning as {!Orphan_pool}): set once by an
           evictor that donated this handle's lists out from under it.
           The owner, on observing it, installs fresh vectors and resets
           it. Checked at points with no runtime effect between check and
           list use, so on the simulator the handoff is race-free. *)
    eviction_on : bool; (* cfg.eviction_timeout <> None, precomputed *)
    scan_set : Hp.scan_set;
    mutable call_count : int;
    mutable fnl_count : int;
    mutable prev_fallback : bool; (* prev_seen_fallback_flag of Algorithm 5 *)
    mutable rejoin_guard : int;
    mutable retires : int;
    mutable frees : int;
    mutable scans : int;
    mutable epoch_advances : int;
    mutable fallback_switches : int;
    mutable fastpath_switches : int;
    mutable evictions : int;
    mutable retired_peak : int;
    mutable scan_now : int;
        (* the scan's single [now_coarse] read, hoisted into the handle so
           the preallocated filter closures capture no per-scan state *)
    vec_filter : node -> int -> bool;
    age_ok : int -> bool;
    keep : node -> bool;
    free_bag : node array -> int array -> int -> int -> unit;
    (* the unconditional (grace-period) epoch-free pair: no clock read, so
       ages are reported as -1 and recovered offline from Ev_retire *)
    uncond_node : node -> int -> unit;
    uncond_bag : node array -> int array -> int -> int -> unit;
  }

  let name = P.scheme_name

  let create ?free_bulk (cfg : Smr_intf.config) ~dummy ~free =
    let free_bulk =
      match free_bulk with
      | Some f -> f
      | None ->
        fun data count ->
          for i = 0 to count - 1 do
            free data.(i)
          done
    in
    let c =
      if cfg.switch_threshold > 0 then cfg.switch_threshold
      else Smr_intf.legal_switch_threshold cfg
    in
    { cfg;
      c_threshold = c;
      scan_threshold_eff = Smr_intf.effective_scan_threshold cfg;
      hp = Hp.create ~n:cfg.n_processes ~k:cfg.hp_per_process ~dummy;
      free;
      free_bulk;
      global = R.atomic_padded 0;
      locals = Array.init cfg.n_processes (fun _ -> R.atomic_padded 0);
      fallback_flag = R.atomic_padded 0;
      presence = Array.init cfg.n_processes (fun _ -> R.atomic_padded 0);
      evicted = Array.init cfg.n_processes (fun _ -> R.atomic_padded 0);
      evicted_count = R.atomic_padded 0;
      fallback_since = R.atomic_padded 0;
      mode_shadow = Smr_intf.Fast;
      fallback_since_shadow = 0;
      fallback_ticks_acc = 0;
      dummy;
      handles = Array.make cfg.n_processes None;
      orphans = Orphan_pool.create ();
      legacy_retires = 0;
      legacy_frees = 0;
      legacy_scans = 0;
      legacy_epoch_advances = 0;
      legacy_fallback_switches = 0;
      legacy_fastpath_switches = 0;
      legacy_evictions = 0;
      legacy_retired_peak = 0 }

  let limbo_source t =
    Limbo.Ts.source ~bags:t.cfg.limbo_bags ~capacity:t.cfg.bag_capacity
      t.dummy

  let register t ~pid =
    let lsrc = limbo_source t in
    let age = t.cfg.rooster_interval + t.cfg.epsilon in
    let rec h =
      { owner = t;
        pid;
        lsrc;
        limbo = Limbo.Ts.Triple.create lsrc;
        adopted = Limbo.Ts.create lsrc;
        seized = Atomic.make false;
        eviction_on = t.cfg.eviction_timeout <> None;
        scan_set = Hp.scan_set t.hp;
        call_count = 0;
        fnl_count = 0;
        prev_fallback = false;
        rejoin_guard = 0;
        retires = 0;
        frees = 0;
        scans = 0;
        epoch_advances = 0;
        fallback_switches = 0;
        fastpath_switches = 0;
        evictions = 0;
        retired_peak = 0;
        scan_now = 0;
        vec_filter =
          (fun n ts ->
            if
              h.scan_now - ts >= age && not (Hp.protects_set h.scan_set n)
            then begin
              t.free n;
              h.frees <- h.frees + 1;
              (* the exact [now - ts] the age check passed on *)
              R.emit Qs_intf.Runtime_intf.Ev_free (N.id n) (h.scan_now - ts);
              false
            end
            else true);
        age_ok = (fun stamp -> h.scan_now - stamp >= age);
        keep = (fun n -> Hp.protects_set h.scan_set n);
        free_bag =
          (fun data ts count stamp ->
            t.free_bulk data count;
            h.frees <- h.frees + count;
            (* one tracing check per bag instead of one dead emit per node *)
            if R.tracing () then
              for i = 0 to count - 1 do
                R.emit Qs_intf.Runtime_intf.Ev_free (N.id data.(i))
                  (h.scan_now - ts.(i))
              done;
            R.emit Qs_intf.Runtime_intf.Ev_bag_free count
              (h.scan_now - stamp));
        uncond_node =
          (fun n _ts ->
            t.free n;
            h.frees <- h.frees + 1;
            (* no clock read on the unconditional path (reading it would
               charge virtual time and perturb seeded schedules): the age
               is recovered offline from the node's Ev_retire *)
            R.emit Qs_intf.Runtime_intf.Ev_free (N.id n) (-1));
        uncond_bag =
          (fun data _ts count _stamp ->
            t.free_bulk data count;
            h.frees <- h.frees + count;
            if R.tracing () then
              for i = 0 to count - 1 do
                R.emit Qs_intf.Runtime_intf.Ev_free (N.id data.(i)) (-1)
              done;
            R.emit Qs_intf.Runtime_intf.Ev_bag_free count (-1)) }
    in
    t.handles.(pid) <- Some h;
    h

  let total_limbo h = Limbo.Ts.Triple.total h.limbo

  (* Hazard pointers are maintained in BOTH modes, without fences — this is
     what makes the fast path fast and the switch sound (see §4.1). The
     [false] branch is the rejected naive design, kept for demonstration. *)
  let assign_hp h ~slot n =
    if P.always_publish then Hp.assign h.owner.hp ~pid:h.pid ~slot n
    else if R.get h.owner.fallback_flag = 1 then begin
      Hp.assign h.owner.hp ~pid:h.pid ~slot n;
      R.fence ()
    end
  let clear_hps h = Hp.clear h.owner.hp ~pid:h.pid

  (* Cadence-style filtered reclamation of one limbo list: free entries
     that are old enough and unprotected, keep the rest. The caller must
     have refreshed [h.scan_set] and [h.scan_now]. *)
  let scan_limbo h v =
    Limbo.Ts.scan v ~vec_filter:h.vec_filter ~age_ok:h.age_ok ~keep:h.keep
      ~free_bag:h.free_bag

  let scan_epoch h e = scan_limbo h h.limbo.(e)

  (* Adoption: splice one orphaned batch (limbo triple + adopted list of a
     departed or evicted process) into [h.adopted], original retire
     timestamps preserved. Adopted nodes are reclaimed exclusively through
     the HP + age filter — the one safety argument that holds with no
     assumption about the donor's epochs (Lemma 3 does not apply to
     orphans): any hazard that could protect an orphaned node was
     published before its removal and is visible within T + epsilon of
     the preserved retire timestamp. Gated on the meta-level emptiness
     hint so runs without churn perform no extra runtime effects. *)
  let adopt_orphans h =
    let t = h.owner in
    if not (Orphan_pool.is_empty t.orphans) then
      match Orphan_pool.take t.orphans with
      | None -> ()
      | Some e ->
        Array.iter
          (fun v -> Limbo.Ts.splice_into ~src:v ~dst:h.adopted)
          e.Orphan_pool.payload;
        R.emit Qs_intf.Runtime_intf.Ev_adopt e.Orphan_pool.nodes
          e.Orphan_pool.donor

  (* Fast-path reclamation of the adopted list (the fallback path folds it
     into [scan_all] instead). Gated on emptiness: non-churn runs perform
     no extra effects here. *)
  let reclaim_adopted h =
    if Limbo.Ts.length h.adopted > 0 then begin
      let t = h.owner in
      h.scan_now <- R.now_coarse ();
      Hp.snapshot_into t.hp h.scan_set;
      scan_limbo h h.adopted
    end

  (* Algorithm 5 lines 45-47: in fallback mode all three epochs are scanned
     (plus the adopted orphans, under the same filter). *)
  let scan_all h =
    R.hook Qs_intf.Runtime_intf.Hook_scan;
    adopt_orphans h;
    h.scans <- h.scans + 1;
    let before = total_limbo h + Limbo.Ts.length h.adopted in
    R.emit Qs_intf.Runtime_intf.Ev_scan_begin before (-1);
    h.scan_now <- R.now_coarse ();
    Hp.snapshot_into h.owner.hp h.scan_set;
    for e = 0 to 2 do
      scan_epoch h e
    done;
    (* effect-free when empty: the filter walk is plain OCaml *)
    scan_limbo h h.adopted;
    let kept = total_limbo h + Limbo.Ts.length h.adopted in
    R.emit Qs_intf.Runtime_intf.Ev_scan_end (before - kept) kept

  (* Free an adopted epoch's limbo list. Unconditional in the common case
     (grace period passed, Lemma 3); filtered through the HP + age check
     while any process is evicted, or for the first epoch cycle after this
     process rejoined. *)
  let free_adopted_epoch h e =
    let t = h.owner in
    let filtered = R.get t.evicted_count > 0 || h.rejoin_guard > 0 in
    if h.rejoin_guard > 0 then h.rejoin_guard <- h.rejoin_guard - 1;
    if filtered then begin
      h.scan_now <- R.now_coarse ();
      Hp.snapshot_into t.hp h.scan_set;
      scan_epoch h e
    end
    else
      (* unconditional: the grace period (Lemma 3) covers every node in
         the epoch, bags included — no age check, no clock read *)
      Limbo.Ts.drain h.limbo.(e) ~free_node:h.uncond_node
        ~free_bag:h.uncond_bag

  (* Top-level recursion, as in {!Qsbr}: an inner [let rec] closure here
     would allocate on the fast-path quiescence round. *)
  let rec all_current_from t eg n i =
    i >= n
    || ((R.get t.evicted.(i) = 1 || R.get t.locals.(i) = eg)
       && all_current_from t eg n (i + 1))

  let all_current t eg = all_current_from t eg (Array.length t.locals) 0

  let quiescent_state h =
    R.hook Qs_intf.Runtime_intf.Hook_quiesce;
    let t = h.owner in
    let eg = R.get t.global in
    if R.get t.locals.(h.pid) <> eg then begin
      R.set t.locals.(h.pid) eg;
      R.emit Qs_intf.Runtime_intf.Ev_quiesce eg 1;
      free_adopted_epoch h eg;
      adopt_orphans h;
      reclaim_adopted h
    end
    else begin
      R.emit Qs_intf.Runtime_intf.Ev_quiesce eg 0;
      if all_current t eg then
        if R.cas t.global eg ((eg + 1) mod 3) then begin
          h.epoch_advances <- h.epoch_advances + 1;
          R.emit Qs_intf.Runtime_intf.Ev_epoch_advance ((eg + 1) mod 3) (-1)
        end
    end

  let rec all_active_from t n i =
    i >= n
    || ((R.get t.evicted.(i) = 1 || R.get t.presence.(i) = 1)
       && all_active_from t n (i + 1))

  let all_active t = all_active_from t (Array.length t.presence) 0

  let reset_presence t =
    Array.iter (fun p -> R.set p 0) t.presence

  (* Both mode switches CAS the fallback flag so that two processes
     crossing a threshold in the same window cannot double-enter or
     double-exit: exactly one wins each transition, and only the winner
     touches the episode bookkeeping ([fallback_since],
     [fallback_ticks_acc], the switch counters and trace events). Before
     this, concurrent losers re-ran the whole body — double-counted
     episodes, and a lost-update race on the plain [fallback_ticks_acc]
     on the real runtime. *)
  let enter_fallback h =
    let t = h.owner in
    if R.cas t.fallback_flag 0 1 then begin
      t.mode_shadow <- Smr_intf.Fallback;
      let now = R.now () in
      R.set t.fallback_since now;
      t.fallback_since_shadow <- now;
      R.emit Qs_intf.Runtime_intf.Ev_fallback_enter (total_limbo h) (-1);
      reset_presence t;
      R.set t.presence.(h.pid) 1;
      h.fallback_switches <- h.fallback_switches + 1;
      h.prev_fallback <- true;
      scan_all h
    end
    else
      (* lost the race: another process has just entered fallback mode; we
         behave as if we had observed the flag up all along *)
      h.prev_fallback <- true

  let enter_fastpath h =
    let t = h.owner in
    if R.cas t.fallback_flag 1 0 then begin
      t.mode_shadow <- Smr_intf.Fast;
      (* [-] evaluates right-to-left, matching the original get-then-now
         effect order *)
      let dwell = max 0 (R.now () - R.get t.fallback_since) in
      (* the episode's dwell is the exiting winner's sole responsibility *)
      t.fallback_ticks_acc <- t.fallback_ticks_acc + dwell;
      R.emit Qs_intf.Runtime_intf.Ev_fallback_exit dwell (-1);
      h.fastpath_switches <- h.fastpath_switches + 1
    end;
    (* winner or loser, the system is on the fast path now *)
    h.prev_fallback <- false;
    quiescent_state h

  (* The evictor seized this handle's lists (donated them to the orphan
     pool out from under a silent owner). The owner installs fresh ones on
     observing the flag. [seized] can only be set again after a full
     rejoin + re-eviction cycle, so resetting it here is race-free. *)
  let renew_seized_lists h =
    let t = h.owner in
    (* fresh block source too: the seized lists keep the old one, and the
       adopter recycles their blocks into its own — never into ours *)
    h.lsrc <- limbo_source t;
    h.limbo <- Limbo.Ts.Triple.create h.lsrc;
    h.adopted <- Limbo.Ts.create h.lsrc;
    Atomic.set h.seized false

  let check_seized h =
    if Atomic.get h.seized then renew_seized_lists h

  let maybe_evict h =
    let t = h.owner in
    match t.cfg.eviction_timeout with
    | None -> ()
    | Some dt ->
      if R.now () - R.get t.fallback_since > dt then
        Array.iteri
          (fun pid' p ->
            if pid' <> h.pid && R.get p = 0 && R.cas t.evicted.(pid') 0 1 then begin
              ignore (R.fetch_and_add t.evicted_count 1);
              h.evictions <- h.evictions + 1;
              R.emit Qs_intf.Runtime_intf.Ev_evict pid' (-1);
              (* Route the victim's limbo lists through the orphan pool so
                 a crashed process no longer leaks them (before this layer
                 they sat in the dead handle until teardown). The list
                 references are captured BEFORE the seize flag is raised:
                 a victim that is merely slow — not dead — installs fresh
                 vectors when it observes the flag, so donating the
                 captured ones cannot race with its later retires.
                 Adopters reclaim them under the HP + age filter, which
                 honours the hazards of an evicted-but-alive victim. *)
              match t.handles.(pid') with
              | None -> () (* slot already unregistered: donated by owner *)
              | Some hv ->
                let limbo = hv.limbo and adopted = hv.adopted in
                if Atomic.compare_and_set hv.seized false true then begin
                  let nodes =
                    Limbo.Ts.Triple.total limbo + Limbo.Ts.length adopted
                  in
                  Orphan_pool.donate t.orphans ~donor:pid' ~nodes
                    [| limbo.(0); limbo.(1); limbo.(2); adopted |]
                end
            end)
          t.presence

  (* An evicted process that comes back must rejoin before relying on epoch
     reclamation again: its own hazard pointers protected it while away;
     the rejoin guard keeps its next epoch cycle conservative. If its lists
     were seized meanwhile, it starts over with fresh ones (the seized
     lists are the adopters' responsibility now) — strictly before
     clearing the evicted flag, which would re-arm eviction. *)
  let rejoin h =
    let t = h.owner in
    R.fence ();
    check_seized h;
    if R.cas t.evicted.(h.pid) 1 0 then ignore (R.fetch_and_add t.evicted_count (-1));
    h.rejoin_guard <- 3;
    R.set t.locals.(h.pid) (R.get t.global)

  (* Algorithm 5, manage_qsense_state. *)
  let manage_state h =
    h.call_count <- h.call_count + 1;
    if h.call_count mod h.owner.cfg.quiescence_threshold = 0 then begin
      let t = h.owner in
      if R.get t.evicted.(h.pid) = 1 then rejoin h;
      R.set t.presence.(h.pid) 1;
      let fallback = R.get t.fallback_flag = 1 in
      if not fallback then begin
        quiescent_state h;
        h.prev_fallback <- false
      end
      else begin
        maybe_evict h;
        if all_active t then enter_fastpath h else h.prev_fallback <- true
      end
    end

  (* Algorithm 5, free_node_later. Allocation-free: a coarse-clock read and
     two array stores in steady state. *)
  let retire h n =
    R.hook Qs_intf.Runtime_intf.Hook_retire;
    let t = h.owner in
    let e = R.get t.locals.(h.pid) in
    let ts = R.now_coarse () in
    (* seize check immediately before the push, with no runtime effect in
       between: on the simulator the check + push pair is atomic w.r.t.
       other processes, so a node can never land in a vector that has
       already been donated and adopted *)
    if h.eviction_on then check_seized h;
    let sealed = Limbo.Ts.push h.limbo.(e) n ts in
    h.retires <- h.retires + 1;
    let total = total_limbo h in
    if total > h.retired_peak then h.retired_peak <- total;
    R.emit Qs_intf.Runtime_intf.Ev_retire (N.id n) total;
    if sealed > 0 then R.emit Qs_intf.Runtime_intf.Ev_bag_seal sealed (-1);
    let fallback = R.get t.fallback_flag = 1 in
    if fallback then begin
      h.fnl_count <- h.fnl_count + 1;
      if h.fnl_count mod t.scan_threshold_eff = 0 then scan_all h;
      h.prev_fallback <- true
    end
    else if h.prev_fallback then begin
      (* the switch back to the fast path was triggered by another process *)
      quiescent_state h;
      h.prev_fallback <- false
    end
    else if total >= t.c_threshold then enter_fallback h

  (* Dynamic membership: clear the slot's hazard pointers (fenced — cold
     path), mark the slot absent by reusing the eviction machinery
     (all_current / all_active already skip evicted slots, and
     [evicted_count > 0] keeps every survivor's epoch freeing filtered
     through the HP + age check while the slot is vacant — the documented
     cost of an open seat), donate the limbo lists + adopted orphans to
     the pool and release the pid. A later {!register} on the slot rejoins
     through the ordinary [rejoin] path at its first quiescence boundary. *)
  let unregister h =
    let t = h.owner in
    Hp.clear t.hp ~pid:h.pid;
    R.fence ();
    check_seized h;
    if R.cas t.evicted.(h.pid) 0 1 then
      ignore (R.fetch_and_add t.evicted_count 1);
    let donated = total_limbo h + Limbo.Ts.length h.adopted in
    let old_limbo = h.limbo and old_adopted = h.adopted in
    h.lsrc <- limbo_source t;
    h.limbo <- Limbo.Ts.Triple.create h.lsrc;
    h.adopted <- Limbo.Ts.create h.lsrc;
    Orphan_pool.donate t.orphans ~donor:h.pid ~nodes:donated
      [| old_limbo.(0); old_limbo.(1); old_limbo.(2); old_adopted |];
    t.legacy_retires <- t.legacy_retires + h.retires;
    t.legacy_frees <- t.legacy_frees + h.frees;
    t.legacy_scans <- t.legacy_scans + h.scans;
    t.legacy_epoch_advances <- t.legacy_epoch_advances + h.epoch_advances;
    t.legacy_fallback_switches <-
      t.legacy_fallback_switches + h.fallback_switches;
    t.legacy_fastpath_switches <-
      t.legacy_fastpath_switches + h.fastpath_switches;
    t.legacy_evictions <- t.legacy_evictions + h.evictions;
    t.legacy_retired_peak <- t.legacy_retired_peak + h.retired_peak;
    h.retires <- 0;
    h.frees <- 0;
    h.scans <- 0;
    h.epoch_advances <- 0;
    h.fallback_switches <- 0;
    h.fastpath_switches <- 0;
    h.evictions <- 0;
    h.retired_peak <- 0;
    t.handles.(h.pid) <- None;
    R.emit Qs_intf.Runtime_intf.Ev_unregister h.pid donated

  let flush h =
    (* a seized handle's old lists belong to the pool now — freeing them
       here too would double-free; start from the fresh ones *)
    check_seized h;
    let t = h.owner in
    let flush_node n _ts =
      t.free n;
      h.frees <- h.frees + 1
    in
    let flush_bag data _ts count _stamp =
      t.free_bulk data count;
      h.frees <- h.frees + count
    in
    for e = 0 to 2 do
      Limbo.Ts.drain h.limbo.(e) ~free_node:flush_node ~free_bag:flush_bag
    done;
    Limbo.Ts.drain h.adopted ~free_node:flush_node ~free_bag:flush_bag;
    List.iter
      (fun (e : _ Orphan_pool.entry) ->
        Array.iter
          (fun v ->
            Limbo.Ts.drain v
              ~free_node:(fun n _ts ->
                t.free n;
                t.legacy_frees <- t.legacy_frees + 1)
              ~free_bag:(fun data _ts count _stamp ->
                t.free_bulk data count;
                t.legacy_frees <- t.legacy_frees + count))
          e.Orphan_pool.payload)
      (Orphan_pool.drain t.orphans)

  let fold t f =
    Array.fold_left
      (fun acc -> function None -> acc | Some h -> acc + f h)
      0 t.handles

  let retired_count t =
    fold t (fun h -> total_limbo h + Limbo.Ts.length h.adopted)
    + Orphan_pool.node_count t.orphans

  let stats t =
    { Smr_intf.retires = fold t (fun h -> h.retires) + t.legacy_retires;
      frees = fold t (fun h -> h.frees) + t.legacy_frees;
      scans = fold t (fun h -> h.scans) + t.legacy_scans;
      epoch_advances =
        fold t (fun h -> h.epoch_advances) + t.legacy_epoch_advances;
      fallback_switches =
        fold t (fun h -> h.fallback_switches) + t.legacy_fallback_switches;
      fastpath_switches =
        fold t (fun h -> h.fastpath_switches) + t.legacy_fastpath_switches;
      fallback_entries =
        fold t (fun h -> h.fallback_switches) + t.legacy_fallback_switches;
      fallback_exits =
        fold t (fun h -> h.fastpath_switches) + t.legacy_fastpath_switches;
      fallback_ticks = t.fallback_ticks_acc;
      fallback_since =
        (match t.mode_shadow with
        | Smr_intf.Fallback -> Some t.fallback_since_shadow
        | Smr_intf.Fast -> None);
      evictions = fold t (fun h -> h.evictions) + t.legacy_evictions;
      neutralizations = 0;
      retired_now = retired_count t;
      retired_peak =
        fold t (fun h -> h.retired_peak) + t.legacy_retired_peak;
      scan_threshold_eff = t.scan_threshold_eff;
      mode = t.mode_shadow }
end

module Make = Make_gen (struct
  let scheme_name = "qsense"
  let always_publish = true
end)
