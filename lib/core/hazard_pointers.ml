(* Michael's classic hazard pointers (§3.2 of the paper).

   [assign_hp] publishes the pointer and then issues a full memory barrier,
   so that the subsequent re-validation load cannot be reordered before the
   publication store (the TSO hazard of Algorithm 2). This per-traversed-node
   fence is exactly the overhead the paper measures at ~80% and that Cadence
   eliminates.

   [Make_gen] also admits an unfenced variant ({!Unsafe_hp}) used by the
   tests to demonstrate that the fence is load-bearing: under the simulator's
   TSO model the unfenced variant reclaims nodes that are still hazardously
   referenced.

   Hot-path discipline: the removed list is a batched bag deque by default
   ({!Qs_util.Bag} via the {!Qs_util.Limbo} switch; allocation-free
   [retire], drops freed one whole bag per arena call, survivors compacted
   into fresh bags; the vec reference behind [config.limbo_bags = false]);
   a scan snapshots the N×K hazard slots into a reusable id
   hash set (expected-O(1) membership, zero allocation) and compacts the
   removed list in place. The scan threshold adapts to the deployment:
   effective R = max(cfg.scan_threshold, ceil(scan_factor * N * K)),
   computed once at creation — a scan costs O(N·K + limbo) and keeps at
   most N·K protected nodes, so every scan frees at least
   (scan_factor - 1)·N·K nodes and scan work is amortised O(1) per retire
   however many processes or hazard pointers the system runs. *)

module Limbo = Qs_util.Limbo

module type PARAMS = sig
  val scheme_name : string
  val fenced : bool
end

module Make_gen
    (P : PARAMS)
    (R : Qs_intf.Runtime_intf.RUNTIME)
    (N : Smr_intf.NODE) =
struct
  type node = N.t

  module Hp = Hp_array.Make (R) (N)

  type t = {
    cfg : Smr_intf.config;
    scan_threshold_eff : int; (* adaptive: max(R, ceil(scan_factor * N * K)) *)
    hp : Hp.t;
    free : node -> unit;
    free_bulk : node array -> int -> unit;
    dummy : node;
    handles : handle option array;
    orphans : node Limbo.t Orphan_pool.t;
    mutable legacy_retires : int;
    mutable legacy_frees : int;
    mutable legacy_scans : int;
    mutable legacy_retired_peak : int;
        (* counters folded out of handles destroyed by {!unregister} *)
  }

  and handle = {
    owner : t;
    pid : int;
    mutable lsrc : node Limbo.source;
    mutable rlist : node Limbo.t;
    scan_set : Hp.scan_set;
    mutable retires : int;
    mutable frees : int;
    mutable scans : int;
    mutable retired_peak : int;
    (* preallocated scan/flush callbacks: the per-scan closure state is
       hoisted into the handle so a scan builds nothing on the heap *)
    vec_filter : node -> bool;
    keep : node -> bool;
    free_bag : node array -> int -> unit;
    flush_bag : node array -> int -> unit;
  }

  let name = P.scheme_name

  let create ?free_bulk (cfg : Smr_intf.config) ~dummy ~free =
    let free_bulk =
      match free_bulk with
      | Some f -> f
      | None ->
        fun data count ->
          for i = 0 to count - 1 do
            free data.(i)
          done
    in
    { cfg;
      scan_threshold_eff = Smr_intf.effective_scan_threshold cfg;
      hp = Hp.create ~n:cfg.n_processes ~k:cfg.hp_per_process ~dummy;
      free;
      free_bulk;
      dummy;
      handles = Array.make cfg.n_processes None;
      orphans = Orphan_pool.create ();
      legacy_retires = 0;
      legacy_frees = 0;
      legacy_scans = 0;
      legacy_retired_peak = 0 }

  let limbo_source t =
    Limbo.source ~bags:t.cfg.limbo_bags ~capacity:t.cfg.bag_capacity t.dummy

  let register t ~pid =
    let lsrc = limbo_source t in
    let rec h =
      { owner = t;
        pid;
        lsrc;
        rlist = Limbo.create lsrc;
        scan_set = Hp.scan_set t.hp;
        retires = 0;
        frees = 0;
        scans = 0;
        retired_peak = 0;
        vec_filter =
          (fun n ->
            if Hp.protects_set h.scan_set n then true
            else begin
              t.free n;
              h.frees <- h.frees + 1;
              (* classic HP has no timestamps: age recovered offline by
                 joining against the node's Ev_retire *)
              R.emit Qs_intf.Runtime_intf.Ev_free (N.id n) (-1);
              false
            end);
        keep = (fun n -> Hp.protects_set h.scan_set n);
        free_bag =
          (fun data count ->
            t.free_bulk data count;
            h.frees <- h.frees + count;
            (* one tracing check per bag instead of one dead emit per node *)
            if R.tracing () then
              for i = 0 to count - 1 do
                R.emit Qs_intf.Runtime_intf.Ev_free (N.id data.(i)) (-1)
              done;
            R.emit Qs_intf.Runtime_intf.Ev_bag_free count (-1));
        flush_bag =
          (fun data count ->
            t.free_bulk data count;
            h.frees <- h.frees + count) }
    in
    t.handles.(pid) <- Some h;
    h

  let manage_state _ = ()

  let assign_hp h ~slot n =
    Hp.assign h.owner.hp ~pid:h.pid ~slot n;
    if P.fenced then R.fence ()

  let clear_hps h = Hp.clear h.owner.hp ~pid:h.pid

  (* Adoption: splice one orphaned removed-list into our own just before
     a scan. The scan's hazard-pointer filter is the full safety argument
     here — any process protecting an orphaned node published its hazard
     (with its fence) before the node was removed, so the snapshot taken
     below observes it; no grace period is involved. Gated on the
     meta-level emptiness hint so runs without churn perform no extra
     runtime effects. *)
  let adopt_orphans h =
    let t = h.owner in
    if not (Orphan_pool.is_empty t.orphans) then
      match Orphan_pool.take t.orphans with
      | None -> ()
      | Some e ->
        Limbo.splice_into ~src:e.Orphan_pool.payload ~dst:h.rlist;
        R.emit Qs_intf.Runtime_intf.Ev_adopt e.Orphan_pool.nodes
          e.Orphan_pool.donor

  (* Free every retired node not currently protected by any process's hazard
     pointers; keep the rest for a later scan. *)
  let scan h =
    R.hook Qs_intf.Runtime_intf.Hook_scan;
    adopt_orphans h;
    let t = h.owner in
    h.scans <- h.scans + 1;
    let before = Limbo.length h.rlist in
    R.emit Qs_intf.Runtime_intf.Ev_scan_begin before (-1);
    Hp.snapshot_into t.hp h.scan_set;
    Limbo.scan h.rlist ~vec_filter:h.vec_filter ~keep:h.keep
      ~free_bag:h.free_bag;
    let kept = Limbo.length h.rlist in
    R.emit Qs_intf.Runtime_intf.Ev_scan_end (before - kept) kept

  let retire h n =
    R.hook Qs_intf.Runtime_intf.Hook_retire;
    let sealed = Limbo.push h.rlist n in
    h.retires <- h.retires + 1;
    let rcount = Limbo.length h.rlist in
    if rcount > h.retired_peak then h.retired_peak <- rcount;
    R.emit Qs_intf.Runtime_intf.Ev_retire (N.id n) rcount;
    if sealed > 0 then R.emit Qs_intf.Runtime_intf.Ev_bag_seal sealed (-1);
    if rcount >= h.owner.scan_threshold_eff then scan h

  (* Dynamic membership: clear the slot's hazard pointers (with a fence so
     the cleared slots are globally visible before any survivor scans),
     donate the removed list and release the pid. *)
  let unregister h =
    let t = h.owner in
    Hp.clear t.hp ~pid:h.pid;
    if P.fenced then R.fence ();
    let donated = Limbo.length h.rlist in
    let old = h.rlist in
    h.lsrc <- limbo_source t;
    h.rlist <- Limbo.create h.lsrc;
    Orphan_pool.donate t.orphans ~donor:h.pid ~nodes:donated old;
    t.legacy_retires <- t.legacy_retires + h.retires;
    t.legacy_frees <- t.legacy_frees + h.frees;
    t.legacy_scans <- t.legacy_scans + h.scans;
    t.legacy_retired_peak <- t.legacy_retired_peak + h.retired_peak;
    h.retires <- 0;
    h.frees <- 0;
    h.scans <- 0;
    h.retired_peak <- 0;
    t.handles.(h.pid) <- None;
    R.emit Qs_intf.Runtime_intf.Ev_unregister h.pid donated

  let flush h =
    let t = h.owner in
    Limbo.drain h.rlist
      ~free_node:(fun n ->
        t.free n;
        h.frees <- h.frees + 1)
      ~free_bag:h.flush_bag;
    List.iter
      (fun (e : _ Orphan_pool.entry) ->
        Limbo.drain e.Orphan_pool.payload
          ~free_node:(fun n ->
            t.free n;
            t.legacy_frees <- t.legacy_frees + 1)
          ~free_bag:(fun data count ->
            t.free_bulk data count;
            t.legacy_frees <- t.legacy_frees + count))
      (Orphan_pool.drain t.orphans)

  let fold t f =
    Array.fold_left
      (fun acc -> function None -> acc | Some h -> acc + f h)
      0 t.handles

  let retired_count t =
    fold t (fun h -> Limbo.length h.rlist)
    + Orphan_pool.node_count t.orphans

  let stats t =
    { Smr_intf.zero_stats with
      retires = fold t (fun h -> h.retires) + t.legacy_retires;
      frees = fold t (fun h -> h.frees) + t.legacy_frees;
      scans = fold t (fun h -> h.scans) + t.legacy_scans;
      retired_now = retired_count t;
      retired_peak =
        fold t (fun h -> h.retired_peak) + t.legacy_retired_peak;
      scan_threshold_eff = t.scan_threshold_eff }
end

module Make = Make_gen (struct
  let scheme_name = "hp"
  let fenced = true
end)
