(* The shared hazard-pointer array: N processes × K single-writer
   multi-reader slots, used by classic HP, Cadence and QSense. Slots are TSO
   *plain* cells — publishing is a cheap store whose visibility is bounded
   only by fences (classic HP) or rooster context switches (Cadence/QSense).
   Unused slots hold the data structure's dummy node rather than an option,
   keeping the traversal path allocation-free. Each process's row of slots
   is padded against false sharing: rows are written by different processes
   on every traversal step.

   Scans use a reusable {e scan set}: the N×K slots are snapshotted into a
   per-handle open-addressing hash set of node ids ({!Smr_intf.NODE.id},
   {!Qs_util.Int_set}), giving expected-O(1) membership per retired node
   and zero allocation per scan — Michael's original hash-set scan, which
   together with the adaptive scan threshold makes scan work amortised O(1)
   per retire. Two reference implementations survive for the differential
   property tests: the seed's list-based [snapshot]/[protects]
   ([List.memq], O(N·K) per node, one cons per non-dummy slot) and PR 1's
   sorted-id array ([snapshot_into_sorted]/[protects_sorted], O(log N·K)
   per node). *)

module Make (R : Qs_intf.Runtime_intf.RUNTIME) (N : Smr_intf.NODE) = struct
  type t = { slots : N.t R.plain array array; dummy : N.t; k : int }

  let create ~n ~k ~dummy =
    { slots = Array.init n (fun _ -> Array.init k (fun _ -> R.plain_padded dummy));
      dummy;
      k }

  let assign t ~pid ~slot n = R.write t.slots.(pid).(slot) n

  let clear t ~pid =
    let row = t.slots.(pid) in
    for i = 0 to t.k - 1 do
      R.write row.(i) t.dummy
    done

  (* --- reference implementation (tests only) ----------------------------- *)

  (* Read every slot of every process; the result is the set of nodes that
     must not be reclaimed. Reads are racy by design: a hazard pointer whose
     store is still sitting in its writer's store buffer is missed — that is
     the hole deferred reclamation closes. *)
  let snapshot t =
    let acc = ref [] in
    Array.iter
      (fun row ->
        Array.iter
          (fun slot ->
            let n = R.read slot in
            if n != t.dummy then acc := n :: !acc)
          row)
      t.slots;
    !acc

  let protects snapshot n = List.memq n snapshot

  (* --- reference implementation 2: reusable sorted-id snapshot ------------ *)

  type sorted_set = { mutable ids : int array; mutable len : int }

  let sorted_set t =
    { ids = Array.make (max 1 (Array.length t.slots * t.k)) 0; len = 0 }

  (* Insertion sort: the snapshot has at most N·K entries (tens), is nearly
     free to sort, and needs no closure or comparator allocation. *)
  let sort_ids ids len =
    for i = 1 to len - 1 do
      let x = ids.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && ids.(!j) > x do
        ids.(!j + 1) <- ids.(!j);
        decr j
      done;
      ids.(!j + 1) <- x
    done

  (* Snapshot all N×K slots into [s] (same raciness as {!snapshot}): ids of
     the non-dummy slots, sorted. No allocation in steady state; the id
     array grows only if the set outlives a resize of the HP array (it
     cannot today — both are sized at creation). *)
  let snapshot_into_sorted t s =
    let cap = Array.length t.slots * t.k in
    if Array.length s.ids < cap then s.ids <- Array.make cap 0;
    let len = ref 0 in
    let dummy = t.dummy in
    for pid = 0 to Array.length t.slots - 1 do
      let row = t.slots.(pid) in
      for i = 0 to t.k - 1 do
        let n = R.read row.(i) in
        if n != dummy then begin
          s.ids.(!len) <- N.id n;
          incr len
        end
      done
    done;
    s.len <- !len;
    sort_ids s.ids s.len

  let mem_id s id =
    let lo = ref 0 and hi = ref (s.len - 1) in
    let found = ref false in
    while (not !found) && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let v = s.ids.(mid) in
      if v = id then found := true
      else if v < id then lo := mid + 1
      else hi := mid - 1
    done;
    !found

  (* O(log N·K) membership by stable node identity. Conservative under id
     collisions (keeps the node), never frees a protected node. *)
  let protects_sorted s n = mem_id s (N.id n)

  (* --- the scan set: reusable id hash set (production path) --------------- *)

  type scan_set = Qs_util.Int_set.t

  (* Preallocated for the full N·K population: at steady state a snapshot
     never triggers a rehash, so the scan path performs zero allocation. *)
  let scan_set t = Qs_util.Int_set.create ~capacity:(Array.length t.slots * t.k) ()

  (* Snapshot all N×K slots into the hash set (same raciness as
     {!snapshot}). [Int_set.reset] is an O(1) generation bump, so the whole
     snapshot is O(N·K) with no allocation. *)
  let snapshot_into t s =
    Qs_util.Int_set.reset s;
    let dummy = t.dummy in
    for pid = 0 to Array.length t.slots - 1 do
      let row = t.slots.(pid) in
      for i = 0 to t.k - 1 do
        let n = R.read row.(i) in
        if n != dummy then Qs_util.Int_set.add s (N.id n)
      done
    done

  (* Expected-O(1) membership by stable node identity. Conservative under
     id collisions (keeps the node), never frees a protected node. *)
  let protects_set s n = Qs_util.Int_set.mem s (N.id n)
end
