(* The shared orphan pool behind dynamic membership (DEBRA+'s "neutralise
   and hand off" idea, Hyaline's transparent join/leave, adapted to this
   repository's per-process limbo lists).

   When a process unregisters — or is evicted by QSense's §5.2 extension —
   its limbo lists can no longer be reclaimed by their owner: QSBR-style
   freeing is driven by the owner's own quiescent states, and before this
   layer existed the lists simply leaked until teardown. Instead, the
   departing (or evicting) process pushes the whole limbo-list batch onto a
   per-scheme orphan pool; survivors pop batches opportunistically and
   reclaim the nodes under their own scheme's filter (grace period for the
   epoch schemes, hazard-pointer [+ age] scan for the others).

   The pool is a Treiber-style CAS list over [Stdlib.Atomic], NOT over the
   simulated runtime's atomics, which is a deliberate choice with three
   consequences:

   - {b meta-safety}: [stats] / [retired_count] / teardown [flush] run
     outside process context on the simulator, where performing runtime
     effects is illegal. A [Stdlib.Atomic] is readable from any context.
   - {b schedule neutrality}: pool operations cost no virtual time and are
     not preemption points, so runs that never exercise churn execute
     bit-identically to the pre-membership scheduler schedules (the same
     argument as [RUNTIME.emit]). The interesting interleavings — between
     adoption and the hazard-pointer filter — still happen, at the
     surrounding simulated-memory effects.
   - {b real-runtime correctness}: [Stdlib.Atomic] is sequentially
     consistent, so the donate/take pair is a release/acquire edge: the
     donor's plain writes into the limbo vectors happen-before the
     adopter's reads.

   Every entry counts its nodes so [retired_count] can include orphaned
   nodes without walking payloads (an orphaned node is still
   removed-but-unfreed). *)

type 'a entry = { donor : int; nodes : int; payload : 'a }

type 'a t = {
  pool : 'a entry list Atomic.t;
  node_count : int Atomic.t;  (* total nodes across pooled entries *)
}

let create () = { pool = Atomic.make []; node_count = Atomic.make 0 }

(* Cheap emptiness hint, safe from any context. Used to gate adoption so
   that the no-orphan fast path stays free of even meta-level CAS work. *)
let is_empty t = Atomic.get t.pool == []

let node_count t = Atomic.get t.node_count

let donate t ~donor ~nodes payload =
  if nodes > 0 then begin
    let e = { donor; nodes; payload } in
    let rec push () =
      let cur = Atomic.get t.pool in
      if not (Atomic.compare_and_set t.pool cur (e :: cur)) then push ()
    in
    push ();
    ignore (Atomic.fetch_and_add t.node_count nodes)
  end

let take t =
  let rec pop () =
    match Atomic.get t.pool with
    | [] -> None
    | (e :: rest) as cur ->
      if Atomic.compare_and_set t.pool cur rest then begin
        ignore (Atomic.fetch_and_add t.node_count (-e.nodes));
        Some e
      end
      else pop ()
  in
  pop ()

(* Teardown only: empty the pool in one exchange. Callers free the
   payloads without safety checks, exactly like the schemes' [flush]. *)
let drain t =
  let es = Atomic.exchange t.pool [] in
  List.iter (fun e -> ignore (Atomic.fetch_and_add t.node_count (-e.nodes))) es;
  es
