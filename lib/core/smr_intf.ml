(** The common interface of all safe-memory-reclamation (SMR) schemes.

    Every scheme — Leaky (the paper's "None"), classic hazard pointers,
    QSBR, Cadence and QSense — implements {!module-type:S}, functorised over
    the {!Qs_intf.Runtime_intf.RUNTIME} it executes on and the node type it
    protects. Data structures interact with reclamation exclusively through
    the paper's three-function interface plus registration:

    - {!S.manage_state} — the paper's [manage_qsense_state] (rule 1): call
      in states where no shared references are held, i.e. between
      operations. Amortised internally over the quiescence threshold [Q].
    - {!S.assign_hp} — the paper's [assign_HP] (rule 2): publish a hazard
      pointer before using a reference.
    - {!S.retire} — the paper's [free_node_later] (rule 3): call where a
      sequential program would call [free]. *)

module type NODE = sig
  type t

  val id : t -> int
  (** A stable identity for the node, constant for the node's whole
      lifetime (across arena reuse too — it identifies the {e object}, not
      the allocation). Used by the hazard-pointer membership set
      ({!Hp_array}) in place of physical-equality list scans: a snapshot
      becomes a sorted [int] array with O(log N·K) membership and zero
      per-scan allocation. Collisions are {e safe} — a node sharing an id
      with a protected node is merely kept one scan longer — but hurt
      reclamation latency, so ids should be unique in practice (the data
      structures stamp each node from a per-structure counter at creation).
      Physical equality on OCaml objects cannot be hashed or ordered
      directly (the GC moves objects), hence this explicit identity. *)
end

type config = {
  n_processes : int;  (** N — worker processes *)
  hp_per_process : int;  (** K — hazard pointers per process *)
  quiescence_threshold : int;
      (** Q — operations batched per declared quiescent state (§3.1) *)
  scan_threshold : int;
      (** R — retires between hazard-pointer scans. Scans cannot be
          disabled through this knob: the effective threshold is clamped to
          [>= 1] ({!effective_scan_threshold}), so [scan_threshold <= 0]
          simply means "scan on every retire". (Earlier docs claimed
          [<= 0] disables scanning — it never did; before the clamp it
          crashed the schemes that schedule scans with [mod].) *)
  scan_factor : float;
      (** Adaptive scan scheduling: the {e effective} scan threshold of the
          hazard-pointer schemes is
          [max scan_threshold (ceil (scan_factor * N * K))], computed once
          at registration ({!effective_scan_threshold}). A scan touches all
          N·K slots and at most N·K retired nodes survive it (only
          protected nodes are kept), so with [scan_factor > 1] every scan
          frees at least [(scan_factor - 1) * N * K] nodes for O(N·K +
          limbo) work — amortised O(1) per retire regardless of
          process/HP count. [<= 0] disables the adaptation and uses
          [scan_threshold] (clamped to [>= 1]) verbatim — the tests
          pinning exact scan timing do this. Does not apply to the
          deferred schemes' age check, only to when scans fire. *)
  rooster_interval : int;
      (** T — rooster sleep interval, in [RUNTIME.now] units. The runtime
          must actually run roosters at this interval (simulator config /
          {!Qs_real.Roosters}) for Cadence/QSense safety. *)
  epsilon : int;
      (** ε — bound on rooster oversleep plus cross-core clock skew (§5.1) *)
  switch_threshold : int;
      (** C — limbo-list size that triggers the fallback switch (§5.2).
          [<= 0] selects the smallest legal value of Property 4. *)
  removes_per_op_max : int;
      (** m — most nodes one operation can remove (1 for the linked list,
          2 for the external BST: leaf + internal router). *)
  eviction_timeout : int option;
      (** Extension (the paper's §5.2 future work): while in fallback mode,
          a process that has not signalled presence for this long is
          evicted, letting the system return to the fast path even if the
          process never recovers. [None] disables eviction (the paper's
          published behaviour: a crashed process pins QSense in fallback
          mode forever). *)
  limbo_bags : bool;
      (** Limbo-list representation: [true] (default) uses DEBRA-style
          batched bags ({!Qs_util.Bag}) — stamp once per sealed bag,
          oldest-bag-first walks, bulk frees; [false] keeps the
          element-wise {!Qs_util.Vec} reference, used by the bag-vs-vec
          differential tests and as an escape hatch. *)
  bag_capacity : int;
      (** Nodes per limbo bag (clamped [>= 1]); only read when
          [limbo_bags] is on. Larger bags amortise the stamp check and the
          arena free over more nodes but delay reclamation of a bag's
          oldest node by up to one bag-fill. *)
}

let default_config ~n_processes ~hp_per_process =
  { n_processes;
    hp_per_process;
    quiescence_threshold = 64;
    scan_threshold = 64;
    scan_factor = 2.0;
    rooster_interval = 5_000;
    epsilon = 500;
    switch_threshold = 0;
    removes_per_op_max = 1;
    eviction_timeout = None;
    limbo_bags = true;
    bag_capacity = 64 }

(** The effective scan threshold under adaptive scan scheduling:
    [max scan_threshold (ceil (scan_factor * N * K))], or [scan_threshold]
    when [scan_factor <= 0] — in both cases clamped to [>= 1]: the
    schemes that schedule scans with [count mod threshold] would raise
    [Division_by_zero] on a degenerate config ([scan_threshold <= 0] with
    [scan_factor <= 0]), and a threshold of 1 ("scan on every retire") is
    the closest legal reading of such a config. Computed once per scheme
    instance and surfaced in {!stats.scan_threshold_eff}. *)
let effective_scan_threshold cfg =
  let raw =
    if cfg.scan_factor <= 0. then cfg.scan_threshold
    else
      max cfg.scan_threshold
        (int_of_float
           (Float.ceil
              (cfg.scan_factor
              *. float_of_int (cfg.n_processes * cfg.hp_per_process))))
  in
  max 1 raw

(** The smallest legal fallback-switch threshold per Property 4:
    [C > max (m*Q) (N*K + T) ((K + T + R) / 2)]. *)
let legal_switch_threshold cfg =
  let m = cfg.removes_per_op_max
  and q = cfg.quiescence_threshold
  and n = cfg.n_processes
  and k = cfg.hp_per_process
  and t = cfg.rooster_interval
  and r = cfg.scan_threshold in
  1 + max (m * q) (max ((n * k) + t) ((k + t + r) / 2))

type mode = Fast | Fallback

type stats = {
  retires : int;
  frees : int;
  scans : int;  (** hazard-pointer scans performed *)
  epoch_advances : int;  (** global-epoch increments (QSBR / QSense) *)
  fallback_switches : int;
  fastpath_switches : int;
  fallback_entries : int;
      (** Completed fast-path → fallback transitions (equals
          [fallback_switches] for the hybrid schemes; 0 elsewhere). Exposed
          separately so robustness tests assert mode round-trips directly
          instead of inferring them from reclamation counts. *)
  fallback_exits : int;
      (** Completed fallback → fast-path transitions (presence flags
          refilled, or eviction). *)
  fallback_ticks : int;
      (** Total [RUNTIME.now] time spent in fallback mode over completed
          fallback episodes; an ongoing episode counts only once it exits.
          Simulator: virtual ticks. Real runtime: nanoseconds. *)
  fallback_since : int option;
      (** [Some t]: the scheme is in fallback mode now and entered it at
          [RUNTIME.now]-time [t] — a live dashboard renders the current
          dwell as [now - t] instead of waiting for the episode to
          complete ([fallback_ticks] keeps its exit-only semantics).
          [None]: on the fast path (or the scheme has no fallback). *)
  evictions : int;
  neutralizations : int;
      (** DEBRA+-style neutralizations performed by this scheme: delayed
          processes whose epoch was forcibly unpinned after a restart
          signal was posted to them. 0 for every other scheme. Monotone
          across churn: counts performed by since-departed handles are
          folded into the instance at {!S.unregister}. *)
  retired_now : int;  (** removed-but-unfreed nodes at this instant *)
  retired_peak : int;
  scan_threshold_eff : int;
      (** The effective scan threshold chosen at creation under adaptive
          scan scheduling ({!effective_scan_threshold}); 0 for schemes
          that never scan hazard pointers. *)
  mode : mode;
}

let zero_stats =
  { retires = 0;
    frees = 0;
    scans = 0;
    epoch_advances = 0;
    fallback_switches = 0;
    fastpath_switches = 0;
    fallback_entries = 0;
    fallback_exits = 0;
    fallback_ticks = 0;
    fallback_since = None;
    evictions = 0;
    neutralizations = 0;
    retired_now = 0;
    retired_peak = 0;
    scan_threshold_eff = 0;
    mode = Fast }

module type S = sig
  type node
  type t
  type handle

  val name : string

  val create :
    ?free_bulk:(node array -> int -> unit) ->
    config ->
    dummy:node ->
    free:(node -> unit) ->
    t
  (** [dummy] fills unused hazard-pointer slots (avoiding [option] boxing on
      the traversal fast path); [free] is the arena's reclamation function,
      invoked exactly once per node handed to {!retire} that the scheme
      decides is safe. [free_bulk data count] frees the first [count]
      elements of [data] in one call — the batched-bag reclamation path
      uses it to return a whole bag to the arena at once (the callee must
      not retain [data]). Defaults to a loop over [free]. *)

  val register : t -> pid:int -> handle
  (** Per-process handle; [pid] must be in [0, n_processes) and not
      currently held by a live handle. A pid slot vacated by {!unregister}
      may be re-registered (worker churn); the fresh handle rejoins the
      scheme's grace-period machinery on its first {!manage_state} call,
      so mid-run re-registration must happen in process context. *)

  val unregister : handle -> unit
  (** Dynamic membership: retire the caller's pid slot. The handle's
      hazard pointers are cleared, its epoch/presence cells are marked
      absent (so grace periods and presence agreement no longer wait on
      it), its limbo lists are donated to the scheme's shared orphan pool,
      and the pid becomes available to a later {!register}. Survivors
      adopt and reclaim the orphaned nodes opportunistically — epoch-based
      schemes on epoch adoption (after a fresh grace period), scanning
      schemes on their next scan, the hybrid always through the
      hazard-pointer + age filter. Must be called by the owning process,
      in process context, between operations (no shared references held);
      the handle is dead afterwards (only {!flush} stays legal, as a
      no-op). *)

  val manage_state : handle -> unit
  val assign_hp : handle -> slot:int -> node -> unit
  val clear_hps : handle -> unit
  (** Reset all of the caller's hazard pointers to the dummy (rule 2's
      "release reference" at the end of an operation). *)

  val retire : handle -> node -> unit

  val flush : handle -> unit
  (** Teardown only: free everything in the caller's local lists without
      safety checks. Call after all workers have stopped. *)

  val retired_count : t -> int
  val stats : t -> stats
end

(** What a scheme functor looks like; {!Qs_ds} applies these to its node
    types via first-class modules. *)
module type MAKER = functor (R : Qs_intf.Runtime_intf.RUNTIME) (N : NODE) ->
  S with type node = N.t
