(* DEBRA+ — epoch-based reclamation with neutralization (Brown, PODC'15;
   the paper's §8 "epoch-based techniques" cites it as [13]), included as a
   rival robust scheme: where QSense closes the robustness gap by switching
   to a hazard-pointer fallback, DEBRA+ closes it by force-restarting the
   laggard.

   The scheme is EBR ({!Ebr}) plus one mechanism: when the global epoch
   cannot advance because some process has been pinned to an old epoch for
   too long (a crash or a long delay inside an operation), an advancing
   process {e neutralizes} the laggard —

   - posts a restart signal ({!Qs_intf.Runtime_intf.RUNTIME.neutralize};
     the simulator delivers it by discontinuing the victim's fiber with
     {!Qs_intf.Runtime_intf.Neutralized} at its next interruptible step,
     modelling DEBRA+'s [pthread_kill]+[sigsetjmp]; the real runtime has no
     asynchronous delivery and relies on the poisoned flag below),
   - then revokes the victim's epoch pin — {e how} depends on the
     runtime's delivery model ([R.neutralize_is_preemptive], see
     [neutralize_laggards]): under preemptive delivery the neutralizer
     force-unpins the slot itself (CAS on the observed value); under
     cooperative delivery the victim unpins itself when it acknowledges
     the demand at its next protection check,
   - and retries the epoch advance.

   Restart safety: the victim's operation is aborted before its next
   shared-memory access to a node its revoked pin protected, so such
   references are never dereferenced after reclamation passes them. Under
   preemptive delivery the discontinuation itself guarantees this; under
   cooperative delivery it holds because the pin is only revoked {e at}
   the victim's own check — the flag read and the unpin are the same
   program point, leaving no check-to-dereference window (the bug a
   neutralizer-side force-unpin would reintroduce: the victim passes its
   check, sleeps, the unpinned epoch cycles and frees, the victim resumes
   into the dereference). The victim's harness catches [Neutralized] and
   restarts the operation from scratch; {!manage_state} at the top of the
   retry clears the poisoned flag and re-pins the current epoch. The
   price of the cooperative model is robustness against in-operation
   crashes: a victim that never runs another check never unpins, and its
   epoch blocks reclamation — the precise gap DEBRA+ closes with
   asynchronous signals, unavailable on OCaml domains.

   Hot-path discipline: [retire] performs {e no} runtime reads — the
   pinned epoch is cached in a plain handle field by [manage_state], so
   the push is one limbo append plus counters (allocation-free, and in the
   simulator delivery-atomic: no effect between the push and the poisoned
   check). Poisoned flags live in [Stdlib.Atomic] cells: meta-level for
   the simulator (reading one is not a schedule point) and correctly
   synchronized on real domains. *)

module Limbo = Qs_util.Limbo

(* Failed epoch-advance attempts (spaced Q operations apart) tolerated
   before neutralizing the laggards. Patience keeps neutralization off the
   common path: a process that is merely slow gets ~patience*Q operations
   of slack before being restarted. *)
let patience = 3

module Make (R : Qs_intf.Runtime_intf.RUNTIME) (N : Smr_intf.NODE) = struct
  type node = N.t

  type t = {
    cfg : Smr_intf.config;
    free : node -> unit;
    free_bulk : node array -> int -> unit;
    global : int R.atomic;
    (* local.(pid): -1 when inactive, else the epoch pinned by the
       in-flight operation. Written by the owner on every operation and,
       unlike EBR, CASed to -1 by a neutralizer. *)
    locals : int R.atomic array;
    (* poisoned.(pid): restart demanded. Set by the neutralizer before the
       force-unpin, cleared by the victim at the top of its next
       operation. [Stdlib.Atomic] so the simulator reads it without a
       schedule point and real domains read it without a data race. *)
    poisoned : bool Stdlib.Atomic.t array;
    dummy : node;
    handles : handle option array;
    orphans : node Limbo.t array Orphan_pool.t;
    mutable legacy_retires : int;
    mutable legacy_frees : int;
    mutable legacy_epoch_advances : int;
    mutable legacy_neutralizations : int;
    mutable legacy_retired_peak : int;
        (* counters folded out of handles destroyed by {!unregister} *)
  }

  and handle = {
    owner : t;
    pid : int;
    mutable lsrc : node Limbo.source;
    mutable limbo : node Limbo.Triple.t;
    mutable last_epoch : int; (* last epoch this process was pinned to *)
    mutable pinned : int;
        (* cache of [locals.(pid)] as last written by the owner: the
           epoch [manage_state] pinned, or -1 between operations. Lets
           [retire] pick its limbo list without a runtime read. May go
           stale when a preemptive-delivery neutralizer force-unpins us —
           at most one retire lands on the stale list before the poisoned
           check fires, and pushing to an older list only ever frees
           {e later} within the same 3-epoch cycle, never earlier. Under
           cooperative delivery only the owner writes the slot, so the
           cache never goes stale. *)
    mutable ops : int;
    mutable advance_fails : int;
        (* consecutive Q-boundaries where the epoch could not advance *)
    mutable retires : int;
    mutable frees : int;
    mutable epoch_advances : int;
    mutable neutralizations : int;
    mutable retired_peak : int;
    free_node : node -> unit;
    free_bag : node array -> int -> unit;
    flush_node : node -> unit;
    flush_bag : node array -> int -> unit;
  }

  let name = "debra-plus"

  let create ?free_bulk (cfg : Smr_intf.config) ~dummy ~free =
    let free_bulk =
      match free_bulk with
      | Some f -> f
      | None ->
        fun data count ->
          for i = 0 to count - 1 do
            free data.(i)
          done
    in
    { cfg;
      free;
      free_bulk;
      global = R.atomic_padded 0;
      locals = Array.init cfg.n_processes (fun _ -> R.atomic_padded (-1));
      poisoned = Array.init cfg.n_processes (fun _ -> Stdlib.Atomic.make false);
      dummy;
      handles = Array.make cfg.n_processes None;
      orphans = Orphan_pool.create ();
      legacy_retires = 0;
      legacy_frees = 0;
      legacy_epoch_advances = 0;
      legacy_neutralizations = 0;
      legacy_retired_peak = 0 }

  let limbo_source t =
    Limbo.source ~bags:t.cfg.limbo_bags ~capacity:t.cfg.bag_capacity t.dummy

  let register t ~pid =
    let lsrc = limbo_source t in
    let rec h =
      { owner = t;
        pid;
        lsrc;
        limbo = Limbo.Triple.create lsrc;
        last_epoch = -1;
        pinned = -1;
        ops = 0;
        advance_fails = 0;
        retires = 0;
        frees = 0;
        epoch_advances = 0;
        neutralizations = 0;
        retired_peak = 0;
        free_node =
          (fun n ->
            t.free n;
            h.frees <- h.frees + 1;
            R.emit Qs_intf.Runtime_intf.Ev_free (N.id n) (-1));
        free_bag =
          (fun data count ->
            t.free_bulk data count;
            h.frees <- h.frees + count;
            if R.tracing () then
              for i = 0 to count - 1 do
                R.emit Qs_intf.Runtime_intf.Ev_free (N.id data.(i)) (-1)
              done;
            R.emit Qs_intf.Runtime_intf.Ev_bag_free count (-1));
        flush_node =
          (fun n ->
            t.free n;
            h.frees <- h.frees + 1);
        flush_bag =
          (fun data count ->
            t.free_bulk data count;
            h.frees <- h.frees + count) }
    in
    (* a pid slot may be re-registered after churn; a stale poison demand
       aimed at the departed incumbent must not restart the newcomer *)
    Stdlib.Atomic.set t.poisoned.(pid) false;
    t.handles.(pid) <- Some h;
    h

  let free_epoch ?(emit = true) h e =
    let v = h.limbo.(e) in
    if emit then Limbo.drain v ~free_node:h.free_node ~free_bag:h.free_bag
    else Limbo.drain v ~free_node:h.flush_node ~free_bag:h.flush_bag

  let all_on t eg =
    let n = Array.length t.locals in
    let rec go i =
      i >= n
      ||
      let l = R.get t.locals.(i) in
      (l = -1 || l = eg) && go (i + 1)
    in
    go 0

  let adopt_orphans h eg =
    let t = h.owner in
    if not (Orphan_pool.is_empty t.orphans) then
      match Orphan_pool.take t.orphans with
      | None -> ()
      | Some e ->
        Array.iter
          (fun v -> Limbo.splice_into ~src:v ~dst:h.limbo.(eg))
          e.Orphan_pool.payload;
        R.emit Qs_intf.Runtime_intf.Ev_adopt e.Orphan_pool.nodes
          e.Orphan_pool.donor

  (* The neutralization round: restart every process still pinned to an
     epoch other than [eg]. Order matters for restart safety — the victim
     must be restartable (flag set, signal posted) {e before} its
     protection is revoked, so that by the time reclamation can pass it,
     its next protection point aborts.

     Who revokes the pin depends on the runtime's delivery model:

     - Preemptive delivery ([R.neutralize_is_preemptive]; the simulator,
       modelling [pthread_kill]+[siglongjmp]): the signal aborts the victim
       before its next shared-memory access, so the neutralizer may
       force-unpin on the victim's behalf. The unpin is a CAS on the value
       it observed (never a blind store — the victim may have resumed and
       re-pinned concurrently, and clobbering a fresh pin would revoke
       live protection); if it fails the victim already moved and we leave
       its state alone — the pending signal then causes one spurious
       restart, which is harmless.

     - Cooperative delivery (real domains: no per-domain async signals):
       the victim only learns of the restart at its own next poisoned
       check, and between that check and the dereference it guards lies a
       preemption window of unbounded length — a force-unpin here is a
       use-after-free: unpin, epoch cycles, node freed, victim resumes
       into the dereference. So the neutralizer only posts the demand and
       the victim unpins {e itself} at its next check ([ack_restart]) —
       revocation by acknowledgment. The advance retried below fails this
       round and succeeds once every laggard has run one protection check;
       a victim crashed {e inside} an operation blocks reclamation
       forever, which is exactly the robustness DEBRA+ shows cannot be had
       without asynchronous signals. The flag is consumed with [exchange]
       so a laggard that stays pinned across several patience rounds is
       signalled (and counted) once per restart, not once per round.

     [Ev_neutralize a b]: [a] = victim pid, [b] = the epoch it was pinned
     to, or -1 if the victim had already moved / was already signalled. *)
  let neutralize_laggards h eg =
    let t = h.owner in
    let n = Array.length t.locals in
    for v = 0 to n - 1 do
      if v <> h.pid then begin
        let l = R.get t.locals.(v) in
        if l <> -1 && l <> eg then
          if R.neutralize_is_preemptive then begin
            Stdlib.Atomic.set t.poisoned.(v) true;
            R.neutralize ~pid:v;
            if R.cas t.locals.(v) l (-1) then begin
              h.neutralizations <- h.neutralizations + 1;
              R.emit Qs_intf.Runtime_intf.Ev_neutralize v l
            end
            else R.emit Qs_intf.Runtime_intf.Ev_neutralize v (-1)
          end
          else if not (Stdlib.Atomic.exchange t.poisoned.(v) true) then begin
            R.neutralize ~pid:v;
            h.neutralizations <- h.neutralizations + 1;
            R.emit Qs_intf.Runtime_intf.Ev_neutralize v l
          end
      end
    done

  let try_advance h eg =
    if R.cas h.owner.global eg ((eg + 1) mod 3) then begin
      h.epoch_advances <- h.epoch_advances + 1;
      R.emit Qs_intf.Runtime_intf.Ev_epoch_advance ((eg + 1) mod 3) (-1)
    end

  (* Enter the critical region. This is also the restart entry point after
     a neutralization: the poisoned flag is consumed here, before the new
     pin, so one signal causes at most one restart. *)
  let manage_state h =
    R.hook Qs_intf.Runtime_intf.Hook_quiesce;
    let t = h.owner in
    if Stdlib.Atomic.get t.poisoned.(h.pid) then
      Stdlib.Atomic.set t.poisoned.(h.pid) false;
    let eg = R.get t.global in
    R.set t.locals.(h.pid) eg;
    h.pinned <- eg;
    if h.last_epoch <> eg then begin
      h.last_epoch <- eg;
      R.emit Qs_intf.Runtime_intf.Ev_quiesce eg 1;
      free_epoch h eg;
      adopt_orphans h eg
    end;
    h.ops <- h.ops + 1;
    if h.ops mod t.cfg.quiescence_threshold = 0 then
      if all_on t eg then begin
        h.advance_fails <- 0;
        try_advance h eg
      end
      else begin
        h.advance_fails <- h.advance_fails + 1;
        if h.advance_fails >= patience then begin
          h.advance_fails <- 0;
          neutralize_laggards h eg;
          if all_on t eg then try_advance h eg
        end
      end

  let clear_hps h =
    h.pinned <- -1;
    R.set h.owner.locals.(h.pid) (-1)

  (* Cooperative restart: acknowledge the demand by dropping our own pin
     (the unpin the neutralizer could not safely do for us — see
     [neutralize_laggards]), then abort the operation. We hold references
     protected by that pin, but we are abandoning them all right here, and
     the restarted operation re-pins before touching anything. On
     preemptive runtimes the neutralizer already CASed the pin away, so
     skip the store — on the simulator it would also be a schedule point,
     and this check must stay schedule-neutral. *)
  let ack_restart h =
    if not R.neutralize_is_preemptive then begin
      h.pinned <- -1;
      R.set h.owner.locals.(h.pid) (-1)
    end;
    raise Qs_intf.Runtime_intf.Neutralized

  (* DEBRA+ needs no hazard pointers; the slot write is repurposed as the
     cooperative delivery point — the check every traversal step performs
     before trusting a new reference. Plain atomic read, no allocation, no
     schedule point. *)
  let assign_hp h ~slot:_ _ =
    if Stdlib.Atomic.get h.owner.poisoned.(h.pid) then ack_restart h

  let total_limbo h = Limbo.Triple.total h.limbo

  (* No runtime reads: the target list comes from the cached pin (or the
     last pin, for the rare retire outside an operation). Everything up to
     and including the push is meta-level, and the [Hook_retire] schedule
     point comes {e after} it — so every way this function can raise
     [Neutralized] (preemptive delivery at the parked hook under a
     [Targeted] strategy, or the cooperative poisoned check at the end)
     happens with the node already banked in limbo. Data-structure unwind
     handlers rely on this: "DEBRA+ retire raised" always means "retired",
     never "leaked". *)
  let retire h n =
    let e =
      if h.pinned >= 0 then h.pinned
      else if h.last_epoch >= 0 then h.last_epoch
      else 0
    in
    let sealed = Limbo.push h.limbo.(e) n in
    R.hook Qs_intf.Runtime_intf.Hook_retire;
    h.retires <- h.retires + 1;
    let total = total_limbo h in
    if total > h.retired_peak then h.retired_peak <- total;
    R.emit Qs_intf.Runtime_intf.Ev_retire (N.id n) total;
    if sealed > 0 then R.emit Qs_intf.Runtime_intf.Ev_bag_seal sealed (-1);
    if Stdlib.Atomic.get h.owner.poisoned.(h.pid) then ack_restart h

  let unregister h =
    let t = h.owner in
    let donated = total_limbo h in
    let old = h.limbo in
    h.lsrc <- limbo_source t;
    h.limbo <- Limbo.Triple.create h.lsrc;
    h.pinned <- -1;
    R.set t.locals.(h.pid) (-1);
    Stdlib.Atomic.set t.poisoned.(h.pid) false;
    Orphan_pool.donate t.orphans ~donor:h.pid ~nodes:donated old;
    t.legacy_retires <- t.legacy_retires + h.retires;
    t.legacy_frees <- t.legacy_frees + h.frees;
    t.legacy_epoch_advances <- t.legacy_epoch_advances + h.epoch_advances;
    t.legacy_neutralizations <- t.legacy_neutralizations + h.neutralizations;
    t.legacy_retired_peak <- t.legacy_retired_peak + h.retired_peak;
    h.retires <- 0;
    h.frees <- 0;
    h.epoch_advances <- 0;
    h.neutralizations <- 0;
    h.retired_peak <- 0;
    t.handles.(h.pid) <- None;
    R.emit Qs_intf.Runtime_intf.Ev_unregister h.pid donated

  let flush h =
    for e = 0 to 2 do
      free_epoch ~emit:false h e
    done;
    let t = h.owner in
    List.iter
      (fun (e : _ Orphan_pool.entry) ->
        Array.iter
          (fun v ->
            Limbo.drain v
              ~free_node:(fun n ->
                t.free n;
                t.legacy_frees <- t.legacy_frees + 1)
              ~free_bag:(fun data count ->
                t.free_bulk data count;
                t.legacy_frees <- t.legacy_frees + count))
          e.Orphan_pool.payload)
      (Orphan_pool.drain t.orphans)

  let fold t f =
    Array.fold_left
      (fun acc -> function None -> acc | Some h -> acc + f h)
      0 t.handles

  let retired_count t = fold t total_limbo + Orphan_pool.node_count t.orphans

  let stats t =
    { Smr_intf.zero_stats with
      retires = fold t (fun h -> h.retires) + t.legacy_retires;
      frees = fold t (fun h -> h.frees) + t.legacy_frees;
      epoch_advances =
        fold t (fun h -> h.epoch_advances) + t.legacy_epoch_advances;
      neutralizations =
        fold t (fun h -> h.neutralizations) + t.legacy_neutralizations;
      retired_now = retired_count t;
      retired_peak =
        fold t (fun h -> h.retired_peak) + t.legacy_retired_peak }
end
