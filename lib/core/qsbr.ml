(* Quiescent-state based reclamation (§3.1), the paper's fast path.

   Three logical epochs; one limbo list per epoch per process; a shared
   global epoch. A process declaring a quiescent state adopts the global
   epoch if it lags — at which point its limbo list for the adopted epoch
   holds nodes retired a full epoch cycle ago, separated from the present by
   a grace period (Lemma 3), so they are freed. If instead the process is
   current and observes everybody else current too, it advances the global
   epoch.

   Fast (no per-node work at all) but blocking: one delayed process freezes
   the global epoch and with it all reclamation — the failure mode QSense's
   fallback path exists to survive.

   Hot-path discipline: limbo lists are growable vectors ({!Qs_util.Vec}),
   so [retire] is an amortised allocation-free array store and [free_epoch]
   walks a contiguous block; per-process epoch slots are cache-line padded
   ([R.atomic_padded]) because each is written by its owner and read by
   everyone. *)

module Make (R : Qs_intf.Runtime_intf.RUNTIME) (N : Smr_intf.NODE) = struct
  type node = N.t

  type t = {
    cfg : Smr_intf.config;
    free : node -> unit;
    global : int R.atomic;
    locals : int R.atomic array;
    dummy : node;
    handles : handle option array;
  }

  and handle = {
    owner : t;
    pid : int;
    limbo : node Qs_util.Vec.t array; (* one vector per epoch *)
    mutable ops : int;
    mutable retires : int;
    mutable frees : int;
    mutable epoch_advances : int;
    mutable retired_peak : int;
  }

  let name = "qsbr"

  let create (cfg : Smr_intf.config) ~dummy ~free =
    { cfg;
      free;
      global = R.atomic_padded 0;
      locals = Array.init cfg.n_processes (fun _ -> R.atomic_padded 0);
      dummy;
      handles = Array.make cfg.n_processes None }

  let register t ~pid =
    let h =
      { owner = t;
        pid;
        limbo = Array.init 3 (fun _ -> Qs_util.Vec.create t.dummy);
        ops = 0;
        retires = 0;
        frees = 0;
        epoch_advances = 0;
        retired_peak = 0 }
    in
    t.handles.(pid) <- Some h;
    h

  (* [emit = false] on the teardown path ([flush]): teardown may run
     outside process context, where performing the emit effect is illegal
     on the simulator — and teardown frees are not reclamation events. *)
  let free_epoch ?(emit = true) h e =
    let v = h.limbo.(e) in
    Qs_util.Vec.iter
      (fun n ->
        h.owner.free n;
        h.frees <- h.frees + 1;
        if emit then
          (* no timestamps in QSBR: age recovered offline from Ev_retire *)
          R.emit Qs_intf.Runtime_intf.Ev_free (N.id n) (-1))
      v;
    Qs_util.Vec.clear v

  let all_current t eg =
    let n = Array.length t.locals in
    let rec go i = i >= n || (R.get t.locals.(i) = eg && go (i + 1)) in
    go 0

  let quiescent_state h =
    R.hook Qs_intf.Runtime_intf.Hook_quiesce;
    let t = h.owner in
    let eg = R.get t.global in
    if R.get t.locals.(h.pid) <> eg then begin
      R.set t.locals.(h.pid) eg;
      R.emit Qs_intf.Runtime_intf.Ev_quiesce eg 1;
      free_epoch h eg
    end
    else begin
      R.emit Qs_intf.Runtime_intf.Ev_quiesce eg 0;
      if all_current t eg then
        if R.cas t.global eg ((eg + 1) mod 3) then begin
          h.epoch_advances <- h.epoch_advances + 1;
          R.emit Qs_intf.Runtime_intf.Ev_epoch_advance ((eg + 1) mod 3) (-1)
        end
    end

  let manage_state h =
    h.ops <- h.ops + 1;
    if h.ops mod h.owner.cfg.quiescence_threshold = 0 then quiescent_state h

  let assign_hp _ ~slot:_ _ = ()
  let clear_hps _ = ()

  let total_limbo h =
    Qs_util.Vec.length h.limbo.(0)
    + Qs_util.Vec.length h.limbo.(1)
    + Qs_util.Vec.length h.limbo.(2)

  let retire h n =
    R.hook Qs_intf.Runtime_intf.Hook_retire;
    let e = R.get h.owner.locals.(h.pid) in
    Qs_util.Vec.push h.limbo.(e) n;
    h.retires <- h.retires + 1;
    let total = total_limbo h in
    if total > h.retired_peak then h.retired_peak <- total;
    R.emit Qs_intf.Runtime_intf.Ev_retire (N.id n) total

  let flush h =
    for e = 0 to 2 do
      free_epoch ~emit:false h e
    done

  let fold t f =
    Array.fold_left
      (fun acc -> function None -> acc | Some h -> acc + f h)
      0 t.handles

  let retired_count t = fold t total_limbo

  let stats t =
    { Smr_intf.zero_stats with
      retires = fold t (fun h -> h.retires);
      frees = fold t (fun h -> h.frees);
      epoch_advances = fold t (fun h -> h.epoch_advances);
      retired_now = retired_count t;
      retired_peak = fold t (fun h -> h.retired_peak) }
end
