(* Quiescent-state based reclamation (§3.1), the paper's fast path.

   Three logical epochs; one limbo list per epoch per process; a shared
   global epoch. A process declaring a quiescent state adopts the global
   epoch if it lags — at which point its limbo list for the adopted epoch
   holds nodes retired a full epoch cycle ago, separated from the present by
   a grace period (Lemma 3), so they are freed. If instead the process is
   current and observes everybody else current too, it advances the global
   epoch.

   Fast (no per-node work at all) but blocking: one delayed process freezes
   the global epoch and with it all reclamation — the failure mode QSense's
   fallback path exists to survive.

   Hot-path discipline: limbo lists are batched bags by default
   ({!Qs_util.Bag} via the {!Qs_util.Limbo} switch) — [retire] is an
   allocation-free array store into the open block and an expired epoch
   returns to the arena one whole bag per [free_bulk] call; the vec
   reference stays available behind [config.limbo_bags = false]. The
   free/flush callbacks are preallocated per handle so no closure is built
   on a reclamation path. Per-process epoch slots are cache-line padded
   ([R.atomic_padded]) because each is written by its owner and read by
   everyone. *)

module Limbo = Qs_util.Limbo

module Make (R : Qs_intf.Runtime_intf.RUNTIME) (N : Smr_intf.NODE) = struct
  type node = N.t

  type t = {
    cfg : Smr_intf.config;
    free : node -> unit;
    free_bulk : node array -> int -> unit;
    global : int R.atomic;
    locals : int R.atomic array;
    dummy : node;
    handles : handle option array;
    orphans : node Limbo.t array Orphan_pool.t;
        (* limbo triples donated by departed processes; bag chains travel
           intact (sealed by the donor, spliced by the adopter) *)
    departed : bool array;
        (* meta-level: pid slots vacated by {!unregister}; a later
           {!register} into such a slot must re-join the epoch protocol
           (its [locals] cell is the -1 "absent" sentinel) *)
    mutable legacy_retires : int;
    mutable legacy_frees : int;
    mutable legacy_epoch_advances : int;
    mutable legacy_retired_peak : int;
        (* counters folded out of handles destroyed by {!unregister}, so
           [stats] stays monotone across worker churn *)
  }

  and handle = {
    owner : t;
    pid : int;
    mutable lsrc : node Limbo.source;
    mutable limbo : node Limbo.Triple.t; (* one limbo list per epoch *)
    mutable joined : bool;
        (* false only for a handle re-registered into a vacated slot,
           until its first [manage_state] announces an epoch *)
    mutable ops : int;
    mutable retires : int;
    mutable frees : int;
    mutable epoch_advances : int;
    mutable retired_peak : int;
    (* reclamation callbacks, preallocated so scans/drains build no
       closures; the [flush_*] pair skips event emission (teardown may run
       outside process context, where the emit effect is illegal on the
       simulator — and teardown frees are not reclamation events) *)
    free_node : node -> unit;
    free_bag : node array -> int -> unit;
    flush_node : node -> unit;
    flush_bag : node array -> int -> unit;
  }

  let name = "qsbr"

  let create ?free_bulk (cfg : Smr_intf.config) ~dummy ~free =
    let free_bulk =
      match free_bulk with
      | Some f -> f
      | None ->
        fun data count ->
          for i = 0 to count - 1 do
            free data.(i)
          done
    in
    { cfg;
      free;
      free_bulk;
      global = R.atomic_padded 0;
      locals = Array.init cfg.n_processes (fun _ -> R.atomic_padded 0);
      dummy;
      handles = Array.make cfg.n_processes None;
      orphans = Orphan_pool.create ();
      departed = Array.make cfg.n_processes false;
      legacy_retires = 0;
      legacy_frees = 0;
      legacy_epoch_advances = 0;
      legacy_retired_peak = 0 }

  let limbo_source t =
    Limbo.source ~bags:t.cfg.limbo_bags ~capacity:t.cfg.bag_capacity t.dummy

  let register t ~pid =
    let lsrc = limbo_source t in
    let rec h =
      { owner = t;
        pid;
        lsrc;
        limbo = Limbo.Triple.create lsrc;
        joined = not t.departed.(pid);
        ops = 0;
        retires = 0;
        frees = 0;
        epoch_advances = 0;
        retired_peak = 0;
        free_node =
          (fun n ->
            t.free n;
            h.frees <- h.frees + 1;
            (* no timestamps in QSBR: age recovered offline from Ev_retire *)
            R.emit Qs_intf.Runtime_intf.Ev_free (N.id n) (-1));
        free_bag =
          (fun data count ->
            t.free_bulk data count;
            h.frees <- h.frees + count;
            (* one tracing check per bag instead of one dead emit per node *)
            if R.tracing () then
              for i = 0 to count - 1 do
                R.emit Qs_intf.Runtime_intf.Ev_free (N.id data.(i)) (-1)
              done;
            R.emit Qs_intf.Runtime_intf.Ev_bag_free count (-1));
        flush_node =
          (fun n ->
            t.free n;
            h.frees <- h.frees + 1);
        flush_bag =
          (fun data count ->
            t.free_bulk data count;
            h.frees <- h.frees + count) }
    in
    t.departed.(pid) <- false;
    t.handles.(pid) <- Some h;
    h

  let free_epoch ?(emit = true) h e =
    let v = h.limbo.(e) in
    if emit then Limbo.drain v ~free_node:h.free_node ~free_bag:h.free_bag
    else Limbo.drain v ~free_node:h.flush_node ~free_bag:h.flush_bag

  (* A negative local epoch is the "absent" sentinel written by
     {!unregister}: the slot no longer gates epoch advancement. Same
     effect count per process as before (one load). *)
  (* Top-level recursion (not an inner [let rec]): quiescent_state runs on
     the service get path every quiescence_threshold requests, and an inner
     closure here would be the only heap allocation on it. *)
  let rec all_current_from t eg n i =
    i >= n
    || (let l = R.get t.locals.(i) in
        (l = eg || l < 0) && all_current_from t eg n (i + 1))

  let all_current t eg = all_current_from t eg (Array.length t.locals) 0

  (* Adoption: splice one orphaned limbo triple into the epoch list we
     just freed. The adopted nodes are freed the next time this process
     adopts [eg] — a full epoch cycle, hence a fresh grace period, so
     Lemma 3 applies to them regardless of when (or at which epoch) the
     donor retired them. Gated on the meta-level emptiness hint so runs
     without churn perform no extra runtime effects. *)
  let adopt_orphans h eg =
    let t = h.owner in
    if not (Orphan_pool.is_empty t.orphans) then
      match Orphan_pool.take t.orphans with
      | None -> ()
      | Some e ->
        Array.iter
          (fun v -> Limbo.splice_into ~src:v ~dst:h.limbo.(eg))
          e.Orphan_pool.payload;
        R.emit Qs_intf.Runtime_intf.Ev_adopt e.Orphan_pool.nodes
          e.Orphan_pool.donor

  let quiescent_state h =
    R.hook Qs_intf.Runtime_intf.Hook_quiesce;
    let t = h.owner in
    let eg = R.get t.global in
    if R.get t.locals.(h.pid) <> eg then begin
      R.set t.locals.(h.pid) eg;
      R.emit Qs_intf.Runtime_intf.Ev_quiesce eg 1;
      free_epoch h eg;
      adopt_orphans h eg
    end
    else begin
      R.emit Qs_intf.Runtime_intf.Ev_quiesce eg 0;
      if all_current t eg then
        if R.cas t.global eg ((eg + 1) mod 3) then begin
          h.epoch_advances <- h.epoch_advances + 1;
          R.emit Qs_intf.Runtime_intf.Ev_epoch_advance ((eg + 1) mod 3) (-1)
        end
    end

  (* Late join (worker churn): a handle registered into a vacated slot
     starts invisible to grace periods ([locals] = -1); its first
     [manage_state] call — in process context by the {!register}
     contract — announces the current global epoch. Gated on a plain
     handle field, so runs without churn perform no extra effects. *)
  let join h =
    let t = h.owner in
    R.set t.locals.(h.pid) (R.get t.global);
    h.joined <- true

  let manage_state h =
    if not h.joined then join h;
    h.ops <- h.ops + 1;
    if h.ops mod h.owner.cfg.quiescence_threshold = 0 then quiescent_state h

  let assign_hp _ ~slot:_ _ = ()
  let clear_hps _ = ()
  let total_limbo h = Limbo.Triple.total h.limbo

  let retire h n =
    R.hook Qs_intf.Runtime_intf.Hook_retire;
    let e = R.get h.owner.locals.(h.pid) in
    (* before the first [manage_state] of a re-registered handle the local
       epoch is the -1 sentinel; park the node in epoch 0 — it is freed
       only by this handle's own later adoptions, behind a full cycle *)
    let e = if e < 0 then 0 else e in
    let sealed = Limbo.push h.limbo.(e) n in
    h.retires <- h.retires + 1;
    let total = total_limbo h in
    if total > h.retired_peak then h.retired_peak <- total;
    R.emit Qs_intf.Runtime_intf.Ev_retire (N.id n) total;
    if sealed > 0 then R.emit Qs_intf.Runtime_intf.Ev_bag_seal sealed (-1)

  (* Dynamic membership: donate the limbo triple to the orphan pool,
     mark the local-epoch slot absent and release the pid for reuse.
     Fresh (empty) lists — over a fresh block source, so the adopter's
     splicing never races this handle's cache — are installed *before*
     donating so the nodes are never owned twice; counters fold into the
     scheme-level legacy accumulators so [stats] stays monotone across
     churn. *)
  let unregister h =
    let t = h.owner in
    let donated = total_limbo h in
    let old = h.limbo in
    h.lsrc <- limbo_source t;
    h.limbo <- Limbo.Triple.create h.lsrc;
    h.joined <- true (* dead handle: never join again *);
    R.set t.locals.(h.pid) (-1);
    Orphan_pool.donate t.orphans ~donor:h.pid ~nodes:donated old;
    t.legacy_retires <- t.legacy_retires + h.retires;
    t.legacy_frees <- t.legacy_frees + h.frees;
    t.legacy_epoch_advances <- t.legacy_epoch_advances + h.epoch_advances;
    t.legacy_retired_peak <- t.legacy_retired_peak + h.retired_peak;
    h.retires <- 0;
    h.frees <- 0;
    h.epoch_advances <- 0;
    h.retired_peak <- 0;
    t.handles.(h.pid) <- None;
    t.departed.(h.pid) <- true;
    R.emit Qs_intf.Runtime_intf.Ev_unregister h.pid donated

  let flush h =
    for e = 0 to 2 do
      free_epoch ~emit:false h e
    done;
    (* teardown owns everything: drain the orphan pool too (the first
       flusher gets all of it; later flushers find it empty) *)
    let t = h.owner in
    List.iter
      (fun (e : _ Orphan_pool.entry) ->
        Array.iter
          (fun v ->
            Limbo.drain v
              ~free_node:(fun n ->
                t.free n;
                t.legacy_frees <- t.legacy_frees + 1)
              ~free_bag:(fun data count ->
                t.free_bulk data count;
                t.legacy_frees <- t.legacy_frees + count))
          e.Orphan_pool.payload)
      (Orphan_pool.drain t.orphans)

  let fold t f =
    Array.fold_left
      (fun acc -> function None -> acc | Some h -> acc + f h)
      0 t.handles

  let retired_count t = fold t total_limbo + Orphan_pool.node_count t.orphans

  let stats t =
    { Smr_intf.zero_stats with
      retires = fold t (fun h -> h.retires) + t.legacy_retires;
      frees = fold t (fun h -> h.frees) + t.legacy_frees;
      epoch_advances =
        fold t (fun h -> h.epoch_advances) + t.legacy_epoch_advances;
      retired_now = retired_count t;
      retired_peak =
        fold t (fun h -> h.retired_peak) + t.legacy_retired_peak }
end
