(* The paper's "None" baseline: no reclamation at all. Retired nodes are
   dropped on the floor (in C they would leak; here the OCaml GC eventually
   collects them, but as far as the arena is concerned they are never
   freed). This is the throughput upper bound every scheme's overhead is
   measured against. *)

module Make (R : Qs_intf.Runtime_intf.RUNTIME) (N : Smr_intf.NODE) = struct
  type node = N.t

  type handle = { mutable retires : int }

  type t = { handles : handle array }

  let name = "none"

  let create ?free_bulk:_ (cfg : Smr_intf.config) ~dummy:_ ~free:_ =
    { handles = Array.init cfg.n_processes (fun _ -> { retires = 0 }) }

  let register t ~pid = t.handles.(pid)

  (* Nothing to retire: handles are shared per-pid records and nothing is
     ever reclaimed, so there are no limbo lists to orphan. The slot is
     trivially reusable. *)
  let unregister _ = ()

  let manage_state _ = ()
  let assign_hp _ ~slot:_ _ = ()
  let clear_hps _ = ()
  let retire h n =
    h.retires <- h.retires + 1;
    (* b = current leak count: the limbo "depth" of a scheme that never
       frees, so a traced leaky run plots its unbounded growth *)
    R.emit Qs_intf.Runtime_intf.Ev_retire (N.id n) h.retires
  let flush _ = ()

  let retired_count t =
    Array.fold_left (fun acc h -> acc + h.retires) 0 t.handles

  let stats t =
    let retires = retired_count t in
    { Smr_intf.zero_stats with
      retires;
      retired_now = retires;
      retired_peak = retires }
end
