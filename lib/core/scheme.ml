(** Runtime selection of a reclamation scheme.

    The experiment harness and the benchmarks pick schemes by name; this
    module maps the name to the right functor application as a first-class
    module. *)

type kind =
  | None_  (** leaky baseline — the paper's "None" *)
  | Hp  (** classic hazard pointers, fenced *)
  | Unsafe_hp  (** hazard pointers without the fence — broken, demo only *)
  | Qsbr
  | Ebr  (** per-operation epochs (Fraser), §8's epoch-based baseline *)
  | Debra_plus  (** EBR + neutralization (Brown) — rival robust scheme *)
  | Hyaline  (** reference-counted batches, no scan phase — rival scheme *)
  | Cadence
  | Qsense
  | Naive_hybrid
      (** the rejected §4.1 hybrid (HPs only in fallback mode) — broken,
          demo only *)

let all =
  [ None_; Hp; Unsafe_hp; Qsbr; Ebr; Debra_plus; Hyaline; Cadence; Qsense;
    Naive_hybrid ]

let to_string = function
  | None_ -> "none"
  | Hp -> "hp"
  | Unsafe_hp -> "unsafe-hp"
  | Qsbr -> "qsbr"
  | Ebr -> "ebr"
  | Debra_plus -> "debra-plus"
  | Hyaline -> "hyaline"
  | Cadence -> "cadence"
  | Qsense -> "qsense"
  | Naive_hybrid -> "naive-hybrid"

let of_string = function
  | "none" -> Some None_
  | "hp" -> Some Hp
  | "unsafe-hp" -> Some Unsafe_hp
  | "qsbr" -> Some Qsbr
  | "ebr" -> Some Ebr
  | "debra-plus" -> Some Debra_plus
  | "hyaline" -> Some Hyaline
  | "cadence" -> Some Cadence
  | "qsense" -> Some Qsense
  | "naive-hybrid" -> Some Naive_hybrid
  | _ -> None

(** Whether the scheme needs rooster processes running for safety. *)
let needs_roosters = function
  | Cadence | Qsense | Naive_hybrid -> true
  | None_ | Hp | Unsafe_hp | Qsbr | Ebr | Debra_plus | Hyaline -> false

(** Whether the scheme survives prolonged process delays with bounded
    memory (the paper's robustness property). *)
(* EBR is robust to processes stalled BETWEEN operations but not to
   processes stalled inside one; it does not get the paper's robustness
   label. DEBRA+ earns it by neutralizing in-operation laggards (in the
   real runtime only cooperatively — see {!Debra_plus}). Hyaline earns it
   the hazard-pointer way: a stalled process delays only the batches
   inserted into its own slot. *)
let robust = function
  | Hp | Debra_plus | Hyaline | Cadence | Qsense -> true
  | None_ | Unsafe_hp | Qsbr | Ebr | Naive_hybrid -> false

module Dispatch (R : Qs_intf.Runtime_intf.RUNTIME) (N : Smr_intf.NODE) = struct
  type s = (module Smr_intf.S with type node = N.t)

  let make : kind -> s = function
    | None_ -> (module Leaky.Make (R) (N))
    | Hp -> (module Hazard_pointers.Make (R) (N))
    | Unsafe_hp -> (module Unsafe_hp.Make (R) (N))
    | Qsbr -> (module Qsbr.Make (R) (N))
    | Ebr -> (module Ebr.Make (R) (N))
    | Debra_plus -> (module Debra_plus.Make (R) (N))
    | Hyaline -> (module Hyaline.Make (R) (N))
    | Cadence -> (module Cadence.Make (R) (N))
    | Qsense -> (module Qsense.Make (R) (N))
    | Naive_hybrid -> (module Naive_hybrid.Make (R) (N))
end
