(* Hyaline — snapshot-free reference-counted reclamation (Nikolaev &
   Ravindran, SPAA'19/PODC'21), included as the second rival scheme: a
   point in the design space with {e no} scan phase at all — neither
   hazard-pointer scans (HP, Cadence, QSense-fallback) nor epoch/grace
   bookkeeping walks (QSBR, EBR, DEBRA+). The differential battery pins
   this structurally: a Hyaline run emits zero [Ev_scan_begin] events.

   Shape of the algorithm (the per-process-slot variant, Hyaline-1):

   - Each process owns one {e slot}: a single CASable cell that is either
     [Inactive] or [Active chain]. Entering a critical section installs
     [Active Cnil]; leaving claims the whole cell back to [Inactive] with
     a CAS and walks the chain it captured.
   - Retired nodes accumulate in a handle-local open batch (capacity =
     [bag_capacity] under [limbo_bags], else 1 — the element-wise
     reference for the bag/vec differential tests). Sealing a batch runs
     the insertion protocol: for every slot currently [Active], push one
     reference to the batch onto that slot's chain (CAS; a failure means
     the owner left concurrently and is compensated), counting each
     successful insertion into the batch's reference count {e before} the
     push makes it reachable.
   - Leaving decrements the reference count of every batch on the claimed
     chain; whoever decrements a batch to zero frees it — reclamation is
     distributed to the {e last dereferencing handle}, wherever it runs.

   Safety: a batch's nodes were unlinked before their retire, so only
   processes already inside a critical section at seal time can still
   hold references; each such process holds exactly one batch reference
   via its slot and drops it on leave. No grace period, no global epoch,
   no quiescence — and therefore robust in the same sense as HP: a
   stalled process delays only the batches inserted into its own slot
   (bounded by what was live at its entry), never reclamation at large.

   Bookkeeping that must survive crashed workers (a process that never
   leaves would strand its chain) lives at the meta level: every sealed
   batch is pushed onto a [Stdlib.Atomic] registry and carries a [freed]
   claim flag, so teardown ({!flush}) can free stragglers exactly once
   without racing the reference-count path. *)

module Make (R : Qs_intf.Runtime_intf.RUNTIME) (N : Smr_intf.NODE) = struct
  type node = N.t

  type batch = {
    data : node array;
    count : int;
    nref : int R.atomic;
        (* outstanding references: one per successful slot insertion plus
           the sealer's creator reference while insertion is in flight *)
    freed : bool Stdlib.Atomic.t;
        (* meta-level free-once claim: CAS false->true wins the right to
           free; lets teardown reclaim batches stranded by crashed
           workers without double-freeing against the nref path *)
  }

  and chain = Cnil | Ccons of batch * chain

  and slot = Inactive | Active of chain
  (* Pushes CAS on the exact [Active _] value observed, so a concurrent
     leave (which claims the cell back to [Inactive]) makes them fail
     rather than strand a reference. Non-empty [Active] blocks are fresh
     allocations, so physical-equality CAS gives ABA immunity on them.
     The empty chain is the one exception: each handle re-enters with the
     SAME preallocated [Active Cnil] value ([handle.active_nil], keeping
     the enter/leave path allocation-free). That admits exactly one ABA:
     an insertion prepared against era-N's empty chain can land in era-M's
     (M > N) equally-empty chain. It is benign — the value stands for the
     empty chain in both eras, so no batch reference is lost, and the
     reference counted for the push is dropped by whichever era's leave
     claims it; landing in a later session only defers that batch, never
     frees it early. *)

  type t = {
    cfg : Smr_intf.config;
    free : node -> unit;
    free_bulk : node array -> int -> unit;
    capacity : int;
    dummy : node;  (** fills fresh open-batch arrays *)
    slots : slot R.atomic array;
    registry : batch list Stdlib.Atomic.t;
        (* append-only roster of sealed-but-not-yet-freed batches for
           {!flush}; freed batches stay listed (three words each) and are
           skipped via their claim flag *)
    outstanding : int Stdlib.Atomic.t;
        (* retired-not-yet-freed nodes, maintained at the meta level so
           {!retired_count} needs no process context *)
    peak : int Stdlib.Atomic.t;
    handles : handle option array;
    orphans : node array Orphan_pool.t;
        (* open (unsealed) nodes donated by departing handles; adopters
           re-batch them — sealed batches need no donation, they already
           free themselves through the reference counts *)
    mutable legacy_retires : int;
    mutable legacy_frees : int;
  }

  and handle = {
    owner : t;
    pid : int;
    active_nil : slot;  (** preallocated [Active Cnil]; see the slot note *)
    mutable open_data : node array;
    mutable open_count : int;
    mutable retires : int;
    mutable frees : int;
  }

  let name = "hyaline"

  let create ?free_bulk (cfg : Smr_intf.config) ~dummy ~free =
    let free_bulk =
      match free_bulk with
      | Some f -> f
      | None ->
        fun data count ->
          for i = 0 to count - 1 do
            free data.(i)
          done
    in
    { cfg;
      free;
      free_bulk;
      capacity = (if cfg.limbo_bags then max 1 cfg.bag_capacity else 1);
      dummy;
      slots = Array.init cfg.n_processes (fun _ -> R.atomic_padded Inactive);
      registry = Stdlib.Atomic.make [];
      outstanding = Stdlib.Atomic.make 0;
      peak = Stdlib.Atomic.make 0;
      handles = Array.make cfg.n_processes None;
      orphans = Orphan_pool.create ();
      legacy_retires = 0;
      legacy_frees = 0 }

  let register t ~pid =
    let h =
      { owner = t;
        pid;
        active_nil = Active Cnil;
        open_data = Array.make t.capacity t.dummy;
        open_count = 0;
        retires = 0;
        frees = 0 }
    in
    t.handles.(pid) <- Some h;
    h

  let retired_count t = Stdlib.Atomic.get t.outstanding

  (* -- meta counters ------------------------------------------------- *)

  let meta_add cell d =
    ignore (Stdlib.Atomic.fetch_and_add cell d : int)

  let rec meta_max cell v =
    let cur = Stdlib.Atomic.get cell in
    if v > cur && not (Stdlib.Atomic.compare_and_set cell cur v) then
      meta_max cell v

  let rec registry_push t b =
    let cur = Stdlib.Atomic.get t.registry in
    if not (Stdlib.Atomic.compare_and_set t.registry cur (b :: cur)) then
      registry_push t b

  (* -- freeing ------------------------------------------------------- *)

  (* Free-once: both the last-reference path and teardown funnel through
     the claim flag. [emit = false] on the teardown path, which may run
     outside process context. *)
  let free_batch ?(emit = true) h b =
    if Stdlib.Atomic.compare_and_set b.freed false true then begin
      h.owner.free_bulk b.data b.count;
      h.frees <- h.frees + b.count;
      meta_add h.owner.outstanding (-b.count);
      if emit then begin
        if R.tracing () then
          for i = 0 to b.count - 1 do
            R.emit Qs_intf.Runtime_intf.Ev_free (N.id b.data.(i)) (-1)
          done;
        R.emit Qs_intf.Runtime_intf.Ev_bag_free b.count (-1)
      end
    end

  let drop_ref h b =
    if R.fetch_and_add b.nref (-1) = 1 then free_batch h b

  let rec drop_chain h = function
    | Cnil -> ()
    | Ccons (b, rest) ->
      drop_ref h b;
      drop_chain h rest

  (* -- enter / leave ------------------------------------------------- *)

  (* Leave: claim the whole slot back with one CAS (so a concurrent
     insertion either landed on the chain we now own, or failed and was
     compensated by its sealer), then drop one reference per captured
     insertion. The walk is the scheme's only per-operation reclamation
     work: one fetch-and-add per batch retired against us while we were
     inside — allocation-free. *)
  let rec leave h =
    let cell = h.owner.slots.(h.pid) in
    match R.get cell with
    | Inactive -> ()
    | Active ch as cur ->
      if R.cas cell cur Inactive then drop_chain h ch else leave h

  let clear_hps h = leave h

  (* Hyaline protects by session membership, not per-pointer publication;
     rule 2 is a no-op. *)
  let assign_hp _ ~slot:_ _ = ()

  (* -- sealing (the insertion protocol) ------------------------------ *)

  let rec insert_into h b cell =
    match R.get cell with
    | Inactive -> ()
    | Active ch as cur ->
      (* count the reference before publication: a leaver may claim and
         decrement the instant the CAS lands, and finding [nref] already
         accounted keeps it from dropping to zero early. On CAS failure
         (owner left between read and push) compensate; the sealer's
         creator reference keeps the count positive, so compensation can
         never be the zero-crossing. *)
      ignore (R.fetch_and_add b.nref 1 : int);
      if not (R.cas cell cur (Active (Ccons (b, ch)))) then begin
        ignore (R.fetch_and_add b.nref (-1) : int);
        insert_into h b cell
      end

  let seal h =
    let t = h.owner in
    let b =
      { data = h.open_data;
        count = h.open_count;
        nref = R.atomic 1;
        freed = Stdlib.Atomic.make false }
    in
    h.open_data <- Array.make t.capacity t.dummy;
    h.open_count <- 0;
    registry_push t b;
    R.emit Qs_intf.Runtime_intf.Ev_bag_seal b.count (-1);
    Array.iter (fun cell -> insert_into h b cell) t.slots;
    (* drop the creator reference; if no slot was active the batch frees
       right here — no reader could hold its nodes *)
    drop_ref h b

  (* Append without the retire-path ceremony: used for adopted orphan
     nodes, whose retire was already counted (and emitted) by the donor. *)
  let stash h n =
    h.open_data.(h.open_count) <- n;
    h.open_count <- h.open_count + 1;
    if h.open_count = h.owner.capacity then seal h

  (* -- the three-call interface -------------------------------------- *)

  let adopt_orphans h =
    let t = h.owner in
    if not (Orphan_pool.is_empty t.orphans) then
      match Orphan_pool.take t.orphans with
      | None -> ()
      | Some e ->
        Array.iter (fun n -> stash h n) e.Orphan_pool.payload;
        R.emit Qs_intf.Runtime_intf.Ev_adopt e.Orphan_pool.nodes
          e.Orphan_pool.donor

  (* Enter. If the slot is still [Active] — the previous operation was
     aborted (arena exhaustion, neutralization fault) before [clear_hps]
     ran — leave first: entering over a live chain would strand its
     references until the next clean leave. *)
  let manage_state h =
    R.hook Qs_intf.Runtime_intf.Hook_quiesce;
    let t = h.owner in
    let cell = t.slots.(h.pid) in
    (match R.get cell with Inactive -> () | Active _ -> leave h);
    R.set cell h.active_nil;
    adopt_orphans h

  let retire h n =
    R.hook Qs_intf.Runtime_intf.Hook_retire;
    h.retires <- h.retires + 1;
    meta_add h.owner.outstanding 1;
    let now = Stdlib.Atomic.get h.owner.outstanding in
    meta_max h.owner.peak now;
    R.emit Qs_intf.Runtime_intf.Ev_retire (N.id n) now;
    stash h n

  (* Dynamic membership. Sealed batches need no handover — they free
     themselves through their reference counts wherever the holders run —
     so a departing handle only donates its {e open} (unsealed) nodes,
     exercising the orphan-adoption path the other schemes share. Must be
     called in process context (the final leave-walk touches the slot). *)
  let unregister h =
    let t = h.owner in
    leave h;
    let donated = h.open_count in
    let nodes = Array.sub h.open_data 0 h.open_count in
    h.open_count <- 0;
    Orphan_pool.donate t.orphans ~donor:h.pid ~nodes:donated nodes;
    t.legacy_retires <- t.legacy_retires + h.retires;
    t.legacy_frees <- t.legacy_frees + h.frees;
    h.retires <- 0;
    h.frees <- 0;
    t.handles.(h.pid) <- None;
    R.emit Qs_intf.Runtime_intf.Ev_unregister h.pid donated

  (* Teardown: free the open batch, every unclaimed registered batch and
     any undonated orphans — workers are stopped, so reference counts no
     longer matter and the claim flags make this idempotent across
     handles. No slot access (no process context required). *)
  let flush h =
    let t = h.owner in
    for i = 0 to h.open_count - 1 do
      t.free h.open_data.(i);
      h.frees <- h.frees + 1;
      meta_add t.outstanding (-1)
    done;
    h.open_count <- 0;
    List.iter (fun b -> free_batch ~emit:false h b)
      (Stdlib.Atomic.get t.registry);
    List.iter
      (fun (e : _ Orphan_pool.entry) ->
        Array.iter
          (fun n ->
            t.free n;
            t.legacy_frees <- t.legacy_frees + 1;
            meta_add t.outstanding (-1))
          e.Orphan_pool.payload)
      (Orphan_pool.drain t.orphans)

  let fold t f =
    Array.fold_left
      (fun acc -> function None -> acc | Some h -> acc + f h)
      0 t.handles

  let stats t =
    { Smr_intf.zero_stats with
      retires = fold t (fun h -> h.retires) + t.legacy_retires;
      frees = fold t (fun h -> h.frees) + t.legacy_frees;
      retired_now = retired_count t;
      retired_peak = Stdlib.Atomic.get t.peak }
end
