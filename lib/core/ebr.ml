(* Epoch-based reclamation (Fraser-style EBR — the paper's §8 "epoch-based
   techniques" [13, 14, 23]), included as an additional baseline.

   Where QSBR declares quiescence BETWEEN batches of operations, EBR
   brackets each operation: a process is "active" (pinned to its observed
   epoch) for the duration of one operation and inactive in between. The
   global epoch can advance as soon as every ACTIVE process has observed
   it, so — unlike QSBR — a process that stalls between operations does not
   block reclamation. A process that stalls inside an operation still
   does: EBR narrows, but does not close, the robustness gap that QSense's
   fallback path closes.

   Integration piggybacks on the standard three-call interface:
   [manage_state] (top of every operation) = enter the critical region;
   [clear_hps] (end of every operation, where hazard-pointer schemes drop
   protection) = leave it.

   Hot-path discipline: batched-bag limbo lists by default ({!Qs_util.Bag}
   via the {!Qs_util.Limbo} switch; allocation-free [retire], whole-bag
   frees on epoch expiry, the vec reference behind
   [config.limbo_bags = false]); padded per-process epoch slots —
   [clear_hps] writes the slot on every single operation, making it the
   most false-sharing-sensitive cell in the scheme. *)

module Limbo = Qs_util.Limbo

module Make (R : Qs_intf.Runtime_intf.RUNTIME) (N : Smr_intf.NODE) = struct
  type node = N.t

  type t = {
    cfg : Smr_intf.config;
    free : node -> unit;
    free_bulk : node array -> int -> unit;
    global : int R.atomic;
    (* local.(pid): -1 when inactive, else the epoch pinned by the
       in-flight operation *)
    locals : int R.atomic array;
    dummy : node;
    handles : handle option array;
    orphans : node Limbo.t array Orphan_pool.t;
    mutable legacy_retires : int;
    mutable legacy_frees : int;
    mutable legacy_epoch_advances : int;
    mutable legacy_retired_peak : int;
        (* counters folded out of handles destroyed by {!unregister} *)
  }

  and handle = {
    owner : t;
    pid : int;
    mutable lsrc : node Limbo.source;
    mutable limbo : node Limbo.Triple.t;
    mutable last_epoch : int; (* last epoch this process was pinned to *)
    mutable ops : int;
    mutable retires : int;
    mutable frees : int;
    mutable epoch_advances : int;
    mutable retired_peak : int;
    (* preallocated reclamation callbacks; the [flush_*] pair skips event
       emission (teardown may run outside process context) *)
    free_node : node -> unit;
    free_bag : node array -> int -> unit;
    flush_node : node -> unit;
    flush_bag : node array -> int -> unit;
  }

  let name = "ebr"

  let create ?free_bulk (cfg : Smr_intf.config) ~dummy ~free =
    let free_bulk =
      match free_bulk with
      | Some f -> f
      | None ->
        fun data count ->
          for i = 0 to count - 1 do
            free data.(i)
          done
    in
    { cfg;
      free;
      free_bulk;
      global = R.atomic_padded 0;
      locals = Array.init cfg.n_processes (fun _ -> R.atomic_padded (-1));
      dummy;
      handles = Array.make cfg.n_processes None;
      orphans = Orphan_pool.create ();
      legacy_retires = 0;
      legacy_frees = 0;
      legacy_epoch_advances = 0;
      legacy_retired_peak = 0 }

  let limbo_source t =
    Limbo.source ~bags:t.cfg.limbo_bags ~capacity:t.cfg.bag_capacity t.dummy

  let register t ~pid =
    let lsrc = limbo_source t in
    let rec h =
      { owner = t;
        pid;
        lsrc;
        limbo = Limbo.Triple.create lsrc;
        last_epoch = -1;
        ops = 0;
        retires = 0;
        frees = 0;
        epoch_advances = 0;
        retired_peak = 0;
        free_node =
          (fun n ->
            t.free n;
            h.frees <- h.frees + 1;
            R.emit Qs_intf.Runtime_intf.Ev_free (N.id n) (-1));
        free_bag =
          (fun data count ->
            t.free_bulk data count;
            h.frees <- h.frees + count;
            (* one tracing check per bag instead of one dead emit per node *)
            if R.tracing () then
              for i = 0 to count - 1 do
                R.emit Qs_intf.Runtime_intf.Ev_free (N.id data.(i)) (-1)
              done;
            R.emit Qs_intf.Runtime_intf.Ev_bag_free count (-1));
        flush_node =
          (fun n ->
            t.free n;
            h.frees <- h.frees + 1);
        flush_bag =
          (fun data count ->
            t.free_bulk data count;
            h.frees <- h.frees + count) }
    in
    t.handles.(pid) <- Some h;
    h

  (* [emit = false] on the teardown path ([flush]), which may run outside
     process context where performing the emit effect is illegal. *)
  let free_epoch ?(emit = true) h e =
    let v = h.limbo.(e) in
    if emit then Limbo.drain v ~free_node:h.free_node ~free_bag:h.free_bag
    else Limbo.drain v ~free_node:h.flush_node ~free_bag:h.flush_bag

  (* Every process is either inactive or pinned to [eg]. *)
  let all_on t eg =
    let n = Array.length t.locals in
    let rec go i =
      i >= n
      ||
      let l = R.get t.locals.(i) in
      (l = -1 || l = eg) && go (i + 1)
    in
    go 0

  (* Adoption: splice one orphaned limbo triple into the epoch list we
     just freed; it is freed on our next first-pin of [eg], a full epoch
     cycle (grace period) later — sound regardless of when the donor
     retired the nodes. Gated on the meta-level emptiness hint so runs
     without churn perform no extra runtime effects. *)
  let adopt_orphans h eg =
    let t = h.owner in
    if not (Orphan_pool.is_empty t.orphans) then
      match Orphan_pool.take t.orphans with
      | None -> ()
      | Some e ->
        Array.iter
          (fun v -> Limbo.splice_into ~src:v ~dst:h.limbo.(eg))
          e.Orphan_pool.payload;
        R.emit Qs_intf.Runtime_intf.Ev_adopt e.Orphan_pool.nodes
          e.Orphan_pool.donor

  (* Enter the critical region: pin the current global epoch; opportunistic
     epoch maintenance amortised over Q operations. *)
  let manage_state h =
    R.hook Qs_intf.Runtime_intf.Hook_quiesce;
    let t = h.owner in
    let eg = R.get t.global in
    R.set t.locals.(h.pid) eg;
    if h.last_epoch <> eg then begin
      (* first pin of epoch eg since the last cycle: our limbo list for eg
         holds nodes retired a full cycle ago, separated from the present by
         a grace period (every process has unpinned or repinned since) *)
      h.last_epoch <- eg;
      R.emit Qs_intf.Runtime_intf.Ev_quiesce eg 1;
      free_epoch h eg;
      adopt_orphans h eg
    end;
    h.ops <- h.ops + 1;
    if h.ops mod t.cfg.quiescence_threshold = 0 && all_on t eg then
      if R.cas t.global eg ((eg + 1) mod 3) then begin
        h.epoch_advances <- h.epoch_advances + 1;
        R.emit Qs_intf.Runtime_intf.Ev_epoch_advance ((eg + 1) mod 3) (-1)
      end

  (* Leave the critical region (called where HP schemes drop protection). *)
  let clear_hps h = R.set h.owner.locals.(h.pid) (-1)

  let assign_hp _ ~slot:_ _ = ()

  let total_limbo h = Limbo.Triple.total h.limbo

  let retire h n =
    R.hook Qs_intf.Runtime_intf.Hook_retire;
    let e =
      match R.get h.owner.locals.(h.pid) with
      | -1 -> R.get h.owner.global (* retire outside an operation *)
      | e -> e
    in
    let sealed = Limbo.push h.limbo.(e) n in
    h.retires <- h.retires + 1;
    let total = total_limbo h in
    if total > h.retired_peak then h.retired_peak <- total;
    R.emit Qs_intf.Runtime_intf.Ev_retire (N.id n) total;
    if sealed > 0 then R.emit Qs_intf.Runtime_intf.Ev_bag_seal sealed (-1)

  (* Dynamic membership. EBR needs no join protocol on re-registration:
     a vacated slot's [locals] cell holds -1, which is the ordinary
     "inactive" state, and a fresh handle re-pins on its very first
     [manage_state]. *)
  let unregister h =
    let t = h.owner in
    let donated = total_limbo h in
    let old = h.limbo in
    h.lsrc <- limbo_source t;
    h.limbo <- Limbo.Triple.create h.lsrc;
    R.set t.locals.(h.pid) (-1);
    Orphan_pool.donate t.orphans ~donor:h.pid ~nodes:donated old;
    t.legacy_retires <- t.legacy_retires + h.retires;
    t.legacy_frees <- t.legacy_frees + h.frees;
    t.legacy_epoch_advances <- t.legacy_epoch_advances + h.epoch_advances;
    t.legacy_retired_peak <- t.legacy_retired_peak + h.retired_peak;
    h.retires <- 0;
    h.frees <- 0;
    h.epoch_advances <- 0;
    h.retired_peak <- 0;
    t.handles.(h.pid) <- None;
    R.emit Qs_intf.Runtime_intf.Ev_unregister h.pid donated

  let flush h =
    for e = 0 to 2 do
      free_epoch ~emit:false h e
    done;
    let t = h.owner in
    List.iter
      (fun (e : _ Orphan_pool.entry) ->
        Array.iter
          (fun v ->
            Limbo.drain v
              ~free_node:(fun n ->
                t.free n;
                t.legacy_frees <- t.legacy_frees + 1)
              ~free_bag:(fun data count ->
                t.free_bulk data count;
                t.legacy_frees <- t.legacy_frees + count))
          e.Orphan_pool.payload)
      (Orphan_pool.drain t.orphans)

  let fold t f =
    Array.fold_left
      (fun acc -> function None -> acc | Some h -> acc + f h)
      0 t.handles

  let retired_count t = fold t total_limbo + Orphan_pool.node_count t.orphans

  let stats t =
    { Smr_intf.zero_stats with
      retires = fold t (fun h -> h.retires) + t.legacy_retires;
      frees = fold t (fun h -> h.frees) + t.legacy_frees;
      epoch_advances =
        fold t (fun h -> h.epoch_advances) + t.legacy_epoch_advances;
      retired_now = retired_count t;
      retired_peak =
        fold t (fun h -> h.retired_peak) + t.legacy_retired_peak }
end
