(* Cadence (§5.1): hazard pointers without the per-node publication fence,
   made safe by rooster processes plus deferred reclamation.

   - [assign_hp] is a plain store, no barrier. Its visibility to reclaimers
     is bounded by the rooster interval T: every core's store buffer is
     drained at least every T (+ oversleep) time units by a rooster-induced
     context switch.
   - [retire] records the node with a timestamp (Algorithm 3's
     [timestamped_node] — here a parallel array, not a wrapper record). A
     scan frees a node only when it is old enough — [age >= T + epsilon] —
     because by then any hazard pointer that could protect it (necessarily
     written before the node was removed, by Condition 1) has become
     visible, so the ordinary HP check suffices.

   Hot-path discipline: [retire] is allocation- and syscall-free — the
   timestamp comes from the runtime's coarse clock ([R.now_coarse], an
   atomic load refreshed by the roosters) and the node lands in a
   timestamped vector. Scans compact that vector in place against a
   reusable sorted-id snapshot of the hazard pointers. The coarse
   timestamp understates the removal time by at most one rooster period;
   DESIGN.md ("Hot-path discipline") gives the accounting that keeps the
   deferral sound.

   Cadence is usable stand-alone (this module) and as QSense's fallback
   path ({!Qsense} re-implements the merged version over the limbo lists).
   The runtime must run roosters with interval <= [cfg.rooster_interval]:
   simulator config [rooster_interval], or {!Qs_real.Roosters.start}. *)

module Make (R : Qs_intf.Runtime_intf.RUNTIME) (N : Smr_intf.NODE) = struct
  type node = N.t

  module Hp = Hp_array.Make (R) (N)

  type t = {
    cfg : Smr_intf.config;
    scan_threshold_eff : int; (* adaptive: max(R, ceil(scan_factor * N * K)) *)
    hp : Hp.t;
    free : node -> unit;
    dummy : node;
    handles : handle option array;
  }

  and handle = {
    owner : t;
    pid : int;
    rlist : node Qs_util.Vec.Ts.t;
    scan_set : Hp.scan_set;
    mutable retires : int;
    mutable frees : int;
    mutable scans : int;
    mutable retired_peak : int;
  }

  let name = "cadence"

  let create (cfg : Smr_intf.config) ~dummy ~free =
    { cfg;
      scan_threshold_eff = Smr_intf.effective_scan_threshold cfg;
      hp = Hp.create ~n:cfg.n_processes ~k:cfg.hp_per_process ~dummy;
      free;
      dummy;
      handles = Array.make cfg.n_processes None }

  let register t ~pid =
    let h =
      { owner = t;
        pid;
        rlist = Qs_util.Vec.Ts.create t.dummy;
        scan_set = Hp.scan_set t.hp;
        retires = 0;
        frees = 0;
        scans = 0;
        retired_peak = 0 }
    in
    t.handles.(pid) <- Some h;
    h

  let manage_state _ = ()

  (* No memory barrier here — the point of the scheme. *)
  let assign_hp h ~slot n = Hp.assign h.owner.hp ~pid:h.pid ~slot n

  let clear_hps h = Hp.clear h.owner.hp ~pid:h.pid

  let is_old_enough t ~now ts =
    now - ts >= t.cfg.rooster_interval + t.cfg.epsilon

  let scan h =
    R.hook Qs_intf.Runtime_intf.Hook_scan;
    let t = h.owner in
    h.scans <- h.scans + 1;
    let before = Qs_util.Vec.Ts.length h.rlist in
    R.emit Qs_intf.Runtime_intf.Ev_scan_begin before (-1);
    let now = R.now_coarse () in
    Hp.snapshot_into t.hp h.scan_set;
    Qs_util.Vec.Ts.filter_in_place h.rlist (fun n ts ->
        if is_old_enough t ~now ts && not (Hp.protects_set h.scan_set n) then begin
          t.free n;
          h.frees <- h.frees + 1;
          (* [now - ts] is the exact quantity the age check passed on —
             Ev_free.b is the node's age at free, the paper's T + epsilon
             floor observed empirically. *)
          R.emit Qs_intf.Runtime_intf.Ev_free (N.id n) (now - ts);
          false
        end
        else true);
    let kept = Qs_util.Vec.Ts.length h.rlist in
    R.emit Qs_intf.Runtime_intf.Ev_scan_end (before - kept) kept

  let retire h n =
    R.hook Qs_intf.Runtime_intf.Hook_retire;
    Qs_util.Vec.Ts.push h.rlist n (R.now_coarse ());
    h.retires <- h.retires + 1;
    let rcount = Qs_util.Vec.Ts.length h.rlist in
    if rcount > h.retired_peak then h.retired_peak <- rcount;
    R.emit Qs_intf.Runtime_intf.Ev_retire (N.id n) rcount;
    if h.retires mod h.owner.scan_threshold_eff = 0 then scan h

  let flush h =
    Qs_util.Vec.Ts.iter
      (fun n _ts ->
        h.owner.free n;
        h.frees <- h.frees + 1)
      h.rlist;
    Qs_util.Vec.Ts.clear h.rlist

  let fold t f =
    Array.fold_left
      (fun acc -> function None -> acc | Some h -> acc + f h)
      0 t.handles

  let retired_count t = fold t (fun h -> Qs_util.Vec.Ts.length h.rlist)

  let stats t =
    { Smr_intf.zero_stats with
      retires = fold t (fun h -> h.retires);
      frees = fold t (fun h -> h.frees);
      scans = fold t (fun h -> h.scans);
      retired_now = retired_count t;
      retired_peak = fold t (fun h -> h.retired_peak);
      scan_threshold_eff = t.scan_threshold_eff }
end
