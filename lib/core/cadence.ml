(* Cadence (§5.1): hazard pointers without the per-node publication fence,
   made safe by rooster processes plus deferred reclamation.

   - [assign_hp] is a plain store, no barrier. Its visibility to reclaimers
     is bounded by the rooster interval T: every core's store buffer is
     drained at least every T (+ oversleep) time units by a rooster-induced
     context switch.
   - [retire] records the node with a timestamp (Algorithm 3's
     [timestamped_node] — here a parallel array, not a wrapper record). A
     scan frees a node only when it is old enough — [age >= T + epsilon] —
     because by then any hazard pointer that could protect it (necessarily
     written before the node was removed, by Condition 1) has become
     visible, so the ordinary HP check suffices.

   Hot-path discipline: [retire] is allocation- and syscall-free — the
   timestamp comes from the runtime's coarse clock ([R.now_coarse], an
   atomic load refreshed by the roosters) and the node lands in a
   timestamped vector. Scans compact that vector in place against a
   reusable sorted-id snapshot of the hazard pointers. The coarse
   timestamp understates the removal time by at most one rooster period;
   DESIGN.md ("Hot-path discipline") gives the accounting that keeps the
   deferral sound.

   Cadence is usable stand-alone (this module) and as QSense's fallback
   path ({!Qsense} re-implements the merged version over the limbo lists).
   The runtime must run roosters with interval <= [cfg.rooster_interval]:
   simulator config [rooster_interval], or {!Qs_real.Roosters.start}. *)

module Make (R : Qs_intf.Runtime_intf.RUNTIME) (N : Smr_intf.NODE) = struct
  type node = N.t

  module Hp = Hp_array.Make (R) (N)

  type t = {
    cfg : Smr_intf.config;
    scan_threshold_eff : int; (* adaptive: max(R, ceil(scan_factor * N * K)) *)
    hp : Hp.t;
    free : node -> unit;
    dummy : node;
    handles : handle option array;
    orphans : node Qs_util.Vec.Ts.t Orphan_pool.t;
    mutable legacy_retires : int;
    mutable legacy_frees : int;
    mutable legacy_scans : int;
    mutable legacy_retired_peak : int;
        (* counters folded out of handles destroyed by {!unregister} *)
  }

  and handle = {
    owner : t;
    pid : int;
    mutable rlist : node Qs_util.Vec.Ts.t;
    scan_set : Hp.scan_set;
    mutable retires : int;
    mutable frees : int;
    mutable scans : int;
    mutable retired_peak : int;
  }

  let name = "cadence"

  let create (cfg : Smr_intf.config) ~dummy ~free =
    { cfg;
      scan_threshold_eff = Smr_intf.effective_scan_threshold cfg;
      hp = Hp.create ~n:cfg.n_processes ~k:cfg.hp_per_process ~dummy;
      free;
      dummy;
      handles = Array.make cfg.n_processes None;
      orphans = Orphan_pool.create ();
      legacy_retires = 0;
      legacy_frees = 0;
      legacy_scans = 0;
      legacy_retired_peak = 0 }

  let register t ~pid =
    let h =
      { owner = t;
        pid;
        rlist = Qs_util.Vec.Ts.create t.dummy;
        scan_set = Hp.scan_set t.hp;
        retires = 0;
        frees = 0;
        scans = 0;
        retired_peak = 0 }
    in
    t.handles.(pid) <- Some h;
    h

  let manage_state _ = ()

  (* No memory barrier here — the point of the scheme. *)
  let assign_hp h ~slot n = Hp.assign h.owner.hp ~pid:h.pid ~slot n

  let clear_hps h = Hp.clear h.owner.hp ~pid:h.pid

  let is_old_enough t ~now ts =
    now - ts >= t.cfg.rooster_interval + t.cfg.epsilon

  (* Adoption: splice one orphaned timestamped list into our own just
     before a scan, original retire timestamps preserved. The adopted
     nodes then pass through exactly the HP + age filter below — the
     filter the scheme's own safety argument rests on: any hazard that
     could protect an orphaned node was published before its removal and
     is visible within T + epsilon of the (preserved) retire timestamp.
     No grace period is needed. Gated on the meta-level emptiness hint so
     runs without churn perform no extra runtime effects. *)
  let adopt_orphans h =
    let t = h.owner in
    if not (Orphan_pool.is_empty t.orphans) then
      match Orphan_pool.take t.orphans with
      | None -> ()
      | Some e ->
        Qs_util.Vec.Ts.iter
          (fun n ts -> Qs_util.Vec.Ts.push h.rlist n ts)
          e.Orphan_pool.payload;
        Qs_util.Vec.Ts.clear e.Orphan_pool.payload;
        R.emit Qs_intf.Runtime_intf.Ev_adopt e.Orphan_pool.nodes
          e.Orphan_pool.donor

  let scan h =
    R.hook Qs_intf.Runtime_intf.Hook_scan;
    adopt_orphans h;
    let t = h.owner in
    h.scans <- h.scans + 1;
    let before = Qs_util.Vec.Ts.length h.rlist in
    R.emit Qs_intf.Runtime_intf.Ev_scan_begin before (-1);
    let now = R.now_coarse () in
    Hp.snapshot_into t.hp h.scan_set;
    Qs_util.Vec.Ts.filter_in_place h.rlist (fun n ts ->
        if is_old_enough t ~now ts && not (Hp.protects_set h.scan_set n) then begin
          t.free n;
          h.frees <- h.frees + 1;
          (* [now - ts] is the exact quantity the age check passed on —
             Ev_free.b is the node's age at free, the paper's T + epsilon
             floor observed empirically. *)
          R.emit Qs_intf.Runtime_intf.Ev_free (N.id n) (now - ts);
          false
        end
        else true);
    let kept = Qs_util.Vec.Ts.length h.rlist in
    R.emit Qs_intf.Runtime_intf.Ev_scan_end (before - kept) kept

  let retire h n =
    R.hook Qs_intf.Runtime_intf.Hook_retire;
    Qs_util.Vec.Ts.push h.rlist n (R.now_coarse ());
    h.retires <- h.retires + 1;
    let rcount = Qs_util.Vec.Ts.length h.rlist in
    if rcount > h.retired_peak then h.retired_peak <- rcount;
    R.emit Qs_intf.Runtime_intf.Ev_retire (N.id n) rcount;
    if h.retires mod h.owner.scan_threshold_eff = 0 then scan h

  (* Dynamic membership: clear the slot's hazard pointers with a fence —
     Cadence's [assign_hp] is deliberately unfenced, but this is a cold
     path, and prompt visibility of the cleared slots keeps survivors
     from retaining orphans against stale hazards — then donate the
     timestamped list and release the pid. *)
  let unregister h =
    let t = h.owner in
    Hp.clear t.hp ~pid:h.pid;
    R.fence ();
    let donated = Qs_util.Vec.Ts.length h.rlist in
    let old = h.rlist in
    h.rlist <- Qs_util.Vec.Ts.create t.dummy;
    Orphan_pool.donate t.orphans ~donor:h.pid ~nodes:donated old;
    t.legacy_retires <- t.legacy_retires + h.retires;
    t.legacy_frees <- t.legacy_frees + h.frees;
    t.legacy_scans <- t.legacy_scans + h.scans;
    t.legacy_retired_peak <- t.legacy_retired_peak + h.retired_peak;
    h.retires <- 0;
    h.frees <- 0;
    h.scans <- 0;
    h.retired_peak <- 0;
    t.handles.(h.pid) <- None;
    R.emit Qs_intf.Runtime_intf.Ev_unregister h.pid donated

  let flush h =
    Qs_util.Vec.Ts.iter
      (fun n _ts ->
        h.owner.free n;
        h.frees <- h.frees + 1)
      h.rlist;
    Qs_util.Vec.Ts.clear h.rlist;
    let t = h.owner in
    List.iter
      (fun (e : _ Orphan_pool.entry) ->
        Qs_util.Vec.Ts.iter
          (fun n _ts ->
            t.free n;
            t.legacy_frees <- t.legacy_frees + 1)
          e.Orphan_pool.payload;
        Qs_util.Vec.Ts.clear e.Orphan_pool.payload)
      (Orphan_pool.drain t.orphans)

  let fold t f =
    Array.fold_left
      (fun acc -> function None -> acc | Some h -> acc + f h)
      0 t.handles

  let retired_count t =
    fold t (fun h -> Qs_util.Vec.Ts.length h.rlist)
    + Orphan_pool.node_count t.orphans

  let stats t =
    { Smr_intf.zero_stats with
      retires = fold t (fun h -> h.retires) + t.legacy_retires;
      frees = fold t (fun h -> h.frees) + t.legacy_frees;
      scans = fold t (fun h -> h.scans) + t.legacy_scans;
      retired_now = retired_count t;
      retired_peak =
        fold t (fun h -> h.retired_peak) + t.legacy_retired_peak;
      scan_threshold_eff = t.scan_threshold_eff }
end
