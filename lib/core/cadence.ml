(* Cadence (§5.1): hazard pointers without the per-node publication fence,
   made safe by rooster processes plus deferred reclamation.

   - [assign_hp] is a plain store, no barrier. Its visibility to reclaimers
     is bounded by the rooster interval T: every core's store buffer is
     drained at least every T (+ oversleep) time units by a rooster-induced
     context switch.
   - [retire] records the node with a timestamp (Algorithm 3's
     [timestamped_node] — here a parallel array, not a wrapper record). A
     scan frees a node only when it is old enough — [age >= T + epsilon] —
     because by then any hazard pointer that could protect it (necessarily
     written before the node was removed, by Condition 1) has become
     visible, so the ordinary HP check suffices.

   Hot-path discipline: [retire] is allocation- and syscall-free — the
   timestamp comes from the runtime's coarse clock ([R.now_coarse], an
   atomic load refreshed by the roosters) and the node lands in a
   timestamped limbo bag by default ({!Qs_util.Bag.Ts} via the
   {!Qs_util.Limbo.Ts} switch; the vec reference stays behind
   [config.limbo_bags = false]). A bag is stamped once when it seals —
   with its newest timestamp, the bag's maximum under the monotone coarse
   clock — so a scan walks sealed bags oldest-first, pays ONE age check
   per bag, stops at the first too-young bag, and returns each expired
   bag to the arena in one bulk call, filtering only hazard-protected
   survivors into fresh bags. The coarse timestamp understates the
   removal time by at most one rooster period; DESIGN.md ("Hot-path
   discipline") gives the accounting that keeps the deferral sound, and
   DESIGN.md §11 the bag-walk argument.

   Cadence is usable stand-alone (this module) and as QSense's fallback
   path ({!Qsense} re-implements the merged version over the limbo lists).
   The runtime must run roosters with interval <= [cfg.rooster_interval]:
   simulator config [rooster_interval], or {!Qs_real.Roosters.start}. *)

module Limbo = Qs_util.Limbo

module Make (R : Qs_intf.Runtime_intf.RUNTIME) (N : Smr_intf.NODE) = struct
  type node = N.t

  module Hp = Hp_array.Make (R) (N)

  type t = {
    cfg : Smr_intf.config;
    scan_threshold_eff : int; (* adaptive: max(R, ceil(scan_factor * N * K)) *)
    hp : Hp.t;
    free : node -> unit;
    free_bulk : node array -> int -> unit;
    dummy : node;
    handles : handle option array;
    orphans : node Limbo.Ts.t Orphan_pool.t;
    mutable legacy_retires : int;
    mutable legacy_frees : int;
    mutable legacy_scans : int;
    mutable legacy_retired_peak : int;
        (* counters folded out of handles destroyed by {!unregister} *)
  }

  and handle = {
    owner : t;
    pid : int;
    mutable lsrc : node Limbo.Ts.source;
    mutable rlist : node Limbo.Ts.t;
    scan_set : Hp.scan_set;
    mutable retires : int;
    mutable until_scan : int;
        (* retires left before the next threshold scan — a countdown so the
           per-retire check is a decrement, not a [mod] (64-bit division)
           on the hot path *)
    mutable frees : int;
    mutable scans : int;
    mutable retired_peak : int;
    mutable scan_now : int;
        (* the scan's single [now_coarse] read, hoisted into the handle so
           the preallocated filter closures capture no per-scan state *)
    vec_filter : node -> int -> bool;
    age_ok : int -> bool;
    keep : node -> bool;
    free_bag : node array -> int array -> int -> int -> unit;
    flush_bag : node array -> int array -> int -> int -> unit;
  }

  let name = "cadence"

  let create ?free_bulk (cfg : Smr_intf.config) ~dummy ~free =
    let free_bulk =
      match free_bulk with
      | Some f -> f
      | None ->
        fun data count ->
          for i = 0 to count - 1 do
            free data.(i)
          done
    in
    { cfg;
      scan_threshold_eff = Smr_intf.effective_scan_threshold cfg;
      hp = Hp.create ~n:cfg.n_processes ~k:cfg.hp_per_process ~dummy;
      free;
      free_bulk;
      dummy;
      handles = Array.make cfg.n_processes None;
      orphans = Orphan_pool.create ();
      legacy_retires = 0;
      legacy_frees = 0;
      legacy_scans = 0;
      legacy_retired_peak = 0 }

  let limbo_source t =
    Limbo.Ts.source ~bags:t.cfg.limbo_bags ~capacity:t.cfg.bag_capacity
      t.dummy

  let register t ~pid =
    let lsrc = limbo_source t in
    let age = t.cfg.rooster_interval + t.cfg.epsilon in
    let rec h =
      { owner = t;
        pid;
        lsrc;
        rlist = Limbo.Ts.create lsrc;
        scan_set = Hp.scan_set t.hp;
        retires = 0;
        until_scan = t.scan_threshold_eff;
        frees = 0;
        scans = 0;
        retired_peak = 0;
        scan_now = 0;
        vec_filter =
          (fun n ts ->
            if
              h.scan_now - ts >= age && not (Hp.protects_set h.scan_set n)
            then begin
              t.free n;
              h.frees <- h.frees + 1;
              (* [now - ts] is the exact quantity the age check passed on —
                 Ev_free.b is the node's age at free, the paper's T + epsilon
                 floor observed empirically. *)
              R.emit Qs_intf.Runtime_intf.Ev_free (N.id n) (h.scan_now - ts);
              false
            end
            else true);
        age_ok = (fun stamp -> h.scan_now - stamp >= age);
        keep = (fun n -> Hp.protects_set h.scan_set n);
        free_bag =
          (fun data ts count stamp ->
            t.free_bulk data count;
            h.frees <- h.frees + count;
            (* one tracing check per bag instead of one dead emit per
               node; Ev_free.b stays the exact age at free when traced *)
            if R.tracing () then
              for i = 0 to count - 1 do
                R.emit Qs_intf.Runtime_intf.Ev_free (N.id data.(i))
                  (h.scan_now - ts.(i))
              done;
            R.emit Qs_intf.Runtime_intf.Ev_bag_free count
              (h.scan_now - stamp));
        flush_bag =
          (fun data _ts count _stamp ->
            t.free_bulk data count;
            h.frees <- h.frees + count) }
    in
    t.handles.(pid) <- Some h;
    h

  let manage_state _ = ()

  (* No memory barrier here — the point of the scheme. *)
  let assign_hp h ~slot n = Hp.assign h.owner.hp ~pid:h.pid ~slot n

  let clear_hps h = Hp.clear h.owner.hp ~pid:h.pid

  (* Adoption: splice one orphaned timestamped list into our own just
     before a scan, original retire timestamps preserved. The adopted
     nodes then pass through exactly the HP + age filter below — the
     filter the scheme's own safety argument rests on: any hazard that
     could protect an orphaned node was published before its removal and
     is visible within T + epsilon of the (preserved) retire timestamp.
     No grace period is needed. Gated on the meta-level emptiness hint so
     runs without churn perform no extra runtime effects. *)
  let adopt_orphans h =
    let t = h.owner in
    if not (Orphan_pool.is_empty t.orphans) then
      match Orphan_pool.take t.orphans with
      | None -> ()
      | Some e ->
        Limbo.Ts.splice_into ~src:e.Orphan_pool.payload ~dst:h.rlist;
        R.emit Qs_intf.Runtime_intf.Ev_adopt e.Orphan_pool.nodes
          e.Orphan_pool.donor

  let scan h =
    R.hook Qs_intf.Runtime_intf.Hook_scan;
    adopt_orphans h;
    let t = h.owner in
    h.scans <- h.scans + 1;
    let before = Limbo.Ts.length h.rlist in
    R.emit Qs_intf.Runtime_intf.Ev_scan_begin before (-1);
    h.scan_now <- R.now_coarse ();
    Hp.snapshot_into t.hp h.scan_set;
    Limbo.Ts.scan h.rlist ~vec_filter:h.vec_filter ~age_ok:h.age_ok
      ~keep:h.keep ~free_bag:h.free_bag;
    let kept = Limbo.Ts.length h.rlist in
    R.emit Qs_intf.Runtime_intf.Ev_scan_end (before - kept) kept

  let retire h n =
    R.hook Qs_intf.Runtime_intf.Hook_retire;
    let sealed = Limbo.Ts.push h.rlist n (R.now_coarse ()) in
    h.retires <- h.retires + 1;
    let rcount = Limbo.Ts.length h.rlist in
    if rcount > h.retired_peak then h.retired_peak <- rcount;
    R.emit Qs_intf.Runtime_intf.Ev_retire (N.id n) rcount;
    if sealed > 0 then R.emit Qs_intf.Runtime_intf.Ev_bag_seal sealed (-1);
    h.until_scan <- h.until_scan - 1;
    if h.until_scan = 0 then begin
      h.until_scan <- h.owner.scan_threshold_eff;
      scan h
    end

  (* Dynamic membership: clear the slot's hazard pointers with a fence —
     Cadence's [assign_hp] is deliberately unfenced, but this is a cold
     path, and prompt visibility of the cleared slots keeps survivors
     from retaining orphans against stale hazards — then donate the
     timestamped list and release the pid. *)
  let unregister h =
    let t = h.owner in
    Hp.clear t.hp ~pid:h.pid;
    R.fence ();
    let donated = Limbo.Ts.length h.rlist in
    let old = h.rlist in
    h.lsrc <- limbo_source t;
    h.rlist <- Limbo.Ts.create h.lsrc;
    Orphan_pool.donate t.orphans ~donor:h.pid ~nodes:donated old;
    t.legacy_retires <- t.legacy_retires + h.retires;
    t.legacy_frees <- t.legacy_frees + h.frees;
    t.legacy_scans <- t.legacy_scans + h.scans;
    t.legacy_retired_peak <- t.legacy_retired_peak + h.retired_peak;
    h.retires <- 0;
    h.frees <- 0;
    h.scans <- 0;
    h.retired_peak <- 0;
    t.handles.(h.pid) <- None;
    R.emit Qs_intf.Runtime_intf.Ev_unregister h.pid donated

  let flush h =
    let t = h.owner in
    Limbo.Ts.drain h.rlist
      ~free_node:(fun n _ts ->
        t.free n;
        h.frees <- h.frees + 1)
      ~free_bag:h.flush_bag;
    List.iter
      (fun (e : _ Orphan_pool.entry) ->
        Limbo.Ts.drain e.Orphan_pool.payload
          ~free_node:(fun n _ts ->
            t.free n;
            t.legacy_frees <- t.legacy_frees + 1)
          ~free_bag:(fun data _ts count _stamp ->
            t.free_bulk data count;
            t.legacy_frees <- t.legacy_frees + count))
      (Orphan_pool.drain t.orphans)

  let fold t f =
    Array.fold_left
      (fun acc -> function None -> acc | Some h -> acc + f h)
      0 t.handles

  let retired_count t =
    fold t (fun h -> Limbo.Ts.length h.rlist)
    + Orphan_pool.node_count t.orphans

  let stats t =
    { Smr_intf.zero_stats with
      retires = fold t (fun h -> h.retires) + t.legacy_retires;
      frees = fold t (fun h -> h.frees) + t.legacy_frees;
      scans = fold t (fun h -> h.scans) + t.legacy_scans;
      retired_now = retired_count t;
      retired_peak =
        fold t (fun h -> h.retired_peak) + t.legacy_retired_peak;
      scan_threshold_eff = t.scan_threshold_eff }
end
