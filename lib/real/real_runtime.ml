(* RUNTIME over real OCaml 5 domains.

   Atomics are [Stdlib.Atomic]. Plain cells are single mutable fields; a
   cross-domain plain read is racy but memory-safe under the OCaml memory
   model and may observe a stale value — exactly the TSO store-buffer window
   the paper's Cadence closes with rooster processes and deferred
   reclamation. [fence] is an atomic exchange on a domain-local cell: on
   x86-64 this compiles to a [lock]-prefixed instruction, the same cost class
   as the [mfence] classic hazard pointers pay per traversed node. *)

type 'a atomic = 'a Atomic.t

let atomic = Atomic.make
let get = Atomic.get
let set = Atomic.set
let cas = Atomic.compare_and_set
let fetch_and_add = Atomic.fetch_and_add

type 'a plain = { mutable v : 'a }

let plain v = { v }
let read c = c.v
let write c x = c.v <- x

(* Best-effort false-sharing isolation. OCaml gives no control over object
   placement, but minor-heap allocation is sequential: surrounding a small
   cell with dummy blocks puts >= one cache line (64 B = 8 words) of slack
   between it and the cells allocated before/after it, so per-process epoch
   slots, presence flags and hazard-pointer rows allocated in a loop do not
   share lines. [Sys.opaque_identity] keeps the padding allocations from
   being optimised away; the pads themselves become garbage immediately,
   costing nothing after the next minor collection beyond the (one-time,
   creation-path) bump allocations. *)
let pad () = ignore (Sys.opaque_identity (Array.make 8 0))

let atomic_padded v =
  pad ();
  let c = Atomic.make v in
  pad ();
  c

let plain_padded v =
  pad ();
  let c = { v } in
  pad ();
  c

let fence_cell : int Atomic.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Atomic.make 0)

let fence () = ignore (Atomic.exchange (Domain.DLS.get fence_cell) 1)

let pid_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)
let register_self pid = Domain.DLS.set pid_key pid
let self () = Domain.DLS.get pid_key

let now () = int_of_float (Unix.gettimeofday () *. 1e9)
let yield () = Domain.cpu_relax ()

(* Labelled schedule points only drive the simulator's targeted schedule
   exploration; on real domains they are free. *)
let hook (_ : Qs_intf.Runtime_intf.hook) = ()

(* The coarse clock: an atomic cell refreshed by rooster domains
   ({!Qs_real.Roosters.start} calls {!publish_coarse} on every wake-up).
   Reading it is one atomic load — no syscall, no boxed-float allocation —
   which is what makes the retire path of the timestamped schemes
   allocation-free. Before any rooster has published, it falls back on the
   timestamp captured when this module was initialised; schemes that
   consume coarse timestamps (Cadence, QSense) require roosters anyway. *)
let coarse_clock = Atomic.make (now ())

let publish_coarse t = Atomic.set coarse_clock t
let now_coarse () = Atomic.get coarse_clock

(* Trace emission. The sink lives in a plain atomic; with tracing off,
   [emit] is one atomic load and a branch. Timestamps come from the coarse
   clock — [now] boxes a float via [gettimeofday], which would put an
   allocation on every traced hot-path event; the coarse clock is a single
   atomic load, and its lag (<= one rooster period, and roosters are
   running whenever the timestamped schemes are) is fine for timelines.
   [emit_pid] exists for rooster domains, which never [register_self]:
   they emit with pid [-1] and the tracer routes them to its system ring. *)
let sink : Qs_intf.Runtime_intf.sink option Atomic.t = Atomic.make None

let set_sink s = Atomic.set sink s

let emit_pid pid ev a b =
  match Atomic.get sink with
  | None -> ()
  | Some s -> s.Qs_intf.Runtime_intf.record ~pid ~time:(now_coarse ()) ~ev ~a ~b

let tracing () =
  match Atomic.get sink with None -> false | Some _ -> true

(* Neutralization on real domains is purely cooperative: OCaml gives no
   per-domain asynchronous signal delivery, so the scheme's poisoned flag
   (written by the neutralizer before this call, checked by the victim at
   protect/retire points) carries the whole signal — the signal-free
   fallback DEBRA+ describes for platforms without [pthread_kill]. This
   hook only exists for runtimes that can interrupt mid-flight operations
   (the simulator can); here the victim keeps its epoch pin until it
   acknowledges the restart itself, which is why
   [neutralize_is_preemptive] below is [false]. *)
let neutralize ~pid:_ = ()
let neutralize_is_preemptive = false

(* The sink check comes first so the pid lookup ([Domain.DLS.get]) is only
   paid when a sink is actually attached — retire/free emit on every node,
   so with tracing off this must really be one atomic load and a branch. *)
let emit ev a b =
  match Atomic.get sink with
  | None -> ()
  | Some s ->
    s.Qs_intf.Runtime_intf.record ~pid:(self ()) ~time:(now_coarse ()) ~ev ~a
      ~b
