(* Rooster processes for the real runtime.

   The paper pins one rooster per core; each sleeps for interval T and wakes
   up, forcing a context switch that drains the descheduled worker's store
   buffer. On stock x86 hardware store buffers drain within nanoseconds
   anyway; what the deferred-reclamation argument needs is a clock that
   everyone agrees on up to a small epsilon and the guarantee that a hazard
   pointer written before a node's removal is visible once the node is
   [T + epsilon] old. The rooster domains here keep a coarse shared clock
   ticking at a fraction of T, which gives Cadence cheap timestamps and lets
   tests observe rooster liveness; the visibility bound itself is provided
   by the hardware (sub-microsecond) and is therefore far inside any
   practical T. *)

type t = {
  stop : bool Atomic.t;
  coarse : int Atomic.t;
  wakeups : int Atomic.t;
  domains : unit Domain.t list;
}

let start ~interval_ns ~n =
  let stop = Atomic.make false in
  let coarse = Atomic.make (Real_runtime.now ()) in
  Real_runtime.publish_coarse (Atomic.get coarse);
  let wakeups = Atomic.make 0 in
  let tick_s = float_of_int interval_ns /. 1e9 in
  (* Sleep in sub-interval naps so [stop] is observed promptly: a rooster at
     a long T (hundreds of ms) must not make [stop] wait out a whole
     interval before joining. The publish cadence is unchanged — coarse
     clock, wakeup count and trace event still fire once per full [tick_s],
     only the interruptibility of the sleep improves. *)
  let nap_s = Float.max 0.000_5 (Float.min 0.005 (tick_s /. 8.)) in
  let body () =
    while not (Atomic.get stop) do
      let slept = ref 0. in
      while (not (Atomic.get stop)) && !slept < tick_s do
        let nap = Float.min nap_s (tick_s -. !slept) in
        Unix.sleepf nap;
        slept := !slept +. nap
      done;
      if not (Atomic.get stop) then begin
        let t = Real_runtime.now () in
        Atomic.set coarse t;
        (* feed the runtime-wide coarse clock consumed by
           [Real_runtime.now_coarse] — the allocation-free retire timestamp *)
        Real_runtime.publish_coarse t;
        Atomic.incr wakeups;
        (* Rooster domains are not registered workers: emit with pid -1,
           which the tracer routes to its system ring. *)
        Real_runtime.emit_pid (-1) Qs_intf.Runtime_intf.Ev_rooster_wake (-1)
          (-1)
      end
    done
  in
  let domains = List.init (max 1 n) (fun _ -> Domain.spawn body) in
  { stop; coarse; wakeups; domains }

let coarse_now t = Atomic.get t.coarse
let wakeups t = Atomic.get t.wakeups

let stop t =
  Atomic.set t.stop true;
  List.iter Domain.join t.domains
