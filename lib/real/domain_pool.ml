(* Spawn-and-join helper for worker domains. Each worker gets its process id
   registered in domain-local storage before the body runs, so that
   [Real_runtime.self] works inside the SMR schemes. *)

let run ~n f =
  let domains =
    List.init n (fun pid ->
        Domain.spawn (fun () ->
            Real_runtime.register_self pid;
            f pid))
  in
  Array.of_list (List.map Domain.join domains)

(* Worker churn at the domain level: each pid slot is driven by a
   controller domain that runs [generations] successive worker domains,
   sleeping [downtime_s] between them. Every generation is a genuinely
   fresh domain (new domain-local storage, new stack), so a slot's worker
   really leaves the computation and a different one later joins under the
   same pid — the body is expected to register/unregister its SMR slot at
   generation boundaries. Controllers block in [Domain.join], so the live
   worker count stays at [n]. *)
let run_generations ~n ~generations ?(downtime_s = 0.) f =
  let generations = max 1 generations in
  let controllers =
    List.init n (fun pid ->
        Domain.spawn (fun () ->
            let results = ref [] in
            for gen = 0 to generations - 1 do
              let d =
                Domain.spawn (fun () ->
                    Real_runtime.register_self pid;
                    f ~pid ~gen)
              in
              results := Domain.join d :: !results;
              if gen < generations - 1 && downtime_s > 0. then
                Unix.sleepf downtime_s
            done;
            List.rev !results))
  in
  Array.of_list (List.map Domain.join controllers)
