(** Worker-domain pool. *)

val run : n:int -> (int -> 'a) -> 'a array
(** [run ~n f] spawns [n] domains, runs [f pid] on each (with
    [Real_runtime.register_self pid] already done), joins them all and
    returns their results indexed by pid. *)

val run_generations :
  n:int ->
  generations:int ->
  ?downtime_s:float ->
  (pid:int -> gen:int -> 'a) ->
  'a list array
(** Worker churn: each pid slot runs [generations] successive worker
    domains — each one a fresh domain with [Real_runtime.register_self pid]
    already done — sleeping [downtime_s] between generations. The body is
    expected to handle SMR membership itself (register on entry, unregister
    on leaving; see {!Qs_smr.Smr_intf.S.unregister}). Returns the per-slot
    list of generation results, oldest first. *)
