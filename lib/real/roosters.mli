(** Rooster processes for the real runtime: background domains that wake up
    every [interval_ns], maintaining a coarse shared clock. Start them
    whenever Cadence or QSense runs on {!Real_runtime}; their wake-up count
    is observable for tests. *)

type t

val start : interval_ns:int -> n:int -> t
(** [start ~interval_ns ~n] spawns [n] rooster domains (one per core in the
    paper's setup). *)

val coarse_now : t -> int
(** Last wall-clock timestamp published by a rooster, in ns. *)

val wakeups : t -> int
(** Total rooster wake-ups so far. *)

val stop : t -> unit
(** Signal and join all rooster domains. Returns promptly — well under one
    [interval_ns] — because roosters sleep in small interruptible naps
    (the publish cadence itself stays at one per interval). *)
