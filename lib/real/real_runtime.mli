(** The {!Qs_intf.Runtime_intf.RUNTIME} instance over real OCaml 5 domains.

    Atomics map to [Stdlib.Atomic]; plain cells are racy-but-memory-safe
    mutable fields (stale reads possible, as under hardware TSO); [fence] is
    an atomic exchange — the cost analogue of x86 [mfence]; [now] is
    wall-clock nanoseconds. *)

include Qs_intf.Runtime_intf.RUNTIME

val register_self : int -> unit
(** Must be called once by each worker domain before it uses the library,
    with its process id in [0, n_processes). {!self} returns this id. *)

val publish_coarse : int -> unit
(** Refresh the coarse clock read by {!now_coarse}. Called by
    {!Qs_real.Roosters} on every rooster wake-up; tests may call it
    directly. Monotonicity is the publisher's responsibility. *)

val set_sink : Qs_intf.Runtime_intf.sink option -> unit
(** Install (or remove) the global trace sink fed by {!emit}. With no sink
    installed, {!emit} is one atomic load and a branch. Event timestamps
    come from the coarse clock ({!now_coarse}) so that traced events never
    allocate; run roosters for freshness. *)

val emit_pid : int -> Qs_intf.Runtime_intf.event -> int -> int -> unit
(** Like {!emit}, but with an explicit emitter id — used by rooster
    domains, which are not registered worker processes and emit with pid
    [-1] (routed to the tracer's system ring). *)
