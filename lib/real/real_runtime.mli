(** The {!Qs_intf.Runtime_intf.RUNTIME} instance over real OCaml 5 domains.

    Atomics map to [Stdlib.Atomic]; plain cells are racy-but-memory-safe
    mutable fields (stale reads possible, as under hardware TSO); [fence] is
    an atomic exchange — the cost analogue of x86 [mfence]; [now] is
    wall-clock nanoseconds. *)

include Qs_intf.Runtime_intf.RUNTIME

val register_self : int -> unit
(** Must be called once by each worker domain before it uses the library,
    with its process id in [0, n_processes). {!self} returns this id. *)

val publish_coarse : int -> unit
(** Refresh the coarse clock read by {!now_coarse}. Called by
    {!Qs_real.Roosters} on every rooster wake-up; tests may call it
    directly. Monotonicity is the publisher's responsibility. *)
