(** The shared-memory runtime abstraction.

    Every memory-reclamation scheme and every lock-free data structure in
    this repository is a functor over {!module-type:RUNTIME}. Two
    implementations exist:

    - {!Qs_sim.Sim_runtime} — a deterministic multicore simulator with a TSO
      (total-store-order) memory model: {e plain} writes go through a
      per-process store buffer and only become globally visible on a fence, a
      context switch, or buffer-capacity overflow. This runtime reproduces
      the reordering bug of the paper's Algorithm 2 and is the substrate for
      all figure reproductions.
    - {!Qs_real.Real_runtime} — real OCaml 5 domains. Atomics map to
      [Stdlib.Atomic]; plain cells map to racy-but-memory-safe mutable
      fields; [fence] maps to an atomic exchange (the cost analogue of
      x86 [mfence]).

    The two cell kinds mirror the distinction the paper's performance
    argument rests on:

    - {e atomics} are sequentially consistent locations used for data
      structure links, epochs and flags. CAS and SC stores drain the
      issuer's store buffer (as the x86 [lock] prefix does).
    - {e plain} cells are single-writer multi-reader locations used for
      hazard pointers. A plain write is cheap but its visibility to other
      processes is delayed — bounded only by fences, context switches
      (rooster processes!) and buffer capacity. *)

(** Labelled schedule points, performed by the SMR schemes at the
    boundaries an adversarial scheduler wants to interleave around:

    - [Hook_retire] — entry of [retire] (the paper's [free_node_later]);
    - [Hook_scan] — start of a hazard-pointer scan;
    - [Hook_quiesce] — a quiescent-state declaration / epoch adoption.

    On the real runtime {!RUNTIME.hook} is a no-op. On the simulator it is
    a zero-cost annotation that the {!Qs_sim.Scheduler}'s [Targeted]
    strategy can turn into an injected stall ("pause this process right as
    it is about to scan"), the schedule-exploration analogue of a
    breakpoint. It deliberately costs no virtual time and is {e not} a
    preemption point, so enabling hooks does not perturb schedules. *)
type hook = Hook_retire | Hook_scan | Hook_quiesce

(** Trace events, emitted by the SMR schemes at the state transitions the
    paper's claims quantify over. Each event carries two integer payloads
    [a] and [b]; the per-event conventions (unused slots carry [-1]):

    - [Ev_retire] — a node entered a limbo list. [a] = node id, [b] = limbo
      depth of the retiring process after the push.
    - [Ev_free] — a node left limbo and was recycled. [a] = node id, [b] =
      age at free in clock units when the scheme's reclamation test already
      had both timestamps in hand (Cadence's [now - ts]), else [-1] (the
      age is then recovered offline by joining against the node's
      [Ev_retire]).
    - [Ev_scan_begin] — a hazard-pointer scan started. [a] = limbo size
      about to be scanned.
    - [Ev_scan_end] — the scan finished. [a] = nodes freed, [b] = nodes
      kept.
    - [Ev_epoch_advance] — the global epoch moved. [a] = new epoch.
    - [Ev_quiesce] — a quiescent-state declaration. [a] = the global epoch
      observed, [b] = 1 if the process adopted a new epoch (and freed its
      oldest limbo list), 0 if it only re-announced.
    - [Ev_fallback_enter] — QSense switched this process to the fallback
      (hazard-pointer) path. [a] = total nodes in the process's limbo
      lists at the switch.
    - [Ev_fallback_exit] — back on the fast path. [a] = dwell time in
      clock units.
    - [Ev_evict] — a delayed process's epoch was evicted/forced. [a] = pid
      of the evicted process.
    - [Ev_rooster_wake] — a rooster fired: it published a fresh coarse
      timestamp and signalled its companions. Emitted with the rooster's
      own identity (simulator) or pid [-1] (real runtime, where roosters
      are unregistered domains).
    - [Ev_unregister] — a process retired its pid slot and donated its
      limbo lists to the scheme's orphan pool. [a] = pid of the departing
      process, [b] = number of nodes donated.
    - [Ev_adopt] — a survivor adopted an orphaned limbo batch from the
      pool. [a] = number of nodes adopted, [b] = pid of the donor.
    - [Ev_bag_seal] — a limbo bag filled and was sealed (batched
      reclamation only). [a] = number of nodes in the sealed bag.
    - [Ev_bag_free] — a whole bag (or the reclaimable part of one) left
      limbo in one bulk free. [a] = nodes freed from the bag, [b] = the
      bag's age at free in clock units when the reclamation test had the
      seal stamp and the clock in hand (Cadence/QSense scans), else [-1].
      Per-node [Ev_free] events are still emitted alongside, so depth and
      age-at-free metrics stay exact.
    - [Ev_neutralize] — DEBRA+ neutralized a delayed process: the scheme
      posted a restart signal to the victim and force-unpinned its epoch
      so the global epoch can advance past it. [a] = pid of the victim,
      [b] = the epoch the victim was pinned to ([-1] if it was already
      unpinned when the signal landed). *)
type event =
  | Ev_retire
  | Ev_free
  | Ev_scan_begin
  | Ev_scan_end
  | Ev_epoch_advance
  | Ev_quiesce
  | Ev_fallback_enter
  | Ev_fallback_exit
  | Ev_evict
  | Ev_rooster_wake
  | Ev_unregister
  | Ev_adopt
  | Ev_bag_seal
  | Ev_bag_free
  | Ev_neutralize

(** Raised {e inside the victim} when a DEBRA+ neutralization signal lands:
    the victim's current operation is abandoned mid-flight and restarted
    from scratch by the caller (data structures unwind to a clean state on
    the way out; see [lib/ds/*]). On the simulator the scheduler
    discontinues the victim's suspended effect with this exception at its
    next delivery point while the victim has declared itself interruptible
    ([Qs_sim.Scheduler.set_neutralizable]); on the real runtime the victim
    polls its poisoned flag at protect/retire points and raises it
    cooperatively (the portable stand-in for Brown's [sigsetjmp] +
    [SIGQUIT]). *)
exception Neutralized

let event_index = function
  | Ev_retire -> 0
  | Ev_free -> 1
  | Ev_scan_begin -> 2
  | Ev_scan_end -> 3
  | Ev_epoch_advance -> 4
  | Ev_quiesce -> 5
  | Ev_fallback_enter -> 6
  | Ev_fallback_exit -> 7
  | Ev_evict -> 8
  | Ev_rooster_wake -> 9
  | Ev_unregister -> 10
  | Ev_adopt -> 11
  | Ev_bag_seal -> 12
  | Ev_bag_free -> 13
  | Ev_neutralize -> 14

let event_of_index = function
  | 0 -> Some Ev_retire
  | 1 -> Some Ev_free
  | 2 -> Some Ev_scan_begin
  | 3 -> Some Ev_scan_end
  | 4 -> Some Ev_epoch_advance
  | 5 -> Some Ev_quiesce
  | 6 -> Some Ev_fallback_enter
  | 7 -> Some Ev_fallback_exit
  | 8 -> Some Ev_evict
  | 9 -> Some Ev_rooster_wake
  | 10 -> Some Ev_unregister
  | 11 -> Some Ev_adopt
  | 12 -> Some Ev_bag_seal
  | 13 -> Some Ev_bag_free
  | 14 -> Some Ev_neutralize
  | _ -> None

let event_name = function
  | Ev_retire -> "retire"
  | Ev_free -> "free"
  | Ev_scan_begin -> "scan_begin"
  | Ev_scan_end -> "scan_end"
  | Ev_epoch_advance -> "epoch_advance"
  | Ev_quiesce -> "quiesce"
  | Ev_fallback_enter -> "fallback_enter"
  | Ev_fallback_exit -> "fallback_exit"
  | Ev_evict -> "evict"
  | Ev_rooster_wake -> "rooster_wake"
  | Ev_unregister -> "unregister"
  | Ev_adopt -> "adopt"
  | Ev_bag_seal -> "bag_seal"
  | Ev_bag_free -> "bag_free"
  | Ev_neutralize -> "neutralize"

(** A trace sink: where {!RUNTIME.emit} delivers events when tracing is
    installed. The runtime supplies the emitter's [pid] and a timestamp;
    payloads pass through unchanged. All arguments are immediate (ints and
    an immediate variant), so a call allocates nothing — the sink itself is
    responsible for staying allocation-free per record (see
    {!Qs_obs.Tracer}). *)
type sink = {
  record : pid:int -> time:int -> ev:event -> a:int -> b:int -> unit;
}

module type RUNTIME = sig
  (** {1 Sequentially consistent atomics} *)

  type 'a atomic

  val atomic : 'a -> 'a atomic
  (** Allocate an atomic location. Safe to call outside process context. *)

  val atomic_padded : 'a -> 'a atomic
  (** Like {!atomic}, but the location is isolated against false sharing:
      on the real runtime the cell is allocated with cache-line slack so
      that adjacent per-process cells (epoch slots, presence flags) do not
      ping-pong one line between cores; on the simulator it is {!atomic}
      (the simulator's coherence model is per-cell already). Use for the
      elements of per-process arrays written by different processes. *)

  val get : 'a atomic -> 'a

  val set : 'a atomic -> 'a -> unit
  (** Sequentially consistent store; drains the issuing process's store
      buffer. *)

  val cas : 'a atomic -> 'a -> 'a -> bool
  (** Compare-and-set using physical equality on the expected value, as
      [Stdlib.Atomic.compare_and_set] does. Drains the store buffer. *)

  val fetch_and_add : int atomic -> int -> int
  (** Atomic fetch-and-add on an integer location. Drains the store
      buffer. *)

  (** {1 TSO plain cells} *)

  type 'a plain

  val plain : 'a -> 'a plain
  (** Allocate a plain location. Safe to call outside process context. *)

  val plain_padded : 'a -> 'a plain
  (** Like {!plain}, with the false-sharing isolation of {!atomic_padded}.
      Use for single-writer cells that sit next to other processes' cells,
      e.g. the rows of the shared hazard-pointer array. *)

  val read : 'a plain -> 'a
  (** Reads the issuer's own latest buffered write if any (store-to-load
      forwarding), otherwise the committed value — which may be stale with
      respect to other processes' buffered writes. *)

  val write : 'a plain -> 'a -> unit
  (** Buffered store: enqueued in the issuer's store buffer; other processes
      cannot observe it until the buffer drains. *)

  (** {1 Ordering, time, identity} *)

  val fence : unit -> unit
  (** Full memory barrier: drains the issuer's store buffer. Deliberately
      expensive — this is the cost hazard pointers pay per traversed node
      and the cost Cadence removes. *)

  val now : unit -> int
  (** Monotone clock. Simulator: virtual ticks on the caller's core plus a
      bounded per-core skew. Real runtime: nanoseconds. Timestamps from
      different processes may disagree by at most the configured epsilon. *)

  val now_coarse : unit -> int
  (** Cheap, possibly-lagging clock for the retire hot path. Contract:

      {[ now_coarse () <= now () <= now_coarse () + T + eps_rooster ]}

      where [T] is the rooster interval and [eps_rooster] the rooster
      oversleep bound — i.e. the coarse clock lags real time by at most one
      rooster period. Simulator: identical to {!now} (the virtual clock is
      already free). Real runtime: the last timestamp published by a
      rooster domain — a single atomic load, replacing a [gettimeofday]
      syscall (and its boxed-float allocation) per [retire]. Freshness
      requires roosters to be running ({!Qs_real.Roosters.start}), which
      Cadence/QSense mandate anyway; without roosters it falls back on the
      timestamp captured at runtime initialisation. See DESIGN.md
      "Hot-path discipline" for why [config.epsilon] absorbs the coarse
      slack on the real runtime. *)

  val self : unit -> int
  (** Identity of the calling process, in [0, n_processes). *)

  val yield : unit -> unit
  (** Cooperation/backoff point. Simulator: a zero-cost preemption point.
      Real runtime: [Domain.cpu_relax]. *)

  val hook : hook -> unit
  (** Labelled schedule point (see {!type:hook}). Free: no time is charged,
      no memory effect, no preemption — purely an annotation for targeted
      schedule exploration. Real runtime: a no-op. *)

  val emit : event -> int -> int -> unit
  (** [emit ev a b] delivers a trace event (see {!type:event} for the
      payload conventions) to the installed {!type:sink}, stamped with the
      caller's identity and a timestamp. With no sink installed this is a
      single load and branch; it never allocates on either runtime, and on
      the simulator it — like {!hook} — costs no virtual time, performs no
      memory effect and is not a preemption point, so enabling tracing
      cannot perturb a seeded schedule. Timestamps come from the cheap
      clock ({!now_coarse} on the real runtime; the virtual clock on the
      simulator), keeping the disabled and enabled paths allocation-free. *)

  val neutralize : pid:int -> unit
  (** [neutralize ~pid] posts a restart signal to process [pid] (DEBRA+'s
      [pthread_kill] analogue). Simulator: marks the target so that the
      scheduler discontinues its suspended computation with {!Neutralized}
      at its next delivery point {e while the target has opted in} via
      [Qs_sim.Scheduler.set_neutralizable] — a target outside an
      interruptible region keeps the signal pending, exactly like a
      masked POSIX signal. Real runtime: a no-op — delivery there is
      purely cooperative, via the scheme's poisoned flag checked at
      protect/retire points (the signal-free fallback Brown describes for
      platforms without per-thread signals). Never raises in the caller;
      costs no virtual time and is not a preemption point for the
      caller. *)

  val neutralize_is_preemptive : bool
  (** Whether {!neutralize} interrupts the victim before its next
      shared-memory access. The simulator says [true]: it discontinues the
      victim's fiber at its next effect, modelling
      [pthread_kill]+[siglongjmp]. The real runtime says [false]: delivery
      is cooperative, so the victim only learns of the restart at its own
      next poisoned-flag check — and between that check and the
      dereference it guards lies a preemption window of unbounded length.
      A scheme must therefore never revoke a victim's protection on its
      behalf when this is [false] (a force-unpinned epoch can cycle and
      reclaim the very node the victim is about to touch); it must fall
      back to acknowledgment — poison, and let the victim unpin itself at
      its next check. *)

  val tracing : unit -> bool
  (** Whether {!emit} currently delivers anywhere — a hint for skipping
      whole per-node emission loops on batched reclamation paths (one
      check per bag instead of one dead {!emit} per node). May
      conservatively return [true] (the simulator always does: emission
      there is schedule-neutral and free, and the check must never make
      traced and untraced runs diverge); correctness must not depend on
      the answer. *)
end
