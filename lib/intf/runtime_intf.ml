(** The shared-memory runtime abstraction.

    Every memory-reclamation scheme and every lock-free data structure in
    this repository is a functor over {!module-type:RUNTIME}. Two
    implementations exist:

    - {!Qs_sim.Sim_runtime} — a deterministic multicore simulator with a TSO
      (total-store-order) memory model: {e plain} writes go through a
      per-process store buffer and only become globally visible on a fence, a
      context switch, or buffer-capacity overflow. This runtime reproduces
      the reordering bug of the paper's Algorithm 2 and is the substrate for
      all figure reproductions.
    - {!Qs_real.Real_runtime} — real OCaml 5 domains. Atomics map to
      [Stdlib.Atomic]; plain cells map to racy-but-memory-safe mutable
      fields; [fence] maps to an atomic exchange (the cost analogue of
      x86 [mfence]).

    The two cell kinds mirror the distinction the paper's performance
    argument rests on:

    - {e atomics} are sequentially consistent locations used for data
      structure links, epochs and flags. CAS and SC stores drain the
      issuer's store buffer (as the x86 [lock] prefix does).
    - {e plain} cells are single-writer multi-reader locations used for
      hazard pointers. A plain write is cheap but its visibility to other
      processes is delayed — bounded only by fences, context switches
      (rooster processes!) and buffer capacity. *)

(** Labelled schedule points, performed by the SMR schemes at the
    boundaries an adversarial scheduler wants to interleave around:

    - [Hook_retire] — entry of [retire] (the paper's [free_node_later]);
    - [Hook_scan] — start of a hazard-pointer scan;
    - [Hook_quiesce] — a quiescent-state declaration / epoch adoption.

    On the real runtime {!RUNTIME.hook} is a no-op. On the simulator it is
    a zero-cost annotation that the {!Qs_sim.Scheduler}'s [Targeted]
    strategy can turn into an injected stall ("pause this process right as
    it is about to scan"), the schedule-exploration analogue of a
    breakpoint. It deliberately costs no virtual time and is {e not} a
    preemption point, so enabling hooks does not perturb schedules. *)
type hook = Hook_retire | Hook_scan | Hook_quiesce

module type RUNTIME = sig
  (** {1 Sequentially consistent atomics} *)

  type 'a atomic

  val atomic : 'a -> 'a atomic
  (** Allocate an atomic location. Safe to call outside process context. *)

  val atomic_padded : 'a -> 'a atomic
  (** Like {!atomic}, but the location is isolated against false sharing:
      on the real runtime the cell is allocated with cache-line slack so
      that adjacent per-process cells (epoch slots, presence flags) do not
      ping-pong one line between cores; on the simulator it is {!atomic}
      (the simulator's coherence model is per-cell already). Use for the
      elements of per-process arrays written by different processes. *)

  val get : 'a atomic -> 'a

  val set : 'a atomic -> 'a -> unit
  (** Sequentially consistent store; drains the issuing process's store
      buffer. *)

  val cas : 'a atomic -> 'a -> 'a -> bool
  (** Compare-and-set using physical equality on the expected value, as
      [Stdlib.Atomic.compare_and_set] does. Drains the store buffer. *)

  val fetch_and_add : int atomic -> int -> int
  (** Atomic fetch-and-add on an integer location. Drains the store
      buffer. *)

  (** {1 TSO plain cells} *)

  type 'a plain

  val plain : 'a -> 'a plain
  (** Allocate a plain location. Safe to call outside process context. *)

  val plain_padded : 'a -> 'a plain
  (** Like {!plain}, with the false-sharing isolation of {!atomic_padded}.
      Use for single-writer cells that sit next to other processes' cells,
      e.g. the rows of the shared hazard-pointer array. *)

  val read : 'a plain -> 'a
  (** Reads the issuer's own latest buffered write if any (store-to-load
      forwarding), otherwise the committed value — which may be stale with
      respect to other processes' buffered writes. *)

  val write : 'a plain -> 'a -> unit
  (** Buffered store: enqueued in the issuer's store buffer; other processes
      cannot observe it until the buffer drains. *)

  (** {1 Ordering, time, identity} *)

  val fence : unit -> unit
  (** Full memory barrier: drains the issuer's store buffer. Deliberately
      expensive — this is the cost hazard pointers pay per traversed node
      and the cost Cadence removes. *)

  val now : unit -> int
  (** Monotone clock. Simulator: virtual ticks on the caller's core plus a
      bounded per-core skew. Real runtime: nanoseconds. Timestamps from
      different processes may disagree by at most the configured epsilon. *)

  val now_coarse : unit -> int
  (** Cheap, possibly-lagging clock for the retire hot path. Contract:

      {[ now_coarse () <= now () <= now_coarse () + T + eps_rooster ]}

      where [T] is the rooster interval and [eps_rooster] the rooster
      oversleep bound — i.e. the coarse clock lags real time by at most one
      rooster period. Simulator: identical to {!now} (the virtual clock is
      already free). Real runtime: the last timestamp published by a
      rooster domain — a single atomic load, replacing a [gettimeofday]
      syscall (and its boxed-float allocation) per [retire]. Freshness
      requires roosters to be running ({!Qs_real.Roosters.start}), which
      Cadence/QSense mandate anyway; without roosters it falls back on the
      timestamp captured at runtime initialisation. See DESIGN.md
      "Hot-path discipline" for why [config.epsilon] absorbs the coarse
      slack on the real runtime. *)

  val self : unit -> int
  (** Identity of the calling process, in [0, n_processes). *)

  val yield : unit -> unit
  (** Cooperation/backoff point. Simulator: a zero-cost preemption point.
      Real runtime: [Domain.cpu_relax]. *)

  val hook : hook -> unit
  (** Labelled schedule point (see {!type:hook}). Free: no time is charged,
      no memory effect, no preemption — purely an annotation for targeted
      schedule exploration. Real runtime: a no-op. *)
end
