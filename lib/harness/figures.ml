(** Reproduction drivers for every figure in the paper's evaluation (§7),
    plus ablations over the design parameters. Each driver returns
    {!Qs_util.Table.t} rows matching the corresponding plot's series.

    Two scales are provided: [Full] uses the paper's data-structure sizes
    (list 2000, skip list 20000; the 2,000,000-key BST is scaled to 200,000
    — the simulator is an interpreter, and the BST curve's shape depends on
    depth, which scales logarithmically); [Quick] shrinks sizes further for
    fast runs. Core counts follow the paper: 1..32 (the simulator models one
    pinned worker per core, as the paper's testbed does). *)

open Qs_smr

type scale = Quick | Full

let core_counts = function
  | Quick -> [ 1; 2; 4; 8; 16; 32 ]
  | Full -> [ 1; 2; 4; 8; 16; 24; 32 ]

let list_range = function Quick -> 512 | Full -> 2_000
let skiplist_range = function Quick -> 4_096 | Full -> 20_000
let bst_range = function Quick -> 16_384 | Full -> 200_000
let hashtable_range = function Quick -> 4_096 | Full -> 20_000

let range_of scale = function
  | Cset.List -> list_range scale
  | Cset.Skiplist -> skiplist_range scale
  | Cset.Bst -> bst_range scale
  | Cset.Hashtable -> hashtable_range scale

(* Run long enough for every worker to complete a meaningful number of
   operations even on the slowest structure/scheme. *)
let duration_of scale ds =
  let base = match scale with Quick -> 200_000 | Full -> 600_000 in
  match ds with Cset.List -> base * 2 | _ -> base

let throughput_point ~scale ~seed ~ds ~scheme ~cores ~update_pct =
  let workload =
    Qs_workload.Spec.make ~key_range:(range_of scale ds) ~update_pct
  in
  let r =
    Sim_exp.run
      { (Sim_exp.default_setup ~ds ~scheme ~n_processes:cores ~workload) with
        seed;
        duration = duration_of scale ds }
  in
  if r.violations > 0 then
    failwith
      (Printf.sprintf "use-after-free during %s/%s benchmark!"
         (Cset.kind_to_string ds) (Scheme.to_string scheme));
  r

(* --- Figure 3 and Figure 5 (top row): scalability ------------------------ *)

let scalability ~scale ~seed ~ds ~schemes ~update_pct =
  let cores = core_counts scale in
  let tbl =
    Qs_util.Table.create
      ("scheme" :: List.map (fun c -> Printf.sprintf "%d cores" c) cores)
  in
  let results =
    List.map
      (fun scheme ->
        let points =
          List.map
            (fun c ->
              (throughput_point ~scale ~seed ~ds ~scheme ~cores:c ~update_pct)
                .throughput)
            cores
        in
        (scheme, points))
      schemes
  in
  List.iter
    (fun (scheme, points) ->
      Qs_util.Table.add_float_row tbl (Scheme.to_string scheme) points)
    results;
  (tbl, results)

let fig3 ~scale ~seed =
  scalability ~scale ~seed ~ds:Cset.List
    ~schemes:[ Scheme.None_; Scheme.Qsense; Scheme.Hp ]
    ~update_pct:10

let fig5_top ~scale ~seed ~ds =
  scalability ~scale ~seed ~ds
    ~schemes:[ Scheme.None_; Scheme.Qsbr; Scheme.Qsense; Scheme.Hp ]
    ~update_pct:50

(* --- Figure 5 (bottom row): throughput over time under periodic delays --- *)

(* One "simulated second" for the time axis: long enough that a 10-second
   delay window sees several times the fallback threshold C in retired
   nodes, as a 10-second stall does at the paper's (real-time) scale. The
   paper runs 100 s with one process delayed during [10,20), [30,40), ...,
   [90,100). *)
let sim_second = function Quick -> 20_000 | Full -> 100_000

(* fig5-bottom uses smaller structures than the scalability runs so that a
   delay window contains enough operations for the switching dynamics to
   play out (the ratio backlog-per-window / C is what matters, not the
   absolute structure size). *)
let robustness_range scale ds =
  match (scale, ds) with
  | Quick, Cset.List -> 128
  | Full, Cset.List -> 512
  | Quick, _ -> 512
  | Full, _ -> 2_048

let fig5_bottom ~scale ~seed ~ds =
  let n = 8 in
  let sim_second = sim_second scale in
  let seconds = match scale with Quick -> 60 | Full -> 100 in
  let duration = seconds * sim_second in
  let windows =
    List.filter
      (fun (a, _) -> a < duration)
      [ (10, 20); (30, 40); (50, 60); (70, 80); (90, 100) ]
    |> List.map (fun (a, b) -> (a * sim_second, b * sim_second))
  in
  let range = robustness_range scale ds in
  let workload = Qs_workload.Spec.make ~key_range:range ~update_pct:50 in
  (* The cap models bounded memory: ample for the robust schemes' bounded
     backlog (at the fallback flip up to ~N*C retired nodes exist, so the
     slack must exceed that), fatal for QSBR once quiescence stops for a
     whole window. *)
  let switch_c, slack = match scale with Quick -> (24, 150) | Full -> (12, 180) in
  let live = range / 2 * Cset.nodes_per_key_of ds in
  let capacity = Some (live + slack) in
  let run scheme =
    Sim_exp.run
      { (Sim_exp.default_setup ~ds ~scheme ~n_processes:n ~workload) with
        seed;
        duration;
        capacity;
        delays = Some { victim = n - 1; windows };
        sample_every = sim_second;
        smr_tweak =
          (fun c ->
            { c with
              quiescence_threshold = 8;
              scan_threshold = 8;
              switch_threshold = switch_c }) }
  in
  let schemes = [ Scheme.Qsbr; Scheme.Qsense; Scheme.Hp ] in
  let results = List.map (fun s -> (s, run s)) schemes in
  let tbl =
    Qs_util.Table.create
      ("second" :: List.map (fun s -> Scheme.to_string s) schemes)
  in
  for sec = 0 to seconds - 1 do
    Qs_util.Table.add_row tbl
      (string_of_int sec
      :: List.map
           (fun (_, (r : Sim_exp.result)) ->
             if Array.length r.series > sec then
               Printf.sprintf "%.1f" r.series.(sec)
             else "0.0")
           results)
  done;
  (tbl, results)

(* --- §7.3 overhead summary (the numbers quoted in the text) -------------- *)

let overheads ~scale ~seed =
  let dss = [ Cset.List; Cset.Skiplist; Cset.Bst ] in
  let schemes = [ Scheme.Qsbr; Scheme.Qsense; Scheme.Cadence; Scheme.Hp ] in
  let cores = 8 in
  let tbl =
    Qs_util.Table.create
      ("scheme"
      :: (List.map Cset.kind_to_string dss
         @ [ "avg overhead vs none (%)"; "speedup vs hp" ]))
  in
  let baseline =
    List.map
      (fun ds ->
        ( ds,
          (throughput_point ~scale ~seed ~ds ~scheme:Scheme.None_ ~cores
             ~update_pct:50)
            .throughput ))
      dss
  in
  let tputs =
    List.map
      (fun scheme ->
        ( scheme,
          List.map
            (fun ds ->
              (throughput_point ~scale ~seed ~ds ~scheme ~cores ~update_pct:50)
                .throughput)
            dss ))
      schemes
  in
  let hp_tputs = List.assoc Scheme.Hp tputs in
  List.iter
    (fun (scheme, ts) ->
      let overheads_pct =
        List.map2
          (fun (_, base) t -> Qs_util.Stats.overhead_pct ~baseline:base t)
          baseline ts
      in
      let avg = Qs_util.Stats.mean (Array.of_list overheads_pct) in
      let speedup =
        Qs_util.Stats.mean
          (Array.of_list
             (List.map2 (fun t hp -> Qs_util.Stats.ratio t hp) ts hp_tputs))
      in
      Qs_util.Table.add_row tbl
        (Scheme.to_string scheme
        :: (List.map (Printf.sprintf "%.3f") ts
           @ [ Printf.sprintf "%.1f" avg; Printf.sprintf "%.2fx" speedup ])))
    tputs;
  (tbl, baseline, tputs)

(* --- ablations over the design parameters (§5) --------------------------- *)

(* Rooster interval T: larger T means fewer context switches (faster) but a
   longer deferral and hence more retired nodes held. *)
let ablation_rooster ~seed =
  let tbl =
    Qs_util.Table.create [ "T (ticks)"; "throughput"; "retired peak"; "frees" ]
  in
  List.iter
    (fun t ->
      let workload = Qs_workload.Spec.make ~key_range:256 ~update_pct:50 in
      let r =
        Sim_exp.run
          { (Sim_exp.default_setup ~ds:Cset.List ~scheme:Scheme.Cadence
               ~n_processes:8 ~workload) with
            seed;
            duration = 800_000;
            smr_tweak = (fun c -> { c with rooster_interval = t; scan_threshold = 8 });
            sched_tweak = (fun c -> { c with rooster_interval = Some t }) }
      in
      Qs_util.Table.add_row tbl
        [ string_of_int t;
          Printf.sprintf "%.1f" r.throughput;
          string_of_int r.report.smr.retired_peak;
          string_of_int r.report.smr.frees
        ])
    [ 500; 1_000; 2_000; 4_000; 8_000; 16_000 ];
  tbl

(* Quiescence threshold Q: batching amortises QSBR's per-quiescence cost. *)
let ablation_quiescence ~seed =
  let tbl =
    Qs_util.Table.create [ "Q (ops)"; "throughput"; "epoch advances"; "retired peak" ]
  in
  List.iter
    (fun q ->
      let workload = Qs_workload.Spec.make ~key_range:512 ~update_pct:50 in
      let r =
        Sim_exp.run
          { (Sim_exp.default_setup ~ds:Cset.List ~scheme:Scheme.Qsbr
               ~n_processes:8 ~workload) with
            seed;
            duration = 400_000;
            smr_tweak = (fun c -> { c with quiescence_threshold = q }) }
      in
      Qs_util.Table.add_row tbl
        [ string_of_int q;
          Printf.sprintf "%.1f" r.throughput;
          string_of_int r.report.smr.epoch_advances;
          string_of_int r.report.smr.retired_peak
        ])
    [ 1; 4; 16; 64; 256 ];
  tbl

(* Switch threshold C: small C = hair-trigger fallback (spurious switches),
   huge C = more memory held before reacting to a delay. *)
let ablation_switch_threshold ~seed =
  let tbl =
    Qs_util.Table.create
      [ "C"; "throughput"; "fallback switches"; "retired peak" ]
  in
  List.iter
    (fun c_thr ->
      let workload = Qs_workload.Spec.make ~key_range:256 ~update_pct:50 in
      let r =
        Sim_exp.run
          { (Sim_exp.default_setup ~ds:Cset.List ~scheme:Scheme.Qsense
               ~n_processes:8 ~workload) with
            seed;
            duration = 600_000;
            delays =
              Some
                { victim = 7;
                  windows = [ (100_000, 250_000); (400_000, 550_000) ] };
            smr_tweak =
              (fun c -> { c with switch_threshold = c_thr; scan_threshold = 8 }) }
      in
      Qs_util.Table.add_row tbl
        [ string_of_int c_thr;
          Printf.sprintf "%.1f" r.throughput;
          string_of_int r.report.smr.fallback_switches;
          string_of_int r.report.smr.retired_peak
        ])
    [ 8; 32; 128; 1_024 ];
  tbl

(* Epsilon vs rooster timing inconsistency: Cadence's deferral is safe only
   while eps covers how late a rooster can be ("oversleeping", the first of
   §5.1's timing inconsistencies). Constant cross-core clock OFFSETS cancel
   in the age computation — a node is timestamped and scanned by the same
   process — so late wake-ups are what consume eps in this model. Reports
   use-after-free oracle hits per configuration: the middle row (huge
   oversleep, eps = 0) is the broken one. *)
let ablation_epsilon ~seed =
  let tbl =
    Qs_util.Table.create [ "max oversleep"; "epsilon"; "violations (16 seeds)" ]
  in
  let run ~oversleep ~eps seed =
    let workload = Qs_workload.Spec.make ~key_range:16 ~update_pct:30 in
    let r =
      Sim_exp.run
        { (Sim_exp.default_setup ~ds:Cset.List ~scheme:Scheme.Cadence
             ~n_processes:4 ~workload) with
          seed;
          duration = 1_500_000;
          smr_tweak =
            (fun c ->
              { c with
                scan_threshold = 1;
                scan_factor = 0.; (* scan every retire: epsilon sensitivity needs it *)
                rooster_interval = 200;
                epsilon = eps });
          sched_tweak =
            (fun c ->
              { c with
                rooster_interval = Some 200;
                rooster_oversleep = oversleep;
                store_buffer_capacity = 100_000;
                cost =
                  { Qs_sim.Scheduler.default_cost with
                    stall_prob = 0.02;
                    stall_max = 6_000 } }) }
    in
    r.violations
  in
  List.iter
    (fun (oversleep, eps) ->
      let v =
        List.fold_left
          (fun acc s -> acc + run ~oversleep ~eps (seed + s))
          0
          (List.init 16 Fun.id)
      in
      Qs_util.Table.add_row tbl
        [ string_of_int oversleep; string_of_int eps; string_of_int v ])
    [ (50, 400); (8_000, 0); (8_000, 8_400) ];
  tbl

(* --- per-operation latency distribution (extra analysis) ----------------- *)

(* Throughput hides where the reclamation cost sits: hazard pointers tax
   every traversal step (high median), epoch/limbo schemes batch work at
   quiescence/scan points (latency spikes at the tail). The deterministic
   simulator makes the comparison exact. *)
let latency_table ~seed =
  let tbl =
    Qs_util.Table.create
      [ "scheme"; "ops"; "mean"; "p50"; "p95"; "p99"; "max" ]
  in
  List.iter
    (fun scheme ->
      let workload = Qs_workload.Spec.make ~key_range:512 ~update_pct:50 in
      let r =
        Sim_exp.run
          { (Sim_exp.default_setup ~ds:Cset.List ~scheme ~n_processes:8
               ~workload) with
            seed;
            duration = 400_000;
            record_latency = true }
      in
      let xs = Array.map float_of_int r.latencies in
      if Array.length xs = 0 then
        Qs_util.Table.add_row tbl
          [ Scheme.to_string scheme; "0"; "-"; "-"; "-"; "-"; "-" ]
      else begin
        let p q = Qs_util.Stats.percentile xs q in
        Qs_util.Table.add_row tbl
          [ Scheme.to_string scheme;
            string_of_int (Array.length xs);
            Printf.sprintf "%.0f" (Qs_util.Stats.mean xs);
            Printf.sprintf "%.0f" (p 50.);
            Printf.sprintf "%.0f" (p 95.);
            Printf.sprintf "%.0f" (p 99.);
            Printf.sprintf "%.0f" (snd (Qs_util.Stats.min_max xs))
          ]
      end)
    [ Scheme.None_; Scheme.Qsbr; Scheme.Ebr; Scheme.Qsense; Scheme.Cadence; Scheme.Hp ];
  tbl

(* --- update-mix ablation (§3.2's claim) ----------------------------------- *)

(* "Memory barriers ... cost results in a significant performance overhead
   for hazard pointer implementations, especially in read-only data
   structure operations (update operations typically use other expensive
   synchronization primitives ..., so the marginal cost of memory barriers
   ... is much lower than for read-only operations)." — §3.2. Measured: HP's
   overhead vs the leaky baseline should be highest at 0% updates and
   shrink as the update share grows. *)
let ablation_update_mix ~seed =
  let tbl =
    Qs_util.Table.create
      [ "structure"; "updates (%)"; "none"; "hp"; "qsense";
        "hp overhead (%)"; "qsense overhead (%)" ]
  in
  List.iter
    (fun (ds, range) ->
      List.iter
        (fun update_pct ->
          let tput scheme =
            let workload = Qs_workload.Spec.make ~key_range:range ~update_pct in
            (Sim_exp.run
               { (Sim_exp.default_setup ~ds ~scheme ~n_processes:8 ~workload) with
                 seed;
                 duration = 300_000 })
              .throughput
          in
          let none = tput Scheme.None_ in
          let hp = tput Scheme.Hp in
          let qsense = tput Scheme.Qsense in
          Qs_util.Table.add_row tbl
            [ Cset.kind_to_string ds;
              string_of_int update_pct;
              Printf.sprintf "%.1f" none;
              Printf.sprintf "%.1f" hp;
              Printf.sprintf "%.1f" qsense;
              Printf.sprintf "%.1f" (Qs_util.Stats.overhead_pct ~baseline:none hp);
              Printf.sprintf "%.1f" (Qs_util.Stats.overhead_pct ~baseline:none qsense)
            ])
        [ 0; 25; 50; 100 ])
    (* a traversal-dominated structure (every op pays the per-node fence
       tax, so the overhead is flat across mixes) and a short-traversal one
       (update synchronisation amortises the fences, so the tax shrinks as
       updates grow — §3.2's effect) *)
    [ (Cset.List, 512); (Cset.Hashtable, 2_048) ];
  tbl
