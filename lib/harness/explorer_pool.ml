(* Parallel schedule exploration across real domains.

   Each worker domain claims case indices from a shared atomic counter and
   runs them with a fully isolated simulator instance: [Explorer.run_one]
   allocates its scheduler, arena, scheme and history per call, the sim
   runtime carries no domain-local or global mutable state (see Cell's
   per-cell uid counters), and every PRNG stream is derived from the case
   seed alone. Seed determinism therefore survives the fan-out by
   construction — the same case line produces a bit-identical outcome
   whether run solo or claimed by any worker of any pool — and the
   determinism is enforced by test/test_explorer_pool.ml.

   Results land in per-index slots (disjoint writes; the Domain.join at the
   end publishes them to the coordinator), so the output order is the input
   order no matter how the workers interleave. Cancellation is cooperative:
   a raised stop flag prevents claiming further indices but lets in-flight
   cases finish, so every reported outcome is still complete and
   deterministic. *)

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let map (type b) ?jobs ?(stop_when : (b -> bool) option) (f : Explorer.case -> b)
    (cases : Explorer.case array) : b option array =
  let n = Array.length cases in
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let jobs = min jobs n in
  let results : b option array = Array.make n None in
  let hit r = match stop_when with None -> false | Some p -> p r in
  if jobs <= 1 then begin
    (* Solo reference path: identical claiming order, no domains. *)
    let stop = ref false in
    let i = ref 0 in
    while (not !stop) && !i < n do
      let r = f cases.(!i) in
      results.(!i) <- Some r;
      if hit r then stop := true;
      incr i
    done;
    results
  end
  else begin
    let next = Atomic.make 0 in
    let stop = Atomic.make false in
    let worker _wid =
      let continue_ = ref true in
      while !continue_ do
        if Atomic.get stop then continue_ := false
        else begin
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue_ := false
          else begin
            let r = f cases.(i) in
            results.(i) <- Some r;
            if hit r then Atomic.set stop true
          end
        end
      done
    in
    ignore (Qs_real.Domain_pool.run ~n:jobs worker);
    results
  end

let outcomes ?jobs (cases : Explorer.case list) :
    (Explorer.case * Explorer.outcome) list =
  let arr = Array.of_list cases in
  let res = map ?jobs Explorer.run_one arr in
  List.mapi
    (fun i c ->
      match res.(i) with
      | Some o -> (c, o)
      | None -> assert false (* no stop_when: every index was claimed *))
    cases

let explore ?jobs cases =
  List.filter
    (fun ((_ : Explorer.case), (o : Explorer.outcome)) ->
      not (Explorer.same_class o.verdict Explorer.Pass))
    (outcomes ?jobs cases)

let find_failure ?jobs (cases : Explorer.case list) =
  let arr = Array.of_list cases in
  let failing (o : Explorer.outcome) =
    not (Explorer.same_class o.verdict Explorer.Pass)
  in
  let res = map ?jobs ~stop_when:failing Explorer.run_one arr in
  (* Lowest-index completed failure: under cancellation the set of
     completed cases depends on worker timing, but each completed outcome
     is deterministic, and reporting the first one keeps CI logs stable in
     the common one-failure situation. *)
  let rec scan i =
    if i >= Array.length arr then None
    else
      match res.(i) with
      | Some o when failing o -> Some (arr.(i), o)
      | _ -> scan (i + 1)
  in
  scan 0
