(** Experiment runner over the deterministic simulator.

    One experiment = N worker processes (one per virtual core) running a
    random operation mix against a freshly filled structure for a span of
    virtual time, with optional delay injection (the paper's §7.2 setup: a
    victim process sleeping through given windows) and an optional arena
    capacity whose exhaustion models running out of memory.

    Everything is deterministic given [seed]. Throughput is reported in
    operations per million virtual ticks — the analogue of the paper's
    Mops/s. *)

open Qs_sim

type delays = {
  victim : int;
  windows : (int * int) list;  (** [start, stop) in virtual time *)
}

type churn = {
  every_ops : int;  (** leave after this many completed operations *)
  downtime : int;  (** virtual ticks spent out of the computation *)
}

type setup = {
  ds : Cset.kind;
  scheme : Qs_smr.Scheme.kind;
  n_processes : int;
  workload : Qs_workload.Spec.t;
  duration : int;  (** virtual ticks of measured time (after the fill) *)
  seed : int;
  capacity : int option;  (** arena cap; exceeded => the run "fails" *)
  delays : delays option;
  churn : churn option;
      (** worker churn: every [every_ops] operations each worker with
          pid > 0 unregisters (donating its limbo lists to the scheme's
          orphan pool), sits out [downtime] ticks and re-registers under the
          same pid — staggered by pid so workers do not all vacate at once.
          Pid 0 never churns, keeping the fill/teardown context alive. *)
  sample_every : int;  (** bucket width of the throughput series; 0 = none *)
  record_latency : bool;  (** collect per-operation latencies (in ticks) *)
  latency : Qs_obs.Latency.recorder option;
      (** per-{pid × op-kind} online histograms + top-K outlier buffers.
          End timestamps come from meta-level clock reads
          ([Scheduler.clock_of]) rather than a [now] effect, so seeded
          schedules are byte-identical with the recorder on or off, and
          outlier windows share the trace's time base (both start at the
          post-fill clock reset) for {!Qs_obs.Metrics.attribute_spikes}. *)
  generator : Qs_workload.Generator.t option;
      (** pre-generated operation streams (cyclic, indexed by the worker's
          completed-op count, so an aborted op is retried) in place of
          on-line [Spec.pick] draws — the same logical op sequence
          replayable across schemes. *)
  faults : Scheduler.fault list;
      (** scheduler fault injection (e.g. [Stall_at]), installed after the
          fill and re-armed by the clock reset: fault times are measured
          time. [[]] = none. *)
  sink : Qs_intf.Runtime_intf.sink option;
      (** trace sink (e.g. [Qs_obs.Tracer.sink]); installed after the fill
          so the trace covers measured time only. [None] = tracing off —
          the default, and guaranteed not to change seeded schedules
          either way (see DESIGN.md §9). *)
  smr_tweak : Qs_smr.Smr_intf.config -> Qs_smr.Smr_intf.config;
  sched_tweak : Scheduler.config -> Scheduler.config;
}

val default_setup :
  ds:Cset.kind ->
  scheme:Qs_smr.Scheme.kind ->
  n_processes:int ->
  workload:Qs_workload.Spec.t ->
  setup
(** 300k ticks, seed 1, no cap, no delays, no churn, no sampling; roosters
    are configured automatically for schemes that need them. *)

type result = {
  ops_total : int;
  per_worker_ops : int array;
  throughput : float;  (** ops per million virtual ticks *)
  series : float array;  (** ops/Mtick per sample bucket (if sampling) *)
  failed_at : int option;  (** virtual time of memory exhaustion, if any *)
  latencies : int array;  (** per-op latencies in ticks (if recording) *)
  violations : int;  (** use-after-free oracle hits — 0 for sound schemes *)
  report : Qs_ds.Set_intf.report;  (** captured before the teardown flush *)
  rooster_fires : int;
  final_size : int;
  churn_events : int;
      (** completed leave/rejoin cycles across all workers (0 unless
          [churn] was set) *)
  leak_check : [ `Ok | `Leaked of int | `Skipped ];
      (** after teardown flush: outstanding nodes vs live nodes *)
}

val default_rooster_interval : int
val default_epsilon : int

val base_smr_config : n_processes:int -> Qs_smr.Smr_intf.config
(** The SMR defaults every experiment starts from (before [smr_tweak]). *)

val cset_of : Cset.kind -> (module Cset.S)
(** The simulator instantiation of each structure. *)

val run : setup -> result
(** Fill to half the key range from process 0 (shuffled), reset the virtual
    clocks, run all workers to [duration], then collect statistics and
    perform the teardown leak check. Raises [Failure] if a worker dies of
    anything other than the modelled memory exhaustion. *)
