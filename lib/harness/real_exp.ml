(** Experiment runner over real OCaml 5 domains ({!Qs_real.Real_runtime}).

    The shape mirrors {!Sim_exp}: N worker domains run a random operation
    mix against one structure for a wall-clock duration, with an optional
    stalled victim. On a machine with enough cores this reproduces the
    paper's curves natively; on fewer cores domains timeshare, so use the
    simulator for scalability shapes and this runner for real-fence
    smoke tests and demos. Rooster domains are started automatically for
    schemes that need them. *)

type churn = { generations : int; downtime_ms : int }

type setup = {
  ds : Cset.kind;
  scheme : Qs_smr.Scheme.kind;
  n_domains : int;
  workload : Qs_workload.Spec.t;
  duration_ms : int;
  seed : int;
  capacity : int option;
  stall_victim_after_ms : int option;
      (** victim = highest pid; it stops working (but never quiesces) after
          this instant and resumes 2x later *)
  churn : churn option;
      (** worker churn: each pid slot runs [generations] successive worker
          domains over the duration, each generation unregistering its SMR
          slot on exit (donating limbo lists to the orphan pool) and the
          next one re-registering under the same pid after [downtime_ms] *)
  latency : Qs_obs.Latency.recorder option;
      (** per-{pid × op-kind} histograms + outliers, timed with the
          allocation-free coarse clock ({!Qs_real.Real_runtime.now_coarse},
          one atomic load per read) — quantized to the rooster interval,
          so real-runtime percentiles are coarse; the simulator supplies
          exact ones. Forces rooster domains on (they feed the clock). *)
  sink : Qs_intf.Runtime_intf.sink option;
      (** trace sink (e.g. [Qs_obs.Tracer.sink]), installed for the worker
          phase (after the fill) and removed before return *)
  smr_tweak : Qs_smr.Smr_intf.config -> Qs_smr.Smr_intf.config;
}

let default_setup ~ds ~scheme ~n_domains ~workload =
  { ds;
    scheme;
    n_domains;
    workload;
    duration_ms = 200;
    seed = 1;
    capacity = None;
    stall_victim_after_ms = None;
    churn = None;
    latency = None;
    sink = None;
    smr_tweak = Fun.id }

type result = {
  ops_total : int;
  throughput_mops : float;
  violations : int;
  failed : bool;  (** some domain hit [Arena.Exhausted] *)
  churn_events : int;  (** completed leave/rejoin cycles across all slots *)
  report : Qs_ds.Set_intf.report;
}

let rooster_interval_ns = 2_000_000 (* 2 ms *)

let cset_of : Cset.kind -> (module Cset.S) = function
  | Cset.List -> (module Qs_ds.Linked_list.Make (Qs_real.Real_runtime))
  | Cset.Skiplist -> (module Qs_ds.Skiplist.Make (Qs_real.Real_runtime))
  | Cset.Bst -> (module Qs_ds.Bst.Make (Qs_real.Real_runtime))
  | Cset.Hashtable -> (module Qs_ds.Hashtable.Make (Qs_real.Real_runtime))

let run (setup : setup) : result =
  let module C = (val cset_of setup.ds) in
  let n = setup.n_domains in
  let base = Qs_ds.Set_intf.default_config ~n_processes:n ~scheme:setup.scheme in
  let cfg =
    { base with
      capacity = setup.capacity;
      smr =
        setup.smr_tweak
          { base.smr with
            rooster_interval = rooster_interval_ns;
            epsilon = rooster_interval_ns / 2 } }
  in
  let set = C.create cfg in
  let ctxs = Array.init n (fun pid -> C.register set ~pid) in
  Qs_real.Real_runtime.register_self 0;
  let keys = Array.of_list (Qs_workload.Spec.initial_keys setup.workload) in
  Qs_util.Prng.shuffle (Qs_util.Prng.create ~seed:setup.seed) keys;
  Array.iter (fun k -> ignore (C.insert ctxs.(0) k)) keys;
  (* Install the trace sink only for the worker phase: the fill above is
     setup, not measured behaviour. *)
  Qs_real.Real_runtime.set_sink setup.sink;
  let roosters =
    (* Latency recording reads the coarse clock, which only roosters
       refresh — so a recorder forces them on even for schemes that do
       not otherwise need them. *)
    if Qs_smr.Scheme.needs_roosters setup.scheme || setup.latency <> None then
      Some (Qs_real.Roosters.start ~interval_ns:rooster_interval_ns ~n:1)
    else None
  in
  let stop = Atomic.make false in
  let failed = Atomic.make false in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. (float_of_int setup.duration_ms /. 1000.) in
  let master = Qs_util.Prng.create ~seed:(setup.seed + 31) in
  let prngs = Array.init n (fun _ -> Qs_util.Prng.split master) in
  (* [Unix.gettimeofday] is a syscall-priced clock read; at the
     millions-of-ops/s this loop targets, reading it per operation
     dominates the thing being measured. Check the deadline (and the
     stall window, and the stop flag) once every 64 operations:
     worst-case overshoot is 64 ops (~tens of microseconds) against a
     duration measured in hundreds of milliseconds, and the final
     throughput divides by the measured elapsed time anyway. *)
  let worker_loop ~pid ~ctx ~until_ =
    let prng = prngs.(pid) in
    let stall_at =
      match setup.stall_victim_after_ms with
      | Some ms when pid = n - 1 ->
        Some (t0 +. (float_of_int ms /. 1000.), t0 +. (2. *. float_of_int ms /. 1000.))
      | _ -> None
    in
    let count = ref 0 in
    let running = ref true in
    (try
       while !running do
         if !count land 63 = 0 then begin
           if Atomic.get stop || Unix.gettimeofday () >= until_ then
             running := false
           else
             match stall_at with
             | Some (a, b) ->
               let now = Unix.gettimeofday () in
               if now >= a && now < b then Unix.sleepf (b -. now)
             | None -> ()
         end;
         if !running then begin
           (* DEBRA+ restarts are cooperative on real domains: the victim
              raises [Neutralized] out of its own protection checks. The
              aborted operation is simply retried (and not counted) — an
              installed OCaml exception handler is push-one-trap-frame
              cheap, so this does not tax the measured loop. *)
           (try
              let op = Qs_workload.Spec.pick prng setup.workload in
              let ls =
                (* coarse clock: one atomic load, no boxed float — the
                   recording path must stay at 0 minor words per op *)
                match setup.latency with
                | Some _ -> Qs_real.Real_runtime.now_coarse ()
                | None -> 0
              in
              (match op with
              | Search k -> ignore (C.search ctx k)
              | Insert k -> ignore (C.insert ctx k)
              | Delete k -> ignore (C.delete ctx k));
              (match setup.latency with
              | Some r ->
                Qs_obs.Latency.observe r ~pid
                  ~kind:(Qs_workload.Spec.kind_index op)
                  ~start:ls
                  ~dur:(Qs_real.Real_runtime.now_coarse () - ls)
              | None -> ());
              incr count
            with Qs_intf.Runtime_intf.Neutralized -> ())
         end
       done
     with Qs_arena.Arena.Exhausted ->
       Atomic.set failed true;
       Atomic.set stop true);
    !count
  in
  let churn_events = ref 0 in
  let ops =
    match setup.churn with
    | None | Some { generations = 1; _ } ->
      Qs_real.Domain_pool.run ~n (fun pid ->
          worker_loop ~pid ~ctx:ctxs.(pid) ~until_:deadline)
    | Some { generations; downtime_ms } ->
      let generations = max 2 generations in
      let slice_s =
        float_of_int setup.duration_ms /. 1000. /. float_of_int generations
      in
      let per_slot =
        Qs_real.Domain_pool.run_generations ~n ~generations
          ~downtime_s:(float_of_int downtime_ms /. 1000.)
          (fun ~pid ~gen ->
            (* gen 0 inherits the pre-registered context (it also performed
               the fill for pid 0); later generations join fresh, under the
               same pid slot. *)
            let ctx =
              if gen = 0 then ctxs.(pid) else C.register set ~pid
            in
            let until_ =
              Float.min deadline (t0 +. (slice_s *. float_of_int (gen + 1)))
            in
            let count = worker_loop ~pid ~ctx ~until_ in
            (* leave: donate limbo lists to the orphan pool so survivors
               (and successor generations) reclaim them *)
            if gen < generations - 1 then C.unregister ctx
            else ctxs.(pid) <- ctx;
            count)
      in
      Array.iter
        (fun counts -> churn_events := !churn_events + max 0 (List.length counts - 1))
        per_slot;
      Array.map (fun counts -> List.fold_left ( + ) 0 counts) per_slot
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  (match roosters with Some r -> Qs_real.Roosters.stop r | None -> ());
  (* The sink is a global on the real runtime: remove it so later runs in
     the same process do not keep feeding this experiment's tracer. *)
  Qs_real.Real_runtime.set_sink None;
  let report = C.report set in
  let ops_total = Array.fold_left ( + ) 0 ops in
  { ops_total;
    throughput_mops = float_of_int ops_total /. elapsed /. 1e6;
    violations = C.violations set;
    failed = Atomic.get failed;
    churn_events = !churn_events;
    report }
