(** Experiment runner over real OCaml 5 domains — the {!Sim_exp} shape on
    {!Qs_real.Real_runtime}. On a machine with enough cores this reproduces
    the paper's curves natively; on fewer cores domains timeshare, so use
    the simulator for scalability shapes and this runner for real-fence
    smoke tests and demos. Roosters are started automatically for schemes
    that need them. *)

type churn = {
  generations : int;  (** worker generations per pid slot; 1 = no churn *)
  downtime_ms : int;  (** slot left empty between generations *)
}

type setup = {
  ds : Cset.kind;
  scheme : Qs_smr.Scheme.kind;
  n_domains : int;
  workload : Qs_workload.Spec.t;
  duration_ms : int;
  seed : int;
  capacity : int option;
  stall_victim_after_ms : int option;
      (** the highest-pid domain stops working (without quiescing) at this
          instant and resumes at twice it *)
  churn : churn option;
      (** worker churn via {!Qs_real.Domain_pool.run_generations}: each pid
          slot runs [generations] successive worker domains over the
          duration; every generation but the last unregisters its SMR slot
          on exit (limbo lists donated to the orphan pool), and the next
          generation re-registers under the same pid after [downtime_ms] *)
  latency : Qs_obs.Latency.recorder option;
      (** per-{pid × op-kind} latency histograms + top-K outliers, timed
          with the allocation-free coarse clock
          ({!Qs_real.Real_runtime.now_coarse}: one atomic load) so the
          recording path stays at 0 minor words per op. Durations are
          quantized to the rooster interval — use the simulator for exact
          percentiles; this measures recording overhead and catches
          rooster-interval-scale stalls. Forces roosters on (they feed
          the coarse clock). *)
  sink : Qs_intf.Runtime_intf.sink option;
      (** trace sink (e.g. [Qs_obs.Tracer.sink]) installed for the worker
          phase and removed before return; [None] = tracing off. Event
          timestamps are coarse-clock nanoseconds. *)
  smr_tweak : Qs_smr.Smr_intf.config -> Qs_smr.Smr_intf.config;
}

val default_setup :
  ds:Cset.kind ->
  scheme:Qs_smr.Scheme.kind ->
  n_domains:int ->
  workload:Qs_workload.Spec.t ->
  setup

type result = {
  ops_total : int;
  throughput_mops : float;
  violations : int;
  failed : bool;  (** some domain hit the arena capacity *)
  churn_events : int;
      (** completed leave/rejoin cycles across all slots (0 without churn) *)
  report : Qs_ds.Set_intf.report;
}

val rooster_interval_ns : int

val cset_of : Cset.kind -> (module Cset.S)
(** The real-runtime instantiation of each structure. *)

val run : setup -> result
