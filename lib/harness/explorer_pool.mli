(** Parallel schedule exploration: shard {!Explorer} cases across real
    domains (see DESIGN.md §12, "Exploration at scale").

    Worker isolation invariant: a case's outcome depends on the case line
    alone — every simulator instance, arena, scheme and PRNG stream is
    created per {!Explorer.run_one} call and shares no mutable state with
    other runs — so solo and pooled execution produce bit-identical
    outcomes for the same case (enforced by test/test_explorer_pool.ml). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1] (at least 1): leave one core
    for the coordinator. *)

val map :
  ?jobs:int ->
  ?stop_when:('b -> bool) ->
  (Explorer.case -> 'b) ->
  Explorer.case array ->
  'b option array
(** [map ~jobs f cases] runs [f] on every case across [jobs] worker
    domains (default {!default_jobs}; [jobs <= 1] runs solo in the calling
    domain) and returns the results in input order. [f] must be safe to
    call concurrently from several domains — {!Explorer.run_one} and
    anything built on it qualifies. With [stop_when], a matching result
    raises a cooperative stop flag: no further cases are claimed (in-flight
    ones finish), and unclaimed slots come back [None]. *)

val outcomes :
  ?jobs:int -> Explorer.case list -> (Explorer.case * Explorer.outcome) list
(** Pooled {!Explorer.run_one} over the whole list; complete, input order,
    bit-identical to the solo sweep. *)

val explore :
  ?jobs:int -> Explorer.case list -> (Explorer.case * Explorer.outcome) list
(** Pooled drop-in for {!Explorer.explore}: run every case, return the
    failing ones (input order). *)

val find_failure :
  ?jobs:int -> Explorer.case list -> (Explorer.case * Explorer.outcome) option
(** First-failure hunt with cancellation: workers stop claiming cases once
    any failure is seen; returns the lowest-index completed failure (its
    outcome is deterministic — shrink it on the coordinator). [None] means
    every case passed. *)
