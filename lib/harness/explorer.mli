(** Adversarial schedule exploration, fault injection and counterexample
    shrinking over the simulator (see EXPERIMENTS.md, "Schedule
    exploration").

    A {!case} fully determines one run — structure, scheme, workload shape,
    scheduling {!strategy}, fault plan and seed — and {!run_one} executes it
    under three oracles:

    - the arena's node-state oracle: use-after-free and double-free
      counters;
    - memory exhaustion against the case's arena capacity;
    - per-key linearizability ({!Qs_verify.Lin_check}) of the recorded
      operation history (skipped when the fault plan contains crashes or
      clock-skew bursts, or the strategy is [Pct] — all of which invalidate
      the completed-operations / real-time-order assumptions the checker
      rests on).

    Cases serialize to one-line ["k=v"] strings ({!to_string} /
    {!of_string}); a failing case can be {!shrink}'d and written to a repro
    file that replays by itself, and a committed corpus of known-clean cases
    is replayed as a regression test. *)

open Qs_sim

(** Explorer-level strategy; mapped onto {!Scheduler.strategy} with
    PCT/stall seeds derived from the case seed. *)
type strategy =
  | Fair
  | Pct of { depth : int }
  | Targeted of {
      victim : int;
      hook : Qs_intf.Runtime_intf.hook;
      skip : int;
      stall : int;
    }

type case = {
  ds : Cset.kind;
  scheme : Qs_smr.Scheme.kind;
  n_processes : int;
  key_range : int;
  update_pct : int;
  ops_per_proc : int;  (** per-process operation budget *)
  duration : int;  (** virtual-time budget; whichever bound hits first *)
  capacity : int;  (** arena capacity; 0 = unbounded *)
  switch : int;  (** QSense C; 0 = smallest legal (Property 4) *)
  evict : int;
      (** QSense §5.2 eviction timeout dt; 0 = eviction off. Serialized as
          an optional [evict=] field (absent = 0), so pre-eviction case
          lines keep parsing. *)
  bags : int;
      (** limbo-list representation: [0] = the {!Qs_util.Vec} reference,
          [> 0] = {!Qs_util.Bag} with that block capacity. Serialized as an
          optional [bags=] field (absent = 64) so pre-bag case lines keep
          parsing. *)
  strategy : strategy;
  faults : Scheduler.fault list;
  seed : int;
}

val default_case : ds:Cset.kind -> scheme:Qs_smr.Scheme.kind -> seed:int -> case
(** 4 processes, 32 keys, 50% updates, 150 ops/process, 400k ticks,
    unbounded arena, C = 48, eviction off, bags of 64, [Fair], no
    faults. *)

type verdict =
  | Pass
  | Uaf of int  (** use-after-free oracle violations *)
  | Double_free of int
  | Oom of int  (** virtual time of arena exhaustion *)
  | Not_linearizable of int  (** offending key *)
  | Worker_exn of string

type lin_status =
  | Lin_ok  (** the history was actually checked *)
  | Lin_skipped_faults
      (** not checked: crash / skew faults make it unsound, or a
          memory-safety oracle already fired *)
  | Lin_skipped_strategy
      (** not checked: PCT priorities decouple execution order from the
          per-process virtual clocks, so recorded intervals misstate the
          real-time order the checker assumes *)
  | Lin_skipped_oom  (** not checked: exhaustion interrupts operations *)
  | Lin_too_large  (** a per-key sub-history exceeded the checker's limit *)

type outcome = {
  verdict : verdict;
  ops : int;
  steps : int;
  lin : lin_status;
  stats : Qs_smr.Smr_intf.stats;
  report : Qs_ds.Set_intf.report;
}

val verdict_class : verdict -> int
val same_class : verdict -> verdict -> bool
val verdict_to_string : verdict -> string

(** {1 Fault plans} *)

type fault_level =
  | No_faults
  | Stalls  (** three random mid-run process stalls *)
  | Victim_stall
      (** the paper's robustness scenario: the last process freezes early
          and for the rest of the run *)
  | Chaos  (** stalls + oversleep spike + skew burst + one crash *)
  | Churn
      (** dynamic membership: two processes leave and rejoin mid-run plus
          one random stall — hunts the adopted-node UAF class. Unlike
          crash/skew, churn does not block the linearizability check. *)
  | Neutralize
      (** two poison deliveries plus one stall — hunts the
          restart-then-double-free and unwind-path-leak classes introduced
          by DEBRA+-style neutralization. Restarted operations can
          double-apply, so this level blocks the linearizability check. *)

val fault_level_to_string : fault_level -> string

val plan : fault_level -> n:int -> duration:int -> seed:int -> Scheduler.fault list
(** Deterministically expand a level into an explicit fault list (stored in
    the case, so repro files never need to re-derive it). *)

(** {1 Running and shrinking} *)

val run_one : ?sink:Qs_intf.Runtime_intf.sink -> case -> outcome
(** Deterministic: equal cases give equal outcomes — with or without a
    [sink] (trace emission is schedule-neutral), so a traced replay of a
    repro file reproduces its verdict while producing a full timeline of
    the failure. The sink covers the worker phase only (not the fill). *)

val shrink : ?budget:int -> case -> verdict -> case * int
(** [shrink case v] greedily minimises [case] (fewer ops, processes, keys,
    faults; simpler strategy) while {!run_one} keeps returning a verdict of
    the same class as [v], spending at most [budget] extra runs (default
    40). Returns the smallest accepted case and the runs spent. *)

val explore : case list -> (case * outcome) list
(** Run every case; return the failing ones (non-[Pass] verdict class). *)

val seeds : base:int -> count:int -> int list
val with_seeds : case -> int list -> case list

(** {1 Repro and corpus files} *)

val to_string : case -> string
val of_string : string -> (case, string) result

val save_repro : string -> case -> outcome -> unit
(** Write a replayable one-case repro file (with the verdict in comments). *)

val load_repro : string -> case
(** First case line of a repro file. Raises [Failure] on a malformed file. *)

val save_corpus : string -> case list -> unit

val load_corpus : string -> case list
(** All case lines ('#' comments and blank lines ignored). Raises [Failure]
    on a malformed line. *)
