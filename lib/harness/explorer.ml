(* Adversarial schedule exploration over the simulator.

   One [case] fully determines one run: data structure, scheme, workload
   shape, scheduling strategy, fault plan and seed. [run_one] executes it
   and classifies the result with three oracles — the arena's node-state
   oracle (use-after-free, double free), memory exhaustion, and per-key
   linearizability of the recorded operation history. A failing case can be
   [shrink]'d to a smaller one with the same verdict class and round-tripped
   through a one-line repro file, so every CI failure is replayable from the
   artifact alone. *)

open Qs_sim
module Spec = Qs_workload.Spec

type strategy =
  | Fair
  | Pct of { depth : int }
  | Targeted of {
      victim : int;
      hook : Qs_intf.Runtime_intf.hook;
      skip : int;
      stall : int;
    }

type case = {
  ds : Cset.kind;
  scheme : Qs_smr.Scheme.kind;
  n_processes : int;
  key_range : int;
  update_pct : int;
  ops_per_proc : int;  (** per-process operation budget *)
  duration : int;  (** virtual-time budget; whichever bound hits first *)
  capacity : int;  (** arena capacity; 0 = unbounded *)
  switch : int;  (** QSense C; 0 = smallest legal (Property 4) *)
  evict : int;  (** QSense eviction timeout dt (§5.2); 0 = eviction off *)
  bags : int;  (** limbo representation: 0 = vec reference, >0 = bag capacity *)
  strategy : strategy;
  faults : Scheduler.fault list;
  seed : int;
}

let default_case ~ds ~scheme ~seed =
  { ds;
    scheme;
    n_processes = 4;
    key_range = 32;
    update_pct = 50;
    ops_per_proc = 150;
    duration = 400_000;
    capacity = 0;
    switch = 48;
    evict = 0;
    bags = 64;
    strategy = Fair;
    faults = [];
    seed }

type verdict =
  | Pass
  | Uaf of int
  | Double_free of int
  | Oom of int
  | Not_linearizable of int
  | Worker_exn of string

type lin_status =
  | Lin_ok
  | Lin_skipped_faults
  | Lin_skipped_strategy
  | Lin_skipped_oom
  | Lin_too_large

type outcome = {
  verdict : verdict;
  ops : int;
  steps : int;
  lin : lin_status;
  stats : Qs_smr.Smr_intf.stats;
  report : Qs_ds.Set_intf.report;
}

let verdict_class = function
  | Pass -> 0
  | Uaf _ -> 1
  | Double_free _ -> 2
  | Oom _ -> 3
  | Not_linearizable _ -> 4
  | Worker_exn _ -> 5

let same_class a b = verdict_class a = verdict_class b

let verdict_to_string = function
  | Pass -> "pass"
  | Uaf n -> Printf.sprintf "uaf:%d" n
  | Double_free n -> Printf.sprintf "double-free:%d" n
  | Oom t -> Printf.sprintf "oom:%d" t
  | Not_linearizable k -> Printf.sprintf "not-linearizable:%d" k
  | Worker_exn s -> "worker-exn:" ^ s

(* --- serialization: one "k=v" line per case ----------------------------- *)

let hook_to_string : Qs_intf.Runtime_intf.hook -> string = function
  | Hook_retire -> "retire"
  | Hook_scan -> "scan"
  | Hook_quiesce -> "quiesce"

let hook_of_string : string -> Qs_intf.Runtime_intf.hook option = function
  | "retire" -> Some Hook_retire
  | "scan" -> Some Hook_scan
  | "quiesce" -> Some Hook_quiesce
  | _ -> None

let strategy_to_string = function
  | Fair -> "fair"
  | Pct { depth } -> Printf.sprintf "pct:%d" depth
  | Targeted { victim; hook; skip; stall } ->
    Printf.sprintf "tgt:%d:%s:%d:%d" victim (hook_to_string hook) skip stall

let strategy_of_string s =
  match String.split_on_char ':' s with
  | [ "fair" ] -> Some Fair
  | [ "pct"; d ] -> Option.map (fun depth -> Pct { depth }) (int_of_string_opt d)
  | [ "tgt"; v; h; sk; st ] -> (
    match (int_of_string_opt v, hook_of_string h, int_of_string_opt sk, int_of_string_opt st) with
    | Some victim, Some hook, Some skip, Some stall ->
      Some (Targeted { victim; hook; skip; stall })
    | _ -> None)
  | _ -> None

let fault_to_string : Scheduler.fault -> string = function
  | Stall_at { pid; at; ticks } -> Printf.sprintf "stall:%d:%d:%d" pid at ticks
  | Crash_at { pid; at } -> Printf.sprintf "crash:%d:%d" pid at
  | Oversleep_spike { pid; at; extra } -> Printf.sprintf "spike:%d:%d:%d" pid at extra
  | Skew_burst { pid; at; until_; extra } ->
    Printf.sprintf "skew:%d:%d:%d:%d" pid at until_ extra
  | Churn_at { pid; at; ticks } -> Printf.sprintf "churn:%d:%d:%d" pid at ticks
  | Neutralize_at { pid; at } -> Printf.sprintf "neut:%d:%d" pid at

let fault_of_string s : Scheduler.fault option =
  let i = int_of_string_opt in
  match String.split_on_char ':' s with
  | [ "stall"; p; a; t ] -> (
    match (i p, i a, i t) with
    | Some pid, Some at, Some ticks -> Some (Stall_at { pid; at; ticks })
    | _ -> None)
  | [ "crash"; p; a ] -> (
    match (i p, i a) with
    | Some pid, Some at -> Some (Crash_at { pid; at })
    | _ -> None)
  | [ "spike"; p; a; e ] -> (
    match (i p, i a, i e) with
    | Some pid, Some at, Some extra -> Some (Oversleep_spike { pid; at; extra })
    | _ -> None)
  | [ "skew"; p; a; u; e ] -> (
    match (i p, i a, i u, i e) with
    | Some pid, Some at, Some until_, Some extra ->
      Some (Skew_burst { pid; at; until_; extra })
    | _ -> None)
  | [ "churn"; p; a; t ] -> (
    match (i p, i a, i t) with
    | Some pid, Some at, Some ticks -> Some (Churn_at { pid; at; ticks })
    | _ -> None)
  | [ "neut"; p; a ] -> (
    match (i p, i a) with
    | Some pid, Some at -> Some (Neutralize_at { pid; at })
    | _ -> None)
  | _ -> None

let faults_to_string = function
  | [] -> "-"
  | fs -> String.concat "," (List.map fault_to_string fs)

let faults_of_string = function
  | "-" -> Some []
  | s ->
    let parts = String.split_on_char ',' s in
    let fs = List.filter_map fault_of_string parts in
    if List.length fs = List.length parts then Some fs else None

let to_string c =
  Printf.sprintf
    "ds=%s scheme=%s n=%d keys=%d upd=%d ops=%d dur=%d cap=%d switch=%d evict=%d \
     bags=%d strat=%s faults=%s seed=%d"
    (Cset.kind_to_string c.ds)
    (Qs_smr.Scheme.to_string c.scheme)
    c.n_processes c.key_range c.update_pct c.ops_per_proc c.duration c.capacity
    c.switch c.evict c.bags
    (strategy_to_string c.strategy)
    (faults_to_string c.faults)
    c.seed

let of_string line : (case, string) result =
  let fields =
    List.filter_map
      (fun tok ->
        match String.index_opt tok '=' with
        | None -> None
        | Some i ->
          Some (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1)))
      (String.split_on_char ' ' (String.trim line))
  in
  let find k = List.assoc_opt k fields in
  let int_field k = Option.bind (find k) int_of_string_opt in
  match
    ( Option.bind (find "ds") Cset.kind_of_string,
      Option.bind (find "scheme") Qs_smr.Scheme.of_string,
      Option.bind (find "strat") strategy_of_string,
      Option.bind (find "faults") faults_of_string )
  with
  | Some ds, Some scheme, Some strategy, Some faults -> (
    match
      ( int_field "n",
        int_field "keys",
        int_field "upd",
        int_field "ops",
        int_field "dur",
        int_field "cap",
        int_field "switch",
        int_field "seed" )
    with
    | ( Some n_processes,
        Some key_range,
        Some update_pct,
        Some ops_per_proc,
        Some duration,
        Some capacity,
        Some switch,
        Some seed ) ->
      (* [bags] and [evict] are optional so older corpus/repro lines keep
         parsing; absent means the default bag representation / no
         eviction *)
      let bags = Option.value (int_field "bags") ~default:64 in
      let evict = Option.value (int_field "evict") ~default:0 in
      Ok
        { ds;
          scheme;
          n_processes;
          key_range;
          update_pct;
          ops_per_proc;
          duration;
          capacity;
          switch;
          evict;
          bags;
          strategy;
          faults;
          seed }
    | _ -> Error (Printf.sprintf "explorer case: bad numeric field in %S" line))
  | _ -> Error (Printf.sprintf "explorer case: bad ds/scheme/strat/faults in %S" line)

(* --- fault-plan generation ---------------------------------------------- *)

type fault_level =
  | No_faults
  | Stalls
  | Victim_stall
  | Chaos
  | Churn
  | Neutralize

let fault_level_to_string = function
  | No_faults -> "none"
  | Stalls -> "stalls"
  | Victim_stall -> "victim-stall"
  | Chaos -> "chaos"
  | Churn -> "churn"
  | Neutralize -> "neutralize"

(* A deterministic fault plan for the given level; everything is drawn from
   [seed] so the plan is reproducible from the case line alone (the plan is
   expanded into the case's explicit fault list, never re-derived). *)
let plan level ~n ~duration ~seed : Scheduler.fault list =
  let prng = Qs_util.Prng.create ~seed:(seed + 0x5EED) in
  let pid () = Qs_util.Prng.int prng n in
  let at () = duration / 10 + Qs_util.Prng.int prng (max 1 (duration / 2)) in
  match level with
  | No_faults -> []
  | Stalls ->
    List.init 3 (fun _ ->
        Scheduler.Stall_at
          { pid = pid (); at = at (); ticks = duration / 8 + Qs_util.Prng.int prng (duration / 4) })
  | Victim_stall ->
    (* the paper's robustness scenario: one process freezes early and for
       (effectively) the rest of the run *)
    [ Scheduler.Stall_at { pid = n - 1; at = duration / 8; ticks = 4 * duration } ]
  | Chaos ->
    [ Scheduler.Stall_at
        { pid = pid (); at = at (); ticks = duration / 8 + Qs_util.Prng.int prng (duration / 4) };
      Scheduler.Stall_at
        { pid = pid (); at = at (); ticks = duration / 8 + Qs_util.Prng.int prng (duration / 4) };
      Scheduler.Oversleep_spike { pid = pid (); at = at (); extra = 2_000 + Qs_util.Prng.int prng 4_000 };
      Scheduler.Skew_burst
        { pid = pid (); at = at (); until_ = duration; extra = 500 + Qs_util.Prng.int prng 1_000 };
      Scheduler.Crash_at { pid = pid (); at = at () } ]
  | Churn ->
    (* dynamic membership: two processes leave and rejoin mid-run (one while
       a third is stalled, so its hazards must survive the membership
       change), exercising unregister / orphan adoption / slot reuse. The
       adopted-node UAF is the failure class this level hunts. *)
    [ Scheduler.Churn_at { pid = 1 mod n; at = duration / 6; ticks = duration / 8 };
      Scheduler.Churn_at
        { pid = n - 1;
          at = duration / 3;
          ticks = duration / 6 + Qs_util.Prng.int prng (max 1 (duration / 8)) };
      Scheduler.Stall_at
        { pid = pid (); at = at (); ticks = duration / 8 + Qs_util.Prng.int prng (duration / 4) } ]
  | Neutralize ->
    (* rival-scheme delivery: restart signals land mid-operation (the
       victim's in-flight op is discontinued and retried), plus one long
       stall so a pinned laggard exists for schemes that neutralize on
       their own (DEBRA+). Aborted ops make histories incomplete, so this
       level — like crashes — skips the linearizability oracle and hunts
       memory-safety classes: the restart-then-double-free and the
       unwind-path leak. *)
    [ Scheduler.Neutralize_at { pid = pid (); at = at () };
      Scheduler.Neutralize_at { pid = pid (); at = at () };
      Scheduler.Stall_at
        { pid = pid (); at = at (); ticks = duration / 8 + Qs_util.Prng.int prng (duration / 4) } ]

(* --- the runner --------------------------------------------------------- *)

let has_crash faults =
  List.exists (function Scheduler.Crash_at _ -> true | _ -> false) faults

let has_skew faults =
  List.exists (function Scheduler.Skew_burst _ -> true | _ -> false) faults

let has_neutralize faults =
  List.exists (function Scheduler.Neutralize_at _ -> true | _ -> false) faults

(* Scheme-appropriate operating point (mirrors Sim_exp): rooster-dependent
   schemes get roosters at T with oversleep <= epsilon/2; the others get no
   roosters and a vacuous age check, the adversarial setting under which
   fenced HP must still be safe and unfenced HP is not. *)
let t_rooster = 4_000
let epsilon = 600

let scheduler_strategy (c : case) : Scheduler.strategy =
  match c.strategy with
  | Fair -> Scheduler.Fair
  | Pct { depth } ->
    (* PCT gets its own stream derived from the case seed, so the same
       memory-timing seed is explored under a schedule that varies with it *)
    Scheduler.Pct { depth; seed = (c.seed * 7_919) + 13 }
  | Targeted { victim; hook; skip; stall } ->
    Scheduler.Targeted { victim; hook; skip; stall }

let run_one ?sink (c : case) : outcome =
  let module C = (val Sim_exp.cset_of c.ds) in
  let n = c.n_processes in
  let needs_roosters = Qs_smr.Scheme.needs_roosters c.scheme in
  let sched_cfg =
    { (Scheduler.default_config ~n_cores:n ~seed:c.seed) with
      rooster_interval = (if needs_roosters then Some t_rooster else None);
      rooster_oversleep = (if needs_roosters then epsilon / 2 else 0);
      cost = { Scheduler.default_cost with stall_prob = 0.05; stall_max = 600 };
      strategy = scheduler_strategy c }
  in
  let sched = Scheduler.create sched_cfg in
  let smr =
    { (Qs_smr.Smr_intf.default_config ~n_processes:n ~hp_per_process:2) with
      quiescence_threshold = 8;
      scan_threshold = 2;
      scan_factor = 0.;
      rooster_interval = (if needs_roosters then t_rooster else 0);
      epsilon = (if needs_roosters then epsilon else 0);
      switch_threshold = c.switch;
      eviction_timeout = (if c.evict > 0 then Some c.evict else None);
      limbo_bags = c.bags > 0;
      bag_capacity = (if c.bags > 0 then c.bags else 64) }
  in
  let set_cfg =
    { Qs_ds.Set_intf.scheme = c.scheme;
      smr;
      capacity = (if c.capacity > 0 then Some c.capacity else None);
      debug_checks = true }
  in
  let set = C.create set_cfg in
  let ctxs = Array.init n (fun pid -> C.register set ~pid) in
  let spec = Spec.make ~key_range:c.key_range ~update_pct:c.update_pct in
  let initial = Spec.initial_keys spec in
  Scheduler.exec sched ~pid:0 (fun () ->
      let keys = Array.of_list initial in
      Qs_util.Prng.shuffle (Qs_util.Prng.create ~seed:c.seed) keys;
      Array.iter (fun k -> ignore (C.insert ctxs.(0) k)) keys);
  Scheduler.reset_clocks sched;
  Scheduler.inject sched c.faults;
  (* Tracing (if requested) covers the worker phase only; emission is
     schedule-neutral, so a traced replay reproduces the verdict exactly. *)
  Scheduler.set_sink sched sink;
  let history = Qs_verify.History.create ~n in
  let per_worker_ops = Array.make n 0 in
  let failed_at = ref None in
  let master = Qs_util.Prng.create ~seed:(c.seed + 7919) in
  let prngs = Array.init n (fun _ -> Qs_util.Prng.split master) in
  for pid = 0 to n - 1 do
    Scheduler.spawn sched ~pid (fun () ->
        let prng = prngs.(pid) in
        let ctx = ref ctxs.(pid) in
        let rec loop () =
          (* Worker churn: the scheduler only queues the request (polling is
             effect-free); the leave / sit-out / rejoin is ours to perform,
             because registration belongs to the SMR scheme, not the core. *)
          (match Scheduler.take_churn sched ~pid with
          | Some downtime ->
            C.unregister !ctx;
            Sim_runtime.sleep_until (Sim_runtime.now () + downtime);
            ctx := C.register set ~pid;
            ctxs.(pid) <- !ctx
          | None -> ());
          let t = Sim_runtime.now () in
          if per_worker_ops.(pid) < c.ops_per_proc && t < c.duration && !failed_at = None
          then begin
            (* The operation body is the interruptible region: a posted
               neutralization signal (a [Neutralize_at] fault, or DEBRA+
               restarting a laggard) is delivered while — and only while —
               the opt-in flag is up. An aborted operation is retried by
               the loop and is neither recorded nor counted: it may have
               half-applied, which is exactly why neutralizing runs skip
               the linearizability oracle. *)
            Scheduler.set_neutralizable sched ~pid true;
            (try
               let op, key, result =
                 match Spec.pick prng spec with
                 | Search k -> (Qs_verify.History.Search, k, C.search !ctx k)
                 | Insert k -> (Qs_verify.History.Insert, k, C.insert !ctx k)
                 | Delete k -> (Qs_verify.History.Delete, k, C.delete !ctx k)
               in
               let t' = Sim_runtime.now () in
               Qs_verify.History.record history ~pid ~op ~key ~inv:t ~res:t' ~result;
               per_worker_ops.(pid) <- per_worker_ops.(pid) + 1
             with
             | Qs_arena.Arena.Exhausted ->
               if !failed_at = None then failed_at := Some t
             | Qs_intf.Runtime_intf.Neutralized -> ());
            Scheduler.set_neutralizable sched ~pid false;
            loop ()
          end
        in
        loop ())
  done;
  Scheduler.run_all sched;
  let ops = Array.fold_left ( + ) 0 per_worker_ops in
  let report = C.report set in
  let violations = C.violations set in
  let worker_failures = Scheduler.failures sched in
  (* Neutralization — injected or performed by the scheme itself — aborts
     operations after real effects (a delete may have unlinked and retired
     before the restart), so the recorded history is incomplete and the
     check must not run. *)
  let lin_blocked_by_faults =
    has_crash c.faults || has_skew c.faults || has_neutralize c.faults
    || report.smr.neutralizations > 0
  in
  (* PCT also blocks the check: priorities decouple execution order from
     the per-process virtual clocks, so the recorded intervals no longer
     approximate real-time order (a low-priority process runs late in the
     schedule while its clock — and hence its recorded invocation times —
     lag far behind the rest of the system). *)
  let lin_blocked_by_strategy =
    match c.strategy with Pct _ -> true | Fair | Targeted _ -> false
  in
  let lin =
    ref (if lin_blocked_by_strategy then Lin_skipped_strategy else Lin_skipped_faults)
  in
  (* The memory-safety oracles outrank everything: a UAF explains any
     downstream anomaly. The linearizability check runs only on complete,
     skew-free histories (crashed workers leave half-done operations with
     real effects; skew bursts break the real-time order the checker
     assumes; exhaustion interrupts operations mid-flight). *)
  let verdict =
    if violations > 0 then Uaf violations
    else if report.double_frees > 0 then Double_free report.double_frees
    else
      match worker_failures with
      | (pid, e) :: _ ->
        Worker_exn (Printf.sprintf "pid%d:%s" pid (Printexc.to_string e))
      | [] -> (
        match !failed_at with
        | Some tm ->
          lin := Lin_skipped_oom;
          Oom tm
        | None ->
          if lin_blocked_by_faults || lin_blocked_by_strategy then Pass
          else (
            match
              Qs_verify.Lin_check.check_set ~initial
                (Qs_verify.History.entries history)
            with
            | Qs_verify.Lin_check.Ok ->
              lin := Lin_ok;
              Pass
            | Qs_verify.Lin_check.Violation k ->
              lin := Lin_ok;
              Not_linearizable k
            | Qs_verify.Lin_check.Too_large _ ->
              lin := Lin_too_large;
              Pass))
  in
  { verdict;
    ops;
    steps = Scheduler.steps sched;
    lin = !lin;
    stats = report.smr;
    report }

(* --- counterexample shrinking ------------------------------------------- *)

(* Drop the parts of a case that stop making sense with fewer processes. *)
let restrict_procs c n' =
  let ok_pid p = p < n' in
  let faults =
    List.filter
      (fun (f : Scheduler.fault) ->
        match f with
        | Stall_at { pid; _ } | Crash_at { pid; _ } | Oversleep_spike { pid; _ }
        | Skew_burst { pid; _ } | Churn_at { pid; _ } | Neutralize_at { pid; _ } ->
          ok_pid pid)
      c.faults
  in
  let strategy =
    match c.strategy with
    | Targeted { victim; _ } when not (ok_pid victim) -> Fair
    | s -> s
  in
  { c with n_processes = n'; faults; strategy }

let shrink_candidates c =
  let cands = ref [] in
  let add c' = if c' <> c then cands := c' :: !cands in
  if c.ops_per_proc > 20 then add { c with ops_per_proc = max 20 (c.ops_per_proc / 2) };
  if c.ops_per_proc > 20 then add { c with ops_per_proc = max 20 (c.ops_per_proc * 3 / 4) };
  if c.duration > 50_000 then add { c with duration = max 50_000 (c.duration / 2) };
  if c.key_range > 4 then add { c with key_range = max 4 (c.key_range / 2) };
  if c.n_processes > 2 then add (restrict_procs c (c.n_processes - 1));
  (match c.faults with
  | [] -> ()
  | [ _ ] -> add { c with faults = [] }
  | _ :: rest ->
    add { c with faults = rest };
    add { c with faults = [] });
  (match c.strategy with
  | Pct { depth } when depth > 1 -> add { c with strategy = Pct { depth = depth - 1 } }
  | Pct _ -> add { c with strategy = Fair }
  | _ -> ());
  List.rev !cands

(* Greedy shrink: accept any candidate that reproduces the same verdict
   class, iterate to a fixpoint, spending at most [budget] runs. Returns the
   smallest accepted case and the number of runs spent. *)
let shrink ?(budget = 40) (c : case) (v : verdict) : case * int =
  let spent = ref 0 in
  let current = ref c in
  let improved = ref true in
  while !improved && !spent < budget do
    improved := false;
    let rec try_cands = function
      | [] -> ()
      | cand :: rest ->
        if !spent < budget then begin
          incr spent;
          if same_class (run_one cand).verdict v then begin
            current := cand;
            improved := true
          end
          else try_cands rest
        end
    in
    try_cands (shrink_candidates !current)
  done;
  (!current, !spent)

(* --- exploration + repro/corpus files ----------------------------------- *)

let seeds ~base ~count = List.init count (fun i -> base + (i * 131))

let with_seeds c ss = List.map (fun seed -> { c with seed }) ss

let explore cases =
  List.filter_map
    (fun c ->
      let o = run_one c in
      if same_class o.verdict Pass then None else Some (c, o))
    cases

let save_repro path (c : case) (o : outcome) =
  let oc = open_out path in
  Printf.fprintf oc
    "# explorer repro: replay with Explorer.run_one (load_repro %S)\n\
     # verdict: %s  ops: %d  steps: %d\n\
     %s\n"
    path (verdict_to_string o.verdict) o.ops o.steps (to_string c);
  close_out oc

let parse_lines lines =
  List.filter_map
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then None
      else
        match of_string line with
        | Ok c -> Some c
        | Error msg -> failwith msg)
    lines

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let load_corpus path = parse_lines (read_lines path)

let load_repro path =
  match load_corpus path with
  | c :: _ -> c
  | [] -> failwith (Printf.sprintf "explorer repro %s: no case line" path)

let save_corpus path cases =
  let oc = open_out path in
  Printf.fprintf oc "# explorer seed corpus — replayed as a regression test\n";
  List.iter (fun c -> Printf.fprintf oc "%s\n" (to_string c)) cases;
  close_out oc
