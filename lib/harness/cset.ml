(** The uniform view of a concurrent set the experiment harness drives.
    Every data structure in {!Qs_ds}, applied to a runtime, matches this
    signature. *)

module type S = sig
  type t
  type ctx

  val create : Qs_ds.Set_intf.config -> t

  val register : t -> pid:int -> ctx
  (** Obtain a per-process context. A pid slot vacated by {!unregister} may
      be re-registered later (worker churn). *)

  val unregister : ctx -> unit
  (** Dynamic membership: leave the computation. The context's SMR pid slot
      is retired — hazard pointers cleared, limbo lists donated to the
      scheme's orphan pool for survivors to adopt — and becomes available
      to a later {!register}. Call in process context, between operations;
      the context is dead afterwards (only {!flush} stays legal). *)

  val search : ctx -> int -> bool
  val insert : ctx -> int -> bool
  val delete : ctx -> int -> bool
  val to_list : ctx -> int list
  val size : ctx -> int
  val flush : ctx -> unit
  val report : t -> Qs_ds.Set_intf.report
  val violations : t -> int
  val retired_count : t -> int
  val outstanding : t -> int
  val scheme_name : t -> string

  val nodes_per_key : int
  (** Arena nodes per live key: 1 for the lists and the skip list, 2 for the
      external BST (leaf + internal router). *)
end

type kind = List | Skiplist | Bst | Hashtable

let kind_to_string = function
  | List -> "list"
  | Skiplist -> "skiplist"
  | Bst -> "bst"
  | Hashtable -> "hashtable"

let nodes_per_key_of = function Bst -> 2 | List | Skiplist | Hashtable -> 1

let kind_of_string = function
  | "list" -> Some List
  | "skiplist" -> Some Skiplist
  | "bst" -> Some Bst
  | "hashtable" -> Some Hashtable
  | _ -> None
