(** Experiment runner over the deterministic simulator.

    One experiment = N worker processes, one per virtual core, running a
    random mix of set operations for a fixed span of virtual time, with
    optional delay injection (a chosen victim process sleeping through given
    windows, as in the paper's §7.2 robustness runs) and an optional arena
    capacity (exceeding it models running out of memory). Throughput is
    operations per million virtual ticks — the analogue of the paper's
    Mops/s. *)

open Qs_sim

type delays = { victim : int; windows : (int * int) list }

type churn = { every_ops : int; downtime : int }

type setup = {
  ds : Cset.kind;
  scheme : Qs_smr.Scheme.kind;
  n_processes : int;
  workload : Qs_workload.Spec.t;
  duration : int;
  seed : int;
  capacity : int option;
  delays : delays option;
  churn : churn option;
      (** worker churn: every [every_ops] completed operations, each worker
          with pid > 0 unregisters (donating its limbo lists to the orphan
          pool), sits out [downtime] ticks, and re-registers under the same
          pid. Pid 0 stays put so the fill/teardown context stays alive. *)
  sample_every : int;  (** bucket width of the throughput series; 0 = none *)
  record_latency : bool;  (** collect per-operation latencies (in ticks) *)
  latency : Qs_obs.Latency.recorder option;
      (** per-{pid × op-kind} online histograms + top-K outliers, recorded
          via meta-level clock reads ([Scheduler.clock_of]) so schedules
          are byte-identical with the recorder on or off *)
  generator : Qs_workload.Generator.t option;
      (** pre-generated op streams (cyclic, indexed by completed ops) in
          place of on-line [Spec.pick] draws — the same logical sequence
          replayable across schemes for latency comparisons *)
  faults : Scheduler.fault list;
      (** injected after the fill, re-armed by the clock reset, so fault
          times are in measured time *)
  sink : Qs_intf.Runtime_intf.sink option;
      (** trace sink (e.g. [Qs_obs.Tracer.sink]), installed after the fill
          so the trace covers measured time only; [None] = tracing off *)
  smr_tweak : Qs_smr.Smr_intf.config -> Qs_smr.Smr_intf.config;
  sched_tweak : Scheduler.config -> Scheduler.config;
}

let default_setup ~ds ~scheme ~n_processes ~workload =
  { ds;
    scheme;
    n_processes;
    workload;
    duration = 300_000;
    seed = 1;
    capacity = None;
    delays = None;
    churn = None;
    sample_every = 0;
    record_latency = false;
    latency = None;
    generator = None;
    faults = [];
    sink = None;
    smr_tweak = Fun.id;
    sched_tweak = Fun.id }

type result = {
  ops_total : int;
  per_worker_ops : int array;
  throughput : float;  (** ops per million virtual ticks *)
  series : float array;  (** ops/Mtick per sample bucket *)
  failed_at : int option;  (** virtual time of memory exhaustion, if any *)
  latencies : int array;  (** per-operation latencies in ticks, all workers *)
  violations : int;
  report : Qs_ds.Set_intf.report;
  rooster_fires : int;
  final_size : int;
  churn_events : int;  (** completed leave/rejoin cycles across all workers *)
  leak_check : [ `Ok | `Leaked of int | `Skipped ];
      (** after teardown flush: do outstanding nodes match live nodes? *)
}

(* The paper's defaults scaled to simulator ticks: rooster interval T and
   the quiescence/scan thresholds. *)
let default_rooster_interval = 4_000
let default_epsilon = 600

let base_smr_config ~n_processes =
  { (Qs_smr.Smr_intf.default_config ~n_processes ~hp_per_process:2) with
    quiescence_threshold = 32;
    scan_threshold = 32;
    rooster_interval = default_rooster_interval;
    epsilon = default_epsilon }

let cset_of : Cset.kind -> (module Cset.S) = function
  | Cset.List -> (module Qs_ds.Linked_list.Make (Sim_runtime))
  | Cset.Skiplist -> (module Qs_ds.Skiplist.Make (Sim_runtime))
  | Cset.Bst -> (module Qs_ds.Bst.Make (Sim_runtime))
  | Cset.Hashtable -> (module Qs_ds.Hashtable.Make (Sim_runtime))

let run (setup : setup) : result =
  let module C = (val cset_of setup.ds) in
  let n = setup.n_processes in
  let sched_cfg =
    setup.sched_tweak
      { (Scheduler.default_config ~n_cores:n ~seed:setup.seed) with
        rooster_interval =
          (if Qs_smr.Scheme.needs_roosters setup.scheme then
             Some default_rooster_interval
           else None);
        rooster_oversleep = default_epsilon / 2 }
  in
  let sched = Scheduler.create sched_cfg in
  let set_cfg =
    { Qs_ds.Set_intf.scheme = setup.scheme;
      smr = setup.smr_tweak (base_smr_config ~n_processes:n);
      capacity = setup.capacity;
      debug_checks = true }
  in
  let set = C.create set_cfg in
  let ctxs = Array.init n (fun pid -> C.register set ~pid) in
  (* Pre-fill to half the key range from a single process (§7.1). *)
  Scheduler.exec sched ~pid:0 (fun () ->
      (* shuffled so that unbalanced structures (the external BST) do not
         degenerate under an ascending fill *)
      let keys = Array.of_list (Qs_workload.Spec.initial_keys setup.workload) in
      Qs_util.Prng.shuffle (Qs_util.Prng.create ~seed:setup.seed) keys;
      Array.iter (fun k -> ignore (C.insert ctxs.(0) k)) keys);
  (* faults go in after the fill (so they cannot fire during it) and
     before the clock reset, which re-arms them on the measured time base *)
  if setup.faults <> [] then Scheduler.inject sched setup.faults;
  (* measured time starts now, not after the fill *)
  Scheduler.reset_clocks sched;
  (* install the trace sink only now, so traces cover measured time only
     (fill-phase timestamps would precede the clock reset) *)
  Scheduler.set_sink sched setup.sink;
  let n_buckets =
    if setup.sample_every > 0 then (setup.duration / setup.sample_every) + 1 else 0
  in
  let buckets = Array.make (max n_buckets 1) 0 in
  let per_worker_ops = Array.make n 0 in
  let latency_logs = Array.init n (fun _ -> ref []) in
  let failed_at = ref None in
  let churn_counts = Array.make n 0 in
  let master = Qs_util.Prng.create ~seed:(setup.seed + 7919) in
  let prngs = Array.init n (fun _ -> Qs_util.Prng.split master) in
  for pid = 0 to n - 1 do
    Scheduler.spawn sched ~pid (fun () ->
        let prng = prngs.(pid) in
        let ctx = ref ctxs.(pid) in
        let windows =
          match setup.delays with
          | Some d when d.victim = pid -> d.windows
          | _ -> []
        in
        (* Worker churn: next op count at which this worker leaves. Staggered
           by pid so the workers do not all vacate at once. *)
        let next_churn =
          match setup.churn with
          | Some c when pid > 0 && c.every_ops > 0 ->
            ref (c.every_ops + (pid * c.every_ops / n))
          | _ -> ref max_int
        in
        let rec loop () =
          (match setup.churn with
          | Some c when per_worker_ops.(pid) >= !next_churn ->
            (* leave: retire the SMR slot (limbo lists go to the orphan
               pool), sit out, rejoin under the same pid *)
            C.unregister !ctx;
            Sim_runtime.sleep_until (Sim_runtime.now () + c.downtime);
            ctx := C.register set ~pid;
            ctxs.(pid) <- !ctx;
            churn_counts.(pid) <- churn_counts.(pid) + 1;
            next_churn := !next_churn + c.every_ops
          | _ -> ());
          let t = Sim_runtime.now () in
          if t < setup.duration && !failed_at = None then begin
            (match
               List.find_opt (fun (a, b) -> a <= t && t < b) windows
             with
            | Some (_, b) ->
              (* clamp: no point sleeping past the end of the experiment *)
              Sim_runtime.sleep_until (min b setup.duration)
            | None ->
              (* The operation body is the interruptible region for
                 neutralization signals (DEBRA+ restarting a laggard, or an
                 injected [Neutralize_at] fault): delivery only happens
                 while the opt-in flag is up, never during the churn
                 leave/rejoin or the delay sleep. An aborted operation is
                 retried by the loop and not counted. *)
              Scheduler.set_neutralizable sched ~pid true;
              (try
                 (* Index pre-generated streams by *completed* ops so an
                    aborted (neutralized) operation is retried, keeping
                    the logical sequence identical across schemes. *)
                 let op =
                   match setup.generator with
                   | Some g ->
                     Qs_workload.Generator.op g ~pid ~i:per_worker_ops.(pid)
                   | None -> Qs_workload.Spec.pick prng setup.workload
                 in
                 (match op with
                 | Search k -> ignore (C.search !ctx k)
                 | Insert k -> ignore (C.insert !ctx k)
                 | Delete k -> ignore (C.delete !ctx k));
                 (match setup.latency with
                 | Some r ->
                   (* [clock_of] is a meta-level read of the core clock —
                      no effect is performed, so recording cannot shift
                      the seeded schedule (same contract as [E_emit]). *)
                   let t1 = Scheduler.clock_of sched ~pid in
                   Qs_obs.Latency.observe r ~pid
                     ~kind:(Qs_workload.Spec.kind_index op)
                     ~start:t ~dur:(t1 - t)
                 | None -> ());
                 if setup.record_latency then begin
                   let log = latency_logs.(pid) in
                   log := (Sim_runtime.now () - t) :: !log
                 end;
                 per_worker_ops.(pid) <- per_worker_ops.(pid) + 1;
                 if setup.sample_every > 0 then begin
                   let b = t / setup.sample_every in
                   if b < Array.length buckets then
                     buckets.(b) <- buckets.(b) + 1
                 end
               with
              | Qs_arena.Arena.Exhausted ->
                if !failed_at = None then failed_at := Some t
              | Qs_intf.Runtime_intf.Neutralized -> ());
              Scheduler.set_neutralizable sched ~pid false);
            loop ()
          end
        in
        loop ())
  done;
  Scheduler.run_all sched;
  (match Scheduler.failures sched with
  | [] -> ()
  | (pid, e) :: _ ->
    failwith
      (Printf.sprintf "sim worker %d died: %s" pid (Printexc.to_string e)));
  let ops_total = Array.fold_left ( + ) 0 per_worker_ops in
  let throughput = float_of_int ops_total /. float_of_int setup.duration *. 1e6 in
  let series =
    if setup.sample_every = 0 then [||]
    else
      Array.map
        (fun c -> float_of_int c /. float_of_int setup.sample_every *. 1e6)
        buckets
  in
  let violations = C.violations set in
  let final_size = Scheduler.exec sched ~pid:0 (fun () -> C.size ctxs.(0)) in
  (* capture statistics before the teardown flush below frees everything *)
  let report = C.report set in
  let leak_check =
    if setup.scheme = Qs_smr.Scheme.None_ then `Skipped
    else begin
      Scheduler.exec sched ~pid:0 (fun () -> Array.iter C.flush ctxs);
      let leaked = C.outstanding set - (C.nodes_per_key * final_size) in
      if leaked = 0 then `Ok else `Leaked leaked
    end
  in
  let latencies =
    Array.of_list
      (Array.fold_left (fun acc l -> List.rev_append !l acc) [] latency_logs)
  in
  { ops_total;
    per_worker_ops;
    throughput;
    series;
    latencies;
    failed_at = !failed_at;
    violations;
    report;
    rooster_fires = Scheduler.rooster_fires sched;
    final_size;
    churn_events = Array.fold_left ( + ) 0 churn_counts;
    leak_check }
