(** Coverage-guided seed scheduling (DESIGN.md §12).

    The observatory's event stream doubles as a coverage signal: a
    per-event counter sink classifies each explorer run by which scheme
    transitions it reached, and {!grow} breeds a corpus that keeps
    witnesses for the rare classes — QSense fallback entry, eviction-seize,
    unregister, orphan adoption, bag sealing — by prioritizing the seed
    neighborhoods of cases that hit them. Growth is deterministic: results
    are processed in frontier order, so the same base list yields the same
    corpus for any [jobs] count. *)

type t = { counts : int array }
(** Event counts for one run, indexed by
    {!Qs_intf.Runtime_intf.event_index}. *)

val n_events : int

val create : unit -> t

val sink : t -> Qs_intf.Runtime_intf.sink
(** Counting sink; allocation-free per record. *)

val count : t -> Qs_intf.Runtime_intf.event -> int
val covers : t -> int -> bool

val rare_classes : (string * int) list
(** [(name, event_index)] of the event classes the corpus must witness. *)

val rare_mask : t -> int
(** Bitmask (by event index) of the rare classes this run reached. *)

val run_covered : Explorer.case -> Explorer.outcome * t
(** {!Explorer.run_one} with a counting sink installed (schedule-neutral:
    the verdict equals the sink-free run's). *)

val mutations : Explorer.case -> Explorer.case list
(** The deterministic seed neighborhood of a case: nearby seeds, PCT-style
    depth mutations, bag-capacity flips. *)

type growth = {
  selected : (Explorer.case * t) list;  (** acceptance order *)
  class_counts : int array;
      (** per event index: how many selected cases reached it *)
  runs : int;  (** {!Explorer.run_one} invocations spent *)
}

val grow :
  ?jobs:int ->
  ?batch:int ->
  ?budget:int ->
  ?quota:int ->
  target:int ->
  Explorer.case list ->
  growth
(** [grow ~target base] explores from the [base] frontier until [target]
    passing cases are selected (or [budget] runs are spent), batching
    [batch] cases at a time through {!Explorer_pool.map} with [jobs]
    workers. Failing cases are never selected (the corpus is known-clean by
    construction); cases hitting a rare class whose selected-witness count
    is below [quota] get their {!mutations} enqueued ahead of the uniform
    backlog. *)
