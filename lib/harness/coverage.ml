(* Coverage-guided seed scheduling over the observatory's event stream.

   The trace events the schemes already emit (Runtime_intf.event) double as
   a coverage signal: a schedule that reaches a rare scheme transition —
   QSense fallback entry, orphan adoption, eviction-seize, bag sealing — is
   worth more corpus slots than yet another uniform-random schedule that
   never leaves the fast path. [grow] explores a frontier of candidate
   cases through the worker pool, and cases that hit rare events get their
   seed neighborhoods (nearby seeds, PCT-depth mutations, bag-capacity
   flips) enqueued at high priority, DEBRA-grade rarity first.

   Everything is deterministic: pool results come back in input order, the
   frontier is processed in that order, and mutations are pure functions of
   the case line — so the same base list grows the same corpus regardless
   of worker timing or job count. *)

module RI = Qs_intf.Runtime_intf

let n_events = 15

(* Keep [n_events] in sync with Runtime_intf.event. *)
let () =
  assert (RI.event_of_index (n_events - 1) <> None);
  assert (RI.event_of_index n_events = None)

type t = { counts : int array }

let create () = { counts = Array.make n_events 0 }

(* The sink bumps a per-event counter: ints only, no allocation per
   record, so installing it is as schedule-neutral as any other sink. *)
let sink cov : RI.sink =
  { record =
      (fun ~pid:_ ~time:_ ~ev ~a:_ ~b:_ ->
        let i = RI.event_index ev in
        cov.counts.(i) <- cov.counts.(i) + 1) }

let count cov ev = cov.counts.(RI.event_index ev)
let covers cov i = cov.counts.(i) > 0

(* The rare-event classes the corpus must keep witnesses for: each marks a
   scheme transition whose safety argument is non-trivial (fallback entry:
   QSense's HP switch; evict: §5.2 seizure; unregister/adopt: dynamic
   membership and orphan limbo; bag_seal: batched-reclamation stamping;
   neutralize: DEBRA+ restart delivery at a poisoned victim). *)
let rare_classes =
  [ ("fallback_enter", RI.event_index RI.Ev_fallback_enter);
    ("evict", RI.event_index RI.Ev_evict);
    ("unregister", RI.event_index RI.Ev_unregister);
    ("adopt", RI.event_index RI.Ev_adopt);
    ("bag_seal", RI.event_index RI.Ev_bag_seal);
    ("neutralize", RI.event_index RI.Ev_neutralize) ]

let rare_mask cov =
  List.fold_left
    (fun m (_, i) -> if covers cov i then m lor (1 lsl i) else m)
    0 rare_classes

let run_covered (c : Explorer.case) : Explorer.outcome * t =
  let cov = create () in
  let o = Explorer.run_one ~sink:(sink cov) c in
  (o, cov)

(* --- mutation: the seed neighborhood of an interesting case -------------- *)

(* Pure function of the case line; 131 is the stride Explorer.seeds uses,
   so neighborhoods interleave with, rather than shadow, the base sweep. *)
let mutations (c : Explorer.case) : Explorer.case list =
  let seeds =
    [ { c with Explorer.seed = c.Explorer.seed + 1 };
      { c with Explorer.seed = c.Explorer.seed + 131 };
      { c with Explorer.seed = (c.Explorer.seed * 3) + 7 } ]
  in
  let depth =
    (* PCT-style depth mutation: rare transitions often need one more (or
       one fewer) forced preemption than the schedule that found them. *)
    match c.Explorer.strategy with
    | Explorer.Fair -> [ { c with Explorer.strategy = Pct { depth = 3 } } ]
    | Explorer.Pct { depth } ->
      [ { c with Explorer.strategy = Pct { depth = depth + 1 } };
        { c with Explorer.strategy = Pct { depth = max 1 (depth - 1) } } ]
    | Explorer.Targeted _ -> []
  in
  let bags =
    (* Bag boundaries move with the block capacity; sealing needs blocks
       small enough to fill within the run's retire budget. *)
    match c.Explorer.bags with
    | 0 -> [ { c with Explorer.bags = 4 } ]
    | 4 -> [ { c with Explorer.bags = 1 }; { c with Explorer.bags = 0 } ]
    | _ -> [ { c with Explorer.bags = 4 }; { c with Explorer.bags = 0 } ]
  in
  seeds @ depth @ bags

(* --- the growth loop ----------------------------------------------------- *)

type growth = {
  selected : (Explorer.case * t) list;  (* acceptance order *)
  class_counts : int array;  (* per event index, over selected cases *)
  runs : int;  (* run_one invocations spent *)
}

let grow ?jobs ?(batch = 32) ?(budget = 2_000) ?(quota = 4) ~target base =
  let seen = Hashtbl.create 256 in
  let fresh c =
    let line = Explorer.to_string c in
    if Hashtbl.mem seen line then false
    else begin
      Hashtbl.add seen line ();
      true
    end
  in
  (* Two frontiers: [high] holds seed neighborhoods of rare-event hitters,
     drained before the uniform [low] backlog. *)
  let high = Queue.create () in
  let low = Queue.create () in
  List.iter (fun c -> if fresh c then Queue.add c low) base;
  let selected = ref [] in
  let n_selected = ref 0 in
  let class_counts = Array.make n_events 0 in
  let runs = ref 0 in
  let under_quota cov =
    List.exists
      (fun (_, i) -> covers cov i && class_counts.(i) < quota)
      rare_classes
  in
  let take_batch () =
    let b = ref [] in
    let n = ref 0 in
    while !n < batch && not (Queue.is_empty high && Queue.is_empty low) do
      let q = if Queue.is_empty high then low else high in
      b := Queue.pop q :: !b;
      incr n
    done;
    List.rev !b
  in
  (* The corpus is not full until it is both big enough AND every rare
     event class has at least one witness: the deterministic base frontier
     lists its breadth cases before the rare-event shapes, and a plain
     size cutoff would fill up on breadth alone and never run them. Past
     the size target, only witnesses of still-missing classes are
     admitted, so the tail of the growth cannot bloat the corpus. *)
  let missing_rare () =
    List.exists (fun (_, i) -> class_counts.(i) = 0) rare_classes
  in
  let continue_ () =
    (!n_selected < target || missing_rare ()) && !runs < budget
  in
  let wanted cov =
    !n_selected < target
    || List.exists (fun (_, i) -> covers cov i && class_counts.(i) = 0) rare_classes
  in
  while continue_ () && not (Queue.is_empty high && Queue.is_empty low) do
    let cases = take_batch () in
    let results = Explorer_pool.map ?jobs run_covered (Array.of_list cases) in
    (* Input order keeps growth deterministic across job counts. *)
    List.iteri
      (fun i c ->
        incr runs;
        match results.(i) with
        | None -> ()
        | Some ((o : Explorer.outcome), cov) ->
          if
            Explorer.same_class o.Explorer.verdict Explorer.Pass
            && continue_ () && wanted cov
          then begin
            selected := (c, cov) :: !selected;
            incr n_selected;
            Array.iteri
              (fun j n -> if n > 0 then class_counts.(j) <- class_counts.(j) + 1)
              cov.counts;
            (* Seed neighborhoods of rare-event hitters jump the queue
               while their class still needs witnesses; once a class has
               its quota, further neighborhoods fall back behind the
               uniform backlog (breadth over depth). *)
            if rare_mask cov <> 0 then
              List.iter
                (fun m ->
                  if fresh m then
                    Queue.add m (if under_quota cov then high else low))
                (mutations c)
          end)
      cases
  done;
  { selected = List.rev !selected; class_counts; runs = !runs }
