module RI = Qs_intf.Runtime_intf

type entry = Tracer.entry

let count (es : entry array) ev =
  Array.fold_left (fun acc (e : entry) -> if e.Tracer.ev = ev then acc + 1 else acc) 0 es

let frees_total es = count es RI.Ev_free
let retires_total es = count es RI.Ev_retire
let unregisters_total es = count es RI.Ev_unregister
let adoptions_total es = count es RI.Ev_adopt

let adopted_nodes_total (es : entry array) =
  (* [Ev_adopt.a] carries the number of orphan nodes spliced in. *)
  Array.fold_left
    (fun acc (e : entry) ->
      if e.Tracer.ev = RI.Ev_adopt && e.Tracer.a > 0 then acc + e.Tracer.a
      else acc)
    0 es

let ages_at_free (es : entry array) =
  (* Join free events against the most recent retire of the same node id,
     in timeline order; ids recycle (the arena reuses nodes), so "most
     recent" is the correct join. Exact ages carried in Ev_free.b win. *)
  let retire_time : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let out = ref [] in
  let n_out = ref 0 in
  Array.iter
    (fun (e : entry) ->
      match e.Tracer.ev with
      | RI.Ev_retire -> Hashtbl.replace retire_time e.Tracer.a e.Tracer.time
      | RI.Ev_free ->
        let age =
          if e.Tracer.b >= 0 then Some e.Tracer.b
          else
            match Hashtbl.find_opt retire_time e.Tracer.a with
            | Some t0 when e.Tracer.time >= t0 -> Some (e.Tracer.time - t0)
            | _ -> None (* retire fell out of the ring *)
        in
        (match age with
        | Some a ->
          out := a :: !out;
          incr n_out;
          Hashtbl.remove retire_time e.Tracer.a
        | None -> ())
      | _ -> ())
    es;
  let arr = Array.make !n_out 0 in
  let i = ref (!n_out - 1) in
  List.iter
    (fun a ->
      arr.(!i) <- a;
      decr i)
    !out;
  arr

let age_histogram ?(buckets = 20) es =
  let ages = ages_at_free es in
  if Array.length ages = 0 then None
  else begin
    let lo = Array.fold_left min ages.(0) ages in
    let hi = Array.fold_left max ages.(0) ages in
    let lo = float_of_int lo and hi = float_of_int hi in
    let hi = if hi <= lo then lo +. 1. else hi +. 1e-9 in
    let h = Qs_util.Histogram.create ~lo ~hi ~buckets in
    Array.iter (fun a -> Qs_util.Histogram.add h (float_of_int a)) ages;
    Some h
  end

let limbo_series (es : entry array) ~pid =
  let out = ref [] and n = ref 0 in
  let depth = ref 0 in
  Array.iter
    (fun (e : entry) ->
      if e.Tracer.pid = pid then begin
        let sample =
          match e.Tracer.ev with
          | RI.Ev_retire ->
            (* resync to the scheme's own depth-after-push when carried *)
            if e.Tracer.b >= 0 then depth := e.Tracer.b else incr depth;
            true
          | RI.Ev_free ->
            depth := max 0 (!depth - 1);
            true
          | _ -> false
        in
        if sample then begin
          out := (e.Tracer.time, !depth) :: !out;
          incr n
        end
      end)
    es;
  let arr = Array.make !n (0, 0) in
  let i = ref (!n - 1) in
  List.iter
    (fun s ->
      arr.(!i) <- s;
      decr i)
    !out;
  arr

let max_limbo es ~pid =
  Array.fold_left (fun acc (_, d) -> max acc d) 0 (limbo_series es ~pid)

type episode = {
  ep_pid : int;
  enter_time : int;
  exit_time : int option;
  limbo_at_enter : int;
  dwell : int option;
}

let fallback_episodes (es : entry array) =
  (* The hybrid schemes' mode is global to the scheme instance: the process
     that notices the limbo overflow emits the enter, and whichever process
     notices the return condition emits the exit — so enters and exits pair
     globally in timeline order, not per pid. [ep_pid] records the entering
     process. A second enter while one is open (only possible through ring
     truncation losing the exit) keeps the first. *)
  let open_ep : (int * int * int) option ref = ref None in
  let out = ref [] in
  Array.iter
    (fun (e : entry) ->
      match e.Tracer.ev with
      | RI.Ev_fallback_enter ->
        if !open_ep = None then
          open_ep := Some (e.Tracer.pid, e.Tracer.time, e.Tracer.a)
      | RI.Ev_fallback_exit ->
        (match !open_ep with
        | Some (pid, t0, limbo) ->
          open_ep := None;
          out :=
            { ep_pid = pid;
              enter_time = t0;
              exit_time = Some e.Tracer.time;
              limbo_at_enter = limbo;
              dwell = (if e.Tracer.a >= 0 then Some e.Tracer.a else None) }
            :: !out
        | None -> () (* enter fell out of the ring *))
      | _ -> ())
    es;
  let still_open =
    match !open_ep with
    | None -> []
    | Some (pid, t0, limbo) ->
      [ { ep_pid = pid;
          enter_time = t0;
          exit_time = None;
          limbo_at_enter = limbo;
          dwell = None } ]
  in
  List.sort
    (fun a b -> compare (a.enter_time, a.ep_pid) (b.enter_time, b.ep_pid))
    (still_open @ !out)

(* ---- Spike attribution ---------------------------------------------- *)

type cause =
  | Fallback
  | Neutralize
  | Scan
  | Epoch
  | Churn
  | Bag_seal
  | Unattributed

let cause_name = function
  | Fallback -> "fallback"
  | Neutralize -> "neutralize"
  | Scan -> "scan"
  | Epoch -> "epoch"
  | Churn -> "churn"
  | Bag_seal -> "bag_seal"
  | Unattributed -> "unattributed"

let all_causes =
  [ Fallback; Neutralize; Scan; Epoch; Churn; Bag_seal; Unattributed ]

type attribution = {
  attr_threshold : int;
  attr_total : int;
  attr_counts : (cause * int) list;
}

let attributed_pct a =
  if a.attr_total = 0 then 0.
  else begin
    let un =
      try List.assoc Unattributed a.attr_counts with Not_found -> 0
    in
    float_of_int (a.attr_total - un) /. float_of_int a.attr_total *. 100.
  end

let attribute_spikes (es : entry array) ~outliers ~threshold =
  (* Join each outlier's window [start, start + dur] against the event
     stream. Fallback episodes are global spans (the whole scheme is in
     robust mode, every op pays); scans are same-pid spans (the op's own
     process was inside a scan); neutralization hits its victim ([a]);
     epoch adoption ([Ev_quiesce b=1]), churn ([Ev_unregister]/[Ev_adopt])
     and bag seals are same-pid instants. When several causes overlap one
     window, the first in priority order (the list below) wins — fallback
     dwell subsumes the scans it runs. *)
  let end_of_trace =
    Array.fold_left (fun acc (e : entry) -> max acc e.Tracer.time) 0 es
  in
  let fb_spans =
    List.map
      (fun ep ->
        (ep.enter_time, match ep.exit_time with Some t -> t | None -> end_of_trace))
      (fallback_episodes es)
  in
  (* Same-pid scan spans: pair begin/end per process in timeline order. *)
  let open_scan : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let scan_spans = ref [] in
  let inst_neutralize = ref [] (* (victim, time) *)
  and inst_epoch = ref [] (* (pid, time) *)
  and inst_churn = ref []
  and inst_seal = ref [] in
  Array.iter
    (fun (e : entry) ->
      match e.Tracer.ev with
      | RI.Ev_scan_begin -> Hashtbl.replace open_scan e.Tracer.pid e.Tracer.time
      | RI.Ev_scan_end ->
        (match Hashtbl.find_opt open_scan e.Tracer.pid with
        | Some t0 ->
          Hashtbl.remove open_scan e.Tracer.pid;
          scan_spans := (e.Tracer.pid, t0, e.Tracer.time) :: !scan_spans
        | None ->
          (* begin fell out of the ring: span from trace start *)
          scan_spans := (e.Tracer.pid, 0, e.Tracer.time) :: !scan_spans)
      | RI.Ev_neutralize ->
        inst_neutralize := (e.Tracer.a, e.Tracer.time) :: !inst_neutralize
      | RI.Ev_quiesce when e.Tracer.b = 1 ->
        inst_epoch := (e.Tracer.pid, e.Tracer.time) :: !inst_epoch
      | RI.Ev_unregister | RI.Ev_adopt ->
        inst_churn := (e.Tracer.pid, e.Tracer.time) :: !inst_churn
      | RI.Ev_bag_seal ->
        inst_seal := (e.Tracer.pid, e.Tracer.time) :: !inst_seal
      | _ -> ())
    es;
  Hashtbl.iter
    (fun pid t0 -> scan_spans := (pid, t0, end_of_trace) :: !scan_spans)
    open_scan;
  let scan_spans = !scan_spans in
  let overlaps ~t0 ~t1 ~lo ~hi = t0 <= hi && lo <= t1 in
  let cause_of (o : Latency.outlier) =
    let lo = o.Latency.o_start and hi = o.Latency.o_start + o.Latency.o_dur in
    if List.exists (fun (t0, t1) -> overlaps ~t0 ~t1 ~lo ~hi) fb_spans then
      Fallback
    else if
      List.exists (fun (p, t) -> p = o.Latency.o_pid && lo <= t && t <= hi)
        !inst_neutralize
    then Neutralize
    else if
      List.exists
        (fun (p, t0, t1) -> p = o.Latency.o_pid && overlaps ~t0 ~t1 ~lo ~hi)
        scan_spans
    then Scan
    else if
      List.exists (fun (p, t) -> p = o.Latency.o_pid && lo <= t && t <= hi)
        !inst_epoch
    then Epoch
    else if
      List.exists (fun (p, t) -> p = o.Latency.o_pid && lo <= t && t <= hi)
        !inst_churn
    then Churn
    else if
      List.exists (fun (p, t) -> p = o.Latency.o_pid && lo <= t && t <= hi)
        !inst_seal
    then Bag_seal
    else Unattributed
  in
  let tally = Hashtbl.create 8 in
  let total = ref 0 in
  List.iter
    (fun (o : Latency.outlier) ->
      if o.Latency.o_dur >= threshold then begin
        incr total;
        let c = cause_of o in
        Hashtbl.replace tally c
          (1 + Option.value ~default:0 (Hashtbl.find_opt tally c))
      end)
    outliers;
  {
    attr_threshold = threshold;
    attr_total = !total;
    attr_counts =
      List.map
        (fun c -> (c, Option.value ~default:0 (Hashtbl.find_opt tally c)))
        all_causes;
  }

let epoch_lags (es : entry array) =
  (* For each epoch advance, collect the first adopting quiesce of each
     process before the next advance. *)
  let lags = ref [] and n = ref 0 in
  let advance_time = ref (-1) in
  let adopted : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  Array.iter
    (fun (e : entry) ->
      match e.Tracer.ev with
      | RI.Ev_epoch_advance ->
        advance_time := e.Tracer.time;
        Hashtbl.reset adopted
      | RI.Ev_quiesce when e.Tracer.b = 1 && !advance_time >= 0 ->
        if not (Hashtbl.mem adopted e.Tracer.pid) then begin
          Hashtbl.replace adopted e.Tracer.pid ();
          if e.Tracer.time >= !advance_time then begin
            lags := (e.Tracer.time - !advance_time) :: !lags;
            incr n
          end
        end
      | _ -> ())
    es;
  let arr = Array.make !n 0 in
  let i = ref (!n - 1) in
  List.iter
    (fun l ->
      arr.(!i) <- l;
      decr i)
    !lags;
  arr
