(** Allocation-free online log-bucketed latency histograms.

    HDR-style geometry: values below 32 get unit-width buckets; above
    that, each power-of-two range is split into 32 sub-buckets, so the
    relative quantization error is bounded by ~3% everywhere while the
    whole table stays a flat 1152-slot int array. Recording is a handful
    of integer operations and one array increment — {!record} allocates
    exactly 0 minor words, pinned by tests and the bench zero-alloc guard.

    Units are whatever the caller measures in: simulator ticks on the
    virtual-time runtime, coarse-clock ns on the real one. A histogram is
    single-writer (one per {process × op-kind}); {!merge_into} combines
    per-process tables for whole-run percentiles.

    A {!recorder} bundles the per-{pid × kind} histograms for one
    experiment together with per-pid top-K outlier buffers (flat int
    arrays, min-replace, no allocation) that feed spike attribution in
    {!Metrics.attribute_spikes}. *)

type t

val n_buckets : int
(** Number of buckets in a histogram (1152). *)

val create : unit -> t

val reset : t -> unit

val bucket_of : int -> int
(** [bucket_of v] is the bucket index of value [v] (negative values clamp
    to bucket 0, values ≥ 2{^40} clamp to the last bucket). Pure integer
    arithmetic; allocates nothing. *)

val lower_edge : int -> int
(** Inclusive lower edge of bucket [i]. [bucket_of (lower_edge i) = i]
    for every valid [i]. *)

val record : t -> int -> unit
(** Count one sample. Exactly 0 minor words allocated. *)

val count : t -> int
(** Total samples recorded. *)

val max_value : t -> int
(** Largest sample recorded so far (0 when empty). *)

val sum : t -> int
(** Sum of all samples (for means and Prometheus [_sum]). *)

val bucket_counts : t -> int array
(** Copy of the raw bucket counts. *)

val merge_into : dst:t -> t -> unit
(** Add [src]'s counts (and max) into [dst]. *)

val percentile : t -> float -> int
(** [percentile t p] is an upper bound for the [p]-th percentile sample:
    the upper edge of the bucket containing rank [ceil (p/100 * count)],
    clamped to {!max_value}. Returns 0 on an empty histogram; raises
    [Invalid_argument] if [p] is outside [\[0, 100\]]. *)

val percentile_bucket : t -> float -> int
(** Index of the bucket containing the [p]-th percentile sample. *)

val to_ascii : t -> width:int -> string
(** Non-empty buckets as [edge | ### count] rows (for debugging). *)

(** {1 Experiment recorder} *)

type recorder
(** Per-{pid × op-kind} histograms plus per-pid top-K outlier rings for
    one experiment run. *)

val recorder : n_processes:int -> n_kinds:int -> ?top_k:int -> unit -> recorder

val observe : recorder -> pid:int -> kind:int -> start:int -> dur:int -> unit
(** Record one operation: [dur] into the {pid × kind} histogram, and
    (start, dur, kind) into pid's top-K buffer if it beats the smallest
    entry. Exactly 0 minor words allocated. *)

val hist : recorder -> pid:int -> kind:int -> t

val merged : recorder -> t
(** Fresh histogram holding every process × kind merged. *)

val merged_kind : recorder -> kind:int -> t
(** Fresh histogram merging one op-kind across all processes. *)

type outlier = { o_pid : int; o_kind : int; o_start : int; o_dur : int }

val outliers : recorder -> outlier list
(** All retained top-K entries across processes, slowest first. *)

val n_processes : recorder -> int
val n_kinds : recorder -> int
