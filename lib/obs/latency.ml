(* Online log-bucketed latency histograms.

   Geometry: values in [0, 32) land in unit-width buckets 0..31; for
   larger values the power-of-two range [2^e, 2^(e+1)) is split into 32
   equal sub-buckets, indexed by the 5 bits below the leading bit. The
   exponent range [5, 39] gives 32 + 35*32 = 1152 buckets covering up to
   2^40 (values beyond clamp to the last bucket) with ≤ 1/32 relative
   quantization error — enough for both simulator ticks and coarse ns.

   The recording path must allocate exactly 0 minor words (pinned by
   tests and bench), so no [ref] cells: loops that need an accumulator
   are tail-recursive top-level functions over flat int arrays. *)

let sub_bits = 5
let sub = 1 lsl sub_bits (* 32 *)
let max_exp = 39
let n_buckets = sub + ((max_exp - sub_bits + 1) * sub)

let rec ilog2_from v acc = if v <= 1 then acc else ilog2_from (v lsr 1) (acc + 1)

let bucket_of v =
  if v < sub then (if v < 0 then 0 else v)
  else begin
    let exp = ilog2_from v 0 in
    if exp > max_exp then n_buckets - 1
    else sub + ((exp - sub_bits) * sub) + ((v lsr (exp - sub_bits)) land (sub - 1))
  end

let lower_edge i =
  if i < sub then i
  else begin
    let g = (i - sub) / sub and s = (i - sub) mod sub in
    (sub + s) lsl g
  end

(* Exclusive upper edge of bucket [i] (lower edge of the next bucket). *)
let upper_edge i = if i >= n_buckets - 1 then max_int else lower_edge (i + 1)

type t = {
  counts : int array;
  mutable total : int;
  mutable vmax : int;
  mutable vsum : int;
}

let create () = { counts = Array.make n_buckets 0; total = 0; vmax = 0; vsum = 0 }

let reset t =
  Array.fill t.counts 0 n_buckets 0;
  t.total <- 0;
  t.vmax <- 0;
  t.vsum <- 0

let record t v =
  let b = bucket_of v in
  t.counts.(b) <- t.counts.(b) + 1;
  t.total <- t.total + 1;
  t.vsum <- t.vsum + v;
  if v > t.vmax then t.vmax <- v

let count t = t.total
let max_value t = t.vmax
let sum t = t.vsum
let bucket_counts t = Array.copy t.counts

let merge_into ~dst src =
  for i = 0 to n_buckets - 1 do
    dst.counts.(i) <- dst.counts.(i) + src.counts.(i)
  done;
  dst.total <- dst.total + src.total;
  dst.vsum <- dst.vsum + src.vsum;
  if src.vmax > dst.vmax then dst.vmax <- src.vmax

let percentile_bucket t p = Qs_util.Buckets.cumulative_index t.counts ~p

let percentile t p =
  if t.total = 0 then (Qs_util.Buckets.cumulative_index [||] ~p : int)
  else begin
    let b = percentile_bucket t p in
    let hi = upper_edge b - 1 in
    if hi > t.vmax then t.vmax else hi
  end

let to_ascii t ~width =
  let idx = ref [] in
  for i = n_buckets - 1 downto 0 do
    if t.counts.(i) > 0 then idx := i :: !idx
  done;
  let idx = Array.of_list !idx in
  let labels =
    Qs_util.Buckets.distinct_labels
      (Array.map (fun i -> float_of_int (lower_edge i)) idx)
  in
  let counts = Array.map (fun i -> t.counts.(i)) idx in
  Qs_util.Buckets.ascii_rows ~labels ~counts ~width

(* ---- Experiment recorder ------------------------------------------- *)

type recorder = {
  n_processes : int;
  n_kinds : int;
  hists : t array; (* pid * n_kinds + kind *)
  k : int; (* top-K capacity per pid *)
  tk_start : int array; (* pid * k + j *)
  tk_dur : int array; (* 0 = empty slot *)
  tk_kind : int array;
  tk_min : int array; (* per-pid cached min of tk_dur *)
}

let recorder ~n_processes ~n_kinds ?(top_k = 128) () =
  if n_processes <= 0 then invalid_arg "Latency.recorder: n_processes";
  if n_kinds <= 0 then invalid_arg "Latency.recorder: n_kinds";
  if top_k <= 0 then invalid_arg "Latency.recorder: top_k";
  {
    n_processes;
    n_kinds;
    hists = Array.init (n_processes * n_kinds) (fun _ -> create ());
    k = top_k;
    tk_start = Array.make (n_processes * top_k) 0;
    tk_dur = Array.make (n_processes * top_k) 0;
    tk_kind = Array.make (n_processes * top_k) 0;
    tk_min = Array.make n_processes 0;
  }

let rec argmin_from durs off i k best_i best_v =
  if i >= k then best_i
  else if durs.(off + i) < best_v then
    argmin_from durs off (i + 1) k i durs.(off + i)
  else argmin_from durs off (i + 1) k best_i best_v

let rec min_from durs off i k acc =
  if i >= k then acc
  else min_from durs off (i + 1) k (if durs.(off + i) < acc then durs.(off + i) else acc)

let observe r ~pid ~kind ~start ~dur =
  record r.hists.((pid * r.n_kinds) + kind) dur;
  if dur > r.tk_min.(pid) then begin
    let off = pid * r.k in
    let j = argmin_from r.tk_dur off 1 r.k 0 r.tk_dur.(off) in
    r.tk_dur.(off + j) <- dur;
    r.tk_start.(off + j) <- start;
    r.tk_kind.(off + j) <- kind;
    r.tk_min.(pid) <- min_from r.tk_dur off 1 r.k r.tk_dur.(off)
  end

let hist r ~pid ~kind = r.hists.((pid * r.n_kinds) + kind)

let merged r =
  let dst = create () in
  Array.iter (fun h -> merge_into ~dst h) r.hists;
  dst

let merged_kind r ~kind =
  let dst = create () in
  for pid = 0 to r.n_processes - 1 do
    merge_into ~dst r.hists.((pid * r.n_kinds) + kind)
  done;
  dst

type outlier = { o_pid : int; o_kind : int; o_start : int; o_dur : int }

let outliers r =
  let acc = ref [] in
  for pid = 0 to r.n_processes - 1 do
    let off = pid * r.k in
    for j = 0 to r.k - 1 do
      if r.tk_dur.(off + j) > 0 then
        acc :=
          {
            o_pid = pid;
            o_kind = r.tk_kind.(off + j);
            o_start = r.tk_start.(off + j);
            o_dur = r.tk_dur.(off + j);
          }
          :: !acc
    done
  done;
  List.sort (fun a b -> compare b.o_dur a.o_dur) !acc

let n_processes r = r.n_processes
let n_kinds r = r.n_kinds
