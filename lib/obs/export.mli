(** Trace exporters.

    - {!chrome}: Chrome trace-event JSON ([{"traceEvents": [...]}]) —
      load the file in Perfetto (ui.perfetto.dev) or chrome://tracing.
      Instant events ("i") for retire/free/quiesce/evict/rooster-wake,
      duration pairs ("B"/"E") for scans (per process lane) and fallback
      episodes (on the system lane, since the hybrid schemes' mode is
      global and the exiting process need not be the entering one;
      unmatched opens are closed at trace end, and a close whose open
      wrapped out of the ring gets a synthetic span start at the first
      retained timestamp, so the file always validates even for traces
      that begin mid-episode), and counter events ("C") tracking each
      process's limbo depth.
    - {!csv}: flat [time,pid,event,a,b] time series for
      spreadsheet/gnuplot post-processing.

    Timestamps: the trace-event format wants microseconds. [ts_div]
    divides raw trace timestamps (default 1 — simulator virtual ticks map
    1:1 to "µs", which Perfetto renders fine; pass 1000 for real-runtime
    nanoseconds). *)

val chrome_to_buffer : ?ts_div:int -> Tracer.t -> Buffer.t -> unit

val chrome : ?ts_div:int -> Tracer.t -> string
(** The JSON document as a string. *)

val save_chrome : ?ts_div:int -> Tracer.t -> string -> unit
(** Write to a file. Conventional suffix: [.trace.json]. *)

val csv_to_buffer : Tracer.t -> Buffer.t -> unit

val csv : Tracer.t -> string
(** Header [time,pid,event,a,b], one row per retained event, merged
    timeline order. Raw (undivided) timestamps. *)

val save_csv : Tracer.t -> string -> unit
