(* Metrics registry. See the .mli for the concurrency story: atomics for
   scalars, DLS-sharded Latency.t for histograms, one registry mutex for
   name lookup and a per-histogram mutex for the shard list. Lookup
   (counter/gauge/histogram) is expected at setup time, not in hot
   loops — callers keep the returned handle. *)

type counter = { c_name : string; c : int Atomic.t }
type gauge = { g_name : string; g : int Atomic.t }

type histo = {
  h_name : string;
  h_key : Latency.t Domain.DLS.key;
  h_mu : Mutex.t;
  h_shards : Latency.t list ref;
}

type t = {
  mu : Mutex.t;
  mutable counters : counter list;
  mutable gauges : gauge list;
  mutable histos : histo list;
}

let create () =
  { mu = Mutex.create (); counters = []; gauges = []; histos = [] }

let global = create ()

let rec find_name name proj = function
  | [] -> None
  | x :: rest -> if proj x = name then Some x else find_name name proj rest

let counter t name =
  Mutex.protect t.mu @@ fun () ->
  match find_name name (fun c -> c.c_name) t.counters with
  | Some c -> c
  | None ->
      let c = { c_name = name; c = Atomic.make 0 } in
      t.counters <- c :: t.counters;
      c

let incr c = ignore (Atomic.fetch_and_add c.c 1)
let add c n = ignore (Atomic.fetch_and_add c.c n)
let counter_value c = Atomic.get c.c

let gauge t name =
  Mutex.protect t.mu @@ fun () ->
  match find_name name (fun g -> g.g_name) t.gauges with
  | Some g -> g
  | None ->
      let g = { g_name = name; g = Atomic.make 0 } in
      t.gauges <- g :: t.gauges;
      g

let set_gauge g v = Atomic.set g.g v
let gauge_value g = Atomic.get g.g

let histogram t name =
  Mutex.protect t.mu @@ fun () ->
  match find_name name (fun h -> h.h_name) t.histos with
  | Some h -> h
  | None ->
      let h_mu = Mutex.create () in
      let h_shards = ref [] in
      (* The DLS initialiser runs once per domain touching this
         histogram; it registers the fresh shard for snapshot merging. *)
      let h_key =
        Domain.DLS.new_key (fun () ->
            let s = Latency.create () in
            Mutex.protect h_mu (fun () -> h_shards := s :: !h_shards);
            s)
      in
      let h = { h_name = name; h_key; h_mu; h_shards } in
      t.histos <- h :: t.histos;
      h

let local_shard h = Domain.DLS.get h.h_key
let observe h v = Latency.record (Domain.DLS.get h.h_key) v

let merged h =
  let dst = Latency.create () in
  Mutex.protect h.h_mu (fun () ->
      List.iter (fun s -> Latency.merge_into ~dst s) !(h.h_shards));
  dst

(* ---- Export --------------------------------------------------------- *)

(* Sorted-by-name views so export order is stable across runs. *)
let snapshot t =
  Mutex.protect t.mu @@ fun () ->
  let by f a b = compare (f a) (f b) in
  ( List.sort (by (fun c -> c.c_name)) t.counters,
    List.sort (by (fun g -> g.g_name)) t.gauges,
    List.sort (by (fun h -> h.h_name)) t.histos )

let to_prometheus t =
  let counters, gauges, histos = snapshot t in
  let buf = Buffer.create 1024 in
  List.iter
    (fun c ->
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" c.c_name);
      Buffer.add_string buf
        (Printf.sprintf "%s %d\n" c.c_name (Atomic.get c.c)))
    counters;
  List.iter
    (fun g ->
      Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" g.g_name);
      Buffer.add_string buf (Printf.sprintf "%s %d\n" g.g_name (Atomic.get g.g)))
    gauges;
  List.iter
    (fun h ->
      let m = merged h in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" h.h_name);
      let counts = Latency.bucket_counts m in
      let cum = ref 0 in
      Array.iteri
        (fun i c ->
          if c > 0 then begin
            cum := !cum + c;
            (* Integer samples in bucket i are ≤ lower_edge (i+1) - 1. *)
            let le =
              if i >= Latency.n_buckets - 1 then Latency.max_value m
              else Latency.lower_edge (i + 1) - 1
            in
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" h.h_name le !cum)
          end)
        counts;
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" h.h_name (Latency.count m));
      Buffer.add_string buf
        (Printf.sprintf "%s_sum %d\n" h.h_name (Latency.sum m));
      Buffer.add_string buf
        (Printf.sprintf "%s_count %d\n" h.h_name (Latency.count m)))
    histos;
  Buffer.contents buf

let to_json t =
  let module J = Qs_util.Json in
  let counters, gauges, histos = snapshot t in
  let num i = J.Num (float_of_int i) in
  J.Obj
    [
      ( "counters",
        J.Obj (List.map (fun c -> (c.c_name, num (Atomic.get c.c))) counters) );
      ( "gauges",
        J.Obj (List.map (fun g -> (g.g_name, num (Atomic.get g.g))) gauges) );
      ( "histograms",
        J.Obj
          (List.map
             (fun h ->
               let m = merged h in
               ( h.h_name,
                 J.Obj
                   [
                     ("count", num (Latency.count m));
                     ("sum", num (Latency.sum m));
                     ("max", num (Latency.max_value m));
                     ("p50", num (Latency.percentile m 50.));
                     ("p99", num (Latency.percentile m 99.));
                     ("p999", num (Latency.percentile m 99.9));
                   ] ))
             histos) );
    ]

let reset t =
  let counters, gauges, histos = snapshot t in
  List.iter (fun c -> Atomic.set c.c 0) counters;
  List.iter (fun g -> Atomic.set g.g 0) gauges;
  List.iter
    (fun h ->
      Mutex.protect h.h_mu (fun () -> List.iter Latency.reset !(h.h_shards)))
    histos
