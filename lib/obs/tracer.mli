(** Per-process, fixed-capacity ring-buffer trace recorder.

    A tracer owns one ring per worker process plus one {e system} ring
    (index [n_processes]) that collects events from unregistered emitters —
    real-runtime rooster domains emit with pid [-1], and any out-of-range
    pid lands there rather than being lost or corrupting a worker ring.

    {b Overhead discipline} (see DESIGN.md §9). [record] is the only
    function on the hot path and it allocates nothing:

    - disabled tracer: one immutable-bool load and a branch — the compiler
      can hoist it, and there is no write traffic at all;
    - enabled tracer: four [int array] stores plus ring-index arithmetic
      into preallocated storage. Events are packed into a flat [int array]
      of 4-word slots (time, event index, a, b), not records, so recording
      never touches the allocator and never triggers GC on a traced run.

    When the ring is full the {e oldest} event is overwritten and the
    per-ring [dropped] counter increments monotonically, so post-processing
    can tell a complete trace from a truncated one.

    Rings are single-writer by construction on both runtimes (the
    simulator is sequential; on real domains each process writes only its
    own ring, and the system ring is only contended by rooster domains,
    whose events are rare and whose occasional lost increment we accept —
    the rings are diagnostics, not synchronisation). *)

type t

val create : ?enabled:bool -> n_processes:int -> capacity:int -> unit -> t
(** [create ~n_processes ~capacity ()] preallocates [n_processes + 1] rings
    of [capacity] events each ([capacity >= 1]; the extra ring is the
    system ring). [enabled] defaults to [true]; an [enabled:false] tracer
    is permanently off — the flag is immutable, which is what makes the
    disabled path a single load and branch. *)

val enabled : t -> bool
val capacity : t -> int
val n_processes : t -> int

val record : t -> pid:int -> time:int -> ev:Qs_intf.Runtime_intf.event ->
  a:int -> b:int -> unit
(** Record one event into [pid]'s ring (or the system ring when [pid] is
    outside [0, n_processes)). Allocation-free; see the overhead
    discipline above. No-op when the tracer is disabled. *)

val sink : t -> Qs_intf.Runtime_intf.sink
(** The sink closing over this tracer, to install via
    [Scheduler.set_sink] / [Real_runtime.set_sink] or a harness setup.
    Allocated once here — installing and using it records with zero
    further allocation. *)

(** {1 Reading a trace} *)

type entry = {
  pid : int;  (** ring index; [n_processes] = the system ring *)
  time : int;
  ev : Qs_intf.Runtime_intf.event;
  a : int;
  b : int;
}

val length : t -> pid:int -> int
(** Events currently held in this ring (at most [capacity]). *)

val dropped : t -> pid:int -> int
(** Events overwritten in this ring so far; monotone. *)

val total : t -> int
(** Sum of {!length} over all rings. *)

val total_dropped : t -> int

val to_array : t -> entry array
(** All retained events, merged across rings and sorted by
    [(time, pid, ring order)] — a stable global timeline. Allocates; call
    after the run. *)

val ring_to_array : t -> pid:int -> entry array
(** One ring's retained events, oldest first. *)

val clear : t -> unit
(** Empty every ring and zero the dropped counters. *)
