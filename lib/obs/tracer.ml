module RI = Qs_intf.Runtime_intf

(* One ring: a flat int array of 4-word slots (time, event index, a, b).
   Flat ints rather than an [entry array] so that recording is four
   unboxed stores — no allocation, no GC write barrier. *)
type ring = {
  mutable pos : int; (* next slot to write *)
  mutable len : int; (* slots filled, <= capacity *)
  mutable dropped : int; (* events overwritten; monotone *)
  data : int array; (* capacity * 4 *)
}

type t = {
  enabled : bool; (* immutable: the disabled path is one load + branch *)
  capacity : int;
  n_processes : int;
  rings : ring array; (* n_processes + 1; the last is the system ring *)
}

let create ?(enabled = true) ~n_processes ~capacity () =
  if capacity < 1 then invalid_arg "Tracer.create: capacity must be >= 1";
  if n_processes < 0 then invalid_arg "Tracer.create: n_processes < 0";
  { enabled;
    capacity;
    n_processes;
    rings =
      Array.init (n_processes + 1) (fun _ ->
          { pos = 0; len = 0; dropped = 0; data = Array.make (capacity * 4) 0 })
  }

let enabled t = t.enabled
let capacity t = t.capacity
let n_processes t = t.n_processes

let record t ~pid ~time ~ev ~a ~b =
  if t.enabled then begin
    let idx = if pid >= 0 && pid < t.n_processes then pid else t.n_processes in
    let r = t.rings.(idx) in
    let base = r.pos * 4 in
    r.data.(base) <- time;
    r.data.(base + 1) <- RI.event_index ev;
    r.data.(base + 2) <- a;
    r.data.(base + 3) <- b;
    r.pos <- (if r.pos + 1 = t.capacity then 0 else r.pos + 1);
    if r.len < t.capacity then r.len <- r.len + 1 else r.dropped <- r.dropped + 1
  end

let sink t = { RI.record = (fun ~pid ~time ~ev ~a ~b -> record t ~pid ~time ~ev ~a ~b) }

type entry = { pid : int; time : int; ev : RI.event; a : int; b : int }

let length t ~pid = t.rings.(pid).len
let dropped t ~pid = t.rings.(pid).dropped
let total t = Array.fold_left (fun acc r -> acc + r.len) 0 t.rings
let total_dropped t = Array.fold_left (fun acc r -> acc + r.dropped) 0 t.rings

let entry_of_slot t ~ring_idx ~slot =
  let r = t.rings.(ring_idx) in
  (* slot 0 = oldest retained event *)
  let phys = (r.pos - r.len + slot + (2 * t.capacity)) mod t.capacity in
  let base = phys * 4 in
  let ev =
    match RI.event_of_index r.data.(base + 1) with
    | Some ev -> ev
    | None -> assert false (* only event_index values are ever stored *)
  in
  { pid = ring_idx;
    time = r.data.(base);
    ev;
    a = r.data.(base + 2);
    b = r.data.(base + 3) }

let ring_to_array t ~pid =
  let r = t.rings.(pid) in
  Array.init r.len (fun slot -> entry_of_slot t ~ring_idx:pid ~slot)

let to_array t =
  let n = total t in
  let out = Array.make n { pid = 0; time = 0; ev = RI.Ev_retire; a = 0; b = 0 } in
  let j = ref 0 in
  (* (entry, seq-within-ring) so the sort is a stable global timeline *)
  let seqs = Array.make n 0 in
  Array.iteri
    (fun ring_idx r ->
      for slot = 0 to r.len - 1 do
        out.(!j) <- entry_of_slot t ~ring_idx ~slot;
        seqs.(!j) <- slot;
        incr j
      done)
    t.rings;
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun i k ->
      let ei = out.(i) and ek = out.(k) in
      if ei.time <> ek.time then compare ei.time ek.time
      else if ei.pid <> ek.pid then compare ei.pid ek.pid
      else compare seqs.(i) seqs.(k))
    order;
  Array.map (fun i -> out.(i)) order

let clear t =
  Array.iter
    (fun r ->
      r.pos <- 0;
      r.len <- 0;
      r.dropped <- 0)
    t.rings
