(** Offline metrics derived from a {!Tracer} trace — the reclamation-lag
    and memory-over-time profiles the SMR literature evaluates schemes by
    (Brown, arXiv:1712.01044; Hyaline, arXiv:1905.07903), computed from
    our own runs. All functions take the merged timeline produced by
    {!Tracer.to_array} and allocate freely: they run after the clock
    stops. *)

type entry = Tracer.entry

(** {1 Age at free}

    How long each node spent in limbo. Under Cadence the minimum is the
    paper's [T + epsilon] floor — the age check [now - ts >= T + eps] is
    exactly what [Ev_free]'s [b] payload records when the scheme had both
    timestamps in hand. *)

val ages_at_free : entry array -> int array
(** One sample per [Ev_free], in timeline order. Prefers the event's own
    [b] payload (exact: the scheme's [now - ts]); falls back on joining
    against the node id's most recent [Ev_retire] when [b < 0] (schemes
    whose reclamation test is not age-based), and skips frees whose retire
    fell out of the ring. *)

val age_histogram : ?buckets:int -> entry array -> Qs_util.Histogram.t option
(** Histogram over {!ages_at_free} ([None] when no age is recoverable).
    Buckets default to 20, spanning the observed min/max. *)

(** {1 Limbo depth over time} *)

val limbo_series : entry array -> pid:int -> (int * int) array
(** [(time, depth)] samples of process [pid]'s limbo population: [+1] per
    retire, [-1] per free, resynchronised to [Ev_retire]'s [b] payload
    (depth after push) whenever present — so a truncated ring yields a
    correct tail rather than a drifting integral. Each event yields one
    sample. *)

val max_limbo : entry array -> pid:int -> int

(** {1 Fallback episodes (QSense)} *)

type episode = {
  ep_pid : int;  (** the process that {e entered} fallback *)
  enter_time : int;
  exit_time : int option;  (** [None]: still in fallback at trace end *)
  limbo_at_enter : int;
  dwell : int option;  (** the scheme's own dwell ([Ev_fallback_exit.a]) *)
}

val fallback_episodes : entry array -> episode list
(** Enter/exit pairs in enter order. The hybrid schemes' mode is global to
    the scheme instance, so pairing is global in timeline order: the exit
    may be emitted by a different process than the enter ([ep_pid] is the
    enterer). An unmatched enter at the end of the trace yields an open
    episode. *)

(** {1 Spike attribution}

    Joins per-op latency outliers (the {!Latency.recorder}'s top-K
    buffers) against the event stream to name the reclamation activity
    concurrent with each tail spike — the empirical counterpart of the
    paper's fast-path/robust-path trade-off. *)

type cause =
  | Fallback  (** a global QSense fallback episode overlapped the op *)
  | Neutralize  (** the op's process was neutralized (DEBRA+) mid-op *)
  | Scan  (** the op's own process ran a scan during the op *)
  | Epoch  (** the process adopted an epoch and bulk-freed ([Ev_quiesce b=1]) *)
  | Churn  (** the process unregistered or adopted orphans mid-op *)
  | Bag_seal  (** a limbo bag sealed on the process mid-op *)
  | Unattributed  (** no recorded reclamation activity overlapped *)

val cause_name : cause -> string

val all_causes : cause list
(** In attribution priority order, [Unattributed] last. *)

type attribution = {
  attr_threshold : int;  (** minimum duration considered a spike *)
  attr_total : int;  (** outliers at/above the threshold *)
  attr_counts : (cause * int) list;  (** every cause, priority order *)
}

val attributed_pct : attribution -> float
(** Share (0..100) of spikes with a named cause. 0 when no spikes. *)

val attribute_spikes :
  entry array ->
  outliers:Latency.outlier list ->
  threshold:int ->
  attribution
(** Classify each outlier with [o_dur >= threshold] by the highest-priority
    cause whose span or instant intersects the op window
    [\[o_start, o_start + o_dur\]]. Fallback episodes are global spans;
    scans are same-pid spans; the rest are same-pid instants (neutralize
    matches the {e victim} pid). Priority: fallback > neutralize > scan >
    epoch > churn > bag seal — a fallback dwell subsumes the scans it
    contains. The usual [threshold] is the lower edge of the merged
    histogram's p999 bucket:
    [Latency.lower_edge (Latency.percentile_bucket merged 99.9)]. *)

(** {1 Epoch lag} *)

val epoch_lags : entry array -> int array
(** For each [Ev_epoch_advance], the delay until each process's first
    subsequent adopting [Ev_quiesce] ([b = 1]) — one sample per (advance,
    adopting process) pair observed before the next advance. The shape of
    this distribution is the reclamation-lag profile of epoch-based
    schemes. *)

(** {1 Counters} *)

val count : entry array -> Qs_intf.Runtime_intf.event -> int
val frees_total : entry array -> int
val retires_total : entry array -> int

val unregisters_total : entry array -> int
(** Membership departures ([Ev_unregister]) in the trace. *)

val adoptions_total : entry array -> int
(** Orphan-adoption events ([Ev_adopt]) in the trace. *)

val adopted_nodes_total : entry array -> int
(** Total orphan nodes spliced into survivors' limbo lists, summing
    [Ev_adopt]'s [a] payload. *)
