(** Process-global metrics registry: named counters, gauges and
    latency histograms, registered once and updated from any domain,
    with snapshot-consistent export.

    Counters and gauges are single atomics (wait-free updates from any
    domain). Histograms are domain-sharded: each domain lazily gets a
    private {!Latency.t} shard via domain-local storage, so the hot
    {!observe} path is an unsynchronised bucket increment (0 minor words
    after the shard exists); shards are merged under the registry lock
    at snapshot time.

    Exports: Prometheus text format ([name_bucket{le="..."}] cumulative
    rows for non-empty buckets plus [+Inf], [_sum], [_count]) and JSON
    via {!Qs_util.Json}. *)

type t

val create : unit -> t

val global : t
(** The default process-wide registry (schemes and harnesses that don't
    thread an explicit registry use this one). *)

(** {1 Counters} *)

type counter

val counter : t -> string -> counter
(** Get or create the counter named [name]. Idempotent. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : t -> string -> gauge
val set_gauge : gauge -> int -> unit
val gauge_value : gauge -> int

(** {1 Histograms} *)

type histo

val histogram : t -> string -> histo
(** Get or create the histogram named [name]. Idempotent. *)

val observe : histo -> int -> unit
(** Record one sample into the calling domain's shard. After the first
    call on a given domain, allocates 0 minor words. *)

val local_shard : histo -> Latency.t
(** The calling domain's shard — grab once outside a hot loop and feed
    it {!Latency.record} directly for the tightest path. *)

val merged : histo -> Latency.t
(** Fresh histogram merging every domain's shard (taken under the
    shard lock). *)

(** {1 Snapshot export} *)

val to_prometheus : t -> string
(** Prometheus text exposition of every registered metric. *)

val to_json : t -> Qs_util.Json.t
(** JSON object [{counters; gauges; histograms}]; each histogram
    reports count/sum/max/p50/p99/p999. *)

val reset : t -> unit
(** Zero every counter, gauge and histogram shard (names and handles
    stay registered) — for reuse across experiment runs. *)
