module RI = Qs_intf.Runtime_intf

(* Chrome trace-event format, "JSON Object Format" flavour:
   {"traceEvents": [...], "displayTimeUnit": "ms"}. Every event carries
   name/ph/ts/pid/tid; we put every worker under pid 0 with tid = process
   id (tid n_processes = the system/rooster lane) so one Perfetto track
   group shows the whole run. *)

let add_common buf ~name ~ph ~ts ~tid =
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%d,\"pid\":0,\"tid\":%d"
       name ph ts tid)

let add_instant buf ~name ~ts ~tid ~a ~b =
  add_common buf ~name ~ph:"i" ~ts ~tid;
  Buffer.add_string buf
    (Printf.sprintf ",\"s\":\"t\",\"args\":{\"a\":%d,\"b\":%d}}" a b)

let add_begin buf ~name ~ts ~tid ~a =
  add_common buf ~name ~ph:"B" ~ts ~tid;
  Buffer.add_string buf (Printf.sprintf ",\"args\":{\"a\":%d}}" a)

let add_end buf ~name ~ts ~tid ~a ~b =
  add_common buf ~name ~ph:"E" ~ts ~tid;
  Buffer.add_string buf (Printf.sprintf ",\"args\":{\"a\":%d,\"b\":%d}}" a b)

let add_counter buf ~name ~ts ~tid ~value =
  add_common buf ~name ~ph:"C" ~ts ~tid;
  Buffer.add_string buf (Printf.sprintf ",\"args\":{\"limbo\":%d}}" value)

let chrome_to_buffer ?(ts_div = 1) tracer buf =
  let ts_div = max 1 ts_div in
  let es = Tracer.to_array tracer in
  let n = Tracer.n_processes tracer in
  (* Open-span state, to keep B/E matched even on ring-truncated traces:
     an E whose B wrapped out of the ring gets a synthetic B at the first
     retained timestamp (the span started at or before the ring's
     horizon — drawing it from there is the honest lower bound, and beats
     dropping the E, which silently erased whole episodes); unmatched Bs
     are closed at trace end. Scans are per-lane; fallback mode is global
     to the scheme (the exiting process need not be the entering one —
     see {!Metrics.fallback_episodes}), so its span is drawn once on the
     system lane (tid [n]) with the entering/exiting pid in [args]. *)
  let scan_open = Array.make (n + 1) false in
  let fb_open = ref false in
  let first_ts =
    if Array.length es = 0 then 0 else es.(0).Tracer.time / ts_div
  in
  let last_ts = ref 0 in
  let first = ref true in
  Buffer.add_string buf "{\"traceEvents\":[";
  let sep () =
    if !first then first := false else Buffer.add_char buf ',' in
  Array.iter
    (fun (e : Tracer.entry) ->
      let ts = e.Tracer.time / ts_div in
      let tid = e.Tracer.pid in
      if ts > !last_ts then last_ts := ts;
      match e.Tracer.ev with
      | RI.Ev_scan_begin ->
        if not scan_open.(tid) then begin
          sep ();
          add_begin buf ~name:"scan" ~ts ~tid ~a:e.Tracer.a;
          scan_open.(tid) <- true
        end
      | RI.Ev_scan_end ->
        if not scan_open.(tid) then begin
          sep ();
          add_begin buf ~name:"scan" ~ts:first_ts ~tid ~a:(-1)
        end;
        sep ();
        add_end buf ~name:"scan" ~ts ~tid ~a:e.Tracer.a ~b:e.Tracer.b;
        scan_open.(tid) <- false
      | RI.Ev_fallback_enter ->
        if not !fb_open then begin
          sep ();
          add_begin buf ~name:"fallback" ~ts ~tid:n ~a:e.Tracer.a;
          fb_open := true
        end
      | RI.Ev_fallback_exit ->
        if not !fb_open then begin
          sep ();
          add_begin buf ~name:"fallback" ~ts:first_ts ~tid:n ~a:(-1)
        end;
        sep ();
        add_end buf ~name:"fallback" ~ts ~tid:n ~a:e.Tracer.a ~b:e.Tracer.b;
        fb_open := false
      | RI.Ev_retire ->
        sep ();
        add_instant buf ~name:"retire" ~ts ~tid ~a:e.Tracer.a ~b:e.Tracer.b;
        if e.Tracer.b >= 0 then begin
          sep ();
          add_counter buf ~name:(Printf.sprintf "limbo/p%d" tid) ~ts ~tid
            ~value:e.Tracer.b
        end
      | (RI.Ev_free | RI.Ev_epoch_advance | RI.Ev_quiesce | RI.Ev_evict
        | RI.Ev_rooster_wake | RI.Ev_unregister | RI.Ev_adopt
        | RI.Ev_bag_seal | RI.Ev_bag_free | RI.Ev_neutralize) as ev ->
        sep ();
        add_instant buf ~name:(RI.event_name ev) ~ts ~tid ~a:e.Tracer.a
          ~b:e.Tracer.b)
    es;
  (* Close any span left open so the file always validates. *)
  for tid = 0 to n do
    if scan_open.(tid) then begin
      sep ();
      add_end buf ~name:"scan" ~ts:!last_ts ~tid ~a:(-1) ~b:(-1)
    end
  done;
  if !fb_open then begin
    sep ();
    add_end buf ~name:"fallback" ~ts:!last_ts ~tid:n ~a:(-1) ~b:(-1)
  end;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}"

let chrome ?ts_div tracer =
  let buf = Buffer.create 4096 in
  chrome_to_buffer ?ts_div tracer buf;
  Buffer.contents buf

let save_to_file path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let save_chrome ?ts_div tracer path =
  save_to_file path (fun oc ->
      let buf = Buffer.create 4096 in
      chrome_to_buffer ?ts_div tracer buf;
      Buffer.output_buffer oc buf)

let csv_to_buffer tracer buf =
  Buffer.add_string buf "time,pid,event,a,b\n";
  Array.iter
    (fun (e : Tracer.entry) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%s,%d,%d\n" e.Tracer.time e.Tracer.pid
           (RI.event_name e.Tracer.ev) e.Tracer.a e.Tracer.b))
    (Tracer.to_array tracer)

let csv tracer =
  let buf = Buffer.create 4096 in
  csv_to_buffer tracer buf;
  Buffer.contents buf

let save_csv tracer path =
  save_to_file path (fun oc ->
      let buf = Buffer.create 4096 in
      csv_to_buffer tracer buf;
      Buffer.output_buffer oc buf)
