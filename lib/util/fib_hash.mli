(** Fibonacci (multiplicative) hashing on native ints.

    The well-mixed bits of a multiplicative hash are the {e high} bits of
    the product, so power-of-two tables must take the top [k] bits via a
    right shift — reducing with [mod 2^k] keeps the poorly-mixed low end
    (for sequential keys, barely better than the identity). *)

val multiplier : int
(** floor(2^64 / phi) / 4, odd, within OCaml's immediate range. *)

val hash_bits : int
(** Number of usable bits in {!hash}'s result (62). *)

val hash : int -> int
(** [hash key] = [key * multiplier] truncated to {!hash_bits} bits.
    A bijection on the 62-bit space; allocation-free. *)

val shift_for : int -> int option
(** [shift_for n] is [Some (hash_bits - k)] when [n = 2^k] — the shift
    that turns {!hash} into a uniform index in [0, n) via
    {!index_pow2} — and [None] for non-power-of-two [n]. *)

val index_pow2 : shift:int -> int -> int
(** [index_pow2 ~shift key] = [hash key lsr shift]: top-bits bucket index
    for a power-of-two table whose shift was computed by {!shift_for}. *)

val index : n:int -> int -> int
(** Bucket index in [0, n) for any positive [n]: top-bits shift when [n]
    is a power of two, [mod] fallback otherwise. Prefer precomputing
    {!shift_for} + {!index_pow2} on hot paths. *)
