type t = { lo : float; hi : float; counts : int array; mutable total : int }

let create ~lo ~hi ~buckets =
  if buckets <= 0 then invalid_arg "Histogram.create: buckets must be positive";
  if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
  { lo; hi; counts = Array.make buckets 0; total = 0 }

let add t x =
  let n = Array.length t.counts in
  let idx =
    int_of_float (float_of_int n *. (x -. t.lo) /. (t.hi -. t.lo))
  in
  let idx = if idx < 0 then 0 else if idx >= n then n - 1 else idx in
  t.counts.(idx) <- t.counts.(idx) + 1;
  t.total <- t.total + 1

let count t = t.total

let bucket_counts t = Array.copy t.counts

(* Edge labelling and bar rendering live in {!Buckets}, shared with the
   online log-bucketed latency histograms ({!Qs_obs.Latency}). *)
let edge_labels t =
  let n = Array.length t.counts in
  let step = (t.hi -. t.lo) /. float_of_int n in
  Buckets.distinct_labels
    (Array.init n (fun i -> t.lo +. (step *. float_of_int i)))

let to_ascii t ~width =
  Buckets.ascii_rows ~labels:(edge_labels t) ~counts:t.counts ~width

let spark_levels = [| " "; "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                      "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                      "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline xs =
  if Array.length xs = 0 then ""
  else begin
    let lo, hi = Stats.min_max xs in
    let span = if hi -. lo <= 0. then 1. else hi -. lo in
    let buf = Buffer.create (Array.length xs * 3) in
    Array.iter
      (fun x ->
        let lvl = int_of_float ((x -. lo) /. span *. 8.) in
        let lvl = if lvl < 0 then 0 else if lvl > 8 then 8 else lvl in
        Buffer.add_string buf spark_levels.(lvl))
      xs;
    Buffer.contents buf
  end
