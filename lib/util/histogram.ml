type t = { lo : float; hi : float; counts : int array; mutable total : int }

let create ~lo ~hi ~buckets =
  if buckets <= 0 then invalid_arg "Histogram.create: buckets must be positive";
  if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
  { lo; hi; counts = Array.make buckets 0; total = 0 }

let add t x =
  let n = Array.length t.counts in
  let idx =
    int_of_float (float_of_int n *. (x -. t.lo) /. (t.hi -. t.lo))
  in
  let idx = if idx < 0 then 0 else if idx >= n then n - 1 else idx in
  t.counts.(idx) <- t.counts.(idx) + 1;
  t.total <- t.total + 1

let count t = t.total

let bucket_counts t = Array.copy t.counts

(* Bucket-edge labels. A fixed "%10.2f" breaks down at narrow ranges: with
   step < 0.005 adjacent edges round to the same label, and at wide ranges
   it wastes columns on irrelevant decimals. Instead, pick the smallest
   number of decimals (capped at 9) that keeps all adjacent edge labels
   distinct — starting from the significant digits of the bucket step — and
   right-align every label to the widest one so the bars line up. *)
let edge_labels t =
  let n = Array.length t.counts in
  let step = (t.hi -. t.lo) /. float_of_int n in
  let edge i = t.lo +. (step *. float_of_int i) in
  (* Decimals needed to resolve the step to ~3 significant digits. *)
  let base =
    if step >= 1. then 0
    else
      let d = int_of_float (Float.ceil (-.Float.log10 step)) in
      if d < 0 then 0 else if d > 9 then 9 else d
  in
  let render dec = Array.init n (fun i -> Printf.sprintf "%.*f" dec (edge i)) in
  let distinct labels =
    let ok = ref true in
    for i = 0 to n - 2 do
      if labels.(i) = labels.(i + 1) then ok := false
    done;
    !ok
  in
  let rec refine dec =
    let labels = render dec in
    if distinct labels || dec >= 9 then labels else refine (dec + 1)
  in
  let labels = refine base in
  let w = Array.fold_left (fun w l -> max w (String.length l)) 0 labels in
  Array.map (fun l -> String.make (w - String.length l) ' ' ^ l) labels

let to_ascii t ~width =
  let n = Array.length t.counts in
  let biggest = Array.fold_left max 1 t.counts in
  let buf = Buffer.create 256 in
  let labels = edge_labels t in
  for i = 0 to n - 1 do
    let bar = t.counts.(i) * width / biggest in
    Buffer.add_string buf
      (Printf.sprintf "%s | %s %d\n" labels.(i)
         (String.make bar '#')
         t.counts.(i))
  done;
  Buffer.contents buf

let spark_levels = [| " "; "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                      "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                      "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline xs =
  if Array.length xs = 0 then ""
  else begin
    let lo, hi = Stats.min_max xs in
    let span = if hi -. lo <= 0. then 1. else hi -. lo in
    let buf = Buffer.create (Array.length xs * 3) in
    Array.iter
      (fun x ->
        let lvl = int_of_float ((x -. lo) /. span *. 8.) in
        let lvl = if lvl < 0 then 0 else if lvl > 8 then 8 else lvl in
        Buffer.add_string buf spark_levels.(lvl))
      xs;
    Buffer.contents buf
  end
