(* SplitMix-style generator on native ints. The original implementation
   used boxed [int64] arithmetic: every draw allocated a handful of boxed
   words, and the simulator draws from a PRNG on almost every scheduled
   step (cost jitter, stall rolls, fair-tie coins), which made the PRNG a
   measurable slice of the allocation profile of schedule exploration.
   Native [int] arithmetic wraps modulo 2^63 on 64-bit platforms, which is
   exactly the truncation SplitMix tolerates: the constants below are the
   SplitMix64 constants with their top bits dropped to fit OCaml's 63-bit
   immediates. Draws allocate nothing. *)

type t = { mutable state : int }

(* 0x9E3779B97F4A7C15 (the 64-bit golden gamma) truncated to 61 bits so the
   literal is a valid OCaml immediate; it stays odd, which is the property
   the Weyl sequence needs. *)
let golden_gamma = 0x1E3779B97F4A7C15

let mix_a = 0x2F58476D1CE4E5B9 (* 0xBF58476D1CE4E5B9 truncated, odd *)
let mix_b = 0x14D049BB133111EB (* 0x94D049BB133111EB truncated, odd *)

let create ~seed = { state = seed }

let[@inline] next t =
  t.state <- t.state + golden_gamma;
  let z = t.state in
  let z = (z lxor (z lsr 30)) * mix_a in
  let z = (z lxor (z lsr 27)) * mix_b in
  z lxor (z lsr 31)

let next_int64 t = Int64.of_int (next t)

let split t = { state = next t }

let[@inline] int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  next t land max_int mod bound

let float t bound = bound *. (float_of_int (next t land max_int) /. float_of_int max_int)

(* [chance t p] = [float t 1.0 < p] (same single draw, same decision), but
   the float comparison happens inside this compilation unit, so without
   flambda no boxed float crosses the module boundary. The simulator rolls
   a stall chance on every scheduled step. *)
let chance t p = float_of_int (next t land max_int) /. float_of_int max_int < p

let[@inline] bool t = next t land 1 = 1

let percent t = int t 100

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
