(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that every
    experiment and every simulator schedule is reproducible from a single
    seed. The generator is a SplitMix variant on native 63-bit ints — fast,
    allocation-free per draw (the simulator draws on almost every scheduled
    step), and supporting cheap splitting into independent streams (one per
    simulated process). *)

type t = { mutable state : int }
(** A mutable PRNG state. Not thread-safe; use one [t] per process/domain.
    The representation is exposed so that the simulator's step accounting —
    which draws on every scheduled step — can inline the SplitMix advance
    without a cross-module call (no flambda: [next] is not inlined across
    compilation units). Treat it as abstract everywhere else; the mixing
    constants live in {!Scheduler} as well and the stream-identity tests
    pin both. *)

val create : seed:int -> t
(** [create ~seed] returns a fresh generator determined entirely by [seed]. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    independent of the remainder of [t]'s stream. Used to derive per-process
    streams from an experiment master seed. *)

val next : t -> int
(** Next raw 63-bit output (may be negative: all 63 bits are random).
    Allocation-free. *)

val next_int64 : t -> int64
(** {!next} as an [int64] (boxed); kept for stream-identity tests. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val chance : t -> float -> bool
(** [chance t p] draws once and is [true] with probability [p] — the exact
    decision [float t 1.0 < p] would make, without the boxed float return
    crossing the module boundary (hot in the simulator's step accounting). *)

val bool : t -> bool

val percent : t -> int
(** [percent t] is uniform in [\[0, 100)], convenient for operation mixes. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
