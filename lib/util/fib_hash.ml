(* Fibonacci (multiplicative) hashing on OCaml's tagged 63-bit ints.

   Multiplying by an odd constant close to 2^w / phi spreads consecutive
   keys across the hash space, but the well-mixed bits of the product are
   the HIGH bits: the low bits of [key * m] depend only on the low bits of
   [key] (for sequential keys the bottom bit of the product just alternates
   with the bottom bit of the key). Reducing with [mod 2^k] therefore keeps
   exactly the wrong end of the word. Power-of-two tables must shift the
   top [k] bits down instead; [mod] remains correct (if slightly less
   uniform) for arbitrary table sizes.

   The constant is floor(2^64 / phi) / 4 = 2850178704830799621 — the
   64-bit golden-ratio multiplier scaled into OCaml's immediate range. It
   is odd, so the map [key -> key * m mod 2^62] is a bijection. *)

let multiplier = 2850178704830799621

(* [max_int] = 2^62 - 1: the product truncated to 62 usable bits. *)
let hash_bits = 62

let[@inline] hash key = key * multiplier land max_int

(* [Some (hash_bits - k)] when [n] = 2^k, so [hash key lsr shift] is a
   uniform index in [0, n); [None] for non-power-of-two sizes ([mod]
   fallback). *)
let shift_for n =
  if n <= 0 || n land (n - 1) <> 0 then None
  else begin
    let k = ref 0 in
    let m = ref n in
    while !m > 1 do
      incr k;
      m := !m lsr 1
    done;
    Some (hash_bits - !k)
  end

let[@inline] index_pow2 ~shift key = hash key lsr shift

let index ~n key =
  match shift_for n with
  | Some shift -> index_pow2 ~shift key
  | None -> hash key mod n
