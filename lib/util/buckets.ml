(* Bucket-edge labels. A fixed "%10.2f" breaks down at narrow ranges: with
   gaps < 0.005 adjacent edges round to the same label, and at wide ranges
   it wastes columns on irrelevant decimals. Instead, pick the smallest
   number of decimals (capped at 9) that keeps all adjacent edge labels
   distinct — starting from the significant digits of the smallest adjacent
   gap — and right-align every label to the widest one so bars line up. *)
let distinct_labels edges =
  let n = Array.length edges in
  let min_gap = ref infinity in
  for i = 0 to n - 2 do
    let g = Float.abs (edges.(i + 1) -. edges.(i)) in
    if g > 0. && g < !min_gap then min_gap := g
  done;
  let base =
    if !min_gap = infinity || !min_gap >= 1. then 0
    else
      let d = int_of_float (Float.ceil (-.Float.log10 !min_gap)) in
      if d < 0 then 0 else if d > 9 then 9 else d
  in
  let render dec = Array.map (fun e -> Printf.sprintf "%.*f" dec e) edges in
  let distinct labels =
    let ok = ref true in
    for i = 0 to n - 2 do
      if labels.(i) = labels.(i + 1) then ok := false
    done;
    !ok
  in
  let rec refine dec =
    let labels = render dec in
    if distinct labels || dec >= 9 then labels else refine (dec + 1)
  in
  let labels = refine base in
  let w = Array.fold_left (fun w l -> max w (String.length l)) 0 labels in
  Array.map (fun l -> String.make (w - String.length l) ' ' ^ l) labels

let ascii_rows ~labels ~counts ~width =
  if Array.length labels <> Array.length counts then
    invalid_arg "Buckets.ascii_rows: labels/counts length mismatch";
  let biggest = Array.fold_left max 1 counts in
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i label ->
      let bar = counts.(i) * width / biggest in
      Buffer.add_string buf
        (Printf.sprintf "%s | %s %d\n" label (String.make bar '#') counts.(i)))
    labels;
  Buffer.contents buf

let check_p ~who p =
  if p < 0. || p > 100. then invalid_arg (who ^ ": p out of range")

let interp_rank ~n ~p =
  check_p ~who:"Buckets.interp_rank" p;
  p /. 100. *. float_of_int (n - 1)

let count_rank ~total ~p =
  check_p ~who:"Buckets.count_rank" p;
  max 1 (int_of_float (Float.ceil (p /. 100. *. float_of_int total)))

let cumulative_index counts ~p =
  check_p ~who:"Buckets.cumulative_index" p;
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 0
  else begin
    let rank = count_rank ~total ~p in
    let idx = ref 0 and cum = ref 0 and found = ref false in
    Array.iteri
      (fun i c ->
        if not !found then begin
          cum := !cum + c;
          if !cum >= rank then begin
            idx := i;
            found := true
          end
        end)
      counts;
    !idx
  end
