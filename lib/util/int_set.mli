(** Open-addressing integer hash set for the reclamation hot paths
    (hazard-pointer scan sets): O(1) expected [add]/[mem], O(1) [reset]
    via generation stamps, zero allocation in steady state.

    Power-of-two capacity with linear probing; the load factor is kept
    at or below 1/2, growing (doubling + rehash) only when exceeded — a
    set created with capacity for its steady-state population never
    allocates again. Any [int] is a valid member (occupancy lives in a
    parallel stamp array, not in a sentinel key). Single-owner: not
    thread-safe. *)

type t

val create : ?capacity:int -> unit -> t
(** [create ~capacity ()] preallocates room for [capacity] keys at load
    factor <= 1/2 (i.e. at least [2 * capacity] power-of-two slots). *)

val length : t -> int
(** Live keys in the current generation. *)

val capacity : t -> int
(** Allocated slots (>= 2x the keys it can hold without growing). *)

val reset : t -> unit
(** Empty the set in O(1) (generation bump; no array traffic). *)

val add : t -> int -> unit
(** Insert a key (idempotent). Expected O(1); allocates only if the load
    factor would exceed 1/2. *)

val mem : t -> int -> bool
(** Expected-O(1) membership; allocation-free. Keys outside the live
    [min, max] range answer with two comparisons and no probe — bulk
    walks over populations disjoint from the set skip the hash. *)

val iter : (int -> unit) -> t -> unit
(** Iterate over live keys, in unspecified order. *)

val to_list : t -> int list
(** Sorted list of live keys. Debug/test helper (allocates). *)
