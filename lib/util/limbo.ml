(* Switchable limbo-list representation.

   Every scheme's limbo/removed-nodes lists go through this layer: [Bag]
   (the DEBRA-style batched representation, the default) or [Vec] (the
   element-wise reference implementation, kept for the bag-vs-vec
   differential tests and as an escape hatch). The choice is made once per
   scheme instance from [Smr_intf.config.limbo_bags] via {!source}; the
   per-operation dispatch is a single two-constructor match.

   Allocation discipline: the scan/drain entry points take the per-variant
   callbacks separately ([vec_filter] for the vec path, [keep]/[free_bag]
   for the bag path) instead of wrapping one callback into another, so
   schemes can preallocate every closure at registration and the hot paths
   stay heap-free. *)

type 'a source = Vec_src of 'a | Bag_src of 'a Bag.source

let source ~bags ~capacity dummy =
  if bags then Bag_src (Bag.source ~capacity dummy) else Vec_src dummy

type 'a t = V of 'a Vec.t | B of 'a Bag.t

let create = function
  | Vec_src dummy -> V (Vec.create dummy)
  | Bag_src s -> B (Bag.create s)

let length = function V v -> Vec.length v | B b -> Bag.length b
let is_empty = function V v -> Vec.is_empty v | B b -> Bag.is_empty b

(* Returns the size of the bag this push sealed (always 0 on the vec
   path, which has no seal points). *)
let push t x = match t with
  | V v ->
    Vec.push v x;
    0
  | B b -> Bag.push b x

let iter f = function V v -> Vec.iter f v | B b -> Bag.iter f b

(* Hazard-pointer scan. [vec_filter] is the whole element-wise filter
   (side effects included) for the vec path; [keep]/[free_bag] drive the
   bag path. Both sets must implement the same decision so the two
   representations free the same nodes. *)
let scan t ~vec_filter ~keep ~free_bag =
  match t with
  | V v -> Vec.filter_in_place v vec_filter
  | B b -> Bag.scan b ~keep ~free_bag

(* Unconditional free of everything (epoch expiry / teardown). *)
let drain t ~free_node ~free_bag =
  match t with
  | V v ->
    Vec.iter free_node v;
    Vec.clear v
  | B b -> Bag.drain b ~free_bag

(* Donation: bag chains are spliced intact (O(1)); vec contents are copied
   element-wise. The mixed cases cannot arise from a single scheme
   instance (one [source] per scheme) but are total for safety. *)
let splice_into ~src ~dst =
  match (src, dst) with
  | V s, V d ->
    Vec.iter (Vec.push d) s;
    Vec.clear s
  | B s, B d -> Bag.splice_into ~src:s ~dst:d
  | V s, B d ->
    Vec.iter (fun x -> ignore (Bag.push d x)) s;
    Vec.clear s
  | B s, V d ->
    Bag.drain s ~free_bag:(fun data count ->
        for i = 0 to count - 1 do
          Vec.push d data.(i)
        done)

(* The epoch-triple helper shared by QSBR/EBR/QSense: three limbo lists
   indexed by epoch mod 3. *)
module Triple = struct
  type nonrec 'a t = 'a t array

  let create src = [| create src; create src; create src |]
  let total a = length a.(0) + length a.(1) + length a.(2)
end

module Ts = struct
  type 'a source = Vec_src of 'a | Bag_src of 'a Bag.Ts.source

  let source ~bags ~capacity dummy =
    if bags then Bag_src (Bag.Ts.source ~capacity dummy) else Vec_src dummy

  type 'a t = V of 'a Vec.Ts.t | B of 'a Bag.Ts.t

  let create = function
    | Vec_src dummy -> V (Vec.Ts.create dummy)
    | Bag_src s -> B (Bag.Ts.create s)

  let length = function V v -> Vec.Ts.length v | B b -> Bag.Ts.length b
  let is_empty = function V v -> Vec.Ts.is_empty v | B b -> Bag.Ts.is_empty b

  let push t x stamp = match t with
    | V v ->
      Vec.Ts.push v x stamp;
      0
    | B b -> Bag.Ts.push b x stamp

  let iter f = function V v -> Vec.Ts.iter f v | B b -> Bag.Ts.iter f b

  let scan t ~vec_filter ~age_ok ~keep ~free_bag =
    match t with
    | V v -> Vec.Ts.filter_in_place v vec_filter
    | B b -> Bag.Ts.scan b ~age_ok ~keep ~free_bag

  let drain t ~free_node ~free_bag =
    match t with
    | V v ->
      Vec.Ts.iter free_node v;
      Vec.Ts.clear v
    | B b -> Bag.Ts.drain b ~free_bag

  let splice_into ~src ~dst =
    match (src, dst) with
    | V s, V d ->
      Vec.Ts.iter (Vec.Ts.push d) s;
      Vec.Ts.clear s
    | B s, B d -> Bag.Ts.splice_into ~src:s ~dst:d
    | V s, B d ->
      Vec.Ts.iter (fun x ts -> ignore (Bag.Ts.push d x ts)) s;
      Vec.Ts.clear s
    | B s, V d ->
      Bag.Ts.drain s ~free_bag:(fun data ts count _stamp ->
          for i = 0 to count - 1 do
            Vec.Ts.push d data.(i) ts.(i)
          done)

  module Triple = struct
    type nonrec 'a t = 'a t array

    let create src = [| create src; create src; create src |]
    let total a = length a.(0) + length a.(1) + length a.(2)
  end
end
