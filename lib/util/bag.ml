(* DEBRA-style limbo bags: fixed-capacity blocks chained into a
   per-limbo-list deque (Brown, "Reclaiming Memory for Lock-Free Data
   Structures: There has to be a Better Way", PODC'15; Hyaline makes the
   same amortisation argument with reference batches).

   The vec-based limbo lists ({!Vec}/{!Vec.Ts}) pay the epoch/age check and
   the arena free once per node on every scan. Bags amortise both: nodes
   are pushed into a fixed-capacity open block; when the block fills it is
   {e sealed} — stamped once with the coarse timestamp of its newest
   element — and appended to the deque's sealed chain. Because every
   process pushes with a monotone coarse clock, the sealed chain is ordered
   oldest→newest by stamp, so a reclamation walk checks ONE stamp per 64
   nodes and stops at the first bag that is still too young: everything
   behind it is younger still. A reclaimable bag's nodes return to the
   arena in one bulk call, and the emptied block goes back to a per-process
   free-block cache, so steady-state retire/scan allocates nothing.

   Two flavours mirror {!Vec}:

   - {!t} — plain bags (no timestamps) for the schemes that never age-check
     individual nodes: QSBR/EBR free whole epochs, classic HP filters by
     hazard pointer only.
   - {!Ts} — timestamped bags for Cadence/QSense: blocks carry a parallel
     per-node [ts] array (exact age-at-free reporting, and per-node
     filtering of the still-open block) plus the seal stamp driving the
     oldest-first walk.

   Single-owner like {!Vec}: each deque belongs to one process; donation
   moves whole chains through {!splice_into} (pure pointer splicing — the
   orphan pool hands sealed bags over intact).

   Allocation discipline: the scan/drain loops below are written without
   inner closures and with refs that never escape, so the compiler's
   [eliminate_ref] pass keeps them off the heap even without flambda —
   the [Gc.minor_words] pins in the test suite assert exactly zero. *)

type 'a block = {
  data : 'a array;
  mutable len : int;
  mutable next : 'a block;  (* physically [== nil] terminates a chain *)
}

(* Per-process block factory and recycling cache, shared by all the
   process's limbo deques (three epochs + adopted) so blocks circulate
   freely between them. The [nil] sentinel doubles as chain terminator and
   empty-cache marker; its [data] is empty so a push into a dead deque
   cannot silently corrupt anything. *)
type 'a source = {
  cap : int;
  dummy : 'a;
  nil : 'a block;
  mutable cache : 'a block;  (* chain of blanked spare blocks *)
}

let source ?(capacity = 64) dummy =
  let cap = max 1 capacity in
  let rec nil = { data = [||]; len = 0; next = nil } in
  { cap; dummy; nil; cache = nil }

let capacity s = s.cap

let take_block s =
  if s.cache == s.nil then
    { data = Array.make s.cap s.dummy; len = 0; next = s.nil }
  else begin
    let b = s.cache in
    s.cache <- b.next;
    b.next <- s.nil;
    b
  end

(* Blank and return a block to the cache. Foreign blocks of a different
   capacity (possible after cross-source adoption under a reconfigured
   scheme) are dropped to the GC instead. *)
let recycle s b =
  if b != s.nil && Array.length b.data = s.cap then begin
    Array.fill b.data 0 b.len s.dummy;
    b.len <- 0;
    b.next <- s.cache;
    s.cache <- b
  end

type 'a t = {
  src : 'a source;
  mutable head : 'a block;  (* oldest sealed block; [nil] if none *)
  mutable tail : 'a block;  (* newest sealed block; [nil] if none *)
  mutable cur : 'a block;  (* open block receiving pushes *)
  mutable sealed_len : int;
}

let create src =
  { src; head = src.nil; tail = src.nil; cur = take_block src; sealed_len = 0 }

let length t = t.sealed_len + t.cur.len
let is_empty t = length t = 0

let append_sealed t b =
  b.next <- t.src.nil;
  if t.head == t.src.nil then begin
    t.head <- b;
    t.tail <- b
  end
  else begin
    t.tail.next <- b;
    t.tail <- b
  end;
  t.sealed_len <- t.sealed_len + b.len

(* Append [x]; returns the size of the bag this push sealed (0 if the open
   block still has room) so the caller can emit its seal event. *)
let push t x =
  let c = t.cur in
  c.data.(c.len) <- x;
  c.len <- c.len + 1;
  if c.len = t.src.cap then begin
    append_sealed t c;
    t.cur <- take_block t.src;
    c.len
  end
  else 0

let iter f t =
  let b = ref t.head in
  while !b != t.src.nil do
    let blk = !b in
    for i = 0 to blk.len - 1 do
      f blk.data.(i)
    done;
    b := blk.next
  done;
  let c = t.cur in
  for i = 0 to c.len - 1 do
    f c.data.(i)
  done

(* Free everything (teardown / whole-epoch reclamation): each non-empty
   block is handed to [free_bag data count] wholesale, then recycled. The
   deque stays usable (fresh open block). *)
let drain t ~free_bag =
  let src = t.src in
  let nil = src.nil in
  let b = ref t.head in
  while !b != nil do
    let blk = !b in
    let nxt = blk.next in
    if blk.len > 0 then free_bag blk.data blk.len;
    recycle src blk;
    b := nxt
  done;
  t.head <- nil;
  t.tail <- nil;
  t.sealed_len <- 0;
  let c = t.cur in
  if c.len > 0 then begin
    free_bag c.data c.len;
    Array.fill c.data 0 c.len src.dummy;
    c.len <- 0
  end

(* Hazard-pointer scan: walk every block (sealed chain + open block), free
   the unprotected nodes of each block in one [free_bag] call, and compact
   the protected survivors into fresh blocks that replace the sealed
   chain. Within a block the dropped nodes are compacted to the front of
   the block's own array before [free_bag] sees it — the block is recycled
   right after, so the callback must not retain the array. *)
let scan t ~keep ~free_bag =
  let src = t.src in
  let nil = src.nil in
  (* Survivor chain under construction: head/tail plus an open block. The
     refs below never escape into closures, keeping the loop heap-free. *)
  let sh = ref nil in
  let st = ref nil in
  let sc = ref nil in
  let survivors = ref 0 in
  let b = ref t.head in
  while !b != nil do
    let blk = !b in
    let nxt = blk.next in
    let j = ref 0 in
    for i = 0 to blk.len - 1 do
      let x = blk.data.(i) in
      if keep x then begin
        (if !sc == nil then sc := take_block src);
        let s = !sc in
        s.data.(s.len) <- x;
        s.len <- s.len + 1;
        incr survivors;
        if s.len = src.cap then begin
          s.next <- nil;
          if !sh == nil then begin
            sh := s;
            st := s
          end
          else begin
            (!st).next <- s;
            st := s
          end;
          sc := nil
        end
      end
      else begin
        (* self-store guard: when nothing has been kept yet [j = i] and the
           write (a [caml_modify] barrier on a pointer array) is a no-op —
           skipping it makes the bulk-expiry walk store-free *)
        if !j < i then blk.data.(!j) <- x;
        incr j
      end
    done;
    if !j > 0 then free_bag blk.data !j;
    recycle src blk;
    b := nxt
  done;
  (* Seal the partial survivor block, if any, onto the survivor chain. *)
  (if !sc != nil then begin
     let s = !sc in
     s.next <- nil;
     if !sh == nil then begin
       sh := s;
       st := s
     end
     else begin
       (!st).next <- s;
       st := s
     end
   end);
  t.head <- !sh;
  t.tail <- (if !sh == nil then nil else !st);
  t.sealed_len <- !survivors;
  (* Open block: filter in place, staging drops in a scratch block so they
     too reach the arena through one bulk call. *)
  let c = t.cur in
  if c.len > 0 then begin
    let scratch = ref nil in
    let j = ref 0 in
    for i = 0 to c.len - 1 do
      let x = c.data.(i) in
      if keep x then begin
        if !j < i then c.data.(!j) <- x;
        incr j
      end
      else begin
        (if !scratch == nil then scratch := take_block src);
        let sb = !scratch in
        sb.data.(sb.len) <- x;
        sb.len <- sb.len + 1
      end
    done;
    if !j < c.len then begin
      for i = !j to c.len - 1 do
        c.data.(i) <- src.dummy
      done;
      c.len <- !j
    end;
    let sb = !scratch in
    if sb != nil then begin
      free_bag sb.data sb.len;
      recycle src sb
    end
  end

(* Donate [src]'s whole contents to [dst]: seal the open block (if
   non-empty) and splice the sealed chain onto [dst]'s tail — pure pointer
   operations, the bags travel intact. [src] is left empty but alive (it
   draws a fresh open block from its own cache): a racing owner that still
   pushes into it merely strands that node in an unreferenced block, the
   same benign race the vec-based donation had. *)
let splice_into ~src ~dst =
  if src.cur.len > 0 then begin
    append_sealed src src.cur;
    src.cur <- take_block src.src
  end;
  if src.head != src.src.nil then begin
    src.tail.next <- dst.src.nil;
    if dst.head == dst.src.nil then begin
      dst.head <- src.head;
      dst.tail <- src.tail
    end
    else begin
      dst.tail.next <- src.head;
      dst.tail <- src.tail
    end;
    dst.sealed_len <- dst.sealed_len + src.sealed_len;
    src.head <- src.src.nil;
    src.tail <- src.src.nil;
    src.sealed_len <- 0
  end

(* The timestamped variant for Cadence/QSense. Blocks carry a parallel
   per-node [ts] array plus [stamp], the seal-time timestamp of the block's
   newest node. The coarse clock is monotone per process, so [stamp] is
   also the block's maximum — [now - stamp >= T + eps] implies every node
   inside has aged out, which is what lets the scan walk check one stamp
   per block. *)
module Ts = struct
  type 'a block = {
    data : 'a array;
    ts : int array;
    mutable len : int;
    mutable stamp : int;
    mutable next : 'a block;
  }

  type 'a source = {
    cap : int;
    dummy : 'a;
    nil : 'a block;
    mutable cache : 'a block;
  }

  let source ?(capacity = 64) dummy =
    let cap = max 1 capacity in
    let rec nil =
      { data = [||]; ts = [||]; len = 0; stamp = min_int; next = nil }
    in
    { cap; dummy; nil; cache = nil }

  let capacity s = s.cap

  let take_block s =
    if s.cache == s.nil then
      { data = Array.make s.cap s.dummy;
        ts = Array.make s.cap 0;
        len = 0;
        stamp = min_int;
        next = s.nil }
    else begin
      let b = s.cache in
      s.cache <- b.next;
      b.next <- s.nil;
      b
    end

  let recycle s b =
    if b != s.nil && Array.length b.data = s.cap then begin
      Array.fill b.data 0 b.len s.dummy;
      b.len <- 0;
      b.stamp <- min_int;
      b.next <- s.cache;
      s.cache <- b
    end

  type 'a t = {
    src : 'a source;
    mutable head : 'a block;
    mutable tail : 'a block;
    mutable cur : 'a block;
    mutable sealed_len : int;
  }

  let create src =
    { src;
      head = src.nil;
      tail = src.nil;
      cur = take_block src;
      sealed_len = 0 }

  let length t = t.sealed_len + t.cur.len
  let is_empty t = length t = 0

  let append_sealed t b =
    b.next <- t.src.nil;
    if t.head == t.src.nil then begin
      t.head <- b;
      t.tail <- b
    end
    else begin
      t.tail.next <- b;
      t.tail <- b
    end;
    t.sealed_len <- t.sealed_len + b.len

  (* Append [x] with retire timestamp [stamp]; seals the block when full,
     stamping it with its newest (= maximum, by clock monotonicity)
     timestamp. Returns the sealed bag's size, 0 if none sealed. *)
  let push t x stamp =
    let c = t.cur in
    c.data.(c.len) <- x;
    c.ts.(c.len) <- stamp;
    c.len <- c.len + 1;
    if c.len = t.src.cap then begin
      c.stamp <- stamp;
      append_sealed t c;
      t.cur <- take_block t.src;
      c.len
    end
    else 0

  let iter f t =
    let b = ref t.head in
    while !b != t.src.nil do
      let blk = !b in
      for i = 0 to blk.len - 1 do
        f blk.data.(i) blk.ts.(i)
      done;
      b := blk.next
    done;
    let c = t.cur in
    for i = 0 to c.len - 1 do
      f c.data.(i) c.ts.(i)
    done

  (* [free_bag data ts count stamp]: [count] nodes (prefix of [data], with
     retire timestamps in the [ts] prefix) leave limbo at once; [stamp] is
     the bag's seal stamp, so [now - stamp] is the bag's age (the youngest
     node's age — a lower bound for every node in the bag). *)
  let drain t ~free_bag =
    let src = t.src in
    let nil = src.nil in
    let b = ref t.head in
    while !b != nil do
      let blk = !b in
      let nxt = blk.next in
      if blk.len > 0 then free_bag blk.data blk.ts blk.len blk.stamp;
      recycle src blk;
      b := nxt
    done;
    t.head <- nil;
    t.tail <- nil;
    t.sealed_len <- 0;
    let c = t.cur in
    if c.len > 0 then begin
      free_bag c.data c.ts c.len c.ts.(c.len - 1);
      Array.fill c.data 0 c.len src.dummy;
      c.len <- 0
    end

  (* The oldest-first reclamation walk. Sealed blocks are visited in chain
     order (oldest stamp first, by monotone stamping); the walk stops at
     the first block whose stamp fails [age_ok] — every block behind it is
     younger. Within a visited block, nodes failing [keep] are compacted
     to the block's front and freed wholesale; [keep]-survivors (hazard-
     protected nodes — already age-expired, since their bag was) are
     compacted into fresh blocks that are re-stamped conservatively with
     the maximum contributing seal stamp and prepended before the unwalked
     remainder, preserving the chain's oldest-first order.

     The still-open block is filtered per node (its nodes are the newest;
     a per-node check there is what keeps bag semantics aligned with the
     vec reference for small limbo sizes): a node is dropped only if
     [age_ok] holds for its own timestamp AND [keep] rejects it. Dropped
     open-block nodes are staged in a scratch block so they also reach the
     arena through one bulk call.

     Chains spliced from another process (adoption) may break stamp
     monotonicity at the seam; the walk then merely stops early — a
     reclamation delay of at most one scan per seam, never a safety
     issue. *)
  let scan t ~age_ok ~keep ~free_bag =
    let src = t.src in
    let nil = src.nil in
    let sh = ref nil in
    let st = ref nil in
    let sc = ref nil in
    let sc_stamp = ref min_int in
    let survivors = ref 0 in
    let walked = ref 0 in
    let stop = ref false in
    let b = ref t.head in
    while (not !stop) && !b != nil do
      let blk = !b in
      if not (age_ok blk.stamp) then stop := true
      else begin
        let nxt = blk.next in
        walked := !walked + blk.len;
        let j = ref 0 in
        for i = 0 to blk.len - 1 do
          let x = blk.data.(i) in
          let s = blk.ts.(i) in
          if keep x then begin
            (if !sc == nil then begin
               sc := take_block src;
               sc_stamp := blk.stamp
             end);
            let sb = !sc in
            sb.data.(sb.len) <- x;
            sb.ts.(sb.len) <- s;
            sb.len <- sb.len + 1;
            (if blk.stamp > !sc_stamp then sc_stamp := blk.stamp);
            incr survivors;
            if sb.len = src.cap then begin
              sb.stamp <- !sc_stamp;
              sb.next <- nil;
              if !sh == nil then begin
                sh := sb;
                st := sb
              end
              else begin
                (!st).next <- sb;
                st := sb
              end;
              sc := nil
            end
          end
          else begin
            (* self-store guard, as in {!scan}: all-drop blocks walk
               barrier- and store-free *)
            if !j < i then begin
              blk.data.(!j) <- x;
              blk.ts.(!j) <- s
            end;
            incr j
          end
        done;
        if !j > 0 then free_bag blk.data blk.ts !j blk.stamp;
        recycle src blk;
        b := nxt
      end
    done;
    (if !sc != nil then begin
       let sb = !sc in
       sb.stamp <- !sc_stamp;
       sb.next <- nil;
       if !sh == nil then begin
         sh := sb;
         st := sb
       end
       else begin
         (!st).next <- sb;
         st := sb
       end
     end);
    let rest = !b in
    (if !sh != nil then begin
       (!st).next <- rest;
       t.head <- !sh;
       if rest == nil then t.tail <- !st
     end
     else begin
       t.head <- rest;
       if rest == nil then t.tail <- nil
     end);
    t.sealed_len <- t.sealed_len - !walked + !survivors;
    let c = t.cur in
    if c.len > 0 then begin
      let scratch = ref nil in
      let scratch_stamp = ref min_int in
      let j = ref 0 in
      for i = 0 to c.len - 1 do
        let x = c.data.(i) in
        let s = c.ts.(i) in
        if age_ok s && not (keep x) then begin
          (if !scratch == nil then scratch := take_block src);
          let sb = !scratch in
          sb.data.(sb.len) <- x;
          sb.ts.(sb.len) <- s;
          sb.len <- sb.len + 1;
          if s > !scratch_stamp then scratch_stamp := s
        end
        else begin
          if !j < i then begin
            c.data.(!j) <- x;
            c.ts.(!j) <- s
          end;
          incr j
        end
      done;
      if !j < c.len then begin
        for i = !j to c.len - 1 do
          c.data.(i) <- src.dummy
        done;
        c.len <- !j
      end;
      let sb = !scratch in
      if sb != nil then begin
        free_bag sb.data sb.ts sb.len !scratch_stamp;
        recycle src sb
      end
    end

  let splice_into ~src ~dst =
    if src.cur.len > 0 then begin
      src.cur.stamp <- src.cur.ts.(src.cur.len - 1);
      append_sealed src src.cur;
      src.cur <- take_block src.src
    end;
    if src.head != src.src.nil then begin
      src.tail.next <- dst.src.nil;
      if dst.head == dst.src.nil then begin
        dst.head <- src.head;
        dst.tail <- src.tail
      end
      else begin
        dst.tail.next <- src.head;
        dst.tail <- src.tail
      end;
      dst.sealed_len <- dst.sealed_len + src.sealed_len;
      src.head <- src.src.nil;
      src.tail <- src.src.nil;
      src.sealed_len <- 0
    end
end
