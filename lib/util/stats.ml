let mean xs =
  let n = Array.length xs in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    sqrt (acc /. float_of_int (n - 1))
  end

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty";
  Array.fold_left
    (fun (lo, hi) x -> ((if x < lo then x else lo), if x > hi then x else hi))
    (xs.(0), xs.(0))
    xs

let percentile xs p =
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  if Array.length xs = 0 then 0.
  else
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = Buckets.interp_rank ~n ~p in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = percentile xs 50.

let total xs = Array.fold_left ( +. ) 0. xs

let ratio a b = if b = 0. then 0. else a /. b

let overhead_pct ~baseline v =
  if baseline = 0. then 0. else (baseline -. v) /. baseline *. 100.

let speedup ~baseline v = ratio v baseline
