(** Switchable limbo-list representation: {!Bag} (DEBRA-style batched
    bags, the default) or {!Vec} (the element-wise reference), selected
    once per scheme instance by [Smr_intf.config.limbo_bags]. The scan and
    drain entry points take per-variant callbacks so schemes preallocate
    every closure at registration and the hot paths allocate nothing. *)

type 'a source

val source : bags:bool -> capacity:int -> 'a -> 'a source

type 'a t

val create : 'a source -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> int
(** Returns the size of the bag this push sealed (0 if none; always 0 on
    the vec path). *)

val iter : ('a -> unit) -> 'a t -> unit

val scan :
  'a t ->
  vec_filter:('a -> bool) ->
  keep:('a -> bool) ->
  free_bag:('a array -> int -> unit) ->
  unit
(** Hazard-pointer scan. [vec_filter] is the whole element-wise filter
    (side effects included, as passed to [Vec.filter_in_place]); the bag
    path partitions with [keep] and frees via [free_bag] (see
    {!Bag.scan}). The two must encode the same decision. *)

val drain :
  'a t -> free_node:('a -> unit) -> free_bag:('a array -> int -> unit) -> unit
(** Unconditional free of everything (epoch expiry / teardown). *)

val splice_into : src:'a t -> dst:'a t -> unit
(** Donation. Bag chains move intact in O(1); vec contents are copied. *)

(** Three epoch-indexed limbo lists, the shape QSBR/EBR/QSense share. *)
module Triple : sig
  type nonrec 'a t = 'a t array

  val create : 'a source -> 'a t
  val total : 'a t -> int
end

(** The timestamped variant (Cadence / QSense). *)
module Ts : sig
  type 'a source

  val source : bags:bool -> capacity:int -> 'a -> 'a source

  type 'a t

  val create : 'a source -> 'a t
  val length : 'a t -> int
  val is_empty : 'a t -> bool
  val push : 'a t -> 'a -> int -> int
  val iter : ('a -> int -> unit) -> 'a t -> unit

  val scan :
    'a t ->
    vec_filter:('a -> int -> bool) ->
    age_ok:(int -> bool) ->
    keep:('a -> bool) ->
    free_bag:('a array -> int array -> int -> int -> unit) ->
    unit
  (** See {!Bag.Ts.scan} for the bag path's oldest-first walk semantics. *)

  val drain :
    'a t ->
    free_node:('a -> int -> unit) ->
    free_bag:('a array -> int array -> int -> int -> unit) ->
    unit

  val splice_into : src:'a t -> dst:'a t -> unit

  module Triple : sig
    type nonrec 'a t = 'a t array

    val create : 'a source -> 'a t
    val total : 'a t -> int
  end
end
