(** A minimal JSON reader, used to validate the observatory's exporters
    (Chrome trace-event files, [BENCH_RESULTS.json]) without adding a
    dependency. It accepts standard JSON (RFC 8259): objects, arrays,
    strings with the usual escapes ([\uXXXX] included, decoded to UTF-8),
    numbers, booleans and null. It is a validator-grade parser — good
    enough for round-trip tests and CI guards, not a streaming API. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list  (** fields in source order; duplicates kept *)

val parse : string -> (t, string) result
(** Parse a complete JSON document; trailing non-whitespace is an error.
    The error string carries a character offset. *)

val parse_exn : string -> t
(** Like {!parse}. Raises [Failure] with the error message. *)

val member : string -> t -> t option
(** [member k (Obj fields)] is the first field named [k]; [None] on
    missing keys and non-objects. *)

val to_list : t -> t list
(** Elements of an [Arr]; [\[\]] on anything else. *)

val to_string : t -> string
(** Two-space indented serialization (ends with a newline); parses back to
    an equal value. Numbers print as integers when integral. *)

val set_member : string -> t -> t -> t
(** [set_member k v obj] replaces field [k] (or appends it) in an [Obj],
    preserving field order; on a non-object it returns [Obj [(k, v)]]. *)
