(** Bucket-edge machinery shared by the offline {!Histogram}, the online
    log-bucketed {!Qs_obs.Latency} histograms and {!Stats.percentile} —
    one home for edge-label formatting and rank arithmetic so the three
    presentations of a distribution cannot drift apart. *)

val distinct_labels : float array -> string array
(** Render bucket edges as decimal labels, right-aligned to a common
    width, using the fewest decimals (seeded from the significant digits
    of the smallest adjacent gap, at most 9) that keep all adjacent edge
    labels distinct — so narrow ranges do not collapse to identical labels
    and wide ranges are not padded with noise digits. *)

val ascii_rows : labels:string array -> counts:int array -> width:int -> string
(** One text row per bucket: [label | ###### count], bars scaled so the
    fullest bucket spans [width] characters. [labels] and [counts] must
    have equal lengths. *)

val interp_rank : n:int -> p:float -> float
(** The closest-ranks interpolation position of percentile [p] among [n]
    sorted samples: [p / 100 * (n - 1)]. Raises [Invalid_argument] when
    [p] is outside [\[0, 100\]]. *)

val count_rank : total:int -> p:float -> int
(** The 1-based rank of percentile [p] in a population of [total] counted
    samples: [max 1 (ceil (p / 100 * total))] — the rank an online
    histogram walks its cumulative bucket counts up to. Raises
    [Invalid_argument] when [p] is outside [\[0, 100\]]. *)

val cumulative_index : int array -> p:float -> int
(** Index of the bucket containing percentile [p] of the counts' total:
    the first bucket at which the cumulative count reaches
    [count_rank ~total ~p]. Returns [0] when the total is 0; raises
    [Invalid_argument] when [p] is out of range. *)
