(* Growable vectors for the reclamation hot paths.

   The seed implementation kept limbo/removed-nodes lists as [node list]:
   every [retire] consed a fresh cell and every scan rebuilt the list with
   [List.filter] + [List.length]. These vectors make [retire] an amortised
   allocation-free array store and let scans compact in place, touching each
   element exactly once and freeing nothing on the OCaml heap.

   Two flavours:

   - {!t} — a plain growable vector of ['a], parameterised by a [dummy]
     element used to blank vacated slots (so the vector never keeps freed
     nodes alive for the GC);
   - {!Ts} — the timestamped variant used by Cadence/QSense: a vector of
     ['a] with a parallel [int] array of retire timestamps, avoiding a
     per-entry wrapper record on the retire path.

   Capacity only grows (doubling); it is retained across {!clear} so that a
   steady-state workload stops allocating entirely. Not thread-safe: every
   vector is owned by exactly one process (per-process limbo lists). *)

type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 16) dummy =
  { data = Array.make (max 1 capacity) dummy; len = 0; dummy }

let length t = t.len
let is_empty t = t.len = 0
let capacity t = Array.length t.data

let grow t =
  let data = Array.make (2 * Array.length t.data) t.dummy in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t x =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

(* LIFO pop, blanking the vacated slot: the arena's free lists want the
   most-recently-freed (cache-warm) node first, with no cons per free. *)
let pop t =
  if t.len = 0 then invalid_arg "Vec.pop";
  t.len <- t.len - 1;
  let x = t.data.(t.len) in
  t.data.(t.len) <- t.dummy;
  x

let clear t =
  Array.fill t.data 0 t.len t.dummy;
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

(* In-place compaction: keep elements satisfying [f] (preserving order),
   drop the rest. [f] is called exactly once per element, in order, so it
   may perform the "free" side effect for dropped elements. Vacated tail
   slots are blanked with the dummy. *)
let filter_in_place t f =
  let j = ref 0 in
  for i = 0 to t.len - 1 do
    let x = t.data.(i) in
    if f x then begin
      t.data.(!j) <- x;
      incr j
    end
  done;
  for i = !j to t.len - 1 do
    t.data.(i) <- t.dummy
  done;
  t.len <- !j

let to_list t = List.rev (fold_left (fun acc x -> x :: acc) [] t)

module Ts = struct
  type 'a t = {
    mutable data : 'a array;
    mutable ts : int array;
    mutable len : int;
    dummy : 'a;
  }

  let create ?(capacity = 16) dummy =
    let capacity = max 1 capacity in
    { data = Array.make capacity dummy; ts = Array.make capacity 0; len = 0; dummy }

  let length t = t.len
  let is_empty t = t.len = 0
  let capacity t = Array.length t.data

  let grow t =
    let cap = 2 * Array.length t.data in
    let data = Array.make cap t.dummy in
    let ts = Array.make cap 0 in
    Array.blit t.data 0 data 0 t.len;
    Array.blit t.ts 0 ts 0 t.len;
    t.data <- data;
    t.ts <- ts

  let push t x stamp =
    if t.len = Array.length t.data then grow t;
    t.data.(t.len) <- x;
    t.ts.(t.len) <- stamp;
    t.len <- t.len + 1

  let get t i =
    if i < 0 || i >= t.len then invalid_arg "Vec.Ts.get";
    t.data.(i)

  let ts_of t i =
    if i < 0 || i >= t.len then invalid_arg "Vec.Ts.ts_of";
    t.ts.(i)

  let clear t =
    Array.fill t.data 0 t.len t.dummy;
    t.len <- 0

  let iter f t =
    for i = 0 to t.len - 1 do
      f t.data.(i) t.ts.(i)
    done

  (* In-place compaction over (element, timestamp) pairs; see
     {!Vec.filter_in_place}. *)
  let filter_in_place t f =
    let j = ref 0 in
    for i = 0 to t.len - 1 do
      let x = t.data.(i) and s = t.ts.(i) in
      if f x s then begin
        t.data.(!j) <- x;
        t.ts.(!j) <- s;
        incr j
      end
    done;
    for i = !j to t.len - 1 do
      t.data.(i) <- t.dummy
    done;
    t.len <- !j

  let to_list t =
    let acc = ref [] in
    for i = t.len - 1 downto 0 do
      acc := (t.data.(i), t.ts.(i)) :: !acc
    done;
    !acc
end
