(** Fixed-bucket histograms, used for latency/age distributions in the
    harness and for quick terminal visualisation of throughput series. *)

type t

val create : lo:float -> hi:float -> buckets:int -> t
(** [create ~lo ~hi ~buckets] covers [\[lo, hi)] with equally sized buckets;
    samples outside the range land in the first/last bucket. *)

val add : t -> float -> unit

val count : t -> int
(** Total number of samples added. *)

val bucket_counts : t -> int array

val to_ascii : t -> width:int -> string
(** Horizontal bar chart, one line per bucket, bars scaled to [width].
    Bucket-edge labels are right-aligned to a common width and rendered
    with the fewest decimals (from the significant digits of the bucket
    step, at most 9) that keep all adjacent edges distinct — so narrow
    ranges do not collapse to identical labels and wide ranges are not
    padded with noise digits. *)

val sparkline : float array -> string
(** Renders a series as a one-line unicode sparkline — used for the
    throughput-over-time figures on a terminal. *)
