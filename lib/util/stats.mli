(** Small summary-statistics helpers used by the experiment harness. *)

val mean : float array -> float
(** Arithmetic mean; 0. on the empty array. *)

val stddev : float array -> float
(** Sample standard deviation (n-1 denominator); 0. for fewer than 2 points. *)

val min_max : float array -> float * float
(** Smallest and largest element. Raises [Invalid_argument] on empty input. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], linear interpolation between
    closest ranks. Does not mutate the input. Total: returns [0.] on the
    empty array (so dashboards over possibly-empty traces never raise);
    still raises [Invalid_argument] when [p] is out of range. *)

val median : float array -> float
(** [percentile xs 50.]; [0.] on the empty array. *)

val total : float array -> float

val ratio : float -> float -> float
(** [ratio a b] is [a /. b], or 0 when [b = 0]. *)

val overhead_pct : baseline:float -> float -> float
(** [overhead_pct ~baseline v] is the relative slowdown of throughput [v]
    versus [baseline], in percent: [(baseline - v) / baseline * 100]. *)

val speedup : baseline:float -> float -> float
(** [speedup ~baseline v] is [v / baseline] (how many times faster than the
    baseline throughput). *)
