type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Err of int * string

let fail pos msg = raise (Err (pos, msg))

(* Recursive-descent over a string with one mutable position. *)
type st = { src : string; mutable pos : int }

let peek s = if s.pos < String.length s.src then Some s.src.[s.pos] else None

let skip_ws s =
  let n = String.length s.src in
  while
    s.pos < n
    && match s.src.[s.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    s.pos <- s.pos + 1
  done

let expect s c =
  match peek s with
  | Some c' when c' = c -> s.pos <- s.pos + 1
  | _ -> fail s.pos (Printf.sprintf "expected %C" c)

let keyword s kw v =
  let n = String.length kw in
  if s.pos + n <= String.length s.src && String.sub s.src s.pos n = kw then begin
    s.pos <- s.pos + n;
    v
  end
  else fail s.pos (Printf.sprintf "expected %s" kw)

let hex_digit pos = function
  | '0' .. '9' as c -> Char.code c - Char.code '0'
  | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
  | _ -> fail pos "bad hex digit in \\u escape"

let utf8_add buf cp =
  (* Encode one Unicode scalar value (or lone surrogate, replaced). *)
  let cp = if cp >= 0xD800 && cp <= 0xDFFF then 0xFFFD else cp in
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_u16 s =
  if s.pos + 4 > String.length s.src then fail s.pos "truncated \\u escape";
  let v =
    (hex_digit s.pos s.src.[s.pos] lsl 12)
    lor (hex_digit s.pos s.src.[s.pos + 1] lsl 8)
    lor (hex_digit s.pos s.src.[s.pos + 2] lsl 4)
    lor hex_digit s.pos s.src.[s.pos + 3]
  in
  s.pos <- s.pos + 4;
  v

let parse_string s =
  expect s '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek s with
    | None -> fail s.pos "unterminated string"
    | Some '"' -> s.pos <- s.pos + 1
    | Some '\\' ->
      s.pos <- s.pos + 1;
      (match peek s with
      | None -> fail s.pos "truncated escape"
      | Some c ->
        s.pos <- s.pos + 1;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          let hi = parse_u16 s in
          (* Surrogate pair: \uD800-\uDBFF must be followed by \uDC00-\uDFFF. *)
          if hi >= 0xD800 && hi <= 0xDBFF
             && s.pos + 1 < String.length s.src
             && s.src.[s.pos] = '\\'
             && s.src.[s.pos + 1] = 'u'
          then begin
            s.pos <- s.pos + 2;
            let lo = parse_u16 s in
            if lo >= 0xDC00 && lo <= 0xDFFF then
              utf8_add buf
                (0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00))
            else begin
              utf8_add buf hi;
              utf8_add buf lo
            end
          end
          else utf8_add buf hi
        | _ -> fail (s.pos - 1) "bad escape character"));
      go ()
    | Some c when Char.code c < 0x20 -> fail s.pos "control character in string"
    | Some c ->
      Buffer.add_char buf c;
      s.pos <- s.pos + 1;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number s =
  let start = s.pos in
  let n = String.length s.src in
  let advance_while p =
    while s.pos < n && p s.src.[s.pos] do
      s.pos <- s.pos + 1
    done
  in
  if peek s = Some '-' then s.pos <- s.pos + 1;
  advance_while (function '0' .. '9' -> true | _ -> false);
  if peek s = Some '.' then begin
    s.pos <- s.pos + 1;
    advance_while (function '0' .. '9' -> true | _ -> false)
  end;
  (match peek s with
  | Some ('e' | 'E') ->
    s.pos <- s.pos + 1;
    (match peek s with
    | Some ('+' | '-') -> s.pos <- s.pos + 1
    | _ -> ());
    advance_while (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  let text = String.sub s.src start (s.pos - start) in
  match float_of_string_opt text with
  | Some f -> Num f
  | None -> fail start (Printf.sprintf "bad number %S" text)

let rec parse_value s =
  skip_ws s;
  match peek s with
  | None -> fail s.pos "unexpected end of input"
  | Some '{' ->
    s.pos <- s.pos + 1;
    skip_ws s;
    if peek s = Some '}' then begin
      s.pos <- s.pos + 1;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws s;
        let k = parse_string s in
        skip_ws s;
        expect s ':';
        let v = parse_value s in
        skip_ws s;
        match peek s with
        | Some ',' ->
          s.pos <- s.pos + 1;
          fields ((k, v) :: acc)
        | Some '}' ->
          s.pos <- s.pos + 1;
          List.rev ((k, v) :: acc)
        | _ -> fail s.pos "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some '[' ->
    s.pos <- s.pos + 1;
    skip_ws s;
    if peek s = Some ']' then begin
      s.pos <- s.pos + 1;
      Arr []
    end
    else begin
      let rec elems acc =
        let v = parse_value s in
        skip_ws s;
        match peek s with
        | Some ',' ->
          s.pos <- s.pos + 1;
          elems (v :: acc)
        | Some ']' ->
          s.pos <- s.pos + 1;
          List.rev (v :: acc)
        | _ -> fail s.pos "expected ',' or ']'"
      in
      Arr (elems [])
    end
  | Some '"' -> Str (parse_string s)
  | Some 't' -> keyword s "true" (Bool true)
  | Some 'f' -> keyword s "false" (Bool false)
  | Some 'n' -> keyword s "null" Null
  | Some ('-' | '0' .. '9') -> parse_number s
  | Some c -> fail s.pos (Printf.sprintf "unexpected character %C" c)

let parse src =
  let s = { src; pos = 0 } in
  match
    let v = parse_value s in
    skip_ws s;
    if s.pos <> String.length src then fail s.pos "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Err (pos, msg) ->
    Error (Printf.sprintf "JSON error at offset %d: %s" pos msg)

let parse_exn src =
  match parse src with Ok v -> v | Error msg -> failwith msg

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_list = function Arr xs -> xs | _ -> []

(* --- printing ------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.12g" f)

(* Two-space indented printer (BENCH_RESULTS.json is diffed by humans;
   compact single-line output would bury every change). *)
let to_string v =
  let buf = Buffer.create 1024 in
  let pad n = Buffer.add_string buf (String.make n ' ') in
  let rec go ind = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> add_num buf f
    | Str s -> escape_string buf s
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr xs ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (ind + 2);
          go (ind + 2) x)
        xs;
      Buffer.add_char buf '\n';
      pad ind;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (ind + 2);
          escape_string buf k;
          Buffer.add_string buf ": ";
          go (ind + 2) x)
        fields;
      Buffer.add_char buf '\n';
      pad ind;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let set_member k v = function
  | Obj fields ->
    if List.mem_assoc k fields then
      Obj (List.map (fun (k', v') -> if k' = k then (k, v) else (k', v')) fields)
    else Obj (fields @ [ (k, v) ])
  | _ -> Obj [ (k, v) ]
