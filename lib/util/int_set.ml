(* Open-addressing integer hash set for the reclamation hot paths.

   Designed for the hazard-pointer scan set: a scan snapshots the N·K
   hazard slots into one of these and then answers up to |limbo| membership
   queries against it, so [add]/[mem] must be O(1) expected and — like
   {!Vec} — allocation-free in steady state.

   - Power-of-two capacity, linear probing, Fibonacci (multiplicative)
     hashing. Load factor is kept <= 1/2, so probe sequences stay short.
   - Occupancy is tracked with a parallel generation-stamp array: a slot is
     live iff its stamp equals the set's current generation. {!reset} is
     therefore O(1) — bump the generation — instead of O(capacity) refills,
     and no key value has to be sacrificed as an "empty" sentinel (any
     [int], including [min_int], is a valid member).
   - The arrays grow (doubling, rehash) only when the load factor is
     exceeded; a set created with capacity for its steady-state population
     never allocates again. *)

type t = {
  mutable keys : int array;
  mutable stamps : int array;
  mutable mask : int; (* capacity - 1; capacity is a power of two *)
  mutable len : int; (* live keys in the current generation *)
  mutable gen : int; (* current generation; stamps start at 0, gen at 1 *)
  mutable lo : int; (* min live key, max_int when empty *)
  mutable hi : int; (* max live key, min_int when empty *)
}

let rec next_pow2 n acc = if acc >= n then acc else next_pow2 n (acc * 2)

(* Smallest power-of-two capacity that keeps [n] keys under 1/2 load. *)
let capacity_for n = next_pow2 (max 8 (2 * n)) 8

let create ?(capacity = 8) () =
  let cap = capacity_for capacity in
  { keys = Array.make cap 0;
    stamps = Array.make cap 0;
    mask = cap - 1;
    len = 0;
    gen = 1;
    lo = max_int;
    hi = min_int }

let length t = t.len
let capacity t = t.mask + 1

let reset t =
  t.len <- 0;
  t.gen <- t.gen + 1;
  t.lo <- max_int;
  t.hi <- min_int

(* Fibonacci hashing: multiply by an odd constant close to 2^62/phi and mix
   the high bits down. Sequential ids (the common case: nodes stamped from
   a counter) spread uniformly. *)
let hash t k =
  let h = k * 0x3F4A7C15F39CC60D in
  (h lxor (h lsr 29)) land t.mask

(* [min, max] of the live keys, maintained by [add]: membership queries
   outside the range answer with two comparisons and no probe. The scan
   set holds the N*K hazard-protected ids while a reclamation walk asks
   about every retired node, so when the retired population is disjoint
   from the protected range (the bulk-expiry common case) the whole walk
   skips the hash entirely. *)
let mem t k =
  if k < t.lo || k > t.hi then false
  else begin
  let i = ref (hash t k) in
  let found = ref false in
  let live = ref (t.stamps.(!i) = t.gen) in
  while !live && not !found do
    if t.keys.(!i) = k then found := true
    else begin
      i := (!i + 1) land t.mask;
      live := t.stamps.(!i) = t.gen
    end
  done;
  !found
  end

let rec add t k =
  if 2 * (t.len + 1) > t.mask + 1 then grow t;
  let i = ref (hash t k) in
  let dup = ref false in
  let live = ref (t.stamps.(!i) = t.gen) in
  while !live && not !dup do
    if t.keys.(!i) = k then dup := true
    else begin
      i := (!i + 1) land t.mask;
      live := t.stamps.(!i) = t.gen
    end
  done;
  if not !dup then begin
    t.keys.(!i) <- k;
    t.stamps.(!i) <- t.gen;
    t.len <- t.len + 1;
    if k < t.lo then t.lo <- k;
    if k > t.hi then t.hi <- k
  end

and grow t =
  let old_keys = t.keys and old_stamps = t.stamps and old_gen = t.gen in
  let cap = 2 * (t.mask + 1) in
  t.keys <- Array.make cap 0;
  t.stamps <- Array.make cap 0;
  t.mask <- cap - 1;
  t.len <- 0;
  t.gen <- 1;
  (* lo/hi stay: re-adding the same keys cannot widen the range *)
  Array.iteri
    (fun i s -> if s = old_gen then add t old_keys.(i))
    old_stamps

let iter f t =
  Array.iteri (fun i s -> if s = t.gen then f t.keys.(i)) t.stamps

let to_list t =
  let acc = ref [] in
  iter (fun k -> acc := k :: !acc) t;
  List.sort compare !acc
