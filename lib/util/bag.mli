(** DEBRA-style limbo bags: fixed-capacity blocks (default 64 nodes)
    chained into a per-limbo-list deque. A block is {e sealed} when it
    fills; reclamation walks sealed bags oldest-first and frees a whole
    bag's nodes in one bulk call, stopping at the first bag that is still
    unreclaimable. Emptied blocks return to a per-process cache, so
    steady-state retire/scan is allocation-free. Single-owner, like {!Vec};
    donation moves sealed chains intact via {!splice_into}. *)

type 'a source
(** Per-process block factory + recycling cache, shared by all of one
    process's limbo deques so blocks circulate between them. *)

val source : ?capacity:int -> 'a -> 'a source
(** [source ?capacity dummy] — [capacity] (default 64, clamped [>= 1]) is
    the per-block node count; [dummy] blanks vacated slots. *)

val capacity : 'a source -> int

type 'a t

val create : 'a source -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> int
(** Append to the open block. Returns the size of the bag this push sealed
    (= block capacity), or [0] if the open block still has room — the
    caller uses this to emit its bag-seal event. Allocation-free whenever
    the block cache is non-empty (steady state). *)

val iter : ('a -> unit) -> 'a t -> unit
(** Sealed chain oldest-first, then the open block. Test helper. *)

val drain : 'a t -> free_bag:('a array -> int -> unit) -> unit
(** Free everything: each non-empty block's node prefix is handed to
    [free_bag data count] wholesale, then the block is blanked and
    recycled. The deque remains usable. The callback must not retain
    [data]. *)

val scan : 'a t -> keep:('a -> bool) -> free_bag:('a array -> int -> unit) -> unit
(** Hazard-pointer scan over {e all} blocks: per block, nodes failing
    [keep] are compacted to the block's front and freed via one [free_bag]
    call; survivors are compacted into fresh blocks that replace the
    sealed chain (the open block is filtered in place, its drops staged
    through a scratch block). Zero heap allocation when the block cache
    suffices. *)

val splice_into : src:'a t -> dst:'a t -> unit
(** Donate [src]'s whole contents to [dst]: the open block is sealed (if
    non-empty) and the sealed chain is spliced onto [dst]'s tail by pure
    pointer surgery — bags travel intact, O(1) in the number of nodes.
    [src] is left empty but alive. *)

(** The timestamped variant for Cadence/QSense: blocks carry a parallel
    per-node timestamp array (exact age-at-free; per-node filtering of the
    open block) plus a seal [stamp] — the newest, hence by clock
    monotonicity maximum, timestamp in the bag — driving the oldest-first
    reclamation walk. *)
module Ts : sig
  type 'a source

  val source : ?capacity:int -> 'a -> 'a source
  val capacity : 'a source -> int

  type 'a t

  val create : 'a source -> 'a t
  val length : 'a t -> int
  val is_empty : 'a t -> bool

  val push : 'a t -> 'a -> int -> int
  (** [push t x ts] appends [x] with retire timestamp [ts]; returns the
      sealed bag size as {!val:Bag.push} does. *)

  val iter : ('a -> int -> unit) -> 'a t -> unit

  val drain :
    'a t -> free_bag:('a array -> int array -> int -> int -> unit) -> unit
  (** [free_bag data ts count stamp]: [count] nodes with their retire
      timestamps leave limbo at once; [stamp] is the bag's seal stamp
      ([min_int] never escapes — a partial open block is stamped with its
      newest timestamp on the way out). *)

  val scan :
    'a t ->
    age_ok:(int -> bool) ->
    keep:('a -> bool) ->
    free_bag:('a array -> int array -> int -> int -> unit) ->
    unit
  (** The oldest-first walk. Sealed bags are visited while [age_ok stamp]
      holds and the walk stops at the first failure (everything behind is
      younger, by monotone stamping; an adoption seam can break the order
      and merely stops the walk early — a delay, never a leak or an unsafe
      free). Within a reclaimable bag, [keep]-survivors (hazard-protected)
      are compacted into fresh blocks re-stamped with the maximum
      contributing seal stamp and prepended before the unwalked remainder;
      the rest are freed wholesale. The open block is filtered per node: a
      node is dropped only if [age_ok] holds for its own timestamp and
      [keep] rejects it — for limbo sizes below one block this makes bag
      scans decide exactly as the vec reference. *)

  val splice_into : src:'a t -> dst:'a t -> unit
end
