(** Growable vectors for the reclamation hot paths (limbo / removed-nodes
    lists). [retire] becomes an amortised allocation-free array store;
    scans compact in place instead of rebuilding a list. Capacity doubles
    on demand and is retained across {!clear}, so a steady-state workload
    performs no heap allocation at all. Single-owner: not thread-safe. *)

type 'a t

val create : ?capacity:int -> 'a -> 'a t
(** [create ?capacity dummy] — [dummy] blanks vacated slots so the vector
    never keeps dropped elements alive for the GC. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val capacity : 'a t -> int

val push : 'a t -> 'a -> unit
(** Amortised O(1), allocation-free once capacity has been reached. *)

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] out of bounds. *)

val pop : 'a t -> 'a
(** Remove and return the last element (LIFO), blanking its slot.
    Allocation-free. Raises [Invalid_argument] on an empty vector. *)

val clear : 'a t -> unit
(** Drops all elements (blanking slots); capacity is retained. *)

val iter : ('a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val filter_in_place : 'a t -> ('a -> bool) -> unit
(** [filter_in_place t f] keeps (in order) the elements satisfying [f] and
    drops the rest, compacting in place with zero allocation. [f] is called
    exactly once per element, in order — it may free dropped elements as a
    side effect. *)

val to_list : 'a t -> 'a list
(** Debug/test helper (allocates). *)

(** The timestamped variant used by Cadence/QSense: a parallel [int] array
    of retire timestamps replaces the seed's per-entry wrapper record. *)
module Ts : sig
  type 'a t

  val create : ?capacity:int -> 'a -> 'a t
  val length : 'a t -> int
  val is_empty : 'a t -> bool
  val capacity : 'a t -> int

  val push : 'a t -> 'a -> int -> unit
  (** [push t x ts] appends [x] with retire timestamp [ts]. *)

  val get : 'a t -> int -> 'a
  val ts_of : 'a t -> int -> int
  val clear : 'a t -> unit
  val iter : ('a -> int -> unit) -> 'a t -> unit

  val filter_in_place : 'a t -> ('a -> int -> bool) -> unit
  (** As {!Vec.filter_in_place}, over (element, timestamp) pairs. *)

  val to_list : 'a t -> ('a * int) list
  (** Debug/test helper (allocates). *)
end
