(** Shared configuration and conventions for the lock-free data structures.

    Every structure in {!Qs_ds} is a functor over a
    {!Qs_intf.Runtime_intf.RUNTIME} and exposes the same shape:

    - [create cfg] builds the shared structure, instantiating the requested
      reclamation scheme (the structure itself chooses K, its number of
      hazard pointers per process, and m, its removals per operation);
    - [register t ~pid] yields a per-process context; every worker must
      register exactly once with a distinct pid;
    - [search]/[insert]/[delete] are linearizable set operations on integer
      keys; each calls the scheme's [manage_state] on entry (rule 1 of the
      paper's methodology), protects traversed nodes with [assign_hp]
      (rule 2), and retires unlinked nodes with [retire] (rule 3);
    - inspection functions ([size], [to_list], statistics) must run in
      process context (inside a simulator fiber, or any domain for the real
      runtime) but not concurrently with mutations. *)

type config = {
  scheme : Qs_smr.Scheme.kind;
  smr : Qs_smr.Smr_intf.config;
      (** [hp_per_process] and [removes_per_op_max] are overridden by each
          data structure with its own requirements. *)
  capacity : int option;  (** arena capacity; exceeded => [Arena.Exhausted] *)
  debug_checks : bool;
      (** record node-state oracle violations (use-after-free) on traversal;
          costs nothing in shared-memory terms, a few local instructions *)
}

let default_config ~n_processes ~scheme =
  { scheme;
    smr = Qs_smr.Smr_intf.default_config ~n_processes ~hp_per_process:2;
    capacity = None;
    debug_checks = true }

(** Combined statistics snapshot reported by every structure. *)
type report = {
  smr : Qs_smr.Smr_intf.stats;
  allocations : int;
  frees : int;
  outstanding : int;
  fresh_nodes : int;
  (** Arena allocations that created a new node rather than recycling a
      freed one; [allocations - fresh_nodes] allocations were recycled. *)
  violations : int;
  double_frees : int;
}
