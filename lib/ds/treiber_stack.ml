(* Treiber's lock-free stack with QSense-style reclamation — the worked
   example of applying the paper's three-rule methodology to a brand-new
   data structure (see examples/custom_structure.ml):

   1. call [manage_state] between operations (here: at the top of
      push/pop);
   2. protect the node about to be dereferenced with [assign_hp] and
      re-validate that it is still the top (Condition 1);
   3. call [retire] instead of [free] when a node is unlinked.

   Classic Treiber with free() suffers from ABA: a popped-and-recycled node
   can reappear as top and a stale CAS succeeds. Here that cannot happen
   for two independent reasons: links are unique [Ptr] objects compared
   physically, and the SMR scheme keeps a node from being recycled while
   any process still holds a protected reference to it. *)

module Make (R : Qs_intf.Runtime_intf.RUNTIME) = struct
  type node = {
    uid : int; (* stable identity for the SMR membership set *)
    mutable value : int;
    mutable next : link; (* written only before the node is published *)
    mutable state : Qs_arena.Node_state.t;
    mutable birth : int;
  }

  and link = Null | Ptr of node

  let uid_counter = Atomic.make 0
  let fresh_uid () = Atomic.fetch_and_add uid_counter 1

  module Node_impl = struct
    type t = node

    let create () =
      { uid = fresh_uid ();
        value = 0;
        next = Null;
        state = Qs_arena.Node_state.Free;
        birth = 0 }

    let get_state n = n.state
    let set_state n s = n.state <- s
    let bump_birth n = n.birth <- n.birth + 1
  end

  module Arena = Qs_arena.Arena.Make (Node_impl)
  module Glue = Smr_glue.Make (R) (struct
    type t = node

    let id n = n.uid
  end)

  type t = {
    top : link R.atomic;
    dummy : node;
    smr : Glue.ops;
    arena : Arena.t;
    debug_checks : bool;
  }

  type ctx = { stack : t; smr_h : Glue.handle; arena_h : Arena.handle }

  let hp_per_process = 1

  let create (cfg : Set_intf.config) =
    let smr_cfg =
      { cfg.smr with hp_per_process; removes_per_op_max = 1 }
    in
    let dummy =
      { uid = fresh_uid ();
        value = 0;
        next = Null;
        state = Qs_arena.Node_state.Reachable;
        birth = 0 }
    in
    let arena =
      Arena.create ?capacity:cfg.capacity ~n_processes:smr_cfg.n_processes ()
    in
    let arena_handles =
      Array.init smr_cfg.n_processes (fun pid -> Arena.register arena ~pid)
    in
    let free n = Arena.free arena_handles.(R.self ()) n in
    (* bulk-return path for whole limbo bags: one outstanding-counter
       update per bag instead of one per node *)
    let free_bulk data count =
      Arena.free_many arena_handles.(R.self ()) data count
    in
    let smr = Glue.make ~free_bulk cfg.scheme smr_cfg ~dummy ~free in
    { top = R.atomic Null; dummy; smr; arena; debug_checks = cfg.debug_checks }

  let register t ~pid =
    { stack = t;
      smr_h = t.smr.register ~pid;
      arena_h = Arena.register t.arena ~pid }

  let touch ctx n = if ctx.stack.debug_checks then Arena.touch ctx.arena_h n

  let push ctx value =
    ctx.smr_h.manage_state ();
    let n = Arena.alloc ctx.arena_h in
    n.value <- value;
    (* [published] flips (meta-level, no effect in between) right after the
       publishing CAS wins, so a neutralization signal aborting this
       operation returns the still-private node to the arena. *)
    let published = ref false in
    let rec attempt () =
      let old = R.get ctx.stack.top in
      n.next <- old;
      if R.cas ctx.stack.top old (Ptr n) then begin
        published := true;
        n.state <- Qs_arena.Node_state.Reachable
      end
      else attempt ()
    in
    (try attempt ()
     with Qs_intf.Runtime_intf.Neutralized as e ->
       if not !published then Arena.free ctx.arena_h n;
       raise e);
    (* end-of-operation hook: drops protections / unpins epoch schemes *)
    ctx.smr_h.clear_hps ()

  let pop ctx =
    ctx.smr_h.manage_state ();
    let rec attempt () =
      match R.get ctx.stack.top with
      | Null ->
        ctx.smr_h.clear_hps ();
        None
      | Ptr n as old ->
        ctx.smr_h.assign_hp ~slot:0 n;
        (* re-validate: n is still the top, hence not yet retired *)
        if R.get ctx.stack.top != old then attempt ()
        else begin
          touch ctx n;
          let next = n.next in
          touch ctx n;
          if R.cas ctx.stack.top old next then begin
            let v = n.value in
            n.state <- Qs_arena.Node_state.Removed;
            ctx.smr_h.retire n;
            ctx.smr_h.clear_hps ();
            Some v
          end
          else attempt ()
        end
    in
    attempt ()

  (* Sequential-context helpers. *)

  let to_list ctx =
    let rec go acc = function
      | Null -> List.rev acc
      | Ptr n -> go (n.value :: acc) n.next
    in
    go [] (R.get ctx.stack.top)

  let length ctx = List.length (to_list ctx)
  let unregister ctx = ctx.smr_h.unregister ()

  let flush ctx = ctx.smr_h.flush ()

  let report t : Set_intf.report =
    { smr = t.smr.stats ();
      allocations = Arena.allocations t.arena;
      frees = Arena.frees t.arena;
      outstanding = Arena.outstanding t.arena;
      fresh_nodes = Arena.fresh_nodes t.arena;
      violations = Arena.violations t.arena;
      double_frees = Arena.double_frees t.arena }

  let violations t = Arena.violations t.arena
  let outstanding t = Arena.outstanding t.arena
end
