(** Treiber's lock-free stack with pluggable reclamation — the worked
    example of applying the paper's three-rule methodology to a new data
    structure (see examples/custom_structure.ml). K = 1 hazard pointer.
    Values are integers. *)

module Make (R : Qs_intf.Runtime_intf.RUNTIME) : sig
  type t
  type ctx

  val hp_per_process : int

  val create : Set_intf.config -> t
  val register : t -> pid:int -> ctx

  val push : ctx -> int -> unit
  val pop : ctx -> int option

  val to_list : ctx -> int list
  (** Top first; process context, no concurrent mutators. *)

  val length : ctx -> int
  val unregister : ctx -> unit
  (** Leave the computation: retire the SMR pid slot, donating its limbo
      lists to the scheme's orphan pool; the slot may be re-registered
      later (worker churn). Process context, between operations. *)

  val flush : ctx -> unit
  val report : t -> Set_intf.report
  val violations : t -> int
  val outstanding : t -> int
end
