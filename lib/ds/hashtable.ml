(* Michael's lock-free hash table (SPAA 2002 — reference [24] of the paper):
   a fixed array of buckets, each an independent Harris-Michael linked list.
   All buckets share one arena, one reclamation-scheme instance and one tail
   sentinel, so retired nodes from every bucket flow through the same limbo
   lists/hazard-pointer machinery — exactly the configuration the original
   paper benchmarks.

   Keys are non-negative integers; the bucket index is a Fibonacci hash of
   the key, so adjacent keys spread across buckets. *)

module Make (R : Qs_intf.Runtime_intf.RUNTIME) = struct
  module L = Linked_list.Make (R)

  type node = L.node

  (* [shift] is the precomputed Fibonacci-hash shift for power-of-two
     bucket counts (take the top bits, where the multiplicative hash mixes),
     or -1 for the [mod] fallback on other sizes. *)
  type t = { list : L.t; buckets : node array; shift : int }

  type ctx = { table : t; lctx : L.ctx }

  let default_buckets = 256

  let hp_per_process = L.hp_per_process

  let create_sized ~n_buckets (cfg : Set_intf.config) =
    if n_buckets <= 0 then invalid_arg "Hashtable.create_sized: n_buckets";
    let list = L.create cfg in
    let shift =
      match Qs_util.Fib_hash.shift_for n_buckets with
      | Some s -> s
      | None -> -1
    in
    { list; buckets = Array.init n_buckets (fun _ -> L.new_bucket list); shift }

  let create cfg = create_sized ~n_buckets:default_buckets cfg

  let register t ~pid = { table = t; lctx = L.register t.list ~pid }

  let bucket_index t key =
    let h = Qs_util.Fib_hash.hash key in
    if t.shift >= 0 then h lsr t.shift else h mod Array.length t.buckets

  let bucket_of t key = t.buckets.(bucket_index t key)

  let search ctx key = L.search_in ctx.lctx ~bucket:(bucket_of ctx.table key) key

  let search_ro ctx key =
    L.search_ro_in ctx.lctx ~bucket:(bucket_of ctx.table key) key

  let insert ctx key = L.insert_in ctx.lctx ~bucket:(bucket_of ctx.table key) key
  let delete ctx key = L.delete_in ctx.lctx ~bucket:(bucket_of ctx.table key) key

  (* Sequential-context helpers. Contents are reported in sorted order so
     the result is comparable with the other set implementations. *)

  let to_list ctx =
    Array.fold_left
      (fun acc bucket -> List.rev_append (L.to_list_in ctx.lctx ~bucket) acc)
      [] ctx.table.buckets
    |> List.sort compare

  let size ctx = List.length (to_list ctx)

  (* Structural invariants (sequential context): every bucket chain is
     well-formed and only holds keys that hash to it. *)
  let validate ctx =
    Array.iteri
      (fun i bucket ->
        L.validate_in ctx.lctx ~bucket;
        List.iter
          (fun key ->
            if bucket_of ctx.table key != bucket then
              failwith (Printf.sprintf "hashtable: key %d in wrong bucket %d" key i))
          (L.to_list_in ctx.lctx ~bucket))
      ctx.table.buckets

  let heartbeat ctx = L.heartbeat ctx.lctx

  let unregister ctx = L.unregister ctx.lctx

  let flush ctx = L.flush ctx.lctx

  let report t = L.report t.list
  let retired_count t = L.retired_count t.list
  let violations t = L.violations t.list
  let outstanding t = L.outstanding t.list
  let nodes_per_key = L.nodes_per_key
  let scheme_name t = L.scheme_name t.list
end
