(* Bridges the first-class SMR modules of {!Qs_smr.Scheme.Dispatch} into
   plain records of closures, so the data structures can hold "whichever
   scheme the experiment picked" without threading module types through
   their own signatures. *)

module Make (R : Qs_intf.Runtime_intf.RUNTIME) (N : Qs_smr.Smr_intf.NODE) = struct
  type handle = {
    manage_state : unit -> unit;
    assign_hp : slot:int -> N.t -> unit;
    clear_hps : unit -> unit;
    retire : N.t -> unit;
    unregister : unit -> unit;
        (* dynamic membership: retire the pid slot, donating limbo lists
           to the scheme's orphan pool (see {!Qs_smr.Smr_intf.S.unregister}) *)
    flush : unit -> unit;
  }

  type ops = {
    scheme_name : string;
    register : pid:int -> handle;
    retired_count : unit -> int;
    stats : unit -> Qs_smr.Smr_intf.stats;
  }

  module D = Qs_smr.Scheme.Dispatch (R) (N)

  let make ?free_bulk kind (cfg : Qs_smr.Smr_intf.config) ~dummy ~free =
    let (module S) = D.make kind in
    let t = S.create ?free_bulk cfg ~dummy ~free in
    { scheme_name = S.name;
      register =
        (fun ~pid ->
          let h = S.register t ~pid in
          { manage_state = (fun () -> S.manage_state h);
            assign_hp = (fun ~slot n -> S.assign_hp h ~slot n);
            clear_hps = (fun () -> S.clear_hps h);
            retire = (fun n -> S.retire h n);
            unregister = (fun () -> S.unregister h);
            flush = (fun () -> S.flush h) });
      retired_count = (fun () -> S.retired_count t);
      stats = (fun () -> S.stats t) }
end
