(** Lock-free external binary search tree (Ellen et al.-style flag/mark
    cooperation) — the third of the paper's evaluation structures, with
    K = 6 hazard pointers per process as in the paper's
    (Natarajan-Mittal) tree.

    Keys live in leaves; internal nodes route. Deletion removes a leaf and
    its internal parent (m = 2 removals per operation — relevant to
    Property 4's legal C). Removed internal nodes have their child edges
    poisoned before being retired, so traversal validations remain sound
    under reclamation. Real keys must be at most [max_real_key]. *)

module Make (R : Qs_intf.Runtime_intf.RUNTIME) : sig
  type t
  type ctx
  type node

  val max_real_key : int

  val hp_per_process : int
  (** K = 6: three rotating traversal slots + one helper slot + slack. *)

  val nodes_per_key : int
  (** 2 — each present key owns a leaf and an internal router. *)

  val create : Set_intf.config -> t
  val register : t -> pid:int -> ctx

  val search : ctx -> int -> bool

  val insert : ctx -> int -> bool
  (** Raises [Invalid_argument] for keys above [max_real_key]. *)

  val delete : ctx -> int -> bool

  val to_list : ctx -> int list
  val size : ctx -> int
  val unregister : ctx -> unit
  (** Leave the computation: retire the SMR pid slot, donating its limbo
      lists to the scheme's orphan pool; the slot may be re-registered
      later (worker churn). Process context, between operations. *)

  val flush : ctx -> unit
  val report : t -> Set_intf.report
  val retired_count : t -> int
  val violations : t -> int
  val outstanding : t -> int
  val scheme_name : t -> string

  val validate : ctx -> unit
  (** Check structural invariants; raises [Failure] on corruption.
      Sequential context only. *)
end
