(** Michael's lock-free hash table (SPAA 2002, the paper's reference [24]):
    a fixed array of buckets, each an independent {!Linked_list} sharing
    one arena and one reclamation-scheme instance. Keys must be
    non-negative. *)

module Make (R : Qs_intf.Runtime_intf.RUNTIME) : sig
  type t
  type ctx
  type node

  val default_buckets : int
  val hp_per_process : int
  val nodes_per_key : int

  val create : Set_intf.config -> t
  (** [default_buckets] buckets. *)

  val create_sized : n_buckets:int -> Set_intf.config -> t

  val register : t -> pid:int -> ctx

  val bucket_index : t -> int -> int
  (** The bucket a key routes to — a Fibonacci hash taking the {e high}
      bits of the multiplicative product (power-of-two bucket counts;
      [mod] fallback otherwise). Exposed for distribution tests. *)

  val search : ctx -> int -> bool
  val insert : ctx -> int -> bool
  val delete : ctx -> int -> bool

  val search_ro : ctx -> int -> bool
  (** Same answer as [search] but via the read-only, allocation-free
      bucket probe ({!Linked_list.S.search_ro_in}) — the KV service's
      get path, pinned at zero heap words per request. *)

  val to_list : ctx -> int list
  (** Sorted, for comparability with the other set implementations. *)

  val size : ctx -> int
  val heartbeat : ctx -> unit
  (** Scheme bookkeeping (quiescence announcement, epoch advance) without
      performing an operation — composite services call this on idle
      structures so epoch-based schemes never see a registered-but-silent
      process. Process context, between operations. *)

  val unregister : ctx -> unit
  (** Leave the computation: retire the SMR pid slot, donating its limbo
      lists to the scheme's orphan pool; the slot may be re-registered
      later (worker churn). Process context, between operations. *)

  val flush : ctx -> unit
  val report : t -> Set_intf.report
  val retired_count : t -> int
  val violations : t -> int
  val outstanding : t -> int
  val scheme_name : t -> string

  val validate : ctx -> unit
  (** Check structural invariants; raises [Failure] on corruption.
      Sequential context only. *)
end
