(** Michael's lock-free hash table (SPAA 2002, the paper's reference [24]):
    a fixed array of buckets, each an independent {!Linked_list} sharing
    one arena and one reclamation-scheme instance. Keys must be
    non-negative. *)

module Make (R : Qs_intf.Runtime_intf.RUNTIME) : sig
  type t
  type ctx
  type node

  val default_buckets : int
  val hp_per_process : int
  val nodes_per_key : int

  val create : Set_intf.config -> t
  (** [default_buckets] buckets. *)

  val create_sized : n_buckets:int -> Set_intf.config -> t

  val register : t -> pid:int -> ctx

  val search : ctx -> int -> bool
  val insert : ctx -> int -> bool
  val delete : ctx -> int -> bool

  val to_list : ctx -> int list
  (** Sorted, for comparability with the other set implementations. *)

  val size : ctx -> int
  val unregister : ctx -> unit
  (** Leave the computation: retire the SMR pid slot, donating its limbo
      lists to the scheme's orphan pool; the slot may be re-registered
      later (worker churn). Process context, between operations. *)

  val flush : ctx -> unit
  val report : t -> Set_intf.report
  val retired_count : t -> int
  val violations : t -> int
  val outstanding : t -> int
  val scheme_name : t -> string

  val validate : ctx -> unit
  (** Check structural invariants; raises [Failure] on corruption.
      Sequential context only. *)
end
