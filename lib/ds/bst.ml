(* Lock-free external binary search tree (Ellen et al.-style flag/mark
   cooperation; the paper evaluates an external BST with 6 hazard pointers
   per process — this implementation also uses K = 6).

   Shape: keys live in leaves; internal nodes are binary routers. Two
   sentinel keys INF1 < INF2 above every real key guarantee that every real
   leaf has an internal parent and grandparent.

   Coordination: each internal node carries an update word [upd]:
   - [Clean tok] — quiescent. Every completed operation installs a FRESH
     token, so update words are monotone: a CAS whose expected value is a
     stale witness can never succeed (this is Ellen's (state, info) pair).
   - [IFlag op] — an insert owns the node's child edge;
   - [DFlag op] — a delete owns the grandparent;
   - [Mark op] — final: the node is being removed.

   insert(k): find leaf l under parent p; IFlag p; splice a fresh internal
   (children: l and the new leaf); unflag.
   delete(k): find leaf l, parent p, grandparent gp; DFlag gp; Mark p;
   POISON p's child edges (set their marked bit); swing gp's edge to l's
   sibling; unflag gp. The winner of the DFlag CAS retires p and l (m = 2).
   Any process meeting a flag/mark helps it to completion first.

   Reclamation discipline (what this paper cares about):
   - links, update words and descriptors are heap objects CASed by physical
     identity — stale CASes fail, so there is no ABA anywhere;
   - traversals protect (gp, p, l) in rotating hazard slots 0-2 and
     re-validate the parent edge after each protection, restarting if the
     edge changed or is poisoned; edges are poisoned strictly before the
     removed nodes are retired, so a validated protection precedes the
     retire point (Condition 1);
   - a helper protects a descriptor's parent node in slot 3 and re-validates
     that the flag is still installed — a node cannot be retired while its
     removal descriptor is still pending. *)

module Make (R : Qs_intf.Runtime_intf.RUNTIME) = struct
  let inf1 = max_int - 1
  let inf2 = max_int
  let max_real_key = inf1 - 1

  type node = {
    uid : int; (* stable identity for the SMR membership set *)
    mutable key : int;
    mutable is_leaf : bool;
    left : link R.atomic;
    right : link R.atomic;
    upd : ustate R.atomic;
    mutable state : Qs_arena.Node_state.t;
    mutable birth : int;
  }

  and link = Nil | Child of { dest : node; marked : bool }

  and ustate =
    | Clean of unit ref (* fresh token per completed operation *)
    | IFlag of iinfo
    | DFlag of dinfo
    | Mark of dinfo

  and iinfo = {
    ip : node;
    il_link : link; (* physical witness: ip's edge to the replaced leaf *)
    i_left_side : bool;
    new_internal : node;
    iflag : ustate; (* the unique [IFlag op] installed in ip.upd *)
  }

  and dinfo = {
    dgp : node;
    dp : node;
    dl : node;
    dpu : ustate; (* p's update witness from the search *)
    dp_link : link; (* physical witness: gp's edge to p *)
    d_left_side : bool; (* which gp edge leads to p *)
    dflag : ustate;
    dmark : ustate;
  }

  let clean () = Clean (ref ())

  let uid_counter = Atomic.make 0
  let fresh_uid () = Atomic.fetch_and_add uid_counter 1

  module Node_impl = struct
    type t = node

    let create () =
      { uid = fresh_uid ();
        key = 0;
        is_leaf = true;
        left = R.atomic Nil;
        right = R.atomic Nil;
        upd = R.atomic (clean ());
        state = Qs_arena.Node_state.Free;
        birth = 0 }

    let get_state n = n.state
    let set_state n s = n.state <- s
    let bump_birth n = n.birth <- n.birth + 1
  end

  module Arena = Qs_arena.Arena.Make (Node_impl)

  module Glue = Smr_glue.Make (R) (struct
    type t = node

    let id n = n.uid
  end)

  type t = {
    root : node;
    smr : Glue.ops;
    arena : Arena.t;
    debug_checks : bool;
  }

  type ctx = { set : t; smr_h : Glue.handle; arena_h : Arena.handle }

  let hp_per_process = 6

  let mk_leaf key =
    { uid = fresh_uid ();
      key;
      is_leaf = true;
      left = R.atomic Nil;
      right = R.atomic Nil;
      upd = R.atomic (clean ());
      state = Qs_arena.Node_state.Reachable;
      birth = 0 }

  let create (cfg : Set_intf.config) =
    let smr_cfg = { cfg.smr with hp_per_process; removes_per_op_max = 2 } in
    let root =
      { uid = fresh_uid ();
        key = inf2;
        is_leaf = false;
        left = R.atomic (Child { dest = mk_leaf inf1; marked = false });
        right = R.atomic (Child { dest = mk_leaf inf2; marked = false });
        upd = R.atomic (clean ());
        state = Qs_arena.Node_state.Reachable;
        birth = 0 }
    in
    let arena =
      Arena.create ?capacity:cfg.capacity ~n_processes:smr_cfg.n_processes ()
    in
    let arena_handles =
      Array.init smr_cfg.n_processes (fun pid -> Arena.register arena ~pid)
    in
    let free n = Arena.free arena_handles.(R.self ()) n in
    (* bulk-return path for whole limbo bags: one outstanding-counter
       update per bag instead of one per node *)
    let free_bulk data count =
      Arena.free_many arena_handles.(R.self ()) data count
    in
    let smr = Glue.make ~free_bulk cfg.scheme smr_cfg ~dummy:root ~free in
    { root; smr; arena; debug_checks = cfg.debug_checks }

  let register t ~pid =
    { set = t;
      smr_h = t.smr.register ~pid;
      arena_h = Arena.register t.arena ~pid }

  let touch ctx n = if ctx.set.debug_checks then Arena.touch ctx.arena_h n

  type found = {
    gp : node;
    gpu : ustate;
    p : node;
    pu : ustate;
    p_link : link; (* gp's edge to p *)
    l_link : link; (* p's edge to l *)
    l : node;
    p_left_side : bool; (* which gp edge leads to p *)
  }

  (* --- helping (part 1: what traversals need) --------------------------- *)

  let rec poison_edge cell =
    match R.get cell with
    | Child { dest; marked = false } as c ->
      if not (R.cas cell c (Child { dest; marked = true })) then poison_edge cell
    | Nil | Child { marked = true; _ } -> ()

  let dest_of = function Child c -> c.dest | Nil -> assert false

  (* Complete a delete whose parent is already marked. Mark is final and
     the update word monotone, so dp's edges can no longer change except for
     the poisoning below: the sibling read is stable. Poisoning precedes the
     grandparent swing (and hence the retire point), so traversals that
     validated an edge into dp/dl did so before the nodes could be freed. *)
  let help_marked (op : dinfo) =
    poison_edge op.dp.left;
    poison_edge op.dp.right;
    let left = R.get op.dp.left and right = R.get op.dp.right in
    let sibling = if dest_of left == op.dl then dest_of right else dest_of left in
    let gp_edge = if op.d_left_side then op.dgp.left else op.dgp.right in
    ignore (R.cas gp_edge op.dp_link (Child { dest = sibling; marked = false }));
    ignore (R.cas op.dgp.upd op.dflag (clean ()))

  (* Traverse to the leaf position for [key], protecting (gp, p, l) in
     rotating hazard slots 0-2, validating each edge after protection. *)
  let rec locate ctx key : found =
    let root = ctx.set.root in
    (* [p_link]/[p_left] describe the gp->p edge; [l_link]/[l_left] the
       p->l edge. On descent the latter pair becomes the former. *)
    let rec go gp gpu p pu p_link p_left l_link l_left l sgp sp sl =
      ignore l_left;
      if l.is_leaf then { gp; gpu; p; pu; p_link; l_link; l; p_left_side = p_left }
      else begin
        let gp' = p and gpu' = pu and p' = l in
        let pu' = R.get p'.upd in
        touch ctx p';
        let left_side = key < p'.key in
        let edge = if left_side then p'.left else p'.right in
        let edge_link = R.get edge in
        match edge_link with
        | Nil -> locate ctx key (* transient; restart *)
        | Child { dest = l'; marked } ->
          let sl' = sgp in
          ctx.smr_h.assign_hp ~slot:sl' l';
          if marked then begin
            (* p' removed: edges poisoned. Normally the mark's owner (or a
               helper that found the DFlag/Mark) swings the grandparent
               edge promptly and the restart routes around p' — but a
               neutralized owner abandons the removal between poisoning
               and the swing, and a traversal that merely restarts then
               livelocks. Complete the removal ourselves: marking precedes
               poisoning and Mark is final, so a pass that reaches the
               poisoned edge re-reads p'.upd as the Mark (p' and its
               parent — the descriptor's dgp — are the protected p'/gp' of
               this frame, exactly what help_marked needs). *)
            (match R.get p'.upd with Mark o -> help_marked o | _ -> ());
            locate ctx key
          end
          else if R.get edge != edge_link then locate ctx key
          else begin
            touch ctx l';
            go gp' gpu' p' pu' l_link l_left edge_link left_side l' sp sl sl'
          end
      end
    in
    let pu0 = R.get root.upd in
    go root pu0 root pu0 Nil true Nil true root 0 1 2

  (* --- helping (part 2) ------------------------------------------------- *)

  (* Complete an insert: splice the new internal in, unflag. Idempotent —
     stale CASes fail on physical witnesses. *)
  let help_insert (op : iinfo) =
    let edge = if op.i_left_side then op.ip.left else op.ip.right in
    ignore (R.cas edge op.il_link (Child { dest = op.new_internal; marked = false }));
    ignore (R.cas op.ip.upd op.iflag (clean ()))

  (* Returns whether the delete completed (parent marked) or aborted.
     Caller must have op.dp and op.dgp protected. *)
  let help_delete (op : dinfo) =
    let marked_now =
      R.cas op.dp.upd op.dpu op.dmark
      || (match R.get op.dp.upd with
         | Mark o -> o == op
         | Clean _ | IFlag _ | DFlag _ -> false)
    in
    if marked_now then begin
      help_marked op;
      true
    end
    else begin
      (* The mark lost; update words are monotone so it can never succeed
         later — abort by unflagging the grandparent. *)
      ignore (R.cas op.dgp.upd op.dflag (clean ()));
      false
    end

  (* Help the operation found installed on a node of the caller's (protected)
     search path. *)
  let help ctx (u : ustate) =
    match u with
    | Clean _ -> ()
    | IFlag op ->
      (* op.ip is the node the flag was found on — caller-protected. *)
      (match R.get op.ip.upd with
      | IFlag o when o == op -> help_insert op
      | _ -> ())
    | Mark op ->
      (* Found on op.dp (caller's p, protected); op.dgp is p's immutable
         parent — the caller's gp, also protected. *)
      help_marked op
    | DFlag op ->
      (* Found on op.dgp (caller-protected); op.dp is some child of it, not
         necessarily on the caller's path: protect and re-validate. *)
      ctx.smr_h.assign_hp ~slot:3 op.dp;
      (match R.get op.dgp.upd with
      | DFlag o when o == op -> ignore (help_delete op)
      | _ -> ())

  (* --- public operations ------------------------------------------------ *)

  let search ctx key =
    ctx.smr_h.manage_state ();
    let s = locate ctx key in
    touch ctx s.l;
    let res = s.l.key = key in
    ctx.smr_h.clear_hps ();
    res

  let alloc_leaf ctx key =
    let n = Arena.alloc ctx.arena_h in
    n.key <- key;
    n.is_leaf <- true;
    R.set n.left Nil;
    R.set n.right Nil;
    R.set n.upd (clean ());
    n

  let insert ctx key =
    if key > max_real_key then invalid_arg "Bst.insert: key too large";
    ctx.smr_h.manage_state ();
    (* The not-yet-published pair lives in [fresh] (cleared the moment the
       IFlag CAS wins — from then on helpers may splice the nodes in) so a
       neutralization signal aborting this operation returns both to the
       arena instead of leaking them; simulator delivery replaces a pending
       effect, so it cannot land between the CAS executing and the
       meta-level clear. *)
    let fresh = ref None in
    let rec attempt () =
      let s = locate ctx key in
      touch ctx s.l;
      if s.l.key = key then begin
        (match !fresh with
        | Some (nleaf, nint) ->
          Arena.free ctx.arena_h nleaf;
          Arena.free ctx.arena_h nint
        | None -> ());
        fresh := None;
        ctx.smr_h.clear_hps ();
        false
      end
      else begin
        match s.pu with
        | Clean _ ->
          let nleaf, nint =
            match !fresh with
            | Some pair -> pair
            | None ->
              let pair = (alloc_leaf ctx key, alloc_leaf ctx 0) in
              fresh := Some pair;
              pair
          in
          nint.key <- max key s.l.key;
          nint.is_leaf <- false;
          if key < s.l.key then begin
            R.set nint.left (Child { dest = nleaf; marked = false });
            R.set nint.right (Child { dest = s.l; marked = false })
          end
          else begin
            R.set nint.left (Child { dest = s.l; marked = false });
            R.set nint.right (Child { dest = nleaf; marked = false })
          end;
          R.set nint.upd (clean ());
          let rec op =
            { ip = s.p;
              il_link = s.l_link;
              i_left_side = key < s.p.key;
              new_internal = nint;
              iflag = IFlag op }
          in
          if R.cas s.p.upd s.pu op.iflag then begin
            fresh := None;
            help_insert op;
            nleaf.state <- Qs_arena.Node_state.Reachable;
            nint.state <- Qs_arena.Node_state.Reachable;
            ctx.smr_h.clear_hps ();
            true
          end
          else attempt ()
        | u ->
          help ctx u;
          attempt ()
      end
    in
    try attempt ()
    with Qs_intf.Runtime_intf.Neutralized as e ->
      (match !fresh with
      | Some (nleaf, nint) ->
        Arena.free ctx.arena_h nleaf;
        Arena.free ctx.arena_h nint
      | None -> ());
      raise e

  let delete ctx key =
    ctx.smr_h.manage_state ();
    let rec attempt () =
      let s = locate ctx key in
      touch ctx s.l;
      if s.l.key <> key then begin
        ctx.smr_h.clear_hps ();
        false
      end
      else begin
        match s.gpu with
        | Clean _ -> (
          match s.pu with
          | Clean _ ->
            let rec op =
              { dgp = s.gp;
                dp = s.p;
                dl = s.l;
                dpu = s.pu;
                dp_link = s.p_link;
                d_left_side = s.p_left_side;
                dflag = DFlag op;
                dmark = Mark op }
            in
            if R.cas s.gp.upd s.gpu op.dflag then begin
              if help_delete op then begin
                s.p.state <- Qs_arena.Node_state.Removed;
                s.l.state <- Qs_arena.Node_state.Removed;
                (* This delete owns BOTH removals (m = 2); bank the second
                   even if a neutralization signal aborts between the two
                   retire calls. DEBRA+'s retire only raises with its node
                   already banked, so "retire s.p raised" never needs a
                   compensating retire of s.p — only an s.l whose retire
                   was never entered is at risk, and retiring it from the
                   handler is safe in every scheme (a never-entered retire
                   banked nothing). *)
                let entered_l = ref false in
                (try
                   ctx.smr_h.retire s.p;
                   entered_l := true;
                   ctx.smr_h.retire s.l
                 with Qs_intf.Runtime_intf.Neutralized as e ->
                   if not !entered_l then (
                     try ctx.smr_h.retire s.l
                     with Qs_intf.Runtime_intf.Neutralized -> ());
                   raise e);
                ctx.smr_h.clear_hps ();
                true
              end
              else attempt ()
            end
            else begin
              help ctx (R.get s.gp.upd);
              attempt ()
            end
          | pu ->
            help ctx pu;
            attempt ())
        | gpu ->
          help ctx gpu;
          attempt ()
      end
    in
    attempt ()

  (* Sequential-context helpers. *)

  let to_list ctx =
    let rec go n acc =
      if n.is_leaf then if n.key <= max_real_key then n.key :: acc else acc
      else
        match (R.get n.left, R.get n.right) with
        | Child l, Child r -> go l.dest (go r.dest acc)
        | _ -> acc
    in
    go ctx.set.root []

  let size ctx = List.length (to_list ctx)

  (* Structural invariants (sequential context): the tree is a well-formed
     external BST — every internal node has two children, left-subtree keys
     are strictly below the router key, right-subtree keys at or above, and
     leaf keys are unique. *)
  let validate ctx =
    (* inclusive bounds: a router k sends keys < k left and keys >= k right *)
    let rec go n lo hi =
      if n.is_leaf then begin
        if n.key < lo || n.key > hi then
          failwith
            (Printf.sprintf "bst: leaf %d outside [%d, %d]" n.key lo hi)
      end
      else begin
        match (R.get n.left, R.get n.right) with
        | Child l, Child r ->
          go l.dest lo (n.key - 1);
          go r.dest n.key hi
        | _ -> failwith "bst: internal node missing a child"
      end
    in
    go ctx.set.root min_int max_int;
    let keys = to_list ctx in
    let sorted = List.sort_uniq compare keys in
    if List.length sorted <> List.length keys then failwith "bst: duplicate keys";
    if sorted <> keys then failwith "bst: in-order traversal not sorted"

  let unregister ctx = ctx.smr_h.unregister ()

  let flush ctx = ctx.smr_h.flush ()

  let report t : Set_intf.report =
    { smr = t.smr.stats ();
      allocations = Arena.allocations t.arena;
      frees = Arena.frees t.arena;
      outstanding = Arena.outstanding t.arena;
      fresh_nodes = Arena.fresh_nodes t.arena;
      violations = Arena.violations t.arena;
      double_frees = Arena.double_frees t.arena }

  let retired_count t = t.smr.retired_count ()
  let violations t = Arena.violations t.arena
  let outstanding t = Arena.outstanding t.arena
  let nodes_per_key = 2
  let scheme_name t = t.smr.scheme_name
end
