(* Lock-free skip-list set (Fraser-style, as in ASCYLIB, which the paper
   uses; the paper notes it needs up to 35 hazard pointers per process —
   two per level, which is what this implementation uses).

   Structure: full-height head/tail sentinels; each node owns an array of
   per-level links; level-0 membership is authoritative. Links are immutable
   [Ptr] values compared by physical identity in CAS, so a link object can
   never be reused — stale CASes fail rather than resurrect unlinked nodes.

   Deletion marks the victim's links from the top level down to level 0;
   the process that wins the level-0 mark owns the removal. Physical
   unlinking is done cooperatively by [find] passes (any traversal snips
   marked links it meets). The owner then repeats [find] until a full pass
   no longer encounters the victim at any level — only then is the node
   unreachable and retired (rule 3). This "sweep until unseen" is what makes
   the retire point sound in the presence of in-flight inserts that may
   still hold pre-marking references to the victim.

   Hazard-pointer discipline: slot [2*level] protects the predecessor and
   slot [2*level + 1] the current node at that level; descending a level
   re-protects the carried-over predecessor before it is dereferenced, so
   protection is continuous (Condition 1). *)

module Make (R : Qs_intf.Runtime_intf.RUNTIME) = struct
  let max_level = 15 (* enough for the paper's 20k-element skip list *)

  type node = {
    uid : int; (* stable identity for the SMR membership set *)
    mutable key : int;
    mutable top : int; (* index of this node's highest level *)
    next : link R.atomic array; (* length top+1; sentinels are full height *)
    mutable state : Qs_arena.Node_state.t;
    mutable birth : int;
  }

  and link = Null | Ptr of { dest : node; marked : bool }

  let uid_counter = Atomic.make 0
  let fresh_uid () = Atomic.fetch_and_add uid_counter 1

  module Node_impl = struct
    type t = node

    (* Nodes are allocated at full height and reused at any level: a
       recycled node just uses a prefix of its link array. *)
    let create () =
      { uid = fresh_uid ();
        key = 0;
        top = 0;
        next = Array.init (max_level + 1) (fun _ -> R.atomic Null);
        state = Qs_arena.Node_state.Free;
        birth = 0 }

    let get_state n = n.state
    let set_state n s = n.state <- s
    let bump_birth n = n.birth <- n.birth + 1
  end

  module Arena = Qs_arena.Arena.Make (Node_impl)

  module Glue = Smr_glue.Make (R) (struct
    type t = node

    let id n = n.uid
  end)

  type t = {
    head : node;
    tail : node;
    smr : Glue.ops;
    arena : Arena.t;
    debug_checks : bool;
  }

  type ctx = {
    set : t;
    smr_h : Glue.handle;
    arena_h : Arena.handle;
    prng : Qs_util.Prng.t; (* for level selection *)
    preds : node array;
    succs : node array;
    pred_links : link array; (* physical link values, the CAS witnesses *)
  }

  let hp_per_process = 2 * (max_level + 1)

  let create (cfg : Set_intf.config) =
    let smr_cfg =
      { cfg.smr with hp_per_process; removes_per_op_max = 1 }
    in
    let tail =
      { uid = fresh_uid ();
        key = max_int;
        top = max_level;
        next = Array.init (max_level + 1) (fun _ -> R.atomic Null);
        state = Qs_arena.Node_state.Reachable;
        birth = 0 }
    in
    let head =
      { uid = fresh_uid ();
        key = min_int;
        top = max_level;
        next =
          Array.init (max_level + 1) (fun _ ->
              R.atomic (Ptr { dest = tail; marked = false }));
        state = Qs_arena.Node_state.Reachable;
        birth = 0 }
    in
    let arena =
      Arena.create ?capacity:cfg.capacity ~n_processes:smr_cfg.n_processes ()
    in
    let arena_handles =
      Array.init smr_cfg.n_processes (fun pid -> Arena.register arena ~pid)
    in
    let free n = Arena.free arena_handles.(R.self ()) n in
    (* bulk-return path for whole limbo bags: one outstanding-counter
       update per bag instead of one per node *)
    let free_bulk data count =
      Arena.free_many arena_handles.(R.self ()) data count
    in
    let smr = Glue.make ~free_bulk cfg.scheme smr_cfg ~dummy:tail ~free in
    { head; tail; smr; arena; debug_checks = cfg.debug_checks }

  let register t ~pid =
    { set = t;
      smr_h = t.smr.register ~pid;
      arena_h = Arena.register t.arena ~pid;
      prng = Qs_util.Prng.create ~seed:(31 + (977 * pid));
      preds = Array.make (max_level + 1) t.head;
      succs = Array.make (max_level + 1) t.tail;
      pred_links = Array.make (max_level + 1) Null }

  let touch ctx n = if ctx.set.debug_checks then Arena.touch ctx.arena_h n

  let random_level ctx =
    let rec go lvl =
      if lvl < max_level && Qs_util.Prng.bool ctx.prng then go (lvl + 1) else lvl
    in
    go 0

  (* One full traversal pass. Fills ctx.preds/succs/pred_links for levels
     [0, max_level]; snips marked links it encounters; returns whether
     [watch] (if any) was encountered at any level — still (partially)
     reachable. Restarts internally on CAS interference. *)
  let rec find ctx ?watch key =
    let saw = ref false in
    let watched n = match watch with Some w -> w == n | None -> false in
    let t = ctx.set in
    let rec level_walk pred level =
      ctx.smr_h.assign_hp ~slot:(2 * level) pred;
      let pred_link = R.get pred.next.(level) in
      touch ctx pred;
      match pred_link with
      | Null | Ptr { marked = true; _ } ->
        (* pred is being removed at this level: restart from the head *)
        None
      | Ptr { dest = curr; marked = false } ->
        ctx.smr_h.assign_hp ~slot:((2 * level) + 1) curr;
        if R.get pred.next.(level) != pred_link then None
        else begin
          touch ctx curr;
          if watched curr then saw := true;
          let curr_link = R.get curr.next.(level) in
          touch ctx curr;
          match curr_link with
          | Ptr { dest = succ; marked = true } ->
            (* snip the marked node out of this level *)
            if
              R.cas pred.next.(level) pred_link
                (Ptr { dest = succ; marked = false })
            then level_walk pred level
            else None
          | Null | Ptr { marked = false; _ } ->
            if curr.key < key then level_walk curr level
            else begin
              ctx.preds.(level) <- pred;
              ctx.succs.(level) <- curr;
              ctx.pred_links.(level) <- pred_link;
              if level = 0 then Some ()
              else
                (* descend: pred stays protected by slot 2*level until
                   level_walk for level-1 re-protects it at slot 2*(level-1) *)
                level_walk pred (level - 1)
            end
        end
    in
    match level_walk t.head max_level with
    | Some () -> !saw
    | None -> find ctx ?watch key

  let found ctx key = ctx.succs.(0).key = key

  let search ctx key =
    ctx.smr_h.manage_state ();
    ignore (find ctx key);
    let res = found ctx key in
    ctx.smr_h.clear_hps ();
    res

  (* Link the new node at levels 1..top; abandoned as soon as the node is
     observed marked (a concurrent delete owns it from then on). Only the
     inserter writes a node's upper links and only deleters mark them, so a
     failed CAS on [n.next] means "being deleted" — stop. *)
  let rec link_upper ctx n level =
    if level <= n.top then begin
      let succ = ctx.succs.(level) in
      let cur = R.get n.next.(level) in
      match cur with
      | Ptr { marked = true; _ } -> () (* being deleted: stop linking *)
      | Null | Ptr { marked = false; _ } ->
        if not (R.cas n.next.(level) cur (Ptr { dest = succ; marked = false }))
        then ()
        else if
          R.cas ctx.preds.(level).next.(level) ctx.pred_links.(level)
            (Ptr { dest = n; marked = false })
        then link_upper ctx n (level + 1)
        else begin
          (* interference: recompute witnesses and retry this level, unless
             n was deleted in the meantime *)
          ignore (find ctx n.key);
          match R.get n.next.(0) with
          | Ptr { marked = true; _ } -> ()
          | Null | Ptr { marked = false; _ } -> link_upper ctx n level
        end
    end

  let insert ctx key =
    ctx.smr_h.manage_state ();
    (* The not-yet-published node lives in [fresh] (cleared the moment the
       bottom-level CAS wins) so a neutralization signal aborting this
       operation returns it to the arena instead of leaking it; simulator
       delivery replaces a pending effect, so it cannot land between the
       CAS executing and the meta-level clear. *)
    let fresh = ref None in
    let rec attempt () =
      ignore (find ctx key);
      if found ctx key then begin
        (match !fresh with Some n -> Arena.free ctx.arena_h n | None -> ());
        fresh := None;
        ctx.smr_h.clear_hps ();
        false
      end
      else begin
        let n =
          match !fresh with
          | Some n -> n
          | None ->
            let n = Arena.alloc ctx.arena_h in
            n.key <- key;
            n.top <- random_level ctx;
            fresh := Some n;
            n
        in
        (* prepare all levels before the bottom CAS publishes the node *)
        for i = 0 to n.top do
          R.set n.next.(i) (Ptr { dest = ctx.succs.(i); marked = false })
        done;
        if
          R.cas ctx.preds.(0).next.(0) ctx.pred_links.(0)
            (Ptr { dest = n; marked = false })
        then begin
          fresh := None;
          n.state <- Qs_arena.Node_state.Reachable;
          link_upper ctx n 1;
          ctx.smr_h.clear_hps ();
          true
        end
        else attempt ()
      end
    in
    try attempt ()
    with Qs_intf.Runtime_intf.Neutralized as e ->
      (match !fresh with
      | Some n -> Arena.free ctx.arena_h n
      | None -> ());
      raise e

  let delete ctx key =
    ctx.smr_h.manage_state ();
    let rec attempt () =
      ignore (find ctx key);
      if not (found ctx key) then begin
        ctx.smr_h.clear_hps ();
        false
      end
      else begin
        let n = ctx.succs.(0) in
        (* mark from the top level down to 1 *)
        for level = n.top downto 1 do
          let rec mark () =
            match R.get n.next.(level) with
            | Ptr { dest; marked = false } as l ->
              if not (R.cas n.next.(level) l (Ptr { dest; marked = true }))
              then mark ()
            | Null | Ptr { marked = true; _ } -> ()
          in
          mark ()
        done;
        (* level 0 decides ownership *)
        let rec mark_bottom () =
          match R.get n.next.(0) with
          | Ptr { dest; marked = false } as l ->
            if R.cas n.next.(0) l (Ptr { dest; marked = true }) then `Won
            else mark_bottom ()
          | Null | Ptr { marked = true; _ } -> `Lost
        in
        match mark_bottom () with
        | `Lost -> attempt () (* another deleter owns it; settle the outcome *)
        | `Won ->
          n.state <- Qs_arena.Node_state.Removed;
          (* sweep until a full pass no longer meets the node anywhere *)
          while find ctx ~watch:n key do
            ()
          done;
          ctx.smr_h.retire n;
          ctx.smr_h.clear_hps ();
          true
      end
    in
    attempt ()

  (* Count the keys present in [lo, hi] — the KV service's range scan.
     Positions with a full [find] pass (which leaves the first candidate
     protected at slot 1), then walks the authoritative level-0 chain,
     alternating the two bottom hazard-pointer slots between the node in
     hand and its successor: the successor is published, then the link is
     re-read to validate it still hangs off the protected node (Condition
     1), and the whole scan restarts on interference. Marked nodes are
     traversed but not counted. A scan pins nodes for the whole walk, so
     it holds hazard pointers far longer than a point operation — exactly
     the pressure the service workload wants to put on reclamation. *)
  let range_count ctx ~lo ~hi =
    if hi < lo then invalid_arg "Skiplist.range_count: hi < lo";
    ctx.smr_h.manage_state ();
    let t = ctx.set in
    let rec scan () =
      ignore (find ctx lo);
      (* succs.(0): first node with key >= lo, protected at slot 1 *)
      let rec walk count slot node =
        if node == t.tail || node.key > hi then Some count
        else begin
          let link = R.get node.next.(0) in
          (* the read above is the access hazard: re-check the oracle *)
          touch ctx node;
          match link with
          | Null -> Some count
          | Ptr { dest; marked } ->
            (* an unmarked link means [node] is still a member *)
            let count = if marked then count else count + 1 in
            let slot' = 1 - slot in
            ctx.smr_h.assign_hp ~slot:slot' dest;
            (* Validation read: if node.next.(0) changed, dest may already
               be snipped out (and, without protection, freed) — restart. *)
            if R.get node.next.(0) != link then None
            else begin
              touch ctx dest;
              walk count slot' dest
            end
        end
      in
      match walk 0 1 ctx.succs.(0) with
      | Some count -> count
      | None -> scan ()
    in
    let res = scan () in
    ctx.smr_h.clear_hps ();
    res

  (* Sequential-context helpers. *)

  let to_list ctx =
    let t = ctx.set in
    let rec go acc n =
      match R.get n.next.(0) with
      | Null -> List.rev acc
      | Ptr { dest; marked } ->
        if dest == t.tail then List.rev acc
        else go (if marked then acc else dest.key :: acc) dest
    in
    go [] t.head

  let size ctx = List.length (to_list ctx)

  (* Structural invariants (sequential context): every chain is strictly
     sorted; every unmarked node linked at an upper level is present
     (unmarked) in the level-0 chain. *)
  let validate ctx =
    let t = ctx.set in
    let level_nodes level =
      let rec go acc n =
        match R.get n.next.(level) with
        | Null -> List.rev acc
        | Ptr { dest; marked } ->
          if dest == t.tail then List.rev acc
          else go (if marked then acc else dest :: acc) dest
      in
      go [] t.head
    in
    let check_sorted level nodes =
      let rec go last = function
        | [] -> ()
        | n :: rest ->
          if n.key <= last then
            failwith (Printf.sprintf "skiplist: level %d not sorted" level);
          go n.key rest
      in
      go min_int nodes
    in
    let base = level_nodes 0 in
    check_sorted 0 base;
    for level = 1 to max_level do
      let nodes = level_nodes level in
      check_sorted level nodes;
      List.iter
        (fun n ->
          if not (List.memq n base) then
            failwith
              (Printf.sprintf "skiplist: node %d at level %d missing from level 0"
                 n.key level))
        nodes
    done

  (* See {!Linked_list.heartbeat}: scheme bookkeeping without an
     operation, so composite services keep idle instances' epochs moving. *)
  let heartbeat ctx = ctx.smr_h.manage_state ()

  let unregister ctx = ctx.smr_h.unregister ()

  let flush ctx = ctx.smr_h.flush ()

  let report t : Set_intf.report =
    { smr = t.smr.stats ();
      allocations = Arena.allocations t.arena;
      frees = Arena.frees t.arena;
      outstanding = Arena.outstanding t.arena;
      fresh_nodes = Arena.fresh_nodes t.arena;
      violations = Arena.violations t.arena;
      double_frees = Arena.double_frees t.arena }

  let retired_count t = t.smr.retired_count ()
  let violations t = Arena.violations t.arena
  let outstanding t = Arena.outstanding t.arena
  let nodes_per_key = 1
  let scheme_name t = t.smr.scheme_name
end
