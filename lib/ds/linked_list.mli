(** Harris-Michael lock-free linked-list set over integer keys — the first
    of the paper's three evaluation structures (its appendix shows the
    QSense integration on exactly this list, Algorithms 6-7).

    Two hazard pointers per process (slot 0 = predecessor, slot 1 =
    current), published before the validation read per Condition 1.
    Deletion marks the victim's link (logical) then unlinks it (physical);
    the winner of the physical unlink CAS retires the node. Links are
    immutable values CASed by physical identity, which rules out ABA.

    Also the building block of {!Hashtable}: the [_in] operations run on an
    explicit bucket head sharing this list's arena, reclamation scheme and
    tail sentinel. *)

module Make (R : Qs_intf.Runtime_intf.RUNTIME) : sig
  type t
  (** The shared set. *)

  type ctx
  (** Per-process operation context; one per registered process. *)

  type node

  val hp_per_process : int
  (** K = 2. *)

  val nodes_per_key : int

  val create : Set_intf.config -> t

  val register : t -> pid:int -> ctx
  (** Each worker registers once with a distinct pid in
      [0, n_processes). *)

  (** {1 Set operations (linearizable)} *)

  val search : ctx -> int -> bool
  val insert : ctx -> int -> bool
  val delete : ctx -> int -> bool

  (** {1 Hash-table bucket interface} *)

  val new_bucket : t -> node
  (** A fresh head sentinel chained to the shared tail; never reclaimed. *)

  val search_in : ctx -> bucket:node -> int -> bool

  val search_ro_in : ctx -> bucket:node -> int -> bool
  (** Read-only membership probe: same answer as [search_in] but never
      snips marked nodes and allocates nothing on the OCaml heap
      (top-level recursion, no result tuple). The KV service's get path
      uses this so benchmarks can pin it at zero words per request. *)

  val insert_in : ctx -> bucket:node -> int -> bool
  val delete_in : ctx -> bucket:node -> int -> bool
  val to_list_in : ctx -> bucket:node -> int list
  val validate_in : ctx -> bucket:node -> unit

  (** {1 Inspection — process context, no concurrent mutators} *)

  val to_list : ctx -> int list
  val size : ctx -> int

  val heartbeat : ctx -> unit
  (** Scheme bookkeeping (quiescence announcement, epoch advance) without
      performing an operation — composite services call this on idle
      structures so epoch-based schemes never see a registered-but-silent
      process. Process context, between operations. *)

  val unregister : ctx -> unit
  (** Leave the computation: retire the SMR pid slot, donating its limbo
      lists to the scheme's orphan pool; the slot may be re-registered
      later (worker churn). Process context, between operations. *)

  val flush : ctx -> unit
  (** Teardown: force-free the caller's retired backlog. *)

  val report : t -> Set_intf.report
  val retired_count : t -> int
  val violations : t -> int
  val outstanding : t -> int
  val scheme_name : t -> string

  val validate : ctx -> unit
  (** Check structural invariants; raises [Failure] on corruption.
      Sequential context only. *)
end
