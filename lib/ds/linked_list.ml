(* Harris-Michael lock-free linked-list set (the paper evaluates this list,
   taken from ASCYLIB; its appendix shows exactly where the QSense calls
   go — Algorithms 6 and 7). Keys are integers; head/tail sentinels carry
   [min_int]/[max_int] and are never reclaimed.

   Deletion is two-phase: a CAS marks the victim's [next] link (logical
   delete), then a CAS on the predecessor unlinks it (physical delete). The
   process whose CAS physically unlinks the node is the unique caller of
   [retire] for it. Links are immutable [Ptr] values, so CAS compares
   physical identity of the link object — a link can never be reused, which
   rules out ABA on the links themselves; reclaimed nodes are protected by
   the SMR scheme under test.

   Hazard-pointer discipline (K = 2): slot 0 protects the predecessor, slot
   1 the current node. Each is published before the validation read
   ([pred.next] still equals the link we followed), per Condition 1. *)

module Make (R : Qs_intf.Runtime_intf.RUNTIME) = struct
  type node = {
    uid : int; (* stable identity for the SMR membership set *)
    mutable key : int;
    next : link R.atomic;
    mutable state : Qs_arena.Node_state.t;
    mutable birth : int;
  }

  and link = Null | Ptr of { dest : node; marked : bool }

  (* Node identities for Smr_intf.NODE.id: stamped once at creation (the
     slow allocation path), stable across arena reuse. Stdlib atomics, not
     R: identity assignment is meta-level, not simulated shared memory. *)
  let uid_counter = Atomic.make 0
  let fresh_uid () = Atomic.fetch_and_add uid_counter 1

  module Node_impl = struct
    type t = node

    let create () =
      { uid = fresh_uid ();
        key = 0;
        next = R.atomic Null;
        state = Qs_arena.Node_state.Free;
        birth = 0 }

    let get_state n = n.state
    let set_state n s = n.state <- s
    let bump_birth n = n.birth <- n.birth + 1
  end

  module Arena = Qs_arena.Arena.Make (Node_impl)

  module Glue = Smr_glue.Make (R) (struct
    type t = node

    let id n = n.uid
  end)

  type t = {
    head : node;
    tail : node;
    smr : Glue.ops;
    arena : Arena.t;
    debug_checks : bool;
  }

  type ctx = { set : t; smr_h : Glue.handle; arena_h : Arena.handle }

  let hp_per_process = 2

  let create (cfg : Set_intf.config) =
    let smr_cfg =
      { cfg.smr with
        hp_per_process;
        removes_per_op_max = 1 }
    in
    let tail =
      { uid = fresh_uid ();
        key = max_int;
        next = R.atomic Null;
        state = Qs_arena.Node_state.Reachable;
        birth = 0 }
    in
    let head =
      { uid = fresh_uid ();
        key = min_int;
        next = R.atomic (Ptr { dest = tail; marked = false });
        state = Qs_arena.Node_state.Reachable;
        birth = 0 }
    in
    let arena =
      Arena.create ?capacity:cfg.capacity ~n_processes:smr_cfg.n_processes ()
    in
    let arena_handles =
      Array.init smr_cfg.n_processes (fun pid -> Arena.register arena ~pid)
    in
    (* The freeing process is whichever process runs the scan, so route the
       node to that process's free list. *)
    let free n = Arena.free arena_handles.(R.self ()) n in
    (* bulk-return path for whole limbo bags: one outstanding-counter
       update per bag instead of one per node *)
    let free_bulk data count =
      Arena.free_many arena_handles.(R.self ()) data count
    in
    let smr = Glue.make ~free_bulk cfg.scheme smr_cfg ~dummy:tail ~free in
    { head; tail; smr; arena; debug_checks = cfg.debug_checks }

  let register t ~pid =
    { set = t;
      smr_h = t.smr.register ~pid;
      arena_h = Arena.register t.arena ~pid }

  let touch ctx n = if ctx.set.debug_checks then Arena.touch ctx.arena_h n

  (* Find the first node with key >= [key] starting from [head] (the list's
     own head, or a hash-table bucket's), cleaning up marked nodes on the
     way. Returns [(pred, pred_link, curr)] where [pred_link] is the
     physical link value [Ptr {dest = curr; marked = false}] read from
     [pred.next] — the CAS witness for both insertion and physical
     deletion. *)
  let rec find ctx head key =
    let rec walk pred =
      let pred_link = R.get pred.next in
      touch ctx pred;
      match pred_link with
      | Null | Ptr { marked = true; _ } ->
        (* pred itself was removed or is being removed: restart from head *)
        find ctx head key
      | Ptr { dest = curr; marked = false } ->
        ctx.smr_h.assign_hp ~slot:1 curr;
        (* Validation read: if pred.next changed since we read it, curr may
           already be unlinked (and, without protection, freed) — restart.
           The hazard pointer published above makes the success case safe. *)
        if R.get pred.next != pred_link then find ctx head key
        else begin
          touch ctx curr;
          let curr_link = R.get curr.next in
          (* the read above is the access hazard: re-check the oracle *)
          touch ctx curr;
          match curr_link with
          | Ptr { dest = succ; marked = true } ->
            (* curr is logically deleted: attempt the physical unlink; the
               winner of this CAS retires the node (free_node_later). *)
            if R.cas pred.next pred_link (Ptr { dest = succ; marked = false })
            then begin
              curr.state <- Qs_arena.Node_state.Removed;
              ctx.smr_h.retire curr;
              walk pred
            end
            else find ctx head key
          | Null | Ptr { marked = false; _ } ->
            if curr.key >= key then (pred, pred_link, curr)
            else begin
              ctx.smr_h.assign_hp ~slot:0 curr;
              (* Re-validate: curr must still be pred's successor, otherwise
                 the slot-0 protection could cover an already-freed node. *)
              if R.get pred.next != pred_link then find ctx head key else walk curr
            end
        end
    in
    walk head

  let search_in ctx ~bucket key =
    ctx.smr_h.manage_state ();
    let _, _, curr = find ctx bucket key in
    touch ctx curr;
    let res = curr.key = key in
    ctx.smr_h.clear_hps ();
    res

  (* Read-only membership probe: walks the chain by key order without
     snipping marked nodes (chain keys strictly increase, marked or not,
     so the first node with key >= [key] settles membership: present iff
     it carries [key] and its own next link is unmarked). Alternates the
     two hazard-pointer slots between the node in hand and its successor
     with the usual validation re-read, restarting from the bucket head
     on interference.

     Deliberately written as top-level recursion with no result tuple:
     unlike [search_in] (whose [find] allocates a closure and a triple
     per call), this path allocates nothing — it is the KV service's
     pinned-at-zero get path. The cleanup duty read-only probes skip is
     picked up by the next mutating [find] through the bucket. *)
  let rec probe_walk ctx bucket key slot node =
    if node.key > key then begin
      ctx.smr_h.clear_hps ();
      false
    end
    else if node.key = key then begin
      let link = R.get node.next in
      touch ctx node;
      ctx.smr_h.clear_hps ();
      match link with
      | Null -> true
      | Ptr { marked; _ } -> not marked
    end
    else begin
      let link = R.get node.next in
      touch ctx node;
      match link with
      | Null ->
        ctx.smr_h.clear_hps ();
        false
      | Ptr { dest; marked = _ } ->
        let slot' = 1 - slot in
        ctx.smr_h.assign_hp ~slot:slot' dest;
        (* Validation read: if node.next changed since we read it, dest
           may already be unlinked (and freed) — restart from the head. *)
        if R.get node.next != link then probe_restart ctx bucket key
        else begin
          touch ctx dest;
          probe_walk ctx bucket key slot' dest
        end
    end

  and probe_restart ctx bucket key =
    (* the bucket sentinel is never reclaimed: no protection needed *)
    probe_walk ctx bucket key 1 bucket

  let search_ro_in ctx ~bucket key =
    ctx.smr_h.manage_state ();
    probe_restart ctx bucket key

  let insert_in ctx ~bucket key =
    ctx.smr_h.manage_state ();
    (* The not-yet-published node lives in [fresh] (cleared the moment the
       publishing CAS wins) so that a neutralization signal aborting this
       operation can return it to the arena instead of leaking it: in the
       simulator, delivery replaces a pending effect — it can never land
       between the CAS executing and the meta-level clear below. *)
    let fresh = ref None in
    let rec attempt () =
      let pred, pred_link, curr = find ctx bucket key in
      if curr.key = key then begin
        (* Already present; a node allocated by an earlier attempt was never
           linked, so it is freed directly (paper: "free the node directly"). *)
        (match !fresh with
        | Some n -> Arena.free ctx.arena_h n
        | None -> ());
        fresh := None;
        ctx.smr_h.clear_hps ();
        false
      end
      else begin
        let n =
          match !fresh with
          | Some n -> n
          | None ->
            let n = Arena.alloc ctx.arena_h in
            n.key <- key;
            fresh := Some n;
            n
        in
        R.set n.next (Ptr { dest = curr; marked = false });
        if R.cas pred.next pred_link (Ptr { dest = n; marked = false }) then begin
          fresh := None;
          n.state <- Qs_arena.Node_state.Reachable;
          ctx.smr_h.clear_hps ();
          true
        end
        else attempt ()
      end
    in
    try attempt ()
    with Qs_intf.Runtime_intf.Neutralized as e ->
      (match !fresh with
      | Some n -> Arena.free ctx.arena_h n
      | None -> ());
      raise e

  let delete_in ctx ~bucket key =
    ctx.smr_h.manage_state ();
    let rec attempt () =
      let pred, pred_link, curr = find ctx bucket key in
      if curr.key <> key then begin
        ctx.smr_h.clear_hps ();
        false
      end
      else begin
        let curr_link0 = R.get curr.next in
        touch ctx curr;
        match curr_link0 with
        | Null ->
          (* curr is the tail sentinel; impossible since tail.key = max_int *)
          ctx.smr_h.clear_hps ();
          false
        | Ptr { dest = succ; marked = false } as curr_link ->
          if R.cas curr.next curr_link (Ptr { dest = succ; marked = true })
          then begin
            (* Logical delete succeeded — we own the removal. *)
            curr.state <- Qs_arena.Node_state.Removed;
            (if R.cas pred.next pred_link (Ptr { dest = succ; marked = false })
             then ctx.smr_h.retire curr
             else
               (* physical unlink lost a race; a find pass cleans up and
                  retires on our behalf *)
               ignore (find ctx bucket key));
            ctx.smr_h.clear_hps ();
            true
          end
          else attempt ()
        | Ptr { marked = true; _ } ->
          (* someone else is deleting it; retry to settle the outcome *)
          attempt ()
      end
    in
    attempt ()

  (* Public single-list operations. *)

  let search ctx key = search_in ctx ~bucket:ctx.set.head key
  let insert ctx key = insert_in ctx ~bucket:ctx.set.head key
  let delete ctx key = delete_in ctx ~bucket:ctx.set.head key

  (* A fresh head sentinel chained to the shared tail — hash-table buckets.
     Never reclaimed. *)
  let new_bucket t =
    { uid = fresh_uid ();
      key = min_int;
      next = R.atomic (Ptr { dest = t.tail; marked = false });
      state = Qs_arena.Node_state.Reachable;
      birth = 0 }

  (* Sequential-context helpers (no concurrent mutators). *)

  let to_list_in ctx ~bucket =
    let rec go acc n =
      match R.get n.next with
      | Null -> List.rev acc
      | Ptr { dest; marked } ->
        if dest == ctx.set.tail then List.rev acc
        else go (if marked then acc else dest.key :: acc) dest
    in
    go [] bucket

  let to_list ctx = to_list_in ctx ~bucket:ctx.set.head

  (* Structural invariant check (sequential context): the chain from the
     bucket head reaches the shared tail and node keys strictly increase
     (marked nodes keep their position in Harris's algorithm, so the check
     covers them too). *)
  let validate_in ctx ~bucket =
    let rec go last n hops =
      if hops > 1_000_000 then failwith "list: cycle suspected";
      match R.get n.next with
      | Null ->
        if n != ctx.set.tail then failwith "list: chain does not end at tail"
      | Ptr { dest; _ } ->
        if dest != ctx.set.tail then begin
          if dest.key <= last then failwith "list: keys not strictly increasing";
          go dest.key dest (hops + 1)
        end
        else go last dest (hops + 1)
    in
    go min_int bucket 0

  let validate ctx = validate_in ctx ~bucket:ctx.set.head

  let size ctx = List.length (to_list ctx)

  (* Run the scheme's per-operation bookkeeping (quiescence announcement,
     epoch advance, scan triggers) without performing an operation.
     Composite services whose workers touch several structures at very
     different rates call this on the idle ones so that epoch-based
     schemes never see a registered-but-silent process (which would block
     reclamation exactly like a stalled thread). *)
  let heartbeat ctx = ctx.smr_h.manage_state ()

  let unregister ctx = ctx.smr_h.unregister ()

  let flush ctx = ctx.smr_h.flush ()

  let report t : Set_intf.report =
    { smr = t.smr.stats ();
      allocations = Arena.allocations t.arena;
      frees = Arena.frees t.arena;
      outstanding = Arena.outstanding t.arena;
      fresh_nodes = Arena.fresh_nodes t.arena;
      violations = Arena.violations t.arena;
      double_frees = Arena.double_frees t.arena }

  let retired_count t = t.smr.retired_count ()
  let violations t = Arena.violations t.arena
  let outstanding t = Arena.outstanding t.arena
  let nodes_per_key = 1
  let scheme_name t = t.smr.scheme_name
end
