(** Michael & Scott's lock-free FIFO queue with pluggable reclamation — the
    flagship structure of Michael's original hazard-pointer paper. K = 2
    hazard pointers per process. Values are integers. *)

module Make (R : Qs_intf.Runtime_intf.RUNTIME) : sig
  type t
  type ctx

  val hp_per_process : int

  val create : Set_intf.config -> t
  val register : t -> pid:int -> ctx

  val enqueue : ctx -> int -> unit
  val dequeue : ctx -> int option

  val to_list : ctx -> int list
  (** Front first; sequential context only. *)

  val length : ctx -> int
  val unregister : ctx -> unit
  (** Leave the computation: retire the SMR pid slot, donating its limbo
      lists to the scheme's orphan pool; the slot may be re-registered
      later (worker churn). Process context, between operations. *)

  val flush : ctx -> unit

  val validate : ctx -> unit
  (** Structural invariants (acyclic, tail anchored at the last node);
      raises [Failure]. Sequential context only. *)

  val report : t -> Set_intf.report
  val violations : t -> int
  val outstanding : t -> int
end
