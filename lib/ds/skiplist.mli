(** Lock-free skip-list set (Fraser-style, as in ASCYLIB) — the second of
    the paper's evaluation structures, and the one that stresses
    hazard-pointer maintenance hardest: two hazard pointers per level
    (K = 32 here; the paper quotes up to 35), which is why the paper's
    QSense-vs-QSBR gap is widest on the skip list.

    Level-0 membership is authoritative; deletion marks top-down and the
    level-0 mark winner owns the removal, retiring the node only after a
    full traversal pass no longer meets it at any level. *)

module Make (R : Qs_intf.Runtime_intf.RUNTIME) : sig
  type t
  type ctx
  type node

  val max_level : int

  val hp_per_process : int
  (** K = 2 × (max_level + 1). *)

  val nodes_per_key : int

  val create : Set_intf.config -> t
  val register : t -> pid:int -> ctx

  val search : ctx -> int -> bool
  val insert : ctx -> int -> bool
  val delete : ctx -> int -> bool

  val range_count : ctx -> lo:int -> hi:int -> int
  (** Number of keys currently in [lo, hi] (inclusive): a hazard-pointer
      protected walk of the authoritative level-0 chain that restarts on
      interference. Allocation-free; pins nodes for the whole walk, so it
      exercises reclamation much harder than point operations. Raises
      [Invalid_argument] if [hi < lo]. *)

  val to_list : ctx -> int list
  val size : ctx -> int
  val heartbeat : ctx -> unit
  (** Scheme bookkeeping (quiescence announcement, epoch advance) without
      performing an operation — composite services call this on idle
      structures so epoch-based schemes never see a registered-but-silent
      process. Process context, between operations. *)

  val unregister : ctx -> unit
  (** Leave the computation: retire the SMR pid slot, donating its limbo
      lists to the scheme's orphan pool; the slot may be re-registered
      later (worker churn). Process context, between operations. *)

  val flush : ctx -> unit
  val report : t -> Set_intf.report
  val retired_count : t -> int
  val violations : t -> int
  val outstanding : t -> int
  val scheme_name : t -> string

  val validate : ctx -> unit
  (** Check structural invariants; raises [Failure] on corruption.
      Sequential context only. *)
end
