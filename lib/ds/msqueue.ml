(* Michael & Scott's lock-free FIFO queue with pluggable reclamation — the
   flagship example of Michael's original hazard-pointer paper, included to
   show the methodology on a second non-set shape (K = 2 hazard pointers:
   slot 0 = head node, slot 1 = next/tail node).

   [head] points to a dummy node; the dummy's successor holds the front
   value. A dequeue swings [head] to the successor and retires the old
   dummy (the dequeued node becomes the new dummy). The queue anchors
   ([head]/[tail]) hold freshly allocated [Ptr] objects, so anchor CASes
   compare physical identity of the link value and cannot ABA even when
   nodes are recycled; the CAS on a node's [next] (Null -> Ptr) is protected
   by the hazard pointer on its owner. *)

module Make (R : Qs_intf.Runtime_intf.RUNTIME) = struct
  type node = {
    uid : int; (* stable identity for the SMR membership set *)
    mutable value : int;
    next : link R.atomic;
    mutable state : Qs_arena.Node_state.t;
    mutable birth : int;
  }

  and link = Null | Ptr of node

  let uid_counter = Atomic.make 0
  let fresh_uid () = Atomic.fetch_and_add uid_counter 1

  module Node_impl = struct
    type t = node

    let create () =
      { uid = fresh_uid ();
        value = 0;
        next = R.atomic Null;
        state = Qs_arena.Node_state.Free;
        birth = 0 }

    let get_state n = n.state
    let set_state n s = n.state <- s
    let bump_birth n = n.birth <- n.birth + 1
  end

  module Arena = Qs_arena.Arena.Make (Node_impl)
  module Glue = Smr_glue.Make (R) (struct
    type t = node

    let id n = n.uid
  end)

  type t = {
    head : link R.atomic; (* always Ptr dummy *)
    tail : link R.atomic;
    smr : Glue.ops;
    arena : Arena.t;
    debug_checks : bool;
  }

  type ctx = { queue : t; smr_h : Glue.handle; arena_h : Arena.handle }

  let hp_per_process = 2

  let dest = function Ptr n -> n | Null -> assert false

  let create (cfg : Set_intf.config) =
    let smr_cfg = { cfg.smr with hp_per_process; removes_per_op_max = 1 } in
    let sentinel =
      (* never retired; fills unused hazard-pointer slots *)
      { uid = fresh_uid ();
        value = 0;
        next = R.atomic Null;
        state = Qs_arena.Node_state.Reachable;
        birth = 0 }
    in
    let arena =
      Arena.create ?capacity:cfg.capacity ~n_processes:smr_cfg.n_processes ()
    in
    let arena_handles =
      Array.init smr_cfg.n_processes (fun pid -> Arena.register arena ~pid)
    in
    let free n = Arena.free arena_handles.(R.self ()) n in
    (* bulk-return path for whole limbo bags: one outstanding-counter
       update per bag instead of one per node *)
    let free_bulk data count =
      Arena.free_many arena_handles.(R.self ()) data count
    in
    let smr = Glue.make ~free_bulk cfg.scheme smr_cfg ~dummy:sentinel ~free in
    (* The initial dummy is arena-allocated: the first dequeue retires it,
       and the books must balance. *)
    let dummy = Arena.alloc arena_handles.(0) in
    dummy.state <- Qs_arena.Node_state.Reachable;
    { head = R.atomic (Ptr dummy);
      tail = R.atomic (Ptr dummy);
      smr;
      arena;
      debug_checks = cfg.debug_checks }

  let register t ~pid =
    { queue = t;
      smr_h = t.smr.register ~pid;
      arena_h = Arena.register t.arena ~pid }

  let touch ctx n = if ctx.queue.debug_checks then Arena.touch ctx.arena_h n

  let enqueue ctx value =
    ctx.smr_h.manage_state ();
    let t = ctx.queue in
    let n = Arena.alloc ctx.arena_h in
    n.value <- value;
    (* [published] flips (meta-level, no effect in between) right after the
       linking CAS wins, so a neutralization signal aborting this operation
       returns the still-private node to the arena instead of leaking it. *)
    let published = ref false in
    let rec attempt () =
      let tail_link = R.get t.tail in
      let tl = dest tail_link in
      ctx.smr_h.assign_hp ~slot:1 tl;
      if R.get t.tail != tail_link then attempt ()
      else begin
        touch ctx tl;
        match R.get tl.next with
        | Null ->
          if R.cas tl.next Null (Ptr n) then begin
            published := true;
            n.state <- Qs_arena.Node_state.Reachable;
            (* swing the tail; helpers may already have done it *)
            ignore (R.cas t.tail tail_link (Ptr n))
          end
          else attempt ()
        | Ptr successor ->
          (* tail is lagging: help it forward and retry *)
          ignore (R.cas t.tail tail_link (Ptr successor));
          attempt ()
      end
    in
    (try R.set n.next Null; attempt ()
     with Qs_intf.Runtime_intf.Neutralized as e ->
       if not !published then Arena.free ctx.arena_h n;
       raise e);
    ctx.smr_h.clear_hps ()

  let dequeue ctx =
    ctx.smr_h.manage_state ();
    let t = ctx.queue in
    let rec attempt () =
      let head_link = R.get t.head in
      let h = dest head_link in
      ctx.smr_h.assign_hp ~slot:0 h;
      if R.get t.head != head_link then attempt ()
      else begin
        touch ctx h;
        let tail_link = R.get t.tail in
        let next_link = R.get h.next in
        touch ctx h;
        match next_link with
        | Null ->
          ctx.smr_h.clear_hps ();
          None
        | Ptr next ->
          ctx.smr_h.assign_hp ~slot:1 next;
          if R.get t.head != head_link then attempt ()
          else if dest tail_link == h then begin
            (* non-empty but tail still points at the dummy: help *)
            ignore (R.cas t.tail tail_link (Ptr next));
            attempt ()
          end
          else begin
            touch ctx next;
            (* read the value before the swing publishes next as the new
               (retire-able) dummy *)
            let v = next.value in
            if R.cas t.head head_link (Ptr next) then begin
              h.state <- Qs_arena.Node_state.Removed;
              ctx.smr_h.retire h;
              ctx.smr_h.clear_hps ();
              Some v
            end
            else attempt ()
          end
      end
    in
    attempt ()

  (* Sequential-context helpers. *)

  let to_list ctx =
    let rec go acc n =
      match R.get n.next with Null -> List.rev acc | Ptr x -> go (x.value :: acc) x
    in
    go [] (dest (R.get ctx.queue.head))

  let length ctx = List.length (to_list ctx)
  let unregister ctx = ctx.smr_h.unregister ()

  let flush ctx = ctx.smr_h.flush ()

  let validate ctx =
    (* the tail anchor must point at the last node (or its predecessor,
       transiently — but not in a quiescent state) and the chain must be
       Null-terminated and acyclic *)
    let t = ctx.queue in
    let rec last n hops =
      if hops > 1_000_000 then failwith "msqueue: cycle suspected";
      match R.get n.next with Null -> n | Ptr x -> last x (hops + 1)
    in
    let final = last (dest (R.get t.head)) 0 in
    if dest (R.get t.tail) != final then
      failwith "msqueue: tail anchor is not the last node"

  let report t : Set_intf.report =
    { smr = t.smr.stats ();
      allocations = Arena.allocations t.arena;
      frees = Arena.frees t.arena;
      outstanding = Arena.outstanding t.arena;
      fresh_nodes = Arena.fresh_nodes t.arena;
      violations = Arena.violations t.arena;
      double_frees = Arena.double_frees t.arena }

  let violations t = Arena.violations t.arena
  let outstanding t = Arena.outstanding t.arena
end
