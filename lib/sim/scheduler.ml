open Effect.Deep

type drain_policy = No_drain | Prob of float

type cost_model = {
  plain_op : int;
  atomic_load : int;
  atomic_store : int;
  cas : int;
  fence : int;
  remote_access : int;
  ctx_switch : int;
  jitter : int;
  stall_prob : float;
  stall_max : int;
}

let default_cost =
  { plain_op = 1;
    (* pointer-chasing loads miss the cache for structures larger than L1;
       this is the dominant per-node cost the fence is measured against *)
    atomic_load = 8;
    atomic_store = 3;
    cas = 12;
    fence = 60;
    remote_access = 8;
    ctx_switch = 200;
    jitter = 1;
    stall_prob = 0.002;
    stall_max = 400 }

(* Scheduling strategies. [Fair] is the historical smallest-clock policy:
   cores advance together in virtual time, modelling true parallelism.
   [Pct] is probabilistic concurrency testing (Burckhardt et al.): each
   process gets a random priority, the highest-priority runnable process
   runs, and at [depth - 1] randomly chosen step counts the currently
   running process is demoted below everything else. Any schedule with a
   "bug depth" of [depth] is hit with probability >= 1/(n * steps^(depth-1))
   — far better than uniform random for ordering bugs. [Targeted] keeps
   Fair scheduling but stalls a chosen process the (skip+1)-th time it
   performs a given labelled hook (retire / scan / quiesce boundary). *)
type strategy =
  | Fair
  | Pct of { depth : int; seed : int }
  | Targeted of {
      victim : int;
      hook : Qs_intf.Runtime_intf.hook;
      skip : int;
      stall : int;
    }

(* Injected faults, applied when the target process's clock first reaches
   [at] (times are relative to the most recent {!reset_clocks}). All are
   deterministic: an explorer derives a fault plan from its seed and hands
   it to {!inject}. *)
type fault =
  | Stall_at of { pid : int; at : int; ticks : int }
      (* the process freezes for [ticks] without draining its store buffer
         (an in-core stall: cache miss storm, SMI, …); rooster wake-ups
         crossed during the stall still fire, as for sleeping processes *)
  | Crash_at of { pid : int; at : int }
      (* the process never executes again. Its final descheduling is a
         context switch, so its store buffer drains; its core stays up *)
  | Oversleep_spike of { pid : int; at : int; extra : int }
      (* the process's next rooster wake-up is delayed by [extra] ticks on
         top of the configured oversleep — possibly far beyond epsilon *)
  | Skew_burst of { pid : int; at : int; until_ : int; extra : int }
      (* the process's [now] reads [extra] ticks ahead during
         [at, until_) — a cross-core clock-skew burst *)
  | Churn_at of { pid : int; at : int; ticks : int }
      (* worker churn request: ask the process to leave the computation
         (unregister, donating its limbo lists), stay away for [ticks]
         virtual time, and re-register. The scheduler only queues the
         request — the worker body polls {!take_churn} between operations
         and performs the leave/rejoin itself, because registration is a
         property of the SMR scheme, not of the core. *)

type config = {
  n_cores : int;
  seed : int;
  cost : cost_model;
  store_buffer_capacity : int;
  drain : drain_policy;
  rooster_interval : int option;
  rooster_oversleep : int;
  rooster_oversleep_min : int;
  clock_skew : int;
  kill_roosters_at : int option;
  trace_capacity : int;
  strategy : strategy;
  pct_horizon : int;
}

type event =
  | Ev_read
  | Ev_write
  | Ev_atomic_get
  | Ev_atomic_set
  | Ev_cas of bool
  | Ev_faa
  | Ev_fence
  | Ev_rooster
  | Ev_stall of int
  | Ev_sleep of int
  | Ev_wake
  | Ev_hook of Qs_intf.Runtime_intf.hook
  | Ev_crash
  | Ev_oversleep of int
  | Ev_skew of int
  | Ev_churn of int

let pp_hook fmt (h : Qs_intf.Runtime_intf.hook) =
  Format.pp_print_string fmt
    (match h with
    | Hook_retire -> "retire"
    | Hook_scan -> "scan"
    | Hook_quiesce -> "quiesce")

let pp_event fmt = function
  | Ev_read -> Format.pp_print_string fmt "read"
  | Ev_write -> Format.pp_print_string fmt "write"
  | Ev_atomic_get -> Format.pp_print_string fmt "atomic-get"
  | Ev_atomic_set -> Format.pp_print_string fmt "atomic-set"
  | Ev_cas ok -> Format.fprintf fmt "cas(%s)" (if ok then "ok" else "fail")
  | Ev_faa -> Format.pp_print_string fmt "faa"
  | Ev_fence -> Format.pp_print_string fmt "fence"
  | Ev_rooster -> Format.pp_print_string fmt "rooster-fire"
  | Ev_stall n -> Format.fprintf fmt "stall(%d)" n
  | Ev_sleep target -> Format.fprintf fmt "sleep(until %d)" target
  | Ev_wake -> Format.pp_print_string fmt "wake"
  | Ev_hook h -> Format.fprintf fmt "hook(%a)" pp_hook h
  | Ev_crash -> Format.pp_print_string fmt "crash"
  | Ev_oversleep n -> Format.fprintf fmt "oversleep-spike(%d)" n
  | Ev_skew n -> Format.fprintf fmt "skew-burst(%d)" n
  | Ev_churn n -> Format.fprintf fmt "churn(%d)" n

let default_config ~n_cores ~seed =
  { n_cores;
    seed;
    cost = default_cost;
    store_buffer_capacity = 64;
    drain = No_drain;
    rooster_interval = None;
    rooster_oversleep = 0;
    rooster_oversleep_min = 0;
    clock_skew = 0;
    kill_roosters_at = None;
    trace_capacity = 0;
    strategy = Fair;
    pct_horizon = 200_000 }

type pstate = Idle | Ready | Sleeping of int | Done | Failed of exn | Crashed

type proc = {
  pid : int;
  mutable clock : int;
  skew : int;
  buffer : Cell.buffered Queue.t;
  mutable state : pstate;
  mutable resume : (unit -> unit) option;
  mutable next_rooster : int;
  prng : Qs_util.Prng.t;
  mutable flushes : int;
  mutable extra_skew : int; (* skew-burst injection: active while ... *)
  mutable extra_skew_until : int; (* ... clock < extra_skew_until *)
  mutable pending_faults : fault list; (* sorted by trigger time *)
  mutable churn_pending : int list;
      (* fired [Churn_at] downtimes awaiting pickup by the worker body via
         {!take_churn}; meta-level state, polling it costs no effects *)
  hook_counts : int array; (* per hook kind, for the Targeted strategy *)
}

(* PCT bookkeeping: [prio.(pid)] is the process's current priority (higher
   runs first); [change_points] the remaining demotion step counts, sorted;
   [demote_next] the next (ever lower) priority handed out by a demotion. *)
type pct_state = {
  prio : int array;
  mutable change_points : int list;
  mutable demote_next : int;
}

type t = {
  cfg : config;
  procs : proc array;
  prng : Qs_util.Prng.t;
  pct : pct_state option;
  mutable last_scheduled : int; (* pid of the last process stepped (PCT) *)
  mutable armed_faults : fault list; (* master copy, re-armed by reset_clocks *)
  mutable crashes : int;
  mutable rooster_fires : int;
  mutable steps : int;
  mutable failures : (int * exn) list;
  trace : (int * int * event) array; (* ring: (pid, clock, event) *)
  mutable trace_pos : int;
  mutable trace_len : int;
  mutable sink : Qs_intf.Runtime_intf.sink option;
      (* trace sink for E_emit / rooster wake-ups; None = tracing off *)
}

type _ Effect.t +=
  | E_atomic_get : 'a Cell.t -> 'a Effect.t
  | E_atomic_set : 'a Cell.t * 'a -> unit Effect.t
  | E_cas : 'a Cell.t * 'a * 'a -> bool Effect.t
  | E_faa : int Cell.t * int -> int Effect.t
  | E_read : 'a Cell.t -> 'a Effect.t
  | E_write : 'a Cell.t * 'a -> unit Effect.t
  | E_fence : unit Effect.t
  | E_now : int Effect.t
  | E_self : int Effect.t
  | E_yield : unit Effect.t
  | E_sleep_until : int -> unit Effect.t
  | E_charge : int -> unit Effect.t
  | E_hook : Qs_intf.Runtime_intf.hook -> unit Effect.t
  | E_emit : Qs_intf.Runtime_intf.event * int * int -> unit Effect.t

let hook_index : Qs_intf.Runtime_intf.hook -> int = function
  | Hook_retire -> 0
  | Hook_scan -> 1
  | Hook_quiesce -> 2

(* Rooster oversleep, uniform in [min, max]. Skips the PRNG draw entirely
   when the bound is 0 so that pre-existing seeded schedules are bit-for-bit
   unchanged. *)
let draw_oversleep cfg prng =
  if cfg.rooster_oversleep = 0 then cfg.rooster_oversleep_min
  else
    let lo = min cfg.rooster_oversleep_min cfg.rooster_oversleep in
    lo + Qs_util.Prng.int prng (cfg.rooster_oversleep - lo + 1)

let create cfg =
  let prng = Qs_util.Prng.create ~seed:cfg.seed in
  let make_proc pid =
    let p_prng = Qs_util.Prng.split prng in
    let skew = if cfg.clock_skew = 0 then 0 else Qs_util.Prng.int p_prng (cfg.clock_skew + 1) in
    let next_rooster =
      match cfg.rooster_interval with
      | None -> max_int
      | Some iv -> iv + draw_oversleep cfg p_prng
    in
    { pid;
      clock = 0;
      skew;
      buffer = Queue.create ();
      state = Idle;
      resume = None;
      next_rooster;
      prng = p_prng;
      flushes = 0;
      extra_skew = 0;
      extra_skew_until = 0;
      pending_faults = [];
      churn_pending = [];
      hook_counts = Array.make 3 0 }
  in
  let pct =
    match cfg.strategy with
    | Pct { depth; seed } ->
      let pct_prng = Qs_util.Prng.create ~seed in
      let prio = Array.init cfg.n_cores (fun i -> i) in
      Qs_util.Prng.shuffle pct_prng prio;
      let points =
        List.init (max 0 (depth - 1)) (fun _ ->
            Qs_util.Prng.int pct_prng (max 1 cfg.pct_horizon))
      in
      Some
        { prio;
          change_points = List.sort compare points;
          demote_next = -1 }
    | Fair | Targeted _ -> None
  in
  { cfg;
    procs = Array.init cfg.n_cores make_proc;
    prng;
    pct;
    last_scheduled = -1;
    armed_faults = [];
    crashes = 0;
    rooster_fires = 0;
    steps = 0;
    failures = [];
    trace = Array.make (max cfg.trace_capacity 1) (0, 0, Ev_read);
    trace_pos = 0;
    trace_len = 0;
    sink = None }

let set_sink t s = t.sink <- s

(* Forward a trace event to the installed sink. Stamped with the process's
   raw core clock (no skew): trace timelines should be comparable across
   processes, and skew is a property of [now] reads, not of when things
   happened. *)
let emit_to_sink (t : t) (p : proc) ev a b =
  match t.sink with
  | None -> ()
  | Some s -> s.record ~pid:p.pid ~time:p.clock ~ev ~a ~b

let record (t : t) (p : proc) ev =
  if t.cfg.trace_capacity > 0 then begin
    t.trace.(t.trace_pos) <- (p.pid, p.clock, ev);
    t.trace_pos <- (t.trace_pos + 1) mod t.cfg.trace_capacity;
    if t.trace_len < t.cfg.trace_capacity then t.trace_len <- t.trace_len + 1
  end

let flush_buffer p =
  if not (Queue.is_empty p.buffer) then begin
    while not (Queue.is_empty p.buffer) do
      Cell.commit (Queue.pop p.buffer)
    done;
    p.flushes <- p.flushes + 1
  end

let roosters_alive t fire_time =
  match t.cfg.kill_roosters_at with None -> true | Some k -> fire_time < k

(* Advance [p]'s clock to [target], firing every rooster wake-up crossed on
   the way. A rooster wake-up forces a context switch on [p]'s core, which
   drains [p]'s store buffer — the visibility guarantee Cadence needs. *)
let rec advance_to (t : t) (p : proc) target =
  match t.cfg.rooster_interval with
  | Some iv when p.next_rooster <= target && roosters_alive t p.next_rooster ->
    p.clock <- max p.clock p.next_rooster;
    flush_buffer p;
    t.rooster_fires <- t.rooster_fires + 1;
    record t p Ev_rooster;
    emit_to_sink t p Qs_intf.Runtime_intf.Ev_rooster_wake (-1) (-1);
    p.clock <- p.clock + t.cfg.cost.ctx_switch;
    p.next_rooster <- p.next_rooster + iv + draw_oversleep t.cfg p.prng;
    advance_to t p target
  | _ -> p.clock <- max p.clock target

let account (t : t) (p : proc) cost =
  let jitter =
    if t.cfg.cost.jitter = 0 then 0 else Qs_util.Prng.int p.prng (t.cfg.cost.jitter + 1)
  in
  (* Occasional long stalls model cache misses, interrupts and preemptions:
     the asynchrony that lets one process race far ahead of another. *)
  let stall =
    if t.cfg.cost.stall_prob > 0. && Qs_util.Prng.float p.prng 1.0 < t.cfg.cost.stall_prob
    then Qs_util.Prng.int p.prng (t.cfg.cost.stall_max + 1)
    else 0
  in
  if stall > 0 then record t p (Ev_stall stall);
  advance_to t p (p.clock + cost + jitter + stall)

(* Cache-coherence cost model: accessing a line last written by another core
   costs a remote miss. Reads downgrade the line to shared; the next commit
   of a write re-acquires ownership (see Cell.commit). *)
let read_extra (t : t) (p : proc) (c : _ Cell.t) =
  let o = Cell.owner c in
  if o <> p.pid && o <> -1 then begin
    Cell.set_owner c (-1);
    t.cfg.cost.remote_access
  end
  else 0

let write_extra (t : t) (p : proc) (c : _ Cell.t) =
  let o = Cell.owner c in
  let extra = if o <> p.pid && o <> -1 then t.cfg.cost.remote_access else 0 in
  Cell.set_owner c p.pid;
  extra

let run_fiber (t : t) (p : proc) f =
  match_with f ()
    { retc = (fun () -> p.state <- Done);
      exnc =
        (fun e ->
          p.state <- Failed e;
          t.failures <- (p.pid, e) :: t.failures);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_read c ->
            Some
              (fun (k : (a, unit) continuation) ->
                p.resume <-
                  Some
                    (fun () ->
                      account t p (t.cfg.cost.plain_op + read_extra t p c);
                      record t p Ev_read;
                      continue k (Cell.read_own p.pid c)))
          | E_write (c, v) ->
            Some
              (fun (k : (a, unit) continuation) ->
                p.resume <-
                  Some
                    (fun () ->
                      account t p t.cfg.cost.plain_op;
                      let token = Cell.enqueue_write p.pid c v in
                      Queue.push token p.buffer;
                      if Queue.length p.buffer > t.cfg.store_buffer_capacity then
                        Cell.commit (Queue.pop p.buffer);
                      record t p Ev_write;
                      continue k ()))
          | E_atomic_get c ->
            Some
              (fun (k : (a, unit) continuation) ->
                p.resume <-
                  Some
                    (fun () ->
                      account t p (t.cfg.cost.atomic_load + read_extra t p c);
                      record t p Ev_atomic_get;
                      continue k (Cell.read_committed c)))
          | E_atomic_set (c, v) ->
            Some
              (fun (k : (a, unit) continuation) ->
                p.resume <-
                  Some
                    (fun () ->
                      flush_buffer p;
                      account t p (t.cfg.cost.atomic_store + write_extra t p c);
                      Cell.write_committed c v;
                      record t p Ev_atomic_set;
                      continue k ()))
          | E_cas (c, expected, desired) ->
            Some
              (fun (k : (a, unit) continuation) ->
                p.resume <-
                  Some
                    (fun () ->
                      flush_buffer p;
                      account t p (t.cfg.cost.cas + write_extra t p c);
                      let ok = Cell.read_committed c == expected in
                      if ok then Cell.write_committed c desired;
                      record t p (Ev_cas ok);
                      continue k ok))
          | E_faa (c, n) ->
            Some
              (fun (k : (a, unit) continuation) ->
                p.resume <-
                  Some
                    (fun () ->
                      flush_buffer p;
                      account t p (t.cfg.cost.cas + write_extra t p c);
                      let old = Cell.read_committed c in
                      Cell.write_committed c (old + n);
                      record t p Ev_faa;
                      continue k old))
          | E_fence ->
            Some
              (fun (k : (a, unit) continuation) ->
                p.resume <-
                  Some
                    (fun () ->
                      flush_buffer p;
                      account t p t.cfg.cost.fence;
                      record t p Ev_fence;
                      continue k ()))
          | E_now ->
            Some
              (fun (k : (a, unit) continuation) ->
                p.resume <-
                  Some
                    (fun () ->
                      account t p t.cfg.cost.plain_op;
                      let burst =
                        if p.clock < p.extra_skew_until then p.extra_skew else 0
                      in
                      continue k (p.clock + p.skew + burst)))
          | E_self ->
            Some
              (fun (k : (a, unit) continuation) ->
                p.resume <- Some (fun () -> continue k p.pid))
          | E_yield ->
            Some
              (fun (k : (a, unit) continuation) ->
                p.resume <- Some (fun () -> continue k ()))
          | E_sleep_until target ->
            Some
              (fun (k : (a, unit) continuation) ->
                record t p (Ev_sleep target);
                p.state <- Sleeping target;
                p.resume <- Some (fun () -> continue k ()))
          | E_charge n ->
            Some
              (fun (k : (a, unit) continuation) ->
                p.resume <-
                  Some
                    (fun () ->
                      account t p n;
                      continue k ()))
          | E_hook hk ->
            (* Handled synchronously — no [p.resume], no [account], no PRNG
               draw, no step: a hook is a free annotation and must not
               perturb existing seeded schedules. The only observable action
               is the [Targeted] stall, which advances the victim's clock in
               place (as an injected in-core stall would). *)
            Some
              (fun (k : (a, unit) continuation) ->
                let i = hook_index hk in
                p.hook_counts.(i) <- p.hook_counts.(i) + 1;
                record t p (Ev_hook hk);
                (match t.cfg.strategy with
                | Targeted { victim; hook; skip; stall }
                  when victim = p.pid && hook = hk && p.hook_counts.(i) = skip + 1
                  ->
                  record t p (Ev_stall stall);
                  advance_to t p (p.clock + stall)
                | _ -> ());
                continue k ())
          | E_emit (ev, pa, pb) ->
            (* Handled synchronously, exactly like [E_hook]: no [p.resume],
               no [account], no PRNG draw, no step. Emitting a trace event
               costs no virtual time and is not a preemption point, so
               enabling tracing cannot perturb a seeded schedule. *)
            Some
              (fun (k : (a, unit) continuation) ->
                emit_to_sink t p ev pa pb;
                continue k ())
          | _ -> None) }

(* A sleeping core advances in bounded quanta so that rooster wake-ups fire
   at (approximately) the right virtual time relative to the other cores. *)
let sleep_quantum = 512

let drain_maybe (t : t) (p : proc) =
  match t.cfg.drain with
  | No_drain -> ()
  | Prob prob ->
    if (not (Queue.is_empty p.buffer)) && Qs_util.Prng.float p.prng 1.0 < prob then
      Cell.commit (Queue.pop p.buffer)

let fault_pid = function
  | Stall_at { pid; _ }
  | Crash_at { pid; _ }
  | Oversleep_spike { pid; _ }
  | Skew_burst { pid; _ }
  | Churn_at { pid; _ } ->
    pid

let fault_at = function
  | Stall_at { at; _ }
  | Crash_at { at; _ }
  | Oversleep_spike { at; _ }
  | Skew_burst { at; _ }
  | Churn_at { at; _ } ->
    at

(* Fire every pending fault whose trigger time has been reached. A stall is
   an in-core freeze: the clock advances (roosters crossed on the way still
   fire, as they do for sleeping processes) but the store buffer does NOT
   drain. A crash is a final descheduling: the core context-switches away,
   so the buffer DOES drain — modelling anything short of power loss, which
   is the faithful x86 behaviour (a dead thread's store buffer does not
   keep values hidden forever). *)
let apply_faults (t : t) (p : proc) =
  let rec loop () =
    match p.pending_faults with
    | f :: rest when fault_at f <= p.clock && p.state <> Crashed ->
      p.pending_faults <- rest;
      (match f with
      | Stall_at { ticks; _ } ->
        record t p (Ev_stall ticks);
        advance_to t p (p.clock + ticks)
      | Crash_at _ ->
        flush_buffer p;
        record t p Ev_crash;
        t.crashes <- t.crashes + 1;
        p.state <- Crashed
      | Oversleep_spike { extra; _ } ->
        record t p (Ev_oversleep extra);
        if p.next_rooster <> max_int then p.next_rooster <- p.next_rooster + extra
      | Skew_burst { until_; extra; _ } ->
        record t p (Ev_skew extra);
        p.extra_skew <- extra;
        p.extra_skew_until <- until_
      | Churn_at { ticks; _ } ->
        record t p (Ev_churn ticks);
        p.churn_pending <- p.churn_pending @ [ ticks ]);
      loop ()
    | _ -> ()
  in
  loop ()

let step (t : t) (p : proc) =
  t.steps <- t.steps + 1;
  if p.pending_faults <> [] then apply_faults t p;
  match p.state with
  | Sleeping target ->
    advance_to t p (min target (p.clock + sleep_quantum));
    if p.clock >= target then begin
      record t p Ev_wake;
      p.state <- Ready
    end
  | Ready ->
    drain_maybe t p;
    (match p.resume with
    | Some r ->
      p.resume <- None;
      r ()
    | None -> p.state <- Done)
  | Idle | Done | Failed _ | Crashed -> ()

let active p = match p.state with Ready | Sleeping _ -> true | _ -> false

(* Historical smallest-clock policy: cores advance together in virtual
   time, ties broken by a PRNG coin — true-parallelism modelling. *)
let pick_fair t =
  let best = ref None in
  Array.iter
    (fun p ->
      if active p then
        match !best with
        | None -> best := Some p
        | Some b ->
          if p.clock < b.clock || (p.clock = b.clock && Qs_util.Prng.bool t.prng) then
            best := Some p)
    t.procs;
  !best

(* PCT: run the highest-priority runnable process; at each due change
   point, demote it below every priority handed out so far. *)
let pick_pct t (ps : pct_state) =
  let argmax () =
    let best = ref None in
    Array.iter
      (fun p ->
        if active p then
          match !best with
          | None -> best := Some p
          | Some b -> if ps.prio.(p.pid) > ps.prio.(b.pid) then best := Some p)
      t.procs;
    !best
  in
  (match ps.change_points with
  | cp :: rest when t.steps >= cp -> (
    ps.change_points <- rest;
    match argmax () with
    | Some p ->
      ps.prio.(p.pid) <- ps.demote_next;
      ps.demote_next <- ps.demote_next - 1
    | None -> ())
  | _ -> ());
  argmax ()

let pick t = match t.pct with Some ps -> pick_pct t ps | None -> pick_fair t

let spawn t ~pid f =
  let p = t.procs.(pid) in
  p.state <- Ready;
  p.resume <- None;
  run_fiber t p f

let run_all t =
  let pct_mode = match t.pct with Some _ -> true | None -> false in
  let rec loop () =
    match pick t with
    | None -> ()
    | Some p ->
      (* Under PCT the schedule is serialized: when control moves to a
         different process, the one being descheduled takes a context
         switch, which drains its store buffer. Without this flush a
         deprioritized process's HP publication could stay invisible for
         unbounded virtual time — a behaviour real hardware cannot
         produce (context switches drain buffers), yielding false-positive
         UAF reports against schemes whose safety argument (Cadence's!)
         rests exactly on that drain. *)
      if pct_mode && t.last_scheduled <> p.pid then begin
        if t.last_scheduled >= 0 then flush_buffer t.procs.(t.last_scheduled);
        t.last_scheduled <- p.pid
      end;
      step t p;
      loop ()
  in
  loop ();
  (* Commit leftovers so post-run inspection sees final memory. *)
  Array.iter flush_buffer t.procs

let exec t ~pid f =
  let p = t.procs.(pid) in
  let result = ref None in
  spawn t ~pid (fun () -> result := Some (f ()));
  while active p do
    step t p
  done;
  match p.state with
  | Failed e ->
    t.failures <- List.filter (fun (pid', _) -> pid' <> pid) t.failures;
    p.state <- Idle;
    raise e
  | _ -> (
    match !result with
    | Some r -> r
    | None -> failwith "Scheduler.exec: fiber did not complete")

(* Distribute the armed master fault list to per-process pending queues,
   sorted by trigger time. *)
let rearm_faults t =
  Array.iter
    (fun p ->
      p.pending_faults <- [];
      p.churn_pending <- [])
    t.procs;
  List.iter
    (fun f ->
      let pid = fault_pid f in
      if pid >= 0 && pid < Array.length t.procs then begin
        let p = t.procs.(pid) in
        p.pending_faults <- f :: p.pending_faults
      end)
    t.armed_faults;
  Array.iter
    (fun p ->
      p.pending_faults <-
        List.stable_sort (fun a b -> compare (fault_at a) (fault_at b)) p.pending_faults)
    t.procs

let inject t faults =
  t.armed_faults <- faults;
  rearm_faults t

(* Zero every core clock (e.g. after a single-process pre-fill phase, so
   that experiment time starts when the workers do). Store buffers are
   drained first; rooster schedules restart; injected faults re-arm against
   the fresh time base; hook counts restart (so a [Targeted] skip counts
   from the worker phase, not the fill). *)
let reset_clocks t =
  Array.iter
    (fun p ->
      flush_buffer p;
      p.clock <- 0;
      p.extra_skew <- 0;
      p.extra_skew_until <- 0;
      Array.fill p.hook_counts 0 (Array.length p.hook_counts) 0;
      p.next_rooster <-
        (match t.cfg.rooster_interval with
        | None -> max_int
        | Some iv -> iv + draw_oversleep t.cfg p.prng))
    t.procs;
  rearm_faults t

let failures t = List.rev t.failures
let clock_of t ~pid = t.procs.(pid).clock

let skewed_now t ~pid =
  let p = t.procs.(pid) in
  let burst = if p.clock < p.extra_skew_until then p.extra_skew else 0 in
  p.clock + p.skew + burst

let max_clock t = Array.fold_left (fun acc p -> max acc p.clock) 0 t.procs
let flush_count t ~pid = t.procs.(pid).flushes
let rooster_fires t = t.rooster_fires
let steps t = t.steps
let crashes t = t.crashes
let crashed t ~pid = t.procs.(pid).state = Crashed

(* Pop the oldest fired-but-unconsumed churn request for this process.
   Plain OCaml state: polling from inside a worker body performs no effect
   and costs no virtual time, so churn-free runs (and the polling itself)
   cannot perturb seeded schedules. *)
let take_churn t ~pid =
  let p = t.procs.(pid) in
  match p.churn_pending with
  | [] -> None
  | ticks :: rest ->
    p.churn_pending <- rest;
    Some ticks
let hook_count t ~pid h = t.procs.(pid).hook_counts.(hook_index h)

(* Oldest-first contents of the event ring. *)
let recent_events t =
  let n = t.trace_len in
  let cap = max t.cfg.trace_capacity 1 in
  List.init n (fun i -> t.trace.((t.trace_pos - n + i + (2 * cap)) mod cap))
