open Effect.Deep

type drain_policy = No_drain | Prob of float

type cost_model = {
  plain_op : int;
  atomic_load : int;
  atomic_store : int;
  cas : int;
  fence : int;
  remote_access : int;
  ctx_switch : int;
  jitter : int;
  stall_prob : float;
  stall_max : int;
}

let default_cost =
  { plain_op = 1;
    (* pointer-chasing loads miss the cache for structures larger than L1;
       this is the dominant per-node cost the fence is measured against *)
    atomic_load = 8;
    atomic_store = 3;
    cas = 12;
    fence = 60;
    remote_access = 8;
    ctx_switch = 200;
    jitter = 1;
    stall_prob = 0.002;
    stall_max = 400 }

(* Scheduling strategies. [Fair] is the historical smallest-clock policy:
   cores advance together in virtual time, modelling true parallelism.
   [Pct] is probabilistic concurrency testing (Burckhardt et al.): each
   process gets a random priority, the highest-priority runnable process
   runs, and at [depth - 1] randomly chosen step counts the currently
   running process is demoted below everything else. Any schedule with a
   "bug depth" of [depth] is hit with probability >= 1/(n * steps^(depth-1))
   — far better than uniform random for ordering bugs. [Targeted] keeps
   Fair scheduling but stalls a chosen process the (skip+1)-th time it
   performs a given labelled hook (retire / scan / quiesce boundary). *)
type strategy =
  | Fair
  | Pct of { depth : int; seed : int }
  | Targeted of {
      victim : int;
      hook : Qs_intf.Runtime_intf.hook;
      skip : int;
      stall : int;
    }

(* Injected faults, applied when the target process's clock first reaches
   [at] (times are relative to the most recent {!reset_clocks}). All are
   deterministic: an explorer derives a fault plan from its seed and hands
   it to {!inject}. *)
type fault =
  | Stall_at of { pid : int; at : int; ticks : int }
      (* the process freezes for [ticks] without draining its store buffer
         (an in-core stall: cache miss storm, SMI, …); rooster wake-ups
         crossed during the stall still fire, as for sleeping processes *)
  | Crash_at of { pid : int; at : int }
      (* the process never executes again. Its final descheduling is a
         context switch, so its store buffer drains; its core stays up *)
  | Oversleep_spike of { pid : int; at : int; extra : int }
      (* the process's next rooster wake-up is delayed by [extra] ticks on
         top of the configured oversleep — possibly far beyond epsilon *)
  | Skew_burst of { pid : int; at : int; until_ : int; extra : int }
      (* the process's [now] reads [extra] ticks ahead during
         [at, until_) — a cross-core clock-skew burst *)
  | Churn_at of { pid : int; at : int; ticks : int }
      (* worker churn request: ask the process to leave the computation
         (unregister, donating its limbo lists), stay away for [ticks]
         virtual time, and re-register. The scheduler only queues the
         request — the worker body polls {!take_churn} between operations
         and performs the leave/rejoin itself, because registration is a
         property of the SMR scheme, not of the core. *)
  | Neutralize_at of { pid : int; at : int }
      (* a DEBRA+-style neutralization signal lands on the process: its
         in-flight operation is discontinued with
         [Runtime_intf.Neutralized] at its next delivery point — the first
         dispatch where the process has opted in via {!set_neutralizable}
         (a masked signal stays pending, like a blocked POSIX signal).
         Delivery replaces the suspended effect: the pending memory access
         never executes, which is what makes restarting safe after the
         scheme has reclaimed past the victim. The store buffer does NOT
         drain (an async signal is not a context switch). *)

type config = {
  n_cores : int;
  seed : int;
  cost : cost_model;
  store_buffer_capacity : int;
  drain : drain_policy;
  rooster_interval : int option;
  rooster_oversleep : int;
  rooster_oversleep_min : int;
  clock_skew : int;
  kill_roosters_at : int option;
  trace_capacity : int;
  strategy : strategy;
  pct_horizon : int;
}

type event =
  | Ev_read
  | Ev_write
  | Ev_atomic_get
  | Ev_atomic_set
  | Ev_cas of bool
  | Ev_faa
  | Ev_fence
  | Ev_rooster
  | Ev_stall of int
  | Ev_sleep of int
  | Ev_wake
  | Ev_hook of Qs_intf.Runtime_intf.hook
  | Ev_crash
  | Ev_oversleep of int
  | Ev_skew of int
  | Ev_churn of int
  | Ev_poison  (* a neutralization signal was posted to this process *)
  | Ev_neutralized  (* the signal was delivered: operation discontinued *)

let pp_hook fmt (h : Qs_intf.Runtime_intf.hook) =
  Format.pp_print_string fmt
    (match h with
    | Hook_retire -> "retire"
    | Hook_scan -> "scan"
    | Hook_quiesce -> "quiesce")

let pp_event fmt = function
  | Ev_read -> Format.pp_print_string fmt "read"
  | Ev_write -> Format.pp_print_string fmt "write"
  | Ev_atomic_get -> Format.pp_print_string fmt "atomic-get"
  | Ev_atomic_set -> Format.pp_print_string fmt "atomic-set"
  | Ev_cas ok -> Format.fprintf fmt "cas(%s)" (if ok then "ok" else "fail")
  | Ev_faa -> Format.pp_print_string fmt "faa"
  | Ev_fence -> Format.pp_print_string fmt "fence"
  | Ev_rooster -> Format.pp_print_string fmt "rooster-fire"
  | Ev_stall n -> Format.fprintf fmt "stall(%d)" n
  | Ev_sleep target -> Format.fprintf fmt "sleep(until %d)" target
  | Ev_wake -> Format.pp_print_string fmt "wake"
  | Ev_hook h -> Format.fprintf fmt "hook(%a)" pp_hook h
  | Ev_crash -> Format.pp_print_string fmt "crash"
  | Ev_oversleep n -> Format.fprintf fmt "oversleep-spike(%d)" n
  | Ev_skew n -> Format.fprintf fmt "skew-burst(%d)" n
  | Ev_churn n -> Format.fprintf fmt "churn(%d)" n
  | Ev_poison -> Format.pp_print_string fmt "poison"
  | Ev_neutralized -> Format.pp_print_string fmt "neutralized"

let default_config ~n_cores ~seed =
  { n_cores;
    seed;
    cost = default_cost;
    store_buffer_capacity = 64;
    drain = No_drain;
    rooster_interval = None;
    rooster_oversleep = 0;
    rooster_oversleep_min = 0;
    clock_skew = 0;
    kill_roosters_at = None;
    trace_capacity = 0;
    strategy = Fair;
    pct_horizon = 200_000 }

type pstate = Idle | Ready | Sleeping of int | Done | Failed of exn | Crashed

(* A suspended effect, waiting for its process to be scheduled — flattened
   into scratch fields on [proc] instead of an allocated descriptor. The
   [effc] case stores the payload (cell, value, amount) into the scratch
   slots, tags the shape in [r_tag], and returns a PREALLOCATED handler
   option whose closure only stashes the continuation: performing a hot
   effect allocates nothing beyond the fiber suspension the effect
   machinery itself requires. (The old representations allocated, per step,
   either a closure chain + option, or — after the first flattening — a
   GADT node + fresh closure + option: ~10 words/step of pure overhead.)

   The scratch slots are [Obj.t]-typed because one set of slots serves
   every effect shape; each tag maps to exactly one effect constructor, so
   [run_resume] knows the stored types exactly and the [Obj] casts only
   erase what the matching [effc] case wrote. *)
let rt_none = 0

let rt_read = 1

let rt_write = 2

let rt_aget = 3

let rt_aset = 4

let rt_cas = 5

let rt_faa = 6

let rt_fence = 7

let rt_now = 8

let rt_self = 9

let rt_unit = 10 (* yield, and the wake-up of [E_sleep_until] *)

let rt_charge = 11

type proc = {
  pid : int;
  mutable clock : int;
  skew : int;
  (* Store buffer: a preallocated ring of write tokens (capacity + slack for
     the transient push-then-overflow state). The previous [Queue.t]
     allocated a chain cell per buffered store. *)
  buf_cell : Obj.t array; (* type-erased target cells *)
  buf_uid : int array; (* matching pending-entry uids *)
  mutable buf_head : int;
  mutable buf_len : int;
  mutable state : pstate;
  (* Suspended-effect scratch slots (see the [rt_*] tags above). *)
  mutable r_tag : int;
  mutable r_k : Obj.t; (* the captured continuation *)
  mutable r_cell : Obj.t; (* cell operand *)
  mutable r_v : Obj.t; (* value operand (write / aset / cas-desired) *)
  mutable r_v2 : Obj.t; (* cas-expected *)
  mutable r_n : int; (* faa delta / charge amount *)
  mutable h_defer : ((Obj.t, unit) continuation -> unit) option;
      (* preallocated handler returned by [effc] for deferred effects;
         its closure stores the continuation into [r_k], nothing else *)
  mutable next_rooster : int;
  prng : Qs_util.Prng.t;
  mutable flushes : int;
  mutable extra_skew : int; (* skew-burst injection: active while ... *)
  mutable extra_skew_until : int; (* ... clock < extra_skew_until *)
  mutable pending_faults : fault list; (* sorted by trigger time *)
  mutable churn_pending : int list;
      (* fired [Churn_at] downtimes awaiting pickup by the worker body via
         {!take_churn}; meta-level state, polling it costs no effects *)
  mutable poison_pending : bool;
      (* a neutralization signal posted ([Neutralize_at] fault or
         [E_neutralize] from a scheme) and not yet delivered *)
  mutable neutralizable : bool;
      (* has the process opted in to signal delivery ({!set_neutralizable})?
         While false the signal stays pending, like a masked POSIX signal.
         While [poison_pending] the process never runs inline (see [step]),
         so delivery timing is identical on both execution paths. *)
  hook_counts : int array; (* per hook kind, for the Targeted strategy *)
}

(* PCT bookkeeping: [prio.(pid)] is the process's current priority (higher
   runs first); [change_points] the remaining demotion step counts, sorted;
   [demote_next] the next (ever lower) priority handed out by a demotion. *)
type pct_state = {
  prio : int array;
  mutable change_points : int list;
  mutable demote_next : int;
}

type t = {
  cfg : config;
  procs : proc array;
  prng : Qs_util.Prng.t;
  pct : pct_state option;
  trace_on : bool; (* cfg.trace_capacity > 0, hoisted off the hot path *)
  (* Flat copies of the hot [cfg.cost] fields: one load instead of three
     ([t] -> [cfg] -> [cost] -> field) on every accounted step. *)
  c_plain : int;
  c_aload : int;
  c_astore : int;
  c_cas : int;
  c_fence : int;
  c_remote : int;
  c_jitter : int;
  c_stall_max : int;
  stall_thresh : int;
      (* stall_prob rescaled to [0, max_int]: the per-step stall roll is one
         PRNG draw and an integer compare, no float arithmetic. -1 = never
         (prob 0 draws nothing, as before). *)
  drain_thresh : int; (* same encoding for the [Prob] drain policy *)
  buf_capacity : int;
  mutable last_scheduled : int; (* pid of the last process stepped (PCT) *)
  mutable armed_faults : fault list; (* master copy, re-armed by reset_clocks *)
  mutable crashes : int;
  mutable neutralize_fires : int; (* delivered (not merely posted) signals *)
  mutable rooster_fires : int;
  mutable steps : int;
  mutable failures : (int * exn) list;
  trace : (int * int * event) array; (* ring: (pid, clock, event) *)
  mutable trace_pos : int;
  mutable trace_len : int;
  mutable pick_best : int;
  mutable pick_lim : int;
  mutable pick_lim_steps : int;
      (* Set by the pick that chose the process about to step: the minimum
         clock among the OTHER active processes (second-min of the scan),
         [max_int] under [exec] (which steps its one process
         unconditionally), [min_int] when inline execution is illegal for
         the dispatch (PCT, ties, > 62 processes). See the [op_*] fast
         paths. *) (* scratch for [pick_*]: no per-step allocation *)
  mutable pick_clock : int;
  clocks : int array;
      (* mirror of [procs.(i).clock], updated by [advance_to] /
         [advance_rooster] / [reset_clocks]: the per-step fair pick scans
         one flat cache line instead of touching every [proc] record *)
  mutable active_mask : int;
      (* bit [pid] set iff the process is Ready or Sleeping; maintained at
         the (rare) state transitions, used by the (hot) picks. Only
         trusted when [n_cores <= 62] — beyond that the picks fall back to
         scanning [procs]. *)
  mutable sink : Qs_intf.Runtime_intf.sink option;
      (* trace sink for E_emit / rooster wake-ups; None = tracing off *)
}

type _ Effect.t +=
  | E_atomic_get : 'a Cell.t -> 'a Effect.t
  | E_atomic_set : 'a Cell.t * 'a -> unit Effect.t
  | E_cas : 'a Cell.t * 'a * 'a -> bool Effect.t
  | E_faa : int Cell.t * int -> int Effect.t
  | E_read : 'a Cell.t -> 'a Effect.t
  | E_write : 'a Cell.t * 'a -> unit Effect.t
  | E_fence : unit Effect.t
  | E_now : int Effect.t
  | E_self : int Effect.t
  | E_yield : unit Effect.t
  | E_sleep_until : int -> unit Effect.t
  | E_charge : int -> unit Effect.t
  | E_hook : Qs_intf.Runtime_intf.hook -> unit Effect.t
  | E_emit : Qs_intf.Runtime_intf.event * int * int -> unit Effect.t
  | E_neutralize : int -> unit Effect.t

let hook_index : Qs_intf.Runtime_intf.hook -> int = function
  | Hook_retire -> 0
  | Hook_scan -> 1
  | Hook_quiesce -> 2

(* Rooster oversleep, uniform in [min, max]. Skips the PRNG draw entirely
   when the bound is 0 so that pre-existing seeded schedules are bit-for-bit
   unchanged. *)
let draw_oversleep cfg prng =
  if cfg.rooster_oversleep = 0 then cfg.rooster_oversleep_min
  else
    let lo = min cfg.rooster_oversleep_min cfg.rooster_oversleep in
    lo + Qs_util.Prng.int prng (cfg.rooster_oversleep - lo + 1)

(* In-module copy of {!Qs_util.Prng}'s SplitMix advance — same constants,
   same stream (Prng's stream-identity tests pin the constants; keep in
   sync). The scheduler draws on every accounted step and on fair-pick
   ties, and without flambda the cross-module [Prng.next] call is never
   inlined; this local copy is. *)
let sm_gamma = 0x1E3779B97F4A7C15

let sm_mix_a = 0x2F58476D1CE4E5B9

let sm_mix_b = 0x14D049BB133111EB

(* --- owned-schedule cursor (see the op_* fast paths) --------------------

   [step] publishes the scheduler and process whose fiber is currently
   executing; the [op_*] entry points consult it to decide whether an
   operation may run inline, without suspending. Domain-local because a
   pool runs one isolated simulator per worker domain; the slots are
   [Obj.t] so that per-step publication stores no allocated option. *)
type cursor = {
  mutable live : bool;
      (* true only inside [step]'s dispatch. MUST stay the first field:
         [my_cursor] may read it out of the DLS slot's uninitialized
         sentinel (a [ref 0]), whose field 0 is [0] — i.e. [false], the
         correct answer. *)
  mutable cur_t : Obj.t; (* the scheduler driving the running fiber *)
  mutable cur_p : Obj.t; (* its currently running process *)
  mutable lim : int;
      (* Fast-path clock limit, set per dispatch: the minimum clock of
         every OTHER active process (fair mode), [max_int] under PCT or
         [exec], [min_int] when inline execution is off the table for this
         dispatch (pending faults, > 62 processes). Nothing can move
         another process's clock while this fiber runs — only [step] does,
         and only this process is stepping — so [p.clock < lim] is an
         exact strict-minimality test for the whole inline run. A mid-run
         [spawn] activates a new process and resets both limits. *)
  mutable lim_steps : int;
      (* Fast-path step limit: under PCT the running process keeps the
         highest priority — and so keeps being picked, with no draws —
         until the next change point fires, which happens at the first
         pick with [t.steps >= cp]. Inline ops are legal exactly while
         [t.steps < cp]. [max_int] in fair mode and under [exec],
         [min_int] when disabled. *)
}

let cursor_key : cursor Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { live = false;
        cur_t = Obj.repr 0;
        cur_p = Obj.repr 0;
        lim = min_int;
        lim_steps = min_int })

(* [Domain.DLS.get] is a cross-module call (no flambda) plus a growth
   check — ~10ns on every operation, paid even when the fast path misses.
   The primitive behind it compiles to a single register read, and a DLS
   key is [(slot_index, initializer)] (pinned by OCaml 5.1, which the
   toolchain image bakes in), so the hot entry points read the slot
   directly. The run drivers ([run_all]/[exec]/[spawn]) still go through
   [Domain.DLS.get], which initializes the slot; until that has happened
   in a domain the slot is out of range or holds the stdlib sentinel, and
   [my_cursor] answers with a dead cursor either way. *)
external dls_state : unit -> Obj.t array = "%dls_get"

let cursor_idx : int = fst (Obj.magic cursor_key : int * Obj.t)

let dead_cursor : cursor =
  { live = false;
    cur_t = Obj.repr 0;
    cur_p = Obj.repr 0;
    lim = min_int;
    lim_steps = min_int }

let[@inline] my_cursor () : cursor =
  let st = dls_state () in
  if cursor_idx < Array.length st then
    (Obj.magic (Array.unsafe_get st cursor_idx) : cursor)
  else dead_cursor

let[@inline] draw (g : Qs_util.Prng.t) =
  let s = g.state + sm_gamma in
  g.state <- s;
  let z = (s lxor (s lsr 30)) * sm_mix_a in
  let z = (z lxor (z lsr 27)) * sm_mix_b in
  z lxor (z lsr 31)

let obj_unit : Obj.t = Obj.repr 0

(* Preallocated handler for the synchronous effects (E_hook / E_emit): all
   their work happens in the [effc] body, so the returned closure only
   resumes — it captures nothing and one copy serves every process. *)
let sync_handler : ((unit, unit) continuation -> unit) option =
  Some (fun k -> continue k ())

let create cfg =
  let prng = Qs_util.Prng.create ~seed:cfg.seed in
  let make_proc pid =
    let p_prng = Qs_util.Prng.split prng in
    let skew = if cfg.clock_skew = 0 then 0 else Qs_util.Prng.int p_prng (cfg.clock_skew + 1) in
    let next_rooster =
      match cfg.rooster_interval with
      | None -> max_int
      | Some iv -> iv + draw_oversleep cfg p_prng
    in
    let p =
      { pid;
        clock = 0;
        skew;
        buf_cell = Array.make (cfg.store_buffer_capacity + 2) obj_unit;
        buf_uid = Array.make (cfg.store_buffer_capacity + 2) 0;
        buf_head = 0;
        buf_len = 0;
        state = Idle;
        r_tag = rt_none;
        r_k = obj_unit;
        r_cell = obj_unit;
        r_v = obj_unit;
        r_v2 = obj_unit;
        r_n = 0;
        h_defer = None;
        next_rooster;
        prng = p_prng;
        flushes = 0;
        extra_skew = 0;
        extra_skew_until = 0;
        pending_faults = [];
        churn_pending = [];
        poison_pending = false;
        neutralizable = false;
        hook_counts = Array.make 3 0 }
    in
    p.h_defer <- Some (fun k -> p.r_k <- Obj.repr k);
    p
  in
  let pct =
    match cfg.strategy with
    | Pct { depth; seed } ->
      let pct_prng = Qs_util.Prng.create ~seed in
      let prio = Array.init cfg.n_cores (fun i -> i) in
      Qs_util.Prng.shuffle pct_prng prio;
      let points =
        List.init (max 0 (depth - 1)) (fun _ ->
            Qs_util.Prng.int pct_prng (max 1 cfg.pct_horizon))
      in
      Some
        { prio;
          change_points = List.sort compare points;
          demote_next = -1 }
    | Fair | Targeted _ -> None
  in
  let thresh_of_prob p =
    if p <= 0. then -1
    else if p >= 1. then max_int
    else int_of_float (p *. float_of_int max_int)
  in
  { cfg;
    procs = Array.init cfg.n_cores make_proc;
    prng;
    pct;
    trace_on = cfg.trace_capacity > 0;
    c_plain = cfg.cost.plain_op;
    c_aload = cfg.cost.atomic_load;
    c_astore = cfg.cost.atomic_store;
    c_cas = cfg.cost.cas;
    c_fence = cfg.cost.fence;
    c_remote = cfg.cost.remote_access;
    c_jitter = cfg.cost.jitter;
    c_stall_max = cfg.cost.stall_max;
    stall_thresh = thresh_of_prob cfg.cost.stall_prob;
    drain_thresh =
      (match cfg.drain with No_drain -> -1 | Prob p -> thresh_of_prob p);
    buf_capacity = cfg.store_buffer_capacity;
    last_scheduled = -1;
    armed_faults = [];
    crashes = 0;
    neutralize_fires = 0;
    rooster_fires = 0;
    steps = 0;
    failures = [];
    trace = Array.make (max cfg.trace_capacity 1) (0, 0, Ev_read);
    trace_pos = 0;
    trace_len = 0;
    pick_best = -1;
      pick_lim = min_int;
      pick_lim_steps = min_int;
    pick_clock = 0;
    clocks = Array.make cfg.n_cores 0;
    active_mask = 0;
    sink = None }

let set_sink t s = t.sink <- s

(* Active = Ready or Sleeping (the states [pick_*] may schedule). The mask
   is maintained at every state transition; transitions between Ready and
   Sleeping don't change it. Pids above 62 would overflow the bit mask —
   [pick_fair] scans [procs] directly for such configs, so the mask can
   simply ignore them. *)
let[@inline] set_active (t : t) (p : proc) =
  if p.pid <= 62 then t.active_mask <- t.active_mask lor (1 lsl p.pid)

let[@inline] clear_active (t : t) (p : proc) =
  if p.pid <= 62 then t.active_mask <- t.active_mask land lnot (1 lsl p.pid)

(* Forward a trace event to the installed sink. Stamped with the process's
   raw core clock (no skew): trace timelines should be comparable across
   processes, and skew is a property of [now] reads, not of when things
   happened. *)
let emit_to_sink (t : t) (p : proc) ev a b =
  match t.sink with
  | None -> ()
  | Some s -> s.record ~pid:p.pid ~time:p.clock ~ev ~a ~b

(* Callers gate on [t.trace_on] so that the [event] argument (some carry a
   payload and would allocate) is never even constructed on untraced runs —
   the common case: exploration leaves the debug ring off. *)
let record (t : t) (p : proc) ev =
  t.trace.(t.trace_pos) <- (p.pid, p.clock, ev);
  t.trace_pos <- (t.trace_pos + 1) mod t.cfg.trace_capacity;
  if t.trace_len < t.cfg.trace_capacity then t.trace_len <- t.trace_len + 1

(* Post a neutralization signal to [pid]. Meta-level state only: no virtual
   time, no PRNG draw, no memory effect — posting is schedule-neutral, like
   [emit]. If the target is the process currently running a fiber, its
   cursor's inline limits are cleared so that its next operation suspends
   (and hence passes the delivery check in [step]) on both execution
   paths. *)
let post_poison (t : t) pid =
  if pid >= 0 && pid < Array.length t.procs then begin
    let v = t.procs.(pid) in
    match v.state with
    | Ready | Sleeping _ ->
      v.poison_pending <- true;
      if t.trace_on then record t v Ev_poison;
      let cur = my_cursor () in
      if cur.live && Obj.repr v == cur.cur_p then begin
        cur.lim <- min_int;
        cur.lim_steps <- min_int
      end
    | Idle | Done | Failed _ | Crashed -> ()
  end

(* --- store-buffer ring --------------------------------------------------- *)

let[@inline] buf_push (p : proc) cell uid =
  let arr = p.buf_cell in
  let i = p.buf_head + p.buf_len in
  let i = if i >= Array.length arr then i - Array.length arr else i in
  Array.unsafe_set arr i cell;
  Array.unsafe_set p.buf_uid i uid;
  p.buf_len <- p.buf_len + 1

let[@inline] buf_pop_commit (p : proc) =
  let arr = p.buf_cell in
  let h = p.buf_head in
  let cell = Array.unsafe_get arr h in
  let uid = Array.unsafe_get p.buf_uid h in
  Array.unsafe_set arr h obj_unit;
  let h' = h + 1 in
  p.buf_head <- (if h' >= Array.length arr then 0 else h');
  p.buf_len <- p.buf_len - 1;
  Cell.commit_erased cell uid

let flush_buffer p =
  if p.buf_len > 0 then begin
    while p.buf_len > 0 do
      buf_pop_commit p
    done;
    p.flushes <- p.flushes + 1
  end

let roosters_alive t fire_time =
  match t.cfg.kill_roosters_at with None -> true | Some k -> fire_time < k

(* Advance [p]'s clock to [target], firing every rooster wake-up crossed on
   the way. A rooster wake-up forces a context switch on [p]'s core, which
   drains [p]'s store buffer — the visibility guarantee Cadence needs.
   [next_rooster] is [max_int] when roosters are off, so the hot path is a
   single compare; the rooster-crossing loop lives out of line. *)
let rec advance_rooster (t : t) (p : proc) target =
  match t.cfg.rooster_interval with
  | Some iv when p.next_rooster <= target && roosters_alive t p.next_rooster ->
    p.clock <- max p.clock p.next_rooster;
    flush_buffer p;
    t.rooster_fires <- t.rooster_fires + 1;
    if t.trace_on then record t p Ev_rooster;
    emit_to_sink t p Qs_intf.Runtime_intf.Ev_rooster_wake (-1) (-1);
    p.clock <- p.clock + t.cfg.cost.ctx_switch;
    p.next_rooster <- p.next_rooster + iv + draw_oversleep t.cfg p.prng;
    advance_rooster t p target
  | _ ->
    if target > p.clock then p.clock <- target;
    t.clocks.(p.pid) <- p.clock

let[@inline] advance_to (t : t) (p : proc) target =
  if p.next_rooster <= target then advance_rooster t p target
  else if target > p.clock then begin
    p.clock <- target;
    Array.unsafe_set t.clocks p.pid target
  end

let[@inline] account (t : t) (p : proc) cost =
  if t.c_jitter = 1 then begin
    (* Fast path for the default cost model: ONE SplitMix draw serves both
       per-step rolls. Bit 0 is the jitter coin; bits 1..62 are the stall
       roll, whose range [0, max_int] matches the [stall_thresh] scale
       exactly (63-bit ints: [d lsr 1] spans [0, 2^62-1] = [0, max_int]).
       SplitMix output bits are independent, so the two decisions stay
       uncorrelated. Occasional long stalls model cache misses, interrupts
       and preemptions: the asynchrony that lets one process race far
       ahead of another. *)
    let d = draw p.prng in
    if t.stall_thresh >= 0 && d lsr 1 < t.stall_thresh then begin
      let stall = Qs_util.Prng.int p.prng (t.c_stall_max + 1) in
      if stall > 0 && t.trace_on then record t p (Ev_stall stall);
      advance_to t p (p.clock + cost + (d land 1) + stall)
    end
    else advance_to t p (p.clock + cost + (d land 1))
  end
  else begin
    let jitter =
      if t.c_jitter = 0 then 0 else Qs_util.Prng.int p.prng (t.c_jitter + 1)
    in
    let stall =
      if
        t.stall_thresh >= 0
        && Qs_util.Prng.next p.prng land max_int < t.stall_thresh
      then Qs_util.Prng.int p.prng (t.c_stall_max + 1)
      else 0
    in
    if stall > 0 && t.trace_on then record t p (Ev_stall stall);
    advance_to t p (p.clock + cost + jitter + stall)
  end

(* Cache-coherence cost model: accessing a line last written by another core
   costs a remote miss. Reads downgrade the line to shared; the next commit
   of a write re-acquires ownership (see Cell.commit). *)
let[@inline] read_extra (t : t) (p : proc) (c : _ Cell.t) =
  let o = Cell.owner c in
  if o <> p.pid && o <> -1 then begin
    Cell.set_owner c (-1);
    t.c_remote
  end
  else 0

let[@inline] write_extra (t : t) (p : proc) (c : _ Cell.t) =
  let o = Cell.owner c in
  let extra = if o <> p.pid && o <> -1 then t.c_remote else 0 in
  Cell.set_owner c p.pid;
  extra

let run_fiber (t : t) (p : proc) f =
  match_with f ()
    { retc =
        (fun () ->
          p.state <- Done;
          clear_active t p);
      exnc =
        (fun e ->
          p.state <- Failed e;
          clear_active t p;
          t.failures <- (p.pid, e) :: t.failures);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          (* Hot constructors first: the match compiles to a comparison
             chain over extensible-variant tags, and E_read / E_write /
             E_atomic_get dominate every workload profile. Each deferred
             case stashes its payload into the scratch slots and returns
             the process's preallocated [h_defer] — the whole dispatch
             allocates nothing. The [Obj.magic] re-types the handler's
             continuation argument from [Obj.t] to this effect's answer
             type [a]; [run_resume] undoes the erasure tag by tag. Side
             effects (E_sleep_until's state change, the synchronous
             E_hook / E_emit bodies) run here in the [effc] body, which the
             machinery calls at the same point it would call the returned
             closure, so the observable order is unchanged. *)
          match eff with
          | E_read c ->
            p.r_tag <- rt_read;
            p.r_cell <- Obj.repr c;
            (Obj.magic p.h_defer : ((a, unit) continuation -> unit) option)
          | E_write (c, v) ->
            p.r_tag <- rt_write;
            p.r_cell <- Obj.repr c;
            p.r_v <- Obj.repr v;
            (Obj.magic p.h_defer : ((a, unit) continuation -> unit) option)
          | E_atomic_get c ->
            p.r_tag <- rt_aget;
            p.r_cell <- Obj.repr c;
            (Obj.magic p.h_defer : ((a, unit) continuation -> unit) option)
          | E_atomic_set (c, v) ->
            p.r_tag <- rt_aset;
            p.r_cell <- Obj.repr c;
            p.r_v <- Obj.repr v;
            (Obj.magic p.h_defer : ((a, unit) continuation -> unit) option)
          | E_cas (c, expected, desired) ->
            p.r_tag <- rt_cas;
            p.r_cell <- Obj.repr c;
            p.r_v2 <- Obj.repr expected;
            p.r_v <- Obj.repr desired;
            (Obj.magic p.h_defer : ((a, unit) continuation -> unit) option)
          | E_faa (c, n) ->
            p.r_tag <- rt_faa;
            p.r_cell <- Obj.repr c;
            p.r_n <- n;
            (Obj.magic p.h_defer : ((a, unit) continuation -> unit) option)
          | E_now ->
            p.r_tag <- rt_now;
            (Obj.magic p.h_defer : ((a, unit) continuation -> unit) option)
          | E_fence ->
            p.r_tag <- rt_fence;
            (Obj.magic p.h_defer : ((a, unit) continuation -> unit) option)
          | E_hook hk ->
            (* Handled synchronously — no descriptor, no [account], no PRNG
               draw, no step: a hook is a free annotation and must not
               perturb existing seeded schedules. The only observable action
               is the [Targeted] stall, which advances the victim's clock in
               place (as an injected in-core stall would). *)
            let i = hook_index hk in
            p.hook_counts.(i) <- p.hook_counts.(i) + 1;
            if t.trace_on then record t p (Ev_hook hk);
            (match t.cfg.strategy with
            | Targeted { victim; hook; skip; stall }
              when victim = p.pid && hook = hk && p.hook_counts.(i) = skip + 1
              ->
              if t.trace_on then record t p (Ev_stall stall);
              advance_rooster t p (p.clock + stall)
            | _ -> ());
            (Obj.magic sync_handler : ((a, unit) continuation -> unit) option)
          | E_emit (ev, pa, pb) ->
            (* Handled synchronously, exactly like [E_hook]: no descriptor,
               no [account], no PRNG draw, no step. Emitting a trace event
               costs no virtual time and is not a preemption point, so
               enabling tracing cannot perturb a seeded schedule. *)
            emit_to_sink t p ev pa pb;
            (Obj.magic sync_handler : ((a, unit) continuation -> unit) option)
          | E_neutralize target ->
            (* Synchronous, like [E_emit]: posting a signal is meta-level
               state, free of virtual time and randomness. Delivery to the
               target happens at ITS next dispatch (see [step]). *)
            post_poison t target;
            (Obj.magic sync_handler : ((a, unit) continuation -> unit) option)
          | E_self ->
            p.r_tag <- rt_self;
            (Obj.magic p.h_defer : ((a, unit) continuation -> unit) option)
          | E_yield ->
            p.r_tag <- rt_unit;
            (Obj.magic p.h_defer : ((a, unit) continuation -> unit) option)
          | E_sleep_until target ->
            if t.trace_on then record t p (Ev_sleep target);
            p.state <- Sleeping target;
            p.r_tag <- rt_unit;
            (Obj.magic p.h_defer : ((a, unit) continuation -> unit) option)
          | E_charge n ->
            p.r_tag <- rt_charge;
            p.r_n <- n;
            (Obj.magic p.h_defer : ((a, unit) continuation -> unit) option)
          | _ -> None) }

(* Execute one suspended effect descriptor. Reentrant: [continue] runs the
   fiber up to its next effect, which refills the scratch slots (or
   finishes via retc/exnc) — so every slot must be read into a local
   before [continue]. The [Obj.obj] casts restore exactly the types the
   matching [effc] case erased: each tag maps to one effect constructor
   with a fixed answer type (read/aget: the cell's element, erased to
   [Obj.t] on both sides; cas: bool; faa/now/self: int; the rest: unit).
   The match is a dense jump table over the [rt_*] tags. *)
let run_resume (t : t) (p : proc) tag =
  match tag with
  | 1 (* rt_read *) ->
    let c : Obj.t Cell.t = Obj.obj p.r_cell in
    let k : (Obj.t, unit) continuation = Obj.obj p.r_k in
    account t p (t.c_plain + read_extra t p c);
    if t.trace_on then record t p Ev_read;
    continue k (Cell.read_own p.pid c)
  | 2 (* rt_write *) ->
    let c : Obj.t Cell.t = Obj.obj p.r_cell in
    let k : (unit, unit) continuation = Obj.obj p.r_k in
    account t p t.c_plain;
    buf_push p (Obj.repr c) (Cell.enqueue_write p.pid c (Obj.obj p.r_v : Obj.t));
    if p.buf_len > t.buf_capacity then buf_pop_commit p;
    if t.trace_on then record t p Ev_write;
    continue k ()
  | 3 (* rt_aget *) ->
    let c : Obj.t Cell.t = Obj.obj p.r_cell in
    let k : (Obj.t, unit) continuation = Obj.obj p.r_k in
    account t p (t.c_aload + read_extra t p c);
    if t.trace_on then record t p Ev_atomic_get;
    continue k (Cell.read_committed c)
  | 4 (* rt_aset *) ->
    let c : Obj.t Cell.t = Obj.obj p.r_cell in
    let k : (unit, unit) continuation = Obj.obj p.r_k in
    flush_buffer p;
    account t p (t.c_astore + write_extra t p c);
    Cell.write_committed c (Obj.obj p.r_v : Obj.t);
    if t.trace_on then record t p Ev_atomic_set;
    continue k ()
  | 5 (* rt_cas *) ->
    let c : Obj.t Cell.t = Obj.obj p.r_cell in
    let k : (bool, unit) continuation = Obj.obj p.r_k in
    let expected : Obj.t = Obj.obj p.r_v2 in
    let desired : Obj.t = Obj.obj p.r_v in
    flush_buffer p;
    account t p (t.c_cas + write_extra t p c);
    let ok = Cell.read_committed c == expected in
    if ok then Cell.write_committed c desired;
    if t.trace_on then record t p (Ev_cas ok);
    continue k ok
  | 6 (* rt_faa *) ->
    let c : int Cell.t = Obj.obj p.r_cell in
    let k : (int, unit) continuation = Obj.obj p.r_k in
    let n = p.r_n in
    flush_buffer p;
    account t p (t.c_cas + write_extra t p c);
    let old = Cell.read_committed c in
    Cell.write_committed c (old + n);
    if t.trace_on then record t p Ev_faa;
    continue k old
  | 7 (* rt_fence *) ->
    let k : (unit, unit) continuation = Obj.obj p.r_k in
    flush_buffer p;
    account t p t.c_fence;
    if t.trace_on then record t p Ev_fence;
    continue k ()
  | 8 (* rt_now *) ->
    let k : (int, unit) continuation = Obj.obj p.r_k in
    account t p t.c_plain;
    let burst = if p.clock < p.extra_skew_until then p.extra_skew else 0 in
    continue k (p.clock + p.skew + burst)
  | 9 (* rt_self *) ->
    let k : (int, unit) continuation = Obj.obj p.r_k in
    continue k p.pid
  | 10 (* rt_unit *) ->
    let k : (unit, unit) continuation = Obj.obj p.r_k in
    continue k ()
  | 11 (* rt_charge *) ->
    let k : (unit, unit) continuation = Obj.obj p.r_k in
    account t p p.r_n;
    continue k ()
  | _ (* rt_none *) -> ()

(* A sleeping core advances in bounded quanta so that rooster wake-ups fire
   at (approximately) the right virtual time relative to the other cores. *)
let sleep_quantum = 512

let[@inline] drain_maybe (t : t) (p : proc) =
  if
    t.drain_thresh >= 0
    && p.buf_len > 0
    && draw p.prng land max_int < t.drain_thresh
  then buf_pop_commit p

let fault_pid = function
  | Stall_at { pid; _ }
  | Crash_at { pid; _ }
  | Oversleep_spike { pid; _ }
  | Skew_burst { pid; _ }
  | Churn_at { pid; _ }
  | Neutralize_at { pid; _ } ->
    pid

let fault_at = function
  | Stall_at { at; _ }
  | Crash_at { at; _ }
  | Oversleep_spike { at; _ }
  | Skew_burst { at; _ }
  | Churn_at { at; _ }
  | Neutralize_at { at; _ } ->
    at

(* Fire every pending fault whose trigger time has been reached. A stall is
   an in-core freeze: the clock advances (roosters crossed on the way still
   fire, as they do for sleeping processes) but the store buffer does NOT
   drain. A crash is a final descheduling: the core context-switches away,
   so the buffer DOES drain — modelling anything short of power loss, which
   is the faithful x86 behaviour (a dead thread's store buffer does not
   keep values hidden forever). *)
let apply_faults (t : t) (p : proc) =
  let rec loop () =
    match p.pending_faults with
    | f :: rest when fault_at f <= p.clock && p.state <> Crashed ->
      p.pending_faults <- rest;
      (match f with
      | Stall_at { ticks; _ } ->
        if t.trace_on then record t p (Ev_stall ticks);
        advance_to t p (p.clock + ticks)
      | Crash_at _ ->
        flush_buffer p;
        if t.trace_on then record t p Ev_crash;
        t.crashes <- t.crashes + 1;
        p.state <- Crashed;
        clear_active t p
      | Oversleep_spike { extra; _ } ->
        if t.trace_on then record t p (Ev_oversleep extra);
        if p.next_rooster <> max_int then p.next_rooster <- p.next_rooster + extra
      | Skew_burst { until_; extra; _ } ->
        if t.trace_on then record t p (Ev_skew extra);
        p.extra_skew <- extra;
        p.extra_skew_until <- until_
      | Churn_at { ticks; _ } ->
        if t.trace_on then record t p (Ev_churn ticks);
        p.churn_pending <- p.churn_pending @ [ ticks ]
      | Neutralize_at _ ->
        (* The signal lands now; delivery happens in [step]'s Ready branch
           once the process is inside an interruptible region. Observable
           in the trace sink so the explorer's coverage sees
           fault-injected neutralizations too. *)
        emit_to_sink t p Qs_intf.Runtime_intf.Ev_neutralize p.pid (-1);
        post_poison t p.pid);
      loop ()
    | _ -> ()
  in
  loop ()

let step (t : t) (cur : cursor) (p : proc) =
  t.steps <- t.steps + 1;
  (* Constructor match, not [<> []]: the polymorphic compare is a C call,
     paid on every step. *)
  (match p.pending_faults with [] -> () | _ :: _ -> apply_faults t p);
  match p.state with
  | Sleeping target ->
    advance_to t p (min target (p.clock + sleep_quantum));
    if p.clock >= target then begin
      if t.trace_on then record t p Ev_wake;
      p.state <- Ready
    end
  | Ready ->
    drain_maybe t p;
    let tag = p.r_tag in
    if tag = rt_none then begin
      p.state <- Done;
      clear_active t p
    end
    else if p.poison_pending && p.neutralizable then begin
      (* Deliver the neutralization signal: the suspended effect never
         executes — its continuation is discontinued with [Neutralized],
         unwinding the victim's operation (data structures release
         unpublished nodes on the way out) so the caller can restart it.
         No virtual time, no drain: an async signal is not a context
         switch. *)
      p.r_tag <- rt_none;
      p.poison_pending <- false;
      t.neutralize_fires <- t.neutralize_fires + 1;
      if t.trace_on then record t p Ev_neutralized;
      let k : (Obj.t, unit) continuation = Obj.obj p.r_k in
      cur.cur_t <- Obj.repr t;
      cur.cur_p <- Obj.repr p;
      cur.lim <- min_int;
      cur.lim_steps <- min_int;
      cur.live <- true;
      discontinue k Qs_intf.Runtime_intf.Neutralized;
      cur.live <- false
    end
    else begin
      p.r_tag <- rt_none;
      cur.cur_t <- Obj.repr t;
      cur.cur_p <- Obj.repr p;
      (* A fault still pending after [apply_faults] has a future trigger
         time; inline ops would sail past it without firing it, so they
         stay disabled for this dispatch. A pending-but-masked poison also
         disables inline execution: delivery is checked here, at dispatch,
         and the suspended and inline paths must reach that check at the
         same operations. *)
      (match p.pending_faults with
      | [] when not p.poison_pending ->
        cur.lim <- t.pick_lim;
        cur.lim_steps <- t.pick_lim_steps
      | _ ->
        cur.lim <- min_int;
        cur.lim_steps <- min_int);
      cur.live <- true;
      run_resume t p tag;
      cur.live <- false
    end
  | Idle | Done | Failed _ | Crashed -> ()

(* --- owned-schedule fast paths ------------------------------------------

   Deferred-resume semantics says an operation executes when the scheduler
   NEXT schedules its process, with every other process free to interleave
   in between. But when the running process's clock is strictly below every
   other active clock, the fair pick is a foregone conclusion: it consumes
   no randomness (unique minimum — see [pick_fair]) and returns the same
   process. In that case performing the effect, parking the fiber, and
   re-picking is pure overhead (~46ns of fiber switching per operation on
   the reference box), so the [op_*] entry points execute the operation
   inline instead — replicating [step]'s observable actions exactly (step
   count, drain roll, accounting draws, trace records, in that order) and
   skipping only the suspension. Outcomes are bit-identical either way;
   test/test_sim.ml pins this.

   Guards: Fair-family strategies only (PCT serializes differently and
   does per-switch flushes), no pending faults on the running process (the
   step preliminaries would fire them), and a strict (no-tie) minimum so
   the skipped pick draws nothing. *)

let[@inline] fast_ready (cur : cursor) =
  cur.live
  && (Obj.obj cur.cur_p : proc).clock < cur.lim
  && (Obj.obj cur.cur_t : t).steps < cur.lim_steps

let op_read (c : 'a Cell.t) : 'a =
  let cur = my_cursor () in
  if fast_ready cur then begin
    let t : t = Obj.obj cur.cur_t in
    let p : proc = Obj.obj cur.cur_p in
    t.steps <- t.steps + 1;
    drain_maybe t p;
    account t p (t.c_plain + read_extra t p c);
    if t.trace_on then record t p Ev_read;
    Cell.read_own p.pid c
  end
  else Effect.perform (E_read c)

let op_write (c : 'a Cell.t) (v : 'a) : unit =
  let cur = my_cursor () in
  if fast_ready cur then begin
    let t : t = Obj.obj cur.cur_t in
    let p : proc = Obj.obj cur.cur_p in
    t.steps <- t.steps + 1;
    drain_maybe t p;
    account t p t.c_plain;
    buf_push p (Obj.repr c) (Cell.enqueue_write p.pid c v);
    if p.buf_len > t.buf_capacity then buf_pop_commit p;
    if t.trace_on then record t p Ev_write
  end
  else Effect.perform (E_write (c, v))

let op_get (c : 'a Cell.t) : 'a =
  let cur = my_cursor () in
  if fast_ready cur then begin
    let t : t = Obj.obj cur.cur_t in
    let p : proc = Obj.obj cur.cur_p in
    t.steps <- t.steps + 1;
    drain_maybe t p;
    account t p (t.c_aload + read_extra t p c);
    if t.trace_on then record t p Ev_atomic_get;
    Cell.read_committed c
  end
  else Effect.perform (E_atomic_get c)

let op_set (c : 'a Cell.t) (v : 'a) : unit =
  let cur = my_cursor () in
  if fast_ready cur then begin
    let t : t = Obj.obj cur.cur_t in
    let p : proc = Obj.obj cur.cur_p in
    t.steps <- t.steps + 1;
    drain_maybe t p;
    flush_buffer p;
    account t p (t.c_astore + write_extra t p c);
    Cell.write_committed c v;
    if t.trace_on then record t p Ev_atomic_set
  end
  else Effect.perform (E_atomic_set (c, v))

let op_cas (c : 'a Cell.t) (expected : 'a) (desired : 'a) : bool =
  let cur = my_cursor () in
  if fast_ready cur then begin
    let t : t = Obj.obj cur.cur_t in
    let p : proc = Obj.obj cur.cur_p in
    t.steps <- t.steps + 1;
    drain_maybe t p;
    flush_buffer p;
    account t p (t.c_cas + write_extra t p c);
    let ok = Cell.read_committed c == expected in
    if ok then Cell.write_committed c desired;
    if t.trace_on then record t p (Ev_cas ok);
    ok
  end
  else Effect.perform (E_cas (c, expected, desired))

let op_faa (c : int Cell.t) (n : int) : int =
  let cur = my_cursor () in
  if fast_ready cur then begin
    let t : t = Obj.obj cur.cur_t in
    let p : proc = Obj.obj cur.cur_p in
    t.steps <- t.steps + 1;
    drain_maybe t p;
    flush_buffer p;
    account t p (t.c_cas + write_extra t p c);
    let old = Cell.read_committed c in
    Cell.write_committed c (old + n);
    if t.trace_on then record t p Ev_faa;
    old
  end
  else Effect.perform (E_faa (c, n))

let op_fence () : unit =
  let cur = my_cursor () in
  if fast_ready cur then begin
    let t : t = Obj.obj cur.cur_t in
    let p : proc = Obj.obj cur.cur_p in
    t.steps <- t.steps + 1;
    drain_maybe t p;
    flush_buffer p;
    account t p t.c_fence;
    if t.trace_on then record t p Ev_fence
  end
  else Effect.perform E_fence

let op_now () : int =
  let cur = my_cursor () in
  if fast_ready cur then begin
    let t : t = Obj.obj cur.cur_t in
    let p : proc = Obj.obj cur.cur_p in
    t.steps <- t.steps + 1;
    drain_maybe t p;
    account t p t.c_plain;
    let burst = if p.clock < p.extra_skew_until then p.extra_skew else 0 in
    p.clock + p.skew + burst
  end
  else Effect.perform E_now

let op_self () : int =
  let cur = my_cursor () in
  if fast_ready cur then begin
    let t : t = Obj.obj cur.cur_t in
    let p : proc = Obj.obj cur.cur_p in
    t.steps <- t.steps + 1;
    drain_maybe t p;
    p.pid
  end
  else Effect.perform E_self

let op_charge (n : int) : unit =
  let cur = my_cursor () in
  if fast_ready cur then begin
    let t : t = Obj.obj cur.cur_t in
    let p : proc = Obj.obj cur.cur_p in
    t.steps <- t.steps + 1;
    drain_maybe t p;
    account t p n
  end
  else Effect.perform (E_charge n)

let op_yield () : unit =
  let cur = my_cursor () in
  if fast_ready cur then begin
    let t : t = Obj.obj cur.cur_t in
    let p : proc = Obj.obj cur.cur_p in
    t.steps <- t.steps + 1;
    drain_maybe t p
  end
  else Effect.perform E_yield

(* Hooks and trace emissions are not preemption points: their [effc] bodies
   run synchronously, consume no step, no virtual time and no randomness,
   and resume immediately. So whenever ANY dispatch is live — strategy,
   faults and clock position irrelevant — they can run inline; the effect
   round trip bought nothing but ~46ns of fiber switching. *)

let op_hook (hk : Qs_intf.Runtime_intf.hook) : unit =
  let cur = my_cursor () in
  if cur.live then begin
    let t : t = Obj.obj cur.cur_t in
    let p : proc = Obj.obj cur.cur_p in
    let i = hook_index hk in
    p.hook_counts.(i) <- p.hook_counts.(i) + 1;
    if t.trace_on then record t p (Ev_hook hk);
    match t.cfg.strategy with
    | Targeted { victim; hook; skip; stall }
      when victim = p.pid && hook = hk && p.hook_counts.(i) = skip + 1 ->
      if t.trace_on then record t p (Ev_stall stall);
      advance_rooster t p (p.clock + stall)
    | _ -> ()
  end
  else Effect.perform (E_hook hk)

let op_emit (ev : Qs_intf.Runtime_intf.event) (pa : int) (pb : int) : unit =
  let cur = my_cursor () in
  if cur.live then begin
    let t : t = Obj.obj cur.cur_t in
    let p : proc = Obj.obj cur.cur_p in
    emit_to_sink t p ev pa pb
  end
  else Effect.perform (E_emit (ev, pa, pb))

let op_neutralize (target : int) : unit =
  let cur = my_cursor () in
  if cur.live then begin
    let t : t = Obj.obj cur.cur_t in
    post_poison t target
  end
  else Effect.perform (E_neutralize target)

let active p = match p.state with Ready | Sleeping _ -> true | _ -> false

(* Historical smallest-clock policy: cores advance together in virtual
   time, ties broken by a PRNG coin — true-parallelism modelling. Returns
   the index of the chosen process, -1 when none is runnable; scratch
   results live in mutable fields so a pick allocates nothing. *)
(* Tie-breaking is uniform among the processes at the minimal clock, paid
   for with a single draw — and only when there IS a tie. (The previous
   sequential per-comparison coin was biased towards later pids — for three
   tied processes it picked them with probabilities 1/4, 1/4, 1/2 — and
   drew once per tied comparison.) A unique minimum consumes no randomness
   at all, which is what lets the owned-schedule fast path below prove a
   pick's outcome without running it. *)
let pick_fair_slow t =
  t.pick_best <- -1;
  t.pick_lim <- min_int;
  t.pick_lim_steps <- min_int;
  let ties = ref 0 in
  let procs = t.procs in
  for i = 0 to Array.length procs - 1 do
    let p = Array.unsafe_get procs i in
    if active p then
      if t.pick_best < 0 || p.clock < t.pick_clock then begin
        t.pick_best <- i;
        t.pick_clock <- p.clock;
        ties := 1
      end
      else if p.clock = t.pick_clock then incr ties
  done;
  if !ties <= 1 then t.pick_best
  else begin
    let k = ref (Qs_util.Prng.int t.prng !ties) in
    let best = ref t.pick_best in
    (try
       for i = 0 to Array.length procs - 1 do
         let p = Array.unsafe_get procs i in
         if active p && p.clock = t.pick_clock then begin
           if !k = 0 then begin
             best := i;
             raise_notrace Exit
           end;
           decr k
         end
       done
     with Exit -> ());
    !best
  end

(* Same policy driven by the activity bit mask and the flat clock mirror:
   the whole scan touches one or two cache lines instead of four-plus
   [proc] records. *)
let pick_fair t =
  let n = Array.length t.procs in
  if n > 62 then pick_fair_slow t
  else begin
    let mask = t.active_mask in
    if mask = 0 then -1
    else begin
      t.pick_best <- -1;
      let ties = ref 0 in
      let m2 = ref max_int in
      let clocks = t.clocks in
      for i = 0 to n - 1 do
        if mask land (1 lsl i) <> 0 then begin
          let c = Array.unsafe_get clocks i in
          if t.pick_best < 0 || c < t.pick_clock then begin
            if t.pick_best >= 0 then m2 := t.pick_clock;
            t.pick_best <- i;
            t.pick_clock <- c;
            ties := 1
          end
          else begin
            if c < !m2 then m2 := c;
            if c = t.pick_clock then incr ties
          end
        end
      done;
      (* Second-lowest active clock doubles as the inline-execution limit
         for the chosen process: while its clock stays strictly below every
         other active clock, re-running this pick would choose it again
         without drawing. A tie makes [m2] equal the minimum itself, which
         correctly disables the fast path. *)
      t.pick_lim <- !m2;
      t.pick_lim_steps <- max_int;
      if !ties <= 1 then t.pick_best
      else begin
        let k = ref (Qs_util.Prng.int t.prng !ties) in
        let best = ref t.pick_best in
        (try
           for i = 0 to n - 1 do
             if
               mask land (1 lsl i) <> 0
               && Array.unsafe_get clocks i = t.pick_clock
             then begin
               if !k = 0 then begin
                 best := i;
                 raise_notrace Exit
               end;
               decr k
             end
           done
         with Exit -> ());
        !best
      end
    end
  end

(* PCT: run the highest-priority runnable process; at each due change
   point, demote it below every priority handed out so far. *)
let pick_pct t (ps : pct_state) =
  (* Between change points the argmax is pinned to the running process, so
     its ops may run inline until the step counter reaches the next change
     point (clock position is irrelevant to a priority pick). *)
  t.pick_lim <- max_int;
  t.pick_lim_steps <-
    (match ps.change_points with cp :: _ -> cp | [] -> max_int);
  let argmax () =
    t.pick_best <- -1;
    let n = Array.length t.procs in
    if n > 62 then begin
      let procs = t.procs in
      for i = 0 to n - 1 do
        let p = Array.unsafe_get procs i in
        if active p && (t.pick_best < 0 || ps.prio.(p.pid) > t.pick_clock)
        then begin
          t.pick_best <- i;
          t.pick_clock <- ps.prio.(p.pid)
        end
      done
    end
    else begin
      let mask = t.active_mask in
      for i = 0 to n - 1 do
        if
          mask land (1 lsl i) <> 0
          && (t.pick_best < 0 || ps.prio.(i) > t.pick_clock)
        then begin
          t.pick_best <- i;
          t.pick_clock <- ps.prio.(i)
        end
      done
    end;
    t.pick_best
  in
  (match ps.change_points with
  | cp :: rest when t.steps >= cp -> (
    ps.change_points <- rest;
    let i = argmax () in
    if i >= 0 then begin
      ps.prio.(t.procs.(i).pid) <- ps.demote_next;
      ps.demote_next <- ps.demote_next - 1
    end)
  | _ -> ());
  argmax ()

let pick t = match t.pct with Some ps -> pick_pct t ps | None -> pick_fair t

let spawn t ~pid f =
  let p = t.procs.(pid) in
  p.state <- Ready;
  set_active t p;
  p.r_tag <- rt_none;
  (* The fiber runs here until its first suspension — possibly from inside
     another process's step (dynamic membership spawns mid-run). Its
     initial effects must take the suspension path, and the spawner's
     cursor must come back intact. *)
  let cur = Domain.DLS.get cursor_key in
  let saved = cur.live in
  cur.live <- false;
  run_fiber t p f;
  (* The new process is active now; any limit cached for the spawner's
     dispatch (or an enclosing [exec] loop) is stale, so inline execution
     stays off until the next pick. *)
  cur.lim <- min_int;
  cur.lim_steps <- min_int;
  t.pick_lim <- min_int;
  t.pick_lim_steps <- min_int;
  cur.live <- saved

let run_all_pct t =
  let cur = Domain.DLS.get cursor_key in
  let pct_mode = match t.pct with Some _ -> true | None -> false in
  let rec loop () =
    let i = pick t in
    if i >= 0 then begin
      let p = t.procs.(i) in
      (* Under PCT the schedule is serialized: when control moves to a
         different process, the one being descheduled takes a context
         switch, which drains its store buffer. Without this flush a
         deprioritized process's HP publication could stay invisible for
         unbounded virtual time — a behaviour real hardware cannot
         produce (context switches drain buffers), yielding false-positive
         UAF reports against schemes whose safety argument (Cadence's!)
         rests exactly on that drain. *)
      if pct_mode && t.last_scheduled <> p.pid then begin
        if t.last_scheduled >= 0 then flush_buffer t.procs.(t.last_scheduled);
        t.last_scheduled <- p.pid
      end;
      step t cur p;
      loop ()
    end
  in
  loop ();
  (* Commit leftovers so post-run inspection sees final memory. *)
  Array.iter flush_buffer t.procs

let run_all t =
  match t.pct with
  | Some _ -> run_all_pct t
  | None ->
    (* Fair mode: the tight loop skips the per-step strategy dispatch and
       the PCT context-switch bookkeeping entirely. *)
    let cur = Domain.DLS.get cursor_key in
    let rec loop () =
      let i = pick_fair t in
      if i >= 0 then begin
        step t cur (Array.unsafe_get t.procs i);
        loop ()
      end
    in
    loop ();
    Array.iter flush_buffer t.procs

let exec t ~pid f =
  let p = t.procs.(pid) in
  let result = ref None in
  spawn t ~pid (fun () -> result := Some (f ()));
  let cur = Domain.DLS.get cursor_key in
  (* [exec] steps its one process unconditionally — no pick, no fairness —
     so every operation is inline-eligible regardless of other clocks.
     (A mid-run [spawn] resets this; see [spawn].) *)
  t.pick_lim <- max_int;
  t.pick_lim_steps <- max_int;
  while active p do
    step t cur p
  done;
  match p.state with
  | Failed e ->
    t.failures <- List.filter (fun (pid', _) -> pid' <> pid) t.failures;
    p.state <- Idle;
    raise e
  | _ -> (
    match !result with
    | Some r -> r
    | None -> failwith "Scheduler.exec: fiber did not complete")

(* Distribute the armed master fault list to per-process pending queues,
   sorted by trigger time. *)
let rearm_faults t =
  Array.iter
    (fun p ->
      p.pending_faults <- [];
      p.churn_pending <- [];
      p.poison_pending <- false;
      p.neutralizable <- false)
    t.procs;
  List.iter
    (fun f ->
      let pid = fault_pid f in
      if pid >= 0 && pid < Array.length t.procs then begin
        let p = t.procs.(pid) in
        p.pending_faults <- f :: p.pending_faults
      end)
    t.armed_faults;
  Array.iter
    (fun p ->
      p.pending_faults <-
        List.stable_sort (fun a b -> compare (fault_at a) (fault_at b)) p.pending_faults)
    t.procs

let inject t faults =
  t.armed_faults <- faults;
  rearm_faults t

(* Zero every core clock (e.g. after a single-process pre-fill phase, so
   that experiment time starts when the workers do). Store buffers are
   drained first; rooster schedules restart; injected faults re-arm against
   the fresh time base; hook counts restart (so a [Targeted] skip counts
   from the worker phase, not the fill). *)
let reset_clocks t =
  Array.iter
    (fun p ->
      flush_buffer p;
      p.clock <- 0;
      t.clocks.(p.pid) <- 0;
      p.extra_skew <- 0;
      p.extra_skew_until <- 0;
      Array.fill p.hook_counts 0 (Array.length p.hook_counts) 0;
      p.next_rooster <-
        (match t.cfg.rooster_interval with
        | None -> max_int
        | Some iv -> iv + draw_oversleep t.cfg p.prng))
    t.procs;
  rearm_faults t

let failures t = List.rev t.failures
let clock_of t ~pid = t.procs.(pid).clock

let skewed_now t ~pid =
  let p = t.procs.(pid) in
  let burst = if p.clock < p.extra_skew_until then p.extra_skew else 0 in
  p.clock + p.skew + burst

let max_clock t = Array.fold_left (fun acc p -> max acc p.clock) 0 t.procs
let flush_count t ~pid = t.procs.(pid).flushes
let rooster_fires t = t.rooster_fires
let steps t = t.steps
let crashes t = t.crashes
let crashed t ~pid = t.procs.(pid).state = Crashed

(* Pop the oldest fired-but-unconsumed churn request for this process.
   Plain OCaml state: polling from inside a worker body performs no effect
   and costs no virtual time, so churn-free runs (and the polling itself)
   cannot perturb seeded schedules. *)
let take_churn t ~pid =
  let p = t.procs.(pid) in
  match p.churn_pending with
  | [] -> None
  | ticks :: rest ->
    p.churn_pending <- rest;
    Some ticks

(* Opt in to (or mask) neutralization-signal delivery for this process.
   Plain meta-level state, exactly like {!take_churn}: toggling it performs
   no effect and costs no virtual time, so worker loops can bracket every
   operation without perturbing seeded schedules. *)
let set_neutralizable t ~pid v = t.procs.(pid).neutralizable <- v
let neutralize_fires t = t.neutralize_fires
let hook_count t ~pid h = t.procs.(pid).hook_counts.(hook_index h)

(* Oldest-first contents of the event ring. *)
let recent_events t =
  let n = t.trace_len in
  let cap = max t.cfg.trace_capacity 1 in
  List.init n (fun i -> t.trace.((t.trace_pos - n + i + (2 * cap)) mod cap))
