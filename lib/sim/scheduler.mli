(** Deterministic multicore simulator.

    The simulator models [n_cores] cores, each running exactly one pinned
    worker process (as in the paper's evaluation, where every process is
    pinned to a distinct core), plus one rooster per core modelled as a
    timer event. Workers are OCaml effect-handler coroutines: every shared
    memory access performs an effect, which is a preemption point.

    {b Time.} Each core has its own virtual clock, advanced by the cost of
    the operations {e that core} executes (see {!cost_model}). The scheduler
    always steps the runnable core with the smallest clock, so cores proceed
    in parallel virtual time: [n] cores each executing [k] ticks of work
    finish at virtual time [k], not [n*k]. Throughput numbers are
    operations per virtual time unit.

    {b TSO.} Plain writes go to a per-process store buffer (capacity
    {!config.store_buffer_capacity}); they commit to memory on a fence, on a
    rooster-induced context switch, on capacity overflow, on any atomic
    operation by the same process (x86 [lock] semantics), or — under
    [Prob p] drain — spontaneously with probability [p] per step.

    {b Roosters.} With [rooster_interval = Some t], each core flushes its
    worker's store buffer every [t] ticks (plus a bounded random oversleep),
    charging the worker a context-switch cost. This is the mechanism
    Cadence's safety relies on.

    {b Determinism.} Everything — interleaving, jitter, oversleep, skew —
    derives from [seed]. *)

type drain_policy =
  | No_drain  (** adversarial: only fences/atomics/roosters/capacity drain *)
  | Prob of float  (** commit the oldest buffered store with prob. p per step *)

type cost_model = {
  plain_op : int;      (** plain read/write, clock read *)
  atomic_load : int;   (** atomic load — a pointer-chasing node access *)
  atomic_store : int;  (** SC store *)
  cas : int;           (** compare-and-set / fetch-and-add *)
  fence : int;         (** full barrier — the cost hazard pointers pay *)
  remote_access : int; (** added when touching a line owned by another core *)
  ctx_switch : int;    (** charged to the worker at each rooster wake-up *)
  jitter : int;        (** uniform random extra in [0, jitter] per operation *)
  stall_prob : float;
      (** probability, per operation, of a long stall — modelling cache
          misses, interrupts and preemptions, the asynchrony that lets one
          process race far ahead of another *)
  stall_max : int;     (** stall length is uniform in [0, stall_max] *)
}

val default_cost : cost_model
(** plain 1, atomic load 8 (pointer chase), atomic store 3, cas 12,
    fence 60, remote 8, ctx switch 200, jitter 1, stall 0.002/400 —
    ratios in line with published x86 measurements. *)

(** Scheduling strategies (see "Schedule exploration" in EXPERIMENTS.md).

    - [Fair] — the historical smallest-clock policy: cores advance together
      in virtual time, modelling true parallelism. This is the default and
      is what every throughput experiment uses.
    - [Pct {depth; seed}] — probabilistic concurrency testing (Burckhardt
      et al., ASPLOS 2010). Each process gets a random priority; the
      highest-priority runnable process runs; at [depth - 1] step counts
      drawn uniformly from [\[0, pct_horizon)] the running process is
      demoted below every priority handed out so far. Any bug of ordering
      depth [d <= depth] is found with probability at least
      [1/(n * horizon^(d-1))] per seed — far better than uniform random
      interleaving for rare orderings such as "scan completes entirely
      inside the window where a hazard-pointer publication is still
      buffered". The PCT randomness is governed by the strategy's own
      [seed], independent of {!config.seed}, so the same memory-timing seed
      can be explored under many schedules. Because PCT serializes
      execution, each deschedule of a process is treated as a context
      switch and drains its store buffer (real hardware cannot keep a
      descheduled thread's stores hidden).
    - [Targeted] — keep [Fair] scheduling, but the [(skip+1)]-th time
      process [victim] performs labelled hook [hook]
      ({!Qs_intf.Runtime_intf.hook}: retire / scan / quiesce boundary) it
      stalls in place for [stall] ticks without draining its store buffer.
      This is the precision tool: "freeze this process right as it begins a
      scan". *)
type strategy =
  | Fair
  | Pct of { depth : int; seed : int }
  | Targeted of {
      victim : int;
      hook : Qs_intf.Runtime_intf.hook;
      skip : int;
      stall : int;
    }

(** Injected faults. Each fires once, when the target process's core clock
    first reaches [at] (relative to the most recent {!reset_clocks}; faults
    re-arm on reset). All are deterministic given the fault list.

    - [Stall_at] — the process freezes for [ticks] {e without} draining its
      store buffer (an in-core stall: cache-miss storm, SMI). Rooster
      wake-ups crossed during the stall still fire.
    - [Crash_at] — the process never runs again. Its final descheduling is
      a context switch, so its store buffer drains; its core (and rooster)
      stay up. Histories of crashed runs contain incomplete operations, so
      the explorer skips linearizability checking for them.
    - [Oversleep_spike] — the process's next rooster wake-up is delayed by
      [extra] ticks on top of the configured oversleep, possibly far beyond
      the [epsilon] the SMR schemes assume.
    - [Skew_burst] — the process's [now] reads [extra] ticks ahead during
      [\[at, until_)] : a cross-core clock-skew burst.
    - [Churn_at] — worker churn request: the process should leave the
      computation (unregister, donating its limbo lists to the scheme's
      orphan pool), stay away for [ticks] virtual time, then re-register.
      The scheduler only {e queues} the request; the worker body polls
      {!take_churn} between operations and performs the leave/rejoin
      itself (registration belongs to the SMR scheme, not the core).
    - [Neutralize_at] — a DEBRA+-style neutralization signal lands on the
      process: its in-flight operation is discontinued with
      {!Qs_intf.Runtime_intf.Neutralized} at its next dispatch {e inside an
      interruptible region} (see {!set_neutralizable}; a masked signal
      stays pending, like a blocked POSIX signal). The suspended memory
      access never executes — which is what makes restarting safe after the
      scheme has reclaimed past the victim — and the store buffer does not
      drain (an async signal is not a context switch). *)
type fault =
  | Stall_at of { pid : int; at : int; ticks : int }
  | Crash_at of { pid : int; at : int }
  | Oversleep_spike of { pid : int; at : int; extra : int }
  | Skew_burst of { pid : int; at : int; until_ : int; extra : int }
  | Churn_at of { pid : int; at : int; ticks : int }
  | Neutralize_at of { pid : int; at : int }

type config = {
  n_cores : int;
  seed : int;
  cost : cost_model;
  store_buffer_capacity : int;  (** oldest store commits when full (hw ~64) *)
  drain : drain_policy;
  rooster_interval : int option;  (** [None]: no roosters *)
  rooster_oversleep : int;
      (** max extra sleep per rooster wake-up, drawn per event. The
          effective oversleep is uniform in
          [\[min rooster_oversleep_min rooster_oversleep, rooster_oversleep\]].
          {b Default bound:} experiments configure this at most [epsilon/2]
          (see [Qs_harness.Sim_exp]), keeping total rooster slack within the
          [epsilon] that Cadence's age check [now - ts >= T + epsilon]
          budgets for; oversleep beyond [epsilon] voids the safety argument
          (that is what {!Oversleep_spike} and [rooster_oversleep_min] are
          for — negative tests). *)
  rooster_oversleep_min : int;
      (** minimum extra sleep per wake-up (default 0). With
          [rooster_oversleep = 0] the oversleep is exactly this constant and
          no PRNG draw is consumed — set it above [epsilon] to prove the
          age-check bound is load-bearing. *)
  clock_skew : int;  (** per-core constant offset in [0, clock_skew] *)
  kill_roosters_at : int option;
      (** stop firing roosters after this virtual time (fault injection) *)
  trace_capacity : int;
      (** keep the last N events in a ring for debugging; 0 disables *)
  strategy : strategy;  (** scheduling policy; default [Fair] *)
  pct_horizon : int;
      (** PCT change points are drawn from [\[0, pct_horizon)] steps;
          should be ≥ the expected step count of the run (default 200_000) *)
}

(** Events recorded in the debug trace ring (when [trace_capacity] > 0). *)
type event =
  | Ev_read
  | Ev_write
  | Ev_atomic_get
  | Ev_atomic_set
  | Ev_cas of bool  (** success? *)
  | Ev_faa
  | Ev_fence
  | Ev_rooster
  | Ev_stall of int
  | Ev_sleep of int
  | Ev_wake
  | Ev_hook of Qs_intf.Runtime_intf.hook
  | Ev_crash
  | Ev_oversleep of int
  | Ev_skew of int
  | Ev_churn of int
  | Ev_poison  (** a neutralization signal was posted to this process *)
  | Ev_neutralized  (** delivery: the victim's operation was discontinued *)

val pp_hook : Format.formatter -> Qs_intf.Runtime_intf.hook -> unit
val pp_event : Format.formatter -> event -> unit

val default_config : n_cores:int -> seed:int -> config

type t

val create : config -> t

(** {1 Effects performed by {!Sim_runtime}} *)

type _ Effect.t +=
  | E_atomic_get : 'a Cell.t -> 'a Effect.t
  | E_atomic_set : 'a Cell.t * 'a -> unit Effect.t
  | E_cas : 'a Cell.t * 'a * 'a -> bool Effect.t
  | E_faa : int Cell.t * int -> int Effect.t
  | E_read : 'a Cell.t -> 'a Effect.t
  | E_write : 'a Cell.t * 'a -> unit Effect.t
  | E_fence : unit Effect.t
  | E_now : int Effect.t
  | E_self : int Effect.t
  | E_yield : unit Effect.t
  | E_sleep_until : int -> unit Effect.t
  | E_charge : int -> unit Effect.t
  | E_hook : Qs_intf.Runtime_intf.hook -> unit Effect.t
  | E_emit : Qs_intf.Runtime_intf.event * int * int -> unit Effect.t
  | E_neutralize : int -> unit Effect.t

(** {1 Trace sink} *)

val set_sink : t -> Qs_intf.Runtime_intf.sink option -> unit
(** Install (or remove) the trace sink that receives
    {!Qs_intf.Runtime_intf.RUNTIME.emit} events and rooster wake-ups.
    Events are stamped with the emitting process's raw core clock (no
    skew), so timelines are comparable across processes. Like hooks,
    emission is handled synchronously — no virtual time, no PRNG draw, no
    preemption — so installing a sink cannot perturb a seeded schedule. *)

val inject : t -> fault list -> unit
(** Arm a fault plan. Faults fire during subsequent {!run_all} (or {!exec})
    steps, each when its process's clock first reaches its [at];
    {!reset_clocks} re-arms the full list against the new time base, so the
    usual order is [inject; fill; reset_clocks; run_all]. Replaces any
    previously armed plan. *)

(** {1 Running processes} *)

(** {2 Operation entry points}

    What {!Sim_runtime} calls. Each is semantically [Effect.perform] of the
    corresponding effect — and that is exactly what it does whenever any
    other process could legally run next. But when the calling process's
    clock is strictly below every other active clock (so the fair pick is
    deterministic and draw-free), the operation executes inline, skipping
    the fiber suspension; outcomes are bit-identical either way. *)

val op_read : 'a Cell.t -> 'a
val op_write : 'a Cell.t -> 'a -> unit
val op_get : 'a Cell.t -> 'a
val op_set : 'a Cell.t -> 'a -> unit
val op_cas : 'a Cell.t -> 'a -> 'a -> bool
val op_faa : int Cell.t -> int -> int
val op_fence : unit -> unit
val op_now : unit -> int
val op_self : unit -> int
val op_charge : int -> unit
val op_yield : unit -> unit

val op_hook : Qs_intf.Runtime_intf.hook -> unit
(** Hooks and emissions are not preemption points, so these two run inline
    under any strategy whenever a dispatch is live. *)

val op_emit : Qs_intf.Runtime_intf.event -> int -> int -> unit

val op_neutralize : int -> unit
(** Post a neutralization signal to the given pid (DEBRA+'s
    [pthread_kill] analogue — what {!Qs_intf.Runtime_intf.RUNTIME.neutralize}
    performs on the simulator). Posting is synchronous and schedule-neutral
    (no virtual time, no PRNG draw, not a preemption point for the caller);
    delivery to the target happens at its next dispatch inside an
    interruptible region. Posting to a finished/crashed/unspawned process
    is a no-op. *)

val exec : t -> pid:int -> (unit -> 'a) -> 'a
(** [exec t ~pid f] runs [f] as process [pid]'s fiber to completion, alone,
    advancing that core's clock. Used for initialisation (the paper fills
    the structure from a single process) and for sequential tests.
    Re-raises any exception of [f]. *)

val spawn : t -> pid:int -> (unit -> unit) -> unit
(** Register the body of process [pid] for the next {!run_all}. [pid] must
    be in [0, n_cores). *)

val run_all : t -> unit
(** Run all spawned processes to completion under the min-clock policy.
    Worker exceptions are recorded, not re-raised — see {!failures}. *)

val reset_clocks : t -> unit
(** Zero every core clock and restart rooster schedules; used after a
    single-process initialisation phase so that measured time starts with
    the workers. Buffers are drained first. *)

val failures : t -> (int * exn) list
(** Processes that died with an exception during the last {!run_all}. *)

val clock_of : t -> pid:int -> int
(** Core-local virtual clock (without skew). *)

val skewed_now : t -> pid:int -> int

val max_clock : t -> int

val flush_count : t -> pid:int -> int
(** Number of store-buffer drains performed by/for this process. *)

val rooster_fires : t -> int
(** Total rooster wake-ups fired so far. *)

val steps : t -> int
(** Total effect-steps executed, across all processes. *)

val crashes : t -> int
(** Number of {!Crash_at} faults that have fired. *)

val crashed : t -> pid:int -> bool
(** Has this process been killed by a {!Crash_at} fault? *)

val take_churn : t -> pid:int -> int option
(** Pop the oldest fired-but-unconsumed {!Churn_at} request for this
    process ([Some downtime_ticks]), or [None]. Plain meta-level state:
    polling performs no effect and costs no virtual time, so worker loops
    may poll every operation without perturbing seeded schedules. *)

val set_neutralizable : t -> pid:int -> bool -> unit
(** Opt the process in to (or mask it from) neutralization-signal delivery.
    Worker bodies bracket each data-structure operation with
    [set_neutralizable t ~pid true ... false]; a signal landing while
    masked stays pending and is delivered at the first dispatch after the
    next opt-in. Plain meta-level state, like {!take_churn}: toggling
    performs no effect and costs no virtual time, so churn-free and
    neutralization-free runs execute bit-identically to older schedules. *)

val neutralize_fires : t -> int
(** Number of neutralization signals {e delivered} (operations actually
    discontinued) — posted-but-still-pending signals don't count. *)

val hook_count : t -> pid:int -> Qs_intf.Runtime_intf.hook -> int
(** How many times this process has performed the given labelled hook since
    the last {!reset_clocks} (or since creation). *)

val recent_events : t -> (int * int * event) list
(** The trace ring's contents, oldest first: (pid, core clock, event).
    Empty unless [config.trace_capacity] > 0. *)
