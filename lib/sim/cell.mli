(** Shared-memory locations for the TSO simulator.

    A cell holds a {e committed} value — what main memory contains — plus a
    set of {e pending} writes that live in some process's store buffer and
    are invisible to every other process. The scheduler owns the policy of
    when pending writes commit (fences, context switches, buffer capacity,
    probabilistic drain); this module only provides the mechanics.

    Cells also carry a last-owner tag used by the scheduler's cache-coherence
    cost model (an access to a line owned by another core is charged a
    remote-miss penalty). *)

type 'a t

type buffered = B : 'a t * int -> buffered
(** A store sitting in a store buffer: the target cell and the unique id of
    the pending entry. *)

val make : 'a -> 'a t
(** A fresh cell whose committed value is the argument. *)

val read_own : int -> 'a t -> 'a
(** [read_own pid c] implements TSO store-to-load forwarding: the newest
    pending write by [pid] if there is one, otherwise the committed value.
    Pending writes of other processes are never visible. *)

val read_committed : 'a t -> 'a
(** The value in main memory, ignoring all store buffers. *)

val write_committed : 'a t -> 'a -> unit
(** Store directly to main memory (used for SC stores and CAS results). *)

val enqueue_write : int -> 'a t -> 'a -> int
(** [enqueue_write pid c v] registers a pending write and returns its uid,
    to put (with the cell) in [pid]'s store buffer. *)

val commit : buffered -> unit
(** Make a pending write visible in main memory. Idempotent: committing a
    token twice is a no-op. *)

val commit_erased : Obj.t -> int -> unit
(** [commit_erased (Obj.repr c) uid] = [commit (B (c, uid))], for callers
    that store cells type-erased to avoid allocating tokens (the
    scheduler's store-buffer ring). *)

val owner : _ t -> int
(** Core that last wrote the cell, [-1] when shared/fresh. *)

val set_owner : _ t -> int -> unit

val pending_count : _ t -> int
(** Number of uncommitted writes currently targeting this cell (all
    processes). Used by tests. *)
