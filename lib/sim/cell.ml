type 'a t = {
  mutable committed : 'a;
  (* Single-slot fast path: the NEWEST pending entry (any writer) lives in
     the [s_*] fields; older entries spill to the [pending] list, newest
     first. The dominant pattern — one buffered write per cell at a time,
     enqueued and later committed — then allocates nothing: the previous
     all-list representation paid a tuple + cons per enqueue and a list
     rebuild per commit, on every simulated store. *)
  mutable s_pid : int; (* -1 = slot empty *)
  mutable s_uid : int;
  mutable s_val : 'a;
  mutable pending : (int * int * 'a) list; (* spill: (pid, uid, value) *)
  mutable owner : int;
  mutable next_uid : int;
      (* per-cell write-token counter. Uids only need to be unique among the
         pending entries of ONE cell (commit matches by uid within the
         cell), so the counter lives in the cell rather than in a module
         global: simulator instances share no mutable state, which is what
         lets a pool of worker domains run isolated sims in parallel. *)
}

type buffered = B : 'a t * int -> buffered

let make v =
  { committed = v;
    s_pid = -1;
    s_uid = 0;
    s_val = v;
    pending = [];
    owner = -1;
    next_uid = 0 }

let read_own pid c =
  (* TSO store-to-load forwarding: the newest pending write by [pid]. The
     slot holds the globally newest entry, so a slot hit is always the
     right answer for its writer; otherwise walk the (newest-first) spill. *)
  if c.s_pid = pid then c.s_val
  else
    let rec find = function
      | [] -> c.committed
      | (p, _, v) :: rest -> if p = pid then v else find rest
    in
    find c.pending

let read_committed c = c.committed

let write_committed c v = c.committed <- v

let enqueue_write pid c v =
  let uid = c.next_uid + 1 in
  c.next_uid <- uid;
  if c.s_pid >= 0 then
    (* Spill the previously-newest entry; the list stays newest-first. *)
    c.pending <- (c.s_pid, c.s_uid, c.s_val) :: c.pending;
  c.s_pid <- pid;
  c.s_uid <- uid;
  c.s_val <- v;
  uid

(* Commit applies the entry's value to main memory whenever the entry still
   exists, regardless of its age relative to other pending entries — commit
   ORDER decides the final contents, exactly as with a hardware store
   buffer (FIFO per process; cross-process order is the schedule's). *)
let commit_id c uid =
  if c.s_pid >= 0 && c.s_uid = uid then begin
    c.committed <- c.s_val;
    c.owner <- c.s_pid;
    c.s_pid <- -1
  end
  else
    let rec remove acc = function
      | [] -> None
      | ((p, u, v) as e) :: rest ->
        if u = uid then Some (p, v, List.rev_append acc rest)
        else remove (e :: acc) rest
    in
    match remove [] c.pending with
    | None -> () (* already committed (e.g. capacity overflow then fence) *)
    | Some (pid, v, pending') ->
      c.committed <- v;
      c.pending <- pending';
      c.owner <- pid

let commit (B (c, uid)) = commit_id c uid

(* Type-erased commit for the scheduler's store-buffer ring, which keeps
   cells and uids in parallel arrays instead of allocating a [buffered]
   token per store. Sound because every cell operation is parametric in the
   element type. *)
let commit_erased (o : Obj.t) uid = commit_id (Obj.obj o : Obj.t t) uid

let owner c = c.owner
let set_owner c pid = c.owner <- pid

let pending_count c = (if c.s_pid >= 0 then 1 else 0) + List.length c.pending
