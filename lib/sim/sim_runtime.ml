(* The RUNTIME instance backed by the deterministic simulator. Every
   operation performs an effect handled by the {!Scheduler} of the enclosing
   fiber; calling these functions outside [Scheduler.exec]/[Scheduler.spawn]
   raises [Effect.Unhandled]. Cell creation is effect-free and may happen
   anywhere. *)

type 'a atomic = 'a Cell.t
type 'a plain = 'a Cell.t

let atomic v = Cell.make v
let plain v = Cell.make v

(* The simulator models coherence per cell, so padding is a no-op. *)
let atomic_padded v = atomic v
let plain_padded v = plain v
let get c = Scheduler.op_get c
let set c v = Scheduler.op_set c v
let cas c expected desired = Scheduler.op_cas c expected desired
let fetch_and_add c n = Scheduler.op_faa c n
let read c = Scheduler.op_read c
let write c v = Scheduler.op_write c v
let fence () = Scheduler.op_fence ()
let now () = Scheduler.op_now ()

(* Virtual time costs one tick to read either way; the coarse clock exists
   for the real runtime, where [now] is a syscall. Lag bound: zero. *)
let now_coarse () = now ()
let self () = Scheduler.op_self ()
let yield () = Scheduler.op_yield ()

(* Zero-cost labelled schedule point: handled synchronously by the
   scheduler (no preemption, no time, no PRNG), so schedules are identical
   with or without hooks — except under the [Targeted] strategy, which may
   turn one into an injected stall. *)
let hook h = Scheduler.op_hook h

(* Trace emission, handled synchronously like [hook]: with no sink
   installed it is a branch inside the scheduler; either way it costs no
   virtual time, performs no memory effect and is not a preemption point,
   so traced and untraced runs of the same seed are identical. *)
let emit ev a b = Scheduler.op_emit ev a b

(* Always emit under simulation: [emit] is free and schedule-neutral here,
   and answering [true] keeps traced and untraced runs on one code path. *)
let tracing () = true

(* Post a DEBRA+ neutralization signal (see [Scheduler.op_neutralize]).
   Synchronous and schedule-neutral for the caller, like [emit]; the victim
   is discontinued with [Runtime_intf.Neutralized] at its next dispatch
   inside an interruptible region. *)
let neutralize ~pid = Scheduler.op_neutralize pid

(* The discontinuation above lands before the victim's next shared-memory
   access (its next effect), so a neutralizer may safely revoke the
   victim's protection on its behalf — the full DEBRA+ signal model. *)
let neutralize_is_preemptive = true

(* Simulator extras, not part of RUNTIME. *)

let sleep_until target = Effect.perform (Scheduler.E_sleep_until target)
(** Block the calling process until its core clock reaches [target]; used
    for delay injection. *)

let charge n = Scheduler.op_charge n
(** Account [n] extra virtual ticks of application work to the caller. *)
