(* Bechamel micro-benchmarks on the REAL runtime (OCaml 5 domains, real x86
   fences), one group per reproduced table/figure, plus quick simulator
   renditions of the paper's tables at the end.

   - "primitives":   the cost model the paper's argument rests on — a plain
                     store (Cadence's HP publication) vs an SC store vs a
                     full fence (classic HP's publication) vs CAS.
   - "fig3-*":       per-operation cost of the Figure 3 configuration
                     (linked list, 10% updates) under each scheme.
   - "fig5top-*":    per-operation cost of the Figure 5 top-row
                     configurations (50% updates) for list / skiplist / bst
                     / hashtable under each scheme.
   - "overheads":    derived §7.3-style table (overhead vs leaky, speedup
                     vs HP) computed from the measured ns/op.

   Single-domain measurements: Bechamel times closures on one core; the
   multi-core scalability curves come from the simulator (bin/repro.exe).
   On x86 the fence in [assign_hp] costs the same whether or not other
   cores run, so the per-op overhead ratios are the paper's. *)

open Bechamel
open Toolkit
module R = Qs_real.Real_runtime

(* --- primitives ---------------------------------------------------------- *)

let plain_cell = R.plain 0
let atomic_cell = R.atomic 0

let primitives =
  [ Test.make ~name:"plain-write (cadence HP publish)"
      (Staged.stage (fun () -> R.write plain_cell 42));
    Test.make ~name:"plain-read" (Staged.stage (fun () -> ignore (R.read plain_cell)));
    Test.make ~name:"atomic-get" (Staged.stage (fun () -> ignore (R.get atomic_cell)));
    Test.make ~name:"atomic-set" (Staged.stage (fun () -> R.set atomic_cell 42));
    Test.make ~name:"fence (classic HP publish)" (Staged.stage (fun () -> R.fence ()));
    Test.make ~name:"cas"
      (Staged.stage (fun () ->
           let v = R.get atomic_cell in
           ignore (R.cas atomic_cell v v)))
  ]

(* --- per-operation data-structure benchmarks ----------------------------- *)

let schemes =
  [ Qs_smr.Scheme.None_; Qs_smr.Scheme.Qsbr; Qs_smr.Scheme.Qsense;
    Qs_smr.Scheme.Cadence; Qs_smr.Scheme.Hp ]

let set_cfg scheme =
  let base = Qs_ds.Set_intf.default_config ~n_processes:1 ~scheme in
  { base with
    smr =
      { base.smr with
        quiescence_threshold = 32;
        scan_threshold = 32;
        (* ns on the real clock: age out quickly so scans actually free *)
        rooster_interval = 50_000;
        epsilon = 10_000 } }

module Bench_set (C : Qs_harness.Cset.S) (Info : sig
  val name : string
  val range : int
end) =
struct
  let make ~update_pct scheme =
    let set = C.create (set_cfg scheme) in
    let ctx = C.register set ~pid:0 in
    let keys = Array.init (Info.range / 2) (fun i -> 2 * i) in
    Qs_util.Prng.shuffle (Qs_util.Prng.create ~seed:7) keys;
    Array.iter (fun k -> ignore (C.insert ctx k)) keys;
    let prng = Qs_util.Prng.create ~seed:42 in
    Test.make
      ~name:(Printf.sprintf "%s/%s" Info.name (Qs_smr.Scheme.to_string scheme))
      (Staged.stage (fun () ->
           let key = Qs_util.Prng.int prng Info.range in
           let pct = Qs_util.Prng.percent prng in
           if pct < update_pct / 2 then ignore (C.insert ctx key)
           else if pct < update_pct then ignore (C.delete ctx key)
           else ignore (C.search ctx key)))

  let group ~group_name ~update_pct =
    Test.make_grouped ~name:group_name (List.map (make ~update_pct) schemes)
end

module List_b =
  Bench_set (Qs_ds.Linked_list.Make (R)) (struct
    let name = "list"
    let range = 512
  end)

module Skip_b =
  Bench_set (Qs_ds.Skiplist.Make (R)) (struct
    let name = "skiplist"
    let range = 4_096
  end)

module Bst_b =
  Bench_set (Qs_ds.Bst.Make (R)) (struct
    let name = "bst"
    let range = 16_384
  end)

module Hash_b =
  Bench_set (Qs_ds.Hashtable.Make (R)) (struct
    let name = "hashtable"
    let range = 4_096
  end)

(* Stack and queue: the methodology examples, one push/pop (enqueue/dequeue)
   pair per iteration. *)

module Stack_b = struct
  module S = Qs_ds.Treiber_stack.Make (R)

  let make scheme =
    let st = S.create (set_cfg scheme) in
    let ctx = S.register st ~pid:0 in
    for i = 1 to 128 do
      S.push ctx i
    done;
    Test.make
      ~name:(Printf.sprintf "stack/%s" (Qs_smr.Scheme.to_string scheme))
      (Staged.stage (fun () ->
           S.push ctx 1;
           ignore (S.pop ctx)))

  let group () = Test.make_grouped ~name:"stack" (List.map make schemes)
end

module Queue_b = struct
  module Q = Qs_ds.Msqueue.Make (R)

  let make scheme =
    let q = Q.create (set_cfg scheme) in
    let ctx = Q.register q ~pid:0 in
    for i = 1 to 128 do
      Q.enqueue ctx i
    done;
    Test.make
      ~name:(Printf.sprintf "queue/%s" (Qs_smr.Scheme.to_string scheme))
      (Staged.stage (fun () ->
           Q.enqueue ctx 1;
           ignore (Q.dequeue ctx)))

  let group () = Test.make_grouped ~name:"queue" (List.map make schemes)
end

(* --- measurement machinery ----------------------------------------------- *)

let benchmark tests =
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.3) ~kde:None () in
  Benchmark.all cfg Instance.[ monotonic_clock ] tests

let analyze raw =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  Analyze.all ols Instance.monotonic_clock raw

let ns_per_run results name =
  match Hashtbl.find_opt results name with
  | None -> nan
  | Some ols -> (
    match Analyze.OLS.estimates ols with
    | Some [ e ] -> e
    | _ -> nan)

let run_group title tests =
  Printf.printf "== %s ==\n%!" title;
  let results = analyze (benchmark tests) in
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) results [] in
  let tbl = Qs_util.Table.create [ "benchmark"; "ns/op" ] in
  List.iter
    (fun name ->
      Qs_util.Table.add_row tbl [ name; Printf.sprintf "%.1f" (ns_per_run results name) ])
    (List.sort compare names);
  Qs_util.Table.print tbl;
  print_newline ();
  results

let overhead_table per_ds_results =
  let tbl =
    Qs_util.Table.create
      [ "scheme"; "list ns/op"; "skiplist ns/op"; "bst ns/op"; "hashtable ns/op";
        "avg overhead vs none (%)"; "speedup vs hp" ]
  in
  let dss = [ "list"; "skiplist"; "bst"; "hashtable" ] in
  let suffix_of ds scheme =
    Printf.sprintf "/%s/%s" ds (Qs_smr.Scheme.to_string scheme)
  in
  let ends_with ~suffix s =
    let ls = String.length s and lx = String.length suffix in
    ls >= lx && String.sub s (ls - lx) lx = suffix
  in
  let cost ds scheme =
    let results = List.assoc ds per_ds_results in
    let suffix = suffix_of ds scheme in
    Hashtbl.fold
      (fun name _ acc -> if ends_with ~suffix name then ns_per_run results name else acc)
      results nan
  in
  List.iter
    (fun scheme ->
      let costs = List.map (fun ds -> cost ds scheme) dss in
      let over =
        List.map2
          (fun ds c ->
            (* throughput overhead = 1 - none/cost *)
            100. *. (1. -. (cost ds Qs_smr.Scheme.None_ /. c)))
          dss costs
      in
      let speedups =
        List.map2 (fun ds c -> cost ds Qs_smr.Scheme.Hp /. c) dss costs
      in
      Qs_util.Table.add_row tbl
        (Qs_smr.Scheme.to_string scheme
        :: (List.map (Printf.sprintf "%.0f") costs
           @ [ Printf.sprintf "%.1f"
                 (Qs_util.Stats.mean (Array.of_list over));
               Printf.sprintf "%.2fx"
                 (Qs_util.Stats.mean (Array.of_list speedups))
             ])))
    schemes;
  Qs_util.Table.print tbl;
  print_newline ()

let () =
  R.register_self 0;
  (* roosters give Cadence/QSense their coarse clock and wake-up guarantee *)
  let roosters = Qs_real.Roosters.start ~interval_ns:2_000_000 ~n:1 in
  ignore (run_group "primitives (real x86 costs)" (Test.make_grouped ~name:"prim" primitives));
  let fig3 = run_group "fig3: list, 10% updates" (List_b.group ~group_name:"fig3" ~update_pct:10) in
  ignore fig3;
  let list_r = run_group "fig5-top: list, 50% updates" (List_b.group ~group_name:"list50" ~update_pct:50) in
  let skip_r = run_group "fig5-top: skiplist, 50% updates" (Skip_b.group ~group_name:"skip50" ~update_pct:50) in
  let bst_r = run_group "fig5-top: bst, 50% updates" (Bst_b.group ~group_name:"bst50" ~update_pct:50) in
  let hash_r = run_group "extra: hashtable, 50% updates" (Hash_b.group ~group_name:"hash50" ~update_pct:50) in
  ignore (run_group "extra: treiber stack, push+pop" (Stack_b.group ()));
  ignore (run_group "extra: michael-scott queue, enq+deq" (Queue_b.group ()));
  Printf.printf "== §7.3-style overhead table (derived from ns/op above) ==\n%!";
  overhead_table
    [ ("list", list_r); ("skiplist", skip_r); ("bst", bst_r); ("hashtable", hash_r) ];
  Qs_real.Roosters.stop roosters;
  (* The multi-core figures come from the simulator: *)
  print_endline "Scalability and robustness figures (multi-core) are produced by the";
  print_endline "deterministic simulator: `dune exec bin/repro.exe -- all [--scale full]`."
