type t = { headers : string list; mutable rows : string list list (* reversed *) }

let create headers = { headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: width mismatch";
  t.rows <- row :: t.rows

let add_float_row t label xs =
  add_row t (label :: List.map (Printf.sprintf "%.3f") xs)

let all_rows t = t.headers :: List.rev t.rows

let to_ascii t =
  let rows = all_rows t in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let record_widths row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter record_widths rows;
  let buf = Buffer.create 256 in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  (match rows with
  | header :: data ->
    emit_row header;
    let sep = List.init ncols (fun i -> String.make widths.(i) '-') in
    emit_row sep;
    List.iter emit_row data
  | [] -> ());
  Buffer.contents buf

let csv_cell cell =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell
  in
  if not needs_quote then cell
  else begin
    let buf = Buffer.create (String.length cell + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      cell;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_csv t =
  let buf = Buffer.create 256 in
  let emit_row row =
    Buffer.add_string buf (String.concat "," (List.map csv_cell row));
    Buffer.add_char buf '\n'
  in
  List.iter emit_row (all_rows t);
  Buffer.contents buf

let print t = print_string (to_ascii t)

let save_csv t path =
  let oc = open_out path in
  output_string oc (to_csv t);
  close_out oc
