lib/util/histogram.mli:
