lib/util/histogram.ml: Array Buffer Printf Stats String
