lib/util/table.mli:
