lib/util/prng.mli:
