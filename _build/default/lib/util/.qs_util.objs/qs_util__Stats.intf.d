lib/util/stats.mli:
