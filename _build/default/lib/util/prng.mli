(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that every
    experiment and every simulator schedule is reproducible from a single
    seed. The generator is SplitMix64, which is fast, has a 64-bit state and
    supports cheap splitting into independent streams (one per simulated
    process). *)

type t
(** A mutable PRNG state. Not thread-safe; use one [t] per process/domain. *)

val create : seed:int -> t
(** [create ~seed] returns a fresh generator determined entirely by [seed]. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    independent of the remainder of [t]'s stream. Used to derive per-process
    streams from an experiment master seed. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val percent : t -> int
(** [percent t] is uniform in [\[0, 100)], convenient for operation mixes. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
