(** Fixed-bucket histograms, used for latency/age distributions in the
    harness and for quick terminal visualisation of throughput series. *)

type t

val create : lo:float -> hi:float -> buckets:int -> t
(** [create ~lo ~hi ~buckets] covers [\[lo, hi)] with equally sized buckets;
    samples outside the range land in the first/last bucket. *)

val add : t -> float -> unit

val count : t -> int
(** Total number of samples added. *)

val bucket_counts : t -> int array

val to_ascii : t -> width:int -> string
(** Horizontal bar chart, one line per bucket, bars scaled to [width]. *)

val sparkline : float array -> string
(** Renders a series as a one-line unicode sparkline — used for the
    throughput-over-time figures on a terminal. *)
