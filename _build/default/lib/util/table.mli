(** Rendering of experiment results as aligned ASCII tables and CSV.

    The harness reports every reproduced figure/table as one of these. *)

type t
(** A table under construction: a header row plus data rows of equal width. *)

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Appends a row. Raises [Invalid_argument] if the width differs from the
    header. *)

val add_float_row : t -> string -> float list -> unit
(** [add_float_row t label xs] appends [label] followed by [xs] formatted with
    [%.3f]. *)

val to_ascii : t -> string
(** Render with aligned columns, a separator under the header. *)

val to_csv : t -> string
(** Render as RFC-4180-ish CSV (commas, quoting only when needed). *)

val print : t -> unit
(** [to_ascii] to stdout, followed by a newline. *)

val save_csv : t -> string -> unit
(** Write the CSV rendering to a file. *)
