lib/intf/runtime_intf.ml:
