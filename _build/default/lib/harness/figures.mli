(** Reproduction drivers for every figure of the paper's evaluation (§7)
    plus the ablations listed in DESIGN.md. Each returns
    {!Qs_util.Table.t} rows matching the corresponding plot's series; see
    EXPERIMENTS.md for recorded paper-vs-measured results. *)

type scale =
  | Quick  (** scaled-down structure sizes; seconds *)
  | Full  (** the paper's sizes (BST scaled 10x down); minutes *)

val core_counts : scale -> int list
val range_of : scale -> Cset.kind -> int

val scalability :
  scale:scale ->
  seed:int ->
  ds:Cset.kind ->
  schemes:Qs_smr.Scheme.kind list ->
  update_pct:int ->
  Qs_util.Table.t * (Qs_smr.Scheme.kind * float list) list
(** Throughput vs core count, one row per scheme. *)

val fig3 :
  scale:scale -> seed:int -> Qs_util.Table.t * (Qs_smr.Scheme.kind * float list) list
(** Figure 3: linked list, 10% updates, None / QSense / HP. *)

val fig5_top :
  scale:scale ->
  seed:int ->
  ds:Cset.kind ->
  Qs_util.Table.t * (Qs_smr.Scheme.kind * float list) list
(** Figure 5 top row: 50% updates, None / QSBR / QSense / HP. *)

val fig5_bottom :
  scale:scale ->
  seed:int ->
  ds:Cset.kind ->
  Qs_util.Table.t * (Qs_smr.Scheme.kind * Sim_exp.result) list
(** Figure 5 bottom row: 8 processes under bounded memory, one delayed in
    [10,20), [30,40), ...; per-second throughput series. QSBR's run ends in
    the modelled out-of-memory failure; QSense switches paths and survives. *)

val overheads :
  scale:scale ->
  seed:int ->
  Qs_util.Table.t
  * (Cset.kind * float) list
  * (Qs_smr.Scheme.kind * float list) list
(** The §7.3 text numbers: per-structure throughput at 8 cores, average
    overhead vs the leaky baseline, speedup vs HP. *)

val ablation_rooster : seed:int -> Qs_util.Table.t
(** Rooster interval T sweep on Cadence: throughput vs held memory. *)

val ablation_quiescence : seed:int -> Qs_util.Table.t
(** Quiescence threshold Q sweep on QSBR. *)

val ablation_switch_threshold : seed:int -> Qs_util.Table.t
(** Fallback threshold C sweep on QSense under periodic delays. *)

val ablation_epsilon : seed:int -> Qs_util.Table.t
(** Epsilon vs rooster oversleep on Cadence; the undersized-epsilon row
    exhibits use-after-free (the §5.1 timing assumption is load-bearing). *)

val ablation_update_mix : seed:int -> Qs_util.Table.t
(** §3.2's claim: the hazard-pointer fence tax is highest on read-only
    workloads and shrinks as the update share (already paying for CAS)
    grows. *)

val latency_table : seed:int -> Qs_util.Table.t
(** Extra analysis: per-operation latency distribution per scheme — hazard
    pointers tax the median, epoch/limbo schemes spike the tail. *)
