lib/harness/real_exp.mli: Cset Qs_ds Qs_smr Qs_workload
