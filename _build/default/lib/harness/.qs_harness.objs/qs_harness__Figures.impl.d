lib/harness/figures.ml: Array Cset Fun List Printf Qs_sim Qs_smr Qs_util Qs_workload Scheme Sim_exp
