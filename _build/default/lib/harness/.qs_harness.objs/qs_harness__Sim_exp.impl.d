lib/harness/sim_exp.ml: Array Cset Fun List Printexc Printf Qs_arena Qs_ds Qs_sim Qs_smr Qs_util Qs_workload Scheduler Sim_runtime
