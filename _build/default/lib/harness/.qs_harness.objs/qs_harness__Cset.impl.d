lib/harness/cset.ml: Qs_ds
