lib/harness/figures.mli: Cset Qs_smr Qs_util Sim_exp
