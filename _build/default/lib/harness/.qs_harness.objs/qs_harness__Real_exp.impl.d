lib/harness/real_exp.ml: Array Atomic Cset Fun Qs_arena Qs_ds Qs_real Qs_smr Qs_util Qs_workload Unix
