lib/harness/sim_exp.mli: Cset Qs_ds Qs_sim Qs_smr Qs_workload Scheduler
