lib/workload/spec.ml: List Qs_util
