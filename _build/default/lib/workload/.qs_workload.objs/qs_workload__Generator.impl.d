lib/workload/generator.ml: Array Qs_util Spec
