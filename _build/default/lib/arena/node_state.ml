(* The five node states of the paper's §2.1. Transitions:

   Free --alloc--> Allocated --link--> Reachable --unlink--> Removed
   Removed --(no process can use it)--> Retired --free--> Free

   The [Retired] state is conceptual — it is the moment an SMR scheme
   decides a Removed node is reclaimable; in the implementation the scheme
   calls [free] directly, so nodes usually step Removed -> Free. The state
   field is a debugging oracle, not part of the algorithms: the arena uses
   it to detect use-after-free and double-free. *)

type t = Allocated | Reachable | Removed | Retired | Free

let to_string = function
  | Allocated -> "allocated"
  | Reachable -> "reachable"
  | Removed -> "removed"
  | Retired -> "retired"
  | Free -> "free"

let equal (a : t) (b : t) = a = b

let pp fmt s = Format.pp_print_string fmt (to_string s)

(* Legal direct transitions, used by the arena's optional strict checking. *)
let can_transition from into =
  match (from, into) with
  | Free, Allocated
  | Allocated, Reachable
  | Allocated, Free (* insert lost the CAS race: free directly *)
  | Reachable, Removed
  | Removed, Retired
  | Removed, Free
  | Retired, Free -> true
  | _ -> false
