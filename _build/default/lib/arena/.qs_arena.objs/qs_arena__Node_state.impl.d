lib/arena/node_state.ml: Format
