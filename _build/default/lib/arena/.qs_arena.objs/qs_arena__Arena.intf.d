lib/arena/arena.mli: Node_state
