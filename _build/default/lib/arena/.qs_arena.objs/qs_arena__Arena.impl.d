lib/arena/arena.ml: Array Node_state
