lib/arena/node_state.mli: Format
