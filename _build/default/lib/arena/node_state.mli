(** The five-state node lifecycle of the paper's §2.1:
    Allocated, Reachable, Removed, Retired, Free. *)

type t = Allocated | Reachable | Removed | Retired | Free

val to_string : t -> string
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val can_transition : t -> t -> bool
(** Whether a direct transition between the two states is legal. *)
