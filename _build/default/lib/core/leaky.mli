(** The "None" baseline: no reclamation. [retire] drops the node (counted,
    never freed), every other hook is a no-op. This is the throughput
    upper bound all schemes' overheads are measured against — and, under a
    bounded arena, the scheme that demonstrably runs out of memory. *)

module Make : Smr_intf.MAKER
