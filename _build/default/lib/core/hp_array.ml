(* The shared hazard-pointer array: N processes × K single-writer
   multi-reader slots, used by classic HP, Cadence and QSense. Slots are TSO
   *plain* cells — publishing is a cheap store whose visibility is bounded
   only by fences (classic HP) or rooster context switches (Cadence/QSense).
   Unused slots hold the data structure's dummy node rather than an option,
   keeping the traversal path allocation-free. *)

module Make (R : Qs_intf.Runtime_intf.RUNTIME) (N : Smr_intf.NODE) = struct
  type t = { slots : N.t R.plain array array; dummy : N.t; k : int }

  let create ~n ~k ~dummy =
    { slots = Array.init n (fun _ -> Array.init k (fun _ -> R.plain dummy));
      dummy;
      k }

  let assign t ~pid ~slot n = R.write t.slots.(pid).(slot) n

  let clear t ~pid =
    let row = t.slots.(pid) in
    for i = 0 to t.k - 1 do
      R.write row.(i) t.dummy
    done

  (* Read every slot of every process; the result is the set of nodes that
     must not be reclaimed. Reads are racy by design: a hazard pointer whose
     store is still sitting in its writer's store buffer is missed — that is
     the hole deferred reclamation closes. *)
  let snapshot t =
    let acc = ref [] in
    Array.iter
      (fun row ->
        Array.iter
          (fun slot ->
            let n = R.read slot in
            if n != t.dummy then acc := n :: !acc)
          row)
      t.slots;
    !acc

  let protects snapshot n = List.memq n snapshot
end
