(* Cadence (§5.1): hazard pointers without the per-node publication fence,
   made safe by rooster processes plus deferred reclamation.

   - [assign_hp] is a plain store, no barrier. Its visibility to reclaimers
     is bounded by the rooster interval T: every core's store buffer is
     drained at least every T (+ oversleep) time units by a rooster-induced
     context switch.
   - [retire] wraps the node with a timestamp ([timestamped_node] of
     Algorithm 3). A scan frees a node only when it is old enough —
     [age >= T + epsilon] — because by then any hazard pointer that could
     protect it (necessarily written before the node was removed, by
     Condition 1) has become visible, so the ordinary HP check suffices.

   Cadence is usable stand-alone (this module) and as QSense's fallback
   path ({!Qsense} re-implements the merged version over the limbo lists).
   The runtime must run roosters with interval <= [cfg.rooster_interval]:
   simulator config [rooster_interval], or {!Qs_real.Roosters.start}. *)

module Make (R : Qs_intf.Runtime_intf.RUNTIME) (N : Smr_intf.NODE) = struct
  type node = N.t

  module Hp = Hp_array.Make (R) (N)

  type wrapper = { node : node; ts : int }

  type t = {
    cfg : Smr_intf.config;
    hp : Hp.t;
    free : node -> unit;
    handles : handle option array;
  }

  and handle = {
    owner : t;
    pid : int;
    mutable rlist : wrapper list;
    mutable rcount : int;
    mutable retires : int;
    mutable frees : int;
    mutable scans : int;
    mutable retired_peak : int;
  }

  let name = "cadence"

  let create (cfg : Smr_intf.config) ~dummy ~free =
    { cfg;
      hp = Hp.create ~n:cfg.n_processes ~k:cfg.hp_per_process ~dummy;
      free;
      handles = Array.make cfg.n_processes None }

  let register t ~pid =
    let h =
      { owner = t;
        pid;
        rlist = [];
        rcount = 0;
        retires = 0;
        frees = 0;
        scans = 0;
        retired_peak = 0 }
    in
    t.handles.(pid) <- Some h;
    h

  let manage_state _ = ()

  (* No memory barrier here — the point of the scheme. *)
  let assign_hp h ~slot n = Hp.assign h.owner.hp ~pid:h.pid ~slot n

  let clear_hps h = Hp.clear h.owner.hp ~pid:h.pid

  let is_old_enough t ~now w =
    now - w.ts >= t.cfg.rooster_interval + t.cfg.epsilon

  let scan h =
    let t = h.owner in
    h.scans <- h.scans + 1;
    let now = R.now () in
    let snapshot = Hp.snapshot t.hp in
    let kept =
      List.filter
        (fun w ->
          if is_old_enough t ~now w && not (Hp.protects snapshot w.node) then begin
            t.free w.node;
            h.frees <- h.frees + 1;
            false
          end
          else true)
        h.rlist
    in
    h.rlist <- kept;
    h.rcount <- List.length kept

  let retire h n =
    h.rlist <- { node = n; ts = R.now () } :: h.rlist;
    h.rcount <- h.rcount + 1;
    h.retires <- h.retires + 1;
    if h.rcount > h.retired_peak then h.retired_peak <- h.rcount;
    if h.retires mod h.owner.cfg.scan_threshold = 0 then scan h

  let flush h =
    List.iter
      (fun w ->
        h.owner.free w.node;
        h.frees <- h.frees + 1)
      h.rlist;
    h.rlist <- [];
    h.rcount <- 0

  let fold t f =
    Array.fold_left
      (fun acc -> function None -> acc | Some h -> acc + f h)
      0 t.handles

  let retired_count t = fold t (fun h -> h.rcount)

  let stats t =
    { Smr_intf.zero_stats with
      retires = fold t (fun h -> h.retires);
      frees = fold t (fun h -> h.frees);
      scans = fold t (fun h -> h.scans);
      retired_now = retired_count t;
      retired_peak = fold t (fun h -> h.retired_peak) }
end
