(** Hazard pointers WITHOUT the publication fence — deliberately broken
    under TSO; never use it for real work.

    This is the naive optimisation the paper's §4.1 (Algorithm 2) shows to
    be incorrect: the hazard-pointer store can be delayed in the store
    buffer past the re-validation load, so a reclaimer's scan misses the
    protection and frees a node the reader is about to dereference. The
    test suite demonstrates the resulting use-after-free deterministically
    in the simulator ([dead roosters]/[unfenced HP] tests,
    [examples/tso_bug_demo.exe]); Cadence is the sound way to drop the
    fence. *)

module Make : Smr_intf.MAKER
