(** Michael's classic hazard pointers (§3.2) — the robust-but-slow baseline.

    [assign_hp] publishes the pointer and issues a full memory fence so the
    subsequent validation load cannot be reordered before the publication
    store under TSO. One fence per traversed node is exactly the overhead
    the paper measures at ~80% and that Cadence eliminates.

    [retire] adds the node to a per-process removed list; every
    [config.scan_threshold] retires, a scan snapshots all N×K hazard
    pointers and frees the unprotected nodes. Wait-free and robust: a
    stalled process can pin at most its own K nodes. *)

module type PARAMS = sig
  val scheme_name : string

  val fenced : bool
  (** whether [assign_hp] issues the fence; [false] is {!Unsafe_hp} *)
end

module Make_gen (_ : PARAMS) : Smr_intf.MAKER
(** Generalised over the fence, for the deliberately broken variant. *)

module Make : Smr_intf.MAKER
(** The classic, fenced scheme. *)
