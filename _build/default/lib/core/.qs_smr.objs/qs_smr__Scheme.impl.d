lib/core/scheme.ml: Cadence Ebr Hazard_pointers Leaky Naive_hybrid Qs_intf Qsbr Qsense Smr_intf Unsafe_hp
