lib/core/qsense.ml: Array Hp_array List Qs_intf Smr_intf
