lib/core/hp_array.ml: Array List Qs_intf Smr_intf
