lib/core/qsbr.mli: Smr_intf
