lib/core/qsbr.ml: Array List Qs_intf Smr_intf
