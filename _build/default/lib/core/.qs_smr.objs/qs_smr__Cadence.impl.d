lib/core/cadence.ml: Array Hp_array List Qs_intf Smr_intf
