lib/core/hazard_pointers.mli: Smr_intf
