lib/core/ebr.ml: Array List Qs_intf Smr_intf
