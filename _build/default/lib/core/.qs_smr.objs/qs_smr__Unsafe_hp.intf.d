lib/core/unsafe_hp.mli: Smr_intf
