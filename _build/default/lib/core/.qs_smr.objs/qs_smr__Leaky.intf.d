lib/core/leaky.mli: Smr_intf
