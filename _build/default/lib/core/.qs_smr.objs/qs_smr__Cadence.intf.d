lib/core/cadence.mli: Smr_intf
