lib/core/smr_intf.ml: Qs_intf
