lib/core/hazard_pointers.ml: Array Hp_array List Qs_intf Smr_intf
