lib/core/unsafe_hp.ml: Hazard_pointers
