lib/core/naive_hybrid.ml: Qsense
