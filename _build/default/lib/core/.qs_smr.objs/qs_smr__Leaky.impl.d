lib/core/leaky.ml: Array Qs_intf Smr_intf
