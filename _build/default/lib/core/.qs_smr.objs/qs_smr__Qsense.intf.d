lib/core/qsense.mli: Smr_intf
