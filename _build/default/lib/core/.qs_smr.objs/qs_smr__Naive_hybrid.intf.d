lib/core/naive_hybrid.mli: Smr_intf
