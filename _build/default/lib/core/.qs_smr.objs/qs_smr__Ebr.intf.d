lib/core/ebr.mli: Smr_intf
