(** Cadence (§5.1): hazard pointers without the per-node publication fence,
    usable stand-alone or as QSense's fallback path.

    Two mechanisms replace the fence:

    - {b rooster processes} — the runtime guarantees every process's store
      buffer is drained at least every [config.rooster_interval] time units
      (a context switch implies a fence), so a hazard-pointer store is
      globally visible at most T after it was issued;
    - {b deferred reclamation} — a retired node is wrapped with its removal
      timestamp (Algorithm 3's [timestamped_node]) and freed only once
      older than [T + epsilon]; by then any hazard pointer that could
      protect it (written before the removal, per Condition 1) is visible,
      so the ordinary scan is sound.

    Guarantees (§6.1): a node identified as reusable is not hazardously
    referenced by any other process (Property 1); at most [N(K + T' + R)]
    retired nodes exist, where T' is the number of removals that fit in the
    deferral window (Property 2) — bounded, unlike QSBR's backlog.

    [epsilon] must cover the runtime's rooster wake-up inaccuracy
    (oversleep) plus any cross-process clock disagreement that affects age
    measurements; the [ablation --which epsilon] experiment demonstrates
    what happens when it does not. *)

module Make : Smr_intf.MAKER
