(** QSense — the paper's primary contribution (§4, §5.2): a hybrid memory
    reclamation scheme that is fast, robust and widely applicable.

    {b Fast path.} Quiescent-state based reclamation (QSBR): three logical
    epochs, per-process limbo lists, a shared global epoch. Near-zero
    per-node overhead but blocking: a delayed process freezes the epoch.

    {b Fallback path.} Cadence-style hazard-pointer scans over the same
    limbo lists — the limbo list {e is} the removed-nodes list. Because
    retire timestamps and hazard pointers are maintained at all times (the
    latter with plain, fence-free stores whose visibility is bounded by the
    rooster interval T), the switch is sound at any moment (§4.1's
    Algorithm 2 explains why a naive QSBR+HP hybrid is not).

    {b Switching.} A process whose limbo lists exceed the threshold C flips
    a shared fallback flag (quiescence has evidently stalled); presence
    flags — set by every process after each operation batch and reset when
    entering fallback mode — tell the system when every worker is active
    again, triggering the switch back.

    {b Guarantees} (§6): reuse eligibility implies no hazardous reference
    (Property 3); with a legal C — see
    {!Smr_intf.legal_switch_threshold} — at most [2NC] retired nodes exist
    at any time (Property 4), under any pattern of worker delays.

    {b Eviction extension} (this repository's implementation of the paper's
    §5.2 future work, enabled by [config.eviction_timeout]): a process
    silent for the given time while the system is in fallback mode is
    evicted — excluded from presence and epoch agreement — letting the
    survivors return to the fast path even if the process crashed for good.
    While any process is evicted (and for one epoch cycle after a process
    rejoins), adopted-epoch reclamation filters through the hazard-pointer +
    age check instead of freeing unconditionally, which preserves safety:
    the evicted process's references are covered by its (long-visible)
    hazard pointers.

    Requires rooster support from the runtime (simulator
    [rooster_interval], or {!Qs_real.Roosters}) with a wake-up interval of
    at most [config.rooster_interval]. *)

module type PUBLICATION = sig
  val scheme_name : string

  val always_publish : bool
  (** [true] — the sound design (hazard pointers maintained in both modes,
      fence-free). [false] — the naive hybrid of §4.1, see
      {!Naive_hybrid}. *)
end

module Make_gen (_ : PUBLICATION) : Smr_intf.MAKER

module Make : Smr_intf.MAKER
(** QSense proper ([always_publish = true]). *)
