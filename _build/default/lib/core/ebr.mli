(** Epoch-based reclamation (Fraser-style EBR; the paper's §8 "epoch-based
    techniques" bucket), included as an additional baseline between QSBR
    and the robust schemes.

    Each operation pins the current global epoch on entry ([manage_state])
    and unpins on exit (the [clear_hps] end-of-operation hook); the global
    epoch advances once every {e active} process has observed it. Hence a
    process idle {e between} operations does not block reclamation (unlike
    QSBR), but a process stalled {e inside} an operation still does — the
    residual weakness QSense's fallback path removes. [assign_hp] is a
    no-op. *)

module Make : Smr_intf.MAKER
