(* Hazard pointers WITHOUT the publication fence — deliberately broken under
   TSO. This is the naive "just skip the barrier" optimisation the paper's
   §4.1 (Algorithm 2) shows to be incorrect: the hazard-pointer store can be
   delayed past the re-validation load, letting a concurrent reclaimer free
   a node the reader is about to use. The test suite demonstrates the
   resulting use-after-free in the simulator; Cadence is the sound way to
   drop the fence. Never use this scheme for real work. *)

module Make = Hazard_pointers.Make_gen (struct
  let scheme_name = "unsafe-hp"
  let fenced = false
end)
