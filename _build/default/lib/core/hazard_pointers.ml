(* Michael's classic hazard pointers (§3.2 of the paper).

   [assign_hp] publishes the pointer and then issues a full memory barrier,
   so that the subsequent re-validation load cannot be reordered before the
   publication store (the TSO hazard of Algorithm 2). This per-traversed-node
   fence is exactly the overhead the paper measures at ~80% and that Cadence
   eliminates.

   [Make_gen] also admits an unfenced variant ({!Unsafe_hp}) used by the
   tests to demonstrate that the fence is load-bearing: under the simulator's
   TSO model the unfenced variant reclaims nodes that are still hazardously
   referenced. *)

module type PARAMS = sig
  val scheme_name : string
  val fenced : bool
end

module Make_gen
    (P : PARAMS)
    (R : Qs_intf.Runtime_intf.RUNTIME)
    (N : Smr_intf.NODE) =
struct
  type node = N.t

  module Hp = Hp_array.Make (R) (N)

  type t = {
    cfg : Smr_intf.config;
    hp : Hp.t;
    free : node -> unit;
    handles : handle option array;
  }

  and handle = {
    owner : t;
    pid : int;
    mutable rlist : node list;
    mutable rcount : int;
    mutable retires : int;
    mutable frees : int;
    mutable scans : int;
    mutable retired_peak : int;
  }

  let name = P.scheme_name

  let create (cfg : Smr_intf.config) ~dummy ~free =
    { cfg;
      hp = Hp.create ~n:cfg.n_processes ~k:cfg.hp_per_process ~dummy;
      free;
      handles = Array.make cfg.n_processes None }

  let register t ~pid =
    let h =
      { owner = t;
        pid;
        rlist = [];
        rcount = 0;
        retires = 0;
        frees = 0;
        scans = 0;
        retired_peak = 0 }
    in
    t.handles.(pid) <- Some h;
    h

  let manage_state _ = ()

  let assign_hp h ~slot n =
    Hp.assign h.owner.hp ~pid:h.pid ~slot n;
    if P.fenced then R.fence ()

  let clear_hps h = Hp.clear h.owner.hp ~pid:h.pid

  (* Free every retired node not currently protected by any process's hazard
     pointers; keep the rest for a later scan. *)
  let scan h =
    let t = h.owner in
    h.scans <- h.scans + 1;
    let snapshot = Hp.snapshot t.hp in
    let kept =
      List.filter
        (fun n ->
          if Hp.protects snapshot n then true
          else begin
            t.free n;
            h.frees <- h.frees + 1;
            false
          end)
        h.rlist
    in
    h.rlist <- kept;
    h.rcount <- List.length kept

  let retire h n =
    h.rlist <- n :: h.rlist;
    h.rcount <- h.rcount + 1;
    h.retires <- h.retires + 1;
    if h.rcount > h.retired_peak then h.retired_peak <- h.rcount;
    if h.rcount >= h.owner.cfg.scan_threshold then scan h

  let flush h =
    List.iter
      (fun n ->
        h.owner.free n;
        h.frees <- h.frees + 1)
      h.rlist;
    h.rlist <- [];
    h.rcount <- 0

  let fold t f =
    Array.fold_left
      (fun acc -> function None -> acc | Some h -> acc + f h)
      0 t.handles

  let retired_count t = fold t (fun h -> h.rcount)

  let stats t =
    { Smr_intf.zero_stats with
      retires = fold t (fun h -> h.retires);
      frees = fold t (fun h -> h.frees);
      scans = fold t (fun h -> h.scans);
      retired_now = retired_count t;
      retired_peak = fold t (fun h -> h.retired_peak) }
end

module Make = Make_gen (struct
  let scheme_name = "hp"
  let fenced = true
end)
