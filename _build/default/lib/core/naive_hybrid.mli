(** The naive QSBR+HP hybrid rejected by the paper\'s §4.1 — hazard
    pointers published only while the fallback path is active, so
    references acquired before a switch are unprotected. Deliberately
    broken, kept to demonstrate why QSense maintains hazard pointers at all
    times. Never use for real work. *)

module Make : Smr_intf.MAKER
