(* The NAIVE QSBR+HP hybrid the paper rejects in §4.1 — deliberately
   broken; never use it for real work.

   It runs QSBR in the common case and hazard-pointer scans in fallback
   mode, but publishes hazard pointers (even with a full fence!) only while
   the fallback flag is up. When the system switches paths, references
   acquired on the fast path are unprotected: the very next scan can free a
   node a reader is still traversing. This is the argument for QSense\'s
   design choice of maintaining hazard pointers AT ALL TIMES (fence-free,
   which is why Cadence is needed). The test suite demonstrates the
   use-after-free under delay-induced switches, and its absence with real
   QSense on the identical workload. *)

module Make = Qsense.Make_gen (struct
  let scheme_name = "naive-hybrid"
  let always_publish = false
end)
