(** Quiescent-state based reclamation (§3.1) — the paper's fast path and
    the fast-but-blocking baseline of the evaluation.

    A process declares a quiescent state (no shared references held) every
    [config.quiescence_threshold] operations via [manage_state]. Three
    logical epochs cycle through per-process limbo lists: adopting a new
    global epoch frees the adopted list (a grace period separates it from
    the present — Lemma 3); a process observing everyone current advances
    the global epoch.

    Blocking: one process that stops declaring quiescent states freezes the
    global epoch and with it all reclamation, in every process — the
    failure mode the robustness experiment (Figure 5, bottom) exhibits and
    QSense exists to survive. [assign_hp] is a no-op: QSBR needs no
    per-node work at all. *)

module Make : Smr_intf.MAKER
