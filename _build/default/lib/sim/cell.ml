type 'a t = {
  mutable committed : 'a;
  mutable pending : (int * int * 'a) list; (* (pid, uid, value), newest first *)
  mutable owner : int;
}

type buffered = B : 'a t * int -> buffered

let uid_counter = ref 0

let make v = { committed = v; pending = []; owner = -1 }

let read_own pid c =
  let rec find = function
    | [] -> c.committed
    | (p, _, v) :: rest -> if p = pid then v else find rest
  in
  find c.pending

let read_committed c = c.committed

let write_committed c v = c.committed <- v

let enqueue_write pid c v =
  incr uid_counter;
  let uid = !uid_counter in
  c.pending <- (pid, uid, v) :: c.pending;
  B (c, uid)

let commit (B (c, uid)) =
  (* The buffer is FIFO per process, so of the entries with this uid there is
     exactly one (uids are globally unique); committing removes it. *)
  let rec remove acc = function
    | [] -> None
    | ((p, u, v) as e) :: rest ->
      if u = uid then Some (p, v, List.rev_append acc rest) else remove (e :: acc) rest
  in
  match remove [] c.pending with
  | None -> () (* already committed (e.g. capacity overflow then fence) *)
  | Some (pid, v, pending') ->
    c.committed <- v;
    c.pending <- pending';
    c.owner <- pid

let owner c = c.owner
let set_owner c pid = c.owner <- pid

let pending_count c = List.length c.pending
