lib/sim/scheduler.mli: Cell Effect Format
