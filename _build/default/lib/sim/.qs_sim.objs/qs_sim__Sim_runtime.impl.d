lib/sim/sim_runtime.ml: Cell Effect Scheduler
