lib/sim/cell.mli:
