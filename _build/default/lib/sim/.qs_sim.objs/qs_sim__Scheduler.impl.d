lib/sim/scheduler.ml: Array Cell Effect Format List Qs_util Queue
