lib/sim/sim_runtime.mli: Cell Qs_intf
