lib/sim/cell.ml: List
