(** Deterministic multicore simulator.

    The simulator models [n_cores] cores, each running exactly one pinned
    worker process (as in the paper's evaluation, where every process is
    pinned to a distinct core), plus one rooster per core modelled as a
    timer event. Workers are OCaml effect-handler coroutines: every shared
    memory access performs an effect, which is a preemption point.

    {b Time.} Each core has its own virtual clock, advanced by the cost of
    the operations {e that core} executes (see {!cost_model}). The scheduler
    always steps the runnable core with the smallest clock, so cores proceed
    in parallel virtual time: [n] cores each executing [k] ticks of work
    finish at virtual time [k], not [n*k]. Throughput numbers are
    operations per virtual time unit.

    {b TSO.} Plain writes go to a per-process store buffer (capacity
    {!config.store_buffer_capacity}); they commit to memory on a fence, on a
    rooster-induced context switch, on capacity overflow, on any atomic
    operation by the same process (x86 [lock] semantics), or — under
    [Prob p] drain — spontaneously with probability [p] per step.

    {b Roosters.} With [rooster_interval = Some t], each core flushes its
    worker's store buffer every [t] ticks (plus a bounded random oversleep),
    charging the worker a context-switch cost. This is the mechanism
    Cadence's safety relies on.

    {b Determinism.} Everything — interleaving, jitter, oversleep, skew —
    derives from [seed]. *)

type drain_policy =
  | No_drain  (** adversarial: only fences/atomics/roosters/capacity drain *)
  | Prob of float  (** commit the oldest buffered store with prob. p per step *)

type cost_model = {
  plain_op : int;      (** plain read/write, clock read *)
  atomic_load : int;   (** atomic load — a pointer-chasing node access *)
  atomic_store : int;  (** SC store *)
  cas : int;           (** compare-and-set / fetch-and-add *)
  fence : int;         (** full barrier — the cost hazard pointers pay *)
  remote_access : int; (** added when touching a line owned by another core *)
  ctx_switch : int;    (** charged to the worker at each rooster wake-up *)
  jitter : int;        (** uniform random extra in [0, jitter] per operation *)
  stall_prob : float;
      (** probability, per operation, of a long stall — modelling cache
          misses, interrupts and preemptions, the asynchrony that lets one
          process race far ahead of another *)
  stall_max : int;     (** stall length is uniform in [0, stall_max] *)
}

val default_cost : cost_model
(** plain 1, atomic load 8 (pointer chase), atomic store 3, cas 12,
    fence 60, remote 8, ctx switch 200, jitter 1, stall 0.002/400 —
    ratios in line with published x86 measurements. *)

type config = {
  n_cores : int;
  seed : int;
  cost : cost_model;
  store_buffer_capacity : int;  (** oldest store commits when full (hw ~64) *)
  drain : drain_policy;
  rooster_interval : int option;  (** [None]: no roosters *)
  rooster_oversleep : int;  (** max extra sleep per wake-up, drawn per event *)
  clock_skew : int;  (** per-core constant offset in [0, clock_skew] *)
  kill_roosters_at : int option;
      (** stop firing roosters after this virtual time (fault injection) *)
  trace_capacity : int;
      (** keep the last N events in a ring for debugging; 0 disables *)
}

(** Events recorded in the debug trace ring (when [trace_capacity] > 0). *)
type event =
  | Ev_read
  | Ev_write
  | Ev_atomic_get
  | Ev_atomic_set
  | Ev_cas of bool  (** success? *)
  | Ev_faa
  | Ev_fence
  | Ev_rooster
  | Ev_stall of int
  | Ev_sleep of int
  | Ev_wake

val pp_event : Format.formatter -> event -> unit

val default_config : n_cores:int -> seed:int -> config

type t

val create : config -> t

(** {1 Effects performed by {!Sim_runtime}} *)

type _ Effect.t +=
  | E_atomic_get : 'a Cell.t -> 'a Effect.t
  | E_atomic_set : 'a Cell.t * 'a -> unit Effect.t
  | E_cas : 'a Cell.t * 'a * 'a -> bool Effect.t
  | E_faa : int Cell.t * int -> int Effect.t
  | E_read : 'a Cell.t -> 'a Effect.t
  | E_write : 'a Cell.t * 'a -> unit Effect.t
  | E_fence : unit Effect.t
  | E_now : int Effect.t
  | E_self : int Effect.t
  | E_yield : unit Effect.t
  | E_sleep_until : int -> unit Effect.t
  | E_charge : int -> unit Effect.t

(** {1 Running processes} *)

val exec : t -> pid:int -> (unit -> 'a) -> 'a
(** [exec t ~pid f] runs [f] as process [pid]'s fiber to completion, alone,
    advancing that core's clock. Used for initialisation (the paper fills
    the structure from a single process) and for sequential tests.
    Re-raises any exception of [f]. *)

val spawn : t -> pid:int -> (unit -> unit) -> unit
(** Register the body of process [pid] for the next {!run_all}. [pid] must
    be in [0, n_cores). *)

val run_all : t -> unit
(** Run all spawned processes to completion under the min-clock policy.
    Worker exceptions are recorded, not re-raised — see {!failures}. *)

val reset_clocks : t -> unit
(** Zero every core clock and restart rooster schedules; used after a
    single-process initialisation phase so that measured time starts with
    the workers. Buffers are drained first. *)

val failures : t -> (int * exn) list
(** Processes that died with an exception during the last {!run_all}. *)

val clock_of : t -> pid:int -> int
(** Core-local virtual clock (without skew). *)

val skewed_now : t -> pid:int -> int

val max_clock : t -> int

val flush_count : t -> pid:int -> int
(** Number of store-buffer drains performed by/for this process. *)

val rooster_fires : t -> int
(** Total rooster wake-ups fired so far. *)

val steps : t -> int
(** Total effect-steps executed, across all processes. *)

val recent_events : t -> (int * int * event) list
(** The trace ring's contents, oldest first: (pid, core clock, event).
    Empty unless [config.trace_capacity] > 0. *)
