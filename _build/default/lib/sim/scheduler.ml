open Effect.Deep

type drain_policy = No_drain | Prob of float

type cost_model = {
  plain_op : int;
  atomic_load : int;
  atomic_store : int;
  cas : int;
  fence : int;
  remote_access : int;
  ctx_switch : int;
  jitter : int;
  stall_prob : float;
  stall_max : int;
}

let default_cost =
  { plain_op = 1;
    (* pointer-chasing loads miss the cache for structures larger than L1;
       this is the dominant per-node cost the fence is measured against *)
    atomic_load = 8;
    atomic_store = 3;
    cas = 12;
    fence = 60;
    remote_access = 8;
    ctx_switch = 200;
    jitter = 1;
    stall_prob = 0.002;
    stall_max = 400 }

type config = {
  n_cores : int;
  seed : int;
  cost : cost_model;
  store_buffer_capacity : int;
  drain : drain_policy;
  rooster_interval : int option;
  rooster_oversleep : int;
  clock_skew : int;
  kill_roosters_at : int option;
  trace_capacity : int;
}

type event =
  | Ev_read
  | Ev_write
  | Ev_atomic_get
  | Ev_atomic_set
  | Ev_cas of bool
  | Ev_faa
  | Ev_fence
  | Ev_rooster
  | Ev_stall of int
  | Ev_sleep of int
  | Ev_wake

let pp_event fmt = function
  | Ev_read -> Format.pp_print_string fmt "read"
  | Ev_write -> Format.pp_print_string fmt "write"
  | Ev_atomic_get -> Format.pp_print_string fmt "atomic-get"
  | Ev_atomic_set -> Format.pp_print_string fmt "atomic-set"
  | Ev_cas ok -> Format.fprintf fmt "cas(%s)" (if ok then "ok" else "fail")
  | Ev_faa -> Format.pp_print_string fmt "faa"
  | Ev_fence -> Format.pp_print_string fmt "fence"
  | Ev_rooster -> Format.pp_print_string fmt "rooster-fire"
  | Ev_stall n -> Format.fprintf fmt "stall(%d)" n
  | Ev_sleep target -> Format.fprintf fmt "sleep(until %d)" target
  | Ev_wake -> Format.pp_print_string fmt "wake"

let default_config ~n_cores ~seed =
  { n_cores;
    seed;
    cost = default_cost;
    store_buffer_capacity = 64;
    drain = No_drain;
    rooster_interval = None;
    rooster_oversleep = 0;
    clock_skew = 0;
    kill_roosters_at = None;
    trace_capacity = 0 }

type pstate = Idle | Ready | Sleeping of int | Done | Failed of exn

type proc = {
  pid : int;
  mutable clock : int;
  skew : int;
  buffer : Cell.buffered Queue.t;
  mutable state : pstate;
  mutable resume : (unit -> unit) option;
  mutable next_rooster : int;
  prng : Qs_util.Prng.t;
  mutable flushes : int;
}

type t = {
  cfg : config;
  procs : proc array;
  prng : Qs_util.Prng.t;
  mutable rooster_fires : int;
  mutable steps : int;
  mutable failures : (int * exn) list;
  trace : (int * int * event) array; (* ring: (pid, clock, event) *)
  mutable trace_pos : int;
  mutable trace_len : int;
}

type _ Effect.t +=
  | E_atomic_get : 'a Cell.t -> 'a Effect.t
  | E_atomic_set : 'a Cell.t * 'a -> unit Effect.t
  | E_cas : 'a Cell.t * 'a * 'a -> bool Effect.t
  | E_faa : int Cell.t * int -> int Effect.t
  | E_read : 'a Cell.t -> 'a Effect.t
  | E_write : 'a Cell.t * 'a -> unit Effect.t
  | E_fence : unit Effect.t
  | E_now : int Effect.t
  | E_self : int Effect.t
  | E_yield : unit Effect.t
  | E_sleep_until : int -> unit Effect.t
  | E_charge : int -> unit Effect.t

let create cfg =
  let prng = Qs_util.Prng.create ~seed:cfg.seed in
  let make_proc pid =
    let p_prng = Qs_util.Prng.split prng in
    let skew = if cfg.clock_skew = 0 then 0 else Qs_util.Prng.int p_prng (cfg.clock_skew + 1) in
    let next_rooster =
      match cfg.rooster_interval with
      | None -> max_int
      | Some iv ->
        iv
        + (if cfg.rooster_oversleep = 0 then 0 else Qs_util.Prng.int p_prng (cfg.rooster_oversleep + 1))
    in
    { pid;
      clock = 0;
      skew;
      buffer = Queue.create ();
      state = Idle;
      resume = None;
      next_rooster;
      prng = p_prng;
      flushes = 0 }
  in
  { cfg;
    procs = Array.init cfg.n_cores make_proc;
    prng;
    rooster_fires = 0;
    steps = 0;
    failures = [];
    trace = Array.make (max cfg.trace_capacity 1) (0, 0, Ev_read);
    trace_pos = 0;
    trace_len = 0 }

let record (t : t) (p : proc) ev =
  if t.cfg.trace_capacity > 0 then begin
    t.trace.(t.trace_pos) <- (p.pid, p.clock, ev);
    t.trace_pos <- (t.trace_pos + 1) mod t.cfg.trace_capacity;
    if t.trace_len < t.cfg.trace_capacity then t.trace_len <- t.trace_len + 1
  end

let flush_buffer p =
  if not (Queue.is_empty p.buffer) then begin
    while not (Queue.is_empty p.buffer) do
      Cell.commit (Queue.pop p.buffer)
    done;
    p.flushes <- p.flushes + 1
  end

let roosters_alive t fire_time =
  match t.cfg.kill_roosters_at with None -> true | Some k -> fire_time < k

(* Advance [p]'s clock to [target], firing every rooster wake-up crossed on
   the way. A rooster wake-up forces a context switch on [p]'s core, which
   drains [p]'s store buffer — the visibility guarantee Cadence needs. *)
let rec advance_to (t : t) (p : proc) target =
  match t.cfg.rooster_interval with
  | Some iv when p.next_rooster <= target && roosters_alive t p.next_rooster ->
    p.clock <- max p.clock p.next_rooster;
    flush_buffer p;
    t.rooster_fires <- t.rooster_fires + 1;
    record t p Ev_rooster;
    p.clock <- p.clock + t.cfg.cost.ctx_switch;
    let oversleep =
      if t.cfg.rooster_oversleep = 0 then 0
      else Qs_util.Prng.int p.prng (t.cfg.rooster_oversleep + 1)
    in
    p.next_rooster <- p.next_rooster + iv + oversleep;
    advance_to t p target
  | _ -> p.clock <- max p.clock target

let account (t : t) (p : proc) cost =
  let jitter =
    if t.cfg.cost.jitter = 0 then 0 else Qs_util.Prng.int p.prng (t.cfg.cost.jitter + 1)
  in
  (* Occasional long stalls model cache misses, interrupts and preemptions:
     the asynchrony that lets one process race far ahead of another. *)
  let stall =
    if t.cfg.cost.stall_prob > 0. && Qs_util.Prng.float p.prng 1.0 < t.cfg.cost.stall_prob
    then Qs_util.Prng.int p.prng (t.cfg.cost.stall_max + 1)
    else 0
  in
  if stall > 0 then record t p (Ev_stall stall);
  advance_to t p (p.clock + cost + jitter + stall)

(* Cache-coherence cost model: accessing a line last written by another core
   costs a remote miss. Reads downgrade the line to shared; the next commit
   of a write re-acquires ownership (see Cell.commit). *)
let read_extra (t : t) (p : proc) (c : _ Cell.t) =
  let o = Cell.owner c in
  if o <> p.pid && o <> -1 then begin
    Cell.set_owner c (-1);
    t.cfg.cost.remote_access
  end
  else 0

let write_extra (t : t) (p : proc) (c : _ Cell.t) =
  let o = Cell.owner c in
  let extra = if o <> p.pid && o <> -1 then t.cfg.cost.remote_access else 0 in
  Cell.set_owner c p.pid;
  extra

let run_fiber (t : t) (p : proc) f =
  match_with f ()
    { retc = (fun () -> p.state <- Done);
      exnc =
        (fun e ->
          p.state <- Failed e;
          t.failures <- (p.pid, e) :: t.failures);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_read c ->
            Some
              (fun (k : (a, unit) continuation) ->
                p.resume <-
                  Some
                    (fun () ->
                      account t p (t.cfg.cost.plain_op + read_extra t p c);
                      record t p Ev_read;
                      continue k (Cell.read_own p.pid c)))
          | E_write (c, v) ->
            Some
              (fun (k : (a, unit) continuation) ->
                p.resume <-
                  Some
                    (fun () ->
                      account t p t.cfg.cost.plain_op;
                      let token = Cell.enqueue_write p.pid c v in
                      Queue.push token p.buffer;
                      if Queue.length p.buffer > t.cfg.store_buffer_capacity then
                        Cell.commit (Queue.pop p.buffer);
                      record t p Ev_write;
                      continue k ()))
          | E_atomic_get c ->
            Some
              (fun (k : (a, unit) continuation) ->
                p.resume <-
                  Some
                    (fun () ->
                      account t p (t.cfg.cost.atomic_load + read_extra t p c);
                      record t p Ev_atomic_get;
                      continue k (Cell.read_committed c)))
          | E_atomic_set (c, v) ->
            Some
              (fun (k : (a, unit) continuation) ->
                p.resume <-
                  Some
                    (fun () ->
                      flush_buffer p;
                      account t p (t.cfg.cost.atomic_store + write_extra t p c);
                      Cell.write_committed c v;
                      record t p Ev_atomic_set;
                      continue k ()))
          | E_cas (c, expected, desired) ->
            Some
              (fun (k : (a, unit) continuation) ->
                p.resume <-
                  Some
                    (fun () ->
                      flush_buffer p;
                      account t p (t.cfg.cost.cas + write_extra t p c);
                      let ok = Cell.read_committed c == expected in
                      if ok then Cell.write_committed c desired;
                      record t p (Ev_cas ok);
                      continue k ok))
          | E_faa (c, n) ->
            Some
              (fun (k : (a, unit) continuation) ->
                p.resume <-
                  Some
                    (fun () ->
                      flush_buffer p;
                      account t p (t.cfg.cost.cas + write_extra t p c);
                      let old = Cell.read_committed c in
                      Cell.write_committed c (old + n);
                      record t p Ev_faa;
                      continue k old))
          | E_fence ->
            Some
              (fun (k : (a, unit) continuation) ->
                p.resume <-
                  Some
                    (fun () ->
                      flush_buffer p;
                      account t p t.cfg.cost.fence;
                      record t p Ev_fence;
                      continue k ()))
          | E_now ->
            Some
              (fun (k : (a, unit) continuation) ->
                p.resume <-
                  Some
                    (fun () ->
                      account t p t.cfg.cost.plain_op;
                      continue k (p.clock + p.skew)))
          | E_self ->
            Some
              (fun (k : (a, unit) continuation) ->
                p.resume <- Some (fun () -> continue k p.pid))
          | E_yield ->
            Some
              (fun (k : (a, unit) continuation) ->
                p.resume <- Some (fun () -> continue k ()))
          | E_sleep_until target ->
            Some
              (fun (k : (a, unit) continuation) ->
                record t p (Ev_sleep target);
                p.state <- Sleeping target;
                p.resume <- Some (fun () -> continue k ()))
          | E_charge n ->
            Some
              (fun (k : (a, unit) continuation) ->
                p.resume <-
                  Some
                    (fun () ->
                      account t p n;
                      continue k ()))
          | _ -> None) }

(* A sleeping core advances in bounded quanta so that rooster wake-ups fire
   at (approximately) the right virtual time relative to the other cores. *)
let sleep_quantum = 512

let drain_maybe (t : t) (p : proc) =
  match t.cfg.drain with
  | No_drain -> ()
  | Prob prob ->
    if (not (Queue.is_empty p.buffer)) && Qs_util.Prng.float p.prng 1.0 < prob then
      Cell.commit (Queue.pop p.buffer)

let step (t : t) (p : proc) =
  t.steps <- t.steps + 1;
  match p.state with
  | Sleeping target ->
    advance_to t p (min target (p.clock + sleep_quantum));
    if p.clock >= target then begin
      record t p Ev_wake;
      p.state <- Ready
    end
  | Ready ->
    drain_maybe t p;
    (match p.resume with
    | Some r ->
      p.resume <- None;
      r ()
    | None -> p.state <- Done)
  | Idle | Done | Failed _ -> ()

let active p = match p.state with Ready | Sleeping _ -> true | _ -> false

let pick t =
  let best = ref None in
  Array.iter
    (fun p ->
      if active p then
        match !best with
        | None -> best := Some p
        | Some b ->
          if p.clock < b.clock || (p.clock = b.clock && Qs_util.Prng.bool t.prng) then
            best := Some p)
    t.procs;
  !best

let spawn t ~pid f =
  let p = t.procs.(pid) in
  p.state <- Ready;
  p.resume <- None;
  run_fiber t p f

let run_all t =
  let rec loop () =
    match pick t with
    | None -> ()
    | Some p ->
      step t p;
      loop ()
  in
  loop ();
  (* Commit leftovers so post-run inspection sees final memory. *)
  Array.iter flush_buffer t.procs

let exec t ~pid f =
  let p = t.procs.(pid) in
  let result = ref None in
  spawn t ~pid (fun () -> result := Some (f ()));
  while active p do
    step t p
  done;
  match p.state with
  | Failed e ->
    t.failures <- List.filter (fun (pid', _) -> pid' <> pid) t.failures;
    p.state <- Idle;
    raise e
  | _ -> (
    match !result with
    | Some r -> r
    | None -> failwith "Scheduler.exec: fiber did not complete")

(* Zero every core clock (e.g. after a single-process pre-fill phase, so
   that experiment time starts when the workers do). Store buffers are
   drained first; rooster schedules restart. *)
let reset_clocks t =
  Array.iter
    (fun p ->
      flush_buffer p;
      p.clock <- 0;
      p.next_rooster <-
        (match t.cfg.rooster_interval with
        | None -> max_int
        | Some iv ->
          iv
          + (if t.cfg.rooster_oversleep = 0 then 0
             else Qs_util.Prng.int p.prng (t.cfg.rooster_oversleep + 1))))
    t.procs

let failures t = List.rev t.failures
let clock_of t ~pid = t.procs.(pid).clock
let skewed_now t ~pid = t.procs.(pid).clock + t.procs.(pid).skew
let max_clock t = Array.fold_left (fun acc p -> max acc p.clock) 0 t.procs
let flush_count t ~pid = t.procs.(pid).flushes
let rooster_fires t = t.rooster_fires
let steps t = t.steps

(* Oldest-first contents of the event ring. *)
let recent_events t =
  let n = t.trace_len in
  let cap = max t.cfg.trace_capacity 1 in
  List.init n (fun i -> t.trace.((t.trace_pos - n + i + (2 * cap)) mod cap))
