(** The {!Qs_intf.Runtime_intf.RUNTIME} instance backed by the deterministic
    TSO simulator. All functions (except cell creation) must be called from
    inside a fiber started with {!Scheduler.exec} or {!Scheduler.spawn};
    elsewhere they raise [Effect.Unhandled]. *)

include Qs_intf.Runtime_intf.RUNTIME with type 'a atomic = 'a Cell.t and type 'a plain = 'a Cell.t

val sleep_until : int -> unit
(** Block the calling process until its core clock reaches the target tick.
    A sleeping process makes no steps — this is how prolonged process delays
    are injected. Its store buffer is {e not} drained by sleeping (only by
    rooster wake-ups, modelling a process stalled mid-operation). *)

val charge : int -> unit
(** Account extra virtual ticks of local (non-memory) work to the caller. *)
