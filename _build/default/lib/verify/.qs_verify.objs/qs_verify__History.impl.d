lib/verify/history.ml: Array Format List
