lib/verify/lin_check.ml: Array Hashtbl History Int List Map Printf
