lib/verify/lin_check.mli: History
