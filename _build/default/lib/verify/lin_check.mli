(** Linearizability checking for integer-set histories.

    Exploits compositionality (Herlihy & Wing): an integer set is the
    product of independent per-key membership objects — [search]/[insert]/
    [delete] of key [k] touch only [k]'s membership — so a history is
    linearizable iff each per-key sub-history is. Each sub-history is
    checked with the Wing-Gong / WGL algorithm over a boolean model, with
    memoisation on (set of linearized operations, model state).

    Per-key sub-histories are limited to 60 operations (a bitmask); the
    test harness keeps histories within that. *)

type verdict = Ok | Violation of int  (** offending key *) | Too_large of int

val check_set : initial:int list -> History.entry list -> verdict
(** [check_set ~initial entries] — [initial] lists the keys present before
    the history started. Entries with [res < inv] are rejected by
    [Invalid_argument]. *)

val is_linearizable : initial:int list -> History.entry list -> bool
(** [check_set] as a boolean; [Too_large] raises [Invalid_argument]. *)

val check_key : present0:bool -> History.entry list -> bool
(** Check a single key's sub-history (every entry must have the same key)
    against the boolean membership model starting at [present0]. *)
