(** Concurrent-operation histories for linearizability checking.

    Workers record one entry per completed set operation with invocation and
    response timestamps taken from the runtime clock. Recording is
    per-process (no shared mutable state on the hot path); {!entries} merges
    the logs afterwards. *)

type op_kind = Search | Insert | Delete

type entry = {
  pid : int;
  op : op_kind;
  key : int;
  result : bool;
  inv : int;  (** invocation timestamp *)
  res : int;  (** response timestamp; must be >= [inv] *)
}

type t

val create : n:int -> t
(** A history for [n] processes. *)

val record :
  t -> pid:int -> op:op_kind -> key:int -> inv:int -> res:int -> result:bool -> unit

val entries : t -> entry list
(** All recorded entries, in no particular order. *)

val length : t -> int

val pp_entry : Format.formatter -> entry -> unit
