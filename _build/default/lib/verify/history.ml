type op_kind = Search | Insert | Delete

type entry = {
  pid : int;
  op : op_kind;
  key : int;
  result : bool;
  inv : int;
  res : int;
}

type t = { logs : entry list ref array }

let create ~n = { logs = Array.init n (fun _ -> ref []) }

let record t ~pid ~op ~key ~inv ~res ~result =
  let log = t.logs.(pid) in
  log := { pid; op; key; result; inv; res } :: !log

let entries t =
  Array.fold_left (fun acc log -> List.rev_append !log acc) [] t.logs

let length t = Array.fold_left (fun acc log -> acc + List.length !log) 0 t.logs

let op_to_string = function
  | Search -> "search"
  | Insert -> "insert"
  | Delete -> "delete"

let pp_entry fmt e =
  Format.fprintf fmt "[p%d %s(%d)=%b @%d-%d]" e.pid (op_to_string e.op) e.key
    e.result e.inv e.res
