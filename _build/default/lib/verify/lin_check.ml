type verdict = Ok | Violation of int | Too_large of int

(* Apply one operation to the boolean membership model. Returns the new
   state, or None if the recorded result is impossible. *)
let apply (e : History.entry) present =
  match e.op with
  | History.Search -> if e.result = present then Some present else None
  | History.Insert ->
    if e.result then if present then None else Some true
    else if present then Some true
    else None
  | History.Delete ->
    if e.result then if present then Some false else None
    else if present then None
    else Some false

(* Wing-Gong linearizability over one key: search for a linear order of all
   entries, consistent with real time (an op may be linearized only if no
   other *pending* op responded before it was invoked), under which every
   recorded result matches the model. Memoised on (linearized set, state). *)
let check_key ~present0 (entries : History.entry list) =
  let arr = Array.of_list entries in
  let n = Array.length arr in
  if n > 60 then invalid_arg "Lin_check.check_key: history too large";
  Array.iter
    (fun (e : History.entry) ->
      if e.res < e.inv then invalid_arg "Lin_check: res < inv")
    arr;
  if n = 0 then true
  else begin
    let full = (1 lsl n) - 1 in
    let seen = Hashtbl.create 1024 in
    (* an op i is minimal in the remaining set if no other remaining op's
       response precedes i's invocation *)
    let minimal mask i =
      let rec go j =
        j >= n
        || ((j = i || mask land (1 lsl j) = 0 || arr.(j).res >= arr.(i).inv)
           && go (j + 1))
      in
      go 0
    in
    let rec search mask present =
      (* mask: bit set = still to linearize *)
      if mask = 0 then true
      else begin
        let key = (mask, present) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          let rec try_ops i =
            if i >= n then false
            else if mask land (1 lsl i) <> 0 && minimal mask i then begin
              match apply arr.(i) present with
              | Some present' when search (mask lxor (1 lsl i)) present' -> true
              | _ -> try_ops (i + 1)
            end
            else try_ops (i + 1)
          in
          try_ops 0
        end
      end
    in
    search full present0
  end

module IM = Map.Make (Int)

let check_set ~initial (entries : History.entry list) =
  let by_key =
    List.fold_left
      (fun m (e : History.entry) ->
        IM.update e.key
          (function None -> Some [ e ] | Some es -> Some (e :: es))
          m)
      IM.empty entries
  in
  let initial_set = List.fold_left (fun s k -> IM.add k true s) IM.empty initial in
  let exception Found of verdict in
  try
    IM.iter
      (fun key es ->
        if List.length es > 60 then raise (Found (Too_large key));
        let present0 = IM.mem key initial_set in
        if not (check_key ~present0 es) then raise (Found (Violation key)))
      by_key;
    Ok
  with Found v -> v

let is_linearizable ~initial entries =
  match check_set ~initial entries with
  | Ok -> true
  | Violation _ -> false
  | Too_large k ->
    invalid_arg (Printf.sprintf "Lin_check: sub-history for key %d too large" k)
