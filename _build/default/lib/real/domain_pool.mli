(** Worker-domain pool. *)

val run : n:int -> (int -> 'a) -> 'a array
(** [run ~n f] spawns [n] domains, runs [f pid] on each (with
    [Real_runtime.register_self pid] already done), joins them all and
    returns their results indexed by pid. *)
