lib/real/roosters.mli:
