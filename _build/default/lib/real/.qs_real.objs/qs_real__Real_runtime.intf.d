lib/real/real_runtime.mli: Qs_intf
