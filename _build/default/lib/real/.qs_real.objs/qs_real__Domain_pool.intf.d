lib/real/domain_pool.mli:
