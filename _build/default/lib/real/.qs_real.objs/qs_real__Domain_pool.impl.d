lib/real/domain_pool.ml: Array Domain List Real_runtime
