lib/real/real_runtime.ml: Atomic Domain Unix
