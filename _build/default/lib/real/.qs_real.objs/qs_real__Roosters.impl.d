lib/real/roosters.ml: Atomic Domain List Real_runtime Unix
