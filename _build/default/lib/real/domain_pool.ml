(* Spawn-and-join helper for worker domains. Each worker gets its process id
   registered in domain-local storage before the body runs, so that
   [Real_runtime.self] works inside the SMR schemes. *)

let run ~n f =
  let domains =
    List.init n (fun pid ->
        Domain.spawn (fun () ->
            Real_runtime.register_self pid;
            f pid))
  in
  Array.of_list (List.map Domain.join domains)
