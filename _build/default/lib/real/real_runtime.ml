(* RUNTIME over real OCaml 5 domains.

   Atomics are [Stdlib.Atomic]. Plain cells are single mutable fields; a
   cross-domain plain read is racy but memory-safe under the OCaml memory
   model and may observe a stale value — exactly the TSO store-buffer window
   the paper's Cadence closes with rooster processes and deferred
   reclamation. [fence] is an atomic exchange on a domain-local cell: on
   x86-64 this compiles to a [lock]-prefixed instruction, the same cost class
   as the [mfence] classic hazard pointers pay per traversed node. *)

type 'a atomic = 'a Atomic.t

let atomic = Atomic.make
let get = Atomic.get
let set = Atomic.set
let cas = Atomic.compare_and_set
let fetch_and_add = Atomic.fetch_and_add

type 'a plain = { mutable v : 'a }

let plain v = { v }
let read c = c.v
let write c x = c.v <- x

let fence_cell : int Atomic.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Atomic.make 0)

let fence () = ignore (Atomic.exchange (Domain.DLS.get fence_cell) 1)

let pid_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)
let register_self pid = Domain.DLS.set pid_key pid
let self () = Domain.DLS.get pid_key

let now () = int_of_float (Unix.gettimeofday () *. 1e9)
let yield () = Domain.cpu_relax ()
