lib/ds/treiber_stack.mli: Qs_intf Set_intf
