lib/ds/skiplist.ml: Array List Printf Qs_arena Qs_intf Qs_util Set_intf Smr_glue
