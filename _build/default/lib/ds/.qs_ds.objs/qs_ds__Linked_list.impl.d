lib/ds/linked_list.ml: Array List Qs_arena Qs_intf Set_intf Smr_glue
