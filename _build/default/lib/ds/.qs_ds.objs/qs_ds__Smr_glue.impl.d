lib/ds/smr_glue.ml: Qs_intf Qs_smr
