lib/ds/skiplist.mli: Qs_intf Set_intf
