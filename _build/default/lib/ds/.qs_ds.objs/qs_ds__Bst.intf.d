lib/ds/bst.mli: Qs_intf Set_intf
