lib/ds/linked_list.mli: Qs_intf Set_intf
