lib/ds/hashtable.mli: Qs_intf Set_intf
