lib/ds/msqueue.mli: Qs_intf Set_intf
