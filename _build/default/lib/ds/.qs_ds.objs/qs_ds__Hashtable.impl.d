lib/ds/hashtable.ml: Array Linked_list List Printf Qs_intf Set_intf
