lib/ds/set_intf.ml: Qs_smr
