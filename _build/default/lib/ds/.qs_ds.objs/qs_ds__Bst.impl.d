lib/ds/bst.ml: Array List Printf Qs_arena Qs_intf Set_intf Smr_glue
