(* Command-line driver regenerating every figure of the paper's evaluation
   (§7) on the deterministic multicore simulator, plus the ablations called
   out in DESIGN.md. See EXPERIMENTS.md for the mapping and for recorded
   paper-vs-measured results.

     repro fig3                 Figure 3  (list, 10% updates, None/QSense/HP)
     repro fig5-top --ds list   Figure 5 top row (scalability, 50% updates)
     repro fig5-bottom --ds bst Figure 5 bottom row (delays over time)
     repro overheads            §7.3 overhead summary
     repro ablation --which T   parameter ablations
     repro all                  everything above *)

open Cmdliner
module F = Qs_harness.Figures
module Cset = Qs_harness.Cset

let scale_arg =
  let scale_conv = Arg.enum [ ("quick", F.Quick); ("full", F.Full) ] in
  Arg.(
    value
    & opt scale_conv F.Quick
    & info [ "scale" ] ~docv:"SCALE"
        ~doc:
          "Experiment scale: 'quick' (scaled-down sizes, fast) or 'full' \
           (paper-sized structures; minutes of runtime).")

let seed_arg =
  Arg.(
    value
    & opt int 1
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"Master seed; every run is deterministic given the seed.")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the table as CSV to $(docv).")

let ds_arg =
  let ds_conv =
    Arg.enum
      [ ("list", Cset.List);
        ("skiplist", Cset.Skiplist);
        ("bst", Cset.Bst);
        ("hashtable", Cset.Hashtable)
      ]
  in
  Arg.(
    value
    & opt ds_conv Cset.List
    & info [ "ds" ] ~docv:"DS"
        ~doc:"Data structure: list, skiplist, bst or hashtable.")

let emit ?csv title tbl =
  Printf.printf "== %s ==\n%!" title;
  Qs_util.Table.print tbl;
  print_newline ();
  match csv with
  | Some path ->
    Qs_util.Table.save_csv tbl path;
    Printf.printf "(csv written to %s)\n%!" path
  | None -> ()

let sparklines_of_series results =
  List.iter
    (fun (scheme, (r : Qs_harness.Sim_exp.result)) ->
      Printf.printf "%-8s %s%s\n"
        (Qs_smr.Scheme.to_string scheme)
        (Qs_util.Histogram.sparkline r.series)
        (match r.failed_at with
        | Some t -> Printf.sprintf "   (OUT OF MEMORY at t=%d)" t
        | None -> ""))
    results;
  print_newline ()

let fig3_cmd =
  let run scale seed csv =
    let tbl, _ = F.fig3 ~scale ~seed in
    emit ?csv "Figure 3: linked list, 10% updates (throughput, ops/Mtick)" tbl
  in
  Cmd.v
    (Cmd.info "fig3" ~doc:"Reproduce Figure 3.")
    Term.(const run $ scale_arg $ seed_arg $ csv_arg)

let fig5_top_cmd =
  let run scale seed csv ds =
    let tbl, _ = F.fig5_top ~scale ~seed ~ds in
    emit ?csv
      (Printf.sprintf
         "Figure 5 (top, %s): 50%% updates, throughput vs cores (ops/Mtick)"
         (Cset.kind_to_string ds))
      tbl
  in
  Cmd.v
    (Cmd.info "fig5-top" ~doc:"Reproduce Figure 5, top row.")
    Term.(const run $ scale_arg $ seed_arg $ csv_arg $ ds_arg)

let fig5_bottom_cmd =
  let run scale seed csv ds =
    let tbl, results = F.fig5_bottom ~scale ~seed ~ds in
    emit ?csv
      (Printf.sprintf
         "Figure 5 (bottom, %s): 8 processes, one delayed in alternating 10s \
          windows; throughput over time (ops/Mtick)"
         (Cset.kind_to_string ds))
      tbl;
    sparklines_of_series results
  in
  Cmd.v
    (Cmd.info "fig5-bottom" ~doc:"Reproduce Figure 5, bottom row.")
    Term.(const run $ scale_arg $ seed_arg $ csv_arg $ ds_arg)

let overheads_cmd =
  let run scale seed csv =
    let tbl, _, _ = F.overheads ~scale ~seed in
    emit ?csv
      "Overheads (§7.3): throughput at 8 cores, 50% updates; overhead vs \
       leaky; speedup vs HP"
      tbl
  in
  Cmd.v
    (Cmd.info "overheads" ~doc:"Reproduce the §7.3 overhead summary.")
    Term.(const run $ scale_arg $ seed_arg $ csv_arg)

let ablation_cmd =
  let which_conv =
    Arg.enum [ ("T", `T); ("Q", `Q); ("C", `C); ("epsilon", `Eps); ("mix", `Mix) ]
  in
  let which_arg =
    Arg.(
      value
      & opt which_conv `T
      & info [ "which" ] ~docv:"PARAM"
          ~doc:
            "Parameter to sweep: T (rooster interval), Q (quiescence \
             threshold), C (switch threshold), epsilon (clock-skew \
             tolerance).")
  in
  let run seed csv which =
    match which with
    | `T ->
      emit ?csv "Ablation: rooster interval T (Cadence, list, 8 cores)"
        (F.ablation_rooster ~seed)
    | `Q ->
      emit ?csv "Ablation: quiescence threshold Q (QSBR, list, 8 cores)"
        (F.ablation_quiescence ~seed)
    | `C ->
      emit ?csv "Ablation: switch threshold C (QSense under periodic delays)"
        (F.ablation_switch_threshold ~seed)
    | `Eps ->
      emit ?csv
        "Ablation: epsilon vs rooster oversleep (Cadence safety; violations \
         must be 0 iff epsilon covers the timing inaccuracy)"
        (F.ablation_epsilon ~seed)
    | `Mix ->
      emit ?csv
        "Ablation: update mix (§3.2 — the HP fence tax is highest on \
         read-only workloads)"
        (F.ablation_update_mix ~seed)
  in
  Cmd.v
    (Cmd.info "ablation" ~doc:"Run a parameter ablation.")
    Term.(const run $ seed_arg $ csv_arg $ which_arg)

let run_cmd =
  let scheme_conv =
    Arg.enum
      (List.map (fun k -> (Qs_smr.Scheme.to_string k, k)) Qs_smr.Scheme.all)
  in
  let scheme_arg =
    Arg.(value & opt scheme_conv Qs_smr.Scheme.Qsense
         & info [ "scheme" ] ~docv:"SCHEME" ~doc:"Reclamation scheme.")
  in
  let cores_arg =
    Arg.(value & opt int 8 & info [ "cores" ] ~docv:"N" ~doc:"Worker processes/cores.")
  in
  let range_arg =
    Arg.(value & opt int 2_000 & info [ "range" ] ~docv:"KEYS" ~doc:"Key range.")
  in
  let updates_arg =
    Arg.(value & opt int 50 & info [ "updates" ] ~docv:"PCT" ~doc:"Update percentage.")
  in
  let duration_arg =
    Arg.(value & opt int 400_000
         & info [ "duration" ] ~docv:"TICKS" ~doc:"Virtual duration in ticks.")
  in
  let stall_arg =
    Arg.(value & opt (some int) None
         & info [ "stall-at" ] ~docv:"TICK"
             ~doc:"Stall the last worker permanently from this virtual time.")
  in
  let cap_arg =
    Arg.(value & opt (some int) None
         & info [ "cap" ] ~docv:"NODES" ~doc:"Arena capacity (memory bound).")
  in
  let run scheme ds cores range updates duration stall cap seed =
    let r =
      Qs_harness.Sim_exp.run
        { (Qs_harness.Sim_exp.default_setup ~ds ~scheme ~n_processes:cores
             ~workload:(Qs_workload.Spec.make ~key_range:range ~update_pct:updates)) with
          seed;
          duration;
          capacity = cap;
          delays =
            Option.map
              (fun at -> { Qs_harness.Sim_exp.victim = cores - 1; windows = [ (at, max_int) ] })
              stall }
    in
    let tbl = Qs_util.Table.create [ "metric"; "value" ] in
    let add k v = Qs_util.Table.add_row tbl [ k; v ] in
    add "scheme" (Qs_smr.Scheme.to_string scheme);
    add "structure" (Cset.kind_to_string ds);
    add "ops total" (string_of_int r.ops_total);
    add "throughput (ops/Mtick)" (Printf.sprintf "%.1f" r.throughput);
    add "retired now / peak"
      (Printf.sprintf "%d / %d" r.report.smr.retired_now r.report.smr.retired_peak);
    add "frees" (string_of_int r.report.smr.frees);
    add "epoch advances" (string_of_int r.report.smr.epoch_advances);
    add "fallback / fast-path switches"
      (Printf.sprintf "%d / %d" r.report.smr.fallback_switches r.report.smr.fastpath_switches);
    add "mode at end"
      (match r.report.smr.mode with Qs_smr.Smr_intf.Fast -> "fast" | _ -> "fallback");
    add "use-after-free" (string_of_int r.violations);
    add "out of memory"
      (match r.failed_at with Some t -> Printf.sprintf "at t=%d" t | None -> "no");
    add "leak check"
      (match r.leak_check with
      | `Ok -> "ok"
      | `Leaked n -> Printf.sprintf "LEAKED %d" n
      | `Skipped -> "skipped (leaky baseline)");
    emit "Custom run" tbl
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one custom experiment and print its summary.")
    Term.(const run $ scheme_arg $ ds_arg $ cores_arg $ range_arg $ updates_arg
          $ duration_arg $ stall_arg $ cap_arg $ seed_arg)

let latency_cmd =
  let run seed csv =
    emit ?csv
      "Per-operation latency (ticks; list, 8 cores, 50% updates) — medians \
       show the per-traversal tax, tails show batched reclamation work"
      (F.latency_table ~seed)
  in
  Cmd.v
    (Cmd.info "latency" ~doc:"Per-operation latency distribution per scheme.")
    Term.(const run $ seed_arg $ csv_arg)

let all_cmd =
  let run scale seed =
    let tbl, _ = F.fig3 ~scale ~seed in
    emit "Figure 3" tbl;
    List.iter
      (fun ds ->
        let tbl, _ = F.fig5_top ~scale ~seed ~ds in
        emit (Printf.sprintf "Figure 5 top (%s)" (Cset.kind_to_string ds)) tbl)
      [ Cset.List; Cset.Skiplist; Cset.Bst ];
    List.iter
      (fun ds ->
        let tbl, results = F.fig5_bottom ~scale ~seed ~ds in
        emit (Printf.sprintf "Figure 5 bottom (%s)" (Cset.kind_to_string ds)) tbl;
        sparklines_of_series results)
      [ Cset.List; Cset.Skiplist; Cset.Bst ];
    let tbl, _, _ = F.overheads ~scale ~seed in
    emit "Overheads (§7.3)" tbl;
    emit "Ablation T" (F.ablation_rooster ~seed);
    emit "Ablation Q" (F.ablation_quiescence ~seed);
    emit "Ablation C" (F.ablation_switch_threshold ~seed);
    emit "Ablation epsilon" (F.ablation_epsilon ~seed);
    emit "Ablation update mix" (F.ablation_update_mix ~seed);
    emit "Latency distribution" (F.latency_table ~seed)
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every figure and ablation.")
    Term.(const run $ scale_arg $ seed_arg)

let () =
  let info =
    Cmd.info "repro" ~version:"1.0"
      ~doc:
        "Reproduce the QSense paper's evaluation on the deterministic \
         multicore simulator."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ fig3_cmd; fig5_top_cmd; fig5_bottom_cmd; overheads_cmd; ablation_cmd; latency_cmd; run_cmd; all_cmd ]))
