(* Tests for the deterministic TSO simulator: store-buffer semantics,
   fences, atomics, roosters, clocks, delay injection, determinism. *)

open Qs_sim
module R = Sim_runtime

let cfg ?(n_cores = 2) ?(seed = 1) ?rooster_interval ?(capacity = 1024)
    ?(skew = 0) ?(oversleep = 0) ?kill_roosters_at ?(drain = Scheduler.No_drain) () =
  { (Scheduler.default_config ~n_cores ~seed) with
    rooster_interval;
    store_buffer_capacity = capacity;
    clock_skew = skew;
    rooster_oversleep = oversleep;
    kill_roosters_at;
    drain }

(* A plain write is invisible to the other process until a fence. *)
let test_tso_staleness () =
  let s = Scheduler.create (cfg ()) in
  let x = R.plain 0 in
  let seen_before_fence = ref (-1) in
  let seen_after_fence = ref (-1) in
  let flag = R.atomic false in
  Scheduler.spawn s ~pid:0 (fun () ->
      R.write x 1;
      (* let process 1 observe before we fence *)
      for _ = 1 to 50 do
        R.yield ();
        R.charge 5
      done;
      R.fence ();
      R.set flag true);
  Scheduler.spawn s ~pid:1 (fun () ->
      R.charge 20;
      seen_before_fence := R.read x;
      (* wait for the fence *)
      while not (R.get flag) do
        R.charge 5
      done;
      seen_after_fence := R.read x);
  Scheduler.run_all s;
  Alcotest.(check (list (pair int reject))) "no failures" [] (Scheduler.failures s);
  Alcotest.(check int) "stale before fence" 0 !seen_before_fence;
  Alcotest.(check int) "visible after fence" 1 !seen_after_fence

(* Store-to-load forwarding: the writer reads its own buffered store. *)
let test_store_to_load_forwarding () =
  let s = Scheduler.create (cfg ~n_cores:1 ()) in
  let x = R.plain 0 in
  let v =
    Scheduler.exec s ~pid:0 (fun () ->
        R.write x 42;
        R.read x)
  in
  Alcotest.(check int) "own store visible" 42 v;
  Alcotest.(check int) "still buffered" 1 (Cell.pending_count x)

(* Atomic ops by the writer drain its own buffer (x86 lock semantics). *)
let test_atomic_drains_buffer () =
  let s = Scheduler.create (cfg ~n_cores:1 ()) in
  let x = R.plain 0 in
  let a = R.atomic 0 in
  Scheduler.exec s ~pid:0 (fun () ->
      R.write x 7;
      R.set a 1);
  Alcotest.(check int) "committed" 7 (Cell.read_committed x)

(* Buffer capacity: oldest store commits when the buffer overflows. *)
let test_capacity_overflow () =
  let s = Scheduler.create (cfg ~n_cores:1 ~capacity:4 ()) in
  let cells = Array.init 10 (fun _ -> R.plain 0) in
  Scheduler.exec s ~pid:0 (fun () ->
      Array.iteri (fun i c -> R.write c (i + 1)) cells);
  (* 10 writes, capacity 4: the 6 oldest must have committed *)
  for i = 0 to 5 do
    Alcotest.(check int) (Printf.sprintf "cell %d committed" i) (i + 1)
      (Cell.read_committed cells.(i))
  done;
  Alcotest.(check int) "newest still pending" 0 (Cell.read_committed cells.(9))

(* Roosters flush the worker's buffer within T (+ oversleep + switch). *)
let test_rooster_flush () =
  let s = Scheduler.create (cfg ~n_cores:1 ~rooster_interval:100 ()) in
  let x = R.plain 0 in
  Scheduler.exec s ~pid:0 (fun () ->
      R.write x 5;
      R.charge 500);
  Alcotest.(check bool) "rooster fired" true (Scheduler.rooster_fires s > 0);
  Alcotest.(check int) "flushed by rooster" 5 (Cell.read_committed x)

let test_kill_roosters () =
  let s =
    Scheduler.create (cfg ~n_cores:1 ~rooster_interval:100 ~kill_roosters_at:50 ())
  in
  let x = R.plain 0 in
  Scheduler.exec s ~pid:0 (fun () ->
      R.write x 5;
      R.charge 500);
  Alcotest.(check int) "no rooster fired" 0 (Scheduler.rooster_fires s);
  Alcotest.(check int) "still buffered" 0 (Cell.read_committed x)

let test_cas_semantics () =
  let s = Scheduler.create (cfg ~n_cores:1 ()) in
  let a = R.atomic "a" in
  let r =
    Scheduler.exec s ~pid:0 (fun () ->
        let v0 = R.get a in
        let ok1 = R.cas a v0 "b" in
        let ok2 = R.cas a v0 "c" in
        (* stale expected *)
        (ok1, ok2, R.get a))
  in
  Alcotest.(check (triple bool bool string)) "cas" (true, false, "b") r

let test_faa () =
  let s = Scheduler.create (cfg ~n_cores:1 ()) in
  let a = R.atomic 10 in
  let old =
    Scheduler.exec s ~pid:0 (fun () ->
        let o = R.fetch_and_add a 5 in
        o)
  in
  Alcotest.(check int) "old value" 10 old;
  Alcotest.(check int) "new value" 15 (Cell.read_committed a)

(* Virtual time: parallel cores advance independently — n cores doing the
   same work finish at roughly the same virtual time as one core. *)
let test_parallel_virtual_time () =
  let work () =
    let a = R.plain 0 in
    for i = 1 to 1000 do
      R.write a i
    done
  in
  let t1 =
    let s = Scheduler.create (cfg ~n_cores:1 ~seed:3 ()) in
    Scheduler.spawn s ~pid:0 work;
    Scheduler.run_all s;
    Scheduler.max_clock s
  in
  let t4 =
    let s = Scheduler.create (cfg ~n_cores:4 ~seed:3 ()) in
    for pid = 0 to 3 do
      Scheduler.spawn s ~pid work
    done;
    Scheduler.run_all s;
    Scheduler.max_clock s
  in
  Alcotest.(check bool)
    (Printf.sprintf "4 cores not 4x slower (t1=%d t4=%d)" t1 t4)
    true
    (t4 < 2 * t1)

let test_self_and_now () =
  let s = Scheduler.create (cfg ~n_cores:3 ()) in
  let ids = Array.make 3 (-1) in
  for pid = 0 to 2 do
    Scheduler.spawn s ~pid (fun () ->
        ids.(pid) <- R.self ();
        let t0 = R.now () in
        R.charge 100;
        let t1 = R.now () in
        assert (t1 >= t0 + 100))
  done;
  Scheduler.run_all s;
  Alcotest.(check (array int)) "self ids" [| 0; 1; 2 |] ids;
  Alcotest.(check (list (pair int reject))) "no failures" [] (Scheduler.failures s)

let test_clock_skew_bounded () =
  let skew = 50 in
  let s = Scheduler.create (cfg ~n_cores:4 ~skew ()) in
  for pid = 0 to 3 do
    Scheduler.spawn s ~pid (fun () ->
        let t = R.now () in
        assert (t <= Scheduler.max_clock s + skew))
  done;
  Scheduler.run_all s;
  Alcotest.(check (list (pair int reject))) "no failures" [] (Scheduler.failures s)

let test_sleep_until () =
  let s = Scheduler.create (cfg ~n_cores:2 ()) in
  let woke_at = ref 0 in
  let other_progress = ref 0 in
  Scheduler.spawn s ~pid:0 (fun () ->
      R.sleep_until 10_000;
      woke_at := R.now ());
  Scheduler.spawn s ~pid:1 (fun () ->
      while R.now () < 5_000 do
        R.charge 50;
        incr other_progress
      done);
  Scheduler.run_all s;
  Alcotest.(check bool) "woke after target" true (!woke_at >= 10_000);
  Alcotest.(check bool) "other made progress meanwhile" true (!other_progress > 50)

(* A sleeping process's buffer is still flushed by its core's rooster. *)
let test_rooster_flushes_sleeper () =
  let s = Scheduler.create (cfg ~n_cores:1 ~rooster_interval:1_000 ()) in
  let x = R.plain 0 in
  Scheduler.exec s ~pid:0 (fun () ->
      R.write x 9;
      R.sleep_until 20_000);
  Alcotest.(check int) "flushed during sleep" 9 (Cell.read_committed x)

(* Exceptions in workers are recorded, not propagated by run_all. *)
let test_failure_recorded () =
  let s = Scheduler.create (cfg ~n_cores:2 ()) in
  Scheduler.spawn s ~pid:0 (fun () -> failwith "boom");
  Scheduler.spawn s ~pid:1 (fun () -> R.charge 10);
  Scheduler.run_all s;
  match Scheduler.failures s with
  | [ (0, Failure msg) ] when msg = "boom" -> ()
  | _ -> Alcotest.fail "expected exactly one recorded failure"

let test_exec_reraises () =
  let s = Scheduler.create (cfg ~n_cores:1 ()) in
  Alcotest.check_raises "exec re-raises" (Failure "bang") (fun () ->
      Scheduler.exec s ~pid:0 (fun () -> failwith "bang"));
  Alcotest.(check (list (pair int reject))) "failures cleared" [] (Scheduler.failures s)

(* Full determinism: two runs with the same seed produce identical clocks,
   step counts and memory contents. *)
let run_det seed =
  let s = Scheduler.create (cfg ~n_cores:4 ~seed ()) in
  let shared = R.atomic 0 in
  let accum = R.plain 0 in
  for pid = 0 to 3 do
    Scheduler.spawn s ~pid (fun () ->
        for _ = 1 to 200 do
          let v = R.get shared in
          if R.cas shared v (v + 1) then R.write accum (R.read accum + 1);
          R.fence ()
        done)
  done;
  Scheduler.run_all s;
  (Scheduler.max_clock s, Scheduler.steps s, Cell.read_committed shared, Cell.read_committed accum)

let test_determinism () =
  let a = run_det 99 and b = run_det 99 in
  Alcotest.(check bool) "identical runs" true (a = b);
  let c = run_det 100 in
  Alcotest.(check bool) "different seed differs" true (a <> c)

(* The drain policy eventually commits buffered stores without fences. *)
let test_prob_drain () =
  let s = Scheduler.create (cfg ~n_cores:1 ~drain:(Scheduler.Prob 0.5) ()) in
  let x = R.plain 0 in
  Scheduler.exec s ~pid:0 (fun () ->
      R.write x 3;
      for _ = 1 to 200 do
        R.charge 1;
        R.yield ()
      done);
  Alcotest.(check int) "drained probabilistically" 3 (Cell.read_committed x)

(* Remote-access cost: ping-pong on one cell costs more than local reuse. *)
let test_contention_cost () =
  let run n_cores =
    let s = Scheduler.create (cfg ~n_cores ~seed:5 ()) in
    let hot = R.atomic 0 in
    for pid = 0 to n_cores - 1 do
      Scheduler.spawn s ~pid (fun () ->
          for _ = 1 to 500 do
            let v = R.get hot in
            ignore (R.cas hot v (v + 1))
          done)
    done;
    Scheduler.run_all s;
    Scheduler.max_clock s
  in
  let solo = run 1 and contended = run 4 in
  Alcotest.(check bool)
    (Printf.sprintf "contention costs (solo=%d contended=%d)" solo contended)
    true (contended > solo)

(* reset_clocks: clocks restart at zero, buffers drain, roosters reschedule *)
let test_reset_clocks () =
  let s = Scheduler.create (cfg ~n_cores:2 ~rooster_interval:500 ()) in
  let x = R.plain 0 in
  Scheduler.exec s ~pid:0 (fun () ->
      R.charge 10_000;
      R.write x 3);
  Alcotest.(check bool) "clock advanced" true (Scheduler.clock_of s ~pid:0 >= 10_000);
  Scheduler.reset_clocks s;
  Alcotest.(check int) "clock reset" 0 (Scheduler.clock_of s ~pid:0);
  Alcotest.(check int) "buffer drained" 3 (Cell.read_committed x);
  (* roosters fire again on the fresh timeline *)
  let fires_before = Scheduler.rooster_fires s in
  Scheduler.exec s ~pid:0 (fun () -> R.charge 2_000);
  Alcotest.(check bool) "roosters rescheduled" true
    (Scheduler.rooster_fires s > fires_before)

let test_counters () =
  let s = Scheduler.create (cfg ~n_cores:1 ()) in
  let x = R.plain 0 in
  Scheduler.exec s ~pid:0 (fun () ->
      R.write x 1;
      R.fence ();
      R.write x 2;
      R.fence ());
  Alcotest.(check bool) "steps counted" true (Scheduler.steps s >= 4);
  Alcotest.(check bool) "flushes counted" true (Scheduler.flush_count s ~pid:0 >= 2)

(* atomic loads cost more than plain ops (the pointer-chase model) *)
let test_atomic_load_cost () =
  let cost_of f =
    let s =
      Scheduler.create
        { (cfg ~n_cores:1 ()) with
          cost = { Scheduler.default_cost with jitter = 0; stall_prob = 0. } }
    in
    Scheduler.exec s ~pid:0 f;
    Scheduler.clock_of s ~pid:0
  in
  let a = R.atomic 0 in
  let p = R.plain 0 in
  let atomic_cost = cost_of (fun () -> for _ = 1 to 100 do ignore (R.get a) done) in
  let plain_cost = cost_of (fun () -> for _ = 1 to 100 do ignore (R.read p) done) in
  Alcotest.(check bool)
    (Printf.sprintf "atomic load (%d) dearer than plain read (%d)" atomic_cost plain_cost)
    true
    (atomic_cost > 2 * plain_cost)

(* Event-trace ring: records the configured window of events, oldest first. *)
let test_trace_ring () =
  let s =
    Scheduler.create
      { (cfg ~n_cores:1 ~rooster_interval:300 ()) with trace_capacity = 8 }
  in
  let x = R.plain 0 in
  let a = R.atomic 0 in
  Scheduler.exec s ~pid:0 (fun () ->
      R.write x 1;
      ignore (R.get a);
      ignore (R.cas a 0 1);
      R.fence ();
      R.charge 1_000);
  let events = Scheduler.recent_events s in
  Alcotest.(check bool) "bounded by capacity" true (List.length events <= 8);
  Alcotest.(check bool) "nonempty" true (events <> []);
  let kinds = List.map (fun (_, _, e) -> e) events in
  Alcotest.(check bool) "rooster fires recorded" true
    (List.exists (function Scheduler.Ev_rooster -> true | _ -> false) kinds);
  (* clocks are non-decreasing per process *)
  let rec monotone last = function
    | [] -> true
    | (_, clock, _) :: rest -> clock >= last && monotone clock rest
  in
  Alcotest.(check bool) "clock-ordered" true (monotone 0 events);
  (* disabled by default *)
  let s2 = Scheduler.create (cfg ~n_cores:1 ()) in
  Scheduler.exec s2 ~pid:0 (fun () -> R.write x 2);
  Alcotest.(check (list reject)) "disabled: empty" []
    (List.map (fun _ -> ()) (Scheduler.recent_events s2))

let suite =
  [ Alcotest.test_case "tso staleness until fence" `Quick test_tso_staleness;
    Alcotest.test_case "store-to-load forwarding" `Quick test_store_to_load_forwarding;
    Alcotest.test_case "atomic drains buffer" `Quick test_atomic_drains_buffer;
    Alcotest.test_case "capacity overflow commits oldest" `Quick test_capacity_overflow;
    Alcotest.test_case "rooster flushes buffer" `Quick test_rooster_flush;
    Alcotest.test_case "killed roosters stop flushing" `Quick test_kill_roosters;
    Alcotest.test_case "cas semantics" `Quick test_cas_semantics;
    Alcotest.test_case "fetch-and-add" `Quick test_faa;
    Alcotest.test_case "parallel virtual time" `Quick test_parallel_virtual_time;
    Alcotest.test_case "self and now" `Quick test_self_and_now;
    Alcotest.test_case "clock skew bounded" `Quick test_clock_skew_bounded;
    Alcotest.test_case "sleep_until delays" `Quick test_sleep_until;
    Alcotest.test_case "rooster flushes sleeping process" `Quick test_rooster_flushes_sleeper;
    Alcotest.test_case "worker failure recorded" `Quick test_failure_recorded;
    Alcotest.test_case "exec re-raises" `Quick test_exec_reraises;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "probabilistic drain" `Quick test_prob_drain;
    Alcotest.test_case "contention cost model" `Quick test_contention_cost;
    Alcotest.test_case "reset clocks" `Quick test_reset_clocks;
    Alcotest.test_case "step/flush counters" `Quick test_counters;
    Alcotest.test_case "atomic load cost model" `Quick test_atomic_load_cost;
    Alcotest.test_case "event trace ring" `Quick test_trace_ring
  ]
