(* Workload specification and pre-generated stream tests. *)

module Spec = Qs_workload.Spec
module Gen = Qs_workload.Generator

let test_spec_validation () =
  Alcotest.check_raises "bad range"
    (Invalid_argument "Spec.make: key_range must be positive") (fun () ->
      ignore (Spec.make ~key_range:0 ~update_pct:10));
  Alcotest.check_raises "bad pct"
    (Invalid_argument "Spec.make: update_pct must be in [0, 100]") (fun () ->
      ignore (Spec.make ~key_range:10 ~update_pct:101))

let test_spec_distribution () =
  let spec = Spec.make ~key_range:100 ~update_pct:40 in
  let prng = Qs_util.Prng.create ~seed:5 in
  let n = 100_000 in
  let searches = ref 0 and inserts = ref 0 and deletes = ref 0 in
  for _ = 1 to n do
    match Spec.pick prng spec with
    | Spec.Search k | Spec.Insert k | Spec.Delete k when k < 0 || k >= 100 ->
      Alcotest.fail "key out of range"
    | Spec.Search _ -> incr searches
    | Spec.Insert _ -> incr inserts
    | Spec.Delete _ -> incr deletes
  done;
  let pct x = 100 * x / n in
  Alcotest.(check bool) "searches ~60%" true (abs (pct !searches - 60) <= 2);
  Alcotest.(check bool) "inserts ~20%" true (abs (pct !inserts - 20) <= 2);
  Alcotest.(check bool) "deletes ~20%" true (abs (pct !deletes - 20) <= 2)

let test_initial_keys () =
  let spec = Spec.make ~key_range:100 ~update_pct:50 in
  let keys = Spec.initial_keys spec in
  Alcotest.(check int) "half the range" 50 (List.length keys);
  List.iter
    (fun k ->
      if k < 0 || k >= 100 then Alcotest.fail "initial key out of range";
      if k mod 2 <> 0 then Alcotest.fail "expected even keys")
    keys;
  Alcotest.(check (list int)) "distinct" (List.sort_uniq compare keys) keys

let test_generator_deterministic () =
  let spec = Spec.updates_50 ~key_range:64 in
  let a = Gen.make spec ~n_processes:3 ~ops_per_process:500 ~seed:9 in
  let b = Gen.make spec ~n_processes:3 ~ops_per_process:500 ~seed:9 in
  for pid = 0 to 2 do
    Alcotest.(check bool) "same stream" true (Gen.stream a ~pid = Gen.stream b ~pid)
  done;
  let c = Gen.make spec ~n_processes:3 ~ops_per_process:500 ~seed:10 in
  Alcotest.(check bool) "different seed differs" true
    (Gen.stream a ~pid:0 <> Gen.stream c ~pid:0)

let test_generator_streams_independent () =
  let spec = Spec.updates_50 ~key_range:64 in
  let g = Gen.make spec ~n_processes:2 ~ops_per_process:300 ~seed:4 in
  Alcotest.(check bool) "streams differ across pids" true
    (Gen.stream g ~pid:0 <> Gen.stream g ~pid:1);
  Alcotest.(check int) "length" 300 (Gen.length g);
  Alcotest.(check int) "processes" 2 (Gen.n_processes g)

let test_generator_census () =
  let spec = Spec.make ~key_range:64 ~update_pct:30 in
  let g = Gen.make spec ~n_processes:1 ~ops_per_process:20_000 ~seed:2 in
  let s, i, d = Gen.census (Gen.stream g ~pid:0) in
  Alcotest.(check int) "total" 20_000 (s + i + d);
  Alcotest.(check bool) "updates ~30%" true
    (abs ((100 * (i + d) / 20_000) - 30) <= 2)

let test_latency_recording () =
  let r =
    Qs_harness.Sim_exp.run
      { (Qs_harness.Sim_exp.default_setup ~ds:Qs_harness.Cset.List
           ~scheme:Qs_smr.Scheme.Qsense ~n_processes:2
           ~workload:(Spec.updates_50 ~key_range:64)) with
        duration = 60_000;
        record_latency = true }
  in
  Alcotest.(check int) "one latency per op" r.ops_total (Array.length r.latencies);
  Array.iter
    (fun l -> if l <= 0 then Alcotest.fail "non-positive latency")
    r.latencies

let suite =
  [ Alcotest.test_case "spec validation" `Quick test_spec_validation;
    Alcotest.test_case "spec distribution" `Quick test_spec_distribution;
    Alcotest.test_case "initial keys" `Quick test_initial_keys;
    Alcotest.test_case "generator deterministic" `Quick test_generator_deterministic;
    Alcotest.test_case "generator per-pid streams" `Quick test_generator_streams_independent;
    Alcotest.test_case "generator census" `Quick test_generator_census;
    Alcotest.test_case "latency recording" `Quick test_latency_recording
  ]
