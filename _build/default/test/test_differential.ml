(* Differential testing across runtimes: the same pre-generated operation
   stream, applied sequentially, must produce the exact same result sequence
   on (a) the reference model, (b) every structure on the simulator runtime
   and (c) every structure on the real-domain runtime. Any divergence
   pinpoints a runtime-abstraction bug (the data-structure code is shared —
   only the RUNTIME instance differs). *)

module Spec = Qs_workload.Spec
module Gen = Qs_workload.Generator
module IS = Set.Make (Int)

let spec = Spec.make ~key_range:96 ~update_pct:60
let stream = Gen.stream (Gen.make spec ~n_processes:1 ~ops_per_process:2_500 ~seed:77) ~pid:0

let model_results () =
  let model = ref IS.empty in
  Array.map
    (fun op ->
      match op with
      | Spec.Search k -> IS.mem k !model
      | Spec.Insert k ->
        let r = not (IS.mem k !model) in
        model := IS.add k !model;
        r
      | Spec.Delete k ->
        let r = IS.mem k !model in
        model := IS.remove k !model;
        r)
    stream

let cfg scheme = Qs_ds.Set_intf.default_config ~n_processes:1 ~scheme

let apply_stream search insert delete =
  Array.map
    (fun op ->
      match op with
      | Spec.Search k -> search k
      | Spec.Insert k -> insert k
      | Spec.Delete k -> delete k)
    stream

let sim_results (module C : Qs_harness.Cset.S) scheme =
  let s =
    Qs_sim.Scheduler.create
      { (Qs_sim.Scheduler.default_config ~n_cores:1 ~seed:1) with
        rooster_interval = Some 2_000 }
  in
  let set = C.create (cfg scheme) in
  let ctx = C.register set ~pid:0 in
  let r =
    Qs_sim.Scheduler.exec s ~pid:0 (fun () ->
        apply_stream (C.search ctx) (C.insert ctx) (C.delete ctx))
  in
  Alcotest.(check int) "sim: no violations" 0 (C.violations set);
  r

let real_results (module C : Qs_harness.Cset.S) scheme =
  Qs_real.Real_runtime.register_self 0;
  let set = C.create (cfg scheme) in
  let ctx = C.register set ~pid:0 in
  let r = apply_stream (C.search ctx) (C.insert ctx) (C.delete ctx) in
  Alcotest.(check int) "real: no violations" 0 (C.violations set);
  r

let case name run =
  Alcotest.test_case name `Quick (fun () ->
      let expected = model_results () in
      List.iter
        (fun scheme ->
          let got = run scheme in
          if got <> expected then begin
            (* locate the first divergence for a useful message *)
            let i = ref 0 in
            while !i < Array.length got && got.(!i) = expected.(!i) do
              incr i
            done;
            Alcotest.failf "%s/%s diverges from the model at op %d" name
              (Qs_smr.Scheme.to_string scheme) !i
          end)
        [ Qs_smr.Scheme.Qsense; Qs_smr.Scheme.Hp; Qs_smr.Scheme.Qsbr ])

let suite =
  [ case "sim list" (sim_results (Qs_harness.Sim_exp.cset_of Qs_harness.Cset.List));
    case "sim skiplist" (sim_results (Qs_harness.Sim_exp.cset_of Qs_harness.Cset.Skiplist));
    case "sim bst" (sim_results (Qs_harness.Sim_exp.cset_of Qs_harness.Cset.Bst));
    case "sim hashtable" (sim_results (Qs_harness.Sim_exp.cset_of Qs_harness.Cset.Hashtable));
    case "real list" (real_results (Qs_harness.Real_exp.cset_of Qs_harness.Cset.List));
    case "real skiplist" (real_results (Qs_harness.Real_exp.cset_of Qs_harness.Cset.Skiplist));
    case "real bst" (real_results (Qs_harness.Real_exp.cset_of Qs_harness.Cset.Bst));
    case "real hashtable" (real_results (Qs_harness.Real_exp.cset_of Qs_harness.Cset.Hashtable))
  ]
