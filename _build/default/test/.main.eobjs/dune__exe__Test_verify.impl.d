test/test_verify.ml: Alcotest Array History Int Lin_check List Printexc QCheck QCheck_alcotest Qs_ds Qs_harness Qs_sim Qs_smr Qs_util Qs_verify Scheduler Set Sim_runtime
