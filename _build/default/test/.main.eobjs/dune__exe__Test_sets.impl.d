test/test_sets.ml: Alcotest Array Int List Printexc Printf Qs_ds Qs_harness Qs_sim Qs_smr Qs_util Scheduler Set Sim_runtime
