test/test_stack.ml: Alcotest Array List Printexc Qs_ds Qs_sim Qs_smr Qs_util Scheduler Sim_runtime
