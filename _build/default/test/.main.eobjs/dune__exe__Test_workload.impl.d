test/test_workload.ml: Alcotest Array List Qs_harness Qs_smr Qs_util Qs_workload
