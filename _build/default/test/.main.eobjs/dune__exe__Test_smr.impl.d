test/test_smr.ml: Alcotest List Qs_sim Qs_smr Scheduler Sim_runtime
