test/test_properties.ml: Alcotest Cset Gen Int List Printf QCheck QCheck_alcotest Qs_arena Qs_harness Qs_smr Qs_verify Qs_workload Set Sim_exp
