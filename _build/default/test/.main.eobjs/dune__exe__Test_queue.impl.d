test/test_queue.ml: Alcotest Array Hashtbl List Printexc Printf Qs_ds Qs_sim Qs_smr Qs_util Queue Scheduler Sim_runtime
