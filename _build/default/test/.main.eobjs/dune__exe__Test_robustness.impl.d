test/test_robustness.ml: Alcotest Array Cset List Printf Qs_harness Qs_sim Qs_smr Qs_workload Sim_exp
