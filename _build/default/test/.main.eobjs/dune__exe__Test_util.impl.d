test/test_util.ml: Alcotest Array Filename Fun Gen Histogram List Prng QCheck QCheck_alcotest Qs_util Stats String Sys Table
