test/test_list.ml: Alcotest Array Int List Printexc Printf Qs_ds Qs_sim Qs_smr Qs_util Scheduler Set Sim_runtime
