test/test_real.ml: Alcotest Array Qs_harness Qs_real Qs_smr Qs_workload Unix
