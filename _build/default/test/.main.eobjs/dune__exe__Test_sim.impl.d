test/test_sim.ml: Alcotest Array Cell List Printf Qs_sim Scheduler Sim_runtime
