test/test_differential.ml: Alcotest Array Int List Qs_ds Qs_harness Qs_real Qs_sim Qs_smr Qs_workload Set
