test/main.mli:
