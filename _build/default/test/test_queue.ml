(* Michael-Scott queue tests: FIFO semantics against a model, per-producer
   order under concurrency, value conservation, no ABA despite recycling,
   reclamation accounting — per scheme. *)

open Qs_sim
module Q = Qs_ds.Msqueue.Make (Sim_runtime)

let sched ?(n_cores = 4) ?(seed = 1) () =
  Scheduler.create
    { (Scheduler.default_config ~n_cores ~seed) with
      rooster_interval = Some 2_000;
      rooster_oversleep = 50 }

let queue_cfg ?(scheme = Qs_smr.Scheme.Qsense) ?(n = 4) () =
  let base = Qs_ds.Set_intf.default_config ~n_processes:n ~scheme in
  { base with
    smr =
      { base.smr with
        quiescence_threshold = 8;
        scan_threshold = 8;
        rooster_interval = 2_000;
        epsilon = 300 } }

let test_fifo () =
  let s = sched ~n_cores:1 () in
  let q = Q.create (queue_cfg ~n:1 ()) in
  let ctx = Q.register q ~pid:0 in
  Scheduler.exec s ~pid:0 (fun () ->
      Alcotest.(check (option int)) "empty" None (Q.dequeue ctx);
      for i = 1 to 20 do
        Q.enqueue ctx i
      done;
      for i = 1 to 20 do
        Alcotest.(check (option int)) "fifo order" (Some i) (Q.dequeue ctx)
      done;
      Alcotest.(check (option int)) "empty again" None (Q.dequeue ctx);
      Q.validate ctx)

let test_sequential_model () =
  let s = sched ~n_cores:1 () in
  let q = Q.create (queue_cfg ~n:1 ()) in
  let ctx = Q.register q ~pid:0 in
  let prng = Qs_util.Prng.create ~seed:3 in
  Scheduler.exec s ~pid:0 (fun () ->
      let model = Queue.create () in
      for i = 1 to 3_000 do
        if Qs_util.Prng.percent prng < 55 then begin
          Q.enqueue ctx i;
          Queue.push i model
        end
        else begin
          let expected = Queue.take_opt model in
          Alcotest.(check (option int)) "dequeue matches model" expected (Q.dequeue ctx)
        end
      done;
      Alcotest.(check (list int)) "contents" (List.of_seq (Queue.to_seq model))
        (Q.to_list ctx);
      Q.validate ctx);
  Alcotest.(check int) "no violations" 0 (Q.violations q)

(* Per-producer FIFO: the subsequence of dequeued values originating from
   one producer must appear in production order. *)
let concurrent_run ~scheme ~seed =
  let n = 4 and per_worker = 1_200 in
  let s = sched ~n_cores:n ~seed () in
  let q = Q.create (queue_cfg ~scheme ~n ()) in
  let ctxs = Array.init n (fun pid -> Q.register q ~pid) in
  let dequeued = Array.init n (fun _ -> ref []) in
  let enqueued = Array.make n 0 in
  for pid = 0 to n - 1 do
    Scheduler.spawn s ~pid (fun () ->
        let prng = Qs_util.Prng.create ~seed:(seed + (31 * pid)) in
        let ctx = ctxs.(pid) in
        for _ = 1 to per_worker do
          if Qs_util.Prng.percent prng < 55 then begin
            enqueued.(pid) <- enqueued.(pid) + 1;
            Q.enqueue ctx ((pid * 1_000_000) + enqueued.(pid))
          end
          else
            match Q.dequeue ctx with
            | Some v -> dequeued.(pid) := v :: !(dequeued.(pid))
            | None -> ()
        done)
  done;
  Scheduler.run_all s;
  (match Scheduler.failures s with
  | [] -> ()
  | (pid, e) :: _ -> Alcotest.failf "worker %d died: %s" pid (Printexc.to_string e));
  Alcotest.(check int) "no use-after-free" 0 (Q.violations q);
  let remaining = Scheduler.exec s ~pid:0 (fun () -> Q.validate ctxs.(0); Q.to_list ctxs.(0)) in
  let all_out =
    Array.fold_left (fun acc l -> List.rev_append !l acc) remaining dequeued
  in
  (* conservation: every enqueued value leaves exactly once or remains *)
  Alcotest.(check int) "conservation"
    (Array.fold_left ( + ) 0 enqueued)
    (List.length all_out);
  Alcotest.(check int) "no duplicates (no ABA)"
    (List.length (List.sort_uniq compare all_out))
    (List.length all_out);
  (* per-producer order: for each consumer's log, values from one producer
     ascend; and the remaining chain also ascends per producer *)
  let check_producer_order label values =
    let last = Hashtbl.create 8 in
    List.iter
      (fun v ->
        let producer = v / 1_000_000 in
        let seq = v mod 1_000_000 in
        (match Hashtbl.find_opt last producer with
        | Some prev when prev >= seq ->
          Alcotest.failf "%s: producer %d out of order (%d then %d)" label
            producer prev seq
        | _ -> ());
        Hashtbl.replace last producer seq)
      values
  in
  Array.iteri
    (fun pid l ->
      check_producer_order (Printf.sprintf "consumer %d" pid) (List.rev !l))
    dequeued;
  check_producer_order "remaining chain" remaining;
  (* teardown accounting *)
  Scheduler.exec s ~pid:0 (fun () -> Array.iter Q.flush ctxs);
  let r = Q.report q in
  Alcotest.(check int) "no double frees" 0 r.double_frees;
  if scheme <> Qs_smr.Scheme.None_ then
    (* outstanding = nodes still in the chain + the dummy *)
    Alcotest.(check int) "outstanding = remaining + dummy"
      (List.length remaining + 1)
      r.outstanding

let test_concurrent scheme () =
  concurrent_run ~scheme ~seed:5;
  concurrent_run ~scheme ~seed:91

let suite =
  [ Alcotest.test_case "fifo order" `Quick test_fifo;
    Alcotest.test_case "sequential model" `Quick test_sequential_model;
    Alcotest.test_case "concurrent qsense" `Quick (test_concurrent Qs_smr.Scheme.Qsense);
    Alcotest.test_case "concurrent hp" `Quick (test_concurrent Qs_smr.Scheme.Hp);
    Alcotest.test_case "concurrent qsbr" `Quick (test_concurrent Qs_smr.Scheme.Qsbr);
    Alcotest.test_case "concurrent ebr" `Quick (test_concurrent Qs_smr.Scheme.Ebr);
    Alcotest.test_case "concurrent cadence" `Quick (test_concurrent Qs_smr.Scheme.Cadence)
  ]
