(* Treiber-stack tests: LIFO semantics, concurrent conservation (every
   pushed value is popped exactly once or still on the stack), ABA freedom
   under recycling pressure, reclamation accounting. *)

open Qs_sim
module S = Qs_ds.Treiber_stack.Make (Sim_runtime)

let sched ?(n_cores = 4) ?(seed = 1) () =
  Scheduler.create
    { (Scheduler.default_config ~n_cores ~seed) with
      rooster_interval = Some 2_000;
      rooster_oversleep = 50 }

let stack_cfg ?(scheme = Qs_smr.Scheme.Qsense) ?(n = 4) () =
  let base = Qs_ds.Set_intf.default_config ~n_processes:n ~scheme in
  { base with
    smr =
      { base.smr with
        quiescence_threshold = 8;
        scan_threshold = 8;
        rooster_interval = 2_000;
        epsilon = 300 } }

let test_lifo () =
  let s = sched ~n_cores:1 () in
  let st = S.create (stack_cfg ~n:1 ()) in
  let ctx = S.register st ~pid:0 in
  Scheduler.exec s ~pid:0 (fun () ->
      Alcotest.(check (option int)) "empty pop" None (S.pop ctx);
      for i = 1 to 10 do
        S.push ctx i
      done;
      for i = 10 downto 1 do
        Alcotest.(check (option int)) "lifo order" (Some i) (S.pop ctx)
      done;
      Alcotest.(check (option int)) "empty again" None (S.pop ctx))

let test_push_pop_interleaved_sequential () =
  let s = sched ~n_cores:1 () in
  let st = S.create (stack_cfg ~n:1 ()) in
  let ctx = S.register st ~pid:0 in
  let prng = Qs_util.Prng.create ~seed:5 in
  Scheduler.exec s ~pid:0 (fun () ->
      let model = ref [] in
      for i = 1 to 2_000 do
        if Qs_util.Prng.bool prng then begin
          S.push ctx i;
          model := i :: !model
        end
        else begin
          let expected = match !model with [] -> None | x :: r -> model := r; Some x in
          Alcotest.(check (option int)) "pop matches model" expected (S.pop ctx)
        end
      done;
      Alcotest.(check (list int)) "final contents" !model (S.to_list ctx));
  Alcotest.(check int) "no violations" 0 (S.violations st)

let concurrent_run ~scheme ~seed =
  let n = 4 and per_worker = 1_500 in
  let s = sched ~n_cores:n ~seed () in
  let st = S.create (stack_cfg ~scheme ~n ()) in
  let ctxs = Array.init n (fun pid -> S.register st ~pid) in
  let popped = Array.init n (fun _ -> ref []) in
  let pushed = Array.make n 0 in
  for pid = 0 to n - 1 do
    Scheduler.spawn s ~pid (fun () ->
        let prng = Qs_util.Prng.create ~seed:(seed + pid) in
        let ctx = ctxs.(pid) in
        for _ = 1 to per_worker do
          if Qs_util.Prng.percent prng < 55 then begin
            (* distinct values: pid * 1e6 + counter *)
            pushed.(pid) <- pushed.(pid) + 1;
            S.push ctx ((pid * 1_000_000) + pushed.(pid))
          end
          else
            match S.pop ctx with
            | Some v -> popped.(pid) := v :: !(popped.(pid))
            | None -> ()
        done)
  done;
  Scheduler.run_all s;
  (match Scheduler.failures s with
  | [] -> ()
  | (pid, e) :: _ -> Alcotest.failf "worker %d died: %s" pid (Printexc.to_string e));
  Alcotest.(check int) "no use-after-free" 0 (S.violations st);
  let remaining = Scheduler.exec s ~pid:0 (fun () -> S.to_list ctxs.(0)) in
  let all_popped = Array.fold_left (fun acc l -> List.rev_append !l acc) [] popped in
  let seen = all_popped @ remaining in
  let sorted = List.sort compare seen in
  let dedup = List.sort_uniq compare seen in
  Alcotest.(check int) "no value seen twice (no ABA)" (List.length dedup)
    (List.length sorted);
  (* every pushed value is accounted for: pushed = popped + remaining *)
  Alcotest.(check int) "conservation"
    (Array.fold_left ( + ) 0 pushed)
    (List.length seen);
  (* teardown accounting *)
  Scheduler.exec s ~pid:0 (fun () -> Array.iter S.flush ctxs);
  let r = S.report st in
  Alcotest.(check int) "no double frees" 0 r.double_frees;
  if scheme <> Qs_smr.Scheme.None_ then
    Alcotest.(check int) "outstanding = nodes still on stack"
      (List.length remaining) r.outstanding

let test_concurrent scheme () =
  concurrent_run ~scheme ~seed:9;
  concurrent_run ~scheme ~seed:77

let suite =
  [ Alcotest.test_case "lifo order" `Quick test_lifo;
    Alcotest.test_case "sequential model" `Quick test_push_pop_interleaved_sequential;
    Alcotest.test_case "concurrent qsense" `Quick (test_concurrent Qs_smr.Scheme.Qsense);
    Alcotest.test_case "concurrent hp" `Quick (test_concurrent Qs_smr.Scheme.Hp);
    Alcotest.test_case "concurrent qsbr" `Quick (test_concurrent Qs_smr.Scheme.Qsbr);
    Alcotest.test_case "concurrent cadence" `Quick (test_concurrent Qs_smr.Scheme.Cadence)
  ]
