(* Unit and property tests for Qs_util: PRNG determinism, statistics,
   table rendering, histograms. *)

open Qs_util

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let distinct = ref false in
  for _ = 1 to 10 do
    if Prng.next_int64 a <> Prng.next_int64 b then distinct := true
  done;
  Alcotest.(check bool) "streams differ" true !distinct

let test_prng_split_independent () =
  let a = Prng.create ~seed:7 in
  let c = Prng.split a in
  let xs = Array.init 50 (fun _ -> Prng.int a 1000) in
  let ys = Array.init 50 (fun _ -> Prng.int c 1000) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_prng_int_bounds () =
  let r = Prng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let x = Prng.int r 17 in
    if x < 0 || x >= 17 then Alcotest.fail "Prng.int out of bounds"
  done

let test_prng_int_invalid () =
  let r = Prng.create ~seed:3 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int r 0))

let test_prng_percent () =
  let r = Prng.create ~seed:9 in
  let counts = Array.make 100 0 in
  for _ = 1 to 100_000 do
    let p = Prng.percent r in
    counts.(p) <- counts.(p) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < 500 || c > 1500 then
        Alcotest.failf "percent bucket %d badly skewed: %d" i c)
    counts

let test_prng_shuffle_permutation () =
  let r = Prng.create ~seed:11 in
  let a = Array.init 100 Fun.id in
  Prng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 100 Fun.id) sorted

let test_stats_mean_stddev () =
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |]);
  Alcotest.(check (float 1e-9)) "mean empty" 0. (Stats.mean [||]);
  Alcotest.(check (float 1e-6)) "stddev" 1.290994 (Stats.stddev [| 1.; 2.; 3.; 4. |]);
  Alcotest.(check (float 1e-9)) "stddev singleton" 0. (Stats.stddev [| 5. |])

let test_stats_percentile () =
  let xs = [| 10.; 20.; 30.; 40.; 50. |] in
  Alcotest.(check (float 1e-9)) "p0" 10. (Stats.percentile xs 0.);
  Alcotest.(check (float 1e-9)) "p50" 30. (Stats.percentile xs 50.);
  Alcotest.(check (float 1e-9)) "p100" 50. (Stats.percentile xs 100.);
  Alcotest.(check (float 1e-9)) "p25 interpolated" 20. (Stats.percentile xs 25.);
  Alcotest.(check (float 1e-9)) "median" 30. (Stats.median xs)

let test_stats_minmax_overhead () =
  let lo, hi = Stats.min_max [| 3.; 1.; 2. |] in
  Alcotest.(check (float 1e-9)) "min" 1. lo;
  Alcotest.(check (float 1e-9)) "max" 3. hi;
  Alcotest.(check (float 1e-9)) "overhead" 25. (Stats.overhead_pct ~baseline:4. 3.);
  Alcotest.(check (float 1e-9)) "speedup" 3. (Stats.speedup ~baseline:2. 6.);
  Alcotest.(check (float 1e-9)) "ratio by zero" 0. (Stats.ratio 1. 0.)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_table_ascii () =
  let t = Table.create [ "scheme"; "tput" ] in
  Table.add_row t [ "hp"; "1.0" ];
  Table.add_float_row t "qsbr" [ 2.5 ];
  let s = Table.to_ascii t in
  Alcotest.(check bool) "contains header" true (contains s "scheme");
  Alcotest.(check bool) "contains row" true (contains s "qsbr");
  Alcotest.(check bool) "contains float" true (contains s "2.500")

let test_table_width_mismatch () =
  let t = Table.create [ "a"; "b" ] in
  Alcotest.check_raises "bad width" (Invalid_argument "Table.add_row: width mismatch")
    (fun () -> Table.add_row t [ "only-one" ])

let test_table_csv_quoting () =
  let t = Table.create [ "k"; "v" ] in
  Table.add_row t [ "with,comma"; "with\"quote" ];
  let csv = Table.to_csv t in
  Alcotest.(check string) "csv" "k,v\n\"with,comma\",\"with\"\"quote\"\n" csv

let test_table_save_csv () =
  let t = Table.create [ "a"; "b" ] in
  Table.add_row t [ "1"; "2" ];
  let path = Filename.temp_file "qsense" ".csv" in
  Table.save_csv t path;
  let ic = open_in path in
  let l1 = input_line ic and l2 = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header" "a,b" l1;
  Alcotest.(check string) "row" "1,2" l2

let test_histogram_ascii () =
  let h = Histogram.create ~lo:0. ~hi:10. ~buckets:2 in
  List.iter (Histogram.add h) [ 1.; 2.; 8. ];
  let s = Histogram.to_ascii h ~width:10 in
  Alcotest.(check bool) "two lines" true
    (List.length (String.split_on_char '\n' (String.trim s)) = 2);
  Alcotest.(check bool) "bars present" true (String.contains s '#')

let test_histogram_invalid () =
  Alcotest.check_raises "zero buckets"
    (Invalid_argument "Histogram.create: buckets must be positive") (fun () ->
      ignore (Histogram.create ~lo:0. ~hi:1. ~buckets:0));
  Alcotest.check_raises "bad range"
    (Invalid_argument "Histogram.create: hi must exceed lo") (fun () ->
      ignore (Histogram.create ~lo:1. ~hi:1. ~buckets:4))

let test_histogram_basic () =
  let h = Histogram.create ~lo:0. ~hi:10. ~buckets:10 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.6; 9.5; 100.; -5. ];
  let counts = Histogram.bucket_counts h in
  Alcotest.(check int) "total" 6 (Histogram.count h);
  Alcotest.(check int) "bucket0 (incl. underflow)" 2 counts.(0);
  Alcotest.(check int) "bucket1" 2 counts.(1);
  Alcotest.(check int) "bucket9 (incl. overflow)" 2 counts.(9)

let test_sparkline () =
  Alcotest.(check string) "empty" "" (Histogram.sparkline [||]);
  let s = Histogram.sparkline [| 0.; 1. |] in
  Alcotest.(check bool) "two glyphs" true (String.length s > 0)

let qcheck_percentile_bounds =
  QCheck.Test.make ~name:"percentile within min/max" ~count:200
    QCheck.(pair (array_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.)) (float_bound_inclusive 100.))
    (fun (xs, p) ->
      QCheck.assume (Array.length xs > 0);
      let v = Qs_util.Stats.percentile xs p in
      let lo, hi = Qs_util.Stats.min_max xs in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let qcheck_prng_int_range =
  QCheck.Test.make ~name:"Prng.int stays in range" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let r = Qs_util.Prng.create ~seed in
      let x = Qs_util.Prng.int r bound in
      x >= 0 && x < bound)

let suite =
  [ Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng seed sensitivity" `Quick test_prng_seed_sensitivity;
    Alcotest.test_case "prng split independent" `Quick test_prng_split_independent;
    Alcotest.test_case "prng int bounds" `Quick test_prng_int_bounds;
    Alcotest.test_case "prng invalid bound" `Quick test_prng_int_invalid;
    Alcotest.test_case "prng percent distribution" `Quick test_prng_percent;
    Alcotest.test_case "prng shuffle permutation" `Quick test_prng_shuffle_permutation;
    Alcotest.test_case "stats mean/stddev" `Quick test_stats_mean_stddev;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats min/max/overhead" `Quick test_stats_minmax_overhead;
    Alcotest.test_case "table ascii" `Quick test_table_ascii;
    Alcotest.test_case "table width mismatch" `Quick test_table_width_mismatch;
    Alcotest.test_case "table csv quoting" `Quick test_table_csv_quoting;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_basic;
    Alcotest.test_case "table csv file" `Quick test_table_save_csv;
    Alcotest.test_case "histogram ascii" `Quick test_histogram_ascii;
    Alcotest.test_case "histogram invalid args" `Quick test_histogram_invalid;
    Alcotest.test_case "sparkline" `Quick test_sparkline;
    QCheck_alcotest.to_alcotest qcheck_percentile_bounds;
    QCheck_alcotest.to_alcotest qcheck_prng_int_range
  ]
