(* The linearizability checker itself (positive and negative hand-crafted
   histories), then end-to-end: record real concurrent histories from the
   simulator on every data structure and check them. *)

open Qs_verify
open Qs_sim

let e pid op key result inv res : History.entry = { pid; op; key; result; inv; res }

let test_checker_sequential_ok () =
  let h =
    [ e 0 History.Insert 1 true 0 1;
      e 0 History.Search 1 true 2 3;
      e 0 History.Delete 1 true 4 5;
      e 0 History.Search 1 false 6 7
    ]
  in
  Alcotest.(check bool) "sequential history ok" true
    (Lin_check.is_linearizable ~initial:[] h)

let test_checker_rejects_wrong_result () =
  let h = [ e 0 History.Search 1 true 0 1 ] in
  Alcotest.(check bool) "search of absent key returning true" false
    (Lin_check.is_linearizable ~initial:[] h);
  Alcotest.(check bool) "ok with initial fill" true
    (Lin_check.is_linearizable ~initial:[ 1 ] h)

let test_checker_rejects_non_linearizable () =
  (* p0: insert(1)=true completes before p1 starts; p1 then reads absent. *)
  let h =
    [ e 0 History.Insert 1 true 0 10; e 1 History.Search 1 false 20 30 ]
  in
  Alcotest.(check bool) "stale read after completed insert" false
    (Lin_check.is_linearizable ~initial:[] h);
  (* but if the operations overlap, either order is a valid linearization *)
  let h' =
    [ e 0 History.Insert 1 true 0 25; e 1 History.Search 1 false 20 30 ]
  in
  Alcotest.(check bool) "overlapping ops may order either way" true
    (Lin_check.is_linearizable ~initial:[] h')

let test_checker_double_insert () =
  (* two concurrent successful inserts of the same key cannot both succeed *)
  let h =
    [ e 0 History.Insert 5 true 0 10; e 1 History.Insert 5 true 0 10 ]
  in
  Alcotest.(check bool) "two successful inserts" false
    (Lin_check.is_linearizable ~initial:[] h);
  let h' =
    [ e 0 History.Insert 5 true 0 10; e 1 History.Insert 5 false 0 10 ]
  in
  Alcotest.(check bool) "one must fail" true
    (Lin_check.is_linearizable ~initial:[] h')

let test_checker_keys_independent () =
  (* a violation on key 7 is found even among unrelated traffic *)
  let h =
    [ e 0 History.Insert 1 true 0 1;
      e 0 History.Search 7 true 2 3;
      e 1 History.Delete 2 false 0 5
    ]
  in
  (match Lin_check.check_set ~initial:[] h with
  | Lin_check.Violation 7 -> ()
  | _ -> Alcotest.fail "expected a violation on key 7");
  Alcotest.(check bool) "fine once key 7 is prefilled" true
    (Lin_check.is_linearizable ~initial:[ 7 ] h)

let test_checker_too_large () =
  let h = List.init 61 (fun i -> e 0 History.Search 1 true i i) in
  match Lin_check.check_set ~initial:[ 1 ] h with
  | Lin_check.Too_large 1 -> ()
  | _ -> Alcotest.fail "expected Too_large"

(* --- qcheck properties over the checker ---------------------------------- *)

module IS = Set.Make (Int)

(* A valid sequential history over a few keys, with tight intervals. *)
let sequential_history script =
  let model = ref IS.empty in
  let clock = ref 0 in
  List.map
    (fun (opk, key) ->
      let inv = !clock in
      incr clock;
      let res = !clock in
      incr clock;
      let op, result =
        match opk mod 3 with
        | 0 ->
          let r = not (IS.mem key !model) in
          model := IS.add key !model;
          (History.Insert, r)
        | 1 ->
          let r = IS.mem key !model in
          model := IS.remove key !model;
          (History.Delete, r)
        | _ -> (History.Search, IS.mem key !model)
      in
      { History.pid = 0; op; key; result; inv; res })
    script

let script_gen = QCheck.Gen.(list_size (int_range 2 30) (tup2 (int_range 0 2) (int_range 0 3)))

(* Widening intervals only adds legal linearizations: each operation's
   original linearization point stays inside its widened interval, so the
   original order remains a witness. *)
let prop_widening_preserves_linearizability =
  QCheck.Test.make ~name:"interval widening preserves linearizability" ~count:200
    (QCheck.make QCheck.Gen.(tup2 script_gen (int_range 0 50)))
    (fun (script, width) ->
      let entries = sequential_history script in
      let prng = Qs_util.Prng.create ~seed:(width + List.length script) in
      let widened =
        List.map
          (fun (e : History.entry) ->
            { e with
              inv = e.inv - Qs_util.Prng.int prng (width + 1);
              res = e.res + Qs_util.Prng.int prng (width + 1) })
          entries
      in
      Lin_check.is_linearizable ~initial:[] widened)

(* In a strictly sequential history the execution is forced, so flipping any
   single result must be detected. *)
let prop_mutation_detected =
  QCheck.Test.make ~name:"flipped result in sequential history detected" ~count:200
    (QCheck.make QCheck.Gen.(tup2 script_gen (int_range 0 1_000)))
    (fun (script, pick) ->
      let entries = sequential_history script in
      let n = List.length entries in
      QCheck.assume (n > 0);
      let idx = pick mod n in
      let mutated =
        List.mapi
          (fun i (e : History.entry) ->
            if i = idx then { e with result = not e.result } else e)
          entries
      in
      not (Lin_check.is_linearizable ~initial:[] mutated))

(* --- end-to-end: real histories from the simulator ---------------------- *)

module Run (C : Qs_harness.Cset.S) = struct
  let record ~scheme ~seed ~range ~ops =
    let n = 4 in
    let s =
      Scheduler.create
        { (Scheduler.default_config ~n_cores:n ~seed) with
          rooster_interval = Some 2_000;
          rooster_oversleep = 50 }
    in
    let base = Qs_ds.Set_intf.default_config ~n_processes:n ~scheme in
    let set =
      C.create
        { base with
          smr =
            { base.smr with
              quiescence_threshold = 8;
              scan_threshold = 8;
              rooster_interval = 2_000;
              epsilon = 300 } }
    in
    let ctxs = Array.init n (fun pid -> C.register set ~pid) in
    let initial = List.init (range / 2) (fun i -> 2 * i) in
    Scheduler.exec s ~pid:0 (fun () ->
        List.iter (fun k -> ignore (C.insert ctxs.(0) k)) initial);
    let hist = History.create ~n in
    let master = Qs_util.Prng.create ~seed:(seed + 17) in
    let prngs = Array.init n (fun _ -> Qs_util.Prng.split master) in
    for pid = 0 to n - 1 do
      Scheduler.spawn s ~pid (fun () ->
          let prng = prngs.(pid) and ctx = ctxs.(pid) in
          for _ = 1 to ops do
            let key = Qs_util.Prng.int prng range in
            let inv = Sim_runtime.now () in
            let op, result =
              match Qs_util.Prng.int prng 3 with
              | 0 -> (History.Insert, C.insert ctx key)
              | 1 -> (History.Delete, C.delete ctx key)
              | _ -> (History.Search, C.search ctx key)
            in
            History.record hist ~pid ~op ~key ~inv ~res:(Sim_runtime.now ()) ~result
          done)
    done;
    Scheduler.run_all s;
    (match Scheduler.failures s with
    | [] -> ()
    | (pid, exn) :: _ ->
      Alcotest.failf "worker %d failed: %s" pid (Printexc.to_string exn));
    (initial, History.entries hist)

  let check ~scheme ~seed ~range ~ops =
    let initial, entries = record ~scheme ~seed ~range ~ops in
    match Lin_check.check_set ~initial entries with
    | Lin_check.Ok -> ()
    | Lin_check.Violation k -> Alcotest.failf "non-linearizable on key %d" k
    | Lin_check.Too_large k -> Alcotest.failf "history too large on key %d" k
end

module List_run = Run (Qs_ds.Linked_list.Make (Sim_runtime))
module Skip_run = Run (Qs_ds.Skiplist.Make (Sim_runtime))
module Bst_run = Run (Qs_ds.Bst.Make (Sim_runtime))
module Hash_run = Run (Qs_ds.Hashtable.Make (Sim_runtime))

let lin_case name check =
  Alcotest.test_case name `Quick (fun () ->
      List.iter
        (fun (scheme, seed) -> check ~scheme ~seed ~range:96 ~ops:400)
        [ (Qs_smr.Scheme.Qsense, 3);
          (Qs_smr.Scheme.Qsbr, 4);
          (Qs_smr.Scheme.Hp, 5);
          (Qs_smr.Scheme.Cadence, 6)
        ])

let suite =
  [ Alcotest.test_case "checker: sequential ok" `Quick test_checker_sequential_ok;
    Alcotest.test_case "checker: wrong result rejected" `Quick test_checker_rejects_wrong_result;
    Alcotest.test_case "checker: real-time order enforced" `Quick test_checker_rejects_non_linearizable;
    Alcotest.test_case "checker: double insert rejected" `Quick test_checker_double_insert;
    Alcotest.test_case "checker: keys independent" `Quick test_checker_keys_independent;
    Alcotest.test_case "checker: oversized history" `Quick test_checker_too_large;
    lin_case "list linearizable" (fun ~scheme ~seed ~range ~ops ->
        List_run.check ~scheme ~seed ~range ~ops);
    lin_case "skiplist linearizable" (fun ~scheme ~seed ~range ~ops ->
        Skip_run.check ~scheme ~seed ~range ~ops);
    lin_case "bst linearizable" (fun ~scheme ~seed ~range ~ops ->
        Bst_run.check ~scheme ~seed ~range ~ops);
    lin_case "hashtable linearizable" (fun ~scheme ~seed ~range ~ops ->
        Hash_run.check ~scheme ~seed ~range ~ops);
    QCheck_alcotest.to_alcotest prop_widening_preserves_linearizability;
    QCheck_alcotest.to_alcotest prop_mutation_detected
  ]
