(* Delay tolerance: the paper's headline robustness story (Figure 5, bottom
   row) as a narrated demo on the deterministic simulator.

   Run with:  dune exec examples/delay_tolerance.exe

   Eight processes hammer a linked list under bounded memory. Every 20
   simulated seconds one process stalls for 10 seconds:

   - QSBR cannot reach quiescence while the victim sleeps, its limbo lists
     grow unbounded, and it dies of memory exhaustion during the first
     stall;
   - QSense detects the backlog, switches to the Cadence fallback path,
     keeps reclaiming (hazard pointers + deferred reclamation need no help
     from the sleeping process), and switches back when the victim
     returns. *)

open Qs_harness

let describe scheme =
  let sim_second = 20_000 in
  let windows = [ (10, 20); (30, 40); (50, 60) ] in
  let r =
    Sim_exp.run
      { (Sim_exp.default_setup ~ds:Cset.List ~scheme ~n_processes:8
           ~workload:(Qs_workload.Spec.updates_50 ~key_range:128)) with
        seed = 1;
        duration = 70 * sim_second;
        capacity = Some (64 + 150);
        sample_every = sim_second;
        delays =
          Some
            { victim = 7;
              windows = List.map (fun (a, b) -> (a * sim_second, b * sim_second)) windows };
        smr_tweak =
          (fun c ->
            { c with
              quiescence_threshold = 8;
              scan_threshold = 8;
              switch_threshold = 24 }) }
  in
  Printf.printf "%-7s | %s\n" (Qs_smr.Scheme.to_string scheme)
    (Qs_util.Histogram.sparkline r.series);
  Printf.printf "        | ops=%d  fallback switches=%d  recoveries=%d%s\n\n"
    r.ops_total r.report.smr.fallback_switches r.report.smr.fastpath_switches
    (match r.failed_at with
    | Some t ->
      Printf.sprintf "  ** OUT OF MEMORY at t=%d (second %d) **" t (t / sim_second)
    | None -> "")

let () =
  print_endline "Throughput over simulated time; the victim sleeps during";
  print_endline "seconds [10,20), [30,40), [50,60):";
  print_newline ();
  List.iter describe [ Qs_smr.Scheme.Qsbr; Qs_smr.Scheme.Qsense; Qs_smr.Scheme.Hp ]
