(* Quickstart: a QSense-protected lock-free linked list on real OCaml 5
   domains.

   Run with:  dune exec examples/quickstart.exe

   The three integration points of the paper's methodology are already
   inside the Linked_list operations:
     rule 1 — manage_qsense_state is called at the top of every operation;
     rule 2 — traversals publish hazard pointers (no fence!) and
              re-validate;
     rule 3 — unlinked nodes go through free_node_later (retire), never a
              direct free. *)

module R = Qs_real.Real_runtime
module List_set = Qs_ds.Linked_list.Make (R)

let () =
  let n_domains = 4 in
  (* Pick the scheme here: None_ | Hp | Qsbr | Cadence | Qsense. *)
  let cfg =
    Qs_ds.Set_intf.default_config ~n_processes:n_domains
      ~scheme:Qs_smr.Scheme.Qsense
  in
  let set = List_set.create cfg in
  let ctxs = Array.init n_domains (fun pid -> List_set.register set ~pid) in

  (* QSense's fallback path relies on rooster processes; start them before
     any worker runs (2 ms interval here — must be >= the configured
     rooster_interval for Cadence/QSense safety). *)
  let roosters = Qs_real.Roosters.start ~interval_ns:2_000_000 ~n:1 in

  (* Fill half the key range from the main domain (which is process 0). *)
  R.register_self 0;
  for key = 0 to 499 do
    if key mod 2 = 0 then ignore (List_set.insert ctxs.(0) key)
  done;

  (* Hammer the set from n domains. *)
  let ops_per_domain = 20_000 in
  let totals =
    Qs_real.Domain_pool.run ~n:n_domains (fun pid ->
        let ctx = ctxs.(pid) in
        let prng = Qs_util.Prng.create ~seed:(100 + pid) in
        let hits = ref 0 in
        for _ = 1 to ops_per_domain do
          let key = Qs_util.Prng.int prng 1_000 in
          match Qs_util.Prng.int prng 4 with
          | 0 -> if List_set.insert ctx key then incr hits
          | 1 -> if List_set.delete ctx key then incr hits
          | _ -> if List_set.search ctx key then incr hits
        done;
        !hits)
  in
  Qs_real.Roosters.stop roosters;

  let r = List_set.report set in
  Printf.printf "ran %d ops on %d domains (%d effective)\n"
    (n_domains * ops_per_domain) n_domains
    (Array.fold_left ( + ) 0 totals);
  Printf.printf "final size        : %d\n" (List_set.size ctxs.(0));
  Printf.printf "nodes retired     : %d\n" r.smr.retires;
  Printf.printf "nodes freed       : %d\n" r.smr.frees;
  Printf.printf "still in limbo    : %d\n" r.smr.retired_now;
  Printf.printf "epoch advances    : %d\n" r.smr.epoch_advances;
  Printf.printf "use-after-free    : %d (must be 0)\n" r.violations;
  assert (r.violations = 0)
