examples/quickstart.ml: Array Printf Qs_ds Qs_real Qs_smr Qs_util
