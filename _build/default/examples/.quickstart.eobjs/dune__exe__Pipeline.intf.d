examples/pipeline.mli:
