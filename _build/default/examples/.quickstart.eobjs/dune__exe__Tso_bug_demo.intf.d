examples/tso_bug_demo.mli:
