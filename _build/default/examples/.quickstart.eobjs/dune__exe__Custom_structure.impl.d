examples/custom_structure.ml: Array List Printf Qs_ds Qs_sim Qs_smr Qs_util Scheduler Sim_runtime
