examples/delay_tolerance.mli:
