examples/delay_tolerance.ml: Cset List Printf Qs_harness Qs_smr Qs_util Qs_workload Sim_exp
