examples/pipeline.ml: Array List Printf Qs_arena Qs_ds Qs_sim Qs_smr Scheduler Sim_runtime
