examples/tso_bug_demo.ml: Cset List Printf Qs_harness Qs_sim Qs_smr Qs_workload Sim_exp
