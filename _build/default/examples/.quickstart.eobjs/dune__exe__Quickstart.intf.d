examples/quickstart.mli:
