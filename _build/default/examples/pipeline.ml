(* Producer/consumer pipeline on the Michael-Scott queue, with QSense
   reclaiming the queue nodes — a shape where robustness matters in
   practice: a consumer blocked on I/O must not stop the producers' memory
   from being reclaimed.

   Run with:  dune exec examples/pipeline.exe

   Four producers feed four consumers through one lock-free queue in the
   simulator, under a hard memory cap. Halfway through, one consumer stalls
   for a long stretch. With QSBR the stalled consumer freezes reclamation
   and the producers exhaust memory; with QSense the system falls back to
   Cadence, keeps recycling dequeued nodes, and recovers. *)

open Qs_sim
module Q = Qs_ds.Msqueue.Make (Sim_runtime)

let run scheme =
  let n = 8 in
  (* producers: pids 0-3; consumers: pids 4-7; pid 7 is the stalling one *)
  let sched =
    Scheduler.create
      { (Scheduler.default_config ~n_cores:n ~seed:3) with
        rooster_interval = Some 2_000 }
  in
  let base = Qs_ds.Set_intf.default_config ~n_processes:n ~scheme in
  let q =
    Q.create
      { base with
        capacity = Some 600;
        smr =
          { base.smr with
            quiescence_threshold = 8;
            scan_threshold = 8;
            rooster_interval = 2_000;
            epsilon = 300;
            switch_threshold = 32 } }
  in
  let ctxs = Array.init n (fun pid -> Q.register q ~pid) in
  let produced = Array.make n 0 and consumed = Array.make n 0 in
  let oom = ref false in
  let duration = 600_000 in
  for pid = 0 to n - 1 do
    Scheduler.spawn sched ~pid (fun () ->
        let ctx = ctxs.(pid) in
        let producer = pid < 4 in
        try
          while Sim_runtime.now () < duration && not !oom do
            if pid = 7 && Sim_runtime.now () >= 200_000 && Sim_runtime.now () < 400_000
            then Sim_runtime.sleep_until 400_000
            else if producer then begin
              (* back off when the queue is saturated, like a real pipeline *)
              if Q.length ctx < 400 then begin
                Q.enqueue ctx ((pid * 1_000_000) + produced.(pid));
                produced.(pid) <- produced.(pid) + 1
              end
              else Sim_runtime.charge 200
            end
            else
              match Q.dequeue ctx with
              | Some _ -> consumed.(pid) <- consumed.(pid) + 1
              | None -> Sim_runtime.charge 100 (* empty: idle briefly *)
          done
        with Qs_arena.Arena.Exhausted -> oom := true)
  done;
  Scheduler.run_all sched;
  let r = Q.report q in
  Printf.printf "%-7s produced=%-6d consumed=%-6d freed=%-6d %s\n"
    (Qs_smr.Scheme.to_string scheme)
    (Array.fold_left ( + ) 0 produced)
    (Array.fold_left ( + ) 0 consumed)
    r.smr.frees
    (if !oom then "** OUT OF MEMORY (stalled consumer blocked reclamation) **"
     else "ok");
  assert (r.violations = 0)

let () =
  print_endline "4 producers -> lock-free queue -> 4 consumers; consumer 7";
  print_endline "stalls during [200k, 400k) under a 600-node memory cap:";
  print_newline ();
  List.iter run [ Qs_smr.Scheme.Qsbr; Qs_smr.Scheme.Qsense ]
