(* Applying QSense to YOUR data structure: the paper's three-rule
   methodology, walked through on Treiber's lock-free stack.

   Run with:  dune exec examples/custom_structure.exe

   The paper (§1.3, §4.2) reduces integration to three calls:

     rule 1: call manage_qsense_state in states where you hold no shared
             references — typically at the top of each operation.
             (Treiber_stack.push/pop call [smr.manage_state] first thing.)

     rule 2: before dereferencing a node you read from shared memory,
             publish a hazard pointer to it and RE-VALIDATE the read —
             with QSense/Cadence, WITHOUT the memory barrier classic
             hazard pointers need:

               match R.get stack.top with
               | Ptr n as old ->
                 smr.assign_hp ~slot:0 n;            (* plain store! *)
                 if R.get stack.top != old then retry ()
                 else ... safe to use n ...

     rule 3: where a sequential implementation would call free() on an
             unlinked node, call free_node_later (retire) instead:

               if R.cas stack.top old n.next then begin
                 smr.retire n;          (* NOT Arena.free! *)
                 ...

   This file demonstrates the payoff: with reclamation None the stack leaks
   and classic ABA-prone recycling is unsafe; with QSense the stack runs in
   bounded memory with zero use-after-free, at a cost far below classic
   hazard pointers (no fence per pop). *)

open Qs_sim
module Stack = Qs_ds.Treiber_stack.Make (Sim_runtime)

let run scheme =
  let n = 4 in
  let sched =
    Scheduler.create
      { (Scheduler.default_config ~n_cores:n ~seed:11) with
        rooster_interval = Some 2_000 }
  in
  let base = Qs_ds.Set_intf.default_config ~n_processes:n ~scheme in
  let st =
    Stack.create
      { base with
        smr =
          { base.smr with
            quiescence_threshold = 16;
            scan_threshold = 16;
            rooster_interval = 2_000;
            epsilon = 300 } }
  in
  let ctxs = Array.init n (fun pid -> Stack.register st ~pid) in
  for pid = 0 to n - 1 do
    Scheduler.spawn sched ~pid (fun () ->
        let prng = Qs_util.Prng.create ~seed:(7 * (pid + 1)) in
        for i = 1 to 10_000 do
          if Qs_util.Prng.bool prng then Stack.push ctxs.(pid) i
          else ignore (Stack.pop ctxs.(pid))
        done)
  done;
  Scheduler.run_all sched;
  let r = Stack.report st in
  Printf.printf "%-8s retires=%-6d freed=%-6d outstanding=%-5d UAF=%d\n"
    (Qs_smr.Scheme.to_string scheme)
    r.smr.retires r.smr.frees r.outstanding r.violations;
  assert (r.violations = 0)

let () =
  print_endline "Treiber stack, 4 processes x 10k ops, 50/50 push/pop:";
  print_newline ();
  List.iter run
    [ Qs_smr.Scheme.None_; Qs_smr.Scheme.Hp; Qs_smr.Scheme.Qsense ];
  print_newline ();
  print_endline "Note how 'none' never frees (outstanding keeps every retired";
  print_endline "node) while hp/qsense recycle nodes and stay bounded."
