(* KV service (DESIGN.md §15): workload-layer statistics and the sharded
   service itself.

   - Zipfian census: the Gray et al. sampler's hot-key mass must match
     the analytic zeta ratio for every theta, and stay there across
     generator seeds (the statistic is a property of the spec, not of a
     lucky seed).
   - Differential: the same pre-generated trace replayed against
     {qsbr, hp, cadence, qsense} must leave the service with identical
     authoritative contents (the scheme reclaims memory; it must never
     change what the store says).
   - Churn smoke: handler churn (unregister / re-register under live
     concurrent traffic) stays violation- and leak-free.
   - Shard routing: tenant-prefixed keys must spread across shards even
     though tenants only differ in high key bits.
   - The get path allocates exactly zero minor words on the real
     runtime — the pin the bench service observatory gates on. *)

module Ksp = Qs_workload.Kv_spec
module Kg = Qs_workload.Kv_gen
module Sv = Qs_service.Service_sim

let mix = { Ksp.get_pct = 50; put_pct = 25; del_pct = 15; scan_pct = 10 }

(* --- Zipfian census -------------------------------------------------------- *)

let draw_ops spec ~n ~seed =
  let prng = Qs_util.Prng.create ~seed in
  Array.init n (fun _ -> Ksp.pick prng spec)

(* Tolerance covers sampling noise at 200k draws plus the Gray et al.
   approximation's own bias, which grows as theta -> 1 (at theta 0.99 the
   approximation overshoots the analytic top-16 mass by ~1.7 points). *)
let test_zipf_census () =
  List.iter
    (fun theta ->
      let spec =
        Ksp.make ~dist:(Ksp.Zipfian theta) ~keys_per_tenant:1_024 ~mix ()
      in
      let ops = draw_ops spec ~n:200_000 ~seed:7 in
      List.iter
        (fun k ->
          let got = Ksp.hot_mass spec ops ~k in
          let want = Ksp.expected_hot_mass spec ~k in
          if Float.abs (got -. want) > 0.025 then
            Alcotest.failf
              "theta %.2f: hot mass of top %d keys = %.4f, analytic %.4f"
              theta k got want)
        [ 1; 16; 64 ])
    [ 0.5; 0.9; 0.99 ]

let test_zipf_census_across_seeds () =
  (* The hot-key mass is a spec property: every seed must reproduce it
     (within the same tolerance), and a fixed seed must reproduce the
     stream bit-for-bit. *)
  let spec =
    Ksp.make ~dist:(Ksp.Zipfian 0.9) ~keys_per_tenant:1_024 ~mix ()
  in
  let want = Ksp.expected_hot_mass spec ~k:16 in
  List.iter
    (fun seed ->
      let got = Ksp.hot_mass spec (draw_ops spec ~n:200_000 ~seed) ~k:16 in
      if Float.abs (got -. want) > 0.015 then
        Alcotest.failf "seed %d: hot mass %.4f, analytic %.4f" seed got want)
    [ 1; 2; 23; 1009 ];
  let g1 = Kg.make spec ~n_processes:2 ~ops_per_process:512 ~seed:5 in
  let g2 = Kg.make spec ~n_processes:2 ~ops_per_process:512 ~seed:5 in
  for pid = 0 to 1 do
    Alcotest.(check bool)
      "same seed, same stream" true
      (Kg.stream g1 ~pid = Kg.stream g2 ~pid)
  done

let test_uniform_census () =
  let spec = Ksp.make ~keys_per_tenant:1_024 ~mix () in
  let ops = draw_ops spec ~n:200_000 ~seed:3 in
  let got = Ksp.hot_mass spec ops ~k:64 in
  let want = 64. /. 1_024. in
  if Float.abs (got -. want) > 0.01 then
    Alcotest.failf "uniform hot mass %.4f, expected %.4f" got want;
  (* the mix census must track the requested percentages *)
  let c = Ksp.census ops in
  let n = float_of_int (Array.length ops) in
  List.iteri
    (fun k pct ->
      let got = float_of_int c.(k) /. n *. 100. in
      if Float.abs (got -. float_of_int pct) > 1.0 then
        Alcotest.failf "%s mix %.2f%%, requested %d%%" (Ksp.kind_name k) got
          pct)
    [ mix.Ksp.get_pct; mix.Ksp.put_pct; mix.Ksp.del_pct; mix.Ksp.scan_pct ]

(* --- cross-scheme differential -------------------------------------------- *)

let schemes =
  [ Qs_smr.Scheme.Qsbr; Qs_smr.Scheme.Hp; Qs_smr.Scheme.Cadence;
    Qs_smr.Scheme.Qsense ]

let test_service_differential () =
  (* One worker bounded by ops_limit: every scheme executes the identical
     logical request sequence, so the authoritative contents must agree
     exactly. (Multi-worker runs interleave differently per scheme by
     design; the single-worker trace isolates the scheme's only allowed
     effect — reclamation.) *)
  let spec =
    Ksp.make ~tenants:2 ~dist:(Ksp.Zipfian 0.9) ~keys_per_tenant:256 ~mix ()
  in
  let gen = Kg.make spec ~n_processes:1 ~ops_per_process:3_000 ~seed:11 in
  let runs =
    List.map
      (fun scheme ->
        let setup =
          { (Sv.default_setup ~scheme ~n_processes:1 ~gen) with
            Sv.duration = max_int / 2;
            ops_limit = Some 3_000;
            n_shards = 4 }
        in
        let r = Sv.run setup in
        Alcotest.(check int)
          (Qs_smr.Scheme.to_string scheme ^ " violations")
          0 r.Sv.violations;
        Alcotest.(check int)
          (Qs_smr.Scheme.to_string scheme ^ " completed the trace")
          3_000 r.Sv.ops_total;
        (match r.Sv.leak_check with
        | `Ok | `Skipped -> ()
        | `Leaked n ->
          Alcotest.failf "%s leaked %d nodes"
            (Qs_smr.Scheme.to_string scheme)
            n);
        (scheme, r.Sv.contents))
      schemes
  in
  match runs with
  | [] | [ _ ] -> assert false
  | (_, reference) :: rest ->
    List.iter
      (fun (scheme, contents) ->
        if contents <> reference then
          Alcotest.failf
            "%s final contents differ from qsbr (%d vs %d keys)"
            (Qs_smr.Scheme.to_string scheme)
            (List.length contents) (List.length reference))
      rest

let test_service_churn_smoke () =
  List.iter
    (fun scheme ->
      let spec =
        Ksp.make ~tenants:2 ~dist:(Ksp.Zipfian 0.9) ~keys_per_tenant:256
          ~mix ()
      in
      let gen = Kg.make spec ~n_processes:4 ~ops_per_process:2_048 ~seed:23 in
      (* every_ops is sized to HP, the slowest scheme in virtual ticks
         (~2k/request): every worker must cross the churn threshold a few
         times inside the duration budget. *)
      let setup =
        { (Sv.default_setup ~scheme ~n_processes:4 ~gen) with
          Sv.duration = 150_000;
          churn = Some { Sv.every_ops = 20; downtime = 1_000 } }
      in
      let r = Sv.run setup in
      let name = Qs_smr.Scheme.to_string scheme in
      Alcotest.(check int) (name ^ " violations") 0 r.Sv.violations;
      Alcotest.(check bool) (name ^ " made progress") true (r.Sv.ops_total > 0);
      Alcotest.(check bool)
        (name ^ " churned under live traffic")
        true (r.Sv.churn_events > 0);
      match r.Sv.leak_check with
      | `Ok | `Skipped -> ()
      | `Leaked n -> Alcotest.failf "%s leaked %d nodes" name n)
    schemes

(* --- shard routing --------------------------------------------------------- *)

let test_shard_distribution () =
  let cfg =
    Qs_ds.Set_intf.default_config ~n_processes:1 ~scheme:Qs_smr.Scheme.Qsbr
  in
  let svc = Sv.K.create ~n_shards:8 cfg in
  let spec = Ksp.make ~tenants:16 ~keys_per_tenant:64 ~mix () in
  let counts = Array.make 8 0 in
  for tenant = 0 to 15 do
    for local = 0 to 63 do
      let s = Sv.K.shard_index svc (Ksp.key_of spec ~tenant ~local) in
      counts.(s) <- counts.(s) + 1
    done
  done;
  (* 1024 tenant-prefixed keys over 8 shards: every shard populated, and
     none grabbing more than 2x its fair share. A low-bits (mod) shard
     route sends whole tenants to one shard and fails this. *)
  Array.iteri
    (fun i c ->
      if c = 0 then Alcotest.failf "shard %d empty" i;
      if c > 256 then Alcotest.failf "shard %d holds %d of 1024 keys" i c)
    counts

(* --- get-path allocation pin ----------------------------------------------- *)

module Kr = Qs_service.Service_real.K

let test_get_zero_alloc () =
  Qs_real.Real_runtime.register_self 0;
  let cfg =
    { (Qs_ds.Set_intf.default_config ~n_processes:1
         ~scheme:Qs_smr.Scheme.Qsense)
      with Qs_ds.Set_intf.debug_checks = false }
  in
  let svc = Kr.create ~n_shards:4 cfg in
  let ctx = Kr.register svc ~pid:0 in
  for k = 0 to 511 do
    ignore (Kr.put ctx (2 * k))
  done;
  for i = 1 to 4_096 do
    ignore (Kr.get ctx (i land 1023))
  done;
  let n = 100_000 in
  let w0 = Gc.minor_words () in
  for i = 1 to n do
    ignore (Kr.get ctx (i land 1023))
  done;
  let per_op = (Gc.minor_words () -. w0) /. float_of_int n in
  Alcotest.(check (float 0.0)) "get allocates zero minor words" 0.0 per_op

let suite =
  [ Alcotest.test_case "zipfian census matches analytic mass" `Quick
      test_zipf_census;
    Alcotest.test_case "zipfian census stable across seeds" `Quick
      test_zipf_census_across_seeds;
    Alcotest.test_case "uniform census and mix percentages" `Quick
      test_uniform_census;
    Alcotest.test_case "cross-scheme differential: identical contents" `Slow
      test_service_differential;
    Alcotest.test_case "handler churn under live traffic" `Slow
      test_service_churn_smoke;
    Alcotest.test_case "tenant-prefixed keys spread across shards" `Quick
      test_shard_distribution;
    Alcotest.test_case "get path allocates exactly zero" `Quick
      test_get_zero_alloc ]
