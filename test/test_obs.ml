(* The reclamation observatory (lib/obs + the runtime emit pathway):

   - ring semantics: fixed capacity, wrap-around drops the oldest events
     with a monotone [dropped] counter, out-of-range pids land in the
     system ring;
   - overhead discipline: a disabled tracer records nothing, and recording
     allocates zero minor words per event enabled or disabled (the
     Gc-words pin CI relies on);
   - determinism and neutrality: a seeded simulator run produces a
     bit-identical trace across two runs, and installing a sink changes no
     explorer verdict on the committed corpus (trace emission is
     schedule-neutral — DESIGN.md §9);
   - derived metrics on synthetic timelines (age join, global fallback
     episode pairing, limbo resync, epoch lags);
   - exporters: the Chrome trace-event JSON parses back via
     {!Qs_util.Json} with every B strictly matched by an E, and the CSV
     has one row per retained event;
   - the paper-level assertions tracing exists to surface: Cadence frees
     no node younger than [T + epsilon] (Theorem 5.1's premise, visible in
     the age-at-free distribution), and QSense's [fallback_since] is
     [Some] exactly while the scheme sits in fallback mode. *)

module RI = Qs_intf.Runtime_intf
module Tracer = Qs_obs.Tracer
module Metrics = Qs_obs.Metrics
module Export = Qs_obs.Export
module Json = Qs_util.Json
open Qs_harness

let check = Alcotest.check
let checkb msg = check Alcotest.bool msg
let checki msg = check Alcotest.int msg

(* --- ring semantics ------------------------------------------------------ *)

let test_wraparound () =
  let t = Tracer.create ~n_processes:2 ~capacity:4 () in
  for i = 1 to 6 do
    Tracer.record t ~pid:0 ~time:i ~ev:RI.Ev_retire ~a:(100 + i) ~b:(-1)
  done;
  checki "length capped at capacity" 4 (Tracer.length t ~pid:0);
  checki "two dropped" 2 (Tracer.dropped t ~pid:0);
  let es = Tracer.ring_to_array t ~pid:0 in
  checki "oldest retained is event 3" 3 es.(0).Tracer.time;
  checki "newest retained is event 6" 6 es.(3).Tracer.time;
  checki "payload a" 103 es.(0).Tracer.a;
  Tracer.record t ~pid:0 ~time:7 ~ev:RI.Ev_free ~a:107 ~b:(-1);
  checki "dropped is monotone" 3 (Tracer.dropped t ~pid:0);
  checki "other ring untouched" 0 (Tracer.length t ~pid:1);
  (* Unregistered emitters (rooster pid -1, out-of-range pids) land in the
     system ring (index n_processes) instead of corrupting a worker ring. *)
  Tracer.record t ~pid:(-1) ~time:8 ~ev:RI.Ev_rooster_wake ~a:(-1) ~b:(-1);
  Tracer.record t ~pid:99 ~time:9 ~ev:RI.Ev_rooster_wake ~a:(-1) ~b:(-1);
  checki "system ring collects strays" 2 (Tracer.length t ~pid:2);
  checki "total" 6 (Tracer.total t);
  checki "total dropped" 3 (Tracer.total_dropped t);
  Tracer.clear t;
  checki "clear empties" 0 (Tracer.total t);
  checki "clear zeroes dropped" 0 (Tracer.total_dropped t)

let test_merged_timeline_sorted () =
  let t = Tracer.create ~n_processes:3 ~capacity:16 () in
  Tracer.record t ~pid:2 ~time:30 ~ev:RI.Ev_retire ~a:1 ~b:(-1);
  Tracer.record t ~pid:0 ~time:10 ~ev:RI.Ev_retire ~a:2 ~b:(-1);
  Tracer.record t ~pid:1 ~time:20 ~ev:RI.Ev_retire ~a:3 ~b:(-1);
  Tracer.record t ~pid:1 ~time:10 ~ev:RI.Ev_free ~a:4 ~b:(-1);
  let es = Tracer.to_array t in
  checki "all retained" 4 (Array.length es);
  Array.iteri
    (fun i (e : Tracer.entry) ->
      if i > 0 then
        checkb "sorted by (time, pid)" true
          (compare
             (es.(i - 1).Tracer.time, es.(i - 1).Tracer.pid)
             (e.Tracer.time, e.Tracer.pid)
          <= 0))
    es;
  checki "tie broken by pid" 0 es.(0).Tracer.pid

(* --- overhead discipline -------------------------------------------------- *)

let test_disabled_records_nothing () =
  let t = Tracer.create ~enabled:false ~n_processes:1 ~capacity:8 () in
  let s = Tracer.sink t in
  for i = 1 to 100 do
    s.RI.record ~pid:0 ~time:i ~ev:RI.Ev_retire ~a:i ~b:0
  done;
  checkb "reports disabled" false (Tracer.enabled t);
  checki "records nothing" 0 (Tracer.total t);
  checki "drops nothing" 0 (Tracer.total_dropped t)

(* Minor words allocated per [record] through the sink, measured exactly as
   the runtimes drive it. Tail-called in a loop after a warm-up so the only
   allocation candidates are [record] itself. *)
let words_per_event ~enabled =
  let t = Tracer.create ~enabled ~n_processes:1 ~capacity:256 () in
  let s = Tracer.sink t in
  let n = 50_000 in
  for i = 1 to 64 do
    s.RI.record ~pid:0 ~time:i ~ev:RI.Ev_free ~a:i ~b:i
  done;
  let w0 = Gc.minor_words () in
  for i = 1 to n do
    s.RI.record ~pid:0 ~time:i ~ev:RI.Ev_free ~a:i ~b:i
  done;
  let w1 = Gc.minor_words () in
  (w1 -. w0) /. float_of_int n

let test_record_allocation_free () =
  check (Alcotest.float 1e-3) "disabled: 0 words/event" 0.
    (words_per_event ~enabled:false);
  check (Alcotest.float 1e-3) "enabled: 0 words/event" 0.
    (words_per_event ~enabled:true)

(* --- traced simulator runs ------------------------------------------------ *)

let t_plus_eps = Sim_exp.default_rooster_interval + Sim_exp.default_epsilon

let traced_run ?(duration = 400_000) ?(key_range = 64) ?delays
    ?(smr_tweak = Fun.id) ~scheme () =
  let tracer = Tracer.create ~n_processes:4 ~capacity:(1 lsl 15) () in
  let setup =
    { (Sim_exp.default_setup ~ds:Cset.List ~scheme ~n_processes:4
         ~workload:(Qs_workload.Spec.make ~key_range ~update_pct:50)) with
      duration;
      seed = 11;
      delays;
      smr_tweak;
      sink = Some (Tracer.sink tracer) }
  in
  let r = Sim_exp.run setup in
  (tracer, r)

let frequent_scans c =
  { c with Qs_smr.Smr_intf.scan_threshold = 16; scan_factor = 0. }

let test_seeded_trace_bit_identical () =
  let csv_of () =
    let tracer, _ = traced_run ~scheme:Qs_smr.Scheme.Cadence ~smr_tweak:frequent_scans () in
    Export.csv tracer
  in
  let a = csv_of () and b = csv_of () in
  checkb "two seeded runs give byte-equal traces" true (String.equal a b);
  checkb "trace is non-trivial" true (String.length a > 1_000)

let test_cadence_age_floor () =
  let tracer, r =
    traced_run ~scheme:Qs_smr.Scheme.Cadence ~smr_tweak:frequent_scans ()
  in
  checki "sound" 0 r.Sim_exp.violations;
  let es = Tracer.to_array tracer in
  let ages = Metrics.ages_at_free es in
  checkb "frees observed" true (Array.length ages > 0);
  let min_age = Array.fold_left min max_int ages in
  checkb
    (Printf.sprintf "min age at free %d >= T+eps %d" min_age t_plus_eps)
    true
    (min_age >= t_plus_eps);
  (match Metrics.age_histogram es with
  | Some h -> checki "histogram covers every age" (Array.length ages)
                (Qs_util.Histogram.count h)
  | None -> Alcotest.fail "age_histogram None despite frees");
  (* The trace agrees with the scheme's own counters (frees in the trace
     happen during measured time; the report adds none after the sink is
     up, so trace <= report). *)
  checkb "trace frees <= scheme frees" true
    (Metrics.frees_total es <= r.Sim_exp.report.smr.frees)

let stall_delays ~until = { Sim_exp.victim = 3; windows = [ (50_000, until) ] }
let qsense_c48 c = { c with Qs_smr.Smr_intf.switch_threshold = 48 }

let test_fallback_since_live () =
  (* Victim stalls to the end of the run: QSense must sit in fallback at
     the end, with [fallback_since] live and an open trace episode. *)
  let tracer, r =
    traced_run ~scheme:Qs_smr.Scheme.Qsense ~key_range:32 ~duration:800_000
      ~delays:(stall_delays ~until:max_int) ~smr_tweak:qsense_c48 ()
  in
  let smr = r.Sim_exp.report.smr in
  checkb "in fallback at end" true (smr.mode = Qs_smr.Smr_intf.Fallback);
  (match smr.fallback_since with
  | Some t -> checkb "entered during the run" true (t > 0 && t <= 800_000)
  | None -> Alcotest.fail "fallback_since None while in fallback mode");
  checki "no completed episode: exit-only ticks stay 0" 0 smr.fallback_ticks;
  let eps = Metrics.fallback_episodes (Tracer.to_array tracer) in
  checkb "open episode in trace" true
    (List.exists (fun e -> e.Metrics.exit_time = None) eps)

let test_fallback_round_trip_since_none () =
  (* Victim resumes mid-run: the round-trip completes, [fallback_since]
     returns to None, and the trace shows one closed global episode whose
     exit may come from a different pid than the enter. *)
  let tracer, r =
    traced_run ~scheme:Qs_smr.Scheme.Qsense ~key_range:32 ~duration:1_500_000
      ~delays:(stall_delays ~until:500_000) ~smr_tweak:qsense_c48 ()
  in
  let smr = r.Sim_exp.report.smr in
  checkb "round trip" true (smr.fallback_entries >= 1 && smr.fallback_exits >= 1);
  checkb "back on fast path" true (smr.mode = Qs_smr.Smr_intf.Fast);
  checkb "fallback_since cleared" true (smr.fallback_since = None);
  checkb "exit-only dwell accounted" true (smr.fallback_ticks > 0);
  let eps = Metrics.fallback_episodes (Tracer.to_array tracer) in
  (match List.find_opt (fun e -> e.Metrics.exit_time <> None) eps with
  | Some e ->
    let exit_t = Option.get e.Metrics.exit_time in
    checkb "episode is ordered" true (exit_t > e.Metrics.enter_time);
    (match e.Metrics.dwell with
    | Some d -> checkb "scheme dwell positive" true (d > 0)
    | None -> Alcotest.fail "closed episode without dwell")
  | None -> Alcotest.fail "no closed fallback episode in trace")

let test_sink_changes_no_corpus_outcome () =
  let path =
    if Sys.file_exists "explorer.corpus" then "explorer.corpus"
    else "test/explorer.corpus"
  in
  let cases = Explorer.load_corpus path in
  checkb "corpus non-empty" true (cases <> []);
  List.iteri
    (fun i c ->
      (* Every 4th case keeps the runtime reasonable while still covering
         hp/cadence/qsense and fair/pct/fault schedules. *)
      if i mod 4 = 0 then begin
        let o = Explorer.run_one c in
        let tracer =
          Tracer.create ~n_processes:c.Explorer.n_processes ~capacity:4096 ()
        in
        let o' = Explorer.run_one ~sink:(Tracer.sink tracer) c in
        checkb "same verdict" true
          (Explorer.same_class o.Explorer.verdict o'.Explorer.verdict);
        checki "same ops" o.Explorer.ops o'.Explorer.ops;
        checki "same steps" o.Explorer.steps o'.Explorer.steps;
        checkb "trace captured" true (Tracer.total tracer > 0)
      end)
    cases

(* --- derived metrics on synthetic timelines ------------------------------- *)

let test_metrics_age_join () =
  let t = Tracer.create ~n_processes:2 ~capacity:32 () in
  let r = Tracer.record t in
  (* b < 0: age recovered by joining on the node id's last retire. *)
  r ~pid:0 ~time:10 ~ev:RI.Ev_retire ~a:5 ~b:1;
  r ~pid:0 ~time:100 ~ev:RI.Ev_free ~a:5 ~b:(-1);
  (* b >= 0: the scheme's own (now - ts) wins over the join. *)
  r ~pid:1 ~time:20 ~ev:RI.Ev_retire ~a:6 ~b:1;
  r ~pid:1 ~time:120 ~ev:RI.Ev_free ~a:6 ~b:77;
  (* free without a visible retire: skipped. *)
  r ~pid:0 ~time:130 ~ev:RI.Ev_free ~a:9 ~b:(-1);
  (* id reuse joins against the most recent retire. *)
  r ~pid:0 ~time:140 ~ev:RI.Ev_retire ~a:5 ~b:1;
  r ~pid:0 ~time:150 ~ev:RI.Ev_free ~a:5 ~b:(-1);
  let ages = Metrics.ages_at_free (Tracer.to_array t) in
  check
    Alcotest.(array int)
    "ages in timeline order" [| 90; 77; 10 |] ages

let test_metrics_fallback_global_pairing () =
  let t = Tracer.create ~n_processes:3 ~capacity:32 () in
  let r = Tracer.record t in
  r ~pid:0 ~time:30 ~ev:RI.Ev_fallback_enter ~a:9 ~b:(-1);
  (* Exit emitted by a different process than the enter. *)
  r ~pid:2 ~time:200 ~ev:RI.Ev_fallback_exit ~a:170 ~b:(-1);
  r ~pid:1 ~time:300 ~ev:RI.Ev_fallback_enter ~a:4 ~b:(-1);
  match Metrics.fallback_episodes (Tracer.to_array t) with
  | [ e1; e2 ] ->
    checki "first enterer" 0 e1.Metrics.ep_pid;
    checkb "first closed at 200" true (e1.Metrics.exit_time = Some 200);
    checkb "scheme dwell carried" true (e1.Metrics.dwell = Some 170);
    checki "limbo at enter" 9 e1.Metrics.limbo_at_enter;
    checki "second enterer" 1 e2.Metrics.ep_pid;
    checkb "second still open" true (e2.Metrics.exit_time = None)
  | eps -> Alcotest.failf "expected 2 episodes, got %d" (List.length eps)

let test_metrics_limbo_and_lags () =
  let t = Tracer.create ~n_processes:2 ~capacity:32 () in
  let r = Tracer.record t in
  r ~pid:0 ~time:10 ~ev:RI.Ev_retire ~a:1 ~b:1;
  r ~pid:0 ~time:20 ~ev:RI.Ev_retire ~a:2 ~b:2;
  (* resync: the scheme says depth 7 after this push *)
  r ~pid:0 ~time:30 ~ev:RI.Ev_retire ~a:3 ~b:7;
  r ~pid:0 ~time:40 ~ev:RI.Ev_free ~a:1 ~b:(-1);
  let series = Metrics.limbo_series (Tracer.to_array t) ~pid:0 in
  check
    Alcotest.(array (pair int int))
    "series with resync" [| (10, 1); (20, 2); (30, 7); (40, 6) |] series;
  checki "max limbo" 7 (Metrics.max_limbo (Tracer.to_array t) ~pid:0);
  (* epoch lags: first adopting quiesce per pid per advance *)
  let t2 = Tracer.create ~n_processes:2 ~capacity:32 () in
  let r2 = Tracer.record t2 in
  r2 ~pid:0 ~time:100 ~ev:RI.Ev_epoch_advance ~a:1 ~b:(-1);
  r2 ~pid:1 ~time:150 ~ev:RI.Ev_quiesce ~a:1 ~b:1;
  r2 ~pid:1 ~time:160 ~ev:RI.Ev_quiesce ~a:1 ~b:1 (* second adopt: ignored *);
  r2 ~pid:0 ~time:180 ~ev:RI.Ev_quiesce ~a:1 ~b:0 (* not adopting *);
  r2 ~pid:0 ~time:190 ~ev:RI.Ev_quiesce ~a:1 ~b:1;
  check
    Alcotest.(array int)
    "lags" [| 50; 90 |]
    (Metrics.epoch_lags (Tracer.to_array t2))

let test_metrics_membership_counters () =
  let t = Tracer.create ~n_processes:3 ~capacity:32 () in
  let r = Tracer.record t in
  (* pid 1 departs donating 4 nodes; pid 2 later adopts them, then pid 1's
     successor departs empty-handed *)
  r ~pid:1 ~time:100 ~ev:RI.Ev_unregister ~a:1 ~b:4;
  r ~pid:2 ~time:150 ~ev:RI.Ev_adopt ~a:4 ~b:1;
  r ~pid:1 ~time:300 ~ev:RI.Ev_unregister ~a:1 ~b:0;
  r ~pid:0 ~time:350 ~ev:RI.Ev_adopt ~a:2 ~b:1;
  let es = Tracer.to_array t in
  checki "unregisters counted" 2 (Metrics.unregisters_total es);
  checki "adoptions counted" 2 (Metrics.adoptions_total es);
  checki "adopted nodes sum the payloads" 6 (Metrics.adopted_nodes_total es)

let test_traced_churn_run () =
  (* a churning simulator run must surface its membership traffic in the
     trace: departures and adoptions appear, and the adopted-node total
     never exceeds what departing workers donated *)
  let tracer = Tracer.create ~n_processes:4 ~capacity:(1 lsl 15) () in
  let setup =
    { (Sim_exp.default_setup ~ds:Cset.List ~scheme:Qs_smr.Scheme.Qsense
         ~n_processes:4
         ~workload:(Qs_workload.Spec.make ~key_range:32 ~update_pct:50)) with
      Sim_exp.duration = 200_000;
      seed = 17;
      churn = Some { Sim_exp.every_ops = 40; downtime = 2_000 };
      sink = Some (Tracer.sink tracer) }
  in
  let r = Sim_exp.run setup in
  checki "sound under churn" 0 r.Sim_exp.violations;
  checkb "workers churned" true (r.Sim_exp.churn_events > 0);
  let es = Tracer.to_array tracer in
  checkb "departures traced" true (Metrics.unregisters_total es > 0);
  checkb "adoptions traced" true (Metrics.adoptions_total es > 0);
  let donated =
    Array.fold_left
      (fun acc (e : Tracer.entry) ->
        if e.Tracer.ev = RI.Ev_unregister && e.Tracer.b > 0 then
          acc + e.Tracer.b
        else acc)
      0 es
  in
  checkb "adopted nodes <= donated nodes" true
    (Metrics.adopted_nodes_total es <= donated)

(* --- exporters ------------------------------------------------------------ *)

let test_chrome_round_trip () =
  let tracer, _ =
    traced_run ~scheme:Qs_smr.Scheme.Cadence ~smr_tweak:frequent_scans ()
  in
  let doc = Export.chrome tracer in
  let j = Json.parse_exn doc in
  let events =
    match Json.member "traceEvents" j with
    | Some a -> Json.to_list a
    | None -> Alcotest.fail "no traceEvents"
  in
  checkb "events present" true (List.length events > 0);
  let opens : (int * string, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let str k =
        match Json.member k e with
        | Some (Json.Str s) -> s
        | _ -> Alcotest.failf "missing string field %s" k
      in
      let num k =
        match Json.member k e with
        | Some (Json.Num n) -> n
        | _ -> Alcotest.failf "missing numeric field %s" k
      in
      let name = str "name" and ph = str "ph" in
      let tid = int_of_float (num "tid") in
      checkb "ts >= 0" true (num "ts" >= 0.);
      checki "single pid group" 0 (int_of_float (num "pid"));
      match ph with
      | "B" ->
        checkb "no nested B" false (Hashtbl.mem opens (tid, name));
        Hashtbl.replace opens (tid, name) ()
      | "E" ->
        checkb "E matches an open B" true (Hashtbl.mem opens (tid, name));
        Hashtbl.remove opens (tid, name)
      | "i" | "C" -> ()
      | _ -> Alcotest.failf "unexpected phase %S" ph)
    events;
  checki "every B closed" 0 (Hashtbl.length opens)

let test_chrome_mid_episode () =
  (* A ring that wrapped past the B records: the exporter must emit
     synthetic span starts (at the first retained timestamp, args a=-1)
     rather than dropping the E — the episode existed, the trace merely
     starts inside it. *)
  let tracer = Tracer.create ~n_processes:2 ~capacity:16 () in
  let r = Tracer.record tracer in
  r ~pid:0 ~time:1_000 ~ev:RI.Ev_retire ~a:1 ~b:1;
  r ~pid:0 ~time:1_500 ~ev:RI.Ev_scan_end ~a:3 ~b:7;
  r ~pid:1 ~time:1_600 ~ev:RI.Ev_fallback_exit ~a:900 ~b:(-1);
  let j = Json.parse_exn (Export.chrome tracer) in
  let events =
    match Json.member "traceEvents" j with
    | Some a -> Json.to_list a
    | None -> Alcotest.fail "no traceEvents"
  in
  let field e k =
    match Json.member k e with
    | Some v -> v
    | None -> Alcotest.failf "missing field %s" k
  in
  let span name ph =
    List.filter
      (fun e -> field e "name" = Json.Str name && field e "ph" = Json.Str ph)
      events
  in
  checki "one synthetic scan B" 1 (List.length (span "scan" "B"));
  checki "scan E kept" 1 (List.length (span "scan" "E"));
  checki "one synthetic fallback B" 1 (List.length (span "fallback" "B"));
  checki "fallback E kept" 1 (List.length (span "fallback" "E"));
  let b = List.hd (span "scan" "B") in
  checkb "synthetic B at first retained ts" true
    (field b "ts" = Json.Num 1_000.);
  (match field b "args" with
  | Json.Obj [ ("a", Json.Num a) ] -> checkb "synthetic a=-1" true (a = -1.)
  | _ -> Alcotest.fail "unexpected args on synthetic B");
  (* And the strict-matching invariant still holds for the whole doc. *)
  let opens : (string, int) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun e ->
      match (field e "name", field e "ph") with
      | Json.Str n, Json.Str "B" ->
        Hashtbl.replace opens n (1 + Option.value ~default:0 (Hashtbl.find_opt opens n))
      | Json.Str n, Json.Str "E" ->
        let d = Option.value ~default:0 (Hashtbl.find_opt opens n) - 1 in
        checkb "E never unmatched" true (d >= 0);
        Hashtbl.replace opens n d
      | _ -> ())
    events;
  Hashtbl.iter (fun n d -> checki (n ^ " all closed") 0 d) opens

let test_csv_shape () =
  let tracer, _ = traced_run ~scheme:Qs_smr.Scheme.Qsbr () in
  let lines = String.split_on_char '\n' (String.trim (Export.csv tracer)) in
  checki "header + one row per event"
    (Tracer.total tracer + 1)
    (List.length lines);
  check Alcotest.string "header" "time,pid,event,a,b" (List.hd lines)

let suite =
  [ Alcotest.test_case "ring wrap-around" `Quick test_wraparound;
    Alcotest.test_case "merged timeline sorted" `Quick test_merged_timeline_sorted;
    Alcotest.test_case "disabled records nothing" `Quick test_disabled_records_nothing;
    Alcotest.test_case "record is allocation-free" `Quick test_record_allocation_free;
    Alcotest.test_case "seeded trace bit-identical" `Quick test_seeded_trace_bit_identical;
    Alcotest.test_case "cadence age floor T+eps" `Quick test_cadence_age_floor;
    Alcotest.test_case "fallback_since live in fallback" `Quick test_fallback_since_live;
    Alcotest.test_case "fallback round trip clears since" `Slow test_fallback_round_trip_since_none;
    Alcotest.test_case "sink changes no corpus outcome" `Slow test_sink_changes_no_corpus_outcome;
    Alcotest.test_case "metrics: age join" `Quick test_metrics_age_join;
    Alcotest.test_case "metrics: global fallback pairing" `Quick test_metrics_fallback_global_pairing;
    Alcotest.test_case "metrics: limbo series + epoch lags" `Quick test_metrics_limbo_and_lags;
    Alcotest.test_case "metrics: membership counters" `Quick test_metrics_membership_counters;
    Alcotest.test_case "traced churn run surfaces membership" `Slow test_traced_churn_run;
    Alcotest.test_case "chrome export round-trips" `Quick test_chrome_round_trip;
    Alcotest.test_case "chrome tolerates mid-episode trace" `Quick test_chrome_mid_episode;
    Alcotest.test_case "csv export shape" `Quick test_csv_shape
  ]
