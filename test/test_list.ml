(* End-to-end tests of the Harris-Michael list over the simulator, with
   every reclamation scheme: sequential semantics against a model,
   concurrent stress (consistency + conservation + no use-after-free +
   leak accounting), and the demonstration that the unfenced HP variant is
   actually unsafe under TSO while fenced HP is not. *)

open Qs_sim
module L = Qs_ds.Linked_list.Make (Sim_runtime)
module IS = Set.Make (Int)

let sched ?(n_cores = 4) ?(seed = 1) ?(rooster = Some 2_000) () =
  Scheduler.create
    { (Scheduler.default_config ~n_cores ~seed) with
      rooster_interval = rooster;
      rooster_oversleep = 50 }

let list_cfg ?(scheme = Qs_smr.Scheme.Qsense) ?(n = 4) ?capacity ?switch_threshold () =
  let base = Qs_ds.Set_intf.default_config ~n_processes:n ~scheme in
  { base with
    capacity;
    smr =
      { base.smr with
        quiescence_threshold = 16;
        scan_threshold = 16;
        rooster_interval = 2_000;
        epsilon = 300;
        switch_threshold = (match switch_threshold with Some c -> c | None -> 0) } }

(* --- sequential semantics vs a model ----------------------------------- *)

let test_sequential_semantics () =
  let s = sched ~n_cores:1 () in
  let lst = L.create (list_cfg ~n:1 ()) in
  let ctx = L.register lst ~pid:0 in
  let prng = Qs_util.Prng.create ~seed:7 in
  Scheduler.exec s ~pid:0 (fun () ->
      let model = ref IS.empty in
      for _ = 1 to 3_000 do
        let key = Qs_util.Prng.int prng 50 in
        match Qs_util.Prng.int prng 3 with
        | 0 ->
          let expected = not (IS.mem key !model) in
          let got = L.insert ctx key in
          if got then model := IS.add key !model;
          if got <> expected then
            Alcotest.failf "insert %d: got %b expected %b" key got expected
        | 1 ->
          let expected = IS.mem key !model in
          let got = L.delete ctx key in
          if got then model := IS.remove key !model;
          if got <> expected then
            Alcotest.failf "delete %d: got %b expected %b" key got expected
        | _ ->
          let expected = IS.mem key !model in
          let got = L.search ctx key in
          if got <> expected then
            Alcotest.failf "search %d: got %b expected %b" key got expected
      done;
      let final = L.to_list ctx in
      Alcotest.(check (list int)) "final contents" (IS.elements !model) final)

(* --- concurrent stress per scheme -------------------------------------- *)

type worker_tally = { mutable ins : int; mutable del : int }

let stress ?(n = 4) ?(ops = 4_000) ?(range = 64) ~scheme ~seed () =
  let s = sched ~n_cores:n ~seed () in
  let lst = L.create (list_cfg ~scheme ~n ()) in
  let ctxs = Array.init n (fun pid -> L.register lst ~pid) in
  let fill = ref 0 in
  Scheduler.exec s ~pid:0 (fun () ->
      for key = 0 to (range / 2) - 1 do
        if L.insert ctxs.(0) (key * 2) then incr fill
      done);
  let tallies = Array.init n (fun _ -> { ins = 0; del = 0 }) in
  let master = Qs_util.Prng.create ~seed:(seed + 1000) in
  let prngs = Array.init n (fun _ -> Qs_util.Prng.split master) in
  for pid = 0 to n - 1 do
    Scheduler.spawn s ~pid (fun () ->
        let prng = prngs.(pid) and tally = tallies.(pid) and ctx = ctxs.(pid) in
        for _ = 1 to ops do
          let key = Qs_util.Prng.int prng range in
          let pct = Qs_util.Prng.percent prng in
          if pct < 25 then begin
            if L.insert ctx key then tally.ins <- tally.ins + 1
          end
          else if pct < 50 then begin
            if L.delete ctx key then tally.del <- tally.del + 1
          end
          else ignore (L.search ctx key)
        done)
  done;
  Scheduler.run_all s;
  (s, lst, ctxs, tallies, !fill)

let check_stress ~scheme ~seed () =
  let s, lst, ctxs, tallies, fill = stress ~scheme ~seed () in
  (match Scheduler.failures s with
  | [] -> ()
  | (pid, e) :: _ -> Alcotest.failf "worker %d failed: %s" pid (Printexc.to_string e));
  Alcotest.(check int) "no use-after-free" 0 (L.violations lst);
  let final = Scheduler.exec s ~pid:0 (fun () -> L.to_list ctxs.(0)) in
  let sorted = List.sort_uniq compare final in
  Alcotest.(check (list int)) "sorted, no duplicates" sorted final;
  let expected_size =
    Array.fold_left (fun acc t -> acc + t.ins - t.del) fill tallies
  in
  Alcotest.(check int) "conservation" expected_size (List.length final);
  (* leak accounting after a full teardown flush *)
  Scheduler.exec s ~pid:0 (fun () -> Array.iter (fun ctx -> L.flush ctx) ctxs);
  let r = L.report lst in
  Alcotest.(check int) "no double frees" 0 r.double_frees;
  if scheme <> Qs_smr.Scheme.None_ then
    Alcotest.(check int)
      "all non-live nodes freed (outstanding = live)"
      (List.length final) r.outstanding
  else begin
    (* the leaky baseline must actually leak *)
    Alcotest.(check bool) "leaky leaks" true (r.outstanding > List.length final)
  end

let stress_case scheme =
  let name = Printf.sprintf "stress %s" (Qs_smr.Scheme.to_string scheme) in
  Alcotest.test_case name `Quick (fun () ->
      check_stress ~scheme ~seed:11 ();
      check_stress ~scheme ~seed:42 ())

(* --- the fence is load-bearing (Algorithm 2) --------------------------- *)

(* Count oracle violations over several seeds under adversarial conditions:
   no roosters, no spontaneous drain, scans on every retire. *)
let violations_with ~scheme ~seeds =
  List.fold_left
    (fun acc seed ->
      let n = 4 in
      let s =
        Scheduler.create
          { (Scheduler.default_config ~n_cores:n ~seed) with
            rooster_interval = None;
            cost = { Scheduler.default_cost with stall_prob = 0.05; stall_max = 600 } }
      in
      let base = Qs_ds.Set_intf.default_config ~n_processes:n ~scheme in
      let cfg =
        { base with
          smr =
            { base.smr with
              quiescence_threshold = 4;
              scan_threshold = 1;
              scan_factor = 0.; (* scan on EVERY retire — exact timing *)
              (* tiny deferral so even Cadence-style aging cannot mask HP bugs *)
              rooster_interval = 0;
              epsilon = 0 } }
      in
      let lst = L.create cfg in
      let ctxs = Array.init n (fun pid -> L.register lst ~pid) in
      Scheduler.exec s ~pid:0 (fun () ->
          for key = 0 to 7 do
            ignore (L.insert ctxs.(0) key)
          done);
      let master = Qs_util.Prng.create ~seed in
      let prngs = Array.init n (fun _ -> Qs_util.Prng.split master) in
      for pid = 0 to n - 1 do
        Scheduler.spawn s ~pid (fun () ->
            let prng = prngs.(pid) and ctx = ctxs.(pid) in
            for _ = 1 to 4_000 do
              let key = Qs_util.Prng.int prng 8 in
              let pct = Qs_util.Prng.percent prng in
              if pct < 25 then ignore (L.insert ctx key)
              else if pct < 50 then ignore (L.delete ctx key)
              else ignore (L.search ctx key)
            done)
      done;
      Scheduler.run_all s;
      acc + L.violations lst)
    0 seeds

let seeds = [ 1; 2; 3; 4; 5; 6 ]

let test_unsafe_hp_violates () =
  let v = violations_with ~scheme:Qs_smr.Scheme.Unsafe_hp ~seeds in
  Alcotest.(check bool)
    (Printf.sprintf "unfenced HP causes use-after-free under TSO (%d found)" v)
    true (v > 0)

let test_fenced_hp_safe () =
  Alcotest.(check int) "fenced HP never violates" 0
    (violations_with ~scheme:Qs_smr.Scheme.Hp ~seeds)

let suite =
  [ Alcotest.test_case "sequential semantics vs model" `Quick test_sequential_semantics;
    stress_case Qs_smr.Scheme.None_;
    stress_case Qs_smr.Scheme.Hp;
    stress_case Qs_smr.Scheme.Qsbr;
    stress_case Qs_smr.Scheme.Cadence;
    stress_case Qs_smr.Scheme.Qsense;
    Alcotest.test_case "unfenced HP is unsafe under TSO" `Quick test_unsafe_hp_violates;
    Alcotest.test_case "fenced HP is safe under TSO" `Quick test_fenced_hp_safe
  ]
