(* Unit and property tests for Qs_util: PRNG determinism, statistics,
   table rendering, histograms. *)

open Qs_util

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let distinct = ref false in
  for _ = 1 to 10 do
    if Prng.next_int64 a <> Prng.next_int64 b then distinct := true
  done;
  Alcotest.(check bool) "streams differ" true !distinct

let test_prng_split_independent () =
  let a = Prng.create ~seed:7 in
  let c = Prng.split a in
  let xs = Array.init 50 (fun _ -> Prng.int a 1000) in
  let ys = Array.init 50 (fun _ -> Prng.int c 1000) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_prng_int_bounds () =
  let r = Prng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let x = Prng.int r 17 in
    if x < 0 || x >= 17 then Alcotest.fail "Prng.int out of bounds"
  done

let test_prng_int_invalid () =
  let r = Prng.create ~seed:3 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int r 0))

let test_prng_percent () =
  let r = Prng.create ~seed:9 in
  let counts = Array.make 100 0 in
  for _ = 1 to 100_000 do
    let p = Prng.percent r in
    counts.(p) <- counts.(p) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < 500 || c > 1500 then
        Alcotest.failf "percent bucket %d badly skewed: %d" i c)
    counts

let test_prng_shuffle_permutation () =
  let r = Prng.create ~seed:11 in
  let a = Array.init 100 Fun.id in
  Prng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 100 Fun.id) sorted

let test_stats_mean_stddev () =
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |]);
  Alcotest.(check (float 1e-9)) "mean empty" 0. (Stats.mean [||]);
  Alcotest.(check (float 1e-6)) "stddev" 1.290994 (Stats.stddev [| 1.; 2.; 3.; 4. |]);
  Alcotest.(check (float 1e-9)) "stddev singleton" 0. (Stats.stddev [| 5. |])

let test_stats_percentile () =
  let xs = [| 10.; 20.; 30.; 40.; 50. |] in
  Alcotest.(check (float 1e-9)) "p0" 10. (Stats.percentile xs 0.);
  Alcotest.(check (float 1e-9)) "p50" 30. (Stats.percentile xs 50.);
  Alcotest.(check (float 1e-9)) "p100" 50. (Stats.percentile xs 100.);
  Alcotest.(check (float 1e-9)) "p25 interpolated" 20. (Stats.percentile xs 25.);
  Alcotest.(check (float 1e-9)) "median" 30. (Stats.median xs)

let test_stats_percentile_empty () =
  (* Total on the empty array (0., like [mean]) rather than raising: every
     caller was guarding [Array.length > 0] by hand or crashing. *)
  Alcotest.(check (float 1e-9)) "empty p50" 0. (Stats.percentile [||] 50.);
  Alcotest.(check (float 1e-9)) "empty median" 0. (Stats.median [||]);
  Alcotest.check_raises "p out of range still rejected"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile [||] 101.))

let test_stats_minmax_overhead () =
  let lo, hi = Stats.min_max [| 3.; 1.; 2. |] in
  Alcotest.(check (float 1e-9)) "min" 1. lo;
  Alcotest.(check (float 1e-9)) "max" 3. hi;
  Alcotest.(check (float 1e-9)) "overhead" 25. (Stats.overhead_pct ~baseline:4. 3.);
  Alcotest.(check (float 1e-9)) "speedup" 3. (Stats.speedup ~baseline:2. 6.);
  Alcotest.(check (float 1e-9)) "ratio by zero" 0. (Stats.ratio 1. 0.)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_table_ascii () =
  let t = Table.create [ "scheme"; "tput" ] in
  Table.add_row t [ "hp"; "1.0" ];
  Table.add_float_row t "qsbr" [ 2.5 ];
  let s = Table.to_ascii t in
  Alcotest.(check bool) "contains header" true (contains s "scheme");
  Alcotest.(check bool) "contains row" true (contains s "qsbr");
  Alcotest.(check bool) "contains float" true (contains s "2.500")

let test_table_width_mismatch () =
  let t = Table.create [ "a"; "b" ] in
  Alcotest.check_raises "bad width" (Invalid_argument "Table.add_row: width mismatch")
    (fun () -> Table.add_row t [ "only-one" ])

let test_table_csv_quoting () =
  let t = Table.create [ "k"; "v" ] in
  Table.add_row t [ "with,comma"; "with\"quote" ];
  let csv = Table.to_csv t in
  Alcotest.(check string) "csv" "k,v\n\"with,comma\",\"with\"\"quote\"\n" csv

let test_table_save_csv () =
  let t = Table.create [ "a"; "b" ] in
  Table.add_row t [ "1"; "2" ];
  let path = Filename.temp_file "qsense" ".csv" in
  Table.save_csv t path;
  let ic = open_in path in
  let l1 = input_line ic and l2 = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header" "a,b" l1;
  Alcotest.(check string) "row" "1,2" l2

let test_histogram_ascii () =
  let h = Histogram.create ~lo:0. ~hi:10. ~buckets:2 in
  List.iter (Histogram.add h) [ 1.; 2.; 8. ];
  let s = Histogram.to_ascii h ~width:10 in
  Alcotest.(check bool) "two lines" true
    (List.length (String.split_on_char '\n' (String.trim s)) = 2);
  Alcotest.(check bool) "bars present" true (String.contains s '#')

let test_histogram_invalid () =
  Alcotest.check_raises "zero buckets"
    (Invalid_argument "Histogram.create: buckets must be positive") (fun () ->
      ignore (Histogram.create ~lo:0. ~hi:1. ~buckets:0));
  Alcotest.check_raises "bad range"
    (Invalid_argument "Histogram.create: hi must exceed lo") (fun () ->
      ignore (Histogram.create ~lo:1. ~hi:1. ~buckets:4))

let test_histogram_basic () =
  let h = Histogram.create ~lo:0. ~hi:10. ~buckets:10 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.6; 9.5; 100.; -5. ];
  let counts = Histogram.bucket_counts h in
  Alcotest.(check int) "total" 6 (Histogram.count h);
  Alcotest.(check int) "bucket0 (incl. underflow)" 2 counts.(0);
  Alcotest.(check int) "bucket1" 2 counts.(1);
  Alcotest.(check int) "bucket9 (incl. overflow)" 2 counts.(9)

let test_histogram_edge_labels () =
  (* Narrow range: the old fixed "%10.2f" collapsed adjacent edges of a
     [0, 0.01) histogram to the same label. Labels must stay pairwise
     distinct and right-aligned to one common width. *)
  let h = Histogram.create ~lo:0. ~hi:0.01 ~buckets:4 in
  List.iter (Histogram.add h) [ 0.001; 0.004; 0.009 ];
  let s = Histogram.to_ascii h ~width:10 in
  let labels =
    List.filter_map
      (fun line ->
        match String.index_opt line '|' with
        | Some i -> Some (String.sub line 0 i)
        | None -> None)
      (String.split_on_char '\n' (String.trim s))
  in
  Alcotest.(check int) "one label per bucket" 4 (List.length labels);
  Alcotest.(check int) "labels distinct" 4
    (List.length (List.sort_uniq compare labels));
  let w = String.length (List.hd labels) in
  Alcotest.(check bool) "labels aligned" true
    (List.for_all (fun l -> String.length l = w) labels);
  (* Wide integer-stepped range: no noise decimals. *)
  let h2 = Histogram.create ~lo:0. ~hi:4000. ~buckets:4 in
  Histogram.add h2 1.;
  let s2 = Histogram.to_ascii h2 ~width:10 in
  Alcotest.(check bool) "integer edges carry no decimal point" true
    (not (String.contains s2 '.'))

let test_json_parse () =
  let open Qs_util.Json in
  (match parse {|{"a": [1, 2.5, "x\n", true, null], "b": {"c": -3e2}}|} with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok v ->
    (match member "a" v with
    | Some (Arr [ Num 1.; Num 2.5; Str "x\n"; Bool true; Null ]) -> ()
    | _ -> Alcotest.fail "member a mismatch");
    (match Option.bind (member "b" v) (member "c") with
    | Some (Num n) -> Alcotest.(check (float 1e-9)) "-3e2" (-300.) n
    | _ -> Alcotest.fail "member b.c mismatch"));
  (match parse {|"é😀"|} with
  | Ok (Str s) -> Alcotest.(check string) "unicode escapes" "\xc3\xa9\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "unicode parse failed");
  (match parse "{\"a\": 1,}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing comma accepted");
  (match parse "[1] tail" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted")

let test_sparkline () =
  Alcotest.(check string) "empty" "" (Histogram.sparkline [||]);
  let s = Histogram.sparkline [| 0.; 1. |] in
  Alcotest.(check bool) "two glyphs" true (String.length s > 0)

let qcheck_percentile_bounds =
  QCheck.Test.make ~name:"percentile within min/max" ~count:200
    QCheck.(pair (array_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.)) (float_bound_inclusive 100.))
    (fun (xs, p) ->
      QCheck.assume (Array.length xs > 0);
      let v = Qs_util.Stats.percentile xs p in
      let lo, hi = Qs_util.Stats.min_max xs in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let qcheck_prng_int_range =
  QCheck.Test.make ~name:"Prng.int stays in range" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let r = Qs_util.Prng.create ~seed in
      let x = Qs_util.Prng.int r bound in
      x >= 0 && x < bound)

let suite =
  [ Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng seed sensitivity" `Quick test_prng_seed_sensitivity;
    Alcotest.test_case "prng split independent" `Quick test_prng_split_independent;
    Alcotest.test_case "prng int bounds" `Quick test_prng_int_bounds;
    Alcotest.test_case "prng invalid bound" `Quick test_prng_int_invalid;
    Alcotest.test_case "prng percent distribution" `Quick test_prng_percent;
    Alcotest.test_case "prng shuffle permutation" `Quick test_prng_shuffle_permutation;
    Alcotest.test_case "stats mean/stddev" `Quick test_stats_mean_stddev;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats percentile empty" `Quick test_stats_percentile_empty;
    Alcotest.test_case "stats min/max/overhead" `Quick test_stats_minmax_overhead;
    Alcotest.test_case "table ascii" `Quick test_table_ascii;
    Alcotest.test_case "table width mismatch" `Quick test_table_width_mismatch;
    Alcotest.test_case "table csv quoting" `Quick test_table_csv_quoting;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_basic;
    Alcotest.test_case "table csv file" `Quick test_table_save_csv;
    Alcotest.test_case "histogram ascii" `Quick test_histogram_ascii;
    Alcotest.test_case "histogram invalid args" `Quick test_histogram_invalid;
    Alcotest.test_case "histogram edge labels" `Quick test_histogram_edge_labels;
    Alcotest.test_case "json parse" `Quick test_json_parse;
    Alcotest.test_case "sparkline" `Quick test_sparkline;
    QCheck_alcotest.to_alcotest qcheck_percentile_bounds;
    QCheck_alcotest.to_alcotest qcheck_prng_int_range
  ]
