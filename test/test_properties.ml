(* Randomised (qcheck) properties over whole simulator runs and over the
   support libraries:

   - safety net: for arbitrary (seed, structure, scheme, mix), a run has no
     use-after-free, no double free, no leak, and no worker crash;
   - arena bookkeeping invariants under random alloc/free sequences;
   - randomly generated sequential histories are always linearizable;
   - the legal switch threshold really is above all three Property-4 terms. *)

open Qs_harness

let scheme_gen =
  QCheck.Gen.oneofl
    [ Qs_smr.Scheme.Hp; Qs_smr.Scheme.Qsbr; Qs_smr.Scheme.Ebr;
      Qs_smr.Scheme.Cadence; Qs_smr.Scheme.Qsense ]

let ds_gen = QCheck.Gen.oneofl [ Cset.List; Cset.Skiplist; Cset.Bst; Cset.Hashtable ]

let run_gen =
  QCheck.Gen.(
    map
      (fun (seed, scheme, ds, update_pct, n) -> (seed, scheme, ds, update_pct, n))
      (tup5 (int_range 1 10_000) scheme_gen ds_gen (int_range 0 100) (int_range 2 6)))

let print_run (seed, scheme, ds, update_pct, n) =
  Printf.sprintf "seed=%d scheme=%s ds=%s updates=%d%% n=%d" seed
    (Qs_smr.Scheme.to_string scheme)
    (Cset.kind_to_string ds)
    update_pct n

let prop_runs_are_safe =
  QCheck.Test.make ~name:"random runs: no UAF, no leak, no crash" ~count:20
    (QCheck.make ~print:print_run run_gen)
    (fun (seed, scheme, ds, update_pct, n) ->
      let workload = Qs_workload.Spec.make ~key_range:48 ~update_pct in
      let r =
        Sim_exp.run
          { (Sim_exp.default_setup ~ds ~scheme ~n_processes:n ~workload) with
            seed;
            duration = 120_000;
            smr_tweak =
              (fun c ->
                { c with
                  quiescence_threshold = 8;
                  scan_threshold = 8;
                  switch_threshold = 64 }) }
      in
      r.violations = 0
      && r.report.double_frees = 0
      && r.failed_at = None
      && r.leak_check = `Ok)

(* --- arena invariants ---------------------------------------------------- *)

type anode = { mutable st : Qs_arena.Node_state.t; mutable b : int }

module A = Qs_arena.Arena.Make (struct
  type t = anode

  let create () = { st = Qs_arena.Node_state.Free; b = 0 }
  let get_state n = n.st
  let set_state n s = n.st <- s
  let bump_birth n = n.b <- n.b + 1
end)

let prop_arena_bookkeeping =
  QCheck.Test.make ~name:"arena: outstanding = allocs - frees; recycling works"
    ~count:100
    QCheck.(list_of_size Gen.(int_range 1 200) bool)
    (fun script ->
      let a = A.create ~n_processes:1 () in
      let h = A.register a ~pid:0 in
      let live = ref [] in
      List.iter
        (fun alloc ->
          if alloc then live := A.alloc h :: !live
          else
            match !live with
            | [] -> ()
            | n :: rest ->
              A.free h n;
              live := rest)
        script;
      A.outstanding a = List.length !live
      && A.allocations a - A.frees a = A.outstanding a
      && A.violations a = 0
      && A.double_frees a = 0)

let prop_arena_detects_double_free =
  QCheck.Test.make ~name:"arena: double free and UAF detected" ~count:50
    QCheck.(int_range 1 20)
    (fun k ->
      let a = A.create ~n_processes:1 () in
      let h = A.register a ~pid:0 in
      let n = A.alloc h in
      A.free h n;
      for _ = 1 to k do
        A.free h n
      done;
      A.touch h n;
      A.double_frees a = k && A.violations a = 1)

let test_arena_capacity () =
  let a = A.create ~capacity:3 ~n_processes:1 () in
  let h = A.register a ~pid:0 in
  let n1 = A.alloc h in
  let _ = A.alloc h in
  let _ = A.alloc h in
  Alcotest.check_raises "capacity enforced" Qs_arena.Arena.Exhausted (fun () ->
      ignore (A.alloc h));
  (* freeing lets allocation proceed via the free list *)
  A.free h n1;
  let n4 = A.alloc h in
  Alcotest.(check bool) "recycled the freed node" true (n1 == n4);
  Alcotest.(check bool) "birth bumped on recycle" true (n4.b >= 2)

(* Steady-state recycling: once a working set of nodes has been created,
   alloc/free cycles are served entirely from the free list — [fresh_nodes]
   stops growing, every free is allocation-free (vector push, no cons), the
   reuse ratio climbs towards 1, and nothing is ever double-freed. *)
let test_arena_recycling () =
  let a = A.create ~n_processes:1 () in
  let h = A.register a ~pid:0 in
  let ws = 64 in
  let live = Array.init ws (fun _ -> A.alloc h) in
  let fresh_after_warmup = A.fresh_nodes a in
  Alcotest.(check int) "warm-up creates the working set" ws fresh_after_warmup;
  let cycles = 1_000 in
  Gc.minor ();
  let before = Gc.minor_words () in
  for i = 0 to cycles - 1 do
    let slot = i mod ws in
    A.free h live.(slot);
    live.(slot) <- A.alloc h
  done;
  let words = Gc.minor_words () -. before in
  Alcotest.(check int) "fresh_nodes stopped growing" fresh_after_warmup
    (A.fresh_nodes a);
  Alcotest.(check int) "no double frees" 0 (A.double_frees a);
  Alcotest.(check int) "outstanding unchanged" ws (A.outstanding a);
  Alcotest.(check bool)
    (Printf.sprintf "reuse ratio > 0.9 (got %.3f)" (A.reuse_ratio a))
    true
    (A.reuse_ratio a > 0.9);
  Alcotest.(check bool)
    (Printf.sprintf "alloc/free cycles allocate (%.0f words / %d cycles)"
       words cycles)
    true (words < 1_000.)

let test_node_state_transitions () =
  let open Qs_arena.Node_state in
  Alcotest.(check bool) "free->allocated" true (can_transition Free Allocated);
  Alcotest.(check bool) "allocated->reachable" true (can_transition Allocated Reachable);
  Alcotest.(check bool) "reachable->removed" true (can_transition Reachable Removed);
  Alcotest.(check bool) "removed->free" true (can_transition Removed Free);
  Alcotest.(check bool) "free->reachable illegal" false (can_transition Free Reachable);
  Alcotest.(check bool) "reachable->free illegal" false (can_transition Reachable Free);
  List.iter
    (fun s -> Alcotest.(check bool) "to_string nonempty" true (to_string s <> ""))
    [ Allocated; Reachable; Removed; Retired; Free ]

(* --- generated sequential histories are linearizable --------------------- *)

let seq_history_gen =
  QCheck.Gen.(
    list_size (int_range 1 40)
      (tup2 (int_range 0 2) (int_range 0 5) (* op kind, key *)))

let prop_sequential_histories_linearizable =
  QCheck.Test.make ~name:"sequential histories always linearizable" ~count:200
    (QCheck.make seq_history_gen)
    (fun script ->
      let module IS = Set.Make (Int) in
      let model = ref IS.empty in
      let clock = ref 0 in
      let entries =
        List.map
          (fun (opk, key) ->
            let inv = !clock in
            incr clock;
            let res = !clock in
            incr clock;
            let op, result =
              match opk with
              | 0 ->
                let r = not (IS.mem key !model) in
                model := IS.add key !model;
                (Qs_verify.History.Insert, r)
              | 1 ->
                let r = IS.mem key !model in
                model := IS.remove key !model;
                (Qs_verify.History.Delete, r)
              | _ -> (Qs_verify.History.Search, IS.mem key !model)
            in
            { Qs_verify.History.pid = 0; op; key; result; inv; res })
          script
      in
      Qs_verify.Lin_check.is_linearizable ~initial:[] entries)

let prop_legal_threshold_dominates =
  QCheck.Test.make ~name:"legal C exceeds all Property-4 terms" ~count:200
    QCheck.(quad (int_range 1 64) (int_range 1 64) (int_range 1 64) (int_range 1 5_000))
    (fun (n, k, q, t) ->
      let cfg =
        { (Qs_smr.Smr_intf.default_config ~n_processes:n ~hp_per_process:k) with
          quiescence_threshold = q;
          rooster_interval = t;
          removes_per_op_max = 2 }
      in
      let c = Qs_smr.Smr_intf.legal_switch_threshold cfg in
      c > 2 * q
      && c > (n * k) + t
      && c > (k + t + cfg.scan_threshold) / 2)

let suite =
  [ QCheck_alcotest.to_alcotest prop_runs_are_safe;
    QCheck_alcotest.to_alcotest prop_arena_bookkeeping;
    QCheck_alcotest.to_alcotest prop_arena_detects_double_free;
    Alcotest.test_case "arena capacity + recycling" `Quick test_arena_capacity;
    Alcotest.test_case "arena steady-state reuse is allocation-free" `Quick
      test_arena_recycling;
    Alcotest.test_case "node state transitions" `Quick test_node_state_transitions;
    QCheck_alcotest.to_alcotest prop_sequential_histories_linearizable;
    QCheck_alcotest.to_alcotest prop_legal_threshold_dominates
  ]
