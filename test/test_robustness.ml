(* Robustness under prolonged process delays (the paper's §7.2 second goal)
   and the liveness bounds of §6, driven through the simulator harness:

   - QSBR with a stalled process exhausts memory and fails; the leaky
     baseline exhausts memory even without delays;
   - QSense under the same stall switches to the Cadence fallback, stays
     within bounded memory, and switches back when the victim recovers;
   - HP and stand-alone Cadence tolerate the stall by construction;
   - the eviction extension returns QSense to the fast path even when the
     victim never recovers;
   - Cadence's retired-node bound (Property 2) and QSense's 2NC bound
     (Property 4) hold across runs;
   - killing the roosters breaks Cadence (fault injection): its deferral
     argument really does depend on them. *)

open Qs_harness
module Spec = Qs_workload.Spec

let workload = Spec.updates_50 ~key_range:64

let base ~scheme =
  { (Sim_exp.default_setup ~ds:Cset.List ~scheme ~n_processes:4 ~workload) with
    duration = 800_000;
    seed = 5;
    smr_tweak =
      (fun c ->
        { c with
          quiescence_threshold = 16;
          scan_threshold = 16;
          switch_threshold = 48 }) }

(* One process stalls from t=50k to the end of the run. *)
let stall = Some { Sim_exp.victim = 3; windows = [ (50_000, 10_000_000) ] }

(* Generous cap: plenty for normal operation (live ~32 nodes, and robust
   schemes keep at most a few hundred retired), far too little for an
   unbounded retired backlog. *)
let cap = Some 300

let test_qsbr_oom_under_delay () =
  let r = Sim_exp.run { (base ~scheme:Qs_smr.Scheme.Qsbr) with delays = stall; capacity = cap } in
  (match r.failed_at with
  | Some t -> Alcotest.(check bool) "failed after the stall began" true (t >= 50_000)
  | None -> Alcotest.fail "QSBR should run out of memory under a stalled process");
  Alcotest.(check int) "no use-after-free" 0 r.violations

let test_qsbr_fine_without_delay () =
  let r = Sim_exp.run { (base ~scheme:Qs_smr.Scheme.Qsbr) with capacity = cap } in
  Alcotest.(check (option int)) "no failure" None r.failed_at;
  Alcotest.(check int) "no use-after-free" 0 r.violations;
  Alcotest.(check bool) "epochs advanced" true (r.report.smr.epoch_advances > 0);
  Alcotest.(check bool) "memory reclaimed" true (r.report.smr.frees > 0)

let test_leaky_oom_even_without_delay () =
  let r = Sim_exp.run { (base ~scheme:Qs_smr.Scheme.None_) with capacity = cap } in
  match r.failed_at with
  | Some _ -> ()
  | None -> Alcotest.fail "the leaky baseline should exhaust a bounded arena"

let test_qsense_survives_stall () =
  let r =
    Sim_exp.run { (base ~scheme:Qs_smr.Scheme.Qsense) with delays = stall; capacity = cap }
  in
  Alcotest.(check (option int)) "no failure" None r.failed_at;
  Alcotest.(check int) "no use-after-free" 0 r.violations;
  Alcotest.(check bool) "switched to fallback" true
    (r.report.smr.fallback_switches >= 1);
  Alcotest.(check bool) "ends in fallback mode (victim still stalled)" true
    (r.report.smr.mode = Qs_smr.Smr_intf.Fallback);
  Alcotest.(check bool) "kept reclaiming in fallback" true (r.report.smr.frees > 0)

let test_qsense_recovers () =
  (* victim stalls during [50k, 500k); the run continues to 1M *)
  let r =
    Sim_exp.run
      { (base ~scheme:Qs_smr.Scheme.Qsense) with
        duration = 1_000_000;
        delays = Some { victim = 3; windows = [ (50_000, 500_000) ] };
        capacity = cap }
  in
  Alcotest.(check (option int)) "no failure" None r.failed_at;
  Alcotest.(check bool) "fell back" true (r.report.smr.fallback_switches >= 1);
  Alcotest.(check bool) "switched back to the fast path" true
    (r.report.smr.fastpath_switches >= 1);
  Alcotest.(check bool) "ends on the fast path" true
    (r.report.smr.mode = Qs_smr.Smr_intf.Fast)

(* EBR's stalls are injected at operation boundaries (the victim is
   unpinned), so unlike QSBR it keeps reclaiming — the in-between baseline. *)
let test_ebr_survives_between_op_stall () =
  let r =
    Sim_exp.run { (base ~scheme:Qs_smr.Scheme.Ebr) with delays = stall; capacity = cap }
  in
  Alcotest.(check (option int)) "no failure" None r.failed_at;
  Alcotest.(check int) "no use-after-free" 0 r.violations;
  Alcotest.(check bool) "kept reclaiming" true (r.report.smr.frees > 0)

let test_hp_survives_stall () =
  let r =
    Sim_exp.run { (base ~scheme:Qs_smr.Scheme.Hp) with delays = stall; capacity = cap }
  in
  Alcotest.(check (option int)) "no failure" None r.failed_at;
  Alcotest.(check int) "no use-after-free" 0 r.violations

let test_cadence_survives_stall () =
  let r =
    Sim_exp.run
      { (base ~scheme:Qs_smr.Scheme.Cadence) with delays = stall; capacity = cap }
  in
  Alcotest.(check (option int)) "no failure" None r.failed_at;
  Alcotest.(check int) "no use-after-free" 0 r.violations;
  Alcotest.(check bool) "reclaimed" true (r.report.smr.frees > 0)

let test_eviction_restores_fast_path () =
  let r =
    Sim_exp.run
      { (base ~scheme:Qs_smr.Scheme.Qsense) with
        delays = stall;
        capacity = cap;
        smr_tweak =
          (fun c ->
            { c with
              quiescence_threshold = 16;
              scan_threshold = 16;
              switch_threshold = 48;
              eviction_timeout = Some 30_000 }) }
  in
  Alcotest.(check (option int)) "no failure" None r.failed_at;
  Alcotest.(check int) "no use-after-free" 0 r.violations;
  Alcotest.(check bool) "victim evicted" true (r.report.smr.evictions >= 1);
  Alcotest.(check bool) "back on the fast path despite the dead process" true
    (r.report.smr.mode = Qs_smr.Smr_intf.Fast)

(* The evicted victim eventually WAKES, rejoins, and keeps operating safely
   (the rejoin guard keeps its first epoch cycle conservative). *)
let test_eviction_then_rejoin () =
  let r =
    Sim_exp.run
      { (base ~scheme:Qs_smr.Scheme.Qsense) with
        duration = 1_200_000;
        delays = Some { victim = 3; windows = [ (50_000, 600_000) ] };
        capacity = cap;
        smr_tweak =
          (fun c ->
            { c with
              quiescence_threshold = 16;
              scan_threshold = 16;
              switch_threshold = 48;
              eviction_timeout = Some 30_000 }) }
  in
  Alcotest.(check (option int)) "no failure" None r.failed_at;
  Alcotest.(check int) "no use-after-free" 0 r.violations;
  Alcotest.(check bool) "victim was evicted" true (r.report.smr.evictions >= 1);
  Alcotest.(check bool) "victim worked after rejoining" true
    (r.per_worker_ops.(3) > 50);
  Alcotest.(check bool) "system healthy at the end (fast path)" true
    (r.report.smr.mode = Qs_smr.Smr_intf.Fast);
  (match r.leak_check with
  | `Ok -> ()
  | `Leaked n -> Alcotest.failf "leaked %d nodes" n
  | `Skipped -> ())

(* --- liveness bounds (§6) ----------------------------------------------- *)

(* Property 2: with Cadence, retired nodes are bounded by N(K + T' + R)
   where T' is the number of nodes that can be removed within T+eps — far
   fewer than T ticks' worth here, so the tick-based bound is generous but
   finite, unlike QSBR's. *)
let test_cadence_retired_bound () =
  List.iter
    (fun seed ->
      let r =
        Sim_exp.run { (base ~scheme:Qs_smr.Scheme.Cadence) with seed; delays = stall }
      in
      let cfg = Sim_exp.base_smr_config ~n_processes:4 in
      let bound =
        4 * ((4 * 2) + cfg.rooster_interval + cfg.epsilon + 16 (* R *))
      in
      Alcotest.(check bool)
        (Printf.sprintf "retired peak %d within bound %d (seed %d)"
           r.report.smr.retired_peak bound seed)
        true
        (r.report.smr.retired_peak <= bound))
    [ 1; 2; 3 ]

(* Property 4: with a legal C, QSense keeps at most 2NC retired nodes even
   under a permanent stall. *)
let test_qsense_2nc_bound () =
  List.iter
    (fun seed ->
      let smr_tweak c =
        { c with
          Qs_smr.Smr_intf.quiescence_threshold = 16;
          scan_threshold = 16;
          rooster_interval = 1_000;
          epsilon = 200;
          switch_threshold = 0 (* auto: smallest legal value *) }
      in
      let cfg = smr_tweak (Sim_exp.base_smr_config ~n_processes:4) in
      let legal_c = Qs_smr.Smr_intf.legal_switch_threshold cfg in
      let r =
        Sim_exp.run
          { (base ~scheme:Qs_smr.Scheme.Qsense) with
            seed;
            delays = stall;
            duration = 600_000;
            smr_tweak }
      in
      let bound = 2 * 4 * legal_c in
      Alcotest.(check bool)
        (Printf.sprintf "retired peak %d within 2NC = %d (seed %d)"
           r.report.smr.retired_peak bound seed)
        true
        (r.report.smr.retired_peak <= bound))
    [ 1; 2; 3 ]

(* QSBR's retired count under a stall is NOT bounded: it ends far above
   what any of the robust schemes accumulate. *)
let test_qsbr_unbounded_growth () =
  let r = Sim_exp.run { (base ~scheme:Qs_smr.Scheme.Qsbr) with delays = stall } in
  let r' = Sim_exp.run { (base ~scheme:Qs_smr.Scheme.Qsense) with delays = stall } in
  Alcotest.(check bool)
    (Printf.sprintf "QSBR backlog (%d) dwarfs QSense's (%d)"
       r.report.smr.retired_now r'.report.smr.retired_now)
    true
    (r.report.smr.retired_now > 4 * r'.report.smr.retired_now)

(* --- the §4.1 naive hybrid is unsafe at switch time ----------------------- *)

(* Periodic delays force fast<->fallback switches; with hazard pointers only
   published in fallback mode, references acquired on the fast path are
   unprotected when the first post-switch scan runs. *)
let naive_hybrid_run ~scheme ~seed =
  Sim_exp.run
    { (base ~scheme) with
      seed;
      duration = 1_500_000;
      workload = Spec.make ~key_range:8 ~update_pct:40;
      delays =
        Some
          { victim = 3;
            windows =
              [ (50_000, 250_000); (450_000, 650_000); (850_000, 1_050_000);
                (1_250_000, 1_450_000) ] };
      smr_tweak =
        (fun c ->
          { c with
            quiescence_threshold = 4;
            scan_threshold = 1;
            scan_factor = 0.; (* scan every fallback retire: maximise switch-window exposure *)
            (* short deferral so fast-path references outlive it *)
            rooster_interval = 500;
            epsilon = 100;
            switch_threshold = 8 });
      sched_tweak =
        (fun c ->
          { c with
            rooster_interval = Some 500;
            rooster_oversleep = 0;
            cost =
              { Qs_sim.Scheduler.default_cost with
                stall_prob = 0.004;
                stall_max = 15_000 } }) }

let test_naive_hybrid_unsafe () =
  let seeds = [ 1; 2; 3; 4; 5; 6 ] in
  let v =
    List.fold_left
      (fun acc seed -> acc + (naive_hybrid_run ~scheme:Qs_smr.Scheme.Naive_hybrid ~seed).violations)
      0 seeds
  in
  Alcotest.(check bool)
    (Printf.sprintf "naive hybrid use-after-free at switch time (%d found)" v)
    true (v > 0);
  (* control: real QSense on the identical adversarial workload is safe *)
  let control =
    List.fold_left
      (fun acc seed -> acc + (naive_hybrid_run ~scheme:Qs_smr.Scheme.Qsense ~seed).violations)
      0 seeds
  in
  Alcotest.(check int) "qsense safe on the same workload" 0 control

(* --- fault injection: roosters are load-bearing for Cadence -------------- *)

let dead_rooster_run ~seed ~kill =
  Sim_exp.run
    { (base ~scheme:Qs_smr.Scheme.Cadence) with
      seed;
      duration = 1_000_000;
      workload = Spec.make ~key_range:16 ~update_pct:20;
      smr_tweak =
        (fun c ->
          { c with
            quiescence_threshold = 4;
            scan_threshold = 1;
            scan_factor = 0.; (* scan every retire: tightest exposure to dead roosters *)
            rooster_interval = 500;
            epsilon = 50 });
      sched_tweak =
        (fun c ->
          { c with
            kill_roosters_at = (if kill then Some 1_000 else None);
            rooster_interval = Some 500;
            (* big store buffers + long stalls: without rooster flushes, a
               reader's unfenced hazard pointer can stay invisible well past
               the deferral window *)
            store_buffer_capacity = 100_000;
            cost =
              { Qs_sim.Scheduler.default_cost with
                stall_prob = 0.005;
                stall_max = 3_000 } }) }

let test_dead_roosters_break_cadence () =
  let seeds = [ 1; 2; 3; 4 ] in
  let total =
    List.fold_left (fun acc seed -> acc + (dead_rooster_run ~seed ~kill:true).violations) 0 seeds
  in
  Alcotest.(check bool)
    (Printf.sprintf "use-after-free once roosters die (%d found)" total)
    true (total > 0);
  (* control: the identical adversarial setting with live roosters is safe *)
  let control =
    List.fold_left (fun acc seed -> acc + (dead_rooster_run ~seed ~kill:false).violations) 0 seeds
  in
  Alcotest.(check int) "live roosters keep cadence safe" 0 control

(* --- fault injection: oversleep beyond epsilon breaks the deferral ------- *)

(* Cadence frees a node once it is [T + eps] old, on the assumption that
   every rooster wake-up lands within [eps] of its deadline. A constant
   scheduler-side oversleep beyond the [eps] the SMR config assumes means
   hazard-pointer stores can stay buffered past the deferral window. *)
let oversleep_run ~seed ~oversleep_min ~smr_epsilon =
  Sim_exp.run
    { (base ~scheme:Qs_smr.Scheme.Cadence) with
      seed;
      duration = 1_000_000;
      workload = Spec.make ~key_range:16 ~update_pct:20;
      smr_tweak =
        (fun c ->
          { c with
            quiescence_threshold = 4;
            scan_threshold = 1;
            scan_factor = 0.;
            rooster_interval = 500;
            epsilon = smr_epsilon });
      sched_tweak =
        (fun c ->
          { c with
            rooster_interval = Some 500;
            rooster_oversleep = 0;
            (* every wake-up lands oversleep_min late, deterministically *)
            rooster_oversleep_min = oversleep_min;
            store_buffer_capacity = 100_000;
            cost =
              { Qs_sim.Scheduler.default_cost with
                stall_prob = 0.005;
                stall_max = 3_000 } }) }

let test_oversleep_beyond_epsilon_breaks_cadence () =
  let seeds = [ 1; 2; 3; 4 ] in
  (* roosters oversleep 10k ticks; the SMR config still assumes eps = 50 *)
  let total =
    List.fold_left
      (fun acc seed ->
        acc + (oversleep_run ~seed ~oversleep_min:10_000 ~smr_epsilon:50).violations)
      0 seeds
  in
  Alcotest.(check bool)
    (Printf.sprintf "use-after-free when oversleep exceeds epsilon (%d found)" total)
    true (total > 0);
  (* control: budgeting the oversleep into epsilon restores safety *)
  let control =
    List.fold_left
      (fun acc seed ->
        acc
        + (oversleep_run ~seed ~oversleep_min:10_000 ~smr_epsilon:11_000).violations)
      0 seeds
  in
  Alcotest.(check int) "epsilon >= oversleep keeps cadence safe" 0 control

let suite =
  [ Alcotest.test_case "qsbr OOMs under a stalled process" `Quick test_qsbr_oom_under_delay;
    Alcotest.test_case "qsbr fine without delays" `Quick test_qsbr_fine_without_delay;
    Alcotest.test_case "leaky baseline OOMs" `Quick test_leaky_oom_even_without_delay;
    Alcotest.test_case "qsense survives a stall" `Quick test_qsense_survives_stall;
    Alcotest.test_case "qsense recovers after the stall" `Quick test_qsense_recovers;
    Alcotest.test_case "ebr survives between-op stalls" `Quick test_ebr_survives_between_op_stall;
    Alcotest.test_case "hp survives a stall" `Quick test_hp_survives_stall;
    Alcotest.test_case "cadence survives a stall" `Quick test_cadence_survives_stall;
    Alcotest.test_case "eviction restores the fast path" `Quick test_eviction_restores_fast_path;
    Alcotest.test_case "evicted process rejoins safely" `Quick test_eviction_then_rejoin;
    Alcotest.test_case "cadence retired-node bound (Property 2)" `Quick test_cadence_retired_bound;
    Alcotest.test_case "qsense 2NC bound (Property 4)" `Quick test_qsense_2nc_bound;
    Alcotest.test_case "qsbr backlog is unbounded" `Quick test_qsbr_unbounded_growth;
    Alcotest.test_case "naive hybrid unsafe at switch (§4.1)" `Quick test_naive_hybrid_unsafe;
    Alcotest.test_case "dead roosters break cadence" `Quick test_dead_roosters_break_cadence;
    Alcotest.test_case "oversleep beyond epsilon breaks cadence" `Quick
      test_oversleep_beyond_epsilon_breaks_cadence
  ]
