(* Properties of the hot-path machinery introduced for allocation-free
   retire/scan:

   - the production hash scan set ([Hp_array.snapshot_into] /
     [protects_set]) agrees with BOTH references — the list-based
     [snapshot]/[protects] and the sorted-id
     [snapshot_into_sorted]/[protects_sorted], kept precisely for this
     three-way differential — on random hazard-pointer assignments;
   - [Qs_util.Int_set] agrees with a [Set.Make(Int)] model under random
     add/mem/reset sequences, including negative keys and growth;
   - [Vec.filter_in_place] / [Vec.Ts.filter_in_place] free exactly the
     same elements, in the same order, as the seed's [List.filter] path;
   - retire is allocation-free in steady state for all five schemes, and
     so is the scan membership path (snapshot + probes), both measured
     with [Gc.minor_words] on the real runtime after a warm-up. *)

module R = Qs_real.Real_runtime

type fake = { fid : int; mutable freed : int }

module N = struct
  type t = fake

  let id n = n.fid
end

module Hp = Qs_smr.Hp_array.Make (R) (N)

(* --- membership set vs list reference ------------------------------------ *)

(* A random HP table: n x k slots, each either the dummy or a pool node
   (duplicates across slots allowed). Both snapshot flavours are taken and
   compared on every pool node. *)
let prop_scan_set_matches_reference =
  let gen =
    QCheck.Gen.(
      triple (int_range 1 8) (int_range 1 8)
        (list_size (int_range 0 80) (int_range (-1) 31)))
  in
  QCheck.Test.make ~name:"scan set agrees with list snapshot/protects"
    ~count:500
    (QCheck.make gen)
    (fun (n, k, assignments) ->
      let dummy = { fid = -42; freed = 0 } in
      let pool = Array.init 32 (fun i -> { fid = 100 + i; freed = 0 }) in
      let hp = Hp.create ~n ~k ~dummy in
      List.iteri
        (fun i choice ->
          let pid = i mod n and slot = i / n mod k in
          let node = if choice < 0 then dummy else pool.(choice) in
          Hp.assign hp ~pid ~slot node)
        assignments;
      let reference = Hp.snapshot hp in
      let sorted = Hp.sorted_set hp in
      Hp.snapshot_into_sorted hp sorted;
      let set = Hp.scan_set hp in
      Hp.snapshot_into hp set;
      Array.for_all
        (fun node ->
          let expected = Hp.protects reference node in
          Hp.protects_set set node = expected
          && Hp.protects_sorted sorted node = expected)
        pool
      && (not (Hp.protects_set set dummy))
      && not (Hp.protects_sorted sorted dummy))

(* Clearing a process's row removes its nodes from the next snapshot. *)
let prop_clear_removes_from_set =
  QCheck.Test.make ~name:"scan set after clear drops the cleared row"
    ~count:200
    QCheck.(pair (int_range 1 8) (int_range 1 8))
    (fun (n, k) ->
      let dummy = { fid = -42; freed = 0 } in
      let hp = Hp.create ~n ~k ~dummy in
      let node = { fid = 7; freed = 0 } in
      for pid = 0 to n - 1 do
        for slot = 0 to k - 1 do
          Hp.assign hp ~pid ~slot node
        done
      done;
      for pid = 0 to n - 1 do
        Hp.clear hp ~pid
      done;
      let set = Hp.scan_set hp in
      Hp.snapshot_into hp set;
      not (Hp.protects_set set node))

(* --- Int_set vs a Set.Make(Int) model ------------------------------------ *)

module IS = Set.Make (Int)

(* Random command sequences over one reusable set: Add k, Mem k (checked
   against the model), Reset. Keys span negatives and a range wide enough
   to force growth past the initial capacity. *)
let prop_int_set_matches_model =
  let cmd_gen =
    QCheck.Gen.(
      frequency
        [ (6, map (fun k -> `Add k) (int_range (-50) 200));
          (6, map (fun k -> `Mem k) (int_range (-50) 200));
          (1, return `Reset) ])
  in
  QCheck.Test.make ~name:"Int_set agrees with Set.Make(Int) model" ~count:500
    (QCheck.make QCheck.Gen.(list_size (int_range 0 300) cmd_gen))
    (fun cmds ->
      let s = Qs_util.Int_set.create ~capacity:4 () in
      let model = ref IS.empty in
      List.for_all
        (fun cmd ->
          match cmd with
          | `Add k ->
            Qs_util.Int_set.add s k;
            model := IS.add k !model;
            Qs_util.Int_set.length s = IS.cardinal !model
          | `Mem k -> Qs_util.Int_set.mem s k = IS.mem k !model
          | `Reset ->
            Qs_util.Int_set.reset s;
            model := IS.empty;
            Qs_util.Int_set.length s = 0)
        cmds
      && Qs_util.Int_set.to_list s = IS.elements !model)

(* Reset must actually forget: stale generations never resurface, even
   after a growth rehash in a later generation. *)
let prop_int_set_reset_forgets =
  QCheck.Test.make ~name:"Int_set reset forgets across generations" ~count:200
    QCheck.(pair (small_list small_int) (small_list small_int))
    (fun (first, second) ->
      let s = Qs_util.Int_set.create ~capacity:4 () in
      List.iter (Qs_util.Int_set.add s) first;
      Qs_util.Int_set.reset s;
      List.iter (Qs_util.Int_set.add s) second;
      List.for_all
        (fun k -> List.mem k second || not (Qs_util.Int_set.mem s k))
        first)

(* --- Vec.filter_in_place vs List.filter ---------------------------------- *)

let prop_vec_filter_matches_list_filter =
  QCheck.Test.make
    ~name:"Vec.filter_in_place = List.filter (same keeps, same order)"
    ~count:500
    QCheck.(pair (list small_int) (int_range 1 5))
    (fun (xs, m) ->
      let pred x = x mod m <> 0 in
      let v = Qs_util.Vec.create 0 in
      List.iter (Qs_util.Vec.push v) xs;
      let visited = ref [] in
      Qs_util.Vec.filter_in_place v (fun x ->
          visited := x :: !visited;
          pred x);
      (* every element visited exactly once, in order *)
      List.rev !visited = xs
      && Qs_util.Vec.to_list v = List.filter pred xs)

let prop_ts_filter_matches_list_filter =
  QCheck.Test.make
    ~name:"Vec.Ts.filter_in_place = List.filter over (elt, stamp) pairs"
    ~count:500
    QCheck.(pair (list (pair small_int small_int)) (int_range 1 5))
    (fun (pairs, m) ->
      let pred x ts = (x + ts) mod m <> 0 in
      let v = Qs_util.Vec.Ts.create 0 in
      List.iter (fun (x, ts) -> Qs_util.Vec.Ts.push v x ts) pairs;
      Qs_util.Vec.Ts.filter_in_place v pred;
      Qs_util.Vec.Ts.to_list v
      = List.filter (fun (x, ts) -> pred x ts) pairs)

(* The "frees exactly the same nodes" differential: drive a limbo-style
   compaction where the dropped elements are freed as a side effect, and
   check the freed multiset matches the List.filter complement. *)
let prop_vec_filter_frees_complement =
  QCheck.Test.make ~name:"filter_in_place frees exactly the dropped elements"
    ~count:500
    QCheck.(pair (list small_int) (int_range 1 5))
    (fun (xs, m) ->
      let keep x = x mod m <> 0 in
      let v = Qs_util.Vec.create 0 in
      List.iter (Qs_util.Vec.push v) xs;
      let freed = ref [] in
      Qs_util.Vec.filter_in_place v (fun x ->
          if keep x then true
          else begin
            freed := x :: !freed;
            false
          end);
      List.rev !freed = List.filter (fun x -> not (keep x)) xs)

(* --- steady-state allocation-freedom of retire ---------------------------- *)

module Hp_s = Qs_smr.Hazard_pointers.Make (R) (N)
module Qsbr_s = Qs_smr.Qsbr.Make (R) (N)
module Ebr_s = Qs_smr.Ebr.Make (R) (N)
module Cadence_s = Qs_smr.Cadence.Make (R) (N)
module Qsense_s = Qs_smr.Qsense.Make (R) (N)

(* Thresholds far above the retire counts below: no scan, no epoch flip and
   no fallback switch fires mid-measurement, so the measured loop is pure
   retire hot path. *)
let alloc_cfg =
  { (Qs_smr.Smr_intf.default_config ~n_processes:2 ~hp_per_process:2) with
    quiescence_threshold = 1_000_000;
    scan_threshold = 1_000_000;
    switch_threshold = 1_000_000;
    rooster_interval = max_int;
    epsilon = 0 }

let warmup = 20_000
let count = 10_000

(* Words of minor-heap allocation during [count] retires, measured after a
   warm-up that grows the limbo vector past [count] and a flush that keeps
   the capacity. *)
let measure_retire ~retire ~flush =
  let node = { fid = 1; freed = 0 } in
  for _ = 1 to warmup do
    retire node
  done;
  flush ();
  Gc.minor ();
  let before = Gc.minor_words () in
  for _ = 1 to count do
    retire node
  done;
  let after = Gc.minor_words () in
  after -. before

let check_alloc_free name words =
  (* [Gc.minor_words] itself boxes its float result; anything under a few
     hundred words across 10k retires means the loop body is
     allocation-free. The seed's cons-per-retire would show >= 3 words per
     retire (30k+). *)
  Alcotest.(check bool)
    (Printf.sprintf "%s: retire allocates (%.0f words / %d retires)" name
       words count)
    true (words < 1_000.)

let test_retire_alloc_free () =
  let dummy = { fid = -1; freed = 0 } in
  let free n = n.freed <- n.freed + 1 in
  (let t = Qsbr_s.create alloc_cfg ~dummy ~free in
   let h = Qsbr_s.register t ~pid:0 in
   check_alloc_free "qsbr"
     (measure_retire ~retire:(Qsbr_s.retire h) ~flush:(fun () -> Qsbr_s.flush h)));
  (let t = Ebr_s.create alloc_cfg ~dummy ~free in
   let h = Ebr_s.register t ~pid:0 in
   check_alloc_free "ebr"
     (measure_retire ~retire:(Ebr_s.retire h) ~flush:(fun () -> Ebr_s.flush h)));
  (let t = Hp_s.create alloc_cfg ~dummy ~free in
   let h = Hp_s.register t ~pid:0 in
   check_alloc_free "hp"
     (measure_retire ~retire:(Hp_s.retire h) ~flush:(fun () -> Hp_s.flush h)));
  (let t = Cadence_s.create alloc_cfg ~dummy ~free in
   let h = Cadence_s.register t ~pid:0 in
   check_alloc_free "cadence"
     (measure_retire ~retire:(Cadence_s.retire h)
        ~flush:(fun () -> Cadence_s.flush h)));
  let t = Qsense_s.create alloc_cfg ~dummy ~free in
  let h = Qsense_s.register t ~pid:0 in
  check_alloc_free "qsense"
    (measure_retire ~retire:(Qsense_s.retire h)
       ~flush:(fun () -> Qsense_s.flush h))

(* The scan membership path itself — snapshot the N×K slots into the hash
   set, then probe it — performs zero allocation once the set exists. This
   pins the Int_set fast path: [reset] is a generation bump, [add]/[mem]
   probe preallocated arrays, and the preallocation covers the full N·K
   population so no rehash can fire. *)
let test_scan_set_alloc_free () =
  let n = 8 and k = 8 in
  let dummy = { fid = -1; freed = 0 } in
  let hp = Hp.create ~n ~k ~dummy in
  let nodes = Array.init (n * k) (fun i -> { fid = i; freed = 0 }) in
  for pid = 0 to n - 1 do
    for slot = 0 to k - 1 do
      Hp.assign hp ~pid ~slot nodes.((pid * k) + slot)
    done
  done;
  let set = Hp.scan_set hp in
  let hits = ref 0 in
  let round () =
    Hp.snapshot_into hp set;
    for i = 0 to Array.length nodes - 1 do
      if Hp.protects_set set nodes.(i) then incr hits
    done
  in
  round () (* warm-up *);
  Gc.minor ();
  let rounds = 1_000 in
  let before = Gc.minor_words () in
  for _ = 1 to rounds do
    round ()
  done;
  let words = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf
       "snapshot_into + protects_set allocates (%.0f words / %d rounds)"
       words rounds)
    true (words < 1_000.);
  Alcotest.(check int) "every probe hits" (rounds + 1) (!hits / (n * k))

let suite =
  [ QCheck_alcotest.to_alcotest prop_scan_set_matches_reference;
    QCheck_alcotest.to_alcotest prop_clear_removes_from_set;
    QCheck_alcotest.to_alcotest prop_int_set_matches_model;
    QCheck_alcotest.to_alcotest prop_int_set_reset_forgets;
    QCheck_alcotest.to_alcotest prop_vec_filter_matches_list_filter;
    QCheck_alcotest.to_alcotest prop_ts_filter_matches_list_filter;
    QCheck_alcotest.to_alcotest prop_vec_filter_frees_complement;
    Alcotest.test_case "retire is allocation-free in steady state" `Quick
      test_retire_alloc_free;
    Alcotest.test_case "scan membership path is allocation-free" `Quick
      test_scan_set_alloc_free
  ]
