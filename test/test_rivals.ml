(* The rival-scheme zoo (DEBRA+ and Hyaline) behind [Smr_intf.S],
   differential-tested against the incumbents:

   - differential battery on the simulator: both rivals run the exact
     explorer cases the incumbents run — fair / PCT / mid-run stall /
     membership churn — and must reach the same verdict class (Pass, which
     carries the arena's use-after-free and double-free oracles and, where
     not gated, linearizability), with coherent monotone stats;
   - bag-vs-vec differential, mirroring [Test_bags]: neither rival
     age-checks individual nodes, so the capacity-1 bag runs must be
     bit-identical (verdict, ops, scheduler steps, freed-id multiset) to
     the element-wise reference;
   - positive controls: a Targeted mid-operation stall (the victim frozen
     while pinned, at its own retire hook) OOMs QSBR and EBR but is
     survived by DEBRA+ — neutralization fires, the epoch advances past
     the frozen victim, reclamation continues; and Hyaline reclaims on
     every schedule without ever emitting a scan event (it has no scan
     phase to emit);
   - injected [Neutralize_at] faults are memory-safe across the whole zoo:
     any scheme's operation can be discontinued mid-flight and the
     data-structure unwind handlers keep the arena oracles clean;
   - exact-zero [Gc.minor_words] pins for both rivals' retire hot paths,
     Hyaline's enter/leave and its dereference-decrement path. *)

module Explorer = Qs_harness.Explorer
module Tracer = Qs_obs.Tracer
module Scheme = Qs_smr.Scheme
module Cset = Qs_harness.Cset
module RI = Qs_intf.Runtime_intf
module Spec = Qs_workload.Spec
open Qs_harness

let checki = Alcotest.(check int)
let checkl msg = Alcotest.(check (list int)) msg
let checkb = Alcotest.(check bool)

let rivals = [ Scheme.Debra_plus; Scheme.Hyaline ]
let incumbents = [ Scheme.Qsbr; Scheme.Hp; Scheme.Qsense ]

let diff_case ~ds ~scheme ~strategy ~faults ~bags =
  { (Explorer.default_case ~ds ~scheme ~seed:17) with
    Explorer.ops_per_proc = 100;
    duration = 300_000;
    strategy;
    faults;
    bags }

(* Run one case under a tracer; return the outcome, the sorted freed-id
   multiset and a per-event counter. *)
let run_traced (c : Explorer.case) =
  let tracer =
    Tracer.create ~n_processes:c.Explorer.n_processes ~capacity:(1 lsl 14) ()
  in
  let o = Explorer.run_one ~sink:(Tracer.sink tracer) c in
  let freed = ref [] in
  let counts = Array.make 16 0 in
  Array.iter
    (fun (e : Tracer.entry) ->
      let i = RI.event_index e.Tracer.ev in
      counts.(i) <- counts.(i) + 1;
      match e.Tracer.ev with
      | RI.Ev_free -> freed := e.Tracer.a :: !freed
      | _ -> ())
    (Tracer.to_array tracer);
  (o, List.sort compare !freed, fun ev -> counts.(RI.event_index ev))

let schedule_variants =
  [ ("fair", Explorer.Fair, []);
    ("pct", Explorer.Pct { depth = 3 }, []);
    ( "stall",
      Explorer.Fair,
      [ Qs_sim.Scheduler.Stall_at { pid = 1; at = 60_000; ticks = 120_000 } ] );
    ( "churn",
      Explorer.Fair,
      [ Qs_sim.Scheduler.Churn_at { pid = 1; at = 50_000; ticks = 40_000 };
        Qs_sim.Scheduler.Churn_at { pid = 3; at = 110_000; ticks = 50_000 } ] )
  ]

let check_pass name (o : Explorer.outcome) =
  Alcotest.(check string)
    (name ^ ": verdict") "pass"
    (Explorer.verdict_to_string o.Explorer.verdict)

let check_identical name (a : Explorer.outcome) fa (b : Explorer.outcome) fb =
  check_pass name a;
  check_pass name b;
  checki (name ^ ": same ops") a.Explorer.ops b.Explorer.ops;
  checki (name ^ ": same steps") a.Explorer.steps b.Explorer.steps;
  checkl (name ^ ": same freed-id multiset") fa fb

(* --- the differential battery -------------------------------------------- *)

(* Both rivals, on the list and the BST, across every schedule variant,
   with a bounded arena: the verdict class must match what the incumbents
   reach on the identical schedule (Pass — no UAF, no double free, no OOM,
   and linearizable wherever the check is not gated), the full operation
   budget must complete on fault-free schedules, and the per-scheme stats
   must stay coherent — including across the churn variant's unregister /
   orphan-donation seam. The arena cap doubles as the retired-peak bound:
   a rival whose backlog outgrew the incumbents' would exhaust it. *)
let test_battery () =
  List.iter
    (fun (vname, strategy, faults) ->
      let reference =
        List.map
          (fun scheme ->
            let name =
              Printf.sprintf "%s/list/%s" (Scheme.to_string scheme) vname
            in
            let o, _, _ =
              run_traced
                { (diff_case ~ds:Cset.List ~scheme ~strategy ~faults ~bags:1) with
                  Explorer.capacity = 300 }
            in
            check_pass name o;
            o)
          incumbents
      in
      List.iter
        (fun ds ->
          List.iter
            (fun scheme ->
              let name =
                Printf.sprintf "%s/%s/%s" (Scheme.to_string scheme)
                  (Cset.kind_to_string ds) vname
              in
              let o, freed, _ =
                run_traced
                  { (diff_case ~ds ~scheme ~strategy ~faults ~bags:1) with
                    Explorer.capacity =
                      (if ds = Cset.Bst then 600 else 300) }
              in
              check_pass name o;
              List.iter
                (fun (r : Explorer.outcome) ->
                  checkb
                    (name ^ ": same verdict class as incumbents")
                    true
                    (Explorer.same_class o.Explorer.verdict
                       r.Explorer.verdict))
                reference;
              if faults = [] then
                checki (name ^ ": full op budget") 400 o.Explorer.ops;
              let st = o.Explorer.stats in
              checkb (name ^ ": retires happened") true
                (st.Qs_smr.Smr_intf.retires > 0);
              checkb (name ^ ": frees <= retires") true
                (st.Qs_smr.Smr_intf.frees <= st.Qs_smr.Smr_intf.retires);
              checki
                (name ^ ": retired_now = retires - frees")
                (st.Qs_smr.Smr_intf.retires - st.Qs_smr.Smr_intf.frees)
                st.Qs_smr.Smr_intf.retired_now;
              checkb (name ^ ": peak tracked") true
                (st.Qs_smr.Smr_intf.retired_peak > 0);
              (* the tracer agrees with the stats: one Ev_free per free *)
              checki (name ^ ": trace frees = stats frees")
                st.Qs_smr.Smr_intf.frees (List.length freed))
            rivals)
        [ Cset.List; Cset.Bst ])
    schedule_variants

(* --- bag-vs-vec differential --------------------------------------------- *)

(* Neither rival age-checks individual nodes (DEBRA+ drains whole epochs,
   Hyaline drops whole batches at the last dereference), so — exactly as
   for QSBR/EBR/HP in [Test_bags] — capacity-1 bags are semantically
   identical to the element-wise reference and the runs must be
   bit-identical under every schedule variant, churn included. Capacity-64
   bags legitimately diverge in schedule (bulk frees batch their routing
   effects; Hyaline seals 64x less often), so only the safety verdict and
   the op budget are pinned there. *)
let test_bag_vec_differential () =
  List.iter
    (fun scheme ->
      List.iter
        (fun (vname, strategy, faults) ->
          let name = Printf.sprintf "%s/%s" (Scheme.to_string scheme) vname in
          let run bags =
            let o, freed, _ =
              run_traced (diff_case ~ds:Cset.List ~scheme ~strategy ~faults ~bags)
            in
            (o, freed)
          in
          let o_vec, f_vec = run 0 in
          let o_b1, f_b1 = run 1 in
          let o_b64, _ = run 64 in
          check_identical (name ^ " vec=cap1") o_vec f_vec o_b1 f_b1;
          check_pass (name ^ " cap64") o_b64;
          checki (name ^ " cap64: same ops") o_vec.Explorer.ops
            o_b64.Explorer.ops)
        schedule_variants)
    rivals

(* --- positive control: the mid-operation stall --------------------------- *)

(* [Sim_exp.delays] stalls land between operations (the victim is unpinned
   — even plain EBR shrugs those off, see [Test_robustness]). The Targeted
   strategy is the sharper knife: freeze the victim at its own retire hook,
   i.e. mid-operation, epoch pinned, for the rest of the run. Epoch-based
   schemes without a recovery mechanism can then never advance and OOM;
   DEBRA+ neutralizes the frozen laggard — poison posted, epoch slot
   force-unpinned by CAS — and reclamation continues. *)

let workload = Spec.updates_50 ~key_range:64

let base ~scheme =
  { (Sim_exp.default_setup ~ds:Cset.List ~scheme ~n_processes:4 ~workload) with
    Sim_exp.duration = 800_000;
    seed = 5;
    capacity = Some 300;
    smr_tweak =
      (fun c ->
        { c with
          Qs_smr.Smr_intf.quiescence_threshold = 16;
          scan_threshold = 16;
          switch_threshold = 48 });
    sched_tweak =
      (fun c ->
        { c with
          Qs_sim.Scheduler.strategy =
            Qs_sim.Scheduler.Targeted
              { victim = 3;
                hook = RI.Hook_retire;
                skip = 5;
                stall = 10_000_000 } }) }

let test_pinned_stall_ooms_epoch_schemes () =
  List.iter
    (fun scheme ->
      let r = Sim_exp.run (base ~scheme) in
      (match r.Sim_exp.failed_at with
      | Some _ -> ()
      | None ->
        Alcotest.failf "%s should OOM with a process frozen mid-operation"
          (Scheme.to_string scheme));
      checki
        (Scheme.to_string scheme ^ ": no use-after-free")
        0 r.Sim_exp.violations)
    [ Scheme.Qsbr; Scheme.Ebr ]

let test_debra_plus_survives_pinned_stall () =
  let r = Sim_exp.run (base ~scheme:Scheme.Debra_plus) in
  (match r.Sim_exp.failed_at with
  | None -> ()
  | Some t -> Alcotest.failf "DEBRA+ ran out of memory at %d" t);
  checki "no use-after-free" 0 r.Sim_exp.violations;
  checkb "neutralization fired" true
    (r.Sim_exp.report.smr.Qs_smr.Smr_intf.neutralizations >= 1);
  checkb "epoch advanced past the frozen victim" true
    (r.Sim_exp.report.smr.Qs_smr.Smr_intf.epoch_advances > 0);
  checkb "kept reclaiming" true (r.Sim_exp.report.smr.Qs_smr.Smr_intf.frees > 0)

(* Hyaline draws the robustness line elsewhere: a victim stalled BETWEEN
   operations costs it nothing (its slot is Inactive — the battery's stall
   variant passes with the same 300-node arena that bounds the incumbents),
   but a victim frozen MID-operation leaves its slot Active forever, every
   batch sealed from then on keeps the victim's reference, and nothing
   frees — the same fate as the epoch schemes, reached through refcounts
   instead of a stuck epoch. The paper's era-tracking extension (Hyaline-1)
   is what buys robustness here; this reproduction implements the basic
   scheme, so the honest assertion is a safe OOM, not survival — which is
   exactly what makes DEBRA+'s neutralization the distinguishing control. *)
let test_hyaline_pinned_stall_ooms () =
  let r = Sim_exp.run (base ~scheme:Scheme.Hyaline) in
  (match r.Sim_exp.failed_at with
  | Some _ -> ()
  | None ->
    Alcotest.fail
      "basic Hyaline should OOM with a handle frozen mid-operation");
  checki "no use-after-free" 0 r.Sim_exp.violations

(* --- positive control: Hyaline has no scan phase ------------------------- *)

let test_hyaline_never_scans () =
  List.iter
    (fun (vname, strategy, faults) ->
      let o, _, count =
        run_traced
          (diff_case ~ds:Cset.List ~scheme:Scheme.Hyaline ~strategy ~faults
             ~bags:1)
      in
      check_pass ("hyaline/" ^ vname) o;
      checki (vname ^ ": zero scan events") 0
        (count RI.Ev_scan_begin + count RI.Ev_scan_end);
      checkb (vname ^ ": reclaims without scanning") true
        (count RI.Ev_free > 0))
    schedule_variants;
  (* control: on the identical case, HP's reclamation IS a scan *)
  let _, _, count =
    run_traced
      (diff_case ~ds:Cset.List ~scheme:Scheme.Hp ~strategy:Explorer.Fair
         ~faults:[] ~bags:1)
  in
  checkb "hp control scans" true (count RI.Ev_scan_begin > 0)

(* --- injected neutralization faults are safe across the zoo -------------- *)

(* [Neutralize_at] discontinues whatever operation is in flight — under any
   scheme, not just DEBRA+. The data-structure unwind handlers must keep
   the arena oracles clean (a never-published node freed, an owned retire
   pair never double-retired) no matter whose retire/insert gets aborted.
   Linearizability is gated (a restarted operation may double-apply). *)
let test_injected_neutralization_safe () =
  List.iter
    (fun scheme ->
      List.iter
        (fun ds ->
          List.iter
            (fun seed ->
              let c =
                { (Explorer.default_case ~ds ~scheme ~seed) with
                  Explorer.ops_per_proc = 80;
                  duration = 300_000;
                  faults =
                    Explorer.plan Explorer.Neutralize ~n:4 ~duration:300_000
                      ~seed }
              in
              let name =
                Printf.sprintf "%s/%s/seed%d" (Scheme.to_string scheme)
                  (Cset.kind_to_string ds) seed
              in
              let o = Explorer.run_one c in
              check_pass name o;
              checkb (name ^ ": lin gated under neutralization") true
                (o.Explorer.lin = Explorer.Lin_skipped_faults))
            [ 3; 23 ])
        [ Cset.List; Cset.Bst ])
    (incumbents @ rivals)

(* --- exact-zero allocation pins ------------------------------------------ *)

module R = Qs_real.Real_runtime

type fake = Test_bags.fake = { fid : int; mutable freed : int }

module N = struct
  type t = fake

  let id n = n.fid
end

module Debra_s = Qs_smr.Debra_plus.Make (R) (N)
module Hy_s = Qs_smr.Hyaline.Make (R) (N)

(* DEBRA+'s retire is EBR's plus one [Stdlib.Atomic] flag read: one limbo
   append and counters, no runtime reads (the pinned epoch is cached in a
   plain field). Same harness as the incumbents' pins in [Test_bags]. *)
let test_debra_plus_retire_exact_zero () =
  let dummy = { fid = -1; freed = 0 } in
  let free n = n.freed <- n.freed + 1 in
  let node = { fid = 1; freed = 0 } in
  let cfg = Test_bags.base_cfg ~bags:true in
  let t = Debra_s.create cfg ~dummy ~free in
  let h = Debra_s.register t ~pid:0 in
  Test_bags.check_exact_zero "debra-plus bag retire"
    ~warm:(fun _ -> Debra_s.retire h node)
    ~flush:(fun () -> Debra_s.flush h)
    ~prep:(fun () -> ())
    ~step:(fun _ -> Debra_s.retire h node)
    ()

(* Hyaline's retire between seals is an array store plus meta counters.
   (The seal itself allocates a fresh batch — unlike the limbo bags there
   is no block recycling, because batches free themselves on whatever
   handle drops the last reference — so the pin measures the open-batch
   path: a capacity larger than the whole measured window.) *)
let test_hyaline_retire_exact_zero () =
  let dummy = { fid = -1; freed = 0 } in
  let free n = n.freed <- n.freed + 1 in
  let node = { fid = 1; freed = 0 } in
  let cfg =
    { (Test_bags.base_cfg ~bags:true) with
      Qs_smr.Smr_intf.bag_capacity = 1 lsl 16 }
  in
  let t = Hy_s.create cfg ~dummy ~free in
  let h = Hy_s.register t ~pid:0 in
  Test_bags.check_exact_zero "hyaline open-batch retire"
    ~warm:(fun _ -> Hy_s.retire h node)
    ~flush:(fun () -> Hy_s.flush h)
    ~prep:(fun () -> ())
    ~step:(fun _ -> Hy_s.retire h node)
    ()

(* The per-operation session path: enter installs the handle's preallocated
   [Active Cnil] (no fresh block), leave claims the cell back and walks the
   empty chain. And the dereference-decrement path itself — [drop_ref] on a
   shared batch — is one fetch-and-add; pinned white-box on a batch whose
   count never reaches the zero-crossing inside the window. *)
let test_hyaline_enter_leave_exact_zero () =
  let dummy = { fid = -1; freed = 0 } in
  let free n = n.freed <- n.freed + 1 in
  let node = { fid = 1; freed = 0 } in
  let t = Hy_s.create (Test_bags.base_cfg ~bags:true) ~dummy ~free in
  let h = Hy_s.register t ~pid:0 in
  Test_bags.check_exact_zero "hyaline enter/leave"
    ~warm:(fun _ ->
      Hy_s.manage_state h;
      Hy_s.clear_hps h)
    ~flush:(fun () -> ())
    ~prep:(fun () -> ())
    ~step:(fun _ ->
      Hy_s.manage_state h;
      Hy_s.clear_hps h)
    ();
  let b =
    { Hy_s.data = [| node |];
      count = 1;
      nref = R.atomic ((2 * (Test_bags.warmup + Test_bags.count)) + 2);
      freed = Stdlib.Atomic.make false }
  in
  Test_bags.check_exact_zero "hyaline dereference decrement"
    ~warm:(fun _ -> Hy_s.drop_ref h b)
    ~flush:(fun () -> ())
    ~prep:(fun () -> ())
    ~step:(fun _ -> Hy_s.drop_ref h b)
    ()

let suite =
  [ Alcotest.test_case "differential battery vs incumbents" `Quick test_battery;
    Alcotest.test_case "bag-vs-vec differential: rivals exact" `Quick
      test_bag_vec_differential;
    Alcotest.test_case "mid-op stall OOMs qsbr and ebr" `Quick
      test_pinned_stall_ooms_epoch_schemes;
    Alcotest.test_case "debra+ survives the mid-op stall (neutralization)"
      `Quick test_debra_plus_survives_pinned_stall;
    Alcotest.test_case "hyaline mid-op stall: safe OOM (no neutralization)"
      `Quick test_hyaline_pinned_stall_ooms;
    Alcotest.test_case "hyaline never scans" `Quick test_hyaline_never_scans;
    Alcotest.test_case "injected neutralization is safe across the zoo"
      `Quick test_injected_neutralization_safe;
    Alcotest.test_case "debra+ retire allocates exactly zero" `Quick
      test_debra_plus_retire_exact_zero;
    Alcotest.test_case "hyaline retire allocates exactly zero" `Quick
      test_hyaline_retire_exact_zero;
    Alcotest.test_case "hyaline enter/leave + decrement allocate zero" `Quick
      test_hyaline_enter_leave_exact_zero
  ]
