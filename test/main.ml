let () =
  Alcotest.run "qsense"
    [ ("util", Test_util.suite);
      ("sim", Test_sim.suite);
      ("smr", Test_smr.suite);
      ("membership", Test_membership.suite);
      ("hp_set", Test_hp_set.suite);
      ("bags", Test_bags.suite);
      ("list", Test_list.suite);
      ("sets", Test_sets.suite);
      ("robustness", Test_robustness.suite);
      ("verify", Test_verify.suite);
      ("stack", Test_stack.suite);
      ("queue", Test_queue.suite);
      ("workload", Test_workload.suite);
      ("differential", Test_differential.suite);
      ("explorer", Test_explorer.suite);
      ("explorer_pool", Test_explorer_pool.suite);
      ("obs", Test_obs.suite);
      ("latency", Test_latency.suite);
      ("properties", Test_properties.suite);
      ("real", Test_real.suite);
      ("service", Test_service.suite);
      ("rivals", Test_rivals.suite)
    ]
