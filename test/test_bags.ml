(* Limbo bags (DEBRA-style batched reclamation):

   - unit tests of the block machinery: seal boundaries, partial final
     bags, capacity-1 bags, the oldest-first early-stopping walk, and
     splicing (donation) of a half-sealed deque;
   - model-based differentials: both bag flavours against independent
     list models of the documented semantics, on random workloads and
     block capacities;
   - scheme-level bag-vs-vec differentials on the simulator: the same
     explorer case run with the vec reference ([bags=0]), capacity-1 bags
     and default bags must agree — exactly (verdict, ops, steps, freed-id
     multiset) wherever the representations are semantically identical,
     and on the safety verdict everywhere else;
   - exact-zero [Gc.minor_words] pins: the batched retire path of all
     five schemes, and the HP / QSense-fallback filtering scan, allocate
     nothing in steady state — on bags and on the vec reference. *)

module Bag = Qs_util.Bag

(* --- unit: seal boundaries and partial bags ------------------------------ *)

let checki = Alcotest.(check int)
let checkl msg = Alcotest.(check (list int)) msg
let checkll msg = Alcotest.(check (list (list int))) msg

let to_list t =
  let acc = ref [] in
  Bag.iter (fun x -> acc := x :: !acc) t;
  List.rev !acc

let ts_to_list t =
  let acc = ref [] in
  Bag.Ts.iter (fun x _ts -> acc := x :: !acc) t;
  List.rev !acc

let test_plain_boundaries () =
  let src = Bag.source ~capacity:4 0 in
  let t = Bag.create src in
  checki "sealed on push 1" 0 (Bag.push t 1);
  checki "sealed on push 2" 0 (Bag.push t 2);
  checki "sealed on push 3" 0 (Bag.push t 3);
  checki "len before seal" 3 (Bag.length t);
  checki "push 4 seals a full bag" 4 (Bag.push t 4);
  checki "len after seal" 4 (Bag.length t);
  checki "push 5 opens a new block" 0 (Bag.push t 5);
  checki "len with partial bag" 5 (Bag.length t);
  (* drain: sealed bag wholesale, then the partial final bag *)
  let bags = ref [] in
  Bag.drain t ~free_bag:(fun data count ->
      bags := Array.to_list (Array.sub data 0 count) :: !bags);
  checkll "drain = sealed bag + partial final bag" [ [ 1; 2; 3; 4 ]; [ 5 ] ]
    (List.rev !bags);
  checki "empty after drain" 0 (Bag.length t);
  Alcotest.(check bool) "is_empty" true (Bag.is_empty t)

let test_capacity_one () =
  (* capacity clamps to >= 1; a capacity-1 bag seals on every push *)
  let src = Bag.source ~capacity:0 0 in
  checki "capacity clamped to 1" 1 (Bag.capacity src);
  let t = Bag.create src in
  checki "every push seals (1)" 1 (Bag.push t 10);
  checki "every push seals (2)" 1 (Bag.push t 11);
  checki "every push seals (3)" 1 (Bag.push t 12);
  checki "three singleton bags" 3 (Bag.length t);
  let bags = ref [] in
  Bag.drain t ~free_bag:(fun data count ->
      bags := Array.to_list (Array.sub data 0 count) :: !bags);
  checkll "three singleton drains" [ [ 10 ]; [ 11 ]; [ 12 ] ] (List.rev !bags)

let test_plain_scan_compacts () =
  let src = Bag.source ~capacity:3 0 in
  let t = Bag.create src in
  List.iter (fun x -> ignore (Bag.push t x)) [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  let freed = ref [] in
  Bag.scan t
    ~keep:(fun x -> x mod 2 = 0)
    ~free_bag:(fun data count ->
      for i = 0 to count - 1 do
        freed := data.(i) :: !freed
      done);
  checkl "frees exactly the dropped nodes, walk order" [ 1; 3; 5; 7 ]
    (List.rev !freed);
  checkl "survivors compacted in order" [ 2; 4; 6; 8 ] (to_list t);
  checki "length counts survivors" 4 (Bag.length t)

(* --- unit: the timestamped walk ------------------------------------------ *)

let test_ts_early_stop () =
  let src = Bag.Ts.source ~capacity:2 0 in
  let t = Bag.Ts.create src in
  List.iter
    (fun (x, s) -> ignore (Bag.Ts.push t x s))
    [ (1, 10); (2, 20); (3, 30); (4, 40); (5, 50); (6, 60); (7, 70) ];
  (* sealed chain: [1;2]@20  [3;4]@40  [5;6]@60, open [7]. Cutoff at 40:
     the walk visits the first two bags, stops at stamp 60, and the open
     block's node (ts 70) fails the per-node age check. *)
  let freed = ref [] in
  let stamps = ref [] in
  Bag.Ts.scan t
    ~age_ok:(fun s -> s <= 40)
    ~keep:(fun x -> x = 3)
    ~free_bag:(fun data _ts count stamp ->
      stamps := stamp :: !stamps;
      for i = 0 to count - 1 do
        freed := data.(i) :: !freed
      done);
  checkl "frees only bags at or past the cutoff" [ 1; 2; 4 ]
    (List.rev !freed);
  checkl "one seal stamp per freed bag" [ 20; 40 ] (List.rev !stamps);
  (* survivor [3] is prepended before the unwalked remainder *)
  checkl "survivor + unwalked + open, in order" [ 3; 5; 6; 7 ] (ts_to_list t);
  checki "length" 4 (Bag.Ts.length t);
  (* a second, all-ages scan with no protection empties the deque *)
  let freed2 = ref [] in
  Bag.Ts.scan t
    ~age_ok:(fun _ -> true)
    ~keep:(fun _ -> false)
    ~free_bag:(fun data _ts count _stamp ->
      for i = 0 to count - 1 do
        freed2 := data.(i) :: !freed2
      done);
  checkl "everything ages out eventually" [ 3; 5; 6; 7 ] (List.rev !freed2);
  checki "empty" 0 (Bag.Ts.length t)

let test_ts_splice_half_sealed () =
  (* donation of a half-sealed deque: the open block is sealed mid-fill
     (stamped with its newest element) and the whole chain moves by
     pointer splicing; the donor stays alive and usable. *)
  let src_s = Bag.Ts.source ~capacity:2 0 in
  let dst_s = Bag.Ts.source ~capacity:2 0 in
  let donor = Bag.Ts.create src_s in
  let adopter = Bag.Ts.create dst_s in
  ignore (Bag.Ts.push adopter 0 5);
  List.iter
    (fun (x, s) -> ignore (Bag.Ts.push donor x s))
    [ (1, 10); (2, 20); (3, 30) ];
  Bag.Ts.splice_into ~src:donor ~dst:adopter;
  checki "donor emptied" 0 (Bag.Ts.length donor);
  checki "adopter holds everything" 4 (Bag.Ts.length adopter);
  (* adopted chain lands on the sealed tail; the adopter's own open block
     stays open behind it *)
  checkl "sealed chain first, open block last" [ 1; 2; 3; 0 ]
    (ts_to_list adopter);
  (* the donor is still alive: a racing push after donation is benign *)
  checki "donor usable after donation" 0 (Bag.Ts.push donor 9 90);
  checki "donor length" 1 (Bag.Ts.length donor);
  let bags = ref [] in
  Bag.Ts.drain adopter ~free_bag:(fun data _ts count _stamp ->
      bags := Array.to_list (Array.sub data 0 count) :: !bags);
  checkll "drain: sealed [1;2], half-sealed [3], open [0]"
    [ [ 1; 2 ]; [ 3 ]; [ 0 ] ]
    (List.rev !bags)

(* --- model-based differentials ------------------------------------------- *)

(* Plain bags against the List model: [scan ~keep] must free exactly the
   complement of [keep] (in walk order) and retain exactly the [keep]s (in
   push order), for any block capacity. *)
let prop_plain_scan_matches_model =
  QCheck.Test.make ~name:"Bag.scan = List.partition (any capacity)"
    ~count:500
    QCheck.(pair (list small_int) (pair (int_range 1 5) (int_range 1 5)))
    (fun (xs, (cap, m)) ->
      let keep x = x mod m <> 0 in
      let src = Bag.source ~capacity:cap 0 in
      let t = Bag.create src in
      List.iter (fun x -> ignore (Bag.push t x)) xs;
      let freed = ref [] in
      Bag.scan t ~keep ~free_bag:(fun data count ->
          for i = 0 to count - 1 do
            freed := data.(i) :: !freed
          done);
      List.rev !freed = List.filter (fun x -> not (keep x)) xs
      && to_list t = List.filter keep xs
      && Bag.length t = List.length (List.filter keep xs))

(* The timestamped walk against an independent model of the documented
   semantics: chunk the pushes into blocks, stamp each full chunk with its
   newest timestamp, walk chunks oldest-first while [age_ok stamp], stop at
   the first young bag; filter the open remainder per node. *)
let ts_scan_model ~cap ~age_ok ~keep pushes =
  let arr = Array.of_list pushes in
  let n = Array.length arr in
  let n_sealed = n / cap in
  let freed = ref [] and kept = ref [] in
  let stopped = ref false in
  for b = 0 to n_sealed - 1 do
    let chunk = Array.sub arr (b * cap) cap in
    let stamp = snd chunk.(cap - 1) in
    if !stopped || not (age_ok stamp) then begin
      stopped := true;
      Array.iter (fun (x, _) -> kept := x :: !kept) chunk
    end
    else
      Array.iter
        (fun (x, _) -> if keep x then kept := x :: !kept else freed := x :: !freed)
        chunk
  done;
  for i = n_sealed * cap to n - 1 do
    let x, s = arr.(i) in
    if age_ok s && not (keep x) then freed := x :: !freed else kept := x :: !kept
  done;
  (List.rev !freed, List.rev !kept)

let prop_ts_scan_matches_model =
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_range 0 60) (pair (int_range 0 50) (int_range 0 100)))
        (pair (int_range 1 5) (pair (int_range 2 7) (int_range 2 5))))
  in
  QCheck.Test.make
    ~name:"Bag.Ts.scan = chunked model (early stop, open-block filter)"
    ~count:500 (QCheck.make gen)
    (fun (pushes, (cap, (a, k))) ->
      let age_ok s = s mod a <> 0 in
      let keep x = x mod k = 0 in
      let src = Bag.Ts.source ~capacity:cap 0 in
      let t = Bag.Ts.create src in
      List.iter (fun (x, s) -> ignore (Bag.Ts.push t x s)) pushes;
      let freed = ref [] in
      Bag.Ts.scan t ~age_ok ~keep ~free_bag:(fun data _ts count _stamp ->
          for i = 0 to count - 1 do
            freed := data.(i) :: !freed
          done);
      let m_freed, m_kept = ts_scan_model ~cap ~age_ok ~keep pushes in
      (* freed: exact multiset (walk order also matches the model's) *)
      List.sort compare !freed = List.sort compare (List.rev m_freed)
      && (* conservation: what was not freed is still in the deque *)
      List.sort compare (ts_to_list t) = List.sort compare m_kept
      && Bag.Ts.length t = List.length m_kept)

(* --- scheme-level bag-vs-vec differential on the simulator --------------- *)

module Explorer = Qs_harness.Explorer
module Tracer = Qs_obs.Tracer
module Scheme = Qs_smr.Scheme
module Cset = Qs_harness.Cset
module RI = Qs_intf.Runtime_intf

let diff_case ~scheme ~strategy ~faults ~bags =
  { (Explorer.default_case ~ds:Cset.List ~scheme ~seed:17) with
    Explorer.ops_per_proc = 100;
    duration = 300_000;
    strategy;
    faults;
    bags }

(* Run one case under a tracer; return the outcome plus the sorted list of
   freed node ids (one entry per Ev_free — the free multiset). *)
let run_traced (c : Explorer.case) =
  let tracer =
    Tracer.create ~n_processes:c.Explorer.n_processes ~capacity:(1 lsl 14) ()
  in
  let o = Explorer.run_one ~sink:(Tracer.sink tracer) c in
  let freed = ref [] in
  Array.iter
    (fun (e : Tracer.entry) ->
      match e.Tracer.ev with
      | RI.Ev_free -> freed := e.Tracer.a :: !freed
      | _ -> ())
    (Tracer.to_array tracer);
  (o, List.sort compare !freed)

let schedule_variants =
  [ ("fair", Explorer.Fair, []);
    ("pct", Explorer.Pct { depth = 3 }, []);
    ( "stall",
      Explorer.Fair,
      [ Qs_sim.Scheduler.Stall_at { pid = 1; at = 60_000; ticks = 120_000 } ] );
    ( "churn",
      Explorer.Fair,
      [ Qs_sim.Scheduler.Churn_at { pid = 1; at = 50_000; ticks = 40_000 };
        Qs_sim.Scheduler.Churn_at { pid = 3; at = 110_000; ticks = 50_000 } ] )
  ]

let check_pass name (o : Explorer.outcome) =
  Alcotest.(check string)
    (name ^ ": verdict") "pass"
    (Explorer.verdict_to_string o.Explorer.verdict)

let check_identical name (a : Explorer.outcome) fa (b : Explorer.outcome) fb =
  check_pass name a;
  check_pass name b;
  checki (name ^ ": same ops") a.Explorer.ops b.Explorer.ops;
  checki (name ^ ": same steps") a.Explorer.steps b.Explorer.steps;
  checkl (name ^ ": same freed-id multiset") fa fb

(* QSBR / EBR / HP never age-check individual nodes, so bags are
   semantically identical to the vec reference: whole-epoch drains and
   hazard filters free the same sets at the same scans. With capacity-1
   bags every bulk free covers one node, so even the simulated schedule
   is bit-identical — the runs must be indistinguishable (verdict, ops,
   scheduler steps, freed-id multiset) under every schedule, fault plan
   and churn. At capacity 64 the bulk free performs ONE routing effect
   ([R.self]) per bag instead of per node — the batching win itself — so
   the simulated schedule legitimately diverges after the first sealed
   bag is freed; there the safety verdict and the op budget are pinned,
   and the corpus replay covers the rest. *)
let test_differential_exact () =
  List.iter
    (fun scheme ->
      List.iter
        (fun (vname, strategy, faults) ->
          let name =
            Printf.sprintf "%s/%s" (Scheme.to_string scheme) vname
          in
          let run bags = run_traced (diff_case ~scheme ~strategy ~faults ~bags) in
          let o_vec, f_vec = run 0 in
          let o_b1, f_b1 = run 1 in
          let o_b64, _ = run 64 in
          check_identical (name ^ " vec=cap1") o_vec f_vec o_b1 f_b1;
          check_pass (name ^ " cap64") o_b64;
          checki (name ^ " cap64: same ops") o_vec.Explorer.ops
            o_b64.Explorer.ops)
        schedule_variants)
    [ Scheme.Qsbr; Scheme.Ebr; Scheme.Hp ]

(* Cadence / QSense age-check per BAG (one stamp per block), so exact
   equivalence with the vec reference holds for capacity-1 bags as long as
   stamps stay monotone — i.e. without adoption seams. Under churn the
   walk may stop early at a seam (a bounded reclamation delay, never a
   safety issue), so only the safety verdict is pinned there, as it is for
   capacity-64 bags (whose open-block filter defers nothing only while
   limbo stays under one block). *)
let test_differential_timestamped () =
  List.iter
    (fun scheme ->
      List.iter
        (fun (vname, strategy, faults) ->
          let name =
            Printf.sprintf "%s/%s" (Scheme.to_string scheme) vname
          in
          let run bags = run_traced (diff_case ~scheme ~strategy ~faults ~bags) in
          let o_vec, f_vec = run 0 in
          let o_b1, f_b1 = run 1 in
          let o_b64, _ = run 64 in
          check_pass (name ^ " cap64") o_b64;
          if vname <> "churn" then
            check_identical (name ^ " vec=cap1") o_vec f_vec o_b1 f_b1
          else begin
            check_pass (name ^ " vec") o_vec;
            check_pass (name ^ " cap1") o_b1;
            checki (name ^ ": same ops") o_vec.Explorer.ops o_b1.Explorer.ops
          end)
        schedule_variants)
    [ Scheme.Cadence; Scheme.Qsense ]

(* --- exact-zero allocation pins ------------------------------------------ *)

module R = Qs_real.Real_runtime

type fake = { fid : int; mutable freed : int }

module N = struct
  type t = fake

  let id n = n.fid
end

module Hp_s = Qs_smr.Hazard_pointers.Make (R) (N)
module Qsbr_s = Qs_smr.Qsbr.Make (R) (N)
module Ebr_s = Qs_smr.Ebr.Make (R) (N)
module Cadence_s = Qs_smr.Cadence.Make (R) (N)
module Qsense_s = Qs_smr.Qsense.Make (R) (N)

let base_cfg ~bags =
  { (Qs_smr.Smr_intf.default_config ~n_processes:2 ~hp_per_process:2) with
    Qs_smr.Smr_intf.quiescence_threshold = 1_000_000;
    scan_threshold = 1_000_000;
    switch_threshold = 1_000_000;
    scan_factor = 0.;
    rooster_interval = max_int;
    epsilon = 0;
    limbo_bags = bags }

let warmup = 20_000
let count = 10_000

(* Exact-zero measurement: the words allocated across [count] iterations of
   [step] must equal the words allocated by an empty measurement window
   (the boxed float [Gc.minor_words] itself returns) — i.e. the loop body
   allocates NOTHING. [prep] runs between warm-up and measurement (it
   re-seeds protected nodes after a flush). When [prep] changes the
   workload shape — e.g. introduces hazard-protected survivors that need a
   compaction block the retire-only warm-up never demanded — pass
   [~rewarm:true] to re-warm with [step] itself so the block cache reaches
   the real steady-state high-water mark before the window opens. The
   retire-only pins must NOT re-warm: with scans disabled their limbo grows
   monotonically, so the measured window lives off the cache that the
   warm-up + flush stocked, and a re-warm would eat it. *)
let check_exact_zero name ?(rewarm = false) ~warm ~flush ~prep ~step () =
  for i = 1 to warmup do
    warm i
  done;
  flush ();
  prep ();
  if rewarm then
    for i = 1 to warmup do
      step i
    done;
  Gc.minor ();
  let ob = Gc.minor_words () in
  let oa = Gc.minor_words () in
  let overhead = oa -. ob in
  Gc.minor ();
  let before = Gc.minor_words () in
  for i = 1 to count do
    step i
  done;
  let after = Gc.minor_words () in
  let words = after -. before in
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.0f words / %d iterations (measurement overhead %.0f)"
       name words count overhead)
    true
    (words <= overhead)

(* The batched retire path: with thresholds too high for any scan to fire,
   [count] retires — including every 64th that seals a bag and draws a
   fresh block — allocate exactly nothing. The warm-up plus flush stocks
   the block cache, so seals recycle instead of allocating. *)
let test_bag_retire_exact_zero () =
  let dummy = { fid = -1; freed = 0 } in
  let free n = n.freed <- n.freed + 1 in
  let node = { fid = 1; freed = 0 } in
  let nothing () = () in
  let cfg = base_cfg ~bags:true in
  (let t = Qsbr_s.create cfg ~dummy ~free in
   let h = Qsbr_s.register t ~pid:0 in
   check_exact_zero "qsbr bag retire"
     ~warm:(fun _ -> Qsbr_s.retire h node)
     ~flush:(fun () -> Qsbr_s.flush h)
     ~prep:nothing
     ~step:(fun _ -> Qsbr_s.retire h node) ());
  (let t = Ebr_s.create cfg ~dummy ~free in
   let h = Ebr_s.register t ~pid:0 in
   check_exact_zero "ebr bag retire"
     ~warm:(fun _ -> Ebr_s.retire h node)
     ~flush:(fun () -> Ebr_s.flush h)
     ~prep:nothing
     ~step:(fun _ -> Ebr_s.retire h node) ());
  (let t = Hp_s.create cfg ~dummy ~free in
   let h = Hp_s.register t ~pid:0 in
   check_exact_zero "hp bag retire"
     ~warm:(fun _ -> Hp_s.retire h node)
     ~flush:(fun () -> Hp_s.flush h)
     ~prep:nothing
     ~step:(fun _ -> Hp_s.retire h node) ());
  (let t = Cadence_s.create cfg ~dummy ~free in
   let h = Cadence_s.register t ~pid:0 in
   check_exact_zero "cadence bag retire"
     ~warm:(fun _ -> Cadence_s.retire h node)
     ~flush:(fun () -> Cadence_s.flush h)
     ~prep:nothing
     ~step:(fun _ -> Cadence_s.retire h node) ());
  let t = Qsense_s.create cfg ~dummy ~free in
  let h = Qsense_s.register t ~pid:0 in
  check_exact_zero "qsense bag retire"
    ~warm:(fun _ -> Qsense_s.retire h node)
    ~flush:(fun () -> Qsense_s.flush h)
    ~prep:nothing
    ~step:(fun _ -> Qsense_s.retire h node) ()

(* The filtering scan paths — the HP scan and QSense's fallback scan,
   where hazard-protected survivors must be carried across each scan —
   with scans actually firing inside the measured window (every 256th
   retire). Covers both representations: bags (survivor compaction into
   recycled blocks) and the vec reference (the preallocated-closure
   [filter_in_place] path the bags replaced). *)
let scan_cfg ~bags =
  { (base_cfg ~bags) with
    Qs_smr.Smr_intf.scan_threshold = 256;
    rooster_interval = 0 (* age check passes immediately: T + eps = 0 *) }

let test_hp_scan_exact_zero () =
  let dummy = { fid = -1; freed = 0 } in
  let free n = n.freed <- n.freed + 1 in
  let pool = Array.init 512 (fun i -> { fid = i; freed = 0 }) in
  List.iter
    (fun bags ->
      let label = if bags then "bags" else "vec" in
      let t = Hp_s.create (scan_cfg ~bags) ~dummy ~free in
      let h = Hp_s.register t ~pid:0 in
      let protected_ = Array.init 2 (fun i -> { fid = 1_000 + i; freed = 0 }) in
      let seed_protected () =
        Array.iteri
          (fun slot n ->
            Hp_s.assign_hp h ~slot n;
            Hp_s.retire h n)
          protected_
      in
      check_exact_zero
        (Printf.sprintf "hp scan (%s)" label)
        ~rewarm:true
        ~warm:(fun i -> Hp_s.retire h pool.(i mod 512))
        ~flush:(fun () -> Hp_s.flush h)
        ~prep:seed_protected
        ~step:(fun i -> Hp_s.retire h pool.(i mod 512))
        ())
    [ true; false ]

let test_qsense_fallback_scan_exact_zero () =
  let dummy = { fid = -1; freed = 0 } in
  let free n = n.freed <- n.freed + 1 in
  let pool = Array.init 512 (fun i -> { fid = i; freed = 0 }) in
  List.iter
    (fun bags ->
      let label = if bags then "bags" else "vec" in
      (* a small switch threshold sends the scheme into fallback during
         warm-up; with nobody announcing quiescence it stays there, so the
         measured window exercises exactly the fallback filtering scan *)
      let cfg =
        { (scan_cfg ~bags) with Qs_smr.Smr_intf.switch_threshold = 64 }
      in
      let t = Qsense_s.create cfg ~dummy ~free in
      let h = Qsense_s.register t ~pid:0 in
      let protected_ = Array.init 2 (fun i -> { fid = 1_000 + i; freed = 0 }) in
      let seed_protected () =
        Array.iteri
          (fun slot n ->
            Qsense_s.assign_hp h ~slot n;
            Qsense_s.retire h n)
          protected_
      in
      check_exact_zero
        (Printf.sprintf "qsense fallback scan (%s)" label)
        ~rewarm:true
        ~warm:(fun i -> Qsense_s.retire h pool.(i mod 512))
        ~flush:(fun () -> Qsense_s.flush h)
        ~prep:seed_protected
        ~step:(fun i -> Qsense_s.retire h pool.(i mod 512))
        ())
    [ true; false ]

let suite =
  [ Alcotest.test_case "bag seal boundaries + partial final bag" `Quick
      test_plain_boundaries;
    Alcotest.test_case "capacity-1 bags seal on every push" `Quick
      test_capacity_one;
    Alcotest.test_case "plain scan compacts survivors, frees in bulk" `Quick
      test_plain_scan_compacts;
    Alcotest.test_case "timestamped walk stops at first young bag" `Quick
      test_ts_early_stop;
    Alcotest.test_case "splice moves a half-sealed deque intact" `Quick
      test_ts_splice_half_sealed;
    QCheck_alcotest.to_alcotest prop_plain_scan_matches_model;
    QCheck_alcotest.to_alcotest prop_ts_scan_matches_model;
    Alcotest.test_case "bag-vs-vec differential: qsbr/ebr/hp exact" `Quick
      test_differential_exact;
    Alcotest.test_case "bag-vs-vec differential: cadence/qsense" `Quick
      test_differential_timestamped;
    Alcotest.test_case "bag retire path allocates exactly zero" `Quick
      test_bag_retire_exact_zero;
    Alcotest.test_case "hp filtering scan allocates exactly zero" `Quick
      test_hp_scan_exact_zero;
    Alcotest.test_case "qsense fallback scan allocates exactly zero" `Quick
      test_qsense_fallback_scan_exact_zero
  ]
