(* The latency observatory (lib/obs/latency.ml, registry.ml + harness wiring):

   - bucket geometry: exact unit buckets below 32, [bucket_of] inverts
     [lower_edge], edges are strictly monotone, relative quantization
     error bounded by 1/32;
   - percentile extraction against a known distribution, with the p999
     upper bound clamped to the observed max;
   - merge is exact: per-shard recording then [merge_into] equals
     recording everything into one histogram (QCheck);
   - top-K outlier buffers retain exactly the K largest durations;
   - overhead discipline: [record], [observe] and the registry's
     sharded observe allocate zero minor words per op (the CI pin);
   - registry: idempotent named lookup, cross-domain shard merging,
     Prometheus text and JSON exports that parse back;
   - spike attribution on a synthetic timeline: every cause matched by
     its span/instant semantics, priority order, threshold filtering;
   - harness neutrality: a seeded simulator run produces a byte-equal
     trace and identical op counts with the recorder on or off
     (recording reads meta-level clocks, never performs effects);
   - registry-in-pool differential: a pooled explorer run with worker
     domains observing into a shared registry histogram yields
     bit-identical verdicts, and the merged shards equal the solo run's
     histogram (QCheck). *)

module RI = Qs_intf.Runtime_intf
module Latency = Qs_obs.Latency
module Registry = Qs_obs.Registry
module Tracer = Qs_obs.Tracer
module Metrics = Qs_obs.Metrics
module Export = Qs_obs.Export
module Json = Qs_util.Json
open Qs_harness

let check = Alcotest.check
let checkb msg = check Alcotest.bool msg
let checki msg = check Alcotest.int msg

(* --- bucket geometry ------------------------------------------------------ *)

let test_bucket_geometry () =
  for v = 0 to 31 do
    checki "unit buckets below 32" v (Latency.bucket_of v)
  done;
  checki "negative clamps to 0" 0 (Latency.bucket_of (-5));
  checki "huge clamps to last" (Latency.n_buckets - 1)
    (Latency.bucket_of max_int);
  (* bucket_of inverts lower_edge, and edges are strictly monotone. *)
  for i = 0 to Latency.n_buckets - 1 do
    checki "bucket_of (lower_edge i) = i" i
      (Latency.bucket_of (Latency.lower_edge i));
    if i > 0 then
      checkb "edges strictly monotone" true
        (Latency.lower_edge i > Latency.lower_edge (i - 1))
  done;
  (* Relative width of any bucket is <= 1/32 of its lower edge (for
     values past the unit range) — the HDR quantization-error bound. *)
  for i = 33 to Latency.n_buckets - 2 do
    let lo = Latency.lower_edge i and hi = Latency.lower_edge (i + 1) in
    checkb "bucket width <= lo/32" true (hi - lo <= max 1 (lo / 32))
  done

let test_percentiles () =
  let t = Latency.create () in
  (* 999 ops at 10 ticks, one at 100_000: p50/p99 stay at the mode's
     bucket, p999 must reach the spike bucket's bound, clamped to max. *)
  for _ = 1 to 999 do
    Latency.record t 10
  done;
  Latency.record t 100_000;
  checki "count" 1000 (Latency.count t);
  checki "max" 100_000 (Latency.max_value t);
  checki "sum" (9_990 + 100_000) (Latency.sum t);
  checki "p50 exact in unit range" 10 (Latency.percentile t 50.);
  checki "p99 exact in unit range" 10 (Latency.percentile t 99.);
  checki "p999 clamps to max" 100_000 (Latency.percentile t 99.9);
  checkb "p999 bucket holds the spike" true
    (Latency.lower_edge (Latency.percentile_bucket t 99.9) <= 100_000);
  checki "empty percentile is 0" 0 (Latency.percentile (Latency.create ()) 99.);
  checkb "out-of-range p raises" true
    (try
       ignore (Latency.percentile t 101.);
       false
     with Invalid_argument _ -> true)

let test_merge_equals_whole =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"sharded merge equals one histogram" ~count:50
       QCheck.(
         pair (int_bound 3 |> map (fun s -> s + 2))
           (list_of_size Gen.(int_range 1 200) (int_bound 2_000_000)))
       (fun (shards, samples) ->
         let whole = Latency.create () in
         let parts = Array.init shards (fun _ -> Latency.create ()) in
         List.iteri
           (fun i v ->
             Latency.record whole v;
             Latency.record parts.(i mod shards) v)
           samples;
         let dst = Latency.create () in
         Array.iter (fun p -> Latency.merge_into ~dst p) parts;
         Latency.bucket_counts dst = Latency.bucket_counts whole
         && Latency.count dst = Latency.count whole
         && Latency.sum dst = Latency.sum whole
         && Latency.max_value dst = Latency.max_value whole))

let test_top_k_outliers () =
  let r = Latency.recorder ~n_processes:2 ~n_kinds:3 ~top_k:4 () in
  (* pid 0: durations 1..10 — only the top 4 survive. *)
  for d = 1 to 10 do
    Latency.observe r ~pid:0 ~kind:(d mod 3) ~start:(100 * d) ~dur:d
  done;
  Latency.observe r ~pid:1 ~kind:0 ~start:5 ~dur:50;
  let os = Latency.outliers r in
  checki "K + 1 retained" 5 (List.length os);
  (match os with
  | o :: _ ->
    checki "slowest first" 50 o.Latency.o_dur;
    checki "from pid 1" 1 o.Latency.o_pid
  | [] -> Alcotest.fail "no outliers");
  let pid0 = List.filter (fun o -> o.Latency.o_pid = 0) os in
  check
    Alcotest.(list int)
    "pid 0 keeps its top 4 durations" [ 10; 9; 8; 7 ]
    (List.map (fun o -> o.Latency.o_dur) pid0);
  List.iter
    (fun o ->
      checki "start preserved" (100 * o.Latency.o_dur) o.Latency.o_start;
      checki "kind preserved" (o.Latency.o_dur mod 3) o.Latency.o_kind)
    pid0;
  checki "histograms saw everything" 11 (Latency.count (Latency.merged r));
  checkb "per-kind merge partitions the total" true
    (List.init 3 (fun k -> Latency.count (Latency.merged_kind r ~kind:k))
     |> List.fold_left ( + ) 0 = 11)

(* --- overhead discipline -------------------------------------------------- *)

let words_per_call ~warmup ~n f =
  for i = 1 to warmup do
    f i
  done;
  let w0 = Gc.minor_words () in
  for i = 1 to n do
    f i
  done;
  let w1 = Gc.minor_words () in
  (w1 -. w0) /. float_of_int n

let test_record_allocation_free () =
  let t = Latency.create () in
  check (Alcotest.float 1e-3) "record: 0 words" 0.
    (words_per_call ~warmup:64 ~n:50_000 (fun i -> Latency.record t (i * 7)));
  let r = Latency.recorder ~n_processes:2 ~n_kinds:3 () in
  check (Alcotest.float 1e-3) "observe: 0 words" 0.
    (words_per_call ~warmup:64 ~n:50_000 (fun i ->
         Latency.observe r ~pid:(i land 1) ~kind:(i mod 3) ~start:i
           ~dur:(i land 1023)));
  let reg = Registry.create () in
  let h = Registry.histogram reg "pin" in
  check (Alcotest.float 1e-3) "registry observe: 0 words" 0.
    (words_per_call ~warmup:64 ~n:50_000 (fun i ->
         Registry.observe h (i land 4095)))

(* --- registry ------------------------------------------------------------- *)

let test_registry_scalars_and_idempotence () =
  let reg = Registry.create () in
  let c = Registry.counter reg "ops" in
  Registry.incr c;
  Registry.add c 41;
  checki "counter accumulates" 42 (Registry.counter_value c);
  checkb "counter lookup idempotent" true (Registry.counter reg "ops" == c);
  let g = Registry.gauge reg "depth" in
  Registry.set_gauge g 7;
  checki "gauge holds last set" 7 (Registry.gauge_value g);
  let h = Registry.histogram reg "lat" in
  checkb "histogram lookup idempotent" true (Registry.histogram reg "lat" == h);
  Registry.observe h 100;
  checki "observed" 1 (Latency.count (Registry.merged h));
  Registry.reset reg;
  checki "reset zeroes counters" 0 (Registry.counter_value c);
  checki "reset zeroes gauges" 0 (Registry.gauge_value g);
  checki "reset zeroes shards" 0 (Latency.count (Registry.merged h))

let test_registry_cross_domain_merge () =
  let reg = Registry.create () in
  let h = Registry.histogram reg "xdomain" in
  let per_domain = 10_000 in
  let worker seed () =
    for i = 1 to per_domain do
      Registry.observe h ((i * seed) land 8191)
    done
  in
  let d1 = Domain.spawn (worker 3) and d2 = Domain.spawn (worker 5) in
  worker 7 ();
  Domain.join d1;
  Domain.join d2;
  let m = Registry.merged h in
  checki "all three domains' shards merged" (3 * per_domain) (Latency.count m)

let test_registry_exports () =
  let reg = Registry.create () in
  let c = Registry.counter reg "frees_total" in
  Registry.add c 12;
  let g = Registry.gauge reg "limbo_depth" in
  Registry.set_gauge g 3;
  let h = Registry.histogram reg "op_ticks" in
  List.iter (Registry.observe h) [ 1; 1; 2; 40; 4_000 ];
  let text = Registry.to_prometheus reg in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      checkb (Printf.sprintf "prometheus has %S" needle) true
        (contains text needle))
    [
      "# TYPE frees_total counter";
      "frees_total 12";
      "# TYPE limbo_depth gauge";
      "limbo_depth 3";
      "# TYPE op_ticks histogram";
      "op_ticks_bucket{le=\"+Inf\"} 5";
      "op_ticks_sum 4044";
      "op_ticks_count 5";
    ];
  (* cumulative bucket counts are non-decreasing and end at the total *)
  let cum =
    String.split_on_char '\n' text
    |> List.filter_map (fun l ->
           if
             String.length l > 15
             && String.sub l 0 15 = "op_ticks_bucket"
           then
             String.rindex_opt l ' '
             |> Option.map (fun i ->
                    int_of_string
                      (String.sub l (i + 1) (String.length l - i - 1)))
           else None)
  in
  checkb "cumulative non-decreasing" true (List.sort compare cum = cum);
  checki "last cumulative is the count" 5 (List.nth cum (List.length cum - 1));
  let j = Registry.to_json reg in
  let reparsed = Json.parse_exn (Json.to_string j) in
  (match Json.member "histograms" reparsed with
  | Some hs ->
    (match Json.member "op_ticks" hs with
    | Some ht ->
      checkb "json count" true (Json.member "count" ht = Some (Json.Num 5.));
      checkb "json p50" true (Json.member "p50" ht = Some (Json.Num 2.));
      checkb "json max" true (Json.member "max" ht = Some (Json.Num 4000.))
    | None -> Alcotest.fail "op_ticks missing from JSON")
  | None -> Alcotest.fail "histograms missing from JSON");
  match Json.member "counters" reparsed with
  | Some cs ->
    checkb "json counter" true
      (Json.member "frees_total" cs = Some (Json.Num 12.))
  | None -> Alcotest.fail "counters missing from JSON"

(* --- spike attribution ---------------------------------------------------- *)

let synthetic_timeline () =
  let t = Tracer.create ~n_processes:4 ~capacity:64 () in
  let r = Tracer.record t in
  (* global fallback episode [100, 200], entered by pid 1, exited by 2 *)
  r ~pid:1 ~time:100 ~ev:RI.Ev_fallback_enter ~a:5 ~b:(-1);
  r ~pid:2 ~time:200 ~ev:RI.Ev_fallback_exit ~a:100 ~b:(-1);
  (* scan on pid 0 over [300, 350] *)
  r ~pid:0 ~time:300 ~ev:RI.Ev_scan_begin ~a:10 ~b:(-1);
  r ~pid:0 ~time:350 ~ev:RI.Ev_scan_end ~a:3 ~b:7;
  (* adopting quiesce on pid 2 at 400; non-adopting on pid 3 at 410 *)
  r ~pid:2 ~time:400 ~ev:RI.Ev_quiesce ~a:7 ~b:1;
  r ~pid:3 ~time:410 ~ev:RI.Ev_quiesce ~a:7 ~b:0;
  (* churn: pid 3 departs at 500 *)
  r ~pid:3 ~time:500 ~ev:RI.Ev_unregister ~a:1 ~b:4;
  (* bag seal on pid 0 at 600 *)
  r ~pid:0 ~time:600 ~ev:RI.Ev_bag_seal ~a:64 ~b:(-1);
  (* neutralization: rooster (pid 0 here) poisons victim pid 3 at 700 *)
  r ~pid:0 ~time:700 ~ev:RI.Ev_neutralize ~a:3 ~b:2;
  Tracer.to_array t

let mk_outlier ~pid ~start ~dur =
  { Latency.o_pid = pid; o_kind = 0; o_start = start; o_dur = dur }

let test_attribution_semantics () =
  let es = synthetic_timeline () in
  let classify o =
    let a = Metrics.attribute_spikes es ~outliers:[ o ] ~threshold:1 in
    match List.filter (fun (_, n) -> n > 0) a.Metrics.attr_counts with
    | [ (c, 1) ] -> c
    | _ -> Alcotest.fail "expected exactly one attributed spike"
  in
  checkb "fallback span is global (any pid)" true
    (classify (mk_outlier ~pid:3 ~start:150 ~dur:30) = Metrics.Fallback);
  checkb "scan span matches its own pid" true
    (classify (mk_outlier ~pid:0 ~start:340 ~dur:20) = Metrics.Scan);
  checkb "scan on another pid does not attribute" true
    (classify (mk_outlier ~pid:1 ~start:340 ~dur:20) = Metrics.Unattributed);
  checkb "adopting quiesce attributes epoch" true
    (classify (mk_outlier ~pid:2 ~start:390 ~dur:20) = Metrics.Epoch);
  checkb "non-adopting quiesce does not" true
    (classify (mk_outlier ~pid:3 ~start:405 ~dur:4) = Metrics.Unattributed);
  checkb "unregister attributes churn" true
    (classify (mk_outlier ~pid:3 ~start:490 ~dur:20) = Metrics.Churn);
  checkb "bag seal attributes" true
    (classify (mk_outlier ~pid:0 ~start:590 ~dur:20) = Metrics.Bag_seal);
  checkb "neutralize matches the victim pid" true
    (classify (mk_outlier ~pid:3 ~start:690 ~dur:20) = Metrics.Neutralize);
  checkb "neutralize does not match the emitter" true
    (classify (mk_outlier ~pid:0 ~start:690 ~dur:20) = Metrics.Unattributed);
  (* Priority: a window covering both the fallback episode and the scan
     is charged to fallback (the dwell subsumes the scans it runs). *)
  checkb "fallback wins over scan" true
    (classify (mk_outlier ~pid:0 ~start:150 ~dur:250) = Metrics.Fallback)

let test_attribution_threshold_and_pct () =
  let es = synthetic_timeline () in
  let outliers =
    [
      mk_outlier ~pid:0 ~start:150 ~dur:30;
      (* fallback *)
      mk_outlier ~pid:0 ~start:340 ~dur:20;
      (* scan, below threshold *)
      mk_outlier ~pid:1 ~start:1_000 ~dur:40;
      (* unattributed *)
    ]
  in
  let a = Metrics.attribute_spikes es ~outliers ~threshold:25 in
  checki "threshold filters the scan outlier" 2 a.Metrics.attr_total;
  checki "fallback counted" 1 (List.assoc Metrics.Fallback a.Metrics.attr_counts);
  checki "scan filtered out" 0 (List.assoc Metrics.Scan a.Metrics.attr_counts);
  checki "unattributed counted" 1
    (List.assoc Metrics.Unattributed a.Metrics.attr_counts);
  check (Alcotest.float 1e-6) "50% attributed" 50. (Metrics.attributed_pct a);
  let empty = Metrics.attribute_spikes es ~outliers:[] ~threshold:1 in
  check (Alcotest.float 1e-6) "no spikes: 0%" 0. (Metrics.attributed_pct empty)

(* --- harness wiring ------------------------------------------------------- *)

let sim_setup ?latency ?(duration = 150_000) ~sink () =
  {
    (Sim_exp.default_setup ~ds:Cset.List ~scheme:Qs_smr.Scheme.Cadence
       ~n_processes:4
       ~workload:(Qs_workload.Spec.make ~key_range:64 ~update_pct:50))
    with
    duration;
    seed = 23;
    latency;
    sink;
  }

let test_sim_recording_schedule_neutral () =
  (* The recorder must be invisible to the seeded schedule: byte-equal
     traces and identical op counts with it on or off — recording reads
     [Scheduler.clock_of], never performs a [now] effect. *)
  let run latency =
    let tracer = Tracer.create ~n_processes:4 ~capacity:(1 lsl 14) () in
    let r = Sim_exp.run (sim_setup ?latency ~sink:(Some (Tracer.sink tracer)) ()) in
    (r, Export.csv tracer)
  in
  let r_off, trace_off = run None in
  let rec_ = Latency.recorder ~n_processes:4 ~n_kinds:Qs_workload.Spec.n_kinds () in
  let r_on, trace_on = run (Some rec_) in
  checkb "byte-equal traces" true (String.equal trace_off trace_on);
  checki "identical ops" r_off.Sim_exp.ops_total r_on.Sim_exp.ops_total;
  check
    Alcotest.(array int)
    "identical per-worker ops" r_off.Sim_exp.per_worker_ops
    r_on.Sim_exp.per_worker_ops;
  checki "one sample per completed op" r_on.Sim_exp.ops_total
    (Latency.count (Latency.merged rec_));
  checkb "durations are positive virtual time" true
    (Latency.percentile (Latency.merged rec_) 50. > 0)

let test_sim_generator_replay () =
  (* The same pre-generated stream under two different schemes must
     replay the same logical op sequence: with a key_range this small,
     final sizes and per-kind sample counts agree exactly. *)
  let gen =
    Qs_workload.Generator.make
      (Qs_workload.Spec.make ~key_range:64 ~update_pct:50)
      ~n_processes:4 ~ops_per_process:2_000 ~seed:99
  in
  let run scheme =
    let rec_ =
      Latency.recorder ~n_processes:4 ~n_kinds:Qs_workload.Spec.n_kinds ()
    in
    let setup =
      {
        (sim_setup ~latency:rec_ ~sink:None ()) with
        Sim_exp.scheme;
        generator = Some gen;
      }
    in
    let r = Sim_exp.run setup in
    (r, rec_)
  in
  let r1, rec1 = run Qs_smr.Scheme.Cadence in
  let r2, rec2 = run Qs_smr.Scheme.Qsbr in
  checki "both sound" 0 (r1.Sim_exp.violations + r2.Sim_exp.violations);
  let n_common = min r1.Sim_exp.ops_total r2.Sim_exp.ops_total in
  checkb "runs did work" true (n_common > 0);
  (* Cyclic accessor: index past the stream end wraps deterministically. *)
  let len = Qs_workload.Generator.length gen in
  checkb "op stream cycles" true
    (Qs_workload.Generator.op gen ~pid:1 ~i:0
    = Qs_workload.Generator.op gen ~pid:1 ~i:len);
  (* Same per-kind distribution shape: every kind sampled under both. *)
  List.iter
    (fun k ->
      let c1 = Latency.count (Latency.merged_kind rec1 ~kind:k)
      and c2 = Latency.count (Latency.merged_kind rec2 ~kind:k) in
      checkb
        (Printf.sprintf "kind %s sampled in both runs"
           (Qs_workload.Spec.kind_name k))
        true
        (c1 > 0 && c2 > 0))
    [ 0; 1; 2 ]

let test_sim_stall_attribution () =
  (* The acceptance scenario in miniature: a stalled process under
     QSense C=48 forces fallback; the p999-bucket outliers must be
     dominated by attributed causes. *)
  let tracer = Tracer.create ~n_processes:4 ~capacity:(1 lsl 15) () in
  let rec_ =
    Latency.recorder ~n_processes:4 ~n_kinds:Qs_workload.Spec.n_kinds ()
  in
  let setup =
    {
      (Sim_exp.default_setup ~ds:Cset.List ~scheme:Qs_smr.Scheme.Qsense
         ~n_processes:4
         ~workload:(Qs_workload.Spec.make ~key_range:32 ~update_pct:50))
      with
      duration = 600_000;
      seed = 23;
      latency = Some rec_;
      (* the paper's robustness scenario: the victim never resumes, so
         QSense sits in fallback from ~150k ticks to the end and the
         tail of the latency distribution is fallback dwell *)
      faults = [ Qs_sim.Scheduler.Stall_at { pid = 3; at = 20_000; ticks = 600_000 } ];
      smr_tweak =
        (fun c -> { c with Qs_smr.Smr_intf.switch_threshold = 48 });
      sink = Some (Tracer.sink tracer);
    }
  in
  let r = Sim_exp.run setup in
  checki "sound" 0 r.Sim_exp.violations;
  let es = Tracer.to_array tracer in
  checkb "stall forced fallback" true
    (Metrics.fallback_episodes es <> []);
  let merged = Latency.merged rec_ in
  let threshold =
    Latency.lower_edge (Latency.percentile_bucket merged 99.9)
  in
  let a =
    Metrics.attribute_spikes es ~outliers:(Latency.outliers rec_) ~threshold
  in
  checkb "p999 spikes observed" true (a.Metrics.attr_total > 0);
  checkb
    (Printf.sprintf "≥80%% of p999 spikes attributed (got %.0f%%)"
       (Metrics.attributed_pct a))
    true
    (Metrics.attributed_pct a >= 80.)

(* --- registry-in-pool differential (satellite) ---------------------------- *)

let test_pool_registry_differential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"pooled run with registry: verdicts + merge equal solo"
       ~count:3
       QCheck.(int_bound 1_000)
       (fun base ->
         let batch =
           [|
             Explorer.default_case ~ds:Cset.List ~scheme:Qs_smr.Scheme.Hp
               ~seed:(base + 1);
             Explorer.default_case ~ds:Cset.List ~scheme:Qs_smr.Scheme.Cadence
               ~seed:(base + 2);
             Explorer.default_case ~ds:Cset.Hashtable
               ~scheme:Qs_smr.Scheme.Qsense ~seed:(base + 3);
           |]
         in
         let solo = Array.map Explorer.run_one batch in
         let solo_h = Latency.create () in
         Array.iter (fun (o : Explorer.outcome) -> Latency.record solo_h o.ops) solo;
         let reg = Registry.create () in
         let h = Registry.histogram reg "pool_ops" in
         let pooled =
           Explorer_pool.map ~jobs:3
             (fun c ->
               let o = Explorer.run_one c in
               (* observed from the worker domain: lands in its shard *)
               Registry.observe h o.Explorer.ops;
               o)
             batch
         in
         Array.iteri
           (fun i o' ->
             match o' with
             | None -> QCheck.Test.fail_reportf "case %d skipped" i
             | Some (o' : Explorer.outcome) ->
               if
                 not
                   (Explorer.same_class solo.(i).Explorer.verdict
                      o'.Explorer.verdict)
                 || solo.(i).Explorer.ops <> o'.Explorer.ops
                 || solo.(i).Explorer.steps <> o'.Explorer.steps
               then
                 QCheck.Test.fail_reportf
                   "case %d diverged under the registry" i)
           pooled;
         let m = Registry.merged h in
         Latency.bucket_counts m = Latency.bucket_counts solo_h
         && Latency.count m = Latency.count solo_h
         && Latency.sum m = Latency.sum solo_h))

let suite =
  [ Alcotest.test_case "bucket geometry" `Quick test_bucket_geometry;
    Alcotest.test_case "percentile extraction" `Quick test_percentiles;
    test_merge_equals_whole;
    Alcotest.test_case "top-K outlier buffers" `Quick test_top_k_outliers;
    Alcotest.test_case "recording is allocation-free" `Quick
      test_record_allocation_free;
    Alcotest.test_case "registry scalars + idempotence" `Quick
      test_registry_scalars_and_idempotence;
    Alcotest.test_case "registry cross-domain merge" `Quick
      test_registry_cross_domain_merge;
    Alcotest.test_case "registry exports round-trip" `Quick
      test_registry_exports;
    Alcotest.test_case "attribution semantics" `Quick
      test_attribution_semantics;
    Alcotest.test_case "attribution threshold + pct" `Quick
      test_attribution_threshold_and_pct;
    Alcotest.test_case "sim recording is schedule-neutral" `Slow
      test_sim_recording_schedule_neutral;
    Alcotest.test_case "generator replay across schemes" `Slow
      test_sim_generator_replay;
    Alcotest.test_case "stall spikes attribute >= 80%" `Slow
      test_sim_stall_attribution;
    test_pool_registry_differential
  ]
