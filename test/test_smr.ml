(* Unit tests of the reclamation schemes themselves, driven directly
   (no data structure): protection semantics, epoch turnover, deferred
   reclamation aging, the QSense mode switch, and the eviction extension. *)

open Qs_sim
module R = Sim_runtime

type fake = { id : int; mutable freed : int }

module N = struct
  type t = fake

  let id n = n.id
end

module Hp = Qs_smr.Hazard_pointers.Make (R) (N)
module Qsbr = Qs_smr.Qsbr.Make (R) (N)
module Cadence = Qs_smr.Cadence.Make (R) (N)
module Qsense = Qs_smr.Qsense.Make (R) (N)
module Ebr = Qs_smr.Ebr.Make (R) (N)

let dummy = { id = -1; freed = 0 }
let mk id = { id; freed = 0 }

let cfg ?(n = 2) ?(k = 2) ?(q = 4) ?(r = 4) ?(t = 1_000) ?(eps = 100) ?(c = 0)
    ?eviction ?(bags = true) ?(bag_cap = 64) () =
  { Qs_smr.Smr_intf.n_processes = n;
    hp_per_process = k;
    quiescence_threshold = q;
    scan_threshold = r;
    (* These unit tests pin exact scan timing (e.g. "retire #r scans and
       frees"), so adaptive scan scheduling is disabled. The default bag
       capacity (64) exceeds every limbo depth these tests reach, so the
       open-block per-node filter keeps timing identical to the vec path. *)
    scan_factor = 0.;
    rooster_interval = t;
    epsilon = eps;
    switch_threshold = c;
    removes_per_op_max = 1;
    eviction_timeout = eviction;
    limbo_bags = bags;
    bag_capacity = bag_cap }

let sched ?(n_cores = 2) ?(seed = 3) ?(rooster = Some 1_000) () =
  Scheduler.create
    { (Scheduler.default_config ~n_cores ~seed) with rooster_interval = rooster }

let track_frees freed_log n =
  n.freed <- n.freed + 1;
  freed_log := n.id :: !freed_log

(* --- hazard pointers ---------------------------------------------------- *)

let test_hp_protection () =
  let s = sched () in
  let freed = ref [] in
  let t = Hp.create (cfg ~r:2 ()) ~dummy ~free:(track_frees freed) in
  let h0 = Hp.register t ~pid:0 in
  let h1 = Hp.register t ~pid:1 in
  Scheduler.exec s ~pid:1 (fun () ->
      (* process 1 protects node 1 with a fenced hazard pointer *)
      Hp.assign_hp h1 ~slot:0 (mk 99) |> ignore);
  let protected_node = mk 1 in
  Scheduler.exec s ~pid:1 (fun () -> Hp.assign_hp h1 ~slot:0 protected_node);
  Scheduler.exec s ~pid:0 (fun () ->
      Hp.retire h0 protected_node;
      Hp.retire h0 (mk 2);
      Hp.retire h0 (mk 3));
  (* scans ran (threshold 2); node 1 must have survived *)
  Alcotest.(check bool) "unprotected freed" true (List.mem 2 !freed);
  Alcotest.(check bool) "protected kept" true (not (List.mem 1 !freed));
  Alcotest.(check int) "retired_count" 1 (Hp.retired_count t);
  (* Release protection; next scan frees it. Clearing is an unfenced store
     (staleness only delays reclamation), so fence to make it visible. *)
  Scheduler.exec s ~pid:1 (fun () ->
      Hp.clear_hps h1;
      R.fence ());
  Scheduler.exec s ~pid:0 (fun () ->
      Hp.retire h0 (mk 4);
      Hp.retire h0 (mk 5));
  Alcotest.(check bool) "freed after release" true (List.mem 1 !freed)

let test_hp_flush () =
  let s = sched () in
  let freed = ref [] in
  let t = Hp.create (cfg ~r:100 ()) ~dummy ~free:(track_frees freed) in
  let h0 = Hp.register t ~pid:0 in
  Scheduler.exec s ~pid:0 (fun () ->
      Hp.retire h0 (mk 1);
      Hp.retire h0 (mk 2);
      Hp.flush h0);
  Alcotest.(check int) "flush frees everything" 2 (List.length !freed);
  Alcotest.(check int) "nothing retired" 0 (Hp.retired_count t)

(* --- Algorithm 2, re-enacted deterministically --------------------------- *)

module Unsafe = Qs_smr.Unsafe_hp.Make (R) (N)

(* The paper's Algorithm 2: reader PR publishes a hazard pointer to n and
   re-validates, but without a fence the publication sits in PR's store
   buffer; deleter PD retires n and scans, misses the invisible hazard
   pointer, and frees n while PR is about to use it. *)
let test_algorithm2_unfenced () =
  let s =
    Scheduler.create
      { (Scheduler.default_config ~n_cores:2 ~seed:1) with
        rooster_interval = None (* no roosters: nothing flushes PR's buffer *) }
  in
  let freed = ref [] in
  let t = Unsafe.create (cfg ~r:1 ()) ~dummy ~free:(track_frees freed) in
  let pr = Unsafe.register t ~pid:0 in
  let pd = Unsafe.register t ~pid:1 in
  let n = mk 1 in
  let used_after_free = ref false in
  (* PR: R1 read pointer; R2 assign HP (store, buffered); R4 recheck; R5 use *)
  Scheduler.spawn s ~pid:0 (fun () ->
      Unsafe.assign_hp pr ~slot:0 n;
      (* R4: the recheck "succeeds" — n is still valid at this instant *)
      R.charge 1_000;
      R.yield () (* ...PR is preempted before R5; PD runs in the gap *);
      (* R5: use n *)
      if n.freed > 0 then used_after_free := true);
  (* PD: D1 remove n; D3 scan hazard pointers; D4 free n *)
  Scheduler.spawn s ~pid:1 (fun () ->
      R.charge 100;
      Unsafe.retire pd n (* scan_threshold = 1: retire scans and frees *));
  Scheduler.run_all s;
  Alcotest.(check bool) "PD freed n despite PR's hazard pointer" true
    (List.mem 1 !freed);
  Alcotest.(check bool) "PR used n after it was freed" true !used_after_free

(* Same interleaving with the fence: PR's hazard pointer is visible by the
   time PD scans, so n survives. *)
let test_algorithm2_fenced () =
  let s =
    Scheduler.create
      { (Scheduler.default_config ~n_cores:2 ~seed:1) with rooster_interval = None }
  in
  let freed = ref [] in
  let t = Hp.create (cfg ~r:1 ()) ~dummy ~free:(track_frees freed) in
  let pr = Hp.register t ~pid:0 in
  let pd = Hp.register t ~pid:1 in
  let n = mk 1 in
  Scheduler.spawn s ~pid:0 (fun () ->
      Hp.assign_hp pr ~slot:0 n (* includes the fence *);
      R.charge 1_000;
      R.yield ();
      assert (n.freed = 0));
  Scheduler.spawn s ~pid:1 (fun () ->
      R.charge 100;
      Hp.retire pd n);
  Scheduler.run_all s;
  Alcotest.(check (list (pair int reject))) "no failures" [] (Scheduler.failures s);
  Alcotest.(check bool) "n survived the scan" true (not (List.mem 1 !freed))

(* --- QSBR ---------------------------------------------------------------- *)

let test_qsbr_grace_period () =
  let s = sched () in
  let freed = ref [] in
  let t = Qsbr.create (cfg ~q:1 ()) ~dummy ~free:(track_frees freed) in
  let h0 = Qsbr.register t ~pid:0 in
  let h1 = Qsbr.register t ~pid:1 in
  Scheduler.exec s ~pid:0 (fun () -> Qsbr.retire h0 (mk 1));
  (* both processes must pass quiescent states before node 1 is freed *)
  let turn () =
    Scheduler.exec s ~pid:0 (fun () -> Qsbr.manage_state h0);
    Scheduler.exec s ~pid:1 (fun () -> Qsbr.manage_state h1)
  in
  turn ();
  Alcotest.(check (list int)) "not freed after one pass" [] !freed;
  (* a few more full turns let the epoch cycle back around *)
  turn ();
  turn ();
  turn ();
  turn ();
  Alcotest.(check (list int)) "freed after grace periods" [ 1 ] !freed

let test_qsbr_blocks_on_delay () =
  let s = sched () in
  let freed = ref [] in
  let t = Qsbr.create (cfg ~q:1 ()) ~dummy ~free:(track_frees freed) in
  let h0 = Qsbr.register t ~pid:0 in
  let _h1 = Qsbr.register t ~pid:1 in
  (* process 1 never declares quiescence: nothing is ever freed *)
  Scheduler.exec s ~pid:0 (fun () ->
      for i = 1 to 50 do
        Qsbr.retire h0 (mk i);
        Qsbr.manage_state h0
      done);
  Alcotest.(check (list int)) "blocked forever" [] !freed;
  Alcotest.(check int) "all retired" 50 (Qsbr.retired_count t)

(* --- EBR ------------------------------------------------------------------ *)

(* A process that is idle BETWEEN operations does not block EBR (its slot is
   unpinned) — unlike QSBR, where the same process blocks everything. *)
let test_ebr_tolerates_idle_process () =
  let s = sched () in
  let freed = ref [] in
  let t = Ebr.create (cfg ~q:1 ()) ~dummy ~free:(track_frees freed) in
  let h0 = Ebr.register t ~pid:0 in
  let _h1 = Ebr.register t ~pid:1 (* registered, never runs an op *) in
  Scheduler.exec s ~pid:0 (fun () ->
      for i = 1 to 50 do
        Ebr.manage_state h0;
        Ebr.retire h0 (mk i);
        Ebr.clear_hps h0
      done);
  Alcotest.(check bool) "reclaims despite idle process" true
    (List.length !freed > 30)

(* A process stalled INSIDE an operation (pinned) still blocks EBR — the
   residual weakness QSense's fallback path removes. *)
let test_ebr_blocks_mid_operation () =
  let s = sched () in
  let freed = ref [] in
  let t = Ebr.create (cfg ~q:1 ()) ~dummy ~free:(track_frees freed) in
  let h0 = Ebr.register t ~pid:0 in
  let h1 = Ebr.register t ~pid:1 in
  (* p1 enters an operation and stalls there *)
  Scheduler.exec s ~pid:1 (fun () -> Ebr.manage_state h1);
  Scheduler.exec s ~pid:0 (fun () ->
      for i = 1 to 50 do
        Ebr.manage_state h0;
        Ebr.retire h0 (mk i);
        Ebr.clear_hps h0
      done);
  let blocked_frees = List.length !freed in
  Alcotest.(check bool) "mostly blocked while p1 pinned" true (blocked_frees < 5);
  (* p1 finishes its operation; reclamation resumes *)
  Scheduler.exec s ~pid:1 (fun () -> Ebr.clear_hps h1);
  Scheduler.exec s ~pid:0 (fun () ->
      for i = 51 to 120 do
        Ebr.manage_state h0;
        Ebr.retire h0 (mk i);
        Ebr.clear_hps h0
      done);
  Alcotest.(check bool) "resumes after unpin" true
    (List.length !freed > blocked_frees + 30)

(* --- Cadence ------------------------------------------------------------- *)

let test_cadence_deferral () =
  let s = sched ~rooster:(Some 1_000) () in
  let freed = ref [] in
  let t = Cadence.create (cfg ~r:1 ~t:1_000 ~eps:100 ()) ~dummy ~free:(track_frees freed) in
  let h0 = Cadence.register t ~pid:0 in
  Scheduler.exec s ~pid:0 (fun () ->
      Cadence.retire h0 (mk 1);
      (* scans run on every retire, but node 1 is not old enough *)
      Cadence.retire h0 (mk 2);
      Alcotest.(check (list int)) "too young to free" [] !freed;
      (* age past T + epsilon *)
      Sim_runtime.charge 2_000;
      Cadence.retire h0 (mk 3);
      Alcotest.(check bool) "old nodes freed" true
        (List.mem 1 !freed && List.mem 2 !freed);
      Alcotest.(check bool) "young node kept" true (not (List.mem 3 !freed)))

let test_cadence_respects_hp () =
  let s = sched ~rooster:(Some 1_000) () in
  let freed = ref [] in
  let t = Cadence.create (cfg ~r:1 ~t:1_000 ~eps:100 ()) ~dummy ~free:(track_frees freed) in
  let h0 = Cadence.register t ~pid:0 in
  let h1 = Cadence.register t ~pid:1 in
  let n = mk 1 in
  (* process 1 protects n; its (unfenced) hazard pointer becomes visible
     once its rooster fires *)
  Scheduler.spawn s ~pid:1 (fun () ->
      Cadence.assign_hp h1 ~slot:0 n;
      Sim_runtime.charge 5_000);
  Scheduler.spawn s ~pid:0 (fun () ->
      Sim_runtime.charge 3_000;
      Cadence.retire h0 n;
      Sim_runtime.charge 3_000;
      Cadence.retire h0 (mk 2);
      Sim_runtime.charge 3_000;
      Cadence.retire h0 (mk 3));
  Scheduler.run_all s;
  Alcotest.(check bool) "protected node kept" true (not (List.mem 1 !freed));
  Alcotest.(check bool) "unprotected old node freed" true (List.mem 2 !freed)

(* --- QSense -------------------------------------------------------------- *)

let test_qsense_fallback_switch () =
  let s = sched ~rooster:(Some 1_000) () in
  let freed = ref [] in
  let t = Qsense.create (cfg ~q:2 ~r:2 ~c:5 ()) ~dummy ~free:(track_frees freed) in
  let h0 = Qsense.register t ~pid:0 in
  let _h1 = Qsense.register t ~pid:1 in
  (* process 1 is silent: quiescence is impossible; once process 0 has
     more than C=5 retired nodes it must switch to the fallback path *)
  Scheduler.exec s ~pid:0 (fun () ->
      for i = 1 to 20 do
        Qsense.retire h0 (mk i);
        Qsense.manage_state h0
      done;
      Alcotest.(check bool) "switched to fallback" true
        ((Qsense.stats t).mode = Qs_smr.Smr_intf.Fallback);
      Alcotest.(check bool) "switch counted" true
        ((Qsense.stats t).fallback_switches >= 1);
      (* in fallback mode, old unprotected nodes get freed despite the
         silent process *)
      Sim_runtime.charge 3_000;
      for i = 21 to 30 do
        Qsense.retire h0 (mk i)
      done;
      Alcotest.(check bool) "fallback reclaims" true (List.length !freed > 0))

let test_qsense_switch_back () =
  let s = sched ~rooster:(Some 1_000) () in
  let freed = ref [] in
  let t = Qsense.create (cfg ~q:2 ~r:2 ~c:5 ()) ~dummy ~free:(track_frees freed) in
  let h0 = Qsense.register t ~pid:0 in
  let h1 = Qsense.register t ~pid:1 in
  Scheduler.exec s ~pid:0 (fun () ->
      for i = 1 to 10 do
        Qsense.retire h0 (mk i);
        Qsense.manage_state h0
      done);
  Alcotest.(check bool) "in fallback" true
    ((Qsense.stats t).mode = Qs_smr.Smr_intf.Fallback);
  (* the delayed process comes back and both signal presence *)
  for _ = 1 to 8 do
    Scheduler.exec s ~pid:1 (fun () -> Qsense.manage_state h1);
    Scheduler.exec s ~pid:0 (fun () -> Qsense.manage_state h0)
  done;
  Alcotest.(check bool) "back on the fast path" true
    ((Qsense.stats t).mode = Qs_smr.Smr_intf.Fast);
  Alcotest.(check bool) "switch back counted" true
    ((Qsense.stats t).fastpath_switches >= 1)

let test_qsense_eviction () =
  let s = sched ~rooster:(Some 1_000) () in
  let freed = ref [] in
  let t =
    Qsense.create (cfg ~q:2 ~r:2 ~c:5 ~eviction:2_000 ())
      ~dummy ~free:(track_frees freed)
  in
  let h0 = Qsense.register t ~pid:0 in
  let _h1 = Qsense.register t ~pid:1 in
  (* process 1 is dead; base QSense would stay in fallback forever, the
     eviction extension returns to the fast path *)
  Scheduler.exec s ~pid:0 (fun () ->
      for i = 1 to 10 do
        Qsense.retire h0 (mk i);
        Qsense.manage_state h0
      done;
      Alcotest.(check bool) "fell back" true
        ((Qsense.stats t).mode = Qs_smr.Smr_intf.Fallback);
      Sim_runtime.charge 5_000;
      for i = 11 to 40 do
        Qsense.retire h0 (mk i);
        Qsense.manage_state h0
      done);
  let st = Qsense.stats t in
  Alcotest.(check bool) "dead process evicted" true (st.evictions >= 1);
  Alcotest.(check bool) "back on fast path despite dead process" true
    (st.mode = Qs_smr.Smr_intf.Fast)

let test_qsense_no_eviction_without_timeout () =
  let s = sched ~rooster:(Some 1_000) () in
  let t = Qsense.create (cfg ~q:2 ~r:2 ~c:5 ()) ~dummy ~free:(fun _ -> ()) in
  let h0 = Qsense.register t ~pid:0 in
  let _h1 = Qsense.register t ~pid:1 in
  Scheduler.exec s ~pid:0 (fun () ->
      for i = 1 to 10 do
        Qsense.retire h0 (mk i);
        Qsense.manage_state h0
      done;
      Sim_runtime.charge 50_000;
      for i = 11 to 60 do
        Qsense.retire h0 (mk i);
        Qsense.manage_state h0
      done);
  let st = Qsense.stats t in
  Alcotest.(check int) "no evictions" 0 st.evictions;
  Alcotest.(check bool) "stays in fallback forever (paper behaviour)" true
    (st.mode = Qs_smr.Smr_intf.Fallback)

(* --- config ------------------------------------------------------------- *)

let test_legal_threshold () =
  let c = Qs_smr.Smr_intf.legal_switch_threshold (cfg ~n:4 ~k:2 ~q:10 ~r:8 ~t:100 ()) in
  (* max (m*Q = 10) (N*K + T = 108) ((K+T+R)/2 = 55) + 1 *)
  Alcotest.(check int) "legal C" 109 c

let test_scheme_names () =
  List.iter
    (fun k ->
      match Qs_smr.Scheme.of_string (Qs_smr.Scheme.to_string k) with
      | Some k' when k' = k -> ()
      | _ -> Alcotest.fail "scheme name round-trip")
    Qs_smr.Scheme.all;
  Alcotest.(check (option reject)) "unknown scheme" None
    (Qs_smr.Scheme.of_string "bogus")

let test_scheme_predicates () =
  let open Qs_smr.Scheme in
  Alcotest.(check bool) "qsense robust" true (robust Qsense);
  Alcotest.(check bool) "qsbr not robust" false (robust Qsbr);
  Alcotest.(check bool) "cadence needs roosters" true (needs_roosters Cadence);
  Alcotest.(check bool) "hp needs no roosters" false (needs_roosters Hp)

let suite =
  [ Alcotest.test_case "hp protection" `Quick test_hp_protection;
    Alcotest.test_case "hp flush" `Quick test_hp_flush;
    Alcotest.test_case "Algorithm 2: unfenced HP loses the node" `Quick test_algorithm2_unfenced;
    Alcotest.test_case "Algorithm 2: the fence closes the race" `Quick test_algorithm2_fenced;
    Alcotest.test_case "qsbr grace period" `Quick test_qsbr_grace_period;
    Alcotest.test_case "qsbr blocks on delay" `Quick test_qsbr_blocks_on_delay;
    Alcotest.test_case "ebr tolerates idle process" `Quick test_ebr_tolerates_idle_process;
    Alcotest.test_case "ebr blocks mid-operation" `Quick test_ebr_blocks_mid_operation;
    Alcotest.test_case "cadence deferral" `Quick test_cadence_deferral;
    Alcotest.test_case "cadence respects hazard pointers" `Quick test_cadence_respects_hp;
    Alcotest.test_case "qsense fallback switch" `Quick test_qsense_fallback_switch;
    Alcotest.test_case "qsense switch back" `Quick test_qsense_switch_back;
    Alcotest.test_case "qsense eviction extension" `Quick test_qsense_eviction;
    Alcotest.test_case "qsense stays fallen back without eviction" `Quick
      test_qsense_no_eviction_without_timeout;
    Alcotest.test_case "legal switch threshold" `Quick test_legal_threshold;
    Alcotest.test_case "scheme name round-trip" `Quick test_scheme_names;
    Alcotest.test_case "scheme predicates" `Quick test_scheme_predicates
  ]
