(* The same battery for every set implementation (list, skip list, BST,
   hash table), instantiated through the harness's uniform Cset view:
   sequential semantics against a model set, concurrent stress with
   conservation/consistency/use-after-free/leak checks under each
   reclamation scheme. *)

open Qs_sim
module IS = Set.Make (Int)

let sched ?(n_cores = 4) ?(seed = 1) () =
  Scheduler.create
    { (Scheduler.default_config ~n_cores ~seed) with
      rooster_interval = Some 2_000;
      rooster_oversleep = 50 }

let set_cfg ?(scheme = Qs_smr.Scheme.Qsense) ?(n = 4) () =
  let base = Qs_ds.Set_intf.default_config ~n_processes:n ~scheme in
  { base with
    smr =
      { base.smr with
        quiescence_threshold = 16;
        scan_threshold = 16;
        rooster_interval = 2_000;
        epsilon = 300 } }

module Battery (C : sig
  include Qs_harness.Cset.S

  val validate : ctx -> unit
end) (Info : sig
  val name : string
  val range : int
end) =
struct
  let test_sequential () =
    let s = sched ~n_cores:1 () in
    let set = C.create (set_cfg ~n:1 ()) in
    let ctx = C.register set ~pid:0 in
    let prng = Qs_util.Prng.create ~seed:13 in
    Scheduler.exec s ~pid:0 (fun () ->
        let model = ref IS.empty in
        for _ = 1 to 2_000 do
          let key = Qs_util.Prng.int prng Info.range in
          match Qs_util.Prng.int prng 3 with
          | 0 ->
            let expected = not (IS.mem key !model) in
            if C.insert ctx key then model := IS.add key !model else ();
            if C.insert ctx key = true then
              Alcotest.failf "double insert of %d succeeded" key;
            if expected && not (IS.mem key !model) then
              Alcotest.failf "insert %d lost" key
          | 1 ->
            let expected = IS.mem key !model in
            let got = C.delete ctx key in
            if got then model := IS.remove key !model;
            if got <> expected then
              Alcotest.failf "delete %d: got %b expected %b" key got expected
          | _ ->
            let expected = IS.mem key !model in
            let got = C.search ctx key in
            if got <> expected then
              Alcotest.failf "search %d: got %b expected %b" key got expected
        done;
        Alcotest.(check (list int))
          "final contents match model" (IS.elements !model) (C.to_list ctx);
        C.validate ctx);
    Alcotest.(check int) "no violations" 0 (C.violations set)

  type tally = { mutable ins : int; mutable del : int }

  let stress ~scheme ~seed =
    let n = 4 and ops = 2_500 in
    let s = sched ~n_cores:n ~seed () in
    let set = C.create (set_cfg ~scheme ~n ()) in
    let ctxs = Array.init n (fun pid -> C.register set ~pid) in
    let fill = ref 0 in
    Scheduler.exec s ~pid:0 (fun () ->
        for i = 0 to (Info.range / 2) - 1 do
          if C.insert ctxs.(0) (2 * i) then incr fill
        done);
    let tallies = Array.init n (fun _ -> { ins = 0; del = 0 }) in
    let master = Qs_util.Prng.create ~seed:(seed * 31) in
    let prngs = Array.init n (fun _ -> Qs_util.Prng.split master) in
    for pid = 0 to n - 1 do
      Scheduler.spawn s ~pid (fun () ->
          let prng = prngs.(pid) and tally = tallies.(pid) and ctx = ctxs.(pid) in
          for _ = 1 to ops do
            let key = Qs_util.Prng.int prng Info.range in
            let pct = Qs_util.Prng.percent prng in
            if pct < 25 then begin
              if C.insert ctx key then tally.ins <- tally.ins + 1
            end
            else if pct < 50 then begin
              if C.delete ctx key then tally.del <- tally.del + 1
            end
            else ignore (C.search ctx key)
          done)
    done;
    Scheduler.run_all s;
    (match Scheduler.failures s with
    | [] -> ()
    | (pid, e) :: _ ->
      Alcotest.failf "worker %d failed: %s" pid (Printexc.to_string e));
    Alcotest.(check int) "no use-after-free" 0 (C.violations set);
    Scheduler.exec s ~pid:0 (fun () -> C.validate ctxs.(0));
    let final = Scheduler.exec s ~pid:0 (fun () -> C.to_list ctxs.(0)) in
    Alcotest.(check (list int)) "sorted, no duplicates"
      (List.sort_uniq compare final) final;
    let expected = Array.fold_left (fun acc t -> acc + t.ins - t.del) !fill tallies in
    Alcotest.(check int) "conservation" expected (List.length final);
    Scheduler.exec s ~pid:0 (fun () -> Array.iter C.flush ctxs);
    let r = C.report set in
    Alcotest.(check int) "no double frees" 0 r.double_frees;
    if scheme <> Qs_smr.Scheme.None_ then
      Alcotest.(check int) "outstanding = live after teardown"
        (C.nodes_per_key * List.length final) r.outstanding

  (* Single-key storm: every process hammers insert/delete on the same few
     keys, maximising CAS conflicts and (for the BST) flag/mark helping. *)
  let storm ~seed =
    let n = 4 and ops = 2_000 in
    let s = sched ~n_cores:n ~seed () in
    let set = C.create (set_cfg ~scheme:Qs_smr.Scheme.Qsense ~n ()) in
    let ctxs = Array.init n (fun pid -> C.register set ~pid) in
    let tallies = Array.init n (fun _ -> { ins = 0; del = 0 }) in
    for pid = 0 to n - 1 do
      Scheduler.spawn s ~pid (fun () ->
          let prng = Qs_util.Prng.create ~seed:(seed + (7 * pid)) in
          let tally = tallies.(pid) and ctx = ctxs.(pid) in
          for _ = 1 to ops do
            let key = Qs_util.Prng.int prng 2 in
            if Qs_util.Prng.bool prng then begin
              if C.insert ctx key then tally.ins <- tally.ins + 1
            end
            else if C.delete ctx key then tally.del <- tally.del + 1
          done)
    done;
    Scheduler.run_all s;
    (match Scheduler.failures s with
    | [] -> ()
    | (pid, e) :: _ ->
      Alcotest.failf "worker %d failed: %s" pid (Printexc.to_string e));
    Alcotest.(check int) "no use-after-free" 0 (C.violations set);
    Scheduler.exec s ~pid:0 (fun () -> C.validate ctxs.(0));
    let final = Scheduler.exec s ~pid:0 (fun () -> C.to_list ctxs.(0)) in
    let expected = Array.fold_left (fun acc t -> acc + t.ins - t.del) 0 tallies in
    Alcotest.(check int) "conservation under storm" expected (List.length final)

  let suite =
    Alcotest.test_case (Info.name ^ " single-key storm") `Quick (fun () ->
        storm ~seed:3;
        storm ~seed:17;
        storm ~seed:99)
    :: Alcotest.test_case (Info.name ^ " sequential semantics") `Quick test_sequential
    :: List.map
         (fun scheme ->
           Alcotest.test_case
             (Printf.sprintf "%s stress %s" Info.name
                (Qs_smr.Scheme.to_string scheme))
             `Quick
             (fun () ->
               stress ~scheme ~seed:7;
               stress ~scheme ~seed:23))
         [ Qs_smr.Scheme.None_;
           Qs_smr.Scheme.Hp;
           Qs_smr.Scheme.Qsbr;
           Qs_smr.Scheme.Ebr;
           Qs_smr.Scheme.Cadence;
           Qs_smr.Scheme.Qsense
         ]
end

module Skiplist_tests =
  Battery
    (Qs_ds.Skiplist.Make (Sim_runtime))
    (struct
      let name = "skiplist"
      let range = 64
    end)

module Bst_tests =
  Battery
    (Qs_ds.Bst.Make (Sim_runtime))
    (struct
      let name = "bst"
      let range = 64
    end)

module Hashtable_tests =
  Battery
    (Qs_ds.Hashtable.Make (Sim_runtime))
    (struct
      let name = "hashtable"
      let range = 128
    end)

module HT = Qs_ds.Hashtable.Make (Sim_runtime)

(* Regression: [bucket_of] used to reduce the multiplicative hash with
   [mod], keeping its LOW bits — the poorly mixed end of the product.
   Keys that differ only above the low byte (tenant-prefixed key spaces,
   stride-256 sequences) collided into a handful of buckets: 16 tenants ×
   64 slots hit only 64 of 256 buckets (16 keys each), and stride-256 keys
   all landed in a single bucket. The high-bit shift must spread both. *)
let test_hashtable_bucket_distribution () =
  let table = HT.create (set_cfg ~n:1 ()) in
  let n_buckets = HT.default_buckets in
  let loads = Array.make n_buckets 0 in
  for tenant = 0 to 15 do
    for slot = 0 to 63 do
      let key = (tenant lsl 16) lor slot in
      let b = HT.bucket_index table key in
      loads.(b) <- loads.(b) + 1
    done
  done;
  let hit = Array.fold_left (fun a l -> if l > 0 then a + 1 else a) 0 loads in
  let max_load = Array.fold_left max 0 loads in
  Alcotest.(check bool) "tenant keys hit most buckets" true (hit >= 200);
  Alcotest.(check bool) "tenant keys: no heavy bucket" true (max_load <= 12);
  let loads = Array.make n_buckets 0 in
  for i = 0 to 511 do
    let b = HT.bucket_index table (i * 256) in
    loads.(b) <- loads.(b) + 1
  done;
  let max_load = Array.fold_left max 0 loads in
  Alcotest.(check bool) "stride-256 keys spread" true (max_load <= 8)

(* Non-power-of-two bucket counts take the [mod] fallback; routing must
   stay in range and agree with [validate]'s placement check. *)
let test_hashtable_odd_bucket_count () =
  let table = HT.create_sized ~n_buckets:97 (set_cfg ~n:1 ()) in
  for key = 0 to 2_000 do
    let b = HT.bucket_index table key in
    if b < 0 || b >= 97 then Alcotest.failf "key %d out of range: %d" key b
  done

let distribution_suite =
  [ Alcotest.test_case "hashtable bucket distribution" `Quick
      test_hashtable_bucket_distribution;
    Alcotest.test_case "hashtable odd bucket count" `Quick
      test_hashtable_odd_bucket_count ]

let suite =
  Skiplist_tests.suite @ Bst_tests.suite @ Hashtable_tests.suite
  @ distribution_suite
