(* Tests of the real-domain runtime: primitives, rooster domains, the
   domain pool, and multi-domain smoke runs of the data structures with
   real atomics/fences (domains timeshare on small machines — correctness,
   not scalability, is what these check). *)

module R = Qs_real.Real_runtime

let test_primitives () =
  let p = R.plain 1 in
  R.write p 2;
  Alcotest.(check int) "plain rw" 2 (R.read p);
  let a = R.atomic 10 in
  R.set a 11;
  Alcotest.(check int) "atomic rw" 11 (R.get a);
  Alcotest.(check bool) "cas ok" true (R.cas a 11 12);
  Alcotest.(check bool) "cas stale" false (R.cas a 11 13);
  Alcotest.(check int) "faa" 12 (R.fetch_and_add a 5);
  Alcotest.(check int) "after faa" 17 (R.get a);
  R.fence ();
  let t0 = R.now () in
  let t1 = R.now () in
  Alcotest.(check bool) "clock monotone" true (t1 >= t0)

let test_self_registration () =
  R.register_self 0;
  Alcotest.(check int) "main is 0" 0 (R.self ());
  let ids =
    Qs_real.Domain_pool.run ~n:3 (fun pid ->
        R.yield ();
        (pid, R.self ()))
  in
  Array.iter (fun (pid, self) -> Alcotest.(check int) "self = pid" pid self) ids

let test_roosters () =
  let r = Qs_real.Roosters.start ~interval_ns:1_000_000 ~n:1 in
  let t0 = Qs_real.Roosters.coarse_now r in
  Unix.sleepf 0.05;
  let w = Qs_real.Roosters.wakeups r in
  let t1 = Qs_real.Roosters.coarse_now r in
  Qs_real.Roosters.stop r;
  Alcotest.(check bool) "woke up" true (w > 0);
  Alcotest.(check bool) "coarse clock advanced" true (t1 > t0);
  (* after stop, no more wakeups *)
  let w_final = Qs_real.Roosters.wakeups r in
  Unix.sleepf 0.02;
  Alcotest.(check int) "stopped" w_final (Qs_real.Roosters.wakeups r)

let smoke ~scheme ~ds () =
  let r =
    Qs_harness.Real_exp.run
      { (Qs_harness.Real_exp.default_setup ~ds ~scheme ~n_domains:3
           ~workload:(Qs_workload.Spec.updates_50 ~key_range:256)) with
        duration_ms = 150;
        seed = 3 }
  in
  Alcotest.(check int) "no use-after-free" 0 r.violations;
  Alcotest.(check bool) "not failed" false r.failed;
  Alcotest.(check bool) "made progress" true (r.ops_total > 100);
  Alcotest.(check int) "no double frees" 0 r.report.double_frees;
  if scheme <> Qs_smr.Scheme.None_ then
    Alcotest.(check bool) "reclaimed memory" true (r.report.smr.frees > 0)

let test_roosters_stop_latency () =
  (* stop must return well under one interval: the rooster loop sleeps in
     small naps and re-checks the stop flag, instead of sleeping the whole
     interval through (the old behaviour made teardown of long-interval
     configurations take up to a full interval) *)
  let interval_ns = 500_000_000 (* 0.5 s *) in
  let r = Qs_real.Roosters.start ~interval_ns ~n:1 in
  Unix.sleepf 0.01;
  let t0 = Unix.gettimeofday () in
  Qs_real.Roosters.stop r;
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "stop returned in %.3fs, well under the 0.5s interval"
       elapsed)
    true
    (elapsed < 0.25)

let test_domain_pool_generations () =
  let results =
    Qs_real.Domain_pool.run_generations ~n:2 ~generations:3
      ~downtime_s:0.002 (fun ~pid ~gen ->
        Alcotest.(check int) "worker registered under its slot pid" pid
          (R.self ());
        (pid, gen))
  in
  Alcotest.(check int) "one slot per pid" 2 (Array.length results);
  Array.iteri
    (fun pid gens ->
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "slot %d ran three generations in order" pid)
        [ (pid, 0); (pid, 1); (pid, 2) ]
        gens)
    results

let test_real_churn () =
  (* worker churn on real domains: each pid slot runs three successive
     worker generations, every hand-off donating the departing domain's
     limbo lists to the orphan pool; survivors must adopt and the run must
     stay safe and leak-free *)
  List.iter
    (fun scheme ->
      let name = Qs_smr.Scheme.to_string scheme in
      let r =
        Qs_harness.Real_exp.run
          { (Qs_harness.Real_exp.default_setup ~ds:Qs_harness.Cset.List
               ~scheme ~n_domains:3
               ~workload:(Qs_workload.Spec.updates_50 ~key_range:128)) with
            duration_ms = 200;
            seed = 7;
            churn = Some { Qs_harness.Real_exp.generations = 3; downtime_ms = 5 } }
      in
      Alcotest.(check int) (name ^ ": no use-after-free under churn") 0
        r.violations;
      Alcotest.(check bool) (name ^ ": not failed") false r.failed;
      Alcotest.(check int) (name ^ ": no double frees") 0
        r.report.double_frees;
      Alcotest.(check bool) (name ^ ": churn actually happened") true
        (r.churn_events > 0);
      Alcotest.(check bool) (name ^ ": made progress") true (r.ops_total > 100))
    [ Qs_smr.Scheme.Qsense; Qs_smr.Scheme.Cadence ]

let test_real_stall_tolerance () =
  (* a stalled domain must not break QSense on the real runtime either *)
  let r =
    Qs_harness.Real_exp.run
      { (Qs_harness.Real_exp.default_setup ~ds:Qs_harness.Cset.List
           ~scheme:Qs_smr.Scheme.Qsense ~n_domains:3
           ~workload:(Qs_workload.Spec.updates_50 ~key_range:128)) with
        duration_ms = 300;
        stall_victim_after_ms = Some 60;
        seed = 5;
        smr_tweak = (fun c -> { c with switch_threshold = 64 }) }
  in
  Alcotest.(check int) "no use-after-free" 0 r.violations;
  Alcotest.(check bool) "not failed" false r.failed

let suite =
  [ Alcotest.test_case "primitives" `Quick test_primitives;
    Alcotest.test_case "self registration" `Quick test_self_registration;
    Alcotest.test_case "rooster domains" `Quick test_roosters;
    Alcotest.test_case "list/qsense on domains" `Quick
      (smoke ~scheme:Qs_smr.Scheme.Qsense ~ds:Qs_harness.Cset.List);
    Alcotest.test_case "list/hp on domains" `Quick
      (smoke ~scheme:Qs_smr.Scheme.Hp ~ds:Qs_harness.Cset.List);
    Alcotest.test_case "skiplist/qsense on domains" `Quick
      (smoke ~scheme:Qs_smr.Scheme.Qsense ~ds:Qs_harness.Cset.Skiplist);
    Alcotest.test_case "bst/qsense on domains" `Quick
      (smoke ~scheme:Qs_smr.Scheme.Qsense ~ds:Qs_harness.Cset.Bst);
    Alcotest.test_case "hashtable/cadence on domains" `Quick
      (smoke ~scheme:Qs_smr.Scheme.Cadence ~ds:Qs_harness.Cset.Hashtable);
    Alcotest.test_case "qsense tolerates stalled domain" `Quick test_real_stall_tolerance;
    Alcotest.test_case "roosters stop promptly" `Quick test_roosters_stop_latency;
    Alcotest.test_case "domain pool generations" `Quick test_domain_pool_generations;
    Alcotest.test_case "churn on real domains" `Slow test_real_churn
  ]
