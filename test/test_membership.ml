(* Dynamic membership: unregister / orphan adoption / slot reuse across the
   schemes, the QSense eviction-leak and mode-switch-race regressions, the
   degenerate-config (Division_by_zero) regression, and the end-to-end
   churn experiment on the simulator.

   Everything scheme-level reuses test_smr's idiom: schemes driven
   directly over a fake node type, with an explicit freed-id log. *)

open Qs_sim
open Qs_harness
module R = Sim_runtime
module Smr = Qs_smr.Smr_intf
module Orphan_pool = Qs_smr.Orphan_pool

type fake = { id : int; mutable freed : int }

module N = struct
  type t = fake

  let id n = n.id
end

module Hp = Qs_smr.Hazard_pointers.Make (R) (N)
module Qsbr = Qs_smr.Qsbr.Make (R) (N)
module Ebr = Qs_smr.Ebr.Make (R) (N)
module Cadence = Qs_smr.Cadence.Make (R) (N)
module Qsense = Qs_smr.Qsense.Make (R) (N)

let dummy = { id = -1; freed = 0 }
let mk id = { id; freed = 0 }

let cfg ?(n = 2) ?(k = 2) ?(q = 4) ?(r = 4) ?(t = 1_000) ?(eps = 100) ?(c = 0)
    ?eviction ?(bags = true) ?(bag_cap = 64) () =
  { Smr.n_processes = n;
    hp_per_process = k;
    quiescence_threshold = q;
    scan_threshold = r;
    scan_factor = 0.;
    rooster_interval = t;
    epsilon = eps;
    switch_threshold = c;
    removes_per_op_max = 1;
    eviction_timeout = eviction;
    limbo_bags = bags;
    bag_capacity = bag_cap }

let sched ?(n_cores = 2) ?(seed = 3) ?(rooster = Some 1_000) () =
  Scheduler.create
    { (Scheduler.default_config ~n_cores ~seed) with rooster_interval = rooster }

let track_frees freed_log n =
  n.freed <- n.freed + 1;
  freed_log := n.id :: !freed_log

let check_freed freed ids =
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d freed" id)
        true (List.mem id !freed))
    ids

let check_kept freed ids =
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d kept" id)
        true
        (not (List.mem id !freed)))
    ids

(* --- the orphan pool itself ---------------------------------------------- *)

let test_orphan_pool () =
  let p : int list Orphan_pool.t = Orphan_pool.create () in
  Alcotest.(check bool) "fresh pool empty" true (Orphan_pool.is_empty p);
  Alcotest.(check int) "fresh pool counts 0" 0 (Orphan_pool.node_count p);
  (* empty donations are skipped entirely: no entry, no count *)
  Orphan_pool.donate p ~donor:7 ~nodes:0 [];
  Alcotest.(check bool) "zero-node donation skipped" true
    (Orphan_pool.is_empty p);
  Orphan_pool.donate p ~donor:1 ~nodes:3 [ 10; 11; 12 ];
  Orphan_pool.donate p ~donor:2 ~nodes:2 [ 20; 21 ];
  Alcotest.(check bool) "non-empty" false (Orphan_pool.is_empty p);
  Alcotest.(check int) "counts all pooled nodes" 5 (Orphan_pool.node_count p);
  (match Orphan_pool.take p with
  | Some e ->
    Alcotest.(check int) "LIFO: last donor first" 2 e.Orphan_pool.donor;
    Alcotest.(check int) "entry node count" 2 e.Orphan_pool.nodes;
    Alcotest.(check (list int)) "payload intact" [ 20; 21 ] e.Orphan_pool.payload
  | None -> Alcotest.fail "take on non-empty pool");
  Alcotest.(check int) "count follows take" 3 (Orphan_pool.node_count p);
  (* drain empties in one exchange (the teardown path) *)
  Orphan_pool.donate p ~donor:3 ~nodes:1 [ 30 ];
  let es = Orphan_pool.drain p in
  Alcotest.(check int) "drain returns all entries" 2 (List.length es);
  Alcotest.(check bool) "drained empty" true (Orphan_pool.is_empty p);
  Alcotest.(check int) "drained count 0" 0 (Orphan_pool.node_count p);
  Alcotest.(check (option reject)) "take on empty" None
    (Option.map (fun _ -> ()) (Orphan_pool.take p))

(* --- QSBR: donation, grace-period adoption, slot reuse -------------------- *)

let test_qsbr_unregister_adopt () =
  let s = sched () in
  let freed = ref [] in
  let t = Qsbr.create (cfg ~q:1 ()) ~dummy ~free:(track_frees freed) in
  let h0 = Qsbr.register t ~pid:0 in
  let h1 = Qsbr.register t ~pid:1 in
  Scheduler.exec s ~pid:1 (fun () ->
      Qsbr.retire h1 (mk 101);
      Qsbr.retire h1 (mk 102);
      Qsbr.retire h1 (mk 103);
      Qsbr.unregister h1);
  (* orphaned nodes are still removed-but-unfreed *)
  Alcotest.(check int) "orphans counted in retired_count" 3
    (Qsbr.retired_count t);
  Alcotest.(check (list int)) "nothing freed by departure itself" [] !freed;
  (* the survivor advances epochs alone (the absent slot no longer gates
     advancement) and frees the adopted batch behind a full epoch cycle *)
  Scheduler.exec s ~pid:0 (fun () ->
      for _ = 1 to 30 do
        Qsbr.manage_state h0
      done);
  check_freed freed [ 101; 102; 103 ];
  Alcotest.(check int) "no orphans left" 0 (Qsbr.retired_count t);
  (* slot reuse: a handle re-registered into the vacated slot joins at its
     first manage_state and participates normally *)
  let h1' = Qsbr.register t ~pid:1 in
  Scheduler.exec s ~pid:1 (fun () ->
      Qsbr.manage_state h1';
      Qsbr.retire h1' (mk 104));
  Alcotest.(check int) "fresh handle retires into its own limbo" 1
    (Qsbr.retired_count t);
  (* legacy folding: stats stay monotone across the departure *)
  let st = Qsbr.stats t in
  Alcotest.(check int) "retires monotone across churn" 4 st.Smr.retires;
  Alcotest.(check int) "frees monotone across churn" 3 st.Smr.frees

(* EBR shares QSBR's membership mechanics; one round-trip keeps it
   honest. *)
let test_ebr_unregister_adopt () =
  let s = sched () in
  let freed = ref [] in
  let t = Ebr.create (cfg ~q:1 ()) ~dummy ~free:(track_frees freed) in
  let h0 = Ebr.register t ~pid:0 in
  let h1 = Ebr.register t ~pid:1 in
  Scheduler.exec s ~pid:1 (fun () ->
      Ebr.manage_state h1;
      Ebr.retire h1 (mk 111);
      Ebr.retire h1 (mk 112);
      Ebr.unregister h1);
  Alcotest.(check int) "orphans counted" 2 (Ebr.retired_count t);
  Scheduler.exec s ~pid:0 (fun () ->
      for _ = 1 to 40 do
        Ebr.manage_state h0
      done);
  check_freed freed [ 111; 112 ];
  let h1' = Ebr.register t ~pid:1 in
  Scheduler.exec s ~pid:1 (fun () ->
      Ebr.manage_state h1';
      Ebr.retire h1' (mk 113));
  Alcotest.(check int) "slot reused" 1 (Ebr.retired_count t)

(* --- HP: adoption on scan, under the survivor's hazard filter ------------- *)

let test_hp_unregister_adopt () =
  let s = sched () in
  let freed = ref [] in
  let t = Hp.create (cfg ~r:3 ()) ~dummy ~free:(track_frees freed) in
  let h0 = Hp.register t ~pid:0 in
  let h1 = Hp.register t ~pid:1 in
  let a = mk 201 in
  (* the survivor protects one of the nodes the departer will orphan *)
  Scheduler.exec s ~pid:0 (fun () -> Hp.assign_hp h0 ~slot:0 a);
  Scheduler.exec s ~pid:1 (fun () ->
      Hp.retire h1 a;
      Hp.retire h1 (mk 202);
      Hp.unregister h1);
  Alcotest.(check int) "orphans counted" 2 (Hp.retired_count t);
  Alcotest.(check (list int)) "departure frees nothing" [] !freed;
  (* the survivor's next scan adopts the orphans; the hazard filter applies
     to them exactly as to its own removed list *)
  Scheduler.exec s ~pid:0 (fun () ->
      Hp.retire h0 (mk 203);
      Hp.retire h0 (mk 204);
      Hp.retire h0 (mk 205));
  check_freed freed [ 202 ];
  check_kept freed [ 201 ];
  (* releasing the hazard lets the next scan free the protected orphan *)
  Scheduler.exec s ~pid:0 (fun () ->
      Hp.clear_hps h0;
      R.fence ();
      Hp.retire h0 (mk 206);
      Hp.retire h0 (mk 207);
      Hp.retire h0 (mk 208));
  check_freed freed [ 201 ]

(* --- Cadence: adoption preserves retire timestamps ------------------------ *)

let test_cadence_unregister_preserves_ages () =
  let s = sched ~rooster:(Some 1_000) () in
  let freed = ref [] in
  let t =
    Cadence.create (cfg ~r:1 ~t:1_000 ~eps:100 ()) ~dummy
      ~free:(track_frees freed)
  in
  let h0 = Cadence.register t ~pid:0 in
  let h1 = Cadence.register t ~pid:1 in
  Scheduler.exec s ~pid:1 (fun () ->
      Cadence.retire h1 (mk 301);
      Cadence.retire h1 (mk 302);
      Cadence.unregister h1);
  Alcotest.(check int) "orphans counted" 2 (Cadence.retired_count t);
  Scheduler.exec s ~pid:0 (fun () ->
      (* the adopter's scan picks the orphans up with their original
         timestamps — too young to free, so they must be kept *)
      Cadence.retire h0 (mk 303);
      Alcotest.(check (list int)) "young orphans kept" [] !freed;
      (* age everything past T + epsilon: now the adopter frees them *)
      Sim_runtime.charge 2_000;
      Cadence.retire h0 (mk 304);
      check_freed freed [ 301; 302 ];
      check_kept freed [ 304 ])

(* --- QSense: unregister donates, survivors adopt under HP + age ----------- *)

let test_qsense_unregister_adopt () =
  let s = sched ~rooster:(Some 1_000) () in
  let freed = ref [] in
  let t =
    Qsense.create (cfg ~q:1 ~r:2 ~c:50 ()) ~dummy ~free:(track_frees freed)
  in
  let h0 = Qsense.register t ~pid:0 in
  let h1 = Qsense.register t ~pid:1 in
  Scheduler.exec s ~pid:1 (fun () ->
      for i = 401 to 405 do
        Qsense.retire h1 (mk i)
      done;
      Qsense.unregister h1);
  Alcotest.(check int) "orphans counted" 5 (Qsense.retired_count t);
  (* the survivor adopts on its quiescent path; adopted nodes are reclaimed
     exclusively through the HP + age filter (the vacant seat keeps epoch
     freeing filtered), so they free once aged *)
  Scheduler.exec s ~pid:0 (fun () ->
      Sim_runtime.charge 3_000;
      for i = 406 to 420 do
        Qsense.retire h0 (mk i);
        Qsense.manage_state h0
      done);
  check_freed freed [ 401; 402; 403; 404; 405 ];
  Alcotest.(check bool) "stayed on the fast path throughout" true
    ((Qsense.stats t).Smr.mode = Smr.Fast);
  (* the vacated slot rejoins through the ordinary eviction-rejoin path *)
  let h1' = Qsense.register t ~pid:1 in
  Scheduler.exec s ~pid:1 (fun () ->
      Qsense.manage_state h1';
      Qsense.retire h1' (mk 421));
  let st = Qsense.stats t in
  Alcotest.(check int) "retires monotone across churn" 21 st.Smr.retires;
  Alcotest.(check bool) "rejoined handle owns its retire" true
    (st.Smr.retired_now >= 1)

(* --- satellite: the eviction-leak regression ------------------------------ *)

(* Before the membership layer, QSense's §5.2 eviction silently leaked the
   victim's limbo lists: the evictor marked the slot evicted and moved on,
   and nobody ever freed what the victim had retired. Now the evictor
   seizes the victim's lists into the orphan pool and survivors adopt and
   free them under HP + age. *)
let test_qsense_eviction_frees_victim_limbo () =
  let s = sched ~rooster:(Some 1_000) () in
  let freed = ref [] in
  let t =
    Qsense.create
      (cfg ~q:2 ~r:2 ~c:5 ~eviction:2_000 ())
      ~dummy ~free:(track_frees freed)
  in
  let h0 = Qsense.register t ~pid:0 in
  let h1 = Qsense.register t ~pid:1 in
  let victim_ids = List.init 10 (fun i -> 501 + i) in
  (* the victim retires a batch, then crashes (never runs again) *)
  Scheduler.exec s ~pid:1 (fun () ->
      List.iter (fun i -> Qsense.retire h1 (mk i)) victim_ids);
  (* the survivor overflows C, falls back, and — once the victim has been
     silent past the eviction timeout — evicts it and returns to Fast *)
  Scheduler.exec s ~pid:0 (fun () ->
      for i = 1 to 10 do
        Qsense.retire h0 (mk i);
        Qsense.manage_state h0
      done;
      Alcotest.(check bool) "fell back" true
        ((Qsense.stats t).Smr.mode = Smr.Fallback);
      Sim_runtime.charge 5_000;
      for i = 11 to 40 do
        Qsense.retire h0 (mk i);
        Qsense.manage_state h0
      done);
  let st = Qsense.stats t in
  Alcotest.(check bool) "victim evicted" true (st.Smr.evictions >= 1);
  Alcotest.(check bool) "back on the fast path despite the crash" true
    (st.Smr.mode = Smr.Fast);
  (* the regression itself: every node the victim retired was freed by the
     adopters — nothing leaked with the evicted slot *)
  check_freed freed victim_ids;
  Alcotest.(check bool)
    (Printf.sprintf "retired_now bounded (%d)" st.Smr.retired_now)
    true
    (st.Smr.retired_now < 40);
  (* drain: with the victim still evicted, the survivor's (filtered) epoch
     freeing reclaims its own backlog too once it ages — retired_now must
     return below C, where before this layer the victim's nodes pinned it
     above C forever *)
  Scheduler.exec s ~pid:0 (fun () ->
      Sim_runtime.charge 5_000;
      for _ = 1 to 30 do
        Qsense.manage_state h0
      done);
  let st = Qsense.stats t in
  Alcotest.(check bool)
    (Printf.sprintf "retired_now (%d) back below C = 5" st.Smr.retired_now)
    true
    (st.Smr.retired_now < 5);
  (* and no double-free anywhere *)
  Alcotest.(check int) "freed ids are unique" (List.length !freed)
    (List.length (List.sort_uniq compare !freed))

(* --- satellite: the mode-switch race regression --------------------------- *)

(* Two workers blow past C in the same window. The 0->1 flag transition is
   a CAS, so exactly one switch is elected per round trip; the 1->0 exit
   winner — and only the winner — accounts the fallback dwell. The
   observable contract: entries and exits balance once the scheme is back
   on the fast path, and ticks are counted once (bounded by the wall
   clock), no matter how the overflow interleaves. *)
let test_qsense_switch_race_balanced () =
  List.iter
    (fun seed ->
      let s = sched ~n_cores:2 ~seed () in
      let freed = ref [] in
      let t =
        Qsense.create (cfg ~q:2 ~r:2 ~c:5 ()) ~dummy
          ~free:(track_frees freed)
      in
      let h0 = Qsense.register t ~pid:0 in
      let h1 = Qsense.register t ~pid:1 in
      Scheduler.spawn s ~pid:0 (fun () ->
          for i = 1 to 30 do
            Qsense.retire h0 (mk i);
            Qsense.manage_state h0
          done);
      Scheduler.spawn s ~pid:1 (fun () ->
          for i = 31 to 60 do
            Qsense.retire h1 (mk i);
            Qsense.manage_state h1
          done);
      Scheduler.run_all s;
      (* both stay live, so the scheme must be able to complete the round
         trip; drive quiescence until it does *)
      let rounds = ref 0 in
      while
        (Qsense.stats t).Smr.mode = Smr.Fallback && !rounds < 200
      do
        incr rounds;
        Scheduler.exec s ~pid:0 (fun () -> Qsense.manage_state h0);
        Scheduler.exec s ~pid:1 (fun () -> Qsense.manage_state h1)
      done;
      let st = Qsense.stats t in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: returned to fast path" seed)
        true (st.Smr.mode = Smr.Fast);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: at least one round trip" seed)
        true
        (st.Smr.fallback_entries >= 1);
      Alcotest.(check int)
        (Printf.sprintf "seed %d: entries = exits (each switch elected once)"
           seed)
        st.Smr.fallback_entries st.Smr.fallback_exits;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: dwell counted once, within the wall clock"
           seed)
        true
        (st.Smr.fallback_ticks > 0
        && st.Smr.fallback_ticks <= Scheduler.max_clock s))
    [ 3; 7; 13 ]

(* --- satellite: degenerate configs must not divide by zero ---------------- *)

let test_degenerate_scan_threshold () =
  List.iter
    (fun r ->
      let c = cfg ~r () in
      Alcotest.(check bool)
        (Printf.sprintf "scan_threshold %d clamps to >= 1" r)
        true
        (Smr.effective_scan_threshold c >= 1);
      (* and actually driving the scan-scheduling schemes on such a config
         must not raise Division_by_zero *)
      let s = sched () in
      let freed = ref [] in
      let t = Hp.create c ~dummy ~free:(track_frees freed) in
      let h = Hp.register t ~pid:0 in
      Scheduler.exec s ~pid:0 (fun () ->
          for i = 1 to 5 do
            Hp.retire h (mk i);
            Hp.manage_state h
          done);
      (* threshold clamped to 1 = scan on every retire: everything
         unprotected is freed *)
      Alcotest.(check int)
        (Printf.sprintf "hp frees under threshold %d" r)
        5 (List.length !freed);
      Alcotest.(check int) "stats surface the clamped threshold" 1
        (Hp.stats t).Smr.scan_threshold_eff;
      let s2 = sched ~rooster:(Some 1_000) () in
      let t2 = Cadence.create c ~dummy ~free:(fun _ -> ()) in
      let h2 = Cadence.register t2 ~pid:0 in
      Scheduler.exec s2 ~pid:0 (fun () ->
          for i = 1 to 5 do
            Cadence.retire h2 (mk i);
            Cadence.manage_state h2
          done);
      let s3 = sched ~rooster:(Some 1_000) () in
      (* switch_threshold 1: QSense is in fallback from the first retire,
         where the scan cadence [fnl_count mod threshold] is exercised
         immediately ([switch_threshold <= 0] falls back on the legal
         default instead, so it cannot force the path) *)
      let t3 = Qsense.create { c with Smr.switch_threshold = 1 } ~dummy ~free:(fun _ -> ()) in
      let h3 = Qsense.register t3 ~pid:0 in
      Scheduler.exec s3 ~pid:0 (fun () ->
          for i = 1 to 5 do
            Qsense.retire h3 (mk i);
            Qsense.manage_state h3
          done);
      Alcotest.(check bool) "qsense survives a degenerate config" true
        ((Qsense.stats t3).Smr.mode = Smr.Fallback))
    [ 0; -4 ]

(* scan_factor interacts with the clamp too: a tiny factor over a tiny
   HP population must still yield a legal threshold *)
let test_scan_factor_clamp () =
  let c = { (cfg ~n:1 ~k:1 ~r:0 ()) with Smr.scan_factor = 0.01 } in
  Alcotest.(check int) "ceil(0.01 * 1) clamps through max" 1
    (Smr.effective_scan_threshold c);
  let c' = { (cfg ~n:4 ~k:2 ~r:0 ()) with Smr.scan_factor = 2. } in
  Alcotest.(check int) "factor-driven threshold" 16
    (Smr.effective_scan_threshold c')

(* --- stats monotonicity across repeated churn ----------------------------- *)

let test_stats_monotone_across_churn () =
  let s = sched () in
  let freed = ref [] in
  (* r high enough that nothing scans: every retired node becomes an
     orphan on departure *)
  let t = Hp.create (cfg ~r:100 ()) ~dummy ~free:(track_frees freed) in
  for g = 1 to 3 do
    let h = Hp.register t ~pid:1 in
    Scheduler.exec s ~pid:1 (fun () ->
        for i = 1 to 4 do
          Hp.retire h (mk ((g * 10) + i))
        done;
        Hp.unregister h)
  done;
  let st = Hp.stats t in
  Alcotest.(check int) "retires survive three generations of handles" 12
    st.Smr.retires;
  Alcotest.(check int) "orphaned nodes all accounted in retired_now" 12
    st.Smr.retired_now;
  Alcotest.(check (list int)) "nothing freed without an adopter" [] !freed

(* --- end-to-end: churn on the simulator ----------------------------------- *)

let test_sim_churn_e2e () =
  List.iter
    (fun scheme ->
      let name = Qs_smr.Scheme.to_string scheme in
      let setup =
        { (Sim_exp.default_setup ~ds:Cset.List ~scheme ~n_processes:3
             ~workload:(Qs_workload.Spec.make ~key_range:32 ~update_pct:50))
          with
          Sim_exp.duration = 150_000;
          seed = 9;
          churn = Some { Sim_exp.every_ops = 40; downtime = 2_000 } }
      in
      let r = Sim_exp.run setup in
      Alcotest.(check int) (name ^ ": no use-after-free under churn") 0
        r.Sim_exp.violations;
      Alcotest.(check bool) (name ^ ": workers actually churned") true
        (r.Sim_exp.churn_events > 0);
      Alcotest.(check bool) (name ^ ": teardown leak check clean") true
        (r.Sim_exp.leak_check = `Ok))
    [ Qs_smr.Scheme.Qsbr; Qs_smr.Scheme.Hp; Qs_smr.Scheme.Cadence;
      Qs_smr.Scheme.Qsense ]

(* Churn runs are as deterministic as everything else on the simulator. *)
let test_sim_churn_deterministic () =
  let run () =
    let setup =
      { (Sim_exp.default_setup ~ds:Cset.List ~scheme:Qs_smr.Scheme.Qsense
           ~n_processes:3
           ~workload:(Qs_workload.Spec.make ~key_range:32 ~update_pct:50))
        with
        Sim_exp.duration = 100_000;
        seed = 21;
        churn = Some { Sim_exp.every_ops = 30; downtime = 1_500 } }
    in
    let r = Sim_exp.run setup in
    (r.Sim_exp.ops_total, r.Sim_exp.churn_events, r.Sim_exp.final_size)
  in
  let a = run () and b = run () in
  Alcotest.(check (triple int int int)) "two seeded churn runs agree" a b

let suite =
  [ Alcotest.test_case "orphan pool semantics" `Quick test_orphan_pool;
    Alcotest.test_case "qsbr unregister, adoption, slot reuse" `Quick
      test_qsbr_unregister_adopt;
    Alcotest.test_case "ebr unregister, adoption, slot reuse" `Quick
      test_ebr_unregister_adopt;
    Alcotest.test_case "hp adoption respects the hazard filter" `Quick
      test_hp_unregister_adopt;
    Alcotest.test_case "cadence adoption preserves ages" `Quick
      test_cadence_unregister_preserves_ages;
    Alcotest.test_case "qsense unregister, adoption under HP+age" `Quick
      test_qsense_unregister_adopt;
    Alcotest.test_case "qsense eviction frees the victim's limbo" `Quick
      test_qsense_eviction_frees_victim_limbo;
    Alcotest.test_case "qsense switch race: entries = exits" `Quick
      test_qsense_switch_race_balanced;
    Alcotest.test_case "degenerate scan thresholds don't divide by zero"
      `Quick test_degenerate_scan_threshold;
    Alcotest.test_case "scan factor clamp" `Quick test_scan_factor_clamp;
    Alcotest.test_case "stats monotone across churn" `Quick
      test_stats_monotone_across_churn;
    Alcotest.test_case "sim churn e2e: safe, leak-free" `Slow
      test_sim_churn_e2e;
    Alcotest.test_case "sim churn deterministic" `Quick
      test_sim_churn_deterministic
  ]
